// Paramspace: a parameter-space study (paper §4.3 names these among the
// "structured multi-object applications") across a mixed fleet of
// interactive Unix hosts and a batch-queue-managed cluster.
//
// Forty study points are placed as forty instances of a StudyPoint
// class. Half the machines are ordinary Unix Hosts; half sit behind a
// simulated LoadLeveler-style queue (one job slot each, non-zero
// dispatch latency), exercising the Batch Queue Host path the paper
// describes: reservations are kept in the Host object because the queue
// manager has no notion of them, and activation waits for dispatch.
//
// Run with: go run ./examples/paramspace
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"legion/internal/batchq"
	"legion/internal/core"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/sched"
	"legion/internal/scheduler"
	"legion/internal/vault"
)

func main() {
	ctx := context.Background()
	ms := core.New("lab", core.Options{Seed: 7})
	defer ms.Close()
	v := ms.AddVault(vault.Config{Zone: "lab"})

	// Four interactive Unix hosts.
	for i := 0; i < 4; i++ {
		ms.AddHost(host.Config{
			Arch: "x86", OS: "Linux", OSVersion: "2.2",
			CPUs: 2, MemoryMB: 512, Zone: "lab",
			Vaults: []loid.LOID{v.LOID()},
		})
	}
	// Four batch-managed nodes (LoadLeveler-flavoured FCFS queues with a
	// scheduler-cycle dispatch delay).
	var queues []*batchq.Queue
	for i := 0; i < 4; i++ {
		q := batchq.New(batchq.Config{
			Name: fmt.Sprintf("loadleveler-%d", i), Slots: 8,
			Policy: batchq.FCFS, DispatchDelay: 20 * time.Millisecond,
		})
		defer q.Close()
		queues = append(queues, q)
		ms.AddHost(host.Config{
			Arch: "rs6000", OS: "AIX", OSVersion: "4.3",
			CPUs: 8, MemoryMB: 2048, Zone: "lab",
			Vaults: []loid.LOID{v.LOID()},
			Queue:  q,
		})
	}

	study := ms.DefineClass("StudyPoint", nil)

	const points = 40
	fmt.Printf("placing %d study points on 4 Unix hosts + 4 batch nodes\n", points)
	t0 := time.Now()
	out, err := ms.PlaceApplication(ctx, &scheduler.RoundRobin{}, scheduler.Request{
		Classes: []scheduler.ClassRequest{{Class: study.LOID(), Count: points}},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	})
	if err != nil {
		log.Fatalf("placement: %v", err)
	}
	elapsed := time.Since(t0)

	// Configure each study point with its parameter value.
	n := 0
	for _, insts := range out.Instances {
		for _, inst := range insts {
			if _, err := ms.Runtime().Call(ctx, inst, "set",
				[]string{"reynolds_number", fmt.Sprintf("%d", 1000+25*n)}); err != nil {
				log.Fatalf("configuring %v: %v", inst, err)
			}
			n++
		}
	}

	fmt.Printf("placed and configured %d instances in %v (batch dispatch latency included)\n",
		n, elapsed.Round(time.Millisecond))
	fmt.Println("\nhost occupancy:")
	for _, h := range ms.Hosts() {
		kind := "unix "
		if qlen := func() int {
			for _, p := range h.Attributes() {
				if p.Name == "host_is_batch" && p.Value.BoolVal() {
					return 1
				}
			}
			return 0
		}(); qlen == 1 {
			kind = "batch"
		}
		fmt.Printf("  %-8s (%s): %2d study points\n", h.LOID().Short(), kind, h.RunningCount())
	}
	for i, q := range queues {
		st := q.Stats()
		fmt.Printf("  queue loadleveler-%d: %d running, mean wait %v\n",
			i, st.Running, meanWait(st))
	}

	// Spot-check one instance's configuration survived.
	first := out.Instances[0][0]
	val, err := ms.Runtime().Call(ctx, first, "get", "reynolds_number")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nspot check: %s has reynolds_number=%v\n", first.Short(), val)
}

func meanWait(st batchq.Stats) time.Duration {
	started := st.Done + st.Running
	if started == 0 {
		return 0
	}
	return (st.TotalWait / time.Duration(started)).Round(time.Millisecond)
}
