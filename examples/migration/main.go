// Migration: the full §3.5 monitoring loop plus §2.1 migration.
//
// A worker object with accumulated state runs on a host whose background
// load spikes. The Monitor has registered an RGE outcall for the
// "$host_load > 0.8" trigger; when the host's periodic reassessment fires
// it, the handler shuts the object down (OPR to its Vault), moves the
// passive state, and reactivates the object — same LOID, same state — on
// the least-loaded host.
//
// Run with: go run ./examples/migration
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"legion/internal/core"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/proto"
	"legion/internal/vault"
)

func main() {
	ctx := context.Background()
	ms := core.New("uva", core.Options{Seed: 3})
	defer ms.Close()

	v := ms.AddVault(vault.Config{Zone: "campus"})
	var hosts []*host.Host
	for i := 0; i < 3; i++ {
		hosts = append(hosts, ms.AddHost(host.Config{
			Arch: "x86", OS: "Linux", OSVersion: "2.2",
			CPUs: 4, MemoryMB: 1024, Zone: "campus",
			Vaults: []loid.LOID{v.LOID()},
		}))
	}

	// Start a worker and give it state worth preserving.
	workers := ms.DefineClass("Worker", nil)
	insts, placement, err := workers.CreateInstance(ctx, 1, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	worker := insts[0]
	for i := 0; i < 5; i++ {
		if _, err := ms.Runtime().Call(ctx, worker, "ping", nil); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := ms.Runtime().Call(ctx, worker, "set", []string{"checkpoint", "iteration-500"}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("worker %s running on %s with checkpoint state\n", worker.Short(), placement.Host.Short())

	// Register overload triggers on every host (Monitor -> RGE).
	if err := ms.WatchLoad(ctx, 0.8); err != nil {
		log.Fatal(err)
	}
	done := make(chan loid.LOID, 1)
	ms.Monitor.OnEvent(func(ev proto.NotifyArgs) {
		fmt.Printf("trigger %q fired on %s — rescheduling\n", ev.Trigger, ev.Source.Short())
		dest, destVault, err := ms.LeastLoadedHost(ev.Source)
		if err != nil {
			log.Fatal(err)
		}
		if err := ms.Migrate(ctx, workers, worker, dest.LOID(), destVault); err != nil {
			log.Fatalf("migration: %v", err)
		}
		done <- dest.LOID()
	})

	// Background load on the worker's host spikes; the periodic
	// reassessment notices.
	fmt.Printf("load spike on %s\n", placement.Host.Short())
	for _, h := range hosts {
		if h.LOID() == placement.Host {
			h.SetExternalLoad(0.95)
		}
	}
	ms.ReassessAll(ctx)

	select {
	case dest := <-done:
		fmt.Printf("worker migrated to %s\n", dest.Short())
	case <-time.After(5 * time.Second):
		log.Fatal("no migration happened")
	}

	// Same LOID, same state, new host.
	val, err := ms.Runtime().Call(ctx, worker, "get", "checkpoint")
	if err != nil {
		log.Fatal(err)
	}
	hostNow, vaultNow, _ := workers.WhereIs(worker)
	fmt.Printf("worker %s now on %s (vault %s), checkpoint=%v — state survived the move\n",
		worker.Short(), hostNow.Short(), vaultNow.Short(), val)
	for _, h := range hosts {
		fmt.Printf("  %s: load %.2f, %d objects\n", h.LOID().Short(), h.Load(), h.RunningCount())
	}
}
