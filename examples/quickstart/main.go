// Quickstart: stand up a small Legion metasystem, define an object class,
// and place six instances with the Improved Random Scheduler through the
// full Figure 3 pipeline (Collection query -> schedule -> Enactor
// reservations -> create_instance on the class).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"legion/internal/core"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/proto"
	"legion/internal/sched"
	"legion/internal/scheduler"
	"legion/internal/vault"
)

func main() {
	ctx := context.Background()

	// One administrative domain with a vault and three hosts.
	ms := core.New("uva", core.Options{Seed: 42})
	defer ms.Close()
	v := ms.AddVault(vault.Config{Zone: "campus"})
	for i := 0; i < 3; i++ {
		ms.AddHost(host.Config{
			Arch: "x86", OS: "Linux", OSVersion: "2.2",
			CPUs: 4, MemoryMB: 1024, Zone: "campus",
			Vaults: []loid.LOID{v.LOID()},
		})
	}
	fmt.Printf("metasystem %q: %d hosts, %d vault(s), collection holds %d records\n",
		ms.Domain(), len(ms.Hosts()), len(ms.Vaults()), ms.Collection.Size())

	// Define a user object class with one implementation.
	workers := ms.DefineClass("Worker", []proto.Implementation{
		{Arch: "x86", OS: "Linux"},
	})

	// Place six instances with IRS (Figures 8-9): one Collection lookup,
	// master + variant schedules, Enactor negotiation.
	out, err := ms.PlaceApplication(ctx, scheduler.IRS{NSched: 4}, scheduler.Request{
		Classes: []scheduler.ClassRequest{{Class: workers.LOID(), Count: 6}},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	})
	if err != nil {
		log.Fatalf("placement failed: %v", err)
	}
	fmt.Printf("placed %d instances (schedule attempts: %d, reservations granted: %d)\n",
		len(out.Instances), out.SchedAttempts, out.Feedback.Stats.ReservationsGranted)

	// The instances are live Legion objects: invoke a method on each.
	for i, insts := range out.Instances {
		for _, inst := range insts {
			reply, err := ms.Runtime().Call(ctx, inst, "ping", nil)
			if err != nil {
				log.Fatalf("ping %v: %v", inst, err)
			}
			hostL, _, _ := workers.WhereIs(inst)
			fmt.Printf("  mapping %d: %s on %s -> %v\n", i, inst.Short(), hostL.Short(), reply)
		}
	}

	// Show the per-host distribution.
	fmt.Println("host occupancy:")
	for _, h := range ms.Hosts() {
		fmt.Printf("  %s: %d objects, load %.2f\n", h.LOID().Short(), h.RunningCount(), h.Load())
	}
}
