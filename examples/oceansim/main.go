// Oceansim: the paper's §4.3 motivating scenario — "an MPI-based ocean
// simulation which uses nearest-neighbor communication within a 2-D
// grid" (the DoD MSRC collaboration).
//
// A 12x12 grid of simulation subdomain objects is placed on a
// heterogeneous fleet twice: once with the generic Random scheduler
// (Fig 7) and once with the specialized Stencil scheduler. The
// communication cost (grid edges crossing host boundaries) and the
// modelled makespan show why "Schedulers with specialized algorithms or
// knowledge of the application" easily beat the generic 90% solution.
//
// Run with: go run ./examples/oceansim
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"legion/internal/core"
	"legion/internal/proto"
	"legion/internal/sched"
	"legion/internal/scheduler"
	"legion/internal/sim"
)

const rows, cols = 12, 12

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1999))

	// A heterogeneous fleet: IRIX workstations, Solaris servers, Linux
	// PCs — the kind of campus metasystem Legion federated.
	ms := core.New("msrc", core.Options{Seed: 1999})
	defer ms.Close()
	specs := sim.RandomSpecs(rng, 8, "stennis")
	for i := range specs {
		// A long-running MPI job timeshares freely on these machines:
		// lift the per-host reservation multiplex bound so capacity, not
		// admission, differentiates the schedulers.
		specs[i].MaxShared = rows * cols
	}
	fleet := sim.Build(ms, rng, specs)

	oceanClass := ms.DefineClass("OceanSubdomain", nil)
	req := scheduler.Request{
		Classes: []scheduler.ClassRequest{{Class: oceanClass.LOID(), Count: rows * cols}},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: 8 * time.Hour},
	}

	fmt.Printf("placing a %dx%d ocean-model grid on %d hosts\n\n", rows, cols, len(fleet.Hosts))
	fmt.Printf("%-12s %10s %12s %12s\n", "scheduler", "edge cut", "makespan", "imbalance")

	type result struct {
		name string
		cut  int
	}
	var results []result
	for _, gen := range []scheduler.Generator{
		scheduler.Random{},
		scheduler.Stencil{Rows: rows, Cols: cols},
	} {
		// Fresh environment per policy so both see identical system state.
		out, err := ms.PlaceApplication(ctx, gen, req)
		if err != nil {
			log.Fatalf("%s placement: %v", gen.Name(), err)
		}
		mappings := out.Feedback.Resolved
		cut := scheduler.EdgeCut(scheduler.AssignmentOf(mappings), rows, cols)
		mksp := fleet.Makespan(mappings, 30*time.Second)
		imb := fleet.Imbalance(mappings)
		fmt.Printf("%-12s %10d %12v %12.2f\n", gen.Name(), cut, mksp.Round(time.Millisecond), imb)
		results = append(results, result{gen.Name(), cut})

		// Tear the placement down before the next policy runs.
		for _, insts := range out.Instances {
			for _, inst := range insts {
				if _, err := ms.Runtime().Call(ctx, oceanClass.LOID(),
					proto.MethodDestroyInstance, proto.ObjectArgs{Object: inst}); err != nil {
					log.Fatalf("teardown: %v", err)
				}
			}
		}
		if err := ms.Enactor.CancelReservations(ctx, out.RequestID); err != nil {
			log.Fatalf("cancel: %v", err)
		}
	}

	fmt.Printf("\nthe stencil policy keeps %.0f%% of the nearest-neighbour edges on-host vs random\n",
		100*(1-float64(results[1].cut)/float64(results[0].cut)))
}
