// Replication: "k out of n" scheduling (paper §3.3) for a replicated
// service. The Scheduler names an equivalence class of candidate hosts
// and asks the Enactor to bind any 3 of them — including surviving the
// refusal of the most attractive candidate, which a fixed mapping could
// not.
//
// Run with: go run ./examples/replication
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"legion/internal/core"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/proto"
	"legion/internal/sched"
	"legion/internal/scheduler"
	"legion/internal/vault"
)

func main() {
	ctx := context.Background()
	ms := core.New("uva", core.Options{Seed: 5})
	defer ms.Close()
	v := ms.AddVault(vault.Config{Zone: "campus"})

	// Five candidate machines; the least-loaded one (which every naive
	// scheduler would pick first) refuses all requests — its
	// administrator said no (site autonomy).
	loads := []float64{0.05, 0.3, 0.5, 0.6, 0.7}
	for i, l := range loads {
		cfg := host.Config{
			Arch: "x86", OS: "Linux", OSVersion: "2.2",
			CPUs: 4, MemoryMB: 512, Zone: "campus",
			Vaults: []loid.LOID{v.LOID()},
		}
		if i == 0 {
			cfg.Policy = func(proto.MakeReservationArgs) error {
				return fmt.Errorf("%w: maintenance window", host.ErrPolicy)
			}
		}
		h := ms.AddHost(cfg)
		h.SetExternalLoad(l)
		h.Reassess(ctx)
	}

	replicas := ms.DefineClass("Replica", nil)
	out, err := ms.PlaceApplication(ctx, scheduler.Replicated{N: 5}, scheduler.Request{
		Classes: []scheduler.ClassRequest{{Class: replicas.LOID(), Count: 3}},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	})
	if err != nil {
		log.Fatalf("placement: %v", err)
	}
	fmt.Printf("asked for 3 of 5 candidate hosts; Enactor bound:\n")
	for i, m := range out.Feedback.Resolved {
		fmt.Printf("  replica %d on %s\n", i+1, m.Host.Short())
	}
	fmt.Printf("(reservations requested: %d, granted: %d — the refusing host cost one probe, no retry storm)\n",
		out.Feedback.Stats.ReservationsRequested, out.Feedback.Stats.ReservationsGranted)

	// All three replicas are live, on distinct hosts.
	hosts := map[loid.LOID]bool{}
	for _, insts := range out.Instances {
		for _, inst := range insts {
			if r, err := ms.Runtime().Call(ctx, inst, "ping", nil); err != nil || r != "pong" {
				log.Fatalf("replica %v: %v %v", inst, r, err)
			}
		}
	}
	for _, m := range out.Feedback.Resolved {
		hosts[m.Host] = true
	}
	fmt.Printf("%d live replicas on %d distinct hosts\n", len(out.Instances), len(hosts))
}
