// Federation: two administrative domains, each a separate runtime behind
// its own TCP listener (exactly what two legiond processes would be),
// federated into one metasystem. An application-side Scheduler computes a
// schedule spanning both sites and one domain's Enactor co-allocates
// across the wire — "the Enactor [may] negotiate with several resources
// from different administrative domains to perform co-allocation" (§3).
// The second site's administrator refuses foreign requests on one host,
// and the schedule's variant absorbs the refusal.
//
// Run with: go run ./examples/federation
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"legion/internal/collection"
	"legion/internal/core"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/sched"
	"legion/internal/vault"
)

// site boots one domain with two hosts (mutate tweaks host 1's config).
func site(domain string, mutate func(c *host.Config)) (*core.Metasystem, string) {
	ms := core.New(domain, core.Options{Seed: 1})
	v := ms.AddVault(vault.Config{Zone: domain})
	for i := 0; i < 2; i++ {
		cfg := host.Config{
			Arch: "x86", OS: "Linux", OSVersion: "2.2",
			CPUs: 4, MemoryMB: 512, Zone: domain,
			Vaults: []loid.LOID{v.LOID()},
		}
		if i == 0 && mutate != nil {
			mutate(&cfg)
		}
		ms.AddHost(cfg)
	}
	ms.DefineClass("Worker", nil)
	addr, err := ms.ListenAndServe("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return ms, addr
}

func main() {
	ctx := context.Background()

	uva, uvaAddr := site("uva", nil)
	defer uva.Close()
	// sdsc's first host refuses uva-domain requesters (site autonomy).
	sdsc, sdscAddr := site("sdsc", func(c *host.Config) {
		c.Policy = host.RefuseDomains("uva")
	})
	defer sdsc.Close()
	// uva's Enactor will negotiate with sdsc over TCP.
	uva.Runtime().BindDomain("sdsc", sdscAddr)

	// The application federates with both sites and discovers services.
	app := orb.NewRuntime("app")
	defer app.Close()
	app.BindDomain("uva", uvaAddr)
	app.BindDomain("sdsc", sdscAddr)
	lookup := func(domain string) proto.ServicesReply {
		res, err := app.Call(ctx, proto.DirectoryLOID(domain), proto.MethodLookupServices, nil)
		if err != nil {
			log.Fatalf("directory %s: %v", domain, err)
		}
		return res.(proto.ServicesReply)
	}
	uvaDir, sdscDir := lookup("uva"), lookup("sdsc")
	fmt.Printf("federated 2 domains: uva(%d hosts) + sdsc(%d hosts)\n",
		len(uvaDir.Hosts), len(sdscDir.Hosts))

	// One worker in each domain; the sdsc mapping targets the refusing
	// host, with a variant pointing at its tolerant sibling.
	master := sched.Master{Mappings: []sched.Mapping{
		{Class: uvaDir.Classes["Worker"], Host: uvaDir.Hosts[0], Vault: uvaDir.Vaults[0]},
		{Class: uvaDir.Classes["Worker"], Host: sdscDir.Hosts[0], Vault: sdscDir.Vaults[0]},
	}}
	var v sched.Variant
	v.AddReplacement(1, sched.Mapping{
		Class: uvaDir.Classes["Worker"], Host: sdscDir.Hosts[1], Vault: sdscDir.Vaults[0]})
	master.Variants = []sched.Variant{v}

	req := sched.RequestList{
		ID:      42,
		Masters: []sched.Master{master},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	}
	res, err := app.Call(ctx, uvaDir.Enactor, proto.MethodMakeReservations,
		proto.MakeReservationsArgs{Request: req})
	if err != nil {
		log.Fatal(err)
	}
	fb := res.(proto.FeedbackReply).Feedback
	if !fb.Success {
		log.Fatalf("co-allocation failed: %s", fb.Detail)
	}
	fmt.Printf("co-allocation reserved across domains (variants applied: %v)\n", fb.VariantsApplied)
	fmt.Printf("  sdsc admin refused host %s; variant moved the mapping to %s\n",
		sdscDir.Hosts[0].Short(), fb.Resolved[1].Host.Short())

	eres, err := app.Call(ctx, uvaDir.Enactor, proto.MethodEnactSchedule,
		proto.EnactScheduleArgs{RequestID: 42})
	if err != nil || !eres.(proto.EnactReply).Success {
		log.Fatalf("enact: %v %v", eres, err)
	}
	insts := eres.(proto.EnactReply).Instances
	// The sdsc-resident instance's LOID was minted by uva's class; bind
	// it explicitly so the app can reach it at its new home.
	app.Bind(insts[1][0], sdscAddr)
	for i, group := range insts {
		for _, inst := range group {
			r, err := app.Call(ctx, inst, "ping", nil)
			if err != nil {
				log.Fatalf("ping %v: %v", inst, err)
			}
			fmt.Printf("  instance %d: %s on %s -> %v\n", i, inst.Short(),
				fb.Resolved[i].Host.Short(), r)
		}
	}
	fmt.Println("one application, two autonomous sites, one schedule")

	// Hierarchical Collections (§4): front both sites' Collections with a
	// MetaCollection Router, so one query spans the federation — and keeps
	// answering from the surviving site when a domain drops out.
	router := collection.NewRouter(app, collection.RouterConfig{
		Shards:       []loid.LOID{uvaDir.Collection, sdscDir.Collection},
		ShardTimeout: 2 * time.Second,
		Route:        collection.RouteByDomain(map[string]int{"uva": 0, "sdsc": 1}),
	})
	recs, skipped, err := router.QueryPartial(ctx, `defined($host_arch)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federated query: %d hosts across both domains (%d shards skipped)\n",
		len(recs), skipped)

	sdsc.Close() // one whole site goes dark
	recs, skipped, err = router.QueryPartial(ctx, `defined($host_arch)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after sdsc outage: %d hosts still answered, %d shard skipped — partial, not failed\n",
		len(recs), skipped)
}
