// Package legion_test holds the benchmark harness: one testing.B
// benchmark per paper artifact (see DESIGN.md §5 and EXPERIMENTS.md).
// Custom quality metrics (success rates, lookup counts, edge cuts) are
// attached with b.ReportMetric so `go test -bench` output carries the
// reproduction's shape results alongside time/op.
//
// The printable experiment tables behind these benchmarks are generated
// by `go run ./cmd/legion-bench`.
package legion_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"legion/internal/attr"
	"legion/internal/classobj"
	"legion/internal/collection"
	"legion/internal/core"
	"legion/internal/enactor"
	"legion/internal/experiments"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/nws"
	"legion/internal/opr"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/query"
	"legion/internal/reservation"
	"legion/internal/resilient"
	"legion/internal/sched"
	"legion/internal/scheduler"
	"legion/internal/sim"
	"legion/internal/telemetry"
	"legion/internal/vault"
)

// buildBenchSystem assembles n hosts with one vault and a Worker class.
func buildBenchSystem(b *testing.B, nHosts, maxShared int) (*core.Metasystem, loid.LOID) {
	b.Helper()
	ms := core.New("uva", core.Options{Seed: 1})
	v := ms.AddVault(vault.Config{Zone: "z1"})
	for i := 0; i < nHosts; i++ {
		ms.AddHost(host.Config{
			Arch: "x86", OS: "Linux", OSVersion: "2.2",
			CPUs: 8, MemoryMB: 1024, Zone: "z1",
			MaxShared: maxShared,
			Vaults:    []loid.LOID{v.LOID()},
		})
	}
	class := ms.DefineClass("Worker", nil)
	return ms, class.LOID()
}

func shareSpec() sched.ReservationSpec {
	return sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour}
}

// BenchmarkTable1_HostInterfaceOps measures the Table 1 reservation-
// management ops (make/check/cancel) as one negotiation round trip.
func BenchmarkTable1_HostInterfaceOps(b *testing.B) {
	ms, _ := buildBenchSystem(b, 1, 0)
	defer ms.Close()
	h := ms.Hosts()[0]
	v := ms.Vaults()[0].LOID()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok, err := h.MakeReservation(ctx, proto.MakeReservationArgs{
			Vault: v, Type: reservation.ReusableTimesharing, Duration: time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := h.CheckReservation(tok); err != nil {
			b.Fatal(err)
		}
		if err := h.CancelReservation(tok); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_StartKillObject measures the Table 1 process-management
// path: startObject + killObject per iteration.
func BenchmarkTable1_StartKillObject(b *testing.B) {
	ms, classL := buildBenchSystem(b, 1, 0)
	defer ms.Close()
	h := ms.Hosts()[0]
	v := ms.Vaults()[0].LOID()
	ctx := context.Background()
	tok, err := h.MakeReservation(ctx, proto.MakeReservationArgs{
		Vault: v, Type: reservation.ReusableTimesharing, Duration: time.Hour,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := ms.Runtime().Mint("Worker")
		if _, err := h.StartObject(ctx, proto.StartObjectArgs{
			Token: *tok, Class: classL, Instances: []loid.LOID{inst},
		}); err != nil {
			b.Fatal(err)
		}
		if err := h.KillObject(ctx, inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_ReservationTypes measures token issue+verify for each
// Table 2 reservation class (the non-forgeable token machinery).
func BenchmarkTable2_ReservationTypes(b *testing.B) {
	for _, ty := range []reservation.Type{
		reservation.OneShotSpaceSharing,
		reservation.ReusableSpaceSharing,
		reservation.OneShotTimesharing,
		reservation.ReusableTimesharing,
	} {
		b.Run(ty.String(), func(b *testing.B) {
			signer := reservation.NewSigner()
			hostL := loid.LOID{Domain: "uva", Class: "Host", Instance: 1}
			vaultL := loid.LOID{Domain: "uva", Class: "Vault", Instance: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tok := reservation.Token{ID: uint64(i), Host: hostL, Vault: vaultL,
					Type: ty, Duration: time.Hour}
				signer.Sign(&tok)
				if !signer.Valid(&tok) {
					b.Fatal("token invalid")
				}
			}
		})
	}
}

// BenchmarkFig1_CoreObjectTree measures building the Figure 1 hierarchy:
// a metasystem with classes, hosts, vaults, and the Collection joined.
func BenchmarkFig1_CoreObjectTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, _ := buildBenchSystem(b, 8, 0)
		ms.Close()
	}
}

// BenchmarkFig2_Layerings measures one placement through each Figure 2
// layering scheme (see experiments.Fig2Layerings for the definitions).
func BenchmarkFig2_Layerings(b *testing.B) {
	// The experiment table runner measures all four; here each gets its
	// own sub-benchmark over the (d) full path and the (a) direct path,
	// the two extremes of the continuum.
	b.Run("a-direct", func(b *testing.B) {
		ms, classL := buildBenchSystem(b, 8, 0)
		defer ms.Close()
		class, _ := ms.Class("Worker")
		_ = classL
		ctx := context.Background()
		h := ms.Hosts()[0]
		v := ms.Vaults()[0].LOID()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := ms.Runtime().Call(ctx, h.LOID(), proto.MethodMakeReservation,
				proto.MakeReservationArgs{Vault: v, Type: reservation.ReusableTimesharing,
					Duration: time.Hour})
			if err != nil {
				b.Fatal(err)
			}
			tok := res.(proto.MakeReservationReply).Token
			insts, _, err := class.CreateInstance(ctx, 1, &proto.Placement{
				Host: h.LOID(), Vault: v, Token: tok}, nil)
			if err != nil {
				b.Fatal(err)
			}
			class.DestroyInstance(ctx, insts[0])
			// Reusable reservations outlive their objects; release so the
			// admission table does not fill over b.N iterations.
			if err := h.CancelReservation(&tok); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("d-full-pipeline", func(b *testing.B) {
		ms, classL := buildBenchSystem(b, 8, 0)
		defer ms.Close()
		class, _ := ms.Class("Worker")
		ctx := context.Background()
		req := scheduler.Request{
			Classes: []scheduler.ClassRequest{{Class: classL, Count: 1}},
			Res:     shareSpec(),
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := ms.PlaceApplication(ctx, scheduler.LoadAware{}, req)
			if err != nil {
				b.Fatal(err)
			}
			for _, insts := range out.Instances {
				for _, inst := range insts {
					class.DestroyInstance(ctx, inst)
				}
			}
			ms.Enactor.CancelReservations(ctx, out.RequestID)
		}
	})
}

// BenchmarkFig3_PlacementPipeline measures the full Figure 3 pipeline
// latency for a k-object application.
func BenchmarkFig3_PlacementPipeline(b *testing.B) {
	for _, k := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("objects=%d", k), func(b *testing.B) {
			ms, classL := buildBenchSystem(b, 8, 0)
			defer ms.Close()
			class, _ := ms.Class("Worker")
			ctx := context.Background()
			req := scheduler.Request{
				Classes: []scheduler.ClassRequest{{Class: classL, Count: k}},
				Res:     shareSpec(),
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := ms.PlaceApplication(ctx, scheduler.IRS{NSched: 3}, req)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				for _, insts := range out.Instances {
					for _, inst := range insts {
						class.DestroyInstance(ctx, inst)
					}
				}
				ms.Enactor.CancelReservations(ctx, out.RequestID)
				b.StartTimer()
			}
		})
	}
}

// BenchmarkFig4_CollectionOps measures Collection query throughput at
// several sizes, including the paper's IRIX example.
func BenchmarkFig4_CollectionOps(b *testing.B) {
	for _, size := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("records=%d", size), func(b *testing.B) {
			rt := orb.NewRuntime("uva")
			c := collection.New(rt, nil)
			for i := 0; i < size; i++ {
				os, ver := "Linux", "2.2"
				if i%5 == 0 {
					os, ver = "IRIX", "5.3"
				}
				c.Join(loid.LOID{Domain: "uva", Class: "Host", Instance: uint64(i + 1)},
					[]attr.Pair{
						{Name: "host_os_name", Value: attr.String(os)},
						{Name: "host_os_version", Value: attr.String(ver)},
						{Name: "host_load", Value: attr.Float(float64(i%100) / 100)},
					}, "")
			}
			q := `match("IRIX", $host_os_name) and match("5\..*", $host_os_version)`
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recs, err := c.Query(q)
				if err != nil {
					b.Fatal(err)
				}
				if len(recs) != size/5+boolToInt(size%5 != 0) {
					// size divisible by 5 here, so exact match expected.
					_ = recs
				}
			}
		})
	}
}

func boolToInt(v bool) int {
	if v {
		return 1
	}
	return 0
}

// BenchmarkFig5_VariantSelection measures the bitmap-based next-variant
// selection against the naive replacement-list scan.
func BenchmarkFig5_VariantSelection(b *testing.B) {
	const mappings = 64
	const variants = 256
	rng := rand.New(rand.NewSource(5))
	m := sched.Master{}
	mk := func(h uint64) sched.Mapping {
		return sched.Mapping{
			Class: loid.LOID{Domain: "d", Class: "C", Instance: 1},
			Host:  loid.LOID{Domain: "d", Class: "H", Instance: h},
			Vault: loid.LOID{Domain: "d", Class: "V", Instance: 1},
		}
	}
	for i := 0; i < mappings; i++ {
		m.Mappings = append(m.Mappings, mk(uint64(i+1)))
	}
	for v := 0; v < variants; v++ {
		var vr sched.Variant
		vr.AddReplacement(rng.Intn(mappings), mk(uint64(1000+v)))
		m.Variants = append(m.Variants, vr)
	}
	failed := sched.NewBitmap(mappings)
	failed.Set(mappings - 1)

	b.Run("bitmap", func(b *testing.B) {
		sink := 0
		for i := 0; i < b.N; i++ {
			sink += m.NextVariant(0, failed)
		}
		_ = sink
	})
	b.Run("list-scan", func(b *testing.B) {
		sink := 0
		for i := 0; i < b.N; i++ {
			found := -1
			for vi := range m.Variants {
				for _, r := range m.Variants[vi].Replacements {
					if failed.Get(r.Index) {
						found = vi
						break
					}
				}
				if found >= 0 {
					break
				}
			}
			sink += found
		}
		_ = sink
	})
}

// BenchmarkFig6_EnactorProtocol measures make_reservations +
// cancel_reservations round trips at several co-allocation widths.
func BenchmarkFig6_EnactorProtocol(b *testing.B) {
	for _, width := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("mappings=%d", width), func(b *testing.B) {
			ms, classL := buildBenchSystem(b, 8, 0)
			defer ms.Close()
			ctx := context.Background()
			v := ms.Vaults()[0].LOID()
			hosts := ms.Hosts()
			var maps []sched.Mapping
			for i := 0; i < width; i++ {
				maps = append(maps, sched.Mapping{
					Class: classL, Host: hosts[i%len(hosts)].LOID(), Vault: v,
				})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := sched.RequestList{
					ID:      ms.Enactor.NewRequestID(),
					Masters: []sched.Master{{Mappings: maps}},
					Res:     shareSpec(),
				}
				fb := ms.Enactor.MakeReservations(ctx, req)
				if !fb.Success {
					b.Fatalf("reserve failed: %s", fb.Detail)
				}
				if err := ms.Enactor.CancelReservations(ctx, req.ID); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7_RandomScheduler measures Figure 7 schedule generation
// (Collection query + random picks), without enactment.
func BenchmarkFig7_RandomScheduler(b *testing.B) {
	ms, classL := buildBenchSystem(b, 16, 0)
	defer ms.Close()
	env := ms.Env()
	ctx := context.Background()
	req := scheduler.Request{
		Classes: []scheduler.ClassRequest{{Class: classL, Count: 16}},
		Res:     shareSpec(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (scheduler.Random{}).Generate(ctx, env, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8_IRS measures IRS generation and reports the Collection
// lookup economy vs n independent Random generations as custom metrics.
func BenchmarkFig8_IRS(b *testing.B) {
	const n = 4
	ms, classL := buildBenchSystem(b, 16, 0)
	defer ms.Close()
	env := ms.Env()
	ctx := context.Background()
	req := scheduler.Request{
		Classes: []scheduler.ClassRequest{{Class: classL, Count: 16}},
		Res:     shareSpec(),
	}
	q0, _ := ms.Collection.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (scheduler.IRS{NSched: n}).Generate(ctx, env, req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	q1, _ := ms.Collection.Stats()
	b.ReportMetric(float64(q1-q0)/float64(b.N), "lookups/op")
	b.ReportMetric(n, "schedules/op")
}

// BenchmarkE1_SchedulerLadder measures end-to-end placement for each
// policy on the same fleet and reports modelled makespan as a metric.
func BenchmarkE1_SchedulerLadder(b *testing.B) {
	gens := []scheduler.Generator{
		scheduler.Random{},
		scheduler.IRS{NSched: 4},
		scheduler.LoadAware{},
	}
	for _, gen := range gens {
		b.Run(gen.Name(), func(b *testing.B) {
			ms := core.New("uva", core.Options{Seed: 11})
			rng := rand.New(rand.NewSource(11))
			specs := sim.RandomSpecs(rng, 10)
			for i := range specs {
				specs[i].MaxShared = 1024
			}
			fleet := sim.Build(ms, rng, specs)
			defer ms.Close()
			class := ms.DefineClass("Worker", nil)
			ctx := context.Background()
			req := scheduler.Request{
				Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: 32}},
				Res:     shareSpec(),
			}
			var lastMakespan time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := ms.PlaceApplication(ctx, gen, req)
				if err != nil {
					b.Fatal(err)
				}
				lastMakespan = fleet.Makespan(out.Feedback.Resolved, 30*time.Second)
				b.StopTimer()
				for _, insts := range out.Instances {
					for _, inst := range insts {
						class.DestroyInstance(ctx, inst)
					}
				}
				ms.Enactor.CancelReservations(ctx, out.RequestID)
				b.StartTimer()
			}
			b.ReportMetric(lastMakespan.Seconds(), "makespan-s")
		})
	}
}

// BenchmarkE1_StencilEdgeCut reports the communication quality of the
// specialized stencil policy vs random on an 8x8 grid.
func BenchmarkE1_StencilEdgeCut(b *testing.B) {
	const rows, cols = 8, 8
	for _, gen := range []scheduler.Generator{
		scheduler.Random{},
		scheduler.Stencil{Rows: rows, Cols: cols},
	} {
		b.Run(gen.Name(), func(b *testing.B) {
			ms, classL := buildBenchSystem(b, 8, 1024)
			defer ms.Close()
			env := ms.Env()
			ctx := context.Background()
			req := scheduler.Request{
				Classes: []scheduler.ClassRequest{{Class: classL, Count: rows * cols}},
				Res:     shareSpec(),
			}
			cut := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rl, err := gen.Generate(ctx, env, req)
				if err != nil {
					b.Fatal(err)
				}
				cut = scheduler.EdgeCut(scheduler.AssignmentOf(rl.Masters[0].Mappings), rows, cols)
			}
			b.ReportMetric(float64(cut), "edge-cut")
		})
	}
}

// BenchmarkE2_ReservationContention measures reservation admission under
// load for the two sharing disciplines and reports the grant rate.
func BenchmarkE2_ReservationContention(b *testing.B) {
	for _, ty := range []reservation.Type{
		reservation.ReusableSpaceSharing,
		reservation.ReusableTimesharing,
	} {
		b.Run(ty.String(), func(b *testing.B) {
			ms, _ := buildBenchSystem(b, 8, 4)
			defer ms.Close()
			ctx := context.Background()
			hosts := ms.Hosts()
			v := ms.Vaults()[0].LOID()
			rng := rand.New(rand.NewSource(2))
			granted := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := hosts[rng.Intn(len(hosts))]
				tok, err := h.MakeReservation(ctx, proto.MakeReservationArgs{
					Vault: v, Type: ty, Duration: time.Hour,
				})
				if err == nil {
					granted++
					// Release immediately so b.N doesn't saturate the table.
					h.CancelReservation(tok)
				}
			}
			b.ReportMetric(100*float64(granted)/float64(b.N), "grant-%")
		})
	}
}

// BenchmarkE3_MigrationPipeline measures the full migration path for a
// 64 KiB object state.
func BenchmarkE3_MigrationPipeline(b *testing.B) {
	ms, _ := buildBenchSystem(b, 2, 0)
	defer ms.Close()
	class, _ := ms.Class("Worker")
	ctx := context.Background()
	insts, p, err := class.CreateInstance(ctx, 1, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	inst := insts[0]
	if _, err := ms.Runtime().Call(ctx, inst, "set",
		[]string{"blob", string(make([]byte, 64<<10))}); err != nil {
		b.Fatal(err)
	}
	hosts := ms.Hosts()
	v := ms.Vaults()[0].LOID()
	cur := p.Host
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var dest loid.LOID
		for _, h := range hosts {
			if h.LOID() != cur {
				dest = h.LOID()
				break
			}
		}
		if err := ms.Migrate(ctx, class, inst, dest, v); err != nil {
			b.Fatal(err)
		}
		cur = dest
	}
}

// BenchmarkE4_FunctionInjection measures forecast-augmented Collection
// queries vs raw ones.
func BenchmarkE4_FunctionInjection(b *testing.B) {
	rt := orb.NewRuntime("uva")
	c := collection.New(rt, nil)
	nws.InjectForecast(c, nws.WindowMean{K: 5})
	hist := make([]float64, 32)
	for i := range hist {
		hist[i] = float64(i%10) / 10
	}
	for i := 0; i < 200; i++ {
		c.Join(loid.LOID{Domain: "uva", Class: "Host", Instance: uint64(i + 1)},
			[]attr.Pair{
				{Name: "host_load", Value: attr.Float(0.5)},
				{Name: "host_load_history", Value: nws.HistoryAttr(hist)},
			}, "")
	}
	b.Run("raw-load-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Query(`$host_load < 0.6`); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("forecast-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Query(`forecast_load() < 0.6`); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQueryParse measures query-language parsing (the Collection's
// per-query fixed cost).
func BenchmarkQueryParse(b *testing.B) {
	src := `match("IRIX", $host_os_name) and match("5\..*", $host_os_version) and $host_load < 0.5 or not defined($reserved)`
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOPRRoundTrip measures OPR encode+verify+decode for a 64 KiB
// object state (the migration unit cost).
func BenchmarkOPRRoundTrip(b *testing.B) {
	obj := loid.LOID{Domain: "uva", Class: "Worker", Instance: 1}
	state := make([]byte, 64<<10)
	b.SetBytes(int64(len(state)))
	for i := 0; i < b.N; i++ {
		o, err := opr.Encode(obj, uint64(i), state)
		if err != nil {
			b.Fatal(err)
		}
		var out []byte
		if err := o.Decode(&out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkORBLocalCall measures the in-process method invocation floor.
func BenchmarkORBLocalCall(b *testing.B) {
	rt := orb.NewRuntime("uva")
	obj := orb.NewServiceObject(rt.Mint("Echo"))
	obj.Handle("echo", func(_ context.Context, arg any) (any, error) { return arg, nil })
	rt.Register(obj)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Call(ctx, obj.LOID(), "echo", i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkORBRemoteCall measures the TCP method invocation cost (the
// multi-process metasystem floor).
func BenchmarkORBRemoteCall(b *testing.B) {
	server := orb.NewRuntime("uva")
	defer server.Close()
	obj := orb.NewServiceObject(server.Mint("Echo"))
	obj.Handle("echo", func(_ context.Context, arg any) (any, error) { return arg, nil })
	server.Register(obj)
	addr, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	client := orb.NewRuntime("sdsc")
	defer client.Close()
	client.Bind(obj.LOID(), addr)
	ctx := context.Background()
	// Warm the connection.
	if _, err := client.Call(ctx, obj.LOID(), "echo", proto.Ack{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(ctx, obj.LOID(), "echo", proto.Ack{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA1_VariantsVsRegenerate reports the ablation's headline
// numbers as metrics (success %, cancels per placement).
func BenchmarkA1_VariantsVsRegenerate(b *testing.B) {
	b.Run("table", func(b *testing.B) {
		var tb *experiments.Table
		for i := 0; i < b.N; i++ {
			tb = experiments.A1VariantVsRegenerate(10, 3)
		}
		_ = tb
	})
}

// BenchmarkE5_NetworkObjects regenerates the comm-aware placement table
// (weighted edge cut across a 3-site topology).
func BenchmarkE5_NetworkObjects(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E5NetworkObjects()
	}
}

// BenchmarkE6_MonitoredRebalancing regenerates the §3.5 closed-loop
// timeline comparison.
func BenchmarkE6_MonitoredRebalancing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.E6MonitoredRebalancing(20)
	}
}

// BenchmarkPlacement measures the full negotiation pipeline with the
// telemetry layer live ("instrumented": a real registry collecting
// spans, counters, and histograms) and with it compiled to no-ops
// ("uninstrumented": telemetry.NewDisabled()). Comparing the two
// sub-benchmarks bounds the instrumentation overhead; the instrumented
// run also reports the per-stage mean latencies its histograms
// accumulated, the numbers a dashboard would read off /metrics.
func BenchmarkPlacement(b *testing.B) {
	run := func(b *testing.B, reg *telemetry.Registry) {
		ms := core.New("uva", core.Options{Seed: 1, Metrics: reg})
		defer ms.Close()
		v := ms.AddVault(vault.Config{Zone: "z1"})
		for i := 0; i < 8; i++ {
			ms.AddHost(host.Config{
				Arch: "x86", OS: "Linux", OSVersion: "2.2",
				CPUs: 8, MemoryMB: 1024, Zone: "z1",
				Vaults: []loid.LOID{v.LOID()},
			})
		}
		class := ms.DefineClass("Worker", nil)
		ctx := context.Background()
		req := scheduler.Request{
			Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: 2}},
			Res:     shareSpec(),
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := ms.PlaceApplication(ctx, scheduler.IRS{NSched: 3}, req)
			if err != nil || !out.Success {
				b.Fatalf("placement failed: %v (%+v)", err, out)
			}
			b.StopTimer()
			for _, insts := range out.Instances {
				for _, inst := range insts {
					class.DestroyInstance(ctx, inst)
				}
			}
			ms.Enactor.CancelReservations(ctx, out.RequestID)
			b.StartTimer()
		}
	}
	b.Run("instrumented", func(b *testing.B) {
		reg := telemetry.NewRegistry()
		run(b, reg)
		for _, stage := range []struct{ metric, unit string }{
			{"legion_enactor_make_reservations_seconds", "reserve-µs"},
			{"legion_enactor_enact_schedule_seconds", "enact-µs"},
			{"legion_host_start_object_seconds", "start-µs"},
		} {
			h := reg.Histogram(stage.metric, telemetry.LatencyBuckets)
			if h.Count() > 0 {
				b.ReportMetric(h.Mean()*1e6, stage.unit)
			}
		}
	})
	b.Run("uninstrumented", func(b *testing.B) {
		run(b, telemetry.NewDisabled())
	})
}

// benchQueryHosts builds an n-host Collection and times the E8 selective
// conjunctive query with the inverted attribute index on vs the linear
// scan ablation. Both sub-benchmarks run with a warm parse cache, so the
// delta is candidate pruning alone.
func benchQueryHosts(b *testing.B, n int) {
	build := func(indexed bool) *collection.Collection {
		rt := orb.NewRuntime("uva")
		rt.SetMetrics(telemetry.NewDisabled())
		c := collection.New(rt, nil)
		if !indexed {
			c.SetIndexedKeys()
		}
		rng := rand.New(rand.NewSource(8))
		for i := 0; i < n; i++ {
			c.Join(loid.LOID{Domain: "uva", Class: "Host", Instance: uint64(i + 1)},
				[]attr.Pair{
					{Name: "host_zone", Value: attr.String(fmt.Sprintf("z%d", i%20))},
					{Name: "host_arch", Value: attr.String("x86")},
					{Name: "host_load", Value: attr.Float(rng.Float64())},
				}, "")
		}
		return c
	}
	const q = `$host_zone == "z3" and $host_load < 0.5`
	for _, mode := range []struct {
		name    string
		indexed bool
	}{{"indexed", true}, {"scan", false}} {
		b.Run(mode.name, func(b *testing.B) {
			c := build(mode.indexed)
			if _, err := c.Query(q); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recs, err := c.Query(q)
				if err != nil {
					b.Fatal(err)
				}
				if len(recs) == 0 {
					b.Fatal("selective query matched nothing")
				}
			}
		})
	}
}

// BenchmarkQuery1kHosts measures the indexed vs scan query latency on a
// 1000-host Collection (E8, query stage).
func BenchmarkQuery1kHosts(b *testing.B) { benchQueryHosts(b, 1000) }

// BenchmarkQuery10kHosts measures the same on 10000 hosts, where the
// index's candidate pruning dominates.
func BenchmarkQuery10kHosts(b *testing.B) { benchQueryHosts(b, 10000) }

// BenchmarkEnactWideSchedule measures one reserve+enact episode of a
// width-W schedule over simulated 1ms links, at the serial ablation
// (Parallelism 1) and the default fan-out (Parallelism 8). With the
// fan-out, latency stays near-flat as width grows (E8, enact stage).
func BenchmarkEnactWideSchedule(b *testing.B) {
	for _, width := range []int{4, 16, 32} {
		for _, par := range []int{1, 8} {
			b.Run(fmt.Sprintf("width=%d/parallel=%d", width, par), func(b *testing.B) {
				rt := orb.NewRuntime("uva")
				rt.SetMetrics(telemetry.NewDisabled())
				rt.SetLatency(time.Millisecond, 0)
				v := vault.New(rt, vault.Config{Zone: "z1"})
				hosts := make([]*host.Host, width)
				for i := range hosts {
					hosts[i] = host.New(rt, host.Config{
						Arch: "x86", OS: "Linux", CPUs: 64, MemoryMB: 1 << 14,
						Zone: "z1", MaxShared: 1024, Vaults: []loid.LOID{v.LOID()},
					})
				}
				class := classobj.New(rt, classobj.Config{Name: "Worker"})
				enr := enactor.New(rt, enactor.Config{
					CallTimeout: 30 * time.Second, Parallelism: par,
				})
				var maps []sched.Mapping
				for i := 0; i < width; i++ {
					maps = append(maps, sched.Mapping{
						Class: class.LOID(), Host: hosts[i].LOID(), Vault: v.LOID(),
					})
				}
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					req := sched.RequestList{
						ID:      enr.NewRequestID(),
						Masters: []sched.Master{{Mappings: maps}},
						Res:     shareSpec(),
					}
					fb := enr.MakeReservations(ctx, req)
					if !fb.Success {
						b.Fatalf("reserve failed: %s", fb.Detail)
					}
					reply := enr.EnactSchedule(ctx, req.ID)
					if !reply.Success {
						b.Fatalf("enact failed: %s", reply.Detail)
					}
					b.StopTimer()
					for _, insts := range reply.Instances {
						for _, inst := range insts {
							class.DestroyInstance(ctx, inst)
						}
					}
					enr.CancelReservations(ctx, req.ID)
					b.StartTimer()
				}
			})
		}
	}
}

// BenchmarkShardedQuery measures the federation layer's query cost at
// 10k hosts: a selective indexed query through a Router over 1/2/4
// Collection shards, against the direct single-Collection baseline
// (E9, query stage). The acceptance bar is "no worse than the
// baseline": the scatter-gather adds one local ORB hop and a merge, but
// each shard scans/prunes a fraction of the records.
func BenchmarkShardedQuery(b *testing.B) {
	const nHosts = 10000
	const q = `$host_zone == "z3" and $host_load < 0.5`
	join := func(join func(m loid.LOID, attrs []attr.Pair)) {
		rng := rand.New(rand.NewSource(8))
		for i := 0; i < nHosts; i++ {
			join(loid.LOID{Domain: "uva", Class: "Host", Instance: uint64(i + 1)},
				[]attr.Pair{
					{Name: "host_zone", Value: attr.String(fmt.Sprintf("z%d", i%20))},
					{Name: "host_arch", Value: attr.String("x86")},
					{Name: "host_load", Value: attr.Float(rng.Float64())},
				})
		}
	}
	b.Run("direct", func(b *testing.B) {
		rt := orb.NewRuntime("uva")
		rt.SetMetrics(telemetry.NewDisabled())
		c := collection.New(rt, nil)
		join(func(m loid.LOID, attrs []attr.Pair) { c.Join(m, attrs, "") })
		if _, err := c.Query(q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			recs, err := c.Query(q)
			if err != nil || len(recs) == 0 {
				b.Fatalf("query: %d recs, %v", len(recs), err)
			}
		}
	})
	for _, nShards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", nShards), func(b *testing.B) {
			rt := orb.NewRuntime("uva")
			rt.SetMetrics(telemetry.NewDisabled())
			loids := make([]loid.LOID, nShards)
			for i := range loids {
				loids[i] = collection.New(rt, nil).LOID()
			}
			r := collection.NewRouter(rt, collection.RouterConfig{Shards: loids})
			ctx := context.Background()
			join(func(m loid.LOID, attrs []attr.Pair) {
				if err := r.Join(ctx, m, attrs, ""); err != nil {
					b.Fatal(err)
				}
			})
			if _, _, err := r.QueryPartial(ctx, q); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recs, skipped, err := r.QueryPartial(ctx, q)
				if err != nil || skipped != 0 || len(recs) == 0 {
					b.Fatalf("query: %d recs, %d skipped, %v", len(recs), skipped, err)
				}
			}
		})
	}
	// The deployment regime: Collections are remote services one link
	// away. The concurrent scatter pays the link once, like the direct
	// call does — the Router's fan-out is free where it matters.
	b.Run("direct-1ms-link", func(b *testing.B) {
		rt := orb.NewRuntime("uva")
		rt.SetMetrics(telemetry.NewDisabled())
		c := collection.New(rt, nil)
		join(func(m loid.LOID, attrs []attr.Pair) { c.Join(m, attrs, "") })
		rt.SetLatency(time.Millisecond, 0)
		ctx := context.Background()
		if _, err := rt.Call(ctx, c.LOID(), proto.MethodQueryCollection, proto.QueryArgs{Query: q}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.Call(ctx, c.LOID(), proto.MethodQueryCollection, proto.QueryArgs{Query: q}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("shards=4-1ms-links", func(b *testing.B) {
		rt := orb.NewRuntime("uva")
		rt.SetMetrics(telemetry.NewDisabled())
		loids := make([]loid.LOID, 4)
		for i := range loids {
			loids[i] = collection.New(rt, nil).LOID()
		}
		r := collection.NewRouter(rt, collection.RouterConfig{Shards: loids})
		ctx := context.Background()
		join(func(m loid.LOID, attrs []attr.Pair) {
			if err := r.Join(ctx, m, attrs, ""); err != nil {
				b.Fatal(err)
			}
		})
		rt.SetLatency(time.Millisecond, 0)
		if _, _, err := r.QueryPartial(ctx, q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			recs, skipped, err := r.QueryPartial(ctx, q)
			if err != nil || skipped != 0 || len(recs) == 0 {
				b.Fatalf("query: %d recs, %d skipped, %v", len(recs), skipped, err)
			}
		}
	})
}

// BenchmarkE7_PlacementUnderFaults measures the full placement pipeline
// with a fraction of calls failing as injected transport faults — the
// resilience layer's retry/breaker cost and effectiveness. Success rate
// is reported as a metric; time/op includes retries and backoff.
func BenchmarkE7_PlacementUnderFaults(b *testing.B) {
	for _, rate := range []float64{0, 0.05, 0.20} {
		b.Run(fmt.Sprintf("faults=%.0f%%", rate*100), func(b *testing.B) {
			ms := core.New("uva", core.Options{Seed: 1, Retry: resilient.Policy{
				MaxAttempts:    4,
				BaseDelay:      time.Millisecond,
				Budget:         10 * time.Second,
				AttemptTimeout: 5 * time.Second,
			}})
			defer ms.Close()
			v := ms.AddVault(vault.Config{Zone: "z1"})
			for i := 0; i < 4; i++ {
				ms.AddHost(host.Config{
					Arch: "x86", OS: "Linux", OSVersion: "2.2",
					CPUs: 8, MemoryMB: 1024, Zone: "z1",
					MaxShared: 1024,
					Vaults:    []loid.LOID{v.LOID()},
				})
			}
			class := ms.DefineClass("Worker", nil)
			ctx := context.Background()
			req := scheduler.Request{
				Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: 3}},
				Res:     shareSpec(),
			}
			rng := rand.New(rand.NewSource(1999))
			var mu sync.Mutex
			if rate > 0 {
				ms.Runtime().SetFaultInjector(func(target loid.LOID, method string) error {
					mu.Lock()
					defer mu.Unlock()
					if rng.Float64() < rate {
						return fmt.Errorf("%w: flaky link", orb.ErrInjectedFault)
					}
					return nil
				})
				defer ms.Runtime().SetFaultInjector(nil)
			}
			placed := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := ms.PlaceApplicationLimits(ctx, scheduler.IRS{NSched: 3}, req,
					scheduler.Wrapper{SchedTryLimit: 4, EnactTryLimit: 2})
				if err != nil || !out.Success {
					continue
				}
				placed++
				b.StopTimer()
				for j, insts := range out.Instances {
					for _, inst := range insts {
						_, _ = ms.Runtime().Call(ctx, out.Feedback.Resolved[j].Class,
							proto.MethodDestroyInstance, proto.ObjectArgs{Object: inst})
					}
				}
				ms.Enactor.CancelReservations(ctx, out.RequestID)
				b.StartTimer()
			}
			b.ReportMetric(100*float64(placed)/float64(b.N), "success-%")
		})
	}
}
