#!/usr/bin/env bash
# perf_slo_check.sh — the perf-qualification gate CI runs on every PR.
#
# Regenerates the trend-tracked experiment tables, diffs them against the
# committed baseline (exit 2 past LEGION_BENCH_DRIFT_MAX), and checks the
# LEGION_PERF_* absolute ceilings (exit 3 on violation). The JSON tables
# land in $OUT for artifact upload either way.
#
# Environment:
#   BASELINE                      baseline -json file (default BENCH_PR5.json)
#   OUT                           output JSON path (default bench_current.json)
#   EXPERIMENTS                   IDs to run (default E6,E10,E13,E14,E15)
#   LEGION_BENCH_DRIFT_MAX        relative drift gate, e.g. 0.5 (unset = report only)
#   LEGION_PERF_QUERY_10K_US_MAX  ceiling for E8 indexed query over 10k hosts (µs)
#   LEGION_PERF_E13_BINARY_WALL_MS_MAX  ceiling for E13's binary-codec campaign wall (ms)
#   (full ceiling list: cmd/legion-bench/slo.go)
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${BASELINE:-BENCH_PR5.json}"
OUT="${OUT:-bench_current.json}"
EXPERIMENTS="${EXPERIMENTS:-E6,E10,E13,E14,E15}"
BIN="$(mktemp -d)/legion-bench"

go build -o "${BIN}" ./cmd/legion-bench

echo "== perf gate: running ${EXPERIMENTS} =="
"${BIN}" -run "${EXPERIMENTS}" -json > "${OUT}"

status=0

echo "== drift vs ${BASELINE} (LEGION_BENCH_DRIFT_MAX=${LEGION_BENCH_DRIFT_MAX:-unset}) =="
"${BIN}" -input "${OUT}" -compare "${BASELINE}" || status=$?

echo "== absolute SLO ceilings =="
"${BIN}" -input "${OUT}" -slo || s=$?
if [ "${s:-0}" -ne 0 ]; then status=${s}; fi

echo "== perf gate exit ${status} (tables: ${OUT}) =="
exit "${status}"
