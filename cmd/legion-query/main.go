// Command legion-query runs a Collection query against a running legiond
// node — the §3.2 user path ("Users, or their agents, obtain information
// about resources by issuing queries to a Collection") as a CLI.
//
//	legion-query -addr 127.0.0.1:7777 -domain uva \
//	    -q 'match("Linux", $host_os_name) and $host_load < 0.5'
//
// With -watch, the query repeats on an interval, showing the live state
// the Hosts push on reassessment.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"legion/internal/attr"
	"legion/internal/orb"
	"legion/internal/proto"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7777", "legiond TCP address")
		domain  = flag.String("domain", "uva", "legiond administrative domain")
		q       = flag.String("q", "defined($host_arch)", "query expression")
		watch   = flag.Duration("watch", 0, "repeat interval (0 = run once)")
		verbose = flag.Bool("v", false, "print every attribute of each record")
	)
	flag.Parse()

	rt := orb.NewRuntime("query-client")
	defer rt.Close()
	rt.BindDomain(*domain, *addr)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	res, err := rt.Call(ctx, proto.DirectoryLOID(*domain), proto.MethodLookupServices, nil)
	cancel()
	if err != nil {
		log.Fatalf("directory lookup at %s: %v", *addr, err)
	}
	collL := res.(proto.ServicesReply).Collection

	run := func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		res, err := rt.Call(ctx, collL, proto.MethodQueryCollection, proto.QueryArgs{Query: *q})
		if err != nil {
			log.Fatalf("query: %v", err)
		}
		recs := res.(proto.QueryReply).Records
		fmt.Printf("%d record(s) match %q\n", len(recs), *q)
		for _, r := range recs {
			m := attr.FromPairs(r.Attrs)
			if *verbose {
				fmt.Printf("  %s\n", r.Member)
				names := make([]string, 0, len(m))
				for n := range m {
					names = append(names, n)
				}
				sort.Strings(names)
				for _, n := range names {
					fmt.Printf("    %-26s %s\n", n, m[n])
				}
				continue
			}
			fmt.Printf("  %-14s %s/%s load=%s cpus=%s\n", r.Member.Short(),
				m["host_arch"].Str(), m["host_os_name"].Str(),
				m["host_load"], m["host_cpus"])
		}
	}

	run()
	if *watch > 0 {
		t := time.NewTicker(*watch)
		defer t.Stop()
		for range t.C {
			fmt.Println("---")
			run()
		}
	}
}
