// Command legion-run submits a placement request to a running legiond
// node from a separate process: it binds the node's domain to its TCP
// address, discovers the service objects through the bootstrap
// directory, runs a Scheduler locally (layering (a)/(d) of Figure 2 —
// the application-side Scheduler talking to remote RM services), and
// drives the remote Enactor.
//
//	legion-run -addr 127.0.0.1:7777 -domain uva -count 6 -scheduler irs
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/sched"
	"legion/internal/scheduler"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7777", "legiond TCP address")
		domain    = flag.String("domain", "uva", "legiond administrative domain")
		className = flag.String("class", "Worker", "object class to instantiate")
		count     = flag.Int("count", 4, "number of instances")
		policy    = flag.String("scheduler", "irs", "random | irs | rr | load | cost | economy")
		seed      = flag.Int64("seed", 0, "RNG seed (0 = time-based)")
		share     = flag.Bool("share", true, "timesharing reservations")
		duration  = flag.Duration("duration", time.Hour, "reservation duration")
		ping      = flag.Bool("ping", true, "ping created instances")
		tenant    = flag.String("tenant", "", "tenant account billed for the placement (requires an economy-enabled node)")
		deadline  = flag.Duration("deadline", 0, "completion deadline the economy scheduler places against (0 = none)")
		budget    = flag.Float64("budget", 0, "spend cap for this request in credit units (0 = unlimited)")
	)
	flag.Parse()

	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	rt := orb.NewRuntime("client-" + *domain)
	defer rt.Close()
	rt.BindDomain(*domain, *addr)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Bootstrap: discover the node's service objects.
	res, err := rt.Call(ctx, proto.DirectoryLOID(*domain), proto.MethodLookupServices, nil)
	if err != nil {
		log.Fatalf("directory lookup at %s: %v", *addr, err)
	}
	dir := res.(proto.ServicesReply)
	classL, ok := dir.Classes[*className]
	if !ok {
		log.Fatalf("node has no class %q (has: %v)", *className, dir.Classes)
	}
	fmt.Printf("discovered: collection=%v enactor=%v class=%v (%d hosts)\n",
		dir.Collection.Short(), dir.Enactor.Short(), classL.Short(), len(dir.Hosts))

	var gen scheduler.Generator
	switch *policy {
	case "random":
		gen = scheduler.Random{}
	case "irs":
		gen = scheduler.IRS{NSched: 4}
	case "rr":
		gen = &scheduler.RoundRobin{}
	case "load":
		gen = scheduler.LoadAware{}
	case "cost":
		gen = scheduler.CostAware{}
	case "economy":
		gen = scheduler.DeadlineBudget{Estimate: *duration}
	default:
		log.Fatalf("unknown scheduler %q", *policy)
	}

	env := &scheduler.Env{
		RT:         rt,
		Collection: dir.Collection,
		Rand:       rand.New(rand.NewSource(*seed)),
	}
	req := scheduler.Request{
		Classes: []scheduler.ClassRequest{{Class: classL, Count: *count}},
		Res: sched.ReservationSpec{Share: *share, Reuse: true, Duration: *duration,
			Tenant: *tenant, Deadline: *deadline, Budget: *budget},
	}

	t0 := time.Now()
	out, err := scheduler.Wrapper{}.Run(ctx, env, dir.Enactor, gen, req)
	if err != nil {
		log.Fatalf("placement: %v", err)
	}
	fmt.Printf("placed %d instance(s) with %s in %v (%d schedule / %d enact attempts)\n",
		*count, gen.Name(), time.Since(t0).Round(time.Millisecond),
		out.SchedAttempts, out.EnactAttempts)
	for i, insts := range out.Instances {
		m := out.Feedback.Resolved[i]
		for _, inst := range insts {
			fmt.Printf("  %s on %s (vault %s)", inst.Short(), m.Host.Short(), m.Vault.Short())
			if *ping {
				if r, err := rt.Call(ctx, inst, "ping", nil); err == nil {
					fmt.Printf(" ping=%v", r)
				} else {
					fmt.Printf(" ping-error=%v", err)
				}
			}
			fmt.Println()
		}
	}
}
