// Command legion-bench regenerates the experiment tables recorded in
// EXPERIMENTS.md: one per paper artifact (Tables 1-2, Figures 1-9 as
// executable behaviour) plus the §6 promised scheduler benchmark and the
// design ablations from DESIGN.md.
//
//	legion-bench              # run everything
//	legion-bench -run F8,E1   # run selected experiments
//	legion-bench -run E8 -json # machine-readable tables (CI trend tracking)
//	legion-bench -list        # list experiment IDs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"legion/internal/experiments"
	"legion/internal/telemetry"
)

// experiment couples an ID with its runner.
type experiment struct {
	id    string
	title string
	run   func() *experiments.Table
}

// faultRates are the injected-fault rates E7 sweeps; -faultrate narrows
// the sweep to a single rate.
var faultRates = []float64{0, 0.05, 0.20}

// e12Hosts/e12Requests size E12's virtual-time campaign. The catalogue
// default is the reduced CI row (10k hosts / 50k placements, seconds of
// wall time); -virtual switches to the committed full-scale row
// (100k / 1M, minutes of wall time), and -hosts/-requests override
// either.
var (
	e12Hosts    = 10_000
	e12Requests = 50_000
)

// e13Hosts/e13Requests size E13's codec-boundary reruns of the E12
// campaign; -hosts/-requests override these too.
var (
	e13Hosts    = 10_000
	e13Requests = 50_000
)

// e14Hosts/e14Requests size E14's computational-economy campaign;
// -hosts/-requests override these too.
var (
	e14Hosts    = 10_000
	e14Requests = 20_000
)

// e15Steps sizes E15's predictive-vs-reactive virtual-time timeline;
// e16Tasks sizes E16's parameter-space study. -steps/-tasks override.
var (
	e15Steps = 96
	e16Tasks = 300
)

func catalogue() []experiment {
	return []experiment{
		{"T1", "Host interface per-op latency (Table 1)", func() *experiments.Table {
			return experiments.Table1HostInterface(200)
		}},
		{"T2", "Reservation type semantics (Table 2)", func() *experiments.Table {
			return experiments.Table2ReservationTypes()
		}},
		{"F1", "Core object hierarchy (Figure 1)", func() *experiments.Table {
			return experiments.Fig1CoreObjectTree(4, 1, 6)
		}},
		{"F2", "RM layering schemes (Figure 2)", func() *experiments.Table {
			return experiments.Fig2Layerings(20)
		}},
		{"F3", "Placement walkthrough (Figure 3)", func() *experiments.Table {
			return experiments.Fig3PlacementTrace()
		}},
		{"F4", "Collection interface (Figure 4)", func() *experiments.Table {
			return experiments.Fig4CollectionOps(nil)
		}},
		{"F5", "Variant selection (Figure 5)", func() *experiments.Table {
			return experiments.Fig5VariantSelection(64, nil)
		}},
		{"F6", "Enactor protocol (Figure 6)", func() *experiments.Table {
			return experiments.Fig6EnactorProtocol()
		}},
		{"F7", "Random scheduler (Figure 7)", func() *experiments.Table {
			return experiments.Fig7RandomScheduler(nil)
		}},
		{"F8", "IRS vs Random (Figures 8-9)", func() *experiments.Table {
			return experiments.Fig8IRS(30)
		}},
		{"E1", "Scheduler intelligence ladder (§6)", func() *experiments.Table {
			return experiments.E1SchedulerLadder()
		}},
		{"E2", "Reservation contention", func() *experiments.Table {
			return experiments.E2ReservationContention(nil)
		}},
		{"E3", "Migration pipeline", func() *experiments.Table {
			return experiments.E3MigrationPipeline(nil)
		}},
		{"E3b", "Trigger-to-outcall latency", func() *experiments.Table {
			return experiments.E3TriggerLatency(50)
		}},
		{"E4", "Function injection (NWS forecasts)", func() *experiments.Table {
			return experiments.E4FunctionInjection(60)
		}},
		{"E5", "Network Objects: comm-aware placement", func() *experiments.Table {
			return experiments.E5NetworkObjects()
		}},
		{"E6", "Monitored rebalancing vs static", func() *experiments.Table {
			return experiments.E6MonitoredRebalancing(40)
		}},
		{"E7", "Placement under injected faults (resilience layer)", func() *experiments.Table {
			return experiments.E7FaultRateResilience(20, faultRates)
		}},
		{"E8", "Concurrent pipeline: indexed queries, parallel enactment", func() *experiments.Table {
			return experiments.E8ConcurrentPipeline(nil, nil)
		}},
		{"E9", "Hierarchical Collections: sharded queries, batched updates", func() *experiments.Table {
			return experiments.E9HierarchicalCollections(0, 0, 0)
		}},
		{"E10", "Rebalancing at scale under migration-path faults", func() *experiments.Table {
			return experiments.E10RebalanceChaosScale(12, 36, 60, 0.25)
		}},
		{"E11", "Overload storms: admission control vs uncontrolled", func() *experiments.Table {
			return experiments.E11OverloadAdmission(nil, 0)
		}},
		{"E12", "Virtual-time scale: open-loop placements, discrete-event clock", func() *experiments.Table {
			return experiments.E12VirtualScale(e12Hosts, e12Requests)
		}},
		{"E13", "Codec boundary: E12 wall-clock under gob vs binary marshalling", func() *experiments.Table {
			return experiments.E13CodecBoundary(e13Hosts, e13Requests)
		}},
		{"E14", "Computational economy: deadline/budget scheduling vs cost-blind policies", func() *experiments.Table {
			return experiments.E14Economy(e14Hosts, e14Requests)
		}},
		{"E15", "Predictive (NWS forecast) vs reactive rebalancing", func() *experiments.Table {
			return experiments.E15PredictiveRebalancing(e15Steps)
		}},
		{"E16", "Parameter-space study: reusable-reservation pool vs per-task negotiation (Table 2)", func() *experiments.Table {
			return experiments.E16ParamSpaceThroughput(e16Tasks)
		}},
		{"A1", "Ablation: variants vs regenerate", func() *experiments.Table {
			return experiments.A1VariantVsRegenerate(30, 3)
		}},
		{"A2", "Ablation: co-allocation vs optimistic", func() *experiments.Table {
			return experiments.A2CoAllocation(20, 6)
		}},
		{"A3", "Ablation: snapshot vs direct queries", func() *experiments.Table {
			return experiments.A3SnapshotVsDirect(30, 5)
		}},
		{"A4", "Ablation: push vs pull", func() *experiments.Table {
			return experiments.A4PushVsPull(50)
		}},
	}
}

func main() {
	var (
		run       = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		faultrate = flag.Float64("faultrate", -1, "inject this fraction of transport faults in E7 (0..1; default: sweep 0%, 5%, 20%)")
		metrics   = flag.Bool("metrics", false, "after running, dump the accumulated telemetry registry as text")
		asJSON    = flag.Bool("json", false, "emit the result tables as a JSON array instead of text")
		compare   = flag.String("compare", "", "diff this run's tables against a baseline -json file; exits nonzero past LEGION_BENCH_DRIFT_MAX (fraction, unset = report only)")
		virtual   = flag.Bool("virtual", false, "run E12 at full committed scale (100k hosts / 1M placements; implies -run E12 when -run is unset)")
		hosts     = flag.Int("hosts", 0, "override E12/E13/E14 fleet size (virtual-time hosts)")
		requests  = flag.Int("requests", 0, "override E12/E13/E14 placement count")
		steps     = flag.Int("steps", 0, "override E15's virtual-time step count")
		tasks     = flag.Int("tasks", 0, "override E16's parameter-space task count")
		input     = flag.String("input", "", "load tables from this -json output file instead of running experiments (for -compare/-slo on recorded results)")
		slo       = flag.Bool("slo", false, "after running, check LEGION_PERF_* env ceilings against the result tables; exits 3 on violation")
	)
	flag.Parse()
	if *faultrate >= 0 {
		faultRates = []float64{*faultrate}
	}
	if *virtual {
		e12Hosts, e12Requests = 100_000, 1_000_000
		if *run == "" {
			*run = "E12"
		}
	}
	if *hosts > 0 {
		e12Hosts, e13Hosts, e14Hosts = *hosts, *hosts, *hosts
	}
	if *requests > 0 {
		e12Requests, e13Requests, e14Requests = *requests, *requests, *requests
	}
	if *steps > 0 {
		e15Steps = *steps
	}
	if *tasks > 0 {
		e16Tasks = *tasks
	}

	cat := catalogue()
	if *list {
		for _, e := range cat {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}
	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	var tables []*experiments.Table
	if *input != "" {
		raw, err := os.ReadFile(*input)
		if err != nil {
			fmt.Fprintf(os.Stderr, "input: %v\n", err)
			os.Exit(1)
		}
		var loaded []*experiments.Table
		if err := json.Unmarshal(raw, &loaded); err != nil {
			fmt.Fprintf(os.Stderr, "input %s: %v\n", *input, err)
			os.Exit(1)
		}
		for _, t := range loaded {
			if len(want) > 0 && !want[t.ID] {
				continue
			}
			if !*asJSON {
				t.Fprint(os.Stdout)
			}
			tables = append(tables, t)
		}
	} else {
		for _, e := range cat {
			if len(want) > 0 && !want[e.id] {
				continue
			}
			t := e.run()
			if !*asJSON {
				t.Fprint(os.Stdout)
			}
			tables = append(tables, t)
		}
	}
	if len(tables) == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q; try -list\n", *run)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintf(os.Stderr, "encode: %v\n", err)
			os.Exit(1)
		}
	}
	if *metrics {
		// Every experiment's runtimes default to telemetry.Default, so
		// this is the union of all pipeline activity the run produced.
		fmt.Println("## telemetry")
		fmt.Println()
		fmt.Println("```")
		telemetry.Default.WriteText(os.Stdout)
		fmt.Println("```")
	}
	if *compare != "" {
		if code := runCompare(*compare, tables); code != 0 {
			os.Exit(code)
		}
	}
	if *slo {
		if code := checkSLOs(tables); code != 0 {
			os.Exit(code)
		}
	}
}
