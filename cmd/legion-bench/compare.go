package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"legion/internal/experiments"
)

// drift is one comparable cell that moved between the baseline file and
// the current run.
type drift struct {
	table, row, col    string
	baseline, current  float64
	rel                float64
	baseRaw, currorRaw string
}

// numericCell parses a table cell into a comparable float: plain
// numbers, percentages ("85%"), speedups ("3.2x"), and durations
// ("1.2ms"). The bool is false for text cells, which are skipped.
func numericCell(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	if d, err := time.ParseDuration(strings.ReplaceAll(s, "µ", "u")); err == nil && strings.IndexFunc(s, func(r rune) bool {
		return r < '0' || r > '9'
	}) >= 0 {
		return d.Seconds(), true
	}
	trimmed := strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	v, err := strconv.ParseFloat(trimmed, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// compareTables diffs the current tables against the baseline file,
// matching cells by (table ID, first-column value, column header).
// It returns the drifting cells sorted as encountered; cells present on
// only one side (new experiments, renamed rows) are skipped — the
// comparison guards regressions in shared coverage, not catalogue
// growth.
func compareTables(baselinePath string, current []*experiments.Table) ([]drift, error) {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var baseline []*experiments.Table
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	baseByID := make(map[string]*experiments.Table, len(baseline))
	for _, t := range baseline {
		baseByID[t.ID] = t
	}

	var out []drift
	for _, cur := range current {
		base, ok := baseByID[cur.ID]
		if !ok {
			continue
		}
		baseCol := make(map[string]int, len(base.Header))
		for i, h := range base.Header {
			baseCol[h] = i
		}
		baseRow := make(map[string][]string, len(base.Rows))
		for _, r := range base.Rows {
			if len(r) > 0 {
				baseRow[r[0]] = r
			}
		}
		for _, row := range cur.Rows {
			if len(row) == 0 {
				continue
			}
			brow, ok := baseRow[row[0]]
			if !ok {
				continue
			}
			for ci := 1; ci < len(row) && ci < len(cur.Header); ci++ {
				bi, ok := baseCol[cur.Header[ci]]
				if !ok || bi >= len(brow) {
					continue
				}
				curV, okc := numericCell(row[ci])
				baseV, okb := numericCell(brow[bi])
				if !okc || !okb {
					continue
				}
				denom := math.Max(math.Abs(baseV), 1e-9)
				rel := math.Abs(curV-baseV) / denom
				out = append(out, drift{
					table: cur.ID, row: row[0], col: cur.Header[ci],
					baseline: baseV, current: curV, rel: rel,
					baseRaw: brow[bi], currorRaw: row[ci],
				})
			}
		}
	}
	return out, nil
}

// runCompare prints the comparison report and returns the process exit
// code: nonzero only when LEGION_BENCH_DRIFT_MAX is set (a fraction,
// e.g. 0.5 = 50%) and some cell drifted beyond it. Unset, the report is
// informational — CI publishes it without gating, because most
// experiment numbers are timing-derived and CI machines vary.
func runCompare(baselinePath string, current []*experiments.Table) int {
	drifts, err := compareTables(baselinePath, current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare: %v\n", err)
		return 1
	}
	var maxRel float64
	worst := -1
	for i, d := range drifts {
		if d.rel > maxRel {
			maxRel = d.rel
			worst = i
		}
	}
	fmt.Printf("## bench compare vs %s\n", baselinePath)
	fmt.Printf("compared %d cells\n", len(drifts))
	for _, d := range drifts {
		if d.rel >= 0.10 { // only report visible movement
			fmt.Printf("  %-4s %-40s %-24s %s -> %s (%+.0f%%)\n",
				d.table, d.row, d.col, d.baseRaw, d.currorRaw, 100*(d.current-d.baseline)/math.Max(math.Abs(d.baseline), 1e-9))
		}
	}
	if worst >= 0 {
		d := drifts[worst]
		fmt.Printf("max drift: %.0f%% (%s / %s / %s)\n", 100*maxRel, d.table, d.row, d.col)
	}

	thresh := os.Getenv("LEGION_BENCH_DRIFT_MAX")
	if thresh == "" {
		fmt.Println("LEGION_BENCH_DRIFT_MAX unset: report only")
		return 0
	}
	limit, err := strconv.ParseFloat(thresh, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare: bad LEGION_BENCH_DRIFT_MAX %q: %v\n", thresh, err)
		return 1
	}
	if maxRel > limit {
		fmt.Fprintf(os.Stderr, "compare: max drift %.0f%% exceeds LEGION_BENCH_DRIFT_MAX %.0f%%\n",
			100*maxRel, 100*limit)
		return 2
	}
	fmt.Printf("max drift within LEGION_BENCH_DRIFT_MAX (%.0f%%)\n", 100*limit)
	return 0
}
