package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"legion/internal/experiments"
)

// sloSpec binds an environment-variable ceiling to one table cell,
// located by table ID, leading row cells, and column header. The cell
// parses through numericCell (so durations work) and is compared in the
// spec's unit.
type sloSpec struct {
	env     string   // ceiling variable, e.g. LEGION_PERF_QUERY_10K_US_MAX
	table   string   // table ID
	match   []string // leading row cells that identify the row
	col     string   // column header
	toUnit  float64  // multiplier from numericCell's units to the env unit
	unitTag string   // printed with values, e.g. "µs"
}

// sloSpecs is the perf-qualification gate: each entry names a
// latency-critical cell and the env var CI sets to its ceiling. Specs
// whose variable is unset are skipped, so local runs stay quiet.
// numericCell returns seconds for durations; toUnit converts to the
// variable's advertised unit.
var sloSpecs = []sloSpec{
	{env: "LEGION_PERF_QUERY_10K_US_MAX", table: "E8",
		match: []string{"query", "10000 hosts", "indexed"}, col: "mean latency",
		toUnit: 1e6, unitTag: "µs"},
	{env: "LEGION_PERF_QUERY_1K_US_MAX", table: "E8",
		match: []string{"query", "1000 hosts", "indexed"}, col: "mean latency",
		toUnit: 1e6, unitTag: "µs"},
	{env: "LEGION_PERF_E12_P99_MS_MAX", table: "E12",
		match: []string{}, col: "p99",
		toUnit: 1e3, unitTag: "ms"},
	{env: "LEGION_PERF_E13_BINARY_WALL_MS_MAX", table: "E13",
		match: []string{"binary"}, col: "wall",
		toUnit: 1e3, unitTag: "ms"},
	{env: "LEGION_PERF_E14_DB_P99_MS_MAX", table: "E14",
		match: []string{"deadline-budget"}, col: "p99",
		toUnit: 1e3, unitTag: "ms"},
	{env: "LEGION_PERF_E14_DB_SPEND_PCT_MAX", table: "E14",
		match: []string{"deadline-budget"}, col: "spend vs random",
		toUnit: 1, unitTag: "%"},
	// E15: the predictive arm's quality metrics. The late-shed count is
	// the headline — a forecast-driven shed landing after the watermark
	// crossing means the predictor bought no lead time.
	{env: "LEGION_PERF_E15_PRED_LATE_MAX", table: "E15",
		match: []string{"predictive (trend)"}, col: "too late",
		toUnit: 1, unitTag: " sheds"},
	{env: "LEGION_PERF_E15_PRED_MEAN_LOAD_PCT_MAX", table: "E15",
		match: []string{"predictive (trend)"}, col: "mean experienced load",
		toUnit: 100, unitTag: "%"},
	// E16: reservation traffic per task through the reusable pool,
	// scaled to RPCs per 100 tasks so the ceiling stays an integer.
	{env: "LEGION_PERF_E16_POOL_RPCS_PER_100_TASKS_MAX", table: "E16",
		match: []string{"paramspace pool (4 slots, cap 64)"}, col: "RPCs/task",
		toUnit: 100, unitTag: "/100 tasks"},
}

// findCell locates the spec's cell in the run's tables.
func (s sloSpec) findCell(tables []*experiments.Table) (string, bool) {
	for _, t := range tables {
		if t.ID != s.table {
			continue
		}
		col := -1
		for i, h := range t.Header {
			if h == s.col {
				col = i
			}
		}
		if col < 0 {
			return "", false
		}
	rows:
		for _, row := range t.Rows {
			if len(row) <= col || len(row) < len(s.match) {
				continue
			}
			for i, want := range s.match {
				if row[i] != want {
					continue rows
				}
			}
			return row[col], true
		}
	}
	return "", false
}

// checkSLOs evaluates every spec whose env var is set against the run's
// tables, printing one line per check. It returns 3 if any ceiling is
// exceeded, 1 on configuration errors (bad ceiling, missing cell — a
// gate that silently checks nothing must fail loudly), 0 otherwise.
func checkSLOs(tables []*experiments.Table) int {
	code := 0
	checked := 0
	fmt.Println("## perf SLO gate")
	for _, s := range sloSpecs {
		ceilRaw := os.Getenv(s.env)
		if ceilRaw == "" {
			continue
		}
		checked++
		ceil, err := strconv.ParseFloat(ceilRaw, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "slo: bad %s=%q: %v\n", s.env, ceilRaw, err)
			code = max(code, 1)
			continue
		}
		cell, ok := s.findCell(tables)
		if !ok {
			fmt.Fprintf(os.Stderr, "slo: %s: cell %s[%s]/%s not in this run's tables\n",
				s.env, s.table, strings.Join(s.match, ","), s.col)
			code = max(code, 1)
			continue
		}
		v, ok := numericCell(cell)
		if !ok {
			fmt.Fprintf(os.Stderr, "slo: %s: cell value %q is not numeric\n", s.env, cell)
			code = max(code, 1)
			continue
		}
		got := v * s.toUnit
		status := "ok"
		if got > ceil {
			status = "VIOLATION"
			code = max(code, 3)
		}
		fmt.Printf("  %-36s %s[%s]/%s = %.0f%s (ceiling %.0f%s) %s\n",
			s.env, s.table, strings.Join(s.match, ","), s.col,
			got, s.unitTag, ceil, s.unitTag, status)
	}
	if checked == 0 {
		fmt.Println("  no LEGION_PERF_* ceilings set: nothing to check")
	}
	return code
}
