// Command legiond runs one Legion metasystem node: a set of Host and
// Vault objects plus the RMI service objects (Collection, Enactor,
// Monitor) and a bootstrap directory, served over TCP.
//
// Multiple legiond processes plus legion-run clients form a
// multi-process metasystem — the "multi-process emulation" of the
// paper's multi-host testbed. Typical use:
//
//	legiond -addr 127.0.0.1:7777 -domain uva -hosts 4 -batch 2
//	legion-run -addr 127.0.0.1:7777 -domain uva -count 6 -scheduler irs
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"legion/internal/batchq"
	"legion/internal/classobj"
	"legion/internal/collection/daemon"
	"legion/internal/core"
	"legion/internal/economy"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/proto"
	"legion/internal/rebalance"
	"legion/internal/telemetry"
	"legion/internal/vault"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7777", "TCP address to serve on")
		domain   = flag.String("domain", "uva", "administrative domain name")
		nHosts   = flag.Int("hosts", 4, "number of interactive Unix hosts")
		nBatch   = flag.Int("batch", 0, "number of batch-queue hosts")
		cpus     = flag.Int("cpus", 4, "CPUs per host")
		memMB    = flag.Int("mem", 1024, "memory per host (MB)")
		arch     = flag.String("arch", "x86", "host architecture attribute")
		osName   = flag.String("os", "Linux", "host OS attribute")
		reassess = flag.Duration("reassess", 2*time.Second, "host state reassessment interval")
		seed     = flag.Int64("seed", 1, "scheduling RNG seed")
		metrics  = flag.String("metrics-addr", "", "HTTP address for the /metrics and /spans endpoints (empty disables)")

		maxInFlight  = flag.Int("max-inflight", 0, "Enactor admission control: concurrent placements admitted (0 disables)")
		admissionQ   = flag.Int("admission-queue", 0, "Enactor admission wait-queue depth (0 = 4×max-inflight)")
		shedWater    = flag.Float64("shed-watermark", 0, "host occupancy fraction above which low-priority reservations are shed (0 disables)")
		shedMinPrio  = flag.Int("shed-min-priority", 1, "lowest priority that still rides through above the watermark")
		reapInterval = flag.Duration("reap-interval", 30*time.Second, "host reservation reaper interval (0 disables the reaper)")

		hostPrice    = flag.Float64("host-price", 0, "advertised per-instance-hour price on every host ($host_price); >0 enables the economy ledger")
		tenantBudget = flag.String("tenant-budget", "", "comma-separated tenant=budget pairs (credit units) to open on the economy ledger, e.g. astro=100,bio=50; enables the ledger")

		rebalanceOn   = flag.Bool("rebalance", false, "run the rebalance subsystem: overload triggers migrate objects off hot hosts")
		rebalanceTh   = flag.Float64("rebalance-threshold", 0.8, "host load above which the overload trigger fires")
		rebalanceCool = flag.Duration("rebalance-cooldown", 10*time.Second, "per-host hysteresis window between sheds")
		rebalanceRate = flag.Float64("rebalance-rate", 0, "global migrations/sec cap (0 = unlimited)")
		rebalanceSwp  = flag.Duration("rebalance-sweep", time.Minute, "reconcile sweep interval (0 disables the sweep)")

		rebalancePred = flag.Bool("rebalance-predictive", false, "rebalance on NWS forecasts: a Collection daemon publishes $host_load_history and a periodic scan sheds hosts whose FORECAST load crosses the watermark (implies -rebalance)")
		forecastWater = flag.Float64("rebalance-forecast-watermark", 0.8, "forecast load above which the predictive scan sheds (predictive mode)")
		forecastScan  = flag.Duration("rebalance-forecast-scan", 15*time.Second, "forecast scan interval (predictive mode)")
		forecastHist  = flag.Int("rebalance-history", 16, "load-history samples the Collection daemon publishes per host (predictive mode)")
	)
	flag.Parse()

	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", telemetry.Default.Handler())
		mux.Handle("/spans", telemetry.Default.SpanHandler())
		go func() {
			log.Printf("legiond: telemetry on http://%s/metrics (spans at /spans)", *metrics)
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				log.Printf("legiond: telemetry endpoint: %v", err)
			}
		}()
	}

	ms := core.New(*domain, core.Options{
		Seed:            *seed,
		MaxInFlight:     *maxInFlight,
		AdmissionQueue:  *admissionQ,
		ShedWatermark:   *shedWater,
		ShedMinPriority: *shedMinPrio,
		Economy:         *hostPrice > 0 || *tenantBudget != "",
	})
	defer ms.Close()

	if *tenantBudget != "" {
		led := ms.Ledger()
		for _, kv := range strings.Split(*tenantBudget, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				log.Fatalf("legiond: -tenant-budget entry %q is not tenant=budget", kv)
			}
			units, err := strconv.ParseFloat(val, 64)
			if err != nil {
				log.Fatalf("legiond: -tenant-budget %q: %v", kv, err)
			}
			led.Open(name, economy.ToCredits(units))
			log.Printf("legiond: economy account %q opened with budget %.2f", name, units)
		}
	}

	// startHost wires the periodic loops every host needs: state
	// reassessment pushes into the Collection, and the reservation
	// reaper reclaims unconfirmed grants whose clients died between
	// make_reservation and confirmation (without it those slots free
	// only lazily, at the next reservation request).
	var stops []func()
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	startHost := func(h *host.Host) {
		stops = append(stops, h.StartReassessing(*reassess))
		if *reapInterval > 0 {
			stops = append(stops, h.StartReaper(*reapInterval))
		}
	}

	v := ms.AddVault(vault.Config{Zone: *domain})
	for i := 0; i < *nHosts; i++ {
		startHost(ms.AddHost(host.Config{
			Arch: *arch, OS: *osName, OSVersion: "2.2",
			CPUs: *cpus, MemoryMB: *memMB, Zone: *domain,
			Price:  *hostPrice,
			Vaults: []loid.LOID{v.LOID()},
		}))
	}
	for i := 0; i < *nBatch; i++ {
		q := batchq.New(batchq.Config{
			Name: fmt.Sprintf("queue-%d", i), Slots: *cpus,
			DispatchDelay: 50 * time.Millisecond,
		})
		defer q.Close()
		startHost(ms.AddHost(host.Config{
			Arch: *arch, OS: *osName, OSVersion: "2.2",
			CPUs: *cpus, MemoryMB: *memMB, Zone: *domain,
			Price:  *hostPrice,
			Vaults: []loid.LOID{v.LOID()},
			Queue:  q,
		}))
	}

	// A default user class so clients can place objects immediately.
	workerClass := ms.DefineClass("Worker", []proto.Implementation{{Arch: *arch, OS: *osName}})

	if *rebalanceOn || *rebalancePred {
		cfg := rebalance.Config{
			Classes:    []*classobj.Class{workerClass},
			Cooldown:   *rebalanceCool,
			RatePerSec: *rebalanceRate,
		}
		var pol *rebalance.Predictive
		if *rebalancePred {
			pol = &rebalance.Predictive{Watermark: *forecastWater}
			cfg.Policy = pol
		}
		rb := rebalance.New(ms, cfg)
		if err := rb.Start(); err != nil {
			log.Fatalf("rebalance: %v", err)
		}
		defer rb.Stop()
		if *rebalanceSwp > 0 {
			rb.StartSweeping(*rebalanceSwp)
		}
		if err := ms.WatchLoad(context.Background(), *rebalanceTh); err != nil {
			log.Fatalf("rebalance: watch: %v", err)
		}
		if *rebalancePred {
			// The forecast pipeline: the daemon's sweep records each
			// host's rolling load history into the Collection, and the
			// periodic scan extrapolates it, shedding hosts whose
			// forecast — not current — load crosses the watermark.
			d := ms.NewDaemonConfig(daemon.Config{Interval: *reassess, HistoryLen: *forecastHist})
			d.Start()
			defer d.Stop()
			rb.StartForecastScan(*forecastScan, pol)
			log.Printf("legiond: predictive rebalancer on (forecast watermark %.2f, scan %v, history %d)",
				*forecastWater, *forecastScan, *forecastHist)
		}
		log.Printf("legiond: rebalancer on (threshold %.2f, cooldown %v, rate %.2f/s, sweep %v)",
			*rebalanceTh, *rebalanceCool, *rebalanceRate, *rebalanceSwp)
	}

	bound, err := ms.ListenAndServe(*addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("legiond: domain %q serving on %s", *domain, bound)
	log.Printf("legiond: %d unix + %d batch hosts, %d vault(s), class %q defined",
		*nHosts, *nBatch, 1, "Worker")
	log.Printf("legiond: collection=%v enactor=%v", ms.CollectionLOID(), ms.Enactor.LOID())
	if *maxInFlight > 0 || *shedWater > 0 {
		log.Printf("legiond: admission max-inflight=%d queue=%d, shed watermark=%.2f min-priority=%d, reap every %v",
			*maxInFlight, *admissionQ, *shedWater, *shedMinPrio, *reapInterval)
	}

	// Periodic status line.
	go func() {
		t := time.NewTicker(10 * time.Second)
		defer t.Stop()
		for range t.C {
			total := 0
			for _, h := range ms.Hosts() {
				total += h.RunningCount()
			}
			if ms.Collection != nil {
				q, u := ms.Collection.Stats()
				log.Printf("legiond: %d objects running, collection %d queries / %d updates",
					total, q, u)
			} else {
				log.Printf("legiond: %d objects running", total)
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Println("legiond: shutting down")
	_ = context.Background()
}
