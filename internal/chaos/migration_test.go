package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"legion/internal/classobj"
	"legion/internal/core"
	"legion/internal/loid"
	"legion/internal/proto"
	"legion/internal/rebalance"
	"legion/internal/telemetry"
)

// migrationWorld builds a single-site world with hosts that can all
// reach several vaults, so migrations exercise the cross-vault OPR move.
func migrationWorld(t *testing.T, seed int64, hosts, vaults int) (*World, *Site, *classobj.Class) {
	t.Helper()
	w, err := NewWorld(seed, core.Options{Seed: seed, Metrics: telemetry.NewRegistry()},
		SiteSpec{Domain: "uva", Hosts: hosts, Vaults: vaults})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	s := w.Sites[0]
	c, ok := s.MS.Class("Worker")
	if !ok {
		t.Fatal("no Worker class")
	}
	return w, s, c
}

// seedInstances creates n workers, stamps each with recognizable state,
// and runs one clean migration per instance so every one has a durable
// OPR in some vault before the faults start.
func seedInstances(t *testing.T, s *Site, c *classobj.Class, n int) []loid.LOID {
	t.Helper()
	ctx := context.Background()
	insts, _, err := c.CreateInstance(ctx, n, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	hosts := s.MS.Hosts()
	vaults := s.MS.Vaults()
	for i, inst := range insts {
		if _, err := s.MS.Runtime().Call(ctx, inst, "set", []string{"k", fmt.Sprintf("v%d", i)}); err != nil {
			t.Fatal(err)
		}
		h := hosts[(i+1)%len(hosts)]
		v := vaults[(i+1)%len(vaults)]
		if err := s.MS.Migrate(ctx, c, inst, h.LOID(), v.LOID()); err != nil {
			t.Fatalf("warm-up migration: %v", err)
		}
	}
	return insts
}

// TestMigrationChaosConservation is the ISSUE 5 acceptance scenario: a
// migration storm where the destination host or destination vault dies
// mid-protocol (injected faults on StartObject / StoreOPR / DeleteOPR /
// DeactivateObject at a rate >= 20%, plus whole host/vault crash
// episodes). After healing and one reconcile pass, every object must be
// running exactly once with its state intact, with zero leaked
// reservation tokens and zero orphaned OPRs.
func TestMigrationChaosConservation(t *testing.T) {
	seed := SeedFromEnv(5)
	w, s, c := migrationWorld(t, seed, 3, 2)
	insts := seedInstances(t, s, c, 6)
	ctx := context.Background()
	ms := s.MS
	rt := ms.Runtime()

	// Destination host dies mid-migration: its StartObject fails after
	// the OPR was copied. Destination vault dies mid-migration: StoreOPR
	// or the cleanup DeleteOPR fails. The source can fail too, at
	// DeactivateObject. All at 25% — above the 20% floor.
	const rate = 0.25
	for _, h := range ms.Hosts() {
		w.FlakyMethod(rt, h.LOID(), proto.MethodStartObject, rate)
		w.FlakyMethod(rt, h.LOID(), proto.MethodDeactivateObject, rate)
	}
	for _, v := range ms.Vaults() {
		w.FlakyMethod(rt, v.LOID(), proto.MethodStoreOPR, rate)
		w.FlakyMethod(rt, v.LOID(), proto.MethodDeleteOPR, rate)
	}

	rng := rand.New(rand.NewSource(seed))
	hosts := ms.Hosts()
	vaults := ms.Vaults()
	var revive func()
	for step := 0; step < 80; step++ {
		// Crash episodes: every 20 steps a random host or vault vanishes
		// entirely for the next 10 steps.
		if step%20 == 10 {
			if rng.Intn(2) == 0 {
				revive = w.CrashHost(s, rng.Intn(len(hosts)))
			} else {
				revive = w.CrashVault(s, rng.Intn(len(vaults)))
			}
		}
		if step%20 == 0 && revive != nil {
			revive()
			revive = nil
		}
		inst := insts[rng.Intn(len(insts))]
		h := hosts[rng.Intn(len(hosts))]
		v := vaults[rng.Intn(len(vaults))]
		// Failures are expected constantly; conservation is audited below.
		_ = ms.Migrate(ctx, c, inst, h.LOID(), v.LOID())
	}
	if revive != nil {
		revive()
	}
	w.HealAll()

	// Converge: the anti-entropy pass every Rebalancer runs periodically.
	for _, inst := range insts {
		if err := ms.EnsureRunning(ctx, c, inst); err != nil {
			t.Fatalf("seed %d: EnsureRunning(%v): %v", seed, inst, err)
		}
	}

	if got := w.TotalRunning(s); got != len(insts) {
		t.Errorf("seed %d: running %d objects, want %d", seed, got, len(insts))
	}
	if a := ms.AuditMigrations(c); !a.Clean() {
		t.Errorf("seed %d: conservation audit failed: %v", seed, a)
	}
	for i, inst := range insts {
		got, err := rt.Call(ctx, inst, "get", "k")
		if err != nil || got != fmt.Sprintf("v%d", i) {
			t.Errorf("seed %d: instance %v state: %v %v", seed, inst, got, err)
		}
	}
}

// TestRebalanceChaosExactlyOnce runs the full subsystem under fire: the
// Rebalancer reacts to overload triggers while a quarter of StartObject
// and StoreOPR calls fail. Afterwards a Reconcile pass must leave every
// instance running exactly once with a clean audit.
func TestRebalanceChaosExactlyOnce(t *testing.T) {
	seed := SeedFromEnv(9)
	w, s, c := migrationWorld(t, seed, 3, 2)
	insts := seedInstances(t, s, c, 6)
	ctx := context.Background()
	ms := s.MS
	rt := ms.Runtime()

	const rate = 0.25
	for _, h := range ms.Hosts() {
		w.FlakyMethod(rt, h.LOID(), proto.MethodStartObject, rate)
	}
	for _, v := range ms.Vaults() {
		w.FlakyMethod(rt, v.LOID(), proto.MethodStoreOPR, rate)
	}

	r := rebalance.New(ms, rebalance.Config{
		Classes:  []*classobj.Class{c},
		Cooldown: -1, // chaos test wants maximum churn
	})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := ms.WatchLoad(ctx, 0.8); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	hosts := ms.Hosts()
	for step := 0; step < 30; step++ {
		// Heat a random host over the trigger threshold, cool the rest,
		// and tick the reassessment loop; the Rebalancer does the rest.
		hot := rng.Intn(len(hosts))
		for i, h := range hosts {
			if i == hot {
				h.SetExternalLoad(0.95)
			} else {
				h.SetExternalLoad(0.2)
			}
		}
		ms.ReassessAll(ctx)
		time.Sleep(5 * time.Millisecond) // let async handlers run
	}
	r.Stop()
	w.HealAll()

	if err := r.Reconcile(ctx); err != nil {
		t.Fatalf("seed %d: Reconcile: %v", seed, err)
	}
	if got := w.TotalRunning(s); got != len(insts) {
		t.Errorf("seed %d: running %d objects, want %d", seed, got, len(insts))
	}
	if a := ms.AuditMigrations(c); !a.Clean() {
		t.Errorf("seed %d: conservation audit failed: %v", seed, a)
	}
	for i, inst := range insts {
		got, err := rt.Call(ctx, inst, "get", "k")
		if err != nil || got != fmt.Sprintf("v%d", i) {
			t.Errorf("seed %d: instance %v state: %v %v", seed, inst, got, err)
		}
	}
}
