package chaos

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"legion/internal/proto"
	"legion/internal/sched"
	"legion/internal/scheduler"
	"legion/internal/vclock"
)

// StormConfig shapes an open-loop overload storm against one site.
//
// Open-loop is the property that makes overload testing honest: arrivals
// fire on a fixed clock regardless of how many earlier requests are
// still in flight, exactly like independent clients who do not know the
// service is drowning. A closed loop (next request after the previous
// answer) self-throttles and can never push a service past saturation.
type StormConfig struct {
	// Rate is the arrival rate in requests/second; must be > 0.
	Rate float64
	// Duration is how long arrivals keep firing.
	Duration time.Duration
	// Deadline is the per-request context deadline — the client's
	// patience. Zero means unbounded (requests queue forever rather
	// than expire). It propagates over the ORB wire, so downstream hops
	// can fast-fail work whose client has already given up.
	Deadline time.Duration
	// Priorities is cycled across arrivals (request i gets
	// Priorities[i % len]); empty means every request is priority 0.
	Priorities []int
	// Instances per placement; zero means 1.
	Instances int
	// Generator computes schedules; nil means scheduler.Random{} (the
	// cheapest policy — a storm measures the control plane, not
	// placement quality).
	Generator scheduler.Generator
	// Wrapper bounds the Figure 9 retry protocol; the zero value uses
	// tight limits (2 scheduling rounds, 1 enactment try per round) so
	// an overloaded run fails fast instead of multiplying the offered
	// load with retries.
	Wrapper scheduler.Wrapper
	// Clock drives the arrival schedule, per-request deadlines, and
	// latency measurement; nil means the World's clock. Taking the
	// clock here (rather than time.Now) is what makes a fixed-seed
	// storm replay bit-identically on any machine: under a virtual
	// clock the absolute schedule becomes a deterministic sequence of
	// discrete events immune to scheduler jitter.
	Clock vclock.Clock
}

// StormResult aggregates one storm's outcomes.
type StormResult struct {
	// Offered is how many requests the storm fired.
	Offered int
	// Succeeded is how many placements completed (the goodput count).
	Succeeded int
	// Shed is how many requests were refused with proto.ErrOverload by
	// an admission gate or a host shed policy.
	Shed int
	// Failed is everything else: deadline expiries, reservation
	// conflicts, transport faults.
	Failed int
	// ShedByPriority splits Shed by request priority.
	ShedByPriority map[int]int
	// Latencies holds the wall-clock of each successful placement.
	Latencies []time.Duration
	// Elapsed is the wall-clock of the whole storm including drain.
	Elapsed time.Duration
}

// Goodput is successful placements per second of storm wall-clock.
func (r *StormResult) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Succeeded) / r.Elapsed.Seconds()
}

// P99 is the 99th-percentile success latency (0 with no successes).
func (r *StormResult) P99() time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.Latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)-1)*99/100]
}

// IsOverload reports whether err is (or wraps, on either side of the
// wire) the typed proto.ErrOverload shed. Cross-runtime calls flatten
// sentinel identity into a RemoteError message, so the check falls back
// to the message prefix the same way resilient.Classify does.
func IsOverload(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, proto.ErrOverload) ||
		strings.Contains(err.Error(), proto.ErrOverload.Error())
}

// Storm fires cfg.Rate placements/second at the site's metasystem for
// cfg.Duration, waits for every in-flight request to resolve, and
// returns the tallied result. Successful placements are torn down
// immediately (instances destroyed, reservations cancelled) so repeated
// storms see the same capacity and post-storm conservation checks can
// expect an empty site.
func (w *World) Storm(ctx context.Context, s *Site, cfg StormConfig) *StormResult {
	if cfg.Instances <= 0 {
		cfg.Instances = 1
	}
	if cfg.Generator == nil {
		cfg.Generator = scheduler.Random{}
	}
	if cfg.Wrapper.SchedTryLimit == 0 {
		cfg.Wrapper.SchedTryLimit = 2
	}
	if cfg.Wrapper.EnactTryLimit == 0 {
		cfg.Wrapper.EnactTryLimit = 1
	}
	class, _ := s.MS.Class("Worker")

	clock := cfg.Clock
	if clock == nil {
		clock = w.clock
	}
	res := &StormResult{ShedByPriority: make(map[int]int)}
	var mu sync.Mutex
	wg := clock.NewGroup()
	start := clock.Now()
	interval := time.Duration(float64(time.Second) / cfg.Rate)

	fire := func(i int) {
		defer wg.Done()
		prio := 0
		if len(cfg.Priorities) > 0 {
			prio = cfg.Priorities[i%len(cfg.Priorities)]
		}
		rctx := ctx
		if cfg.Deadline > 0 {
			var cancel context.CancelFunc
			rctx, cancel = clock.WithTimeout(ctx, cfg.Deadline)
			defer cancel()
		}
		t0 := clock.Now()
		out, err := s.MS.PlaceApplicationLimits(rctx, cfg.Generator, scheduler.Request{
			Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: cfg.Instances}},
			Res: sched.ReservationSpec{
				Share: true, Reuse: true, Duration: time.Hour,
				Priority: prio,
			},
		}, cfg.Wrapper)
		lat := clock.Since(t0)

		if err == nil && out.Success {
			// Tear down with a fresh context: the request deadline may
			// already be spent, and a successful placement must not leak
			// just because cleanup raced it.
			cctx, cancel := clock.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
			for j, insts := range out.Instances {
				for _, inst := range insts {
					_, _ = s.MS.Runtime().Call(cctx, out.Feedback.Resolved[j].Class,
						proto.MethodDestroyInstance, proto.ObjectArgs{Object: inst})
				}
			}
			_ = s.MS.Enactor.CancelReservations(cctx, out.RequestID)
			cancel()
			mu.Lock()
			res.Succeeded++
			res.Latencies = append(res.Latencies, lat)
			mu.Unlock()
			return
		}
		mu.Lock()
		if IsOverload(err) {
			res.Shed++
			res.ShedByPriority[prio]++
		} else {
			res.Failed++
		}
		mu.Unlock()
	}

	// Arrivals follow an absolute schedule (start + i*interval) rather
	// than a ticker: a ticker drops ticks when its receiver is delayed,
	// which under load silently converts the open loop into a partially
	// closed one — the generator would offer LESS load exactly when the
	// service is busiest, hiding the overload the storm exists to create.
	// Falling behind the schedule instead fires immediately, catching up.
	for i := 0; ; i++ {
		next := start.Add(time.Duration(i) * interval)
		if next.Sub(start) >= cfg.Duration {
			break
		}
		if d := clock.Until(next); d > 0 {
			if clock.Sleep(ctx, d) != nil {
				_ = wg.Wait(context.Background())
				res.Elapsed = clock.Since(start)
				return res
			}
		}
		wg.Add(1)
		res.Offered++
		n := i
		clock.Go(func() { fire(n) })
	}
	_ = wg.Wait(context.Background())
	res.Elapsed = clock.Since(start)
	return res
}

// StormSeed derives a deterministic sub-seed for storm-driven tests from
// the world seed, so fixed-seed CI runs (LEGION_CHAOS_SEED) pin the
// whole scenario.
func (w *World) StormSeed(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(w.seed + offset))
}
