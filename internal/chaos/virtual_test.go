package chaos

import (
	"context"
	"testing"
	"time"

	"legion/internal/core"
	"legion/internal/resilient"
	"legion/internal/telemetry"
	"legion/internal/vclock"
)

// TestVirtualStormDeterministicTrace is the determinism proof for the
// virtual-time mode: two back-to-back runs of the same fixed-seed storm
// (LEGION_CHAOS_SEED respected) must produce byte-identical event
// traces. Under the discrete-event engine execution is fully serialized
// — one runnable goroutine at a time, events fired in (time, seq) order
// — so every timer, retry backoff, link delay, and context expiry lands
// at the same virtual instant in both runs; any divergence means
// nondeterminism leaked into the pipeline (an unseeded RNG, a wall-time
// read, an unserialized wakeup).
func TestVirtualStormDeterministicTrace(t *testing.T) {
	seed := SeedFromEnv(5)
	run := func() []string {
		vc := vclock.NewVirtual()
		opts := core.Options{
			Seed:    seed,
			Metrics: telemetry.NewRegistry(),
			Clock:   vc,
			Retry: resilient.Policy{
				MaxAttempts: 2, BaseDelay: time.Millisecond,
				Budget: 2 * time.Second, AttemptTimeout: time.Second,
				Clock: vc,
				// Per-run jitter source: the process-global jitter RNG
				// would otherwise carry state from run to run.
				JitterRand: resilient.NewLockedRand(seed),
			},
		}
		w, err := NewWorld(seed, opts, SiteSpec{Domain: "uva", Hosts: 4})
		if err != nil {
			t.Fatalf("world: %v", err)
		}
		defer w.Close()
		site := w.Sites[0]
		w.Slow(site, 2*time.Millisecond, time.Millisecond)

		vc.StartTrace()
		vc.Run(func() {
			res := w.Storm(context.Background(), site, StormConfig{
				Rate:       500,
				Duration:   100 * time.Millisecond,
				Deadline:   200 * time.Millisecond,
				Priorities: []int{0, 0, 1},
			})
			if res.Offered == 0 {
				t.Error("storm offered nothing")
			}
			if resv, running := w.Quiesce(site, time.Second); resv+running != 0 {
				t.Errorf("leaked %d reservations + %d instances", resv, running)
			}
		})
		// Capture before Close: shutdown interleaves with the engine
		// nondeterministically and is not part of the proof.
		return vc.Trace()
	}

	start := time.Now()
	t1 := run()
	t2 := run()
	wall := time.Since(start)

	if len(t1) == 0 {
		t.Fatal("empty trace")
	}
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d (seed %d)", len(t1), len(t2), seed)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at event %d (seed %d):\n  run1: %s\n  run2: %s",
				i, seed, t1[i], t2[i])
		}
	}
	if wall > 5*time.Second {
		t.Errorf("both storm replays took %v wall, want < 5s", wall)
	}
	t.Logf("trace: %d events, byte-identical across runs, %v wall (seed %d)", len(t1), wall, seed)
}
