package chaos

import (
	"context"
	"errors"
	"testing"
	"time"

	"legion/internal/core"
	"legion/internal/host"
	"legion/internal/resilient"
	"legion/internal/sched"
	"legion/internal/scheduler"
)

// fastRetry keeps chaos runs quick: short backoff, tight budgets.
func fastRetry() resilient.Policy {
	return resilient.Policy{
		MaxAttempts:    4,
		BaseDelay:      time.Millisecond,
		Budget:         5 * time.Second,
		AttemptTimeout: 2 * time.Second,
	}
}

func newWorld(t *testing.T, specs ...SiteSpec) *World {
	t.Helper()
	seed := SeedFromEnv(42)
	w, err := NewWorld(seed, core.Options{Seed: 7, Retry: fastRetry()}, specs...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("chaos seed %d; replay with LEGION_CHAOS_SEED=%d go test ./internal/chaos", seed, seed)
		}
	})
	return w
}

// place drives the full Figure 3 pipeline on site s: IRS schedules,
// Wrapper negotiation, Enactor reservation + instantiation.
func place(t *testing.T, s *Site, count int) (scheduler.Outcome, error) {
	t.Helper()
	class, _ := s.MS.Class("Worker")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return s.MS.PlaceApplicationLimits(ctx, scheduler.IRS{NSched: 3},
		scheduler.Request{
			Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: count}},
			Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
		},
		scheduler.Wrapper{SchedTryLimit: 6, EnactTryLimit: 2})
}

// TestScenarios drives one wounded single-domain metasystem per row and
// asserts placement either survives the chaos or fails cleanly without
// leaking reservations.
func TestScenarios(t *testing.T) {
	scenarios := []struct {
		name string
		// wound applies faults; the returned int is how many of the 4
		// hosts were crashed (placements must avoid them).
		wound       func(w *World, s *Site) int
		wantSuccess bool
	}{
		{
			name:        "baseline",
			wound:       func(w *World, s *Site) int { return 0 },
			wantSuccess: true,
		},
		{
			name: "flaky5pct",
			wound: func(w *World, s *Site) int {
				w.Flaky(s.MS.Runtime(), 0.05)
				return 0
			},
			wantSuccess: true,
		},
		{
			name: "flaky20pct",
			wound: func(w *World, s *Site) int {
				w.Flaky(s.MS.Runtime(), 0.20)
				return 0
			},
			wantSuccess: true,
		},
		{
			// The acceptance scenario: 20% injected faults plus one
			// crashed host, and placement still lands.
			name: "flaky20pct_one_host_crashed",
			wound: func(w *World, s *Site) int {
				w.CrashHost(s, 0)
				w.Flaky(s.MS.Runtime(), 0.20)
				return 1
			},
			wantSuccess: true,
		},
		{
			name: "slow_site",
			wound: func(w *World, s *Site) int {
				w.Slow(s, 2*time.Millisecond, time.Millisecond)
				return 0
			},
			wantSuccess: true,
		},
		{
			// Everything dead: the protocol must give up with a
			// classified error, not hang, and hold no reservations.
			name: "all_hosts_crashed",
			wound: func(w *World, s *Site) int {
				for i := range s.MS.Hosts() {
					w.CrashHost(s, i)
				}
				return 4
			},
			wantSuccess: false,
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			w := newWorld(t, SiteSpec{Domain: "uva", Hosts: 4})
			s := w.Sites[0]
			crashed := sc.wound(w, s)
			out, err := place(t, s, 3)
			if sc.wantSuccess {
				if err != nil || !out.Success {
					t.Fatalf("placement failed under %s: %v (outcome %+v)", sc.name, err, out)
				}
				if got := w.TotalRunning(s); got != 3 {
					t.Errorf("running = %d, want 3", got)
				}
				if crashed > 0 {
					for i := 0; i < crashed; i++ {
						if n := s.MS.Hosts()[i].RunningCount(); n != 0 {
							t.Errorf("crashed host %d runs %d objects", i, n)
						}
					}
				}
			} else {
				if err == nil {
					t.Fatalf("placement succeeded against a dead world: %+v", out)
				}
				if !errors.Is(err, scheduler.ErrExhausted) {
					t.Errorf("failure not classified as exhaustion: %v", err)
				}
				if n := w.OrphanedReservations(s); n != 0 {
					t.Errorf("reservations leaked after failure: %d", n)
				}
			}
		})
	}
}

// TestPartitionFallsBackThenHeals wounds a two-domain federation: uva's
// Enactor negotiating a schedule that prefers sdsc must fall back to the
// local master while sdsc is partitioned away, then reach sdsc again
// after the partition heals.
func TestPartitionFallsBackThenHeals(t *testing.T) {
	w := newWorld(t,
		SiteSpec{Domain: "uva", Hosts: 1},
		SiteSpec{Domain: "sdsc", Hosts: 1})
	uva, sdsc := w.Site("uva"), w.Site("sdsc")
	ctx := context.Background()

	remoteFirst := func(id uint64) sched.RequestList {
		uvaClass, _ := uva.MS.Class("Worker")
		return sched.RequestList{
			ID: id,
			Masters: []sched.Master{
				{Mappings: []sched.Mapping{{
					Class: uvaClass.LOID(),
					Host:  sdsc.MS.Hosts()[0].LOID(),
					Vault: sdsc.MS.Vaults()[0].LOID(),
				}}},
				{Mappings: []sched.Mapping{{
					Class: uvaClass.LOID(),
					Host:  uva.MS.Hosts()[0].LOID(),
					Vault: uva.MS.Vaults()[0].LOID(),
				}}},
			},
			Res: sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
		}
	}

	w.Partition(uva.MS.Runtime(), "sdsc")
	fb := uva.MS.Enactor.MakeReservations(ctx, remoteFirst(uva.MS.Enactor.NewRequestID()))
	if !fb.Success {
		t.Fatalf("no fallback during partition: %+v", fb)
	}
	if fb.MasterIndex != 1 {
		t.Errorf("winning master = %d, want 1 (the local fallback)", fb.MasterIndex)
	}

	w.HealAll()
	fb = uva.MS.Enactor.MakeReservations(ctx, remoteFirst(uva.MS.Enactor.NewRequestID()))
	if !fb.Success {
		t.Fatalf("post-heal reservations: %+v", fb)
	}
	if fb.MasterIndex != 0 {
		t.Errorf("winning master after heal = %d, want 0 (the remote preference)", fb.MasterIndex)
	}
}

// TestBreakerOpensOnUnreachableEndpointAndRecovers hammers a partitioned
// endpoint until its circuit opens (fail-fast), then heals the network
// and verifies the half-open probe closes the circuit again.
func TestBreakerOpensOnUnreachableEndpointAndRecovers(t *testing.T) {
	w := newWorld(t,
		SiteSpec{Domain: "uva", Hosts: 1},
		SiteSpec{Domain: "sdsc", Hosts: 1})
	uva, sdsc := w.Site("uva"), w.Site("sdsc")
	target := sdsc.MS.Hosts()[0].LOID()

	bc := resilient.BreakerConfig{FailureThreshold: 3, Cooldown: 20 * time.Millisecond}
	caller := resilient.NewCallerWith(uva.MS.Runtime(), resilient.Policy{MaxAttempts: 1}, resilient.NewBreakerSet(bc))
	ctx := context.Background()

	w.Partition(uva.MS.Runtime(), "sdsc")
	for i := 0; i < 3; i++ {
		if _, err := caller.Call(ctx, target, "get_attributes", nil); err == nil {
			t.Fatal("partitioned call succeeded")
		}
	}
	// Circuit open: the next call fails fast without touching the wire.
	if _, err := caller.Call(ctx, target, "get_attributes", nil); !errors.Is(err, resilient.ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}

	w.HealAll()
	time.Sleep(25 * time.Millisecond) // past the cooldown: half-open
	if _, err := caller.Call(ctx, target, "get_attributes", nil); err != nil {
		t.Fatalf("half-open probe failed after heal: %v", err)
	}
	if st := caller.Breakers().For(target.String()).State(); st != resilient.Closed {
		t.Errorf("breaker state after recovery = %v, want closed", st)
	}
}

// TestDaemonFlagsCrashedHostAndSchedulerAvoidsIt runs the failure
// detector against a crashed host and verifies schedulers skip the
// flagged record while it is down — and use it again after revival.
func TestDaemonFlagsCrashedHostAndSchedulerAvoidsIt(t *testing.T) {
	w := newWorld(t, SiteSpec{Domain: "uva", Hosts: 2, HostMutate: func(i int, c *host.Config) {
		c.MaxShared = 16
	}})
	s := w.Sites[0]
	d := s.MS.NewDaemon()
	ctx := context.Background()

	if got := d.Sweep(ctx); got != 2 {
		t.Fatalf("healthy sweep deposits = %d", got)
	}

	revive := w.CrashHost(s, 0)
	d.Sweep(ctx) // failure 1
	d.Sweep(ctx) // failure 2: crossed DownAfter, record flagged

	// Scheduling now avoids the dead host entirely.
	for i := 0; i < 3; i++ {
		out, err := place(t, s, 2)
		if err != nil || !out.Success {
			t.Fatalf("placement with flagged host: %v", err)
		}
	}
	if n := s.MS.Hosts()[0].RunningCount(); n != 0 {
		t.Errorf("dead-flagged host received %d objects", n)
	}

	// Revival: the next sweep clears the flag and the host serves again.
	revive()
	d.Sweep(ctx)
	hosts, err := scheduler.QueryHosts(ctx, s.MS.Env(), `$host_alive == true`)
	if err != nil || len(hosts) != 2 {
		t.Fatalf("post-revival alive hosts = %d (%v), want 2", len(hosts), err)
	}
}
