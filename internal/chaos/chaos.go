// Package chaos is a scenario harness for failure-injection testing of
// multi-Runtime metasystems.
//
// A World assembles one or more administrative domains (each a
// core.Metasystem behind its own TCP listener, federated with the
// others) and exposes composable fault primitives over them:
//
//   - Flaky: a seeded fraction of calls through a runtime fail with
//     orb.ErrInjectedFault (a retryable transport fault);
//   - CrashHost: a Host object vanishes mid-session (calls return
//     ErrNotBound, the paper's view of a dead/deactivated object);
//   - Partition: calls from one runtime into a named domain all fail;
//   - Slow: a site answers with injected latency.
//
// Faults on the same runtime stack: Flaky and Partition compose, and
// Heal removes everything. Tests drive workloads (typically
// core.PlaceApplication) against the wounded world and assert the
// resilience layer's behaviour: retries absorb flakiness, breakers and
// error classification turn dead endpoints into fast fallbacks, and
// failed negotiations leave no orphaned reservations behind.
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"time"

	"legion/internal/core"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/vault"
	"legion/internal/vclock"
)

// SiteSpec describes one administrative domain of a World.
type SiteSpec struct {
	// Domain names the site (and its runtime).
	Domain string
	// Hosts is how many hosts the site runs.
	Hosts int
	// Vaults is how many vaults the site runs (0 means 1). Every host can
	// reach every site vault, so migration tests can exercise the
	// cross-vault OPR move.
	Vaults int
	// HostMutate, when non-nil, adjusts each host's config (site policy,
	// reservation timeouts, capacity).
	HostMutate func(i int, c *host.Config)
}

// Site is one domain of a World.
type Site struct {
	MS   *core.Metasystem
	Addr string
}

// World is a federation of sites plus the fault state injected into it.
type World struct {
	Sites []*Site

	seed  int64
	clock vclock.Clock
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[*orb.Runtime][]orb.FaultInjector
}

// Clock returns the world's time source (opts.Clock at NewWorld, or the
// wall clock).
func (w *World) Clock() vclock.Clock { return w.clock }

// Seed returns the seed the World's fault RNG was built with. Test
// harnesses log it on failure so a flaky-fault sequence can be replayed
// exactly (see SeedFromEnv).
func (w *World) Seed() int64 { return w.seed }

// SeedFromEnv returns the chaos seed to use: the value of the
// LEGION_CHAOS_SEED environment variable when set and parseable, else
// fallback. Together with World.Seed this makes chaos runs replayable:
// a failing run logs its seed, and
//
//	LEGION_CHAOS_SEED=<seed> go test ./internal/chaos
//
// reproduces the same injected-fault sequence.
func SeedFromEnv(fallback int64) int64 {
	if v := os.Getenv("LEGION_CHAOS_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return fallback
}

// NewWorld builds and federates the sites. Every site serves its objects
// over loopback TCP and binds every other site's domain, so any
// cross-domain call travels the real wire protocol. Each site defines a
// "Worker" class for workloads to place. opts is applied to every site
// (its Seed is offset per site so their schedulers do not move in
// lockstep).
func NewWorld(seed int64, opts core.Options, specs ...SiteSpec) (*World, error) {
	w := &World{
		seed:  seed,
		clock: vclock.Default(opts.Clock),
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[*orb.Runtime][]orb.FaultInjector),
	}
	// Virtual-time worlds stay in one address space: TCP connection
	// goroutines are invisible to the discrete-event barrier, so the
	// sites are not served over the wire (links are still simulated —
	// SetLatency sleeps on the virtual clock).
	inProcess := opts.Clock != nil
	for i, spec := range specs {
		o := opts
		o.Seed = opts.Seed + int64(i)
		ms := core.New(spec.Domain, o)
		nVaults := spec.Vaults
		if nVaults <= 0 {
			nVaults = 1
		}
		vaults := make([]loid.LOID, 0, nVaults)
		for j := 0; j < nVaults; j++ {
			v := ms.AddVault(vault.Config{Zone: spec.Domain})
			vaults = append(vaults, v.LOID())
		}
		for j := 0; j < spec.Hosts; j++ {
			cfg := host.Config{
				Arch: "x86", OS: "Linux", OSVersion: "2.2",
				CPUs: 4, MemoryMB: 512, Zone: spec.Domain,
				Vaults: append([]loid.LOID(nil), vaults...),
			}
			if spec.HostMutate != nil {
				spec.HostMutate(j, &cfg)
			}
			ms.AddHost(cfg)
		}
		ms.DefineClass("Worker", nil)
		if inProcess {
			ms.ServeDirectory()
			w.Sites = append(w.Sites, &Site{MS: ms})
			continue
		}
		addr, err := ms.ListenAndServe("127.0.0.1:0")
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("chaos: site %s: %w", spec.Domain, err)
		}
		w.Sites = append(w.Sites, &Site{MS: ms, Addr: addr})
	}
	// Full-mesh federation (served worlds only; an in-process world has
	// no wire addresses to bind).
	for _, a := range w.Sites {
		for _, b := range w.Sites {
			if a != b && b.Addr != "" {
				a.MS.Runtime().BindDomain(b.MS.Domain(), b.Addr)
			}
		}
	}
	return w, nil
}

// Site returns the site for a domain, or nil.
func (w *World) Site(domain string) *Site {
	for _, s := range w.Sites {
		if s.MS.Domain() == domain {
			return s
		}
	}
	return nil
}

// Close shuts every site down.
func (w *World) Close() {
	for _, s := range w.Sites {
		_ = s.MS.Close()
	}
}

// addRule stacks a fault rule on rt; the installed injector consults
// every rule in order and fails the call on the first non-nil error.
func (w *World) addRule(rt *orb.Runtime, rule orb.FaultInjector) {
	w.mu.Lock()
	w.rules[rt] = append(w.rules[rt], rule)
	w.mu.Unlock()
	rt.SetFaultInjector(func(target loid.LOID, method string) error {
		w.mu.Lock()
		rules := append([]orb.FaultInjector(nil), w.rules[rt]...)
		w.mu.Unlock()
		for _, r := range rules {
			if err := r(target, method); err != nil {
				return err
			}
		}
		return nil
	})
}

// Heal removes every fault rule from rt (latency injection included when
// rt belongs to a site).
func (w *World) Heal(rt *orb.Runtime) {
	w.mu.Lock()
	delete(w.rules, rt)
	w.mu.Unlock()
	rt.SetFaultInjector(nil)
	rt.SetLatency(0, 0)
}

// HealAll removes every fault rule everywhere.
func (w *World) HealAll() {
	w.mu.Lock()
	rts := make([]*orb.Runtime, 0, len(w.rules))
	for rt := range w.rules {
		rts = append(rts, rt)
	}
	w.mu.Unlock()
	for _, rt := range rts {
		w.Heal(rt)
	}
	for _, s := range w.Sites {
		s.MS.Runtime().SetLatency(0, 0)
	}
}

// Flaky makes a seeded fraction of calls through rt fail with a
// retryable transport fault. rate is in [0,1].
func (w *World) Flaky(rt *orb.Runtime, rate float64) {
	w.addRule(rt, func(target loid.LOID, method string) error {
		w.mu.Lock()
		hit := w.rng.Float64() < rate
		w.mu.Unlock()
		if hit {
			return fmt.Errorf("%w: flaky link (%s on %v)", orb.ErrInjectedFault, method, target)
		}
		return nil
	})
}

// Partition fails every call from rt into any of the named domains —
// a one-way network partition as seen from rt.
func (w *World) Partition(rt *orb.Runtime, domains ...string) {
	cut := make(map[string]bool, len(domains))
	for _, d := range domains {
		cut[d] = true
	}
	w.addRule(rt, func(target loid.LOID, method string) error {
		if cut[target.Domain] {
			return fmt.Errorf("%w: partitioned from %s", orb.ErrInjectedFault, target.Domain)
		}
		return nil
	})
}

// CrashHost makes site s's i-th host vanish: it is unregistered from the
// site's runtime, so every call to it — local or remote — fails with
// ErrNotBound, exactly how the paper's model renders a dead object. The
// returned function resurrects it.
func (w *World) CrashHost(s *Site, i int) (revive func()) {
	h := s.MS.Hosts()[i]
	s.MS.Runtime().Unregister(h.LOID())
	return func() { s.MS.Runtime().Register(h) }
}

// CrashVault makes site s's i-th vault vanish the same way CrashHost
// kills a host: unregistered from the runtime, every StoreOPR /
// RetrieveOPR / DeleteOPR to it fails with ErrNotBound. The returned
// function resurrects it (its stored OPRs intact — a vault is persistent
// storage, so a crash loses availability, not state).
func (w *World) CrashVault(s *Site, i int) (revive func()) {
	v := s.MS.Vaults()[i]
	s.MS.Runtime().Unregister(v.LOID())
	return func() { s.MS.Runtime().Register(v) }
}

// FlakyMethod makes a seeded fraction of calls to one specific method on
// one specific target fail — surgical fault injection for testing a
// single protocol step (e.g. MethodStartObject on a migration
// destination) while the rest of the world stays healthy.
func (w *World) FlakyMethod(rt *orb.Runtime, target loid.LOID, method string, rate float64) {
	w.addRule(rt, func(t loid.LOID, m string) error {
		if t != target || m != method {
			return nil
		}
		w.mu.Lock()
		hit := w.rng.Float64() < rate
		w.mu.Unlock()
		if hit {
			return fmt.Errorf("%w: flaky method %s on %v", orb.ErrInjectedFault, method, target)
		}
		return nil
	})
}

// Slow makes every call through site s's runtime take at least base
// (plus up to jitter) longer.
func (w *World) Slow(s *Site, base, jitter time.Duration) {
	s.MS.Runtime().SetLatency(base, jitter)
}

// OrphanedReservations reaps every host table at site s and returns how
// many reservations remain active afterwards — after a fully failed
// negotiation this must be zero (rollback cancelled confirmed grants;
// the reaper reclaimed unconfirmed ones).
func (w *World) OrphanedReservations(s *Site) int {
	n := 0
	for _, h := range s.MS.Hosts() {
		h.ReapReservations()
		n += h.ActiveReservations()
	}
	return n
}

// TotalRunning counts running object instances across site s's hosts.
func (w *World) TotalRunning(s *Site) int {
	n := 0
	for _, h := range s.MS.Hosts() {
		n += h.RunningCount()
	}
	return n
}

// Quiesce polls site s until no reservations or instances remain, or
// timeout passes, and returns the final counts. Conservation checks
// need this because cleanup is asynchronous by design: an Enactor
// rollback runs on a server-side goroutine that may still be in flight
// when the last client-side request returns, so an instantaneous count
// taken at drain can observe tokens that are already being released.
// In virtual-time worlds call it from a clock-registered goroutine: the
// polling sleep parks on the discrete-event clock.
func (w *World) Quiesce(s *Site, timeout time.Duration) (reservations, running int) {
	deadline := w.clock.Now().Add(timeout)
	for {
		reservations = w.OrphanedReservations(s)
		running = w.TotalRunning(s)
		if reservations == 0 && running == 0 {
			return 0, 0
		}
		if w.clock.Now().After(deadline) {
			return reservations, running
		}
		if w.clock.Sleep(context.Background(), 5*time.Millisecond) != nil {
			return reservations, running
		}
	}
}
