package chaos

import (
	"context"
	"testing"
	"time"

	"legion/internal/core"
	"legion/internal/resilient"
	"legion/internal/telemetry"
)

// stormWorld builds a single-site world at the given admission settings
// with a private registry for exact counter assertions.
func stormWorld(t *testing.T, opts core.Options) (*World, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	opts.Metrics = reg
	opts.Retry = resilient.Policy{
		MaxAttempts: 2, BaseDelay: time.Millisecond,
		Budget: 2 * time.Second, AttemptTimeout: time.Second,
	}
	w, err := NewWorld(SeedFromEnv(42), opts, SiteSpec{Domain: "uva", Hosts: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w, reg
}

// TestOverloadStormConservation is the storm-level conservation check:
// after an overload storm against an admission-controlled site drains,
// every shed must have been a pure refusal — zero reservations and zero
// running instances left behind, and zero circuit breakers tripped
// (sheds classify as refusals, not transport failures). Seed replay:
// LEGION_CHAOS_SEED pins the run.
func TestOverloadStormConservation(t *testing.T) {
	w, reg := stormWorld(t, core.Options{
		Seed:           1,
		MaxInFlight:    4,
		AdmissionQueue: 8,
		ShedWatermark:  0.8,
	})
	site := w.Sites[0]
	// Slow the site so placements genuinely saturate the admission
	// slots: without injected service time an in-process placement is
	// sub-millisecond and no storm rate shrugs the gate.
	w.Slow(site, 10*time.Millisecond, 2*time.Millisecond)

	res := w.Storm(context.Background(), site, StormConfig{
		Rate:       250, // ~5x the E11 base rate
		Duration:   400 * time.Millisecond,
		Deadline:   250 * time.Millisecond,
		Priorities: []int{0, 0, 0, 1},
	})
	t.Logf("seed %d: offered=%d ok=%d shed=%d failed=%d goodput=%.1f/s p99=%v shedByPrio=%v",
		w.Seed(), res.Offered, res.Succeeded, res.Shed, res.Failed,
		res.Goodput(), res.P99(), res.ShedByPriority)

	if res.Offered == 0 {
		t.Fatal("storm fired nothing")
	}
	if got := res.Succeeded + res.Shed + res.Failed; got != res.Offered {
		t.Errorf("outcome accounting: %d+%d+%d = %d, want offered %d",
			res.Succeeded, res.Shed, res.Failed, got, res.Offered)
	}
	if res.Succeeded == 0 {
		t.Error("admission-controlled site served nothing at 5x load")
	}
	if res.Shed == 0 {
		t.Error("saturated gate shed nothing — admission control never engaged")
	}

	// Conservation: sheds leave no tokens, no instances. Quiesce rather
	// than count instantly — server-side rollbacks may still be in
	// flight when the last client returns.
	if res, run := w.Quiesce(site, 2*time.Second); res != 0 || run != 0 {
		t.Errorf("storm leaked %d reservations, %d running instances", res, run)
	}
	// Sheds are refusals: no breaker may have opened.
	if n := reg.CounterValue("legion_breaker_transitions_total", "to", "open"); n != 0 {
		t.Errorf("%d breakers opened during shedding", n)
	}
}

// TestOverloadStormUncontrolledBaseline runs the same storm with
// admission off: the uncontrolled site must also conserve tokens (every
// failure path still rolls back), and nothing is shed because no gate
// exists to shed.
func TestOverloadStormUncontrolledBaseline(t *testing.T) {
	w, reg := stormWorld(t, core.Options{Seed: 1})
	site := w.Sites[0]

	res := w.Storm(context.Background(), site, StormConfig{
		Rate:     250,
		Duration: 400 * time.Millisecond,
		Deadline: 250 * time.Millisecond,
	})
	t.Logf("seed %d: offered=%d ok=%d shed=%d failed=%d",
		w.Seed(), res.Offered, res.Succeeded, res.Shed, res.Failed)

	if res.Shed != 0 {
		t.Errorf("no admission layer, yet %d requests shed", res.Shed)
	}
	if res, run := w.Quiesce(site, 2*time.Second); res != 0 || run != 0 {
		t.Errorf("uncontrolled storm leaked %d reservations, %d running instances", res, run)
	}
	_ = reg
}
