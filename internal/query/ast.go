package query

import (
	"fmt"
	"strings"

	"legion/internal/attr"
)

// Expr is a parsed query expression node.
type Expr interface {
	// String renders the node as query source text; Parse(e.String())
	// yields an equivalent expression.
	String() string
	// eval evaluates the node against an environment.
	eval(env *Env) (attr.Value, error)
}

// binaryExpr is a boolean or relational binary operation.
type binaryExpr struct {
	op       string // "and", "or", "==", "!=", "<", "<=", ">", ">="
	lhs, rhs Expr
}

// notExpr is logical negation.
type notExpr struct{ sub Expr }

// literalExpr is a string, number, or boolean literal.
type literalExpr struct{ val attr.Value }

// attrExpr is a $name attribute reference.
type attrExpr struct{ name string }

// callExpr is a function call, built-in or injected.
type callExpr struct {
	name string
	args []Expr
}

func (e *binaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.lhs, e.op, e.rhs)
}

func (e *notExpr) String() string { return fmt.Sprintf("(not %s)", e.sub) }

func (e *literalExpr) String() string {
	// attr.Value.String quotes strings, which matches query syntax.
	return e.val.String()
}

func (e *attrExpr) String() string { return "$" + e.name }

func (e *callExpr) String() string {
	parts := make([]string, len(e.args))
	for i, a := range e.args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.name, strings.Join(parts, ", "))
}
