package query

import (
	"fmt"
	"regexp"
	"sync"

	"legion/internal/attr"
)

// Record resolves $name attribute references during evaluation. Both
// *attr.Set and the map-based view returned by attr.FromPairs (via
// MapRecord) satisfy it.
type Record interface {
	Lookup(name string) (attr.Value, bool)
}

// MapRecord adapts a plain attribute map to the Record interface.
type MapRecord map[string]attr.Value

// Lookup implements Record.
func (m MapRecord) Lookup(name string) (attr.Value, bool) {
	v, ok := m[name]
	return v, ok
}

// Func is an injectable query function. Implementations receive the
// record under evaluation (so injected functions can derive new
// description information from existing attributes — the paper's §3.2
// "function injection") and the evaluated argument values.
type Func func(rec Record, args []attr.Value) (attr.Value, error)

// Env is an evaluation environment: the record under test plus any
// injected functions. Envs are cheap to construct per record.
type Env struct {
	// Rec is the record the query runs against.
	Rec Record
	// Funcs maps injected function names to implementations. Injected
	// functions shadow built-ins of the same name, letting users refine
	// system behaviour (a Legion design goal).
	Funcs map[string]Func
}

// EvalError describes a type or resolution error during evaluation.
type EvalError struct {
	Expr string
	Msg  string
}

// Error implements the error interface.
func (e *EvalError) Error() string {
	return fmt.Sprintf("query: eval %s: %s", e.Expr, e.Msg)
}

func evalErrf(e Expr, format string, args ...any) error {
	return &EvalError{Expr: e.String(), Msg: fmt.Sprintf(format, args...)}
}

// Eval evaluates the expression against a record with no injected
// functions and requires a boolean result, the contract of a Collection
// query. An unresolvable attribute makes the enclosing comparison false
// rather than failing the whole query, so records simply missing a field
// do not match (mirroring database NULL semantics); genuine type errors
// are reported.
func Eval(e Expr, rec Record) (bool, error) {
	return EvalEnv(e, &Env{Rec: rec})
}

// EvalEnv is Eval with an explicit environment (injected functions).
func EvalEnv(e Expr, env *Env) (bool, error) {
	v, err := e.eval(env)
	if err != nil {
		if _, missing := err.(*missingAttrError); missing {
			return false, nil
		}
		return false, err
	}
	if v.Kind() != attr.KindBool {
		return false, evalErrf(e, "query result is %s, want bool", v.Kind())
	}
	return v.BoolVal(), nil
}

// missingAttrError marks evaluation that touched an absent attribute. It
// propagates to the nearest boolean context, which treats it as false.
type missingAttrError struct{ name string }

func (e *missingAttrError) Error() string {
	return fmt.Sprintf("query: attribute $%s not present in record", e.name)
}

func (e *literalExpr) eval(*Env) (attr.Value, error) { return e.val, nil }

func (e *attrExpr) eval(env *Env) (attr.Value, error) {
	if env.Rec == nil {
		return attr.Value{}, &missingAttrError{name: e.name}
	}
	v, ok := env.Rec.Lookup(e.name)
	if !ok {
		return attr.Value{}, &missingAttrError{name: e.name}
	}
	return v, nil
}

func (e *notExpr) eval(env *Env) (attr.Value, error) {
	v, err := e.sub.eval(env)
	if err != nil {
		if _, missing := err.(*missingAttrError); missing {
			// not(<missing>) is true: the subterm is false.
			return attr.Bool(true), nil
		}
		return attr.Value{}, err
	}
	if v.Kind() != attr.KindBool {
		return attr.Value{}, evalErrf(e, "operand of 'not' is %s, want bool", v.Kind())
	}
	return attr.Bool(!v.BoolVal()), nil
}

func (e *binaryExpr) eval(env *Env) (attr.Value, error) {
	switch e.op {
	case "and", "or":
		return e.evalLogical(env)
	default:
		return e.evalRelational(env)
	}
}

func (e *binaryExpr) evalLogical(env *Env) (attr.Value, error) {
	lb, err := boolOperand(e.lhs, env)
	if err != nil {
		return attr.Value{}, err
	}
	// Short-circuit.
	if e.op == "and" && !lb {
		return attr.Bool(false), nil
	}
	if e.op == "or" && lb {
		return attr.Bool(true), nil
	}
	rb, err := boolOperand(e.rhs, env)
	if err != nil {
		return attr.Value{}, err
	}
	return attr.Bool(rb), nil
}

// boolOperand evaluates a subexpression in boolean context; a missing
// attribute yields false.
func boolOperand(e Expr, env *Env) (bool, error) {
	v, err := e.eval(env)
	if err != nil {
		if _, missing := err.(*missingAttrError); missing {
			return false, nil
		}
		return false, err
	}
	if v.Kind() != attr.KindBool {
		return false, evalErrf(e, "boolean operand is %s, want bool", v.Kind())
	}
	return v.BoolVal(), nil
}

func (e *binaryExpr) evalRelational(env *Env) (attr.Value, error) {
	lv, err := e.lhs.eval(env)
	if err != nil {
		return attr.Value{}, err
	}
	rv, err := e.rhs.eval(env)
	if err != nil {
		return attr.Value{}, err
	}
	switch e.op {
	case "==":
		return attr.Bool(lv.Equal(rv)), nil
	case "!=":
		return attr.Bool(!lv.Equal(rv)), nil
	}
	// Ordering comparisons: numeric if both coerce, else lexical strings.
	if lf, ok := lv.AsFloat(); ok {
		rf, rok := rv.AsFloat()
		if !rok {
			return attr.Value{}, evalErrf(e, "cannot compare %s with %s", lv.Kind(), rv.Kind())
		}
		return attr.Bool(cmpOrder(e.op, compareFloat(lf, rf))), nil
	}
	if lv.Kind() == attr.KindString && rv.Kind() == attr.KindString {
		return attr.Bool(cmpOrder(e.op, compareString(lv.Str(), rv.Str()))), nil
	}
	return attr.Value{}, evalErrf(e, "cannot order %s against %s", lv.Kind(), rv.Kind())
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpOrder(op string, c int) bool {
	switch op {
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	default:
		panic("query: bad order op " + op)
	}
}

func (e *callExpr) eval(env *Env) (attr.Value, error) {
	// defined($attr) must observe attribute absence rather than have the
	// missing-attribute signal abort argument evaluation, so it is
	// handled before the generic call path.
	if e.name == "defined" && (env.Funcs == nil || env.Funcs["defined"] == nil) {
		if len(e.args) != 1 {
			return attr.Value{}, evalErrf(e, "defined wants 1 argument, got %d", len(e.args))
		}
		v, err := e.args[0].eval(env)
		if err != nil {
			if _, missing := err.(*missingAttrError); missing {
				return attr.Bool(false), nil
			}
			return attr.Value{}, err
		}
		return attr.Bool(v.IsValid()), nil
	}
	if env.Funcs != nil {
		if f, ok := env.Funcs[e.name]; ok {
			return e.call(env, f)
		}
	}
	if f, ok := builtins[e.name]; ok {
		return e.call(env, f)
	}
	return attr.Value{}, evalErrf(e, "unknown function %q", e.name)
}

func (e *callExpr) call(env *Env, f Func) (attr.Value, error) {
	args := make([]attr.Value, len(e.args))
	for i, a := range e.args {
		v, err := a.eval(env)
		if err != nil {
			return attr.Value{}, err
		}
		args[i] = v
	}
	v, err := f(env.Rec, args)
	if err != nil {
		return attr.Value{}, evalErrf(e, "%v", err)
	}
	return v, nil
}

// builtins is the fixed function table available to every query.
var builtins = map[string]Func{
	"match":    builtinMatch,
	"contains": builtinContains,
	"defined":  builtinDefined,
	"len":      builtinLen,
}

// regexCache caches compiled patterns; Collections evaluate the same
// query against thousands of records, so compilation must not repeat per
// record.
var regexCache sync.Map // string -> *regexp.Regexp

func compileCached(pat string) (*regexp.Regexp, error) {
	if re, ok := regexCache.Load(pat); ok {
		return re.(*regexp.Regexp), nil
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		return nil, err
	}
	regexCache.Store(pat, re)
	return re, nil
}

// builtinMatch implements match(regex, subject). Per the paper's footnote
// 5 the first argument is the regular expression; the Unix regexp()
// semantics of "pattern found anywhere in subject" is what Go's
// Regexp.MatchString provides.
func builtinMatch(_ Record, args []attr.Value) (attr.Value, error) {
	if len(args) != 2 {
		return attr.Value{}, fmt.Errorf("match wants 2 arguments, got %d", len(args))
	}
	if args[0].Kind() != attr.KindString || args[1].Kind() != attr.KindString {
		return attr.Value{}, fmt.Errorf("match wants string arguments, got %s, %s",
			args[0].Kind(), args[1].Kind())
	}
	re, err := compileCached(args[0].Str())
	if err != nil {
		return attr.Value{}, fmt.Errorf("bad pattern: %v", err)
	}
	return attr.Bool(re.MatchString(args[1].Str())), nil
}

// builtinContains implements contains(list, elem): true when elem (by
// semantic equality) is an element of list. Useful for list-valued
// attributes like a Host's compatible vaults or refused domains.
func builtinContains(_ Record, args []attr.Value) (attr.Value, error) {
	if len(args) != 2 {
		return attr.Value{}, fmt.Errorf("contains wants 2 arguments, got %d", len(args))
	}
	if args[0].Kind() != attr.KindList {
		return attr.Value{}, fmt.Errorf("contains wants a list first argument, got %s", args[0].Kind())
	}
	for i := 0; i < args[0].Len(); i++ {
		if args[0].At(i).Equal(args[1]) {
			return attr.Bool(true), nil
		}
	}
	return attr.Bool(false), nil
}

// builtinDefined implements defined($attr): true when the record has the
// attribute. The interesting case — the attribute being absent — is
// handled directly in callExpr.eval, which intercepts the missing-
// attribute signal before it aborts argument evaluation; this entry only
// exists so name resolution and shadowing by injected functions work
// uniformly.
func builtinDefined(_ Record, args []attr.Value) (attr.Value, error) {
	if len(args) != 1 {
		return attr.Value{}, fmt.Errorf("defined wants 1 argument, got %d", len(args))
	}
	return attr.Bool(args[0].IsValid()), nil
}

// builtinLen implements len(x): list length or string byte length.
func builtinLen(_ Record, args []attr.Value) (attr.Value, error) {
	if len(args) != 1 {
		return attr.Value{}, fmt.Errorf("len wants 1 argument, got %d", len(args))
	}
	switch args[0].Kind() {
	case attr.KindList:
		return attr.Int(int64(args[0].Len())), nil
	case attr.KindString:
		return attr.Int(int64(len(args[0].Str()))), nil
	default:
		return attr.Value{}, fmt.Errorf("len wants a list or string, got %s", args[0].Kind())
	}
}
