package query

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"legion/internal/attr"
)

func rec(pairs ...attr.Pair) Record {
	return attr.NewSet(pairs...)
}

func mustEval(t *testing.T, src string, r Record) bool {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	b, err := Eval(e, r)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return b
}

// TestPaperIRIXExample reproduces the query from §3.2: "to find all Hosts
// running with the IRIX operating system version 5.x". Written in the
// footnote-5 canonical argument order (pattern first).
func TestPaperIRIXExample(t *testing.T) {
	q := `match("IRIX", $host_os_name) and match("5\..*", $host_os_version)`
	irix5 := rec(
		attr.Pair{Name: "host_os_name", Value: attr.String("IRIX")},
		attr.Pair{Name: "host_os_version", Value: attr.String("5.3")},
	)
	irix6 := rec(
		attr.Pair{Name: "host_os_name", Value: attr.String("IRIX")},
		attr.Pair{Name: "host_os_version", Value: attr.String("6.5")},
	)
	linux := rec(
		attr.Pair{Name: "host_os_name", Value: attr.String("Linux")},
		attr.Pair{Name: "host_os_version", Value: attr.String("5.1")},
	)
	if !mustEval(t, q, irix5) {
		t.Error("IRIX 5.3 should match")
	}
	if mustEval(t, q, irix6) {
		t.Error("IRIX 6.5 should not match")
	}
	if mustEval(t, q, linux) {
		t.Error("Linux 5.1 should not match")
	}
}

func TestComparisons(t *testing.T) {
	r := rec(
		attr.Pair{Name: "load", Value: attr.Float(0.5)},
		attr.Pair{Name: "mem", Value: attr.Int(1024)},
		attr.Pair{Name: "arch", Value: attr.String("sparc")},
		attr.Pair{Name: "up", Value: attr.Bool(true)},
	)
	cases := []struct {
		q    string
		want bool
	}{
		{`$load < 1.0`, true},
		{`$load > 1.0`, false},
		{`$load <= 0.5`, true},
		{`$load >= 0.5`, true},
		{`$load == 0.5`, true},
		{`$load != 0.5`, false},
		{`$mem > 512`, true},
		{`$mem == 1024`, true},
		{`$mem < $load`, false},
		{`$arch == "sparc"`, true},
		{`$arch != "x86"`, true},
		{`$arch < "t"`, true},
		{`$arch > "t"`, false},
		{`$up`, true},
		{`$up == true`, true},
		{`$mem = 1024`, true}, // single '=' accepted as equality
		{`0.5 == $load`, true},
		{`1024.0 == $mem`, true}, // cross int/float equality
	}
	for _, c := range cases {
		if got := mustEval(t, c.q, r); got != c.want {
			t.Errorf("%q = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestBooleanCombinations(t *testing.T) {
	r := rec(
		attr.Pair{Name: "a", Value: attr.Bool(true)},
		attr.Pair{Name: "b", Value: attr.Bool(false)},
	)
	cases := []struct {
		q    string
		want bool
	}{
		{`$a and $b`, false},
		{`$a or $b`, true},
		{`not $b`, true},
		{`not $a`, false},
		{`not not $a`, true},
		{`$a and not $b`, true},
		{`($a or $b) and $a`, true},
		// Precedence: not > and > or.
		{`$b or $a and $a`, true},
		{`not $b and $a`, true},
		{`true or false`, true},
		{`true and false`, false},
	}
	for _, c := range cases {
		if got := mustEval(t, c.q, r); got != c.want {
			t.Errorf("%q = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestMissingAttributeSemantics(t *testing.T) {
	r := rec(attr.Pair{Name: "present", Value: attr.Int(1)})
	cases := []struct {
		q    string
		want bool
	}{
		// A comparison touching a missing attribute is false...
		{`$absent == 1`, false},
		{`$absent < 5`, false},
		// ...its negation is true (the term is false, not an error)...
		{`not ($absent == 1)`, true},
		// ...and boolean combinations degrade gracefully.
		{`$present == 1 or $absent == 1`, true},
		{`$present == 1 and $absent == 1`, false},
		{`defined($present)`, true},
		{`defined($absent)`, false},
		{`not defined($absent)`, true},
	}
	for _, c := range cases {
		if got := mustEval(t, c.q, r); got != c.want {
			t.Errorf("%q = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestBuiltinContainsAndLen(t *testing.T) {
	r := rec(
		attr.Pair{Name: "vaults", Value: attr.Strings("v1", "v2")},
		attr.Pair{Name: "name", Value: attr.String("abc")},
	)
	cases := []struct {
		q    string
		want bool
	}{
		{`contains($vaults, "v1")`, true},
		{`contains($vaults, "v9")`, false},
		{`len($vaults) == 2`, true},
		{`len($name) == 3`, true},
		{`len($name) > len($vaults)`, true},
	}
	for _, c := range cases {
		if got := mustEval(t, c.q, r); got != c.want {
			t.Errorf("%q = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestFunctionInjection(t *testing.T) {
	// §3.2: users can install code to compute new description information
	// from existing attributes — the NWS motivation.
	r := rec(attr.Pair{Name: "load_history", Value: attr.List(
		attr.Float(0.2), attr.Float(0.4), attr.Float(0.6))})
	env := &Env{
		Rec: r,
		Funcs: map[string]Func{
			"forecast": func(rec Record, args []attr.Value) (attr.Value, error) {
				hist, ok := rec.Lookup("load_history")
				if !ok {
					return attr.Value{}, errors.New("no history")
				}
				var sum float64
				for i := 0; i < hist.Len(); i++ {
					f, _ := hist.At(i).AsFloat()
					sum += f
				}
				return attr.Float(sum / float64(hist.Len())), nil
			},
		},
	}
	e := MustParse(`forecast() < 0.5`)
	got, err := EvalEnv(e, env)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("forecast() = 0.4 should be < 0.5")
	}
}

func TestInjectionShadowsBuiltin(t *testing.T) {
	env := &Env{
		Rec: rec(),
		Funcs: map[string]Func{
			"match": func(_ Record, _ []attr.Value) (attr.Value, error) {
				return attr.Bool(true), nil
			},
		},
	}
	got, err := EvalEnv(MustParse(`match("x", "y")`), env)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("injected match should shadow builtin (builtin would be false)")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"$",
		"$1bad",
		`"unterminated`,
		"1 ==",
		"== 1",
		"(1 == 1",
		"1 == 1)",
		"foo",
		"foo(",
		"foo(1,",
		"foo(1 2)",
		"and",
		"not",
		"1 === 1",
		"3.",
		"$a ! $b",
		"#",
		"$a == 1 extra",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): want error", s)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("Parse(%q): error %v is not *SyntaxError", s, err)
			}
		}
	}
}

func TestEvalErrors(t *testing.T) {
	r := rec(
		attr.Pair{Name: "s", Value: attr.String("x")},
		attr.Pair{Name: "n", Value: attr.Int(1)},
		attr.Pair{Name: "b", Value: attr.Bool(true)},
	)
	bad := []string{
		`$s < $n`,           // string vs number ordering
		`$b < $b`,           // bool ordering
		`$s and $b`,         // non-bool logical operand
		`not $n`,            // non-bool not
		`$n`,                // non-bool top level
		`match($n, "x")`,    // non-string match arg
		`match("(", "x")`,   // bad regex
		`match("x")`,        // arity
		`contains($s, "x")`, // non-list contains
		`len($n)`,           // bad len operand
		`nosuchfn(1)`,       // unknown function
		`defined($s, $n)`,   // defined arity
	}
	for _, s := range bad {
		e, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if _, err := Eval(e, r); err == nil {
			t.Errorf("Eval(%q): want error", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		`match("IRIX", $host_os_name) and match("5\..*", $host_os_name)`,
		`$load < 0.5 or not defined($reserved)`,
		`contains($vaults, "v1") and len($vaults) >= 2`,
		`not ($a == 1 and $b == 2)`,
		`true or false and not false`,
	}
	r := rec(
		attr.Pair{Name: "host_os_name", Value: attr.String("IRIX 5.3")},
		attr.Pair{Name: "load", Value: attr.Float(0.3)},
		attr.Pair{Name: "vaults", Value: attr.Strings("v1", "v2")},
		attr.Pair{Name: "a", Value: attr.Int(1)},
		attr.Pair{Name: "b", Value: attr.Int(2)},
	)
	for _, src := range srcs {
		e1 := MustParse(src)
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", src, e1.String(), err)
		}
		b1, err1 := Eval(e1, r)
		b2, err2 := Eval(e2, r)
		if err1 != nil || err2 != nil || b1 != b2 {
			t.Errorf("round trip of %q changed meaning: %v/%v vs %v/%v",
				src, b1, err1, b2, err2)
		}
	}
}

// TestNumericLiteralParsingProperty: integer literals survive parse/eval
// against an equal attribute.
func TestNumericLiteralParsingProperty(t *testing.T) {
	f := func(n int32) bool {
		r := rec(attr.Pair{Name: "x", Value: attr.Int(int64(n))})
		e, err := Parse("$x == " + attr.Int(int64(n)).String())
		if err != nil {
			return false
		}
		got, err := Eval(e, r)
		return err == nil && got
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanics: arbitrary input must produce a value or an
// error, never a panic.
func TestParserNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Parse(s)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// A few adversarial inputs beyond random generation.
	for _, s := range []string{
		strings.Repeat("(", 10000),
		strings.Repeat("not ", 1000) + "true",
		`match(` + strings.Repeat(`match(`, 100) + `"x"`,
	} {
		Parse(s)
	}
}

func TestStringEscapes(t *testing.T) {
	r := rec(attr.Pair{Name: "s", Value: attr.String("a\"b\nc\td")})
	if !mustEval(t, `$s == "a\"b\nc\td"`, r) {
		t.Error("escape decoding failed")
	}
	// Regex escapes pass through so patterns need no double escaping.
	if !mustEval(t, `match("a\d+z", $x) or true`, rec()) {
		t.Error("regex escape handling")
	}
}

func TestNegativeNumbers(t *testing.T) {
	r := rec(attr.Pair{Name: "x", Value: attr.Int(-5)})
	if !mustEval(t, `$x == -5`, r) {
		t.Error("-5 literal")
	}
	if !mustEval(t, `$x < -1.5`, r) {
		t.Error("-1.5 literal")
	}
}

func TestEmptyArgFunctionCall(t *testing.T) {
	env := &Env{Rec: rec(), Funcs: map[string]Func{
		"always": func(_ Record, args []attr.Value) (attr.Value, error) {
			if len(args) != 0 {
				return attr.Value{}, errors.New("want no args")
			}
			return attr.Bool(true), nil
		},
	}}
	got, err := EvalEnv(MustParse("always()"), env)
	if err != nil || !got {
		t.Errorf("always() = %v, %v", got, err)
	}
}

func TestConcurrentEvalSharedExpr(t *testing.T) {
	e := MustParse(`match("IRIX", $os) and $load < 0.5`)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			r := rec(
				attr.Pair{Name: "os", Value: attr.String("IRIX")},
				attr.Pair{Name: "load", Value: attr.Float(float64(g) / 16)},
			)
			for i := 0; i < 500; i++ {
				want := float64(g)/16 < 0.5
				got, err := Eval(e, r)
				if err != nil || got != want {
					t.Errorf("concurrent eval: %v, %v", got, err)
					break
				}
			}
			done <- true
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestMapRecordLookup(t *testing.T) {
	m := MapRecord{"x": attr.Int(1)}
	if v, ok := m.Lookup("x"); !ok || v.IntVal() != 1 {
		t.Errorf("Lookup = %v, %v", v, ok)
	}
	if _, ok := m.Lookup("y"); ok {
		t.Error("missing key found")
	}
}

func TestErrorMessages(t *testing.T) {
	_, err := Parse("(((")
	var se *SyntaxError
	if !errors.As(err, &se) || !strings.Contains(se.Error(), "syntax error") {
		t.Errorf("syntax error text: %v", err)
	}
	e := MustParse(`$n and true`)
	_, err = Eval(e, rec(attr.Pair{Name: "n", Value: attr.Int(1)}))
	var ee *EvalError
	if !errors.As(err, &ee) || !strings.Contains(ee.Error(), "eval") {
		t.Errorf("eval error text: %v", err)
	}
	// missingAttrError has a message too (internal but reachable via
	// top-level non-boolean result... exercise through Error()).
	me := &missingAttrError{name: "gone"}
	if !strings.Contains(me.Error(), "$gone") {
		t.Errorf("missing attr error: %v", me)
	}
}

func TestStringOrderingComparisons(t *testing.T) {
	r := rec(attr.Pair{Name: "s", Value: attr.String("mm")})
	cases := map[string]bool{
		`$s < "zz"`:  true,
		`$s > "zz"`:  false,
		`$s <= "mm"`: true,
		`$s >= "mm"`: true,
		`$s > "aa"`:  true,
		`$s < "aa"`:  false,
	}
	for q, want := range cases {
		if got := mustEval(t, q, r); got != want {
			t.Errorf("%q = %v want %v", q, got, want)
		}
	}
}

func TestDefinedShadowedByInjection(t *testing.T) {
	// An injected "defined" takes over completely (generic call path).
	env := &Env{Rec: rec(), Funcs: map[string]Func{
		"defined": func(_ Record, args []attr.Value) (attr.Value, error) {
			return attr.Bool(true), nil
		},
	}}
	got, err := EvalEnv(MustParse(`defined("anything")`), env)
	if err != nil || !got {
		t.Errorf("shadowed defined: %v %v", got, err)
	}
	// The builtin defined() also works on non-attribute expressions via
	// the special path (validity of the evaluated value).
	got, err = EvalEnv(MustParse(`defined(1)`), &Env{Rec: rec()})
	if err != nil || !got {
		t.Errorf("defined(1): %v %v", got, err)
	}
}

func TestTokenKindStrings(t *testing.T) {
	kinds := []tokKind{tokEOF, tokString, tokNumber, tokIdent, tokAttr,
		tokLParen, tokRParen, tokComma, tokOp}
	for _, k := range kinds {
		if k.String() == "" || k.String() == "unknown token" {
			t.Errorf("kind %d stringifies to %q", int(k), k.String())
		}
	}
	if tokKind(99).String() != "unknown token" {
		t.Error("unknown kind")
	}
}
