package query

import (
	"container/list"
	"sync"
)

// ParseCache is a bounded LRU cache of parsed expressions keyed on query
// source text. Schedulers and the failure detector issue the same handful
// of query strings over and over (one per class, per sweep), so the parse
// cost can be paid once. Parsed Exprs are immutable (see Parse), so a
// single cached expression is safely shared by concurrent evaluations.
type ParseCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	lru list.List // front = most recently used; element values are *cacheEntry

	hits   int64
	misses int64
}

type cacheEntry struct {
	src  string
	expr Expr
}

// DefaultParseCacheSize bounds a cache built with NewParseCache(0).
const DefaultParseCacheSize = 256

// NewParseCache creates a cache holding up to capacity parsed queries
// (DefaultParseCacheSize when capacity <= 0).
func NewParseCache(capacity int) *ParseCache {
	if capacity <= 0 {
		capacity = DefaultParseCacheSize
	}
	return &ParseCache{cap: capacity, m: make(map[string]*list.Element, capacity)}
}

// Parse returns the parse of src, reusing a cached expression when the
// identical source was parsed before. Only successful parses are cached;
// a syntax error is returned as from Parse and cached nowhere, so a
// malformed query cannot evict live entries.
func (c *ParseCache) Parse(src string) (Expr, bool, error) {
	c.mu.Lock()
	if el, ok := c.m[src]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		expr := el.Value.(*cacheEntry).expr
		c.mu.Unlock()
		return expr, true, nil
	}
	c.misses++
	c.mu.Unlock()

	// Parse outside the lock: a pathological query must not serialize
	// every other caller behind its parse.
	expr, err := Parse(src)
	if err != nil {
		return nil, false, err
	}

	c.mu.Lock()
	if el, ok := c.m[src]; ok {
		// Raced with another caller parsing the same source; keep theirs.
		c.lru.MoveToFront(el)
		expr = el.Value.(*cacheEntry).expr
	} else {
		c.m[src] = c.lru.PushFront(&cacheEntry{src: src, expr: expr})
		for c.lru.Len() > c.cap {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.m, oldest.Value.(*cacheEntry).src)
		}
	}
	c.mu.Unlock()
	return expr, false, nil
}

// Stats returns lifetime hit and miss counts.
func (c *ParseCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the number of cached queries.
func (c *ParseCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
