package query

import (
	"fmt"
	"sync"
	"testing"
)

func TestParseCacheHitAndEvict(t *testing.T) {
	c := NewParseCache(2)
	if _, hit, err := c.Parse(`$a == 1`); err != nil || hit {
		t.Fatalf("first parse: hit=%v err=%v", hit, err)
	}
	if _, hit, err := c.Parse(`$a == 1`); err != nil || !hit {
		t.Fatalf("second parse: hit=%v err=%v", hit, err)
	}
	c.Parse(`$b == 2`)
	// Touch $a so $b is the LRU victim.
	c.Parse(`$a == 1`)
	c.Parse(`$c == 3`) // evicts $b
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, hit, _ := c.Parse(`$a == 1`); !hit {
		t.Error("recently used entry evicted")
	}
	// Probing for $b re-inserts it, so check it last.
	if _, hit, _ := c.Parse(`$b == 2`); hit {
		t.Error("evicted entry still cached")
	}
}

func TestParseCacheDoesNotCacheErrors(t *testing.T) {
	c := NewParseCache(4)
	for i := 0; i < 3; i++ {
		if _, _, err := c.Parse(`(((`); err == nil {
			t.Fatal("bad syntax accepted")
		}
	}
	if c.Len() != 0 {
		t.Errorf("error cached: Len = %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 0 || misses != 3 {
		t.Errorf("stats = %d hits %d misses", hits, misses)
	}
}

func TestParseCacheConcurrent(t *testing.T) {
	c := NewParseCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				src := fmt.Sprintf(`$load < %d`, i%4)
				e, _, err := c.Parse(src)
				if err != nil {
					t.Errorf("parse %q: %v", src, err)
					return
				}
				if e.String() == "" {
					t.Error("empty expr")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4", c.Len())
	}
}
