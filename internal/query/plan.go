package query

import "legion/internal/attr"

// Term is one indexable conjunct of a query: an attribute compared
// against a literal ($attr op literal, in either operand order — the
// stored Op always reads attribute-first). Collections use Terms to
// prune the candidate set through an inverted attribute index before
// evaluating the full expression.
type Term struct {
	Attr  string
	Op    string // "==", "!=", "<", "<=", ">", ">="
	Value attr.Value
}

// ConjunctiveTerms extracts the attribute-vs-literal comparisons that
// every matching record must satisfy. Only the top-level "and" spine is
// walked: a term found there is a necessary condition for the whole
// expression (a record failing it cannot match, because the evaluator
// treats a false or missing-attribute conjunct as falsifying the
// conjunction), so filtering candidates by any such term is sound.
// Subtrees under "or", "not", or function calls contribute nothing.
func ConjunctiveTerms(e Expr) []Term {
	var out []Term
	collectConjuncts(e, &out)
	return out
}

func collectConjuncts(e Expr, out *[]Term) {
	b, ok := e.(*binaryExpr)
	if !ok {
		return
	}
	if b.op == "and" {
		collectConjuncts(b.lhs, out)
		collectConjuncts(b.rhs, out)
		return
	}
	if b.op == "or" {
		return
	}
	if a, ok := b.lhs.(*attrExpr); ok {
		if l, ok := b.rhs.(*literalExpr); ok {
			*out = append(*out, Term{Attr: a.name, Op: b.op, Value: l.val})
		}
		return
	}
	if l, ok := b.lhs.(*literalExpr); ok {
		if a, ok := b.rhs.(*attrExpr); ok {
			*out = append(*out, Term{Attr: a.name, Op: flipOp(b.op), Value: l.val})
		}
	}
}

// flipOp rewrites "literal op $attr" as "$attr flipOp(op) literal".
func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default: // == and != are symmetric
		return op
	}
}

// CompareValues reports whether "a op b" holds under the evaluator's
// relational semantics: semantic equality for == and !=, numeric order
// when both values coerce to float, lexical order for string pairs.
// comparable is false when the kinds cannot be ordered — evaluating such
// a comparison against a record errors, so the record cannot match.
func CompareValues(a, b attr.Value, op string) (result, comparable bool) {
	switch op {
	case "==":
		return a.Equal(b), true
	case "!=":
		return !a.Equal(b), true
	}
	if af, ok := a.AsFloat(); ok {
		bf, ok := b.AsFloat()
		if !ok {
			return false, false
		}
		return cmpOrder(op, compareFloat(af, bf)), true
	}
	if a.Kind() == attr.KindString && b.Kind() == attr.KindString {
		return cmpOrder(op, compareString(a.Str(), b.Str())), true
	}
	return false, false
}
