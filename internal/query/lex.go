// Package query implements the Collection query language of the Legion
// resource management system.
//
// The paper (§3.2): "A Collection query is a logical expression conforming
// to the grammar described in our earlier work [MESSIAHS]. This grammar
// allows typical operations (field matching, semantic comparisons, and
// boolean combinations of terms). Identifiers refer to attribute names
// within a particular record, and are of the form $AttributeName."
//
// The concrete grammar implemented here:
//
//	expr       := orExpr
//	orExpr     := andExpr { "or" andExpr }
//	andExpr    := notExpr { "and" notExpr }
//	notExpr    := "not" notExpr | comparison
//	comparison := operand [ ("=="|"!="|"<"|"<="|">"|">=") operand ]
//	operand    := string | number | "true" | "false" | $ident
//	            | ident "(" [expr {"," expr}] ")" | "(" expr ")"
//
// Built-in functions: match(regex, subject) — per the paper's footnote 5,
// the FIRST argument is the regular expression ("some earlier descriptions
// ... erroneously had the regular expression as the second argument");
// contains(list, elem); defined($attr); len(x).
//
// §3.2 also previews "function injection — the ability for users to
// install code to dynamically compute new description information".
// Package query supports this via Env.Funcs: user-registered functions are
// callable from queries exactly like built-ins (see internal/nws for the
// Network Weather Service forecasters the paper motivates this with).
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokString
	tokNumber
	tokIdent  // bare identifier: function name, and/or/not/true/false
	tokAttr   // $name
	tokLParen // (
	tokRParen // )
	tokComma  // ,
	tokOp     // == != < <= > >=
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokIdent:
		return "identifier"
	case tokAttr:
		return "attribute"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokOp:
		return "operator"
	default:
		return "unknown token"
	}
}

// token is a lexical token with its source position (byte offset).
type token struct {
	kind  tokKind
	text  string // identifier/attr name, operator text, or decoded string
	num   float64
	isInt bool
	intv  int64
	pos   int
}

// lexer converts query source text into tokens.
type lexer struct {
	src string
	pos int
}

// SyntaxError describes a lexical or parse error with its byte offset in
// the query text.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("query: syntax error at offset %d: %s", e.Pos, e.Msg)
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func isIdentStart(b byte) bool {
	return b == '_' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isIdentByte(b byte) bool {
	return isIdentStart(b) || (b >= '0' && b <= '9')
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, pos: start}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, pos: start}, nil
	case c == '$':
		l.pos++
		if l.pos >= len(l.src) || !isIdentStart(l.src[l.pos]) {
			return token{}, l.errf(start, "'$' must be followed by an attribute name")
		}
		for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokAttr, text: l.src[start+1 : l.pos], pos: start}, nil
	case c == '"':
		return l.lexString(start)
	case c >= '0' && c <= '9', c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		return l.lexNumber(start)
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case c == '=' || c == '!' || c == '<' || c == '>':
		return l.lexOp(start)
	default:
		return token{}, l.errf(start, "unexpected character %q", c)
	}
}

func (l *lexer) lexString(start int) (token, error) {
	l.pos++ // consume opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return token{}, l.errf(start, "unterminated escape in string")
			}
			esc := l.src[l.pos]
			switch esc {
			case '"', '\\':
				sb.WriteByte(esc)
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			default:
				// Preserve unknown escapes verbatim so regex escapes like
				// \. and \d survive: match("5\..*", $os) works unquoted.
				sb.WriteByte('\\')
				sb.WriteByte(esc)
			}
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errf(start, "unterminated string literal")
}

func (l *lexer) lexNumber(start int) (token, error) {
	if l.src[l.pos] == '-' {
		l.pos++
	}
	sawDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !sawDot {
			sawDot = true
			l.pos++
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if strings.HasSuffix(text, ".") {
		return token{}, l.errf(start, "malformed number %q", text)
	}
	if !sawDot {
		var iv int64
		neg := false
		s := text
		if s[0] == '-' {
			neg = true
			s = s[1:]
		}
		for i := 0; i < len(s); i++ {
			iv = iv*10 + int64(s[i]-'0')
		}
		if neg {
			iv = -iv
		}
		return token{kind: tokNumber, isInt: true, intv: iv, num: float64(iv), pos: start}, nil
	}
	var f float64
	if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
		return token{}, l.errf(start, "malformed number %q", text)
	}
	return token{kind: tokNumber, num: f, pos: start}, nil
}

func (l *lexer) lexOp(start int) (token, error) {
	c := l.src[l.pos]
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "==", "!=", "<=", ">=":
		l.pos += 2
		return token{kind: tokOp, text: two, pos: start}, nil
	}
	switch c {
	case '<', '>':
		l.pos++
		return token{kind: tokOp, text: string(c), pos: start}, nil
	case '=':
		// Accept single '=' as equality for ergonomic parity with the
		// paper's informal examples.
		l.pos++
		return token{kind: tokOp, text: "==", pos: start}, nil
	default:
		return token{}, l.errf(start, "unexpected character %q", c)
	}
}
