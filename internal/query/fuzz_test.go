package query

import (
	"strings"
	"testing"

	"legion/internal/attr"
)

// fuzzRecord is a representative host record for evaluating whatever the
// fuzzer manages to parse: every attribute kind appears, so comparisons,
// list builtins, and coercions all get exercised.
var fuzzRecord = MapRecord{
	"arch":        attr.String("x86"),
	"os":          attr.String("Linux"),
	"os_version":  attr.String("2.2"),
	"cpus":        attr.Int(4),
	"load":        attr.Float(0.25),
	"interactive": attr.Bool(true),
	"vaults":      attr.Strings("v1", "v2"),
}

// FuzzParse asserts the query front end is total: Parse never panics,
// and anything it accepts can be printed and evaluated without panicking
// (evaluation errors are fine — type mismatches are part of the
// language).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"",
		`$arch == "x86"`,
		`$arch == "x86" and $os == "Linux"`,
		`$cpus >= 2 or $load < 0.5`,
		`not $interactive`,
		`not not not true`,
		`match("5\..*", $os_version)`,
		`contains($vaults, "v1")`,
		`defined($load) and len($vaults) > 1`,
		`(($cpus > 1) or (true)) and ($load <= 1.0)`,
		`match("(", $os)`,
		`$a = 1`,
		`"unterminated`,
		`$`,
		`f(,)`,
		strings.Repeat("not ", 64) + "true",
		strings.Repeat("(", 300) + "true" + strings.Repeat(")", 300),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			if e != nil {
				t.Fatalf("Parse(%q) returned both expr and error %v", src, err)
			}
			return
		}
		if e == nil {
			t.Fatalf("Parse(%q) returned nil expr with nil error", src)
		}
		if e.String() == "" {
			t.Fatalf("Parse(%q): empty String()", src)
		}
		// Evaluation may fail (type errors, bad regexes, unknown
		// functions) but must never panic.
		_, _ = Eval(e, fuzzRecord)
	})
}

// TestParseDepthLimit pins the stack-exhaustion fix: pathological
// nesting parses up to maxDepth and is rejected — not crashed on —
// beyond it.
func TestParseDepthLimit(t *testing.T) {
	ok := strings.Repeat("(", maxDepth-1) + "true" + strings.Repeat(")", maxDepth-1)
	if _, err := Parse(ok); err != nil {
		t.Errorf("nesting just under the limit must parse: %v", err)
	}
	for _, src := range []string{
		strings.Repeat("(", 100000) + "true" + strings.Repeat(")", 100000),
		strings.Repeat("not ", 100000) + "true",
		strings.Repeat("len(", 100000) + "1" + strings.Repeat(")", 100000),
	} {
		_, err := Parse(src)
		if err == nil {
			t.Error("pathologically nested query must be rejected")
			continue
		}
		if !strings.Contains(err.Error(), "nested deeper") {
			t.Errorf("want depth-limit error, got: %v", err)
		}
	}
}
