package query

import (
	"legion/internal/attr"
)

// maxDepth bounds expression nesting ("not" chains, parentheses, call
// arguments). Without it a hostile query of a few thousand bytes —
// "not not not ..." or "((((..." — drives the recursive-descent parser
// into stack exhaustion, which in Go is an unrecoverable crash of the
// whole Collection process, not a catchable panic.
const maxDepth = 200

// parser is a recursive-descent parser over the token stream.
type parser struct {
	lex   *lexer
	tok   token // one-token lookahead
	depth int   // current expression nesting, bounded by maxDepth
}

// Parse parses a query expression. The returned Expr is immutable and safe
// for concurrent evaluation against many records.
func Parse(src string) (Expr, error) {
	p := &parser{lex: &lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %s after expression", p.tok.kind)
	}
	return e, nil
}

// MustParse is Parse but panics on error; for tests and fixed queries.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return p.lex.errf(p.tok.pos, format, args...)
}

func (p *parser) parseOr() (Expr, error) {
	lhs, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokIdent && p.tok.text == "or" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{op: "or", lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) parseAnd() (Expr, error) {
	lhs, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokIdent && p.tok.text == "and" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		lhs = &binaryExpr{op: "and", lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

// parseNot sits on every recursion cycle through the grammar (paren
// groups and call arguments re-enter via parseOr, which reaches here;
// "not" recurses directly), so the depth guard lives here alone.
func (p *parser) parseNot() (Expr, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxDepth {
		return nil, p.errf("expression nested deeper than %d levels", maxDepth)
	}
	if p.tok.kind == tokIdent && p.tok.text == "not" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		sub, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &notExpr{sub: sub}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	lhs, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return &binaryExpr{op: op, lhs: lhs, rhs: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) parseOperand() (Expr, error) {
	switch p.tok.kind {
	case tokString:
		e := &literalExpr{val: attr.String(p.tok.text)}
		return e, p.advance()
	case tokNumber:
		var v attr.Value
		if p.tok.isInt {
			v = attr.Int(p.tok.intv)
		} else {
			v = attr.Float(p.tok.num)
		}
		return &literalExpr{val: v}, p.advance()
	case tokAttr:
		e := &attrExpr{name: p.tok.text}
		return e, p.advance()
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errf("want ')', got %s", p.tok.kind)
		}
		return e, p.advance()
	case tokIdent:
		switch p.tok.text {
		case "true":
			return &literalExpr{val: attr.Bool(true)}, p.advance()
		case "false":
			return &literalExpr{val: attr.Bool(false)}, p.advance()
		case "and", "or", "not":
			return nil, p.errf("unexpected keyword %q", p.tok.text)
		}
		return p.parseCall()
	default:
		return nil, p.errf("unexpected %s", p.tok.kind)
	}
}

func (p *parser) parseCall() (Expr, error) {
	name := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokLParen {
		return nil, p.errf("want '(' after function name %q", name)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	call := &callExpr{name: name}
	if p.tok.kind == tokRParen {
		return call, p.advance()
	}
	for {
		arg, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		call.args = append(call.args, arg)
		switch p.tok.kind {
		case tokComma:
			if err := p.advance(); err != nil {
				return nil, err
			}
		case tokRParen:
			return call, p.advance()
		default:
			return nil, p.errf("want ',' or ')' in argument list, got %s", p.tok.kind)
		}
	}
}
