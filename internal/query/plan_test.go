package query

import (
	"testing"

	"legion/internal/attr"
)

func mustParse(t *testing.T, src string) Expr {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e
}

func TestConjunctiveTerms(t *testing.T) {
	cases := []struct {
		src  string
		want []Term
	}{
		{`$arch == "mips"`, []Term{{"arch", "==", attr.String("mips")}}},
		{`$alive == true and $load < 0.5`, []Term{
			{"alive", "==", attr.Bool(true)},
			{"load", "<", attr.Float(0.5)},
		}},
		// Nested and-spine, literal-first operands flipped.
		{`($cpus >= 4 and 10 > $load) and match("IRIX", $os)`, []Term{
			{"cpus", ">=", attr.Int(4)},
			{"load", "<", attr.Int(10)},
		}},
		// or / not / calls contribute nothing.
		{`$a == 1 or $b == 2`, nil},
		{`not ($a == 1)`, nil},
		{`defined($a)`, nil},
		// Below an or, terms are not necessary conditions.
		{`$a == 1 and ($b == 2 or $c == 3)`, []Term{{"a", "==", attr.Int(1)}}},
		// attr-vs-attr is not indexable.
		{`$a == $b`, nil},
	}
	for _, tc := range cases {
		got := ConjunctiveTerms(mustParse(t, tc.src))
		if len(got) != len(tc.want) {
			t.Errorf("%q: terms = %+v, want %+v", tc.src, got, tc.want)
			continue
		}
		for i := range got {
			if got[i].Attr != tc.want[i].Attr || got[i].Op != tc.want[i].Op ||
				!got[i].Value.Equal(tc.want[i].Value) {
				t.Errorf("%q term %d: %+v, want %+v", tc.src, i, got[i], tc.want[i])
			}
		}
	}
}

func TestCompareValues(t *testing.T) {
	cases := []struct {
		a, b       attr.Value
		op         string
		result, ok bool
	}{
		{attr.Int(3), attr.Float(3.0), "==", true, true},
		{attr.Int(3), attr.Int(4), "!=", true, true},
		{attr.Float(0.2), attr.Float(0.5), "<", true, true},
		{attr.Int(7), attr.Float(0.5), "<=", false, true},
		{attr.String("IRIX"), attr.String("Linux"), "<", true, true},
		{attr.String("b"), attr.String("a"), ">=", true, true},
		// Kind mismatches cannot be ordered.
		{attr.String("x"), attr.Int(1), "<", false, false},
		{attr.Bool(true), attr.Int(1), ">", false, false},
		// ...but equality always answers.
		{attr.Bool(true), attr.Int(1), "==", false, true},
	}
	for _, tc := range cases {
		result, ok := CompareValues(tc.a, tc.b, tc.op)
		if result != tc.result || ok != tc.ok {
			t.Errorf("CompareValues(%v %s %v) = %v,%v want %v,%v",
				tc.a, tc.op, tc.b, result, ok, tc.result, tc.ok)
		}
	}
}

// TestConjunctiveTermsMatchEval: any record failing an extracted term
// must fail the whole expression — the soundness property index pruning
// relies on.
func TestConjunctiveTermsMatchEval(t *testing.T) {
	srcs := []string{
		`$arch == "mips" and $load < 0.5`,
		`$alive == true and ($zone == "uva" or $zone == "sdsc")`,
		`$cpus >= 2 and not ($os == "IRIX")`,
		`3 <= $cpus and defined($vaults)`,
	}
	recs := []MapRecord{
		{"arch": attr.String("mips"), "load": attr.Float(0.1), "alive": attr.Bool(true),
			"zone": attr.String("uva"), "cpus": attr.Int(4), "os": attr.String("Linux"),
			"vaults": attr.List(attr.String("v1"))},
		{"arch": attr.String("sparc"), "load": attr.Float(0.9), "alive": attr.Bool(false),
			"zone": attr.String("mit"), "cpus": attr.Int(1), "os": attr.String("IRIX")},
		{}, // everything missing
	}
	for _, src := range srcs {
		e := mustParse(t, src)
		terms := ConjunctiveTerms(e)
		for ri, rec := range recs {
			matched, err := Eval(e, rec)
			if err != nil || !matched {
				continue
			}
			// The record matches: every term must hold for it.
			for _, term := range terms {
				v, ok := rec.Lookup(term.Attr)
				if !ok {
					t.Errorf("%q rec %d matches but lacks term attr %s", src, ri, term.Attr)
					continue
				}
				if res, cmp := CompareValues(v, term.Value, term.Op); !cmp || !res {
					t.Errorf("%q rec %d matches but fails term %+v", src, ri, term)
				}
			}
		}
	}
}
