// Package monitor implements the execution Monitor of the Legion RMI
// (paper §3, steps 12-13, and §3.5).
//
// "After the objects are running, the execution Monitor may request a
// recomputation of the schedule, perhaps based on the progress of the
// computation and the load on the hosts in the system." Mechanically
// (§3.5): "the Monitor can register an outcall with the Host Objects;
// this outcall will be performed when a trigger's guard evaluates to
// true. ... In our actual implementation, we have no separate monitor
// objects; the Enactor or Scheduler perform the monitoring, with the
// outcall registered appropriately."
//
// This Monitor is an orb object that (a) installs guarded triggers on
// Hosts and registers itself for their outcalls, and (b) fans incoming
// events out to registered handlers — typically a Scheduler's reschedule
// routine or the rebalance subsystem's migration planner. Synchronous
// handlers (OnEvent) run on the delivering goroutine — which is the
// Host's outcall goroutine, inside the Host's RPC timeout — so anything
// that migrates, negotiates, or otherwise blocks must subscribe through
// OnEventAsync, which decouples delivery behind a bounded queue.
package monitor

import (
	"context"
	"fmt"
	"sync"
	"time"

	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/telemetry"
)

// Handler receives trigger events delivered to the Monitor.
type Handler func(ev proto.NotifyArgs)

// DefaultQueueDepth bounds an async subscription's event queue when the
// subscriber passes no explicit depth.
const DefaultQueueDepth = 256

// asyncSub is one OnEventAsync subscription: a bounded queue drained by
// a dedicated goroutine, so slow handlers shed events instead of
// stalling the Host outcall that delivered them.
type asyncSub struct {
	ch   chan proto.NotifyArgs
	done chan struct{}
}

// Monitor receives Host trigger outcalls and dispatches them to handlers.
// Safe for concurrent use.
type Monitor struct {
	*orb.ServiceObject
	rt *orb.Runtime

	mu       sync.Mutex
	handlers []Handler
	asyncs   []*asyncSub
	events   []proto.NotifyArgs
	maxKeep  int

	queueDepth *telemetry.Gauge
	delivered  *telemetry.Counter
	dropped    *telemetry.Counter
}

// New creates a Monitor, registers its notify method and itself with rt.
func New(rt *orb.Runtime) *Monitor {
	reg := rt.Metrics()
	m := &Monitor{
		ServiceObject: orb.NewServiceObject(rt.Mint("Monitor")),
		rt:            rt,
		maxKeep:       1024,
		queueDepth:    reg.Gauge("legion_monitor_queue_depth"),
		delivered:     reg.Counter("legion_monitor_events_delivered_total"),
		dropped:       reg.Counter("legion_monitor_events_dropped_total"),
	}
	m.Handle(proto.MethodNotify, func(_ context.Context, arg any) (any, error) {
		a, ok := arg.(proto.NotifyArgs)
		if !ok {
			return nil, fmt.Errorf("monitor: want NotifyArgs, got %T", arg)
		}
		m.deliver(a)
		return proto.Ack{}, nil
	})
	rt.Register(m)
	return m
}

// OnEvent registers a handler for every future event. Handlers run
// synchronously on the delivering goroutine — inside the Host's outcall
// RPC timeout — and must not block; blocking work belongs behind
// OnEventAsync.
func (m *Monitor) OnEvent(h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers = append(m.handlers, h)
}

// OnEventAsync registers a handler behind a bounded dispatch queue of
// the given depth (<= 0 uses DefaultQueueDepth). Delivery never blocks:
// when the subscriber falls behind and its queue fills, the newest event
// is dropped and counted in legion_monitor_events_dropped_total — for
// load triggers this is safe, the next reassessment re-fires. The
// returned stop function drains nothing: it detaches the subscription
// and terminates its dispatch goroutine after the in-flight handler
// call, then returns.
func (m *Monitor) OnEventAsync(depth int, h Handler) (stop func()) {
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	sub := &asyncSub{
		ch:   make(chan proto.NotifyArgs, depth),
		done: make(chan struct{}),
	}
	m.mu.Lock()
	m.asyncs = append(m.asyncs, sub)
	m.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case ev := <-sub.ch:
				m.queueDepth.Add(-1)
				m.delivered.Inc()
				h(ev)
			case <-sub.done:
				return
			}
		}
	}()

	var once sync.Once
	return func() {
		once.Do(func() {
			m.mu.Lock()
			for i, s := range m.asyncs {
				if s == sub {
					m.asyncs = append(m.asyncs[:i], m.asyncs[i+1:]...)
					break
				}
			}
			m.mu.Unlock()
			close(sub.done)
			<-finished
			// Account for events still queued at detach.
			for {
				select {
				case <-sub.ch:
					m.queueDepth.Add(-1)
					m.dropped.Inc()
				default:
					return
				}
			}
		})
	}
}

// QueueDepth returns the number of events currently queued across all
// async subscriptions (the live value of legion_monitor_queue_depth).
func (m *Monitor) QueueDepth() int {
	return int(m.queueDepth.Value())
}

// DroppedEvents returns how many events overflowed async queues.
func (m *Monitor) DroppedEvents() int64 { return m.dropped.Value() }

func (m *Monitor) deliver(ev proto.NotifyArgs) {
	m.mu.Lock()
	m.events = append(m.events, ev)
	if len(m.events) > m.maxKeep {
		m.events = append([]proto.NotifyArgs(nil), m.events[len(m.events)-m.maxKeep:]...)
	}
	hs := append([]Handler(nil), m.handlers...)
	subs := append([]*asyncSub(nil), m.asyncs...)
	m.mu.Unlock()
	for _, sub := range subs {
		select {
		case sub.ch <- ev:
			m.queueDepth.Add(1)
		default:
			m.dropped.Inc()
		}
	}
	for _, h := range hs {
		h(ev)
	}
}

// Events returns a copy of the retained event history (newest last).
func (m *Monitor) Events() []proto.NotifyArgs {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]proto.NotifyArgs(nil), m.events...)
}

// EventCount returns how many events have been retained.
func (m *Monitor) EventCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// Watch installs a guarded trigger on a Host and registers this Monitor
// for its outcalls — the §3.5 registration sequence. The guard is a
// query-language expression over the Host's attributes, e.g.
// "$host_load > 0.8". Watch is idempotent: re-watching the same
// (host, trigger) replaces the previous registration (the Host dedupes
// outcalls per Monitor), so a reconnecting Monitor never causes one
// event to notify it twice. A caller deadline shorter than the default
// 30 s budget is honored as-is; only deadline-free contexts get the
// default applied.
func (m *Monitor) Watch(ctx context.Context, hostL loid.LOID, trigger, guard string) error {
	cctx := ctx
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		cctx, cancel = m.rt.Clock().WithTimeout(ctx, 30*time.Second)
		defer cancel()
	}
	// Loopback calls dispatch without consulting the context, so an
	// already-expired caller deadline is enforced here.
	if err := cctx.Err(); err != nil {
		return fmt.Errorf("monitor: watch %v: %w", hostL, err)
	}
	if _, err := m.rt.Call(cctx, hostL, proto.MethodDefineTrigger,
		proto.DefineTriggerArgs{Name: trigger, Guard: guard}); err != nil {
		return fmt.Errorf("monitor: define trigger on %v: %w", hostL, err)
	}
	if _, err := m.rt.Call(cctx, hostL, proto.MethodRegisterOutcall,
		proto.RegisterOutcallArgs{Trigger: trigger, Monitor: m.LOID()}); err != nil {
		return fmt.Errorf("monitor: register outcall on %v: %w", hostL, err)
	}
	return nil
}
