// Package monitor implements the execution Monitor of the Legion RMI
// (paper §3, steps 12-13, and §3.5).
//
// "After the objects are running, the execution Monitor may request a
// recomputation of the schedule, perhaps based on the progress of the
// computation and the load on the hosts in the system." Mechanically
// (§3.5): "the Monitor can register an outcall with the Host Objects;
// this outcall will be performed when a trigger's guard evaluates to
// true. ... In our actual implementation, we have no separate monitor
// objects; the Enactor or Scheduler perform the monitoring, with the
// outcall registered appropriately."
//
// This Monitor is an orb object that (a) installs guarded triggers on
// Hosts and registers itself for their outcalls, and (b) fans incoming
// events out to registered handlers — typically a Scheduler's reschedule
// routine or the Metasystem's migration logic (package core). It can be
// embedded behind an Enactor or Scheduler, preserving the paper's
// "no separate monitor objects" option.
package monitor

import (
	"context"
	"fmt"
	"sync"
	"time"

	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
)

// Handler receives trigger events delivered to the Monitor.
type Handler func(ev proto.NotifyArgs)

// Monitor receives Host trigger outcalls and dispatches them to handlers.
// Safe for concurrent use.
type Monitor struct {
	*orb.ServiceObject
	rt *orb.Runtime

	mu       sync.Mutex
	handlers []Handler
	events   []proto.NotifyArgs
	maxKeep  int
}

// New creates a Monitor, registers its notify method and itself with rt.
func New(rt *orb.Runtime) *Monitor {
	m := &Monitor{
		ServiceObject: orb.NewServiceObject(rt.Mint("Monitor")),
		rt:            rt,
		maxKeep:       1024,
	}
	m.Handle(proto.MethodNotify, func(_ context.Context, arg any) (any, error) {
		a, ok := arg.(proto.NotifyArgs)
		if !ok {
			return nil, fmt.Errorf("monitor: want NotifyArgs, got %T", arg)
		}
		m.deliver(a)
		return proto.Ack{}, nil
	})
	rt.Register(m)
	return m
}

// OnEvent registers a handler for every future event. Handlers run
// synchronously on the delivering goroutine and must not block.
func (m *Monitor) OnEvent(h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers = append(m.handlers, h)
}

func (m *Monitor) deliver(ev proto.NotifyArgs) {
	m.mu.Lock()
	m.events = append(m.events, ev)
	if len(m.events) > m.maxKeep {
		m.events = append([]proto.NotifyArgs(nil), m.events[len(m.events)-m.maxKeep:]...)
	}
	hs := append([]Handler(nil), m.handlers...)
	m.mu.Unlock()
	for _, h := range hs {
		h(ev)
	}
}

// Events returns a copy of the retained event history (newest last).
func (m *Monitor) Events() []proto.NotifyArgs {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]proto.NotifyArgs(nil), m.events...)
}

// EventCount returns how many events have been retained.
func (m *Monitor) EventCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.events)
}

// Watch installs a guarded trigger on a Host and registers this Monitor
// for its outcalls — the §3.5 registration sequence. The guard is a
// query-language expression over the Host's attributes, e.g.
// "$host_load > 0.8".
func (m *Monitor) Watch(ctx context.Context, hostL loid.LOID, trigger, guard string) error {
	cctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if _, err := m.rt.Call(cctx, hostL, proto.MethodDefineTrigger,
		proto.DefineTriggerArgs{Name: trigger, Guard: guard}); err != nil {
		return fmt.Errorf("monitor: define trigger on %v: %w", hostL, err)
	}
	if _, err := m.rt.Call(cctx, hostL, proto.MethodRegisterOutcall,
		proto.RegisterOutcallArgs{Trigger: trigger, Monitor: m.LOID()}); err != nil {
		return fmt.Errorf("monitor: register outcall on %v: %w", hostL, err)
	}
	return nil
}
