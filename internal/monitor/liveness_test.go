package monitor

import (
	"sync"
	"testing"
	"time"

	"legion/internal/loid"
)

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestLivenessStates(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := NewLiveness(10*time.Second, 3)
	l.SetClock(clk.Now)
	h := loid.LOID{Domain: "d", Class: "Host", Instance: 1}

	if got := l.State(h); got != LivenessUnknown {
		t.Fatalf("untracked state = %v, want unknown", got)
	}

	l.Beat(h)
	if got := l.State(h); got != LivenessUp {
		t.Fatalf("after beat = %v, want up", got)
	}

	// Heartbeat ages past the staleness window.
	clk.Advance(11 * time.Second)
	if got := l.State(h); got != LivenessStale {
		t.Fatalf("aged state = %v, want stale", got)
	}

	// A fresh beat recovers.
	l.Beat(h)
	if got := l.State(h); got != LivenessUp {
		t.Fatalf("after recovery beat = %v, want up", got)
	}

	// Failures below the threshold do not flip a recently-beaten host.
	l.Fail(h)
	l.Fail(h)
	if got := l.State(h); got != LivenessUp {
		t.Fatalf("after 2 failures = %v, want up", got)
	}
	if n := l.Fail(h); n != 3 {
		t.Fatalf("failure streak = %d, want 3", n)
	}
	if got := l.State(h); got != LivenessDown {
		t.Fatalf("after 3 failures = %v, want down", got)
	}

	// A success resets the streak entirely.
	l.Beat(h)
	if got := l.State(h); got != LivenessUp {
		t.Fatalf("after down-recovery = %v, want up", got)
	}

	// Never-beaten host with some failures is stale, not unknown.
	h2 := loid.LOID{Domain: "d", Class: "Host", Instance: 2}
	l.Fail(h2)
	if got := l.State(h2); got != LivenessStale {
		t.Fatalf("failed-before-first-beat = %v, want stale", got)
	}

	snap := l.Snapshot()
	if len(snap) != 2 || snap[h] != LivenessUp || snap[h2] != LivenessStale {
		t.Fatalf("snapshot = %v", snap)
	}
	if _, ok := l.LastBeat(h2); ok {
		t.Fatal("LastBeat for never-beaten host reported ok")
	}
	if at, ok := l.LastBeat(h); !ok || !at.Equal(clk.Now()) {
		t.Fatalf("LastBeat = %v %v", at, ok)
	}
}

func TestLivenessStateStrings(t *testing.T) {
	want := map[LivenessState]string{
		LivenessUnknown: "unknown",
		LivenessUp:      "up",
		LivenessStale:   "stale",
		LivenessDown:    "down",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
}
