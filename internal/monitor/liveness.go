package monitor

import (
	"sync"
	"time"

	"legion/internal/loid"
)

// LivenessState classifies a tracked resource's reachability.
type LivenessState int

const (
	// LivenessUnknown means the resource has never been heard from.
	LivenessUnknown LivenessState = iota
	// LivenessUp means a heartbeat arrived within the staleness window.
	LivenessUp
	// LivenessStale means the last heartbeat is older than the window but
	// the resource has not accumulated enough failures to be declared
	// down — its Collection record may be served stale-but-flagged.
	LivenessStale
	// LivenessDown means consecutive probe failures crossed the down
	// threshold: the resource should not be offered to schedulers.
	LivenessDown
)

// String renders the state for attributes and logs.
func (s LivenessState) String() string {
	switch s {
	case LivenessUp:
		return "up"
	case LivenessStale:
		return "stale"
	case LivenessDown:
		return "down"
	default:
		return "unknown"
	}
}

// Liveness tracks per-resource heartbeat recency and probe-failure
// streaks — the paper's Host state information made explicit for failure
// handling. Successful pulls (or pushes received) call Beat; failed
// probes call Fail; consumers ask State. Safe for concurrent use.
//
// Liveness is deliberately transport-agnostic: the Collection daemon
// feeds it from its pull loop, and tests feed it directly.
type Liveness struct {
	mu sync.Mutex
	// staleAfter is how long after the last Beat a resource is Stale.
	staleAfter time.Duration
	// downAfter is the consecutive-failure count that declares Down.
	downAfter int
	clock     func() time.Time
	entries   map[loid.LOID]*livenessEntry
	// onChange observes state transitions seen at Beat/Fail events
	// (passive staleness is not reported — nothing observes it happen).
	onChange func(r loid.LOID, from, to LivenessState)
}

type livenessEntry struct {
	lastBeat time.Time
	beaten   bool
	failures int
}

// NewLiveness creates a tracker. staleAfter <= 0 defaults to 10 seconds;
// downAfter <= 0 defaults to 3 consecutive failures.
func NewLiveness(staleAfter time.Duration, downAfter int) *Liveness {
	if staleAfter <= 0 {
		staleAfter = 10 * time.Second
	}
	if downAfter <= 0 {
		downAfter = 3
	}
	return &Liveness{
		staleAfter: staleAfter,
		downAfter:  downAfter,
		clock:      time.Now,
		entries:    make(map[loid.LOID]*livenessEntry),
	}
}

// SetClock substitutes the time source (tests).
func (l *Liveness) SetClock(fn func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.clock = fn
}

// OnTransition installs an observer invoked (outside the tracker's
// lock) whenever a Beat or Fail changes a resource's classification —
// the telemetry layer counts up/down flaps with this. At most one
// observer; nil clears it.
func (l *Liveness) OnTransition(fn func(r loid.LOID, from, to LivenessState)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onChange = fn
}

func (l *Liveness) entry(r loid.LOID) *livenessEntry {
	e, ok := l.entries[r]
	if !ok {
		e = &livenessEntry{}
		l.entries[r] = e
	}
	return e
}

// Beat records a successful contact with r, resetting its failure streak.
func (l *Liveness) Beat(r loid.LOID) {
	l.mu.Lock()
	before := l.stateLocked(r)
	e := l.entry(r)
	e.lastBeat = l.clock()
	e.beaten = true
	e.failures = 0
	after := l.stateLocked(r)
	fn := l.onChange
	l.mu.Unlock()
	if fn != nil && before != after {
		fn(r, before, after)
	}
}

// Fail records a failed probe of r and returns the consecutive-failure
// count.
func (l *Liveness) Fail(r loid.LOID) int {
	l.mu.Lock()
	before := l.stateLocked(r)
	e := l.entry(r)
	e.failures++
	n := e.failures
	after := l.stateLocked(r)
	fn := l.onChange
	l.mu.Unlock()
	if fn != nil && before != after {
		fn(r, before, after)
	}
	return n
}

// State classifies r now.
func (l *Liveness) State(r loid.LOID) LivenessState {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stateLocked(r)
}

func (l *Liveness) stateLocked(r loid.LOID) LivenessState {
	e, ok := l.entries[r]
	if !ok {
		return LivenessUnknown
	}
	if e.failures >= l.downAfter {
		return LivenessDown
	}
	if !e.beaten {
		if e.failures > 0 {
			return LivenessStale
		}
		return LivenessUnknown
	}
	if l.clock().Sub(e.lastBeat) > l.staleAfter {
		return LivenessStale
	}
	return LivenessUp
}

// LastBeat returns when r last heartbeat, and false if it never has.
func (l *Liveness) LastBeat(r loid.LOID) (time.Time, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[r]
	if !ok || !e.beaten {
		return time.Time{}, false
	}
	return e.lastBeat, true
}

// Snapshot returns the current state of every tracked resource.
func (l *Liveness) Snapshot() map[loid.LOID]LivenessState {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[loid.LOID]LivenessState, len(l.entries))
	for r := range l.entries {
		out[r] = l.stateLocked(r)
	}
	return out
}
