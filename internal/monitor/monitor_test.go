package monitor

import (
	"context"
	"sync"
	"testing"
	"time"

	"legion/internal/attr"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/vault"
)

func newHostEnv(t *testing.T) (*orb.Runtime, *host.Host) {
	t.Helper()
	rt := orb.NewRuntime("uva")
	v := vault.New(rt, vault.Config{Zone: "z1"})
	h := host.New(rt, host.Config{
		Arch: "x86", OS: "Linux", CPUs: 2, MemoryMB: 256, Zone: "z1",
		Vaults: []loid.LOID{v.LOID()},
	})
	return rt, h
}

func TestWatchAndDeliver(t *testing.T) {
	rt, h := newHostEnv(t)
	m := New(rt)
	ctx := context.Background()

	var mu sync.Mutex
	var got []proto.NotifyArgs
	m.OnEvent(func(ev proto.NotifyArgs) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})

	if err := m.Watch(ctx, h.LOID(), "overload", "$host_load > 0.8"); err != nil {
		t.Fatal(err)
	}
	h.SetExternalLoad(0.3)
	h.Reassess(ctx)
	mu.Lock()
	if len(got) != 0 {
		t.Fatalf("fired below threshold: %v", got)
	}
	mu.Unlock()

	h.SetExternalLoad(0.95)
	h.Reassess(ctx)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("events: %d", len(got))
	}
	ev := got[0]
	if ev.Source != h.LOID() || ev.Trigger != "overload" {
		t.Errorf("event: %+v", ev)
	}
	am := attr.FromPairs(ev.Attrs)
	if am["host_load"].FloatVal() <= 0.8 {
		t.Errorf("event snapshot load: %v", am["host_load"])
	}
	if m.EventCount() != 1 || len(m.Events()) != 1 {
		t.Errorf("history: %d", m.EventCount())
	}
}

func TestWatchBadGuard(t *testing.T) {
	rt, h := newHostEnv(t)
	m := New(rt)
	if err := m.Watch(context.Background(), h.LOID(), "bad", "((("); err == nil {
		t.Error("bad guard accepted")
	}
}

func TestWatchDeadHost(t *testing.T) {
	rt, _ := newHostEnv(t)
	m := New(rt)
	ghost := loid.LOID{Domain: "uva", Class: "Host", Instance: 99}
	if err := m.Watch(context.Background(), ghost, "t", "true"); err == nil {
		t.Error("watch on dead host succeeded")
	}
}

func TestMultipleHandlersAndHistoryBound(t *testing.T) {
	rt, _ := newHostEnv(t)
	m := New(rt)
	m.maxKeep = 8
	n1, n2 := 0, 0
	m.OnEvent(func(proto.NotifyArgs) { n1++ })
	m.OnEvent(func(proto.NotifyArgs) { n2++ })
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := rt.Call(ctx, m.LOID(), proto.MethodNotify, proto.NotifyArgs{
			Source: loid.LOID{Domain: "uva", Class: "Host", Instance: uint64(i + 1)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if n1 != 20 || n2 != 20 {
		t.Errorf("handlers ran %d/%d times", n1, n2)
	}
	if m.EventCount() != 8 {
		t.Errorf("history = %d, want bounded at 8", m.EventCount())
	}
	// Newest retained.
	evs := m.Events()
	if evs[len(evs)-1].Source.Instance != 20 {
		t.Errorf("last event: %+v", evs[len(evs)-1])
	}
}

func TestNotifyBadArg(t *testing.T) {
	rt, _ := newHostEnv(t)
	m := New(rt)
	if _, err := rt.Call(context.Background(), m.LOID(), proto.MethodNotify, 42); err == nil {
		t.Error("bad arg accepted")
	}
}

// TestWatchIdempotent is the ISSUE 5 regression: every repeated Watch on
// the same (host, trigger) used to append another outcall, so one
// trigger firing notified the Monitor N times — and N grew every time a
// reconnecting Monitor re-registered. The Host now dedupes outcalls per
// Monitor, making Watch idempotent.
func TestWatchIdempotent(t *testing.T) {
	rt, h := newHostEnv(t)
	m := New(rt)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if err := m.Watch(ctx, h.LOID(), "overload", "$host_load > 0.8"); err != nil {
			t.Fatal(err)
		}
	}
	if n := h.Triggers().OutcallCount("overload"); n != 1 {
		t.Fatalf("outcalls after 3 Watches: %d, want 1", n)
	}

	var mu sync.Mutex
	events := 0
	m.OnEvent(func(proto.NotifyArgs) {
		mu.Lock()
		events++
		mu.Unlock()
	})
	h.SetExternalLoad(0.95)
	h.Reassess(ctx)
	mu.Lock()
	defer mu.Unlock()
	if events != 1 {
		t.Fatalf("one firing delivered %d events, want 1", events)
	}

	// A second Monitor is a distinct subscriber, not a duplicate.
	m2 := New(rt)
	if err := m2.Watch(ctx, h.LOID(), "overload", "$host_load > 0.8"); err != nil {
		t.Fatal(err)
	}
	if n := h.Triggers().OutcallCount("overload"); n != 2 {
		t.Fatalf("outcalls with two Monitors: %d, want 2", n)
	}
}

// TestWatchHonorsCallerDeadline: a caller deadline shorter than the
// default 30s budget must be respected rather than replaced.
func TestWatchHonorsCallerDeadline(t *testing.T) {
	rt, h := newHostEnv(t)
	m := New(rt)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // deadline definitely past
	if err := m.Watch(ctx, h.LOID(), "overload", "$host_load > 0.8"); err == nil {
		t.Fatal("Watch with expired caller deadline should fail")
	}
}

// TestOnEventAsyncDecouplesDelivery: events queue behind the bounded
// channel and the handler runs off the delivering goroutine; overflow is
// dropped and counted, never blocking delivery.
func TestOnEventAsyncDecouplesDelivery(t *testing.T) {
	rt, _ := newHostEnv(t)
	m := New(rt)

	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	var mu sync.Mutex
	handled := 0
	stop := m.OnEventAsync(2, func(proto.NotifyArgs) {
		entered <- struct{}{}
		<-release // simulate a slow migration episode
		mu.Lock()
		handled++
		mu.Unlock()
	})
	defer stop()

	// First event parks the dispatcher inside the handler...
	m.deliver(proto.NotifyArgs{Trigger: "overload"})
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("handler never entered")
	}
	// ...then a burst of 4 against the busy subscription: 2 queue
	// (depth 2), 2 drop.
	for i := 0; i < 4; i++ {
		m.deliver(proto.NotifyArgs{Trigger: "overload"})
	}
	// Delivery returned immediately for all five (we are here), with the
	// overflow counted as dropped.
	deadline := time.After(2 * time.Second)
	for m.DroppedEvents() < 2 {
		select {
		case <-deadline:
			t.Fatalf("dropped = %d, want >= 2", m.DroppedEvents())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	for {
		mu.Lock()
		n := handled
		mu.Unlock()
		if n >= 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("handled = %d, want 3", n)
		case <-time.After(time.Millisecond):
		}
	}
	if d := m.QueueDepth(); d != 0 {
		t.Errorf("queue depth after drain: %d", d)
	}
}

// TestOnEventAsyncStopDetaches: after stop, further events bypass the
// subscription entirely.
func TestOnEventAsyncStopDetaches(t *testing.T) {
	rt, _ := newHostEnv(t)
	m := New(rt)
	var mu sync.Mutex
	n := 0
	stop := m.OnEventAsync(4, func(proto.NotifyArgs) {
		mu.Lock()
		n++
		mu.Unlock()
	})
	m.deliver(proto.NotifyArgs{Trigger: "t"})
	stop()
	before := func() int { mu.Lock(); defer mu.Unlock(); return n }()
	m.deliver(proto.NotifyArgs{Trigger: "t"})
	time.Sleep(10 * time.Millisecond)
	if after := func() int { mu.Lock(); defer mu.Unlock(); return n }(); after != before {
		t.Errorf("handler ran after stop: %d -> %d", before, after)
	}
	stop() // idempotent
}
