package monitor

import (
	"context"
	"sync"
	"testing"

	"legion/internal/attr"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/vault"
)

func newHostEnv(t *testing.T) (*orb.Runtime, *host.Host) {
	t.Helper()
	rt := orb.NewRuntime("uva")
	v := vault.New(rt, vault.Config{Zone: "z1"})
	h := host.New(rt, host.Config{
		Arch: "x86", OS: "Linux", CPUs: 2, MemoryMB: 256, Zone: "z1",
		Vaults: []loid.LOID{v.LOID()},
	})
	return rt, h
}

func TestWatchAndDeliver(t *testing.T) {
	rt, h := newHostEnv(t)
	m := New(rt)
	ctx := context.Background()

	var mu sync.Mutex
	var got []proto.NotifyArgs
	m.OnEvent(func(ev proto.NotifyArgs) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})

	if err := m.Watch(ctx, h.LOID(), "overload", "$host_load > 0.8"); err != nil {
		t.Fatal(err)
	}
	h.SetExternalLoad(0.3)
	h.Reassess(ctx)
	mu.Lock()
	if len(got) != 0 {
		t.Fatalf("fired below threshold: %v", got)
	}
	mu.Unlock()

	h.SetExternalLoad(0.95)
	h.Reassess(ctx)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("events: %d", len(got))
	}
	ev := got[0]
	if ev.Source != h.LOID() || ev.Trigger != "overload" {
		t.Errorf("event: %+v", ev)
	}
	am := attr.FromPairs(ev.Attrs)
	if am["host_load"].FloatVal() <= 0.8 {
		t.Errorf("event snapshot load: %v", am["host_load"])
	}
	if m.EventCount() != 1 || len(m.Events()) != 1 {
		t.Errorf("history: %d", m.EventCount())
	}
}

func TestWatchBadGuard(t *testing.T) {
	rt, h := newHostEnv(t)
	m := New(rt)
	if err := m.Watch(context.Background(), h.LOID(), "bad", "((("); err == nil {
		t.Error("bad guard accepted")
	}
}

func TestWatchDeadHost(t *testing.T) {
	rt, _ := newHostEnv(t)
	m := New(rt)
	ghost := loid.LOID{Domain: "uva", Class: "Host", Instance: 99}
	if err := m.Watch(context.Background(), ghost, "t", "true"); err == nil {
		t.Error("watch on dead host succeeded")
	}
}

func TestMultipleHandlersAndHistoryBound(t *testing.T) {
	rt, _ := newHostEnv(t)
	m := New(rt)
	m.maxKeep = 8
	n1, n2 := 0, 0
	m.OnEvent(func(proto.NotifyArgs) { n1++ })
	m.OnEvent(func(proto.NotifyArgs) { n2++ })
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := rt.Call(ctx, m.LOID(), proto.MethodNotify, proto.NotifyArgs{
			Source: loid.LOID{Domain: "uva", Class: "Host", Instance: uint64(i + 1)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if n1 != 20 || n2 != 20 {
		t.Errorf("handlers ran %d/%d times", n1, n2)
	}
	if m.EventCount() != 8 {
		t.Errorf("history = %d, want bounded at 8", m.EventCount())
	}
	// Newest retained.
	evs := m.Events()
	if evs[len(evs)-1].Source.Instance != 20 {
		t.Errorf("last event: %+v", evs[len(evs)-1])
	}
}

func TestNotifyBadArg(t *testing.T) {
	rt, _ := newHostEnv(t)
	m := New(rt)
	if _, err := rt.Call(context.Background(), m.LOID(), proto.MethodNotify, 42); err == nil {
		t.Error("bad arg accepted")
	}
}
