package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/proto"
	"legion/internal/vault"
)

// buildMetaMultiVault assembles a metasystem with nHosts hosts, each
// able to reach all nVaults vaults — the cross-vault migration fixture.
func buildMetaMultiVault(t *testing.T, nHosts, nVaults int) *Metasystem {
	t.Helper()
	ms := New("uva", Options{Seed: 7})
	vaults := make([]loid.LOID, 0, nVaults)
	for i := 0; i < nVaults; i++ {
		v := ms.AddVault(vault.Config{Zone: "z1"})
		vaults = append(vaults, v.LOID())
	}
	for i := 0; i < nHosts; i++ {
		ms.AddHost(host.Config{
			Arch: "x86", OS: "Linux", CPUs: 8, MemoryMB: 1024, Zone: "z1",
			Vaults: append([]loid.LOID(nil), vaults...),
		})
	}
	return ms
}

// TestMigrateStartObjectFailureLeaksNothing is the ISSUE 5 regression:
// when the destination's StartObject fails after the OPR was copied to
// the destination vault, the old code left the destination reservation
// token live and the copied OPR orphaned in toVault. Both must now be
// cleaned up, and the conservation audit must come back clean.
func TestMigrateStartObjectFailureLeaksNothing(t *testing.T) {
	ms := buildMetaMultiVault(t, 2, 2)
	c := ms.DefineClass("Worker", nil)
	ctx := context.Background()
	insts, p, err := c.CreateInstance(ctx, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst := insts[0]
	if _, err := ms.Runtime().Call(ctx, inst, "set", []string{"k", "v"}); err != nil {
		t.Fatal(err)
	}

	var dest *host.Host
	for _, h := range ms.Hosts() {
		if h.LOID() != p.Host {
			dest = h
		}
	}
	var toVault loid.LOID
	for _, v := range ms.Vaults() {
		if v.LOID() != p.Vault {
			toVault = v.LOID()
		}
	}

	ms.Runtime().SetFaultInjector(func(target loid.LOID, method string) error {
		if target == dest.LOID() && method == proto.MethodStartObject {
			return errors.New("injected: destination start fails")
		}
		return nil
	})
	defer ms.Runtime().SetFaultInjector(nil)

	if err := ms.Migrate(ctx, c, inst, dest.LOID(), toVault); err == nil {
		t.Fatal("migration should fail")
	}

	// Object recovered in place with state intact.
	if got, err := ms.Runtime().Call(ctx, inst, "get", "k"); err != nil || got != "v" {
		t.Fatalf("object after failed migration: %v %v", got, err)
	}
	// The destination vault must not keep the copied OPR (orphan).
	for _, o := range ms.VaultByLOID(toVault).Objects() {
		if o == inst {
			t.Error("orphan OPR left in destination vault")
		}
	}
	// The destination reservation token must be cancelled (leak).
	if n := dest.ReservationLeaks(); n != 0 {
		t.Errorf("destination leaks %d reservation tokens", n)
	}
	if a := ms.AuditMigrations(c); !a.Clean() {
		t.Errorf("audit after failed migration: %v", a)
	}
}

// TestMigrateStoreOPRFailureLeaksNothing covers the second leaky branch:
// the destination vault refuses the OPR copy. The old code reactivated
// in place but never cancelled the destination host's reservation.
func TestMigrateStoreOPRFailureLeaksNothing(t *testing.T) {
	ms := buildMetaMultiVault(t, 2, 2)
	c := ms.DefineClass("Worker", nil)
	ctx := context.Background()
	insts, p, err := c.CreateInstance(ctx, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst := insts[0]
	if _, err := ms.Runtime().Call(ctx, inst, "set", []string{"k", "v"}); err != nil {
		t.Fatal(err)
	}

	var dest *host.Host
	for _, h := range ms.Hosts() {
		if h.LOID() != p.Host {
			dest = h
		}
	}
	var toVault loid.LOID
	for _, v := range ms.Vaults() {
		if v.LOID() != p.Vault {
			toVault = v.LOID()
		}
	}

	ms.Runtime().SetFaultInjector(func(target loid.LOID, method string) error {
		if target == toVault && method == proto.MethodStoreOPR {
			return errors.New("injected: destination vault store fails")
		}
		return nil
	})
	defer ms.Runtime().SetFaultInjector(nil)

	if err := ms.Migrate(ctx, c, inst, dest.LOID(), toVault); err == nil {
		t.Fatal("migration should fail")
	}
	if got, err := ms.Runtime().Call(ctx, inst, "get", "k"); err != nil || got != "v" {
		t.Fatalf("object after failed migration: %v %v", got, err)
	}
	if n := dest.ReservationLeaks(); n != 0 {
		t.Errorf("destination leaks %d reservation tokens", n)
	}
	if a := ms.AuditMigrations(c); !a.Clean() {
		t.Errorf("audit after failed migration: %v", a)
	}
}

// TestReactivateInPlaceFailureLeaksNoToken: even when the recovery
// reactivation itself fails (fromHost's StartObject refuses after the
// first failure), the recovery reservation must be cancelled.
func TestReactivateInPlaceFailureLeaksNoToken(t *testing.T) {
	ms := buildMetaMultiVault(t, 2, 1)
	c := ms.DefineClass("Worker", nil)
	ctx := context.Background()
	insts, p, err := c.CreateInstance(ctx, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst := insts[0]

	var dest *host.Host
	for _, h := range ms.Hosts() {
		if h.LOID() != p.Host {
			dest = h
		}
	}
	// Every StartObject anywhere fails: the migration's redeem on the
	// destination and the recovery's redeem on the source.
	ms.Runtime().SetFaultInjector(func(target loid.LOID, method string) error {
		if method == proto.MethodStartObject {
			return errors.New("injected: all starts fail")
		}
		return nil
	})

	if err := ms.Migrate(ctx, c, inst, dest.LOID(), p.Vault); err == nil {
		t.Fatal("migration should fail")
	}
	ms.Runtime().SetFaultInjector(nil)

	for _, h := range ms.Hosts() {
		if n := h.ReservationLeaks(); n != 0 {
			t.Errorf("host %v leaks %d reservation tokens", h.LOID(), n)
		}
	}
	// The object is down (recovery failed too) but its OPR survived in
	// the source vault; EnsureRunning brings it back.
	if err := ms.EnsureRunning(ctx, c, inst); err != nil {
		t.Fatalf("EnsureRunning: %v", err)
	}
	if a := ms.AuditMigrations(c); !a.Clean() {
		t.Errorf("audit after recovery: %v", a)
	}
}

// TestConcurrentMigrateSameInstance races two goroutines migrating the
// same instance to different destinations. The per-instance migration
// lock must serialize them: no double deactivation, and afterwards the
// instance runs exactly once with state intact. Run with -race.
func TestConcurrentMigrateSameInstance(t *testing.T) {
	ms := buildMetaMultiVault(t, 3, 2)
	c := ms.DefineClass("Worker", nil)
	ctx := context.Background()
	insts, _, err := c.CreateInstance(ctx, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst := insts[0]
	if _, err := ms.Runtime().Call(ctx, inst, "set", []string{"k", "v"}); err != nil {
		t.Fatal(err)
	}

	hosts := ms.Hosts()
	vaults := ms.Vaults()
	const rounds = 25
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			for i := 0; i < rounds; i++ {
				h := hosts[rng.Intn(len(hosts))]
				v := vaults[rng.Intn(len(vaults))]
				// Errors are acceptable (e.g. "already there"); leaks and
				// duplicates are not — the audit below decides.
				_ = ms.Migrate(ctx, c, inst, h.LOID(), v.LOID())
			}
		}(g)
	}
	wg.Wait()

	running := 0
	for _, h := range hosts {
		if h.IsRunning(inst) {
			running++
		}
	}
	if running != 1 {
		t.Fatalf("instance running on %d hosts, want 1", running)
	}
	if got, err := ms.Runtime().Call(ctx, inst, "get", "k"); err != nil || got != "v" {
		t.Fatalf("state after migration storm: %v %v", got, err)
	}
	if a := ms.AuditMigrations(c); !a.Clean() {
		t.Errorf("audit after migration storm: %v", a)
	}
}

// TestMigrationConservesInstanceAndOPR is the property test: across a
// randomized sequence of migrations — a seeded fraction failing at a
// random protocol step — the system conserves exactly one live instance
// and, after healing plus one EnsureRunning pass, exactly one newest
// OPR, with zero leaked tokens.
func TestMigrationConservesInstanceAndOPR(t *testing.T) {
	const (
		seed      = 1999
		steps     = 40
		faultRate = 0.3
	)
	ms := buildMetaMultiVault(t, 3, 3)
	c := ms.DefineClass("Worker", nil)
	ctx := context.Background()
	insts, _, err := c.CreateInstance(ctx, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst := insts[0]
	if _, err := ms.Runtime().Call(ctx, inst, "set", []string{"k", "v"}); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	faultable := []string{proto.MethodStartObject, proto.MethodStoreOPR, proto.MethodDeleteOPR, proto.MethodDeactivateObject}
	var faultMu sync.Mutex
	faultMethod := ""
	ms.Runtime().SetFaultInjector(func(target loid.LOID, method string) error {
		faultMu.Lock()
		defer faultMu.Unlock()
		if method == faultMethod {
			return fmt.Errorf("injected: %s fails", method)
		}
		return nil
	})

	hosts := ms.Hosts()
	vaults := ms.Vaults()
	for i := 0; i < steps; i++ {
		faultMu.Lock()
		if rng.Float64() < faultRate {
			faultMethod = faultable[rng.Intn(len(faultable))]
		} else {
			faultMethod = ""
		}
		faultMu.Unlock()
		h := hosts[rng.Intn(len(hosts))]
		v := vaults[rng.Intn(len(vaults))]
		_ = ms.Migrate(ctx, c, inst, h.LOID(), v.LOID())

		// Invariant that must hold even mid-storm: never more than one
		// live copy of the instance.
		running := 0
		for _, h := range hosts {
			if h.IsRunning(inst) {
				running++
			}
		}
		if running > 1 {
			t.Fatalf("step %d: instance running on %d hosts", i, running)
		}
	}

	// Heal and converge.
	faultMu.Lock()
	faultMethod = ""
	faultMu.Unlock()
	ms.Runtime().SetFaultInjector(nil)
	if err := ms.EnsureRunning(ctx, c, inst); err != nil {
		t.Fatalf("EnsureRunning after storm: %v", err)
	}
	if a := ms.AuditMigrations(c); !a.Clean() {
		t.Fatalf("audit after storm: %v", a)
	}
	if got, err := ms.Runtime().Call(ctx, inst, "get", "k"); err != nil || got != "v" {
		t.Fatalf("state after storm: %v %v", got, err)
	}
}
