package core

import (
	"context"
	"testing"
	"time"

	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/scheduler"
	"legion/internal/vault"
)

// buildShardedMeta is buildMeta with a federated directory.
func buildShardedMeta(t *testing.T, nHosts, nShards int) *Metasystem {
	t.Helper()
	ms := New("uva", Options{Seed: 42, CollectionShards: nShards})
	v := ms.AddVault(vault.Config{Zone: "z1"})
	for i := 0; i < nHosts; i++ {
		ms.AddHost(host.Config{
			Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 1024, Zone: "z1",
			Vaults: []loid.LOID{v.LOID()},
		})
	}
	return ms
}

// TestShardedMetasystemTransparent pins the tentpole's core wiring: with
// CollectionShards > 1, hosts spread over real shards, and the entire
// placement pipeline — scheduler query through the Router, Enactor
// negotiation, instance creation — works unchanged.
func TestShardedMetasystemTransparent(t *testing.T) {
	ms := buildShardedMeta(t, 8, 4)
	if ms.Collection != nil || ms.Router == nil || len(ms.Shards) != 4 {
		t.Fatalf("sharded layout: Collection=%v Router=%v shards=%d", ms.Collection, ms.Router, len(ms.Shards))
	}
	// Every host landed on exactly one shard; the hash route spread them.
	total, nonEmpty := 0, 0
	for _, s := range ms.Shards {
		total += s.Size()
		if s.Size() > 0 {
			nonEmpty++
		}
	}
	if total != 8 {
		t.Fatalf("records across shards = %d, want 8", total)
	}
	if nonEmpty < 2 {
		t.Fatalf("hash routing degenerated to %d shard(s)", nonEmpty)
	}

	ctx := context.Background()
	hosts, skipped, err := scheduler.QueryHostsPartial(ctx, ms.Env(), "defined($host_arch)")
	if err != nil || skipped != 0 || len(hosts) != 8 {
		t.Fatalf("federated query: %d hosts, %d skipped, %v", len(hosts), skipped, err)
	}

	class := ms.DefineClass("Worker", nil)
	out, err := ms.PlaceApplication(ctx, scheduler.IRS{NSched: 3}, workerReq(class.LOID(), 3))
	if err != nil || !out.Success {
		t.Fatalf("placement over sharded directory: %+v, %v", out, err)
	}

	// Host push updates route through the Router to the owning shard.
	h := ms.Hosts()[0]
	h.SetExternalLoad(0.9)
	h.Reassess(ctx)
	hosts, err = scheduler.QueryHosts(ctx, ms.Env(), "$host_load > 0.5")
	if err != nil || len(hosts) != 1 || hosts[0].LOID != h.LOID() {
		t.Fatalf("pushed update not visible through Router: %+v, %v", hosts, err)
	}
}

// TestShardedDaemonBatchedFlow runs the batched Data Collection Daemon
// against the Router: one coalesced batch call fans out per shard and
// every host's record stays fresh.
func TestShardedDaemonBatchedFlow(t *testing.T) {
	ms := buildShardedMeta(t, 6, 2)
	ms.opts.DaemonBatchInterval = time.Hour // flush via Stop
	d := ms.NewDaemon()
	ctx := context.Background()
	d.Sweep(ctx)
	d.Sweep(ctx)
	if calls := d.PushCalls(); calls != 0 {
		t.Fatalf("batched daemon made %d direct push calls before flush", calls)
	}
	d.Stop() // flush-on-shutdown delivers both sweeps' entries
	if calls := d.PushCalls(); calls == 0 || calls > 2 {
		// One batch call per shard with buffered entries (≤ 2 shards).
		t.Fatalf("flush used %d push calls, want 1..2", calls)
	}
	hosts, err := scheduler.QueryHosts(ctx, ms.Env(), "$host_alive == true")
	if err != nil || len(hosts) != 6 {
		t.Fatalf("after batched flush: %d alive hosts, %v", len(hosts), err)
	}
}
