package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"legion/internal/attr"
	"legion/internal/collection"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/sched"
	"legion/internal/scheduler"
	"legion/internal/vault"
)

// buildMeta assembles a metasystem with nHosts Linux/x86 hosts sharing
// one vault.
func buildMeta(t *testing.T, nHosts int) *Metasystem {
	t.Helper()
	ms := New("uva", Options{Seed: 42})
	v := ms.AddVault(vault.Config{Zone: "z1"})
	for i := 0; i < nHosts; i++ {
		ms.AddHost(host.Config{
			Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 1024, Zone: "z1",
			Vaults: []loid.LOID{v.LOID()},
		})
	}
	return ms
}

func workerReq(c loid.LOID, n int) scheduler.Request {
	return scheduler.Request{
		Classes: []scheduler.ClassRequest{{Class: c, Count: n}},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	}
}

// TestDomainWideBreakersShared pins the wiring the Metasystem promises:
// the Enactor and the Data Collection Daemon use the same per-endpoint
// breaker pool as the scheduler path, so a Host that fails in one layer
// fails fast in the others.
func TestDomainWideBreakersShared(t *testing.T) {
	ms := buildMeta(t, 1)
	if ms.Enactor.Breakers() != ms.Breakers() {
		t.Error("Enactor uses a private breaker set, not the domain-wide pool")
	}
	if d := ms.NewDaemon(); d.Breakers() != ms.Breakers() {
		t.Error("Daemon uses a private breaker set, not the domain-wide pool")
	}
	if ms.Env().Breakers != ms.Breakers() {
		t.Error("scheduler Env uses a private breaker set, not the domain-wide pool")
	}
}

func TestFigure1Hierarchy(t *testing.T) {
	ms := buildMeta(t, 2)
	// LegionClass is the root; HostClass and VaultClass are managed by it.
	if ms.HostClass.Meta() != ms.LegionClass.LOID() || ms.VaultClass.Meta() != ms.LegionClass.LOID() {
		t.Error("HostClass/VaultClass not managed by LegionClass")
	}
	// Host and Vault objects appear as instances of their guardian classes.
	if got := ms.HostClass.Instances(); len(got) != 2 {
		t.Errorf("HostClass instances: %v", got)
	}
	if got := ms.VaultClass.Instances(); len(got) != 1 {
		t.Errorf("VaultClass instances: %v", got)
	}
	// User classes hang off LegionClass too.
	c := ms.DefineClass("Worker", nil)
	if c.Meta() != ms.LegionClass.LOID() {
		t.Error("user class not managed by LegionClass")
	}
	if got, ok := ms.Class("Worker"); !ok || got != c {
		t.Error("Class lookup failed")
	}
}

func TestQuickPlacementViaCreateInstance(t *testing.T) {
	ms := buildMeta(t, 3)
	c := ms.DefineClass("Worker", nil)
	ctx := context.Background()
	// The undirected create_instance path: the class makes its own quick
	// placement (paper §2.1).
	res, err := ms.Runtime().Call(ctx, c.LOID(), proto.MethodCreateInstance,
		proto.CreateInstanceArgs{Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	reply := res.(proto.CreateInstanceReply)
	if len(reply.Instances) != 2 || reply.Host.IsNil() {
		t.Fatalf("reply: %+v", reply)
	}
	for _, inst := range reply.Instances {
		if r, err := ms.Runtime().Call(ctx, inst, "ping", nil); err != nil || r != "pong" {
			t.Errorf("instance %v: %v %v", inst, r, err)
		}
	}
}

func TestQuickPlacementSkipsRefusingHosts(t *testing.T) {
	ms := New("uva", Options{})
	v := ms.AddVault(vault.Config{Zone: "z1"})
	// First host (lowest LOID, first in Collection order) refuses all.
	ms.AddHost(host.Config{
		Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 512, Zone: "z1",
		Vaults: []loid.LOID{v.LOID()},
		Policy: func(proto.MakeReservationArgs) error {
			return fmt.Errorf("%w: full up", host.ErrPolicy)
		},
	})
	good := ms.AddHost(host.Config{
		Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 512, Zone: "z1",
		Vaults: []loid.LOID{v.LOID()},
	})
	c := ms.DefineClass("Worker", nil)
	insts, p, err := c.CreateInstance(context.Background(), 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Host != good.LOID() {
		t.Errorf("placed on %v, want the non-refusing host", p.Host)
	}
	_ = insts
}

func TestPlaceApplicationAcrossSchedulers(t *testing.T) {
	gens := []scheduler.Generator{
		scheduler.Random{},
		scheduler.IRS{NSched: 3},
		&scheduler.RoundRobin{},
		scheduler.LoadAware{},
	}
	for _, gen := range gens {
		t.Run(gen.Name(), func(t *testing.T) {
			ms := buildMeta(t, 3)
			c := ms.DefineClass("Worker", []proto.Implementation{{Arch: "x86", OS: "Linux"}})
			out, err := ms.PlaceApplication(context.Background(), gen, workerReq(c.LOID(), 6))
			if err != nil {
				t.Fatal(err)
			}
			if !out.Success || len(out.Instances) != 6 {
				t.Fatalf("outcome: %+v", out)
			}
			total := 0
			for _, h := range ms.Hosts() {
				total += h.RunningCount()
			}
			if total != 6 {
				t.Errorf("running objects: %d", total)
			}
			if len(c.Instances()) != 6 {
				t.Errorf("class instances: %d", len(c.Instances()))
			}
		})
	}
}

func TestMigratePreservesState(t *testing.T) {
	ms := New("uva", Options{Seed: 1})
	v1 := ms.AddVault(vault.Config{Zone: "z1"})
	v2 := ms.AddVault(vault.Config{Zone: "z1"})
	h1 := ms.AddHost(host.Config{Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 512, Zone: "z1",
		Vaults: []loid.LOID{v1.LOID(), v2.LOID()}})
	h2 := ms.AddHost(host.Config{Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 512, Zone: "z1",
		Vaults: []loid.LOID{v1.LOID(), v2.LOID()}})
	c := ms.DefineClass("Worker", nil)
	ctx := context.Background()

	// Start an instance on h1/v1 and give it distinctive state.
	insts, p, err := c.CreateInstance(ctx, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst := insts[0]
	if p.Host != h1.LOID() {
		t.Fatalf("expected first host, got %v", p.Host)
	}
	if _, err := ms.Runtime().Call(ctx, inst, "set", []string{"phase", "7"}); err != nil {
		t.Fatal(err)
	}

	// Migrate to h2 with a vault move to v2.
	if err := ms.Migrate(ctx, c, inst, h2.LOID(), v2.LOID()); err != nil {
		t.Fatal(err)
	}
	// The object answers at the same LOID with its state intact.
	got, err := ms.Runtime().Call(ctx, inst, "get", "phase")
	if err != nil || got != "7" {
		t.Fatalf("state after migration: %v %v", got, err)
	}
	if h1.RunningCount() != 0 || h2.RunningCount() != 1 {
		t.Errorf("running: h1=%d h2=%d", h1.RunningCount(), h2.RunningCount())
	}
	// Class records moved.
	hL, vL, err := c.WhereIs(inst)
	if err != nil || hL != h2.LOID() || vL != v2.LOID() {
		t.Errorf("WhereIs: %v %v %v", hL, vL, err)
	}
	// OPR moved out of the old vault.
	if _, err := v1.Retrieve(inst); !errors.Is(err, vault.ErrNotFound) {
		t.Errorf("old vault still holds OPR: %v", err)
	}
	// Migrating to the same place is a no-op.
	if err := ms.Migrate(ctx, c, inst, h2.LOID(), v2.LOID()); err != nil {
		t.Errorf("no-op migrate: %v", err)
	}
}

func TestMigrateRefusedDestinationLeavesObjectRunning(t *testing.T) {
	ms := New("uva", Options{})
	v := ms.AddVault(vault.Config{Zone: "z1"})
	ms.AddHost(host.Config{Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 512, Zone: "z1",
		Vaults: []loid.LOID{v.LOID()}})
	bad := ms.AddHost(host.Config{Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 512, Zone: "z1",
		Vaults: []loid.LOID{v.LOID()},
		Policy: func(proto.MakeReservationArgs) error {
			return fmt.Errorf("%w: never", host.ErrPolicy)
		}})
	c := ms.DefineClass("Worker", nil)
	ctx := context.Background()
	insts, _, err := c.CreateInstance(ctx, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ms.Migrate(ctx, c, insts[0], bad.LOID(), v.LOID()); err == nil {
		t.Fatal("migration to refusing host succeeded")
	}
	// Object still alive where it was.
	if r, err := ms.Runtime().Call(ctx, insts[0], "ping", nil); err != nil || r != "pong" {
		t.Errorf("object dead after failed migration: %v %v", r, err)
	}
}

func TestMigrateUnknownInstance(t *testing.T) {
	ms := buildMeta(t, 2)
	c := ms.DefineClass("Worker", nil)
	ghost := loid.LOID{Domain: "uva", Class: "Worker", Instance: 999}
	if err := ms.Migrate(context.Background(), c, ghost, ms.Hosts()[0].LOID(), ms.Vaults()[0].LOID()); err == nil {
		t.Error("migrating unknown instance succeeded")
	}
}

// TestOverloadTriggersMigration is the full §3.5 loop: a loaded host's
// trigger fires, the Monitor's handler reschedules the instance onto the
// least-loaded host.
func TestOverloadTriggersMigration(t *testing.T) {
	ms := buildMeta(t, 2)
	c := ms.DefineClass("Worker", nil)
	ctx := context.Background()
	h1, h2 := ms.Hosts()[0], ms.Hosts()[1]

	insts, p, err := c.CreateInstance(ctx, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst := insts[0]
	if p.Host != h1.LOID() {
		t.Fatalf("instance on %v", p.Host)
	}

	if err := ms.WatchLoad(ctx, 0.8); err != nil {
		t.Fatal(err)
	}
	migrated := make(chan error, 1)
	ms.Monitor.OnEvent(func(ev proto.NotifyArgs) {
		if ev.Trigger != "overload" || ev.Source != h1.LOID() {
			return
		}
		dest, dv, err := ms.LeastLoadedHost(ev.Source)
		if err != nil {
			migrated <- err
			return
		}
		migrated <- ms.Migrate(ctx, c, inst, dest.LOID(), dv)
	})

	// Drive h1 over the threshold and reassess (the periodic tick).
	h1.SetExternalLoad(0.95)
	ms.ReassessAll(ctx)

	select {
	case err := <-migrated:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no migration")
	}
	if h2.RunningCount() != 1 || h1.RunningCount() != 0 {
		t.Errorf("running: h1=%d h2=%d", h1.RunningCount(), h2.RunningCount())
	}
	if r, err := ms.Runtime().Call(ctx, inst, "ping", nil); err != nil || r != "pong" {
		t.Errorf("instance after migration: %v %v", r, err)
	}
}

func TestPushUpdatesReachCollection(t *testing.T) {
	ms := buildMeta(t, 1)
	ctx := context.Background()
	h := ms.Hosts()[0]
	h.SetExternalLoad(0.6)
	ms.ReassessAll(ctx)
	recs, err := ms.Collection.Query("$host_load > 0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Member != h.LOID() {
		t.Errorf("pushed state not visible: %+v", recs)
	}
	m := attr.FromPairs(recs[0].Attrs)
	if m["host_load"].FloatVal() != 0.6 {
		t.Errorf("load attr: %v", m["host_load"])
	}
}

func TestLeastLoadedHost(t *testing.T) {
	ms := buildMeta(t, 3)
	hs := ms.Hosts()
	hs[0].SetExternalLoad(0.9)
	hs[1].SetExternalLoad(0.2)
	hs[2].SetExternalLoad(0.5)
	best, v, err := ms.LeastLoadedHost(loid.Nil)
	if err != nil || best != hs[1] || v.IsNil() {
		t.Errorf("LeastLoadedHost: %v %v %v", best, v, err)
	}
	// Excluding the best yields the next.
	best2, _, err := ms.LeastLoadedHost(hs[1].LOID())
	if err != nil || best2 != hs[2] {
		t.Errorf("excluded: %v %v", best2, err)
	}
	// Single-host system with that host excluded: error.
	ms1 := buildMeta(t, 1)
	if _, _, err := ms1.LeastLoadedHost(ms1.Hosts()[0].LOID()); err == nil {
		t.Error("want error with no alternative")
	}
}

func TestCollectionAuthEnforced(t *testing.T) {
	ms := New("uva", Options{
		Credential: "right",
		CollectionAuth: func(op collection.Op, member loid.LOID, cred string) error {
			if cred != "right" {
				return fmt.Errorf("bad credential %q", cred)
			}
			return nil
		},
	})
	v := ms.AddVault(vault.Config{Zone: "z1"})
	h := ms.AddHost(host.Config{Arch: "x86", OS: "Linux", CPUs: 2, MemoryMB: 256, Zone: "z1",
		Vaults: []loid.LOID{v.LOID()}})
	// The metasystem's own credential works: the host record landed.
	if ms.Collection.Size() != 1 {
		t.Fatalf("collection size = %d", ms.Collection.Size())
	}
	// Foreign updates with a bad credential are refused.
	err := ms.Collection.Update(h.LOID(),
		[]attr.Pair{{Name: "host_load", Value: attr.Float(0)}}, "wrong")
	if !errors.Is(err, collection.ErrUnauthorized) {
		t.Errorf("unauthorized update: %v", err)
	}
}

func TestDomainAndClose(t *testing.T) {
	ms := buildMeta(t, 1)
	if ms.Domain() != "uva" {
		t.Errorf("Domain = %q", ms.Domain())
	}
	if err := ms.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestMigrateRecoveryReactivatesInPlace(t *testing.T) {
	// The destination grants the reservation but its startObject fails
	// (injected fault) after the object has been deactivated. Migrate
	// must reactivate the object where it was and report the error.
	ms := buildMeta(t, 2)
	c := ms.DefineClass("Worker", nil)
	ctx := context.Background()
	insts, p, err := c.CreateInstance(ctx, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst := insts[0]
	if _, err := ms.Runtime().Call(ctx, inst, "set", []string{"k", "v"}); err != nil {
		t.Fatal(err)
	}
	var dest *host.Host
	for _, h := range ms.Hosts() {
		if h.LOID() != p.Host {
			dest = h
		}
	}
	ms.Runtime().SetFaultInjector(func(target loid.LOID, method string) error {
		if target == dest.LOID() && method == proto.MethodStartObject {
			return errors.New("injected: destination start fails")
		}
		return nil
	})
	defer ms.Runtime().SetFaultInjector(nil)

	err = ms.Migrate(ctx, c, inst, dest.LOID(), ms.Vaults()[0].LOID())
	if err == nil {
		t.Fatal("migration should fail")
	}
	// Recovery: object answers at the same LOID with intact state.
	got, gerr := ms.Runtime().Call(ctx, inst, "get", "k")
	if gerr != nil || got != "v" {
		t.Fatalf("object after failed migration: %v %v", got, gerr)
	}
	if dest.RunningCount() != 0 {
		t.Error("destination has an object despite failure")
	}
}

func TestServeDirectoryAndTCPListen(t *testing.T) {
	ms := buildMeta(t, 2)
	ms.DefineClass("Worker", nil)
	addr, err := ms.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	client := orb.NewRuntime("client")
	defer client.Close()
	client.BindDomain("uva", addr)
	res, err := client.Call(context.Background(), proto.DirectoryLOID("uva"),
		proto.MethodLookupServices, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := res.(proto.ServicesReply)
	if len(dir.Hosts) != 2 || len(dir.Vaults) != 1 || dir.Collection.IsNil() {
		t.Errorf("directory: %+v", dir)
	}
	if _, ok := dir.Classes["Worker"]; !ok {
		t.Errorf("classes: %v", dir.Classes)
	}
}
