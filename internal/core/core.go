// Package core assembles the Legion resource management infrastructure
// into a usable metasystem: the public API of this reproduction.
//
// A Metasystem owns one administrative domain's object runtime and the
// core object hierarchy of Figure 1 — LegionClass at the root, HostClass
// and VaultClass managing the resource objects — plus the RMI service
// objects of Figure 3: a Collection, an Enactor, and a Monitor. User
// classes are defined with DefineClass and placed with
// PlaceApplication, which drives any scheduler.Generator through the
// Figure 9 retry protocol.
//
// Migration (paper §2.1: "any active object can be migrated by shutting
// it down, moving the passive state to a new Vault if necessary, and
// activating the object on another host") is provided by Migrate, and the
// §3.5 monitoring loop by WatchLoad + OnOverload.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"legion/internal/classobj"
	"legion/internal/collection"
	"legion/internal/collection/daemon"
	"legion/internal/economy"
	"legion/internal/enactor"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/monitor"
	"legion/internal/opr"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/reservation"
	"legion/internal/resilient"
	"legion/internal/scheduler"
	"legion/internal/telemetry"
	"legion/internal/vault"
	"legion/internal/vclock"
)

// Options tunes Metasystem construction.
type Options struct {
	// Seed drives all randomized scheduling; fixed default 1 for
	// reproducibility.
	Seed int64
	// CollectionAuth authorizes Collection mutations; nil allows all.
	CollectionAuth collection.Authorizer
	// Credential is presented by hosts pushing state to the Collection.
	Credential string
	// Retry shapes transport-fault handling for placement-path calls
	// (scheduler queries, Enactor negotiation). The zero value uses
	// resilient defaults.
	Retry resilient.Policy
	// Breaker tunes the shared per-endpoint circuit breakers. The zero
	// value uses resilient defaults.
	Breaker resilient.BreakerConfig
	// Metrics, when non-nil, replaces the process-wide telemetry.Default
	// registry for this metasystem's runtime and services — tests use a
	// private registry to assert exact counts, and overhead benchmarks
	// pass telemetry.NewDisabled().
	Metrics *telemetry.Registry
	// Parallelism bounds how many per-resource negotiation calls the
	// Enactor (and the Data Collection Daemon's probes) issue
	// concurrently. Zero means the enactor default (8); 1 is the serial
	// host-by-host walk.
	Parallelism int
	// CollectionShards > 1 partitions the resource directory (paper §4:
	// Collections "organized so that each covers a subset of the
	// metasystem's resources"): the Metasystem builds that many
	// Collection shards fronted by a collection.Router, and every
	// consumer — schedulers, the quick placer, host push updates, the
	// Data Collection Daemon — addresses the Router's LOID instead of a
	// single Collection. 0 or 1 keeps the classic single Collection and
	// ms.Collection semantics.
	CollectionShards int
	// CollectionRoute overrides the member→shard routing when sharded;
	// nil hashes the member LOID. collection.RouteByDomain pins whole
	// administrative domains to shards.
	CollectionRoute func(loid.LOID) int
	// DaemonBatchInterval, when > 0, makes NewDaemon coalesce its pushes
	// into one batch call per Collection per interval (see
	// daemon.Config.BatchInterval).
	DaemonBatchInterval time.Duration
	// DaemonBatchSize caps a daemon batch before an early flush; zero
	// means the daemon default.
	DaemonBatchSize int
	// MaxInFlight bounds concurrently executing Enactor placements
	// admitted at the wire boundary; requests beyond it wait in a
	// priority queue and are shed with proto.ErrOverload when the queue
	// is full or their deadline cannot be met. Zero disables admission
	// control (every request dispatches immediately).
	MaxInFlight int
	// AdmissionQueue bounds the Enactor's admission wait queue; zero
	// means 4×MaxInFlight.
	AdmissionQueue int
	// ShedWatermark, when > 0, installs a load-aware policy on every
	// host added through AddHost: at or above this occupancy fraction
	// (active reservations / MaxShared) the host refuses reservations
	// below ShedMinPriority with proto.ErrOverload, keeping headroom
	// for important work during overload.
	ShedWatermark float64
	// ShedMinPriority is the lowest priority that still rides through
	// above the watermark; zero means 1 (so priority-0 best-effort
	// requests are the ones shed).
	ShedMinPriority int
	// Clock is the metasystem's time source; nil means the wall clock.
	// A virtual clock here propagates to every service built on this
	// runtime — retries, admission, daemons, reapers — which is what
	// the discrete-event simulation mode runs on (DESIGN.md §13).
	Clock vclock.Clock
	// Economy enables the computational-economy ledger (DESIGN.md §15):
	// the Enactor charges each granted reservation to its request's
	// tenant at the host-quoted price and refunds on every cancel path.
	// False leaves placement free, matching the pre-economy behaviour.
	Economy bool
	// Ledger, when non-nil, is an externally built ledger to use instead
	// of the one Economy constructs (tests share one across domains).
	// Implies Economy.
	Ledger *economy.Ledger
}

// Metasystem is one administrative domain's assembled Legion RMI.
type Metasystem struct {
	rt   *orb.Runtime
	opts Options

	// Core object hierarchy (Figure 1).
	LegionClass *classobj.Class
	HostClass   *classobj.Class
	VaultClass  *classobj.Class

	// RMI service objects (Figure 3). When Options.CollectionShards > 1
	// the directory is federated: Collection is nil, Shards holds the
	// per-shard Collections, and Router is the MetaCollection every
	// consumer addresses (CollectionLOID abstracts over both layouts).
	Collection *collection.Collection
	Shards     []*collection.Collection
	Router     *collection.Router
	Enactor    *enactor.Enactor
	Monitor    *monitor.Monitor

	// breakers is the domain-wide circuit-breaker pool: the Wrapper,
	// scheduler queries, Enactor episodes, and daemon probes share
	// per-endpoint state so a Host that fails one layer fails fast in
	// the others.
	breakers *resilient.BreakerSet

	mu      sync.Mutex
	hosts   []*host.Host
	vaults  []*vault.Vault
	classes map[string]*classobj.Class
	rng     *rand.Rand

	// migMu guards migLocks, the per-instance migration locks: Migrate
	// and EnsureRunning serialize per instance, so two concurrent
	// rebalancing decisions can never interleave ForgetInstance /
	// AdoptInstance (or deactivate an object twice). Entries are
	// refcounted and removed when the last waiter releases.
	migMu    sync.Mutex
	migLocks map[loid.LOID]*instanceLock
}

// instanceLock is one refcounted per-instance migration mutex.
type instanceLock struct {
	mu   sync.Mutex
	refs int
}

// lockInstance acquires the migration lock for an instance, returning
// the release function.
func (ms *Metasystem) lockInstance(instance loid.LOID) (unlock func()) {
	ms.migMu.Lock()
	if ms.migLocks == nil {
		ms.migLocks = make(map[loid.LOID]*instanceLock)
	}
	l := ms.migLocks[instance]
	if l == nil {
		l = &instanceLock{}
		ms.migLocks[instance] = l
	}
	l.refs++
	ms.migMu.Unlock()
	l.mu.Lock()
	return func() {
		l.mu.Unlock()
		ms.migMu.Lock()
		l.refs--
		if l.refs == 0 {
			delete(ms.migLocks, instance)
		}
		ms.migMu.Unlock()
	}
}

// MigrationInFlight reports whether a Migrate/EnsureRunning currently
// holds (or is queued on) the instance's migration lock — rebalancing
// policies use it to skip instances already being moved.
func (ms *Metasystem) MigrationInFlight(instance loid.LOID) bool {
	ms.migMu.Lock()
	defer ms.migMu.Unlock()
	return ms.migLocks[instance] != nil
}

// New builds a Metasystem for the given administrative domain.
func New(domain string, opts Options) *Metasystem {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	rt := orb.NewRuntime(domain)
	if opts.Metrics != nil {
		// Before any service construction: services cache metric handles
		// from rt.Metrics() in their constructors.
		rt.SetMetrics(opts.Metrics)
	}
	if opts.Clock != nil {
		// Likewise before construction: services capture the runtime
		// clock when they are built.
		rt.SetClock(opts.Clock)
	}
	if opts.Retry.Clock == nil {
		opts.Retry.Clock = rt.Clock()
	}
	ms := &Metasystem{
		rt:       rt,
		opts:     opts,
		breakers: resilient.NewBreakerSet(opts.Breaker),
		classes:  make(map[string]*classobj.Class),
		rng:      rand.New(rand.NewSource(opts.Seed)),
	}
	ms.breakers.SetClock(rt.Clock().Now)
	// Count breaker state transitions for the whole domain pool: trips
	// (→open), recoveries (→closed), and probe admissions (→half-open).
	reg := rt.Metrics()
	toOpen := reg.Counter("legion_breaker_transitions_total", "to", "open")
	toClosed := reg.Counter("legion_breaker_transitions_total", "to", "closed")
	toHalf := reg.Counter("legion_breaker_transitions_total", "to", "half-open")
	ms.breakers.OnStateChange(func(_, to resilient.State) {
		switch to {
		case resilient.Open:
			toOpen.Inc()
		case resilient.Closed:
			toClosed.Inc()
		case resilient.HalfOpen:
			toHalf.Inc()
		}
	})
	ms.LegionClass = classobj.New(rt, classobj.Config{Name: "Legion"})
	ms.HostClass = classobj.New(rt, classobj.Config{Name: "Host", Meta: ms.LegionClass.LOID()})
	ms.VaultClass = classobj.New(rt, classobj.Config{Name: "Vault", Meta: ms.LegionClass.LOID()})
	if opts.CollectionShards > 1 {
		shardLOIDs := make([]loid.LOID, opts.CollectionShards)
		for i := range shardLOIDs {
			shard := collection.New(rt, opts.CollectionAuth)
			ms.Shards = append(ms.Shards, shard)
			shardLOIDs[i] = shard.LOID()
		}
		ms.Router = collection.NewRouter(rt, collection.RouterConfig{
			Shards:      shardLOIDs,
			Parallelism: opts.Parallelism,
			Route:       opts.CollectionRoute,
			Retry:       opts.Retry,
			Breakers:    ms.breakers,
		})
	} else {
		ms.Collection = collection.New(rt, opts.CollectionAuth)
	}
	ledger := opts.Ledger
	if ledger == nil && opts.Economy {
		ledger = economy.NewLedger(rt.Metrics())
	}
	ms.Enactor = enactor.New(rt, enactor.Config{
		Retry:          opts.Retry,
		Breakers:       ms.breakers,
		Parallelism:    opts.Parallelism,
		MaxInFlight:    opts.MaxInFlight,
		AdmissionQueue: opts.AdmissionQueue,
		Ledger:         ledger,
	})
	ms.Monitor = monitor.New(rt)
	return ms
}

// Breakers exposes the domain-wide circuit-breaker pool (for inspection
// in tests and operational tooling).
func (ms *Metasystem) Breakers() *resilient.BreakerSet { return ms.breakers }

// Ledger exposes the domain's economy ledger (nil when Options.Economy
// is off) — experiments and tests audit conservation through it.
func (ms *Metasystem) Ledger() *economy.Ledger { return ms.Enactor.Ledger() }

// CollectionLOID is the directory address consumers should query: the
// Router when the directory is sharded, the single Collection otherwise.
func (ms *Metasystem) CollectionLOID() loid.LOID {
	if ms.Router != nil {
		return ms.Router.LOID()
	}
	return ms.Collection.LOID()
}

// Runtime exposes the underlying object runtime.
func (ms *Metasystem) Runtime() *orb.Runtime { return ms.rt }

// Domain returns the metasystem's administrative domain.
func (ms *Metasystem) Domain() string { return ms.rt.Domain() }

// Close shuts down network listeners and client connections.
func (ms *Metasystem) Close() error { return ms.rt.Close() }

// AddVault creates a Vault, adopts it into VaultClass, and returns it.
func (ms *Metasystem) AddVault(cfg vault.Config) *vault.Vault {
	v := vault.New(ms.rt, cfg)
	ms.VaultClass.AdoptInstance(v.LOID(), loid.Nil, loid.Nil)
	ms.mu.Lock()
	ms.vaults = append(ms.vaults, v)
	ms.mu.Unlock()
	return v
}

// AddHost creates a Host, adopts it into HostClass, joins it to the
// Collection with its current attributes, and wires its push updates.
func (ms *Metasystem) AddHost(cfg host.Config) *host.Host {
	h := host.New(ms.rt, cfg)
	if ms.opts.ShedWatermark > 0 {
		// Layer the load shed behind any autonomy policy the caller
		// supplied: local refusals (the site's own rules) win, then the
		// occupancy watermark sheds what is left.
		minPrio := ms.opts.ShedMinPriority
		if minPrio == 0 {
			minPrio = 1
		}
		h.SetPolicy(host.ChainPolicies(cfg.Policy, h.LoadShedPolicy(ms.opts.ShedWatermark, minPrio)))
	}
	ms.HostClass.AdoptInstance(h.LOID(), loid.Nil, loid.Nil)
	// Hosts push to (and join) the Router when sharded — it forwards to
	// the owning shard, so the host never learns the partitioning.
	h.PushTo(ms.CollectionLOID(), ms.opts.Credential)
	// Step 1 of Figure 3: populate the Collection.
	if ms.Router != nil {
		_ = ms.Router.Join(context.Background(), h.LOID(), h.Attributes(), ms.opts.Credential)
	} else {
		_ = ms.Collection.Join(h.LOID(), h.Attributes(), ms.opts.Credential)
	}
	ms.mu.Lock()
	ms.hosts = append(ms.hosts, h)
	ms.mu.Unlock()
	return h
}

// Hosts returns the metasystem's hosts.
func (ms *Metasystem) Hosts() []*host.Host {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return append([]*host.Host(nil), ms.hosts...)
}

// Vaults returns the metasystem's vaults.
func (ms *Metasystem) Vaults() []*vault.Vault {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return append([]*vault.Vault(nil), ms.vaults...)
}

// NewDaemon builds a Data Collection Daemon over this metasystem: it
// watches every current host, pushes into the domain Collection, and
// doubles as the failure detector — unreachable hosts get their
// Collection records flagged down, which schedulers skip. The caller
// drives sweeps (Sweep for one pass, Start for periodic).
func (ms *Metasystem) NewDaemon() *daemon.Daemon {
	return ms.NewDaemonConfig(daemon.Config{})
}

// NewDaemonConfig is NewDaemon with explicit daemon configuration: zero
// fields inherit the metasystem defaults. Callers use it to set the
// pull interval or the rolling host_load_history window
// (daemon.Config.HistoryLen — the series predictive rebalancing
// forecasts from) without re-wiring the watch/push targets by hand.
func (ms *Metasystem) NewDaemonConfig(cfg daemon.Config) *daemon.Daemon {
	if cfg.Credential == "" {
		cfg.Credential = ms.opts.Credential
	}
	if cfg.Retry.MaxAttempts == 0 {
		cfg.Retry = ms.opts.Retry
	}
	if cfg.Breakers == nil {
		cfg.Breakers = ms.breakers
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = ms.opts.Parallelism
	}
	if cfg.BatchInterval == 0 {
		cfg.BatchInterval = ms.opts.DaemonBatchInterval
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = ms.opts.DaemonBatchSize
	}
	d := daemon.New(ms.rt, cfg)
	for _, h := range ms.Hosts() {
		d.Watch(h.LOID())
	}
	d.PushInto(ms.CollectionLOID())
	return d
}

// ReassessAll has every host recompute and push its state — one tick of
// the periodic reassessment the paper describes.
func (ms *Metasystem) ReassessAll(ctx context.Context) {
	for _, h := range ms.Hosts() {
		h.Reassess(ctx)
	}
}

// DefineClass creates a user object class managed by LegionClass, with a
// quick placer that makes the paper's "quick and almost certainly
// non-optimal" decision: the first matching host in the Collection.
func (ms *Metasystem) DefineClass(name string, impls []proto.Implementation) *classobj.Class {
	c := classobj.New(ms.rt, classobj.Config{
		Name:  name,
		Meta:  ms.LegionClass.LOID(),
		Impls: impls,
	})
	c.SetPlacer(ms.quickPlacer())
	ms.mu.Lock()
	ms.classes[name] = c
	ms.mu.Unlock()
	return c
}

// Class returns a previously defined class by name.
func (ms *Metasystem) Class(name string) (*classobj.Class, bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	c, ok := ms.classes[name]
	return c, ok
}

// quickPlacer builds the default per-class placement: first matching
// host, first compatible vault, instantaneous reusable timesharing
// reservation.
func (ms *Metasystem) quickPlacer() classobj.QuickPlacer {
	return func(ctx context.Context, c *classobj.Class, count int) (proto.Placement, error) {
		hosts, err := scheduler.QueryHosts(ctx, ms.Env(), "defined($host_arch)")
		if err != nil {
			return proto.Placement{}, err
		}
		for _, h := range hosts {
			if len(h.Vaults) == 0 || h.Down {
				continue
			}
			res, err := ms.rt.Call(ctx, h.LOID, proto.MethodMakeReservation, proto.MakeReservationArgs{
				Requester: c.LOID(),
				Vault:     h.Vaults[0],
				Type:      reservation.ReusableTimesharing,
				Duration:  time.Hour,
			})
			if err != nil {
				continue // autonomy: the host said no; try the next
			}
			return proto.Placement{
				Host:  h.LOID,
				Vault: h.Vaults[0],
				Token: res.(proto.MakeReservationReply).Token,
			}, nil
		}
		return proto.Placement{}, errors.New("core: no host granted a reservation")
	}
}

// Env returns a scheduler environment over this metasystem.
func (ms *Metasystem) Env() *scheduler.Env {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return &scheduler.Env{
		RT:         ms.rt,
		Collection: ms.CollectionLOID(),
		Rand:       rand.New(rand.NewSource(ms.rng.Int63())),
		Retry:      ms.opts.Retry,
		Breakers:   ms.breakers,
	}
}

// PlaceApplication runs the full Figure 3 pipeline: the generator
// queries the Collection and computes schedules, the Wrapper negotiates
// them through the Enactor, and on success the named class instances are
// running on their reserved hosts.
func (ms *Metasystem) PlaceApplication(ctx context.Context, gen scheduler.Generator, req scheduler.Request) (scheduler.Outcome, error) {
	return ms.PlaceApplicationLimits(ctx, gen, req, scheduler.Wrapper{})
}

// PlaceApplicationLimits is PlaceApplication with explicit retry limits.
func (ms *Metasystem) PlaceApplicationLimits(ctx context.Context, gen scheduler.Generator, req scheduler.Request, w scheduler.Wrapper) (scheduler.Outcome, error) {
	return w.Run(ctx, ms.Env(), ms.Enactor.LOID(), gen, req)
}

// Migrate moves a running instance to another (host, vault): shutdown on
// the current host (OPR to its vault), move the OPR to the new vault if
// different, reactivate on the destination under a fresh reservation, and
// update the class's records.
//
// Migrate holds the instance's migration lock for its whole duration, so
// concurrent Migrate/EnsureRunning calls on the same instance serialize
// instead of double-deactivating or interleaving the class-record swap.
// Every failure branch cancels the destination reservation and removes
// any OPR copy the attempt left in the destination vault (restoring the
// source vault's copy first, so the passive state is never held only in
// memory); see DESIGN.md §11 for the full failure matrix.
func (ms *Metasystem) Migrate(ctx context.Context, class *classobj.Class, instance, toHost, toVault loid.LOID) error {
	unlock := ms.lockInstance(instance)
	defer unlock()

	fromHost, fromVault, err := class.WhereIs(instance)
	if err != nil {
		return err
	}
	if fromHost == toHost && fromVault == toVault {
		return nil // already there
	}

	// Reserve the destination before disturbing the running object, so a
	// refusal leaves the system untouched.
	res, err := ms.rt.Call(ctx, toHost, proto.MethodMakeReservation, proto.MakeReservationArgs{
		Requester: ms.Monitor.LOID(),
		Vault:     toVault,
		Type:      reservation.OneShotTimesharing,
		Duration:  time.Hour,
	})
	if err != nil {
		return fmt.Errorf("core: migrate %v: destination reservation: %w", instance, err)
	}
	tok := res.(proto.MakeReservationReply).Token
	cancelTok := func() {
		cctx, cancel := ms.rt.Clock().WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
		defer cancel()
		_, _ = ms.rt.Call(cctx, toHost, proto.MethodCancelReservation, proto.TokenArgs{Token: tok})
	}

	// Shut down: the host stores the OPR in the instance's current vault
	// and returns it.
	dres, err := ms.rt.Call(ctx, fromHost, proto.MethodDeactivateObject, proto.ObjectArgs{Object: instance})
	if err != nil {
		// Roll the reservation back; the object is still running.
		cancelTok()
		return fmt.Errorf("core: migrate %v: deactivate on %v: %w", instance, fromHost, err)
	}
	state := dres.(proto.DeactivateReply).OPR

	// Move the passive state to the new vault if necessary.
	moved := false
	if toVault != fromVault {
		if _, err := ms.rt.Call(ctx, toVault, proto.MethodStoreOPR, proto.StoreOPRArgs{OPR: state}); err != nil {
			cancelTok()
			return ms.reactivateInPlace(ctx, class, instance, fromHost, fromVault, state,
				fmt.Errorf("core: migrate %v: store OPR in %v: %w", instance, toVault, err))
		}
		moved = true
		_, _ = ms.rt.Call(ctx, fromVault, proto.MethodDeleteOPR, proto.DeleteOPRArgs{Object: instance})
	}

	// Reactivate on the destination.
	if _, err := ms.rt.Call(ctx, toHost, proto.MethodStartObject, proto.StartObjectArgs{
		Token:     tok,
		Class:     class.LOID(),
		Instances: []loid.LOID{instance},
		State:     state,
	}); err != nil {
		cause := fmt.Errorf("core: migrate %v: reactivate on %v: %w", instance, toHost, err)
		// The token was granted and possibly consumed by the failed
		// redeem attempt; cancel releases it either way.
		cancelTok()
		if moved {
			// The copy now sits in toVault while the object returns to
			// fromVault. Restore the source copy first, and only drop the
			// destination copy once the state is durable at the source
			// again — the passive state must never exist solely in this
			// call frame.
			if _, rerr := ms.rt.Call(ctx, fromVault, proto.MethodStoreOPR, proto.StoreOPRArgs{OPR: state}); rerr == nil {
				_, _ = ms.rt.Call(ctx, toVault, proto.MethodDeleteOPR, proto.DeleteOPRArgs{Object: instance})
			}
		}
		return ms.reactivateInPlace(ctx, class, instance, fromHost, fromVault, state, cause)
	}
	class.ForgetInstance(instance)
	class.AdoptInstance(instance, toHost, toVault)
	return nil
}

// reactivateInPlace is the migration failure path: put the object back
// where it was so a failed migration degrades to a no-op. The recovery
// reservation is cancelled if its redeem fails, so even a doubly-failed
// migration leaks no token.
func (ms *Metasystem) reactivateInPlace(ctx context.Context, class *classobj.Class, instance, fromHost, fromVault loid.LOID, state *opr.OPR, cause error) error {
	res, err := ms.rt.Call(ctx, fromHost, proto.MethodMakeReservation, proto.MakeReservationArgs{
		Requester: ms.Monitor.LOID(),
		Vault:     fromVault,
		Type:      reservation.OneShotTimesharing,
		Duration:  time.Hour,
	})
	if err != nil {
		return fmt.Errorf("%w (and recovery reservation failed: %v)", cause, err)
	}
	rtok := res.(proto.MakeReservationReply).Token
	if _, err := ms.rt.Call(ctx, fromHost, proto.MethodStartObject, proto.StartObjectArgs{
		Token:     rtok,
		Class:     class.LOID(),
		Instances: []loid.LOID{instance},
		State:     state,
	}); err != nil {
		cctx, cancel := ms.rt.Clock().WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
		defer cancel()
		_, _ = ms.rt.Call(cctx, fromHost, proto.MethodCancelReservation, proto.TokenArgs{Token: rtok})
		return fmt.Errorf("%w (and recovery reactivation failed: %v)", cause, err)
	}
	return cause
}

// HostByLOID returns the metasystem's Host object with the given LOID,
// or nil.
func (ms *Metasystem) HostByLOID(l loid.LOID) *host.Host {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	for _, h := range ms.hosts {
		if h.LOID() == l {
			return h
		}
	}
	return nil
}

// VaultByLOID returns the metasystem's Vault object with the given LOID,
// or nil.
func (ms *Metasystem) VaultByLOID(l loid.LOID) *vault.Vault {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	for _, v := range ms.vaults {
		if v.LOID() == l {
			return v
		}
	}
	return nil
}

// EnsureRunning verifies the instance is active where its class records
// say, and if it is not — a migration died after deactivation, or its
// host crashed and was replaced — reactivates it from the newest stored
// OPR, preferring the recorded host and falling back to any host that
// can reach the OPR's vault. It also deletes stray OPR copies other
// vaults hold once the object is running again. This is the anti-entropy
// half of migration fault tolerance: the rebalance subsystem calls it
// after failed migrations and from its reconcile sweep.
func (ms *Metasystem) EnsureRunning(ctx context.Context, class *classobj.Class, instance loid.LOID) error {
	unlock := ms.lockInstance(instance)
	defer unlock()

	hostL, vaultL, err := class.WhereIs(instance)
	if err != nil {
		return err
	}
	if h := ms.HostByLOID(hostL); h != nil && h.IsRunning(instance) {
		ms.cleanStrayOPRs(ctx, instance, vaultL)
		return nil
	}

	// Find the newest surviving OPR, preferring the recorded vault.
	type copyAt struct {
		vault loid.LOID
		state *opr.OPR
	}
	var copies []copyAt
	for _, v := range ms.Vaults() {
		res, err := ms.rt.Call(ctx, v.LOID(), proto.MethodRetrieveOPR, proto.RetrieveOPRArgs{Object: instance})
		if err != nil {
			continue // not here, or vault unreachable — keep looking
		}
		copies = append(copies, copyAt{vault: v.LOID(), state: res.(proto.RetrieveOPRReply).OPR})
	}
	if len(copies) == 0 {
		return fmt.Errorf("core: ensure-running %v: not active and no OPR found in any vault", instance)
	}
	best := copies[0]
	for _, c := range copies[1:] {
		if c.state.Version > best.state.Version ||
			(c.state.Version == best.state.Version && c.vault == vaultL) {
			best = c
		}
	}

	// Candidate hosts: the recorded one first, then anyone reaching the
	// OPR's vault.
	candidates := []loid.LOID{hostL}
	for _, h := range ms.Hosts() {
		if h.LOID() == hostL {
			continue
		}
		for _, v := range h.CompatibleVaults() {
			if v == best.vault {
				candidates = append(candidates, h.LOID())
				break
			}
		}
	}
	var lastErr error
	for _, cand := range candidates {
		res, err := ms.rt.Call(ctx, cand, proto.MethodMakeReservation, proto.MakeReservationArgs{
			Requester: ms.Monitor.LOID(),
			Vault:     best.vault,
			Type:      reservation.OneShotTimesharing,
			Duration:  time.Hour,
		})
		if err != nil {
			lastErr = err
			continue
		}
		tok := res.(proto.MakeReservationReply).Token
		if _, err := ms.rt.Call(ctx, cand, proto.MethodStartObject, proto.StartObjectArgs{
			Token:     tok,
			Class:     class.LOID(),
			Instances: []loid.LOID{instance},
			State:     best.state,
		}); err != nil {
			lastErr = err
			cctx, cancel := ms.rt.Clock().WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
			_, _ = ms.rt.Call(cctx, cand, proto.MethodCancelReservation, proto.TokenArgs{Token: tok})
			cancel()
			continue
		}
		class.ForgetInstance(instance)
		class.AdoptInstance(instance, cand, best.vault)
		ms.cleanStrayOPRs(ctx, instance, best.vault)
		return nil
	}
	return fmt.Errorf("core: ensure-running %v: no candidate host could reactivate: %w", instance, lastErr)
}

// cleanStrayOPRs best-effort deletes OPR copies for the instance from
// every vault except keep — the duplicates a fault-interrupted
// cross-vault move can leave behind.
func (ms *Metasystem) cleanStrayOPRs(ctx context.Context, instance, keep loid.LOID) {
	for _, v := range ms.Vaults() {
		if v.LOID() == keep {
			continue
		}
		has := false
		for _, o := range v.Objects() {
			if o == instance {
				has = true
				break
			}
		}
		if has {
			_, _ = ms.rt.Call(ctx, v.LOID(), proto.MethodDeleteOPR, proto.DeleteOPRArgs{Object: instance})
		}
	}
}

// MigrationAudit is the token/OPR conservation report AuditMigrations
// computes: after any migration episode quiesces, a healthy metasystem
// reports Clean() == true.
type MigrationAudit struct {
	// Missing lists instances running on no host.
	Missing []loid.LOID
	// Duplicated lists instances running on more than one host at once.
	Duplicated []loid.LOID
	// Misplaced lists instances running somewhere other than where their
	// class records say.
	Misplaced []loid.LOID
	// OrphanOPRs lists instances with an OPR copy in a vault other than
	// their current (class-recorded) vault.
	OrphanOPRs []loid.LOID
	// LeakedTokens counts live one-shot reservations backing no running
	// object, summed across hosts.
	LeakedTokens int
}

// Clean reports whether every conservation invariant held.
func (a MigrationAudit) Clean() bool {
	return len(a.Missing) == 0 && len(a.Duplicated) == 0 &&
		len(a.Misplaced) == 0 && len(a.OrphanOPRs) == 0 && a.LeakedTokens == 0
}

// String summarizes the violations.
func (a MigrationAudit) String() string {
	return fmt.Sprintf("missing=%v duplicated=%v misplaced=%v orphanOPRs=%v leakedTokens=%d",
		a.Missing, a.Duplicated, a.Misplaced, a.OrphanOPRs, a.LeakedTokens)
}

// AuditMigrations checks token/OPR conservation for every instance of
// the given classes: each must run on exactly one host (the one its
// class records), no vault other than its current one may hold its OPR,
// and no host may hold a live one-shot reservation that backs nothing.
func (ms *Metasystem) AuditMigrations(classes ...*classobj.Class) MigrationAudit {
	var a MigrationAudit
	hosts := ms.Hosts()
	vaults := ms.Vaults()
	for _, c := range classes {
		for _, inst := range c.Instances() {
			recHost, recVault, err := c.WhereIs(inst)
			if err != nil {
				continue
			}
			runningOn := 0
			placedRight := false
			for _, h := range hosts {
				if h.IsRunning(inst) {
					runningOn++
					if h.LOID() == recHost {
						placedRight = true
					}
				}
			}
			switch {
			case runningOn == 0:
				a.Missing = append(a.Missing, inst)
			case runningOn > 1:
				a.Duplicated = append(a.Duplicated, inst)
			case !placedRight:
				a.Misplaced = append(a.Misplaced, inst)
			}
			for _, v := range vaults {
				if v.LOID() == recVault {
					continue
				}
				for _, o := range v.Objects() {
					if o == inst {
						a.OrphanOPRs = append(a.OrphanOPRs, inst)
					}
				}
			}
		}
	}
	for _, h := range hosts {
		a.LeakedTokens += h.ReservationLeaks()
	}
	return a
}

// WatchLoad installs an overload trigger on every current host and
// registers the Monitor for its outcalls.
func (ms *Metasystem) WatchLoad(ctx context.Context, threshold float64) error {
	guard := fmt.Sprintf("$host_load > %g", threshold)
	for _, h := range ms.Hosts() {
		if err := ms.Monitor.Watch(ctx, h.LOID(), "overload", guard); err != nil {
			return err
		}
	}
	return nil
}

// ServeDirectory registers the bootstrap directory object at the
// domain's well-known LOID, letting remote runtimes (cmd/legion-run)
// discover this node's service objects after binding only the domain's
// TCP address.
func (ms *Metasystem) ServeDirectory() {
	dir := orb.NewServiceObject(proto.DirectoryLOID(ms.Domain()))
	dir.Handle(proto.MethodLookupServices, func(_ context.Context, _ any) (any, error) {
		ms.mu.Lock()
		defer ms.mu.Unlock()
		reply := proto.ServicesReply{
			Collection: ms.CollectionLOID(),
			Enactor:    ms.Enactor.LOID(),
			Monitor:    ms.Monitor.LOID(),
			Classes:    make(map[string]loid.LOID, len(ms.classes)),
		}
		for name, c := range ms.classes {
			reply.Classes[name] = c.LOID()
		}
		for _, h := range ms.hosts {
			reply.Hosts = append(reply.Hosts, h.LOID())
		}
		for _, v := range ms.vaults {
			reply.Vaults = append(reply.Vaults, v.LOID())
		}
		return reply, nil
	})
	ms.rt.Register(dir)
}

// ListenAndServe starts serving this metasystem's objects over TCP and
// registers the bootstrap directory. It returns the bound address.
func (ms *Metasystem) ListenAndServe(addr string) (string, error) {
	ms.ServeDirectory()
	return ms.rt.ListenAndServe(addr)
}

// LeastLoadedHost returns the host with the lowest current load and its
// first vault, excluding the given host — the default migration target
// chooser.
func (ms *Metasystem) LeastLoadedHost(exclude loid.LOID) (*host.Host, loid.LOID, error) {
	var best *host.Host
	for _, h := range ms.Hosts() {
		if h.LOID() == exclude || len(h.CompatibleVaults()) == 0 {
			continue
		}
		if best == nil || h.Load() < best.Load() {
			best = h
		}
	}
	if best == nil {
		return nil, loid.Nil, errors.New("core: no alternative host")
	}
	return best, best.CompatibleVaults()[0], nil
}
