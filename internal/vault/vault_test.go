package vault

import (
	"context"
	"errors"
	"testing"

	"legion/internal/loid"
	"legion/internal/opr"
	"legion/internal/orb"
	"legion/internal/proto"
)

func newRT() *orb.Runtime { return orb.NewRuntime("uva") }

func mkOPR(t *testing.T, obj loid.LOID, version uint64, payload string) *opr.OPR {
	t.Helper()
	o, err := opr.Encode(obj, version, payload)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

var objA = loid.LOID{Domain: "uva", Class: "Worker", Instance: 1}

func TestStoreRetrieveDelete(t *testing.T) {
	v := New(newRT(), Config{Zone: "z1"})
	o := mkOPR(t, objA, 1, "state-v1")
	if err := v.Store(o); err != nil {
		t.Fatal(err)
	}
	got, err := v.Retrieve(objA)
	if err != nil {
		t.Fatal(err)
	}
	var s string
	if err := got.Decode(&s); err != nil || s != "state-v1" {
		t.Errorf("decoded %q, %v", s, err)
	}
	if v.Count() != 1 || v.Used() != int64(o.Size()) {
		t.Errorf("Count=%d Used=%d", v.Count(), v.Used())
	}
	if err := v.Delete(objA); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Retrieve(objA); !errors.Is(err, ErrNotFound) {
		t.Errorf("after delete: %v", err)
	}
	if v.Used() != 0 {
		t.Errorf("Used after delete = %d", v.Used())
	}
	if err := v.Delete(objA); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
}

func TestVersioning(t *testing.T) {
	v := New(newRT(), Config{})
	if err := v.Store(mkOPR(t, objA, 2, "v2")); err != nil {
		t.Fatal(err)
	}
	// Newer version replaces.
	if err := v.Store(mkOPR(t, objA, 3, "v3")); err != nil {
		t.Fatal(err)
	}
	got, _ := v.Retrieve(objA)
	if got.Version != 3 {
		t.Errorf("Version = %d", got.Version)
	}
	// Older version refused.
	if err := v.Store(mkOPR(t, objA, 1, "v1")); !errors.Is(err, ErrStale) {
		t.Errorf("stale store: %v", err)
	}
	// Same version allowed (idempotent re-store).
	if err := v.Store(mkOPR(t, objA, 3, "v3b")); err != nil {
		t.Errorf("same-version store: %v", err)
	}
}

func TestCapacityEnforcement(t *testing.T) {
	small := mkOPR(t, objA, 1, "x")
	v := New(newRT(), Config{CapacityBytes: int64(small.Size()) + 2})
	if err := v.Store(small); err != nil {
		t.Fatal(err)
	}
	big := mkOPR(t, loid.LOID{Domain: "uva", Class: "W", Instance: 2}, 1,
		"a much larger state payload that will not fit")
	if err := v.Store(big); !errors.Is(err, ErrNoSpace) {
		t.Errorf("over-capacity store: %v", err)
	}
	// Replacing the existing object with a same-size version fits.
	if err := v.Store(mkOPR(t, objA, 2, "y")); err != nil {
		t.Errorf("replacement store: %v", err)
	}
}

func TestRefusesCorruptOPR(t *testing.T) {
	v := New(newRT(), Config{})
	o := mkOPR(t, objA, 1, "good")
	o.Payload[0] ^= 0xff
	if err := v.Store(o); !errors.Is(err, opr.ErrCorrupt) {
		t.Errorf("corrupt store: %v", err)
	}
	if err := v.Store(nil); err == nil {
		t.Error("nil OPR accepted")
	}
}

func TestRetrieveReturnsCopy(t *testing.T) {
	v := New(newRT(), Config{})
	v.Store(mkOPR(t, objA, 1, "orig"))
	got, _ := v.Retrieve(objA)
	got.Payload[0] ^= 0xff
	again, _ := v.Retrieve(objA)
	if err := again.Verify(); err != nil {
		t.Error("caller mutation corrupted stored OPR")
	}
}

func TestZoneCompatibility(t *testing.T) {
	rt := newRT()
	v1 := New(rt, Config{Zone: "z1"})
	star := New(rt, Config{}) // defaults to "*"
	if !v1.CompatibleWithZone("z1") || v1.CompatibleWithZone("z2") {
		t.Error("zone match logic")
	}
	if !star.CompatibleWithZone("anything") {
		t.Error("wildcard zone")
	}
	if v1.Zone() != "z1" || star.Zone() != "*" {
		t.Error("Zone()")
	}
}

func TestAttributesExported(t *testing.T) {
	v := New(newRT(), Config{Zone: "z1", CapacityBytes: 100, CostPerByte: 0.5, SecurityPolicy: "public"})
	m := map[string]bool{}
	for _, p := range v.Attributes() {
		m[p.Name] = true
	}
	for _, want := range []string{"vault_zone", "vault_capacity_bytes", "vault_used_bytes",
		"vault_cost_per_byte", "vault_security_policy", "vault_domain"} {
		if !m[want] {
			t.Errorf("attribute %s missing", want)
		}
	}
}

func TestOrbProtocol(t *testing.T) {
	rt := newRT()
	v := New(rt, Config{Zone: "z1"})
	ctx := context.Background()

	o := mkOPR(t, objA, 1, "over-the-wire")
	if _, err := rt.Call(ctx, v.LOID(), proto.MethodStoreOPR, proto.StoreOPRArgs{OPR: o}); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Call(ctx, v.LOID(), proto.MethodRetrieveOPR, proto.RetrieveOPRArgs{Object: objA})
	if err != nil {
		t.Fatal(err)
	}
	var s string
	if err := res.(proto.RetrieveOPRReply).OPR.Decode(&s); err != nil || s != "over-the-wire" {
		t.Errorf("retrieved %q, %v", s, err)
	}

	res, err = rt.Call(ctx, v.LOID(), proto.MethodVaultOK, proto.VaultOKArgs{Vault: v.LOID()})
	if err != nil || !res.(proto.BoolReply).OK {
		t.Errorf("VaultOK: %v %v", res, err)
	}
	res, err = rt.Call(ctx, v.LOID(), proto.MethodVaultOK, "z1")
	if err != nil || !res.(proto.BoolReply).OK {
		t.Errorf("VaultOK zone probe: %v %v", res, err)
	}
	res, err = rt.Call(ctx, v.LOID(), proto.MethodVaultOK, "z9")
	if err != nil || res.(proto.BoolReply).OK {
		t.Errorf("VaultOK wrong zone: %v %v", res, err)
	}

	res, err = rt.Call(ctx, v.LOID(), proto.MethodGetAttributes, nil)
	if err != nil || len(res.(proto.AttributesReply).Attrs) == 0 {
		t.Errorf("GetAttributes: %v %v", res, err)
	}

	if _, err := rt.Call(ctx, v.LOID(), proto.MethodDeleteOPR, proto.DeleteOPRArgs{Object: objA}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Call(ctx, v.LOID(), proto.MethodRetrieveOPR, proto.RetrieveOPRArgs{Object: objA}); err == nil {
		t.Error("retrieve after delete succeeded")
	}

	// Type confusion errors.
	if _, err := rt.Call(ctx, v.LOID(), proto.MethodStoreOPR, 42); err == nil {
		t.Error("bad arg type accepted")
	}
}

func TestOrbProtocolOverTCP(t *testing.T) {
	server := orb.NewRuntime("uva")
	defer server.Close()
	v := New(server, Config{Zone: "z1"})
	addr, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := orb.NewRuntime("sdsc")
	defer client.Close()
	client.Bind(v.LOID(), addr)
	ctx := context.Background()

	o := mkOPR(t, objA, 1, "tcp-state")
	if _, err := client.Call(ctx, v.LOID(), proto.MethodStoreOPR, proto.StoreOPRArgs{OPR: o}); err != nil {
		t.Fatal(err)
	}
	res, err := client.Call(ctx, v.LOID(), proto.MethodRetrieveOPR, proto.RetrieveOPRArgs{Object: objA})
	if err != nil {
		t.Fatal(err)
	}
	var s string
	if err := res.(proto.RetrieveOPRReply).OPR.Decode(&s); err != nil || s != "tcp-state" {
		t.Errorf("retrieved %q, %v", s, err)
	}
}

// TestVaultOKVerifiesIdentityAndZone is the ISSUE 5 regression: the
// vault_OK handler used to answer OK for ANY well-formed VaultOKArgs —
// a probe naming a different vault (misrouted call, stale LOID) was
// confirmed anyway. The vault must vouch only for itself, and when the
// probe carries a host zone it must also verify zone compatibility.
func TestVaultOKVerifiesIdentityAndZone(t *testing.T) {
	rt := newRT()
	v := New(rt, Config{Zone: "z1"})
	other := New(rt, Config{Zone: "z1"}) // a different vault LOID
	ctx := context.Background()

	// Naming this vault: OK.
	res, err := rt.Call(ctx, v.LOID(), proto.MethodVaultOK, proto.VaultOKArgs{Vault: v.LOID()})
	if err != nil || !res.(proto.BoolReply).OK {
		t.Errorf("self probe: %v %v", res, err)
	}
	// Naming a DIFFERENT vault: must be refused.
	res, err = rt.Call(ctx, v.LOID(), proto.MethodVaultOK, proto.VaultOKArgs{Vault: other.LOID()})
	if err != nil || res.(proto.BoolReply).OK {
		t.Errorf("probe naming another vault confirmed: %v %v", res, err)
	}
	// Identity plus compatible zone: OK.
	res, err = rt.Call(ctx, v.LOID(), proto.MethodVaultOK, proto.VaultOKArgs{Vault: v.LOID(), Zone: "z1"})
	if err != nil || !res.(proto.BoolReply).OK {
		t.Errorf("self probe with zone: %v %v", res, err)
	}
	// Identity but incompatible zone: refused.
	res, err = rt.Call(ctx, v.LOID(), proto.MethodVaultOK, proto.VaultOKArgs{Vault: v.LOID(), Zone: "z9"})
	if err != nil || res.(proto.BoolReply).OK {
		t.Errorf("incompatible zone confirmed: %v %v", res, err)
	}
	// Wildcard-zone vaults accept any zone.
	w := New(rt, Config{Zone: "*"})
	res, err = rt.Call(ctx, w.LOID(), proto.MethodVaultOK, proto.VaultOKArgs{Vault: w.LOID(), Zone: "z9"})
	if err != nil || !res.(proto.BoolReply).OK {
		t.Errorf("wildcard vault refused zone: %v %v", res, err)
	}
}
