// Package vault implements Legion Vault objects.
//
// The paper (§2.1): "Vaults are the generic storage abstraction in
// Legion. To be executed, a Legion object must have a Vault to hold its
// persistent state in an Object Persistent Representation (OPR)." And
// §3.1: "Vaults ... only participate in the scheduling process at the
// start, when they verify that they are compatible with a Host. They may,
// in the future, be differentiated by the amount of storage available,
// cost per byte, security policy, etc." — those future attributes are
// implemented here and exported through the Vault's attribute database so
// schedulers can weigh them.
//
// Compatibility is modelled with zones: a Vault and a Host sharing a zone
// (think: a common filesystem or fast network segment) are compatible. A
// Vault in the wildcard zone "*" is reachable from every host.
package vault

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"legion/internal/attr"
	"legion/internal/loid"
	"legion/internal/opr"
	"legion/internal/orb"
	"legion/internal/proto"
)

// Errors returned by Vault operations.
var (
	// ErrNoSpace reports that storing an OPR would exceed capacity.
	ErrNoSpace = errors.New("vault: insufficient storage")
	// ErrNotFound reports a missing OPR.
	ErrNotFound = errors.New("vault: no OPR for object")
	// ErrStale reports an attempt to store an OPR older than the one held.
	ErrStale = errors.New("vault: stale OPR version")
)

// Config parameterizes a Vault.
type Config struct {
	// Zone is the reachability zone (see package doc). "*" means
	// universally reachable.
	Zone string
	// CapacityBytes bounds total stored payload; zero means unlimited.
	CapacityBytes int64
	// CostPerByte is an accounting attribute exported for schedulers.
	CostPerByte float64
	// SecurityPolicy is a free-form label exported for schedulers
	// ("public", "export-controlled", ...).
	SecurityPolicy string
}

// Vault is a Legion Vault object. It is safe for concurrent use and
// implements orb.Object via its embedded ServiceObject.
type Vault struct {
	*orb.ServiceObject
	cfg   Config
	attrs *attr.Set

	mu   sync.Mutex
	oprs map[loid.LOID]*opr.OPR
	used int64
}

// New creates a Vault, mints its LOID from rt, registers its methods, and
// registers it with the runtime.
func New(rt *orb.Runtime, cfg Config) *Vault {
	if cfg.Zone == "" {
		cfg.Zone = "*"
	}
	v := &Vault{
		ServiceObject: orb.NewServiceObject(rt.Mint("Vault")),
		cfg:           cfg,
		oprs:          make(map[loid.LOID]*opr.OPR),
	}
	v.attrs = attr.NewSet(
		attr.Pair{Name: "vault_zone", Value: attr.String(cfg.Zone)},
		attr.Pair{Name: "vault_capacity_bytes", Value: attr.Int(cfg.CapacityBytes)},
		attr.Pair{Name: "vault_used_bytes", Value: attr.Int(0)},
		attr.Pair{Name: "vault_cost_per_byte", Value: attr.Float(cfg.CostPerByte)},
		attr.Pair{Name: "vault_security_policy", Value: attr.String(cfg.SecurityPolicy)},
		attr.Pair{Name: "vault_domain", Value: attr.String(rt.Domain())},
	)
	v.installMethods()
	rt.Register(v)
	return v
}

// Zone returns the vault's reachability zone.
func (v *Vault) Zone() string { return v.cfg.Zone }

// CompatibleWithZone reports whether a host in hostZone can use this
// vault.
func (v *Vault) CompatibleWithZone(hostZone string) bool {
	return v.cfg.Zone == "*" || v.cfg.Zone == hostZone
}

// Store saves an OPR, keeping only the newest version per object. It
// verifies payload integrity and enforces capacity.
func (v *Vault) Store(o *opr.OPR) error {
	if o == nil {
		return errors.New("vault: nil OPR")
	}
	if err := o.Verify(); err != nil {
		return fmt.Errorf("vault: refusing corrupt OPR: %w", err)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	prev, had := v.oprs[o.Object]
	if had && prev.Version > o.Version {
		return fmt.Errorf("%w: held %d, offered %d", ErrStale, prev.Version, o.Version)
	}
	delta := int64(o.Size())
	if had {
		delta -= int64(prev.Size())
	}
	if v.cfg.CapacityBytes > 0 && v.used+delta > v.cfg.CapacityBytes {
		return fmt.Errorf("%w: need %d over %d used of %d",
			ErrNoSpace, delta, v.used, v.cfg.CapacityBytes)
	}
	v.oprs[o.Object] = o.Clone()
	v.used += delta
	v.attrs.Set("vault_used_bytes", attr.Int(v.used))
	return nil
}

// Retrieve returns a copy of the newest OPR stored for the object.
func (v *Vault) Retrieve(object loid.LOID) (*opr.OPR, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	o, ok := v.oprs[object]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, object)
	}
	return o.Clone(), nil
}

// Delete removes the object's stored state.
func (v *Vault) Delete(object loid.LOID) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	o, ok := v.oprs[object]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotFound, object)
	}
	v.used -= int64(o.Size())
	delete(v.oprs, object)
	v.attrs.Set("vault_used_bytes", attr.Int(v.used))
	return nil
}

// Used returns the stored payload byte count.
func (v *Vault) Used() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.used
}

// Count returns the number of stored OPRs.
func (v *Vault) Count() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.oprs)
}

// Objects returns the LOIDs of all objects with a stored OPR — the
// enumeration the migration conservation audit walks to find orphaned
// copies left behind by failed cross-vault moves.
func (v *Vault) Objects() []loid.LOID {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]loid.LOID, 0, len(v.oprs))
	for l := range v.oprs {
		out = append(out, l)
	}
	return out
}

// Attributes returns a snapshot of the vault's attribute database.
func (v *Vault) Attributes() []attr.Pair { return v.attrs.Snapshot() }

// installMethods wires the orb protocol to the Go API.
func (v *Vault) installMethods() {
	v.Handle(proto.MethodStoreOPR, func(_ context.Context, arg any) (any, error) {
		a, ok := arg.(proto.StoreOPRArgs)
		if !ok {
			return nil, fmt.Errorf("vault: want StoreOPRArgs, got %T", arg)
		}
		if err := v.Store(a.OPR); err != nil {
			return nil, err
		}
		return proto.Ack{}, nil
	})
	v.Handle(proto.MethodRetrieveOPR, func(_ context.Context, arg any) (any, error) {
		a, ok := arg.(proto.RetrieveOPRArgs)
		if !ok {
			return nil, fmt.Errorf("vault: want RetrieveOPRArgs, got %T", arg)
		}
		o, err := v.Retrieve(a.Object)
		if err != nil {
			return nil, err
		}
		return proto.RetrieveOPRReply{OPR: o}, nil
	})
	v.Handle(proto.MethodDeleteOPR, func(_ context.Context, arg any) (any, error) {
		a, ok := arg.(proto.DeleteOPRArgs)
		if !ok {
			return nil, fmt.Errorf("vault: want DeleteOPRArgs, got %T", arg)
		}
		if err := v.Delete(a.Object); err != nil {
			return nil, err
		}
		return proto.Ack{}, nil
	})
	v.Handle(proto.MethodVaultOK, func(_ context.Context, arg any) (any, error) {
		a, ok := arg.(proto.VaultOKArgs)
		if !ok {
			// Zone-based compatibility probe: argument may be a zone
			// string for host-side checks.
			if zone, isZone := arg.(string); isZone {
				return proto.BoolReply{OK: v.CompatibleWithZone(zone)}, nil
			}
			return nil, fmt.Errorf("vault: want VaultOKArgs or zone string, got %T", arg)
		}
		// The vault vouches only for itself: a probe naming some other
		// vault (misrouted call, stale LOID) must not be confirmed, and
		// when the caller supplies a host zone the vault also verifies
		// reachability (§3.1: vaults "verify that they are compatible
		// with a Host").
		if !a.Vault.IsNil() && a.Vault != v.LOID() {
			return proto.BoolReply{OK: false}, nil
		}
		if a.Zone != "" && !v.CompatibleWithZone(a.Zone) {
			return proto.BoolReply{OK: false}, nil
		}
		return proto.BoolReply{OK: true}, nil
	})
	v.Handle(proto.MethodGetAttributes, func(_ context.Context, _ any) (any, error) {
		return proto.AttributesReply{Attrs: v.Attributes()}, nil
	})
}
