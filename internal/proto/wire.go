// Binary wire encodings for every protocol message, registered under
// stable explicit type IDs (see init). The IDs appear on the wire, so
// they are append-only: never renumber or reuse one, even for a
// removed message. Field order in AppendWire/DecodeWire pairs is the
// schema — both directions must match exactly, and the differential
// fuzzer (FuzzCodecRoundTrip) holds every type to gob-equivalent round
// trips.
package proto

import (
	"sort"

	"legion/internal/attr"
	"legion/internal/loid"
	"legion/internal/opr"
	"legion/internal/orb"
	"legion/internal/wire"
)

// Stable wire type IDs. Append-only.
const (
	wireMakeReservationArgs = orb.WireIDFirst + iota
	wireMakeReservationReply
	wireTokenArgs
	wireStartObjectArgs
	wireStartObjectReply
	wireObjectArgs
	wireDeactivateReply
	wireCompatibleVaultsReply
	wireVaultOKArgs
	wireBoolReply
	wireAttributesReply
	wireDefineTriggerArgs
	wireRegisterOutcallArgs
	wireNotifyArgs
	wireStoreOPRArgs
	wireRetrieveOPRArgs
	wireRetrieveOPRReply
	wireDeleteOPRArgs
	wireJoinArgs
	wireLeaveArgs
	wireUpdateArgs
	wireQueryArgs
	wireQueryReply
	wireCollectionRecord
	wireBatchEntry
	wireBatchUpdateArgs
	wireBatchUpdateReply
	wireCreateInstanceArgs
	wireCreateInstanceReply
	wireImplementationsReply
	wireInstancesReply
	wirePlacement
	wireImplementation
	wireMakeReservationsArgs
	wireFeedbackReply
	wireEnactScheduleArgs
	wireEnactReply
	wireCancelReservationsArgs
	wireAck
	wireServicesReply
	wireAccountArgs
	wireAccountDepositArgs
	wireAccountReply
)

func init() {
	orb.RegisterWireMessage[MakeReservationArgs, *MakeReservationArgs](wireMakeReservationArgs)
	orb.RegisterWireMessage[MakeReservationReply, *MakeReservationReply](wireMakeReservationReply)
	orb.RegisterWireMessage[TokenArgs, *TokenArgs](wireTokenArgs)
	orb.RegisterWireMessage[StartObjectArgs, *StartObjectArgs](wireStartObjectArgs)
	orb.RegisterWireMessage[StartObjectReply, *StartObjectReply](wireStartObjectReply)
	orb.RegisterWireMessage[ObjectArgs, *ObjectArgs](wireObjectArgs)
	orb.RegisterWireMessage[DeactivateReply, *DeactivateReply](wireDeactivateReply)
	orb.RegisterWireMessage[CompatibleVaultsReply, *CompatibleVaultsReply](wireCompatibleVaultsReply)
	orb.RegisterWireMessage[VaultOKArgs, *VaultOKArgs](wireVaultOKArgs)
	orb.RegisterWireMessage[BoolReply, *BoolReply](wireBoolReply)
	orb.RegisterWireMessage[AttributesReply, *AttributesReply](wireAttributesReply)
	orb.RegisterWireMessage[DefineTriggerArgs, *DefineTriggerArgs](wireDefineTriggerArgs)
	orb.RegisterWireMessage[RegisterOutcallArgs, *RegisterOutcallArgs](wireRegisterOutcallArgs)
	orb.RegisterWireMessage[NotifyArgs, *NotifyArgs](wireNotifyArgs)
	orb.RegisterWireMessage[StoreOPRArgs, *StoreOPRArgs](wireStoreOPRArgs)
	orb.RegisterWireMessage[RetrieveOPRArgs, *RetrieveOPRArgs](wireRetrieveOPRArgs)
	orb.RegisterWireMessage[RetrieveOPRReply, *RetrieveOPRReply](wireRetrieveOPRReply)
	orb.RegisterWireMessage[DeleteOPRArgs, *DeleteOPRArgs](wireDeleteOPRArgs)
	orb.RegisterWireMessage[JoinArgs, *JoinArgs](wireJoinArgs)
	orb.RegisterWireMessage[LeaveArgs, *LeaveArgs](wireLeaveArgs)
	orb.RegisterWireMessage[UpdateArgs, *UpdateArgs](wireUpdateArgs)
	orb.RegisterWireMessage[QueryArgs, *QueryArgs](wireQueryArgs)
	orb.RegisterWireMessage[QueryReply, *QueryReply](wireQueryReply)
	orb.RegisterWireMessage[CollectionRecord, *CollectionRecord](wireCollectionRecord)
	orb.RegisterWireMessage[BatchEntry, *BatchEntry](wireBatchEntry)
	orb.RegisterWireMessage[BatchUpdateArgs, *BatchUpdateArgs](wireBatchUpdateArgs)
	orb.RegisterWireMessage[BatchUpdateReply, *BatchUpdateReply](wireBatchUpdateReply)
	orb.RegisterWireMessage[CreateInstanceArgs, *CreateInstanceArgs](wireCreateInstanceArgs)
	orb.RegisterWireMessage[CreateInstanceReply, *CreateInstanceReply](wireCreateInstanceReply)
	orb.RegisterWireMessage[ImplementationsReply, *ImplementationsReply](wireImplementationsReply)
	orb.RegisterWireMessage[InstancesReply, *InstancesReply](wireInstancesReply)
	orb.RegisterWireMessage[Placement, *Placement](wirePlacement)
	orb.RegisterWireMessage[Implementation, *Implementation](wireImplementation)
	orb.RegisterWireMessage[MakeReservationsArgs, *MakeReservationsArgs](wireMakeReservationsArgs)
	orb.RegisterWireMessage[FeedbackReply, *FeedbackReply](wireFeedbackReply)
	orb.RegisterWireMessage[EnactScheduleArgs, *EnactScheduleArgs](wireEnactScheduleArgs)
	orb.RegisterWireMessage[EnactReply, *EnactReply](wireEnactReply)
	orb.RegisterWireMessage[CancelReservationsArgs, *CancelReservationsArgs](wireCancelReservationsArgs)
	orb.RegisterWireMessage[Ack, *Ack](wireAck)
	orb.RegisterWireMessage[ServicesReply, *ServicesReply](wireServicesReply)
	orb.RegisterWireMessage[AccountArgs, *AccountArgs](wireAccountArgs)
	orb.RegisterWireMessage[AccountDepositArgs, *AccountDepositArgs](wireAccountDepositArgs)
	orb.RegisterWireMessage[AccountReply, *AccountReply](wireAccountReply)
}

// --- Host messages ---

// AppendWire implements orb.WireMessage.
func (m *MakeReservationArgs) AppendWire(b []byte) []byte {
	b = m.Requester.AppendWire(b)
	b = m.Vault.AppendWire(b)
	b = m.Type.AppendWire(b)
	b = wire.AppendTime(b, m.Start)
	b = wire.AppendDuration(b, m.Duration)
	b = wire.AppendDuration(b, m.Timeout)
	b = wire.AppendVarint(b, int64(m.Priority))
	return wire.AppendString(b, m.Tenant)
}

// DecodeWire implements orb.WireMessage.
func (m *MakeReservationArgs) DecodeWire(r *wire.Reader) {
	m.Requester.DecodeWire(r)
	m.Vault.DecodeWire(r)
	m.Type.DecodeWire(r)
	m.Start = r.Time()
	m.Duration = r.Duration()
	m.Timeout = r.Duration()
	m.Priority = int(r.Varint())
	m.Tenant = r.Sym()
}

// AppendWire implements orb.WireMessage.
func (m *MakeReservationReply) AppendWire(b []byte) []byte {
	b = m.Token.AppendWire(b)
	return wire.AppendFloat64(b, m.Cost)
}

// DecodeWire implements orb.WireMessage.
func (m *MakeReservationReply) DecodeWire(r *wire.Reader) {
	m.Token.DecodeWire(r)
	m.Cost = r.Float64()
}

// AppendWire implements orb.WireMessage.
func (m *AccountArgs) AppendWire(b []byte) []byte {
	return wire.AppendString(b, m.Tenant)
}

// DecodeWire implements orb.WireMessage.
func (m *AccountArgs) DecodeWire(r *wire.Reader) {
	m.Tenant = r.Sym()
}

// AppendWire implements orb.WireMessage.
func (m *AccountDepositArgs) AppendWire(b []byte) []byte {
	b = wire.AppendString(b, m.Tenant)
	return wire.AppendVarint(b, m.Amount)
}

// DecodeWire implements orb.WireMessage.
func (m *AccountDepositArgs) DecodeWire(r *wire.Reader) {
	m.Tenant = r.Sym()
	m.Amount = r.Varint()
}

// AppendWire implements orb.WireMessage.
func (m *AccountReply) AppendWire(b []byte) []byte {
	b = wire.AppendString(b, m.Tenant)
	b = wire.AppendVarint(b, m.Budget)
	b = wire.AppendVarint(b, m.Spent)
	b = wire.AppendVarint(b, m.Refunded)
	return wire.AppendVarint(b, m.Remaining)
}

// DecodeWire implements orb.WireMessage.
func (m *AccountReply) DecodeWire(r *wire.Reader) {
	m.Tenant = r.Sym()
	m.Budget = r.Varint()
	m.Spent = r.Varint()
	m.Refunded = r.Varint()
	m.Remaining = r.Varint()
}

// AppendWire implements orb.WireMessage.
func (m *TokenArgs) AppendWire(b []byte) []byte {
	return m.Token.AppendWire(b)
}

// DecodeWire implements orb.WireMessage.
func (m *TokenArgs) DecodeWire(r *wire.Reader) {
	m.Token.DecodeWire(r)
}

// AppendWire implements orb.WireMessage.
func (m *StartObjectArgs) AppendWire(b []byte) []byte {
	b = m.Token.AppendWire(b)
	b = m.Class.AppendWire(b)
	b = loid.AppendWireSlice(b, m.Instances)
	return opr.AppendWirePtr(b, m.State)
}

// DecodeWire implements orb.WireMessage.
func (m *StartObjectArgs) DecodeWire(r *wire.Reader) {
	m.Token.DecodeWire(r)
	m.Class.DecodeWire(r)
	m.Instances = loid.DecodeWireSlice(r, m.Instances)
	m.State = opr.DecodeWirePtr(r, m.State)
}

// AppendWire implements orb.WireMessage.
func (m *StartObjectReply) AppendWire(b []byte) []byte {
	return loid.AppendWireSlice(b, m.Started)
}

// DecodeWire implements orb.WireMessage.
func (m *StartObjectReply) DecodeWire(r *wire.Reader) {
	m.Started = loid.DecodeWireSlice(r, m.Started)
}

// AppendWire implements orb.WireMessage.
func (m *ObjectArgs) AppendWire(b []byte) []byte {
	return m.Object.AppendWire(b)
}

// DecodeWire implements orb.WireMessage.
func (m *ObjectArgs) DecodeWire(r *wire.Reader) {
	m.Object.DecodeWire(r)
}

// AppendWire implements orb.WireMessage.
func (m *DeactivateReply) AppendWire(b []byte) []byte {
	b = opr.AppendWirePtr(b, m.OPR)
	return m.Vault.AppendWire(b)
}

// DecodeWire implements orb.WireMessage.
func (m *DeactivateReply) DecodeWire(r *wire.Reader) {
	m.OPR = opr.DecodeWirePtr(r, m.OPR)
	m.Vault.DecodeWire(r)
}

// AppendWire implements orb.WireMessage.
func (m *CompatibleVaultsReply) AppendWire(b []byte) []byte {
	return loid.AppendWireSlice(b, m.Vaults)
}

// DecodeWire implements orb.WireMessage.
func (m *CompatibleVaultsReply) DecodeWire(r *wire.Reader) {
	m.Vaults = loid.DecodeWireSlice(r, m.Vaults)
}

// AppendWire implements orb.WireMessage.
func (m *VaultOKArgs) AppendWire(b []byte) []byte {
	b = m.Vault.AppendWire(b)
	return wire.AppendString(b, m.Zone)
}

// DecodeWire implements orb.WireMessage.
func (m *VaultOKArgs) DecodeWire(r *wire.Reader) {
	m.Vault.DecodeWire(r)
	m.Zone = r.Sym()
}

// AppendWire implements orb.WireMessage.
func (m *BoolReply) AppendWire(b []byte) []byte {
	return wire.AppendBool(b, m.OK)
}

// DecodeWire implements orb.WireMessage.
func (m *BoolReply) DecodeWire(r *wire.Reader) {
	m.OK = r.Bool()
}

// AppendWire implements orb.WireMessage.
func (m *AttributesReply) AppendWire(b []byte) []byte {
	return attr.AppendWirePairs(b, m.Attrs)
}

// DecodeWire implements orb.WireMessage.
func (m *AttributesReply) DecodeWire(r *wire.Reader) {
	m.Attrs = attr.DecodeWirePairs(r, m.Attrs)
}

// AppendWire implements orb.WireMessage.
func (m *DefineTriggerArgs) AppendWire(b []byte) []byte {
	b = wire.AppendString(b, m.Name)
	return wire.AppendString(b, m.Guard)
}

// DecodeWire implements orb.WireMessage.
func (m *DefineTriggerArgs) DecodeWire(r *wire.Reader) {
	m.Name = r.Sym()
	m.Guard = r.Str()
}

// AppendWire implements orb.WireMessage.
func (m *RegisterOutcallArgs) AppendWire(b []byte) []byte {
	b = wire.AppendString(b, m.Trigger)
	return m.Monitor.AppendWire(b)
}

// DecodeWire implements orb.WireMessage.
func (m *RegisterOutcallArgs) DecodeWire(r *wire.Reader) {
	m.Trigger = r.Sym()
	m.Monitor.DecodeWire(r)
}

// AppendWire implements orb.WireMessage.
func (m *NotifyArgs) AppendWire(b []byte) []byte {
	b = m.Source.AppendWire(b)
	b = wire.AppendString(b, m.Trigger)
	b = attr.AppendWirePairs(b, m.Attrs)
	return wire.AppendTime(b, m.Time)
}

// DecodeWire implements orb.WireMessage.
func (m *NotifyArgs) DecodeWire(r *wire.Reader) {
	m.Source.DecodeWire(r)
	m.Trigger = r.Sym()
	m.Attrs = attr.DecodeWirePairs(r, m.Attrs)
	m.Time = r.Time()
}

// --- Vault messages ---

// AppendWire implements orb.WireMessage.
func (m *StoreOPRArgs) AppendWire(b []byte) []byte {
	return opr.AppendWirePtr(b, m.OPR)
}

// DecodeWire implements orb.WireMessage.
func (m *StoreOPRArgs) DecodeWire(r *wire.Reader) {
	m.OPR = opr.DecodeWirePtr(r, m.OPR)
}

// AppendWire implements orb.WireMessage.
func (m *RetrieveOPRArgs) AppendWire(b []byte) []byte {
	return m.Object.AppendWire(b)
}

// DecodeWire implements orb.WireMessage.
func (m *RetrieveOPRArgs) DecodeWire(r *wire.Reader) {
	m.Object.DecodeWire(r)
}

// AppendWire implements orb.WireMessage.
func (m *RetrieveOPRReply) AppendWire(b []byte) []byte {
	return opr.AppendWirePtr(b, m.OPR)
}

// DecodeWire implements orb.WireMessage.
func (m *RetrieveOPRReply) DecodeWire(r *wire.Reader) {
	m.OPR = opr.DecodeWirePtr(r, m.OPR)
}

// AppendWire implements orb.WireMessage.
func (m *DeleteOPRArgs) AppendWire(b []byte) []byte {
	return m.Object.AppendWire(b)
}

// DecodeWire implements orb.WireMessage.
func (m *DeleteOPRArgs) DecodeWire(r *wire.Reader) {
	m.Object.DecodeWire(r)
}

// --- Collection messages ---

// AppendWire implements orb.WireMessage.
func (m *JoinArgs) AppendWire(b []byte) []byte {
	b = m.Joiner.AppendWire(b)
	b = attr.AppendWirePairs(b, m.Attrs)
	return wire.AppendString(b, m.Credential)
}

// DecodeWire implements orb.WireMessage.
func (m *JoinArgs) DecodeWire(r *wire.Reader) {
	m.Joiner.DecodeWire(r)
	m.Attrs = attr.DecodeWirePairs(r, m.Attrs)
	m.Credential = r.Str()
}

// AppendWire implements orb.WireMessage.
func (m *LeaveArgs) AppendWire(b []byte) []byte {
	b = m.Leaver.AppendWire(b)
	return wire.AppendString(b, m.Credential)
}

// DecodeWire implements orb.WireMessage.
func (m *LeaveArgs) DecodeWire(r *wire.Reader) {
	m.Leaver.DecodeWire(r)
	m.Credential = r.Str()
}

// AppendWire implements orb.WireMessage.
func (m *UpdateArgs) AppendWire(b []byte) []byte {
	b = m.Member.AppendWire(b)
	b = attr.AppendWirePairs(b, m.Attrs)
	return wire.AppendString(b, m.Credential)
}

// DecodeWire implements orb.WireMessage.
func (m *UpdateArgs) DecodeWire(r *wire.Reader) {
	m.Member.DecodeWire(r)
	m.Attrs = attr.DecodeWirePairs(r, m.Attrs)
	m.Credential = r.Str()
}

// AppendWire implements orb.WireMessage.
func (m *BatchEntry) AppendWire(b []byte) []byte {
	b = m.Member.AppendWire(b)
	b = attr.AppendWirePairs(b, m.Attrs)
	return wire.AppendBool(b, m.UpdateOnly)
}

// DecodeWire implements orb.WireMessage.
func (m *BatchEntry) DecodeWire(r *wire.Reader) {
	m.Member.DecodeWire(r)
	m.Attrs = attr.DecodeWirePairs(r, m.Attrs)
	m.UpdateOnly = r.Bool()
}

// AppendWire implements orb.WireMessage.
func (m *BatchUpdateArgs) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(m.Entries)))
	for i := range m.Entries {
		b = m.Entries[i].AppendWire(b)
	}
	return wire.AppendString(b, m.Credential)
}

// DecodeWire implements orb.WireMessage.
func (m *BatchUpdateArgs) DecodeWire(r *wire.Reader) {
	n := r.Len()
	if n > 0 {
		if cap(m.Entries) >= n {
			m.Entries = m.Entries[:n]
		} else {
			m.Entries = make([]BatchEntry, n)
		}
		for i := range m.Entries {
			m.Entries[i].DecodeWire(r)
		}
	} else {
		m.Entries = nil
	}
	m.Credential = r.Str()
}

// AppendWire implements orb.WireMessage.
func (m *BatchUpdateReply) AppendWire(b []byte) []byte {
	b = wire.AppendVarint(b, int64(m.Applied))
	return wire.AppendVarint(b, int64(m.Dropped))
}

// DecodeWire implements orb.WireMessage.
func (m *BatchUpdateReply) DecodeWire(r *wire.Reader) {
	m.Applied = int(r.Varint())
	m.Dropped = int(r.Varint())
}

// AppendWire implements orb.WireMessage.
func (m *QueryArgs) AppendWire(b []byte) []byte {
	return wire.AppendString(b, m.Query)
}

// DecodeWire implements orb.WireMessage.
func (m *QueryArgs) DecodeWire(r *wire.Reader) {
	m.Query = r.Str()
}

// AppendWire implements orb.WireMessage.
func (m *CollectionRecord) AppendWire(b []byte) []byte {
	b = m.Member.AppendWire(b)
	b = attr.AppendWirePairs(b, m.Attrs)
	return wire.AppendTime(b, m.UpdatedAt)
}

// DecodeWire implements orb.WireMessage.
func (m *CollectionRecord) DecodeWire(r *wire.Reader) {
	m.Member.DecodeWire(r)
	m.Attrs = attr.DecodeWirePairs(r, m.Attrs)
	m.UpdatedAt = r.Time()
}

// AppendWire implements orb.WireMessage.
func (m *QueryReply) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(m.Records)))
	for i := range m.Records {
		b = m.Records[i].AppendWire(b)
	}
	return wire.AppendVarint(b, int64(m.SkippedShards))
}

// DecodeWire implements orb.WireMessage.
func (m *QueryReply) DecodeWire(r *wire.Reader) {
	n := r.Len()
	if n > 0 {
		if cap(m.Records) >= n {
			m.Records = m.Records[:n]
		} else {
			m.Records = make([]CollectionRecord, n)
		}
		for i := range m.Records {
			m.Records[i].DecodeWire(r)
		}
	} else {
		m.Records = nil
	}
	m.SkippedShards = int(r.Varint())
}

// --- Class object messages ---

// AppendWire implements orb.WireMessage.
func (m *Placement) AppendWire(b []byte) []byte {
	b = m.Host.AppendWire(b)
	b = m.Vault.AppendWire(b)
	return m.Token.AppendWire(b)
}

// DecodeWire implements orb.WireMessage.
func (m *Placement) DecodeWire(r *wire.Reader) {
	m.Host.DecodeWire(r)
	m.Vault.DecodeWire(r)
	m.Token.DecodeWire(r)
}

// AppendWire implements orb.WireMessage.
func (m *CreateInstanceArgs) AppendWire(b []byte) []byte {
	b = wire.AppendVarint(b, int64(m.Count))
	if m.Placement == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		b = m.Placement.AppendWire(b)
	}
	return opr.AppendWirePtr(b, m.State)
}

// DecodeWire implements orb.WireMessage.
func (m *CreateInstanceArgs) DecodeWire(r *wire.Reader) {
	m.Count = int(r.Varint())
	if r.Bool() {
		p := m.Placement
		if p == nil {
			p = new(Placement)
		}
		p.DecodeWire(r)
		m.Placement = p
	} else {
		m.Placement = nil
	}
	m.State = opr.DecodeWirePtr(r, m.State)
}

// AppendWire implements orb.WireMessage.
func (m *CreateInstanceReply) AppendWire(b []byte) []byte {
	b = loid.AppendWireSlice(b, m.Instances)
	b = m.Host.AppendWire(b)
	return m.Vault.AppendWire(b)
}

// DecodeWire implements orb.WireMessage.
func (m *CreateInstanceReply) DecodeWire(r *wire.Reader) {
	m.Instances = loid.DecodeWireSlice(r, m.Instances)
	m.Host.DecodeWire(r)
	m.Vault.DecodeWire(r)
}

// AppendWire implements orb.WireMessage.
func (m *Implementation) AppendWire(b []byte) []byte {
	b = wire.AppendString(b, m.Arch)
	b = wire.AppendString(b, m.OS)
	return wire.AppendVarint(b, int64(m.MemoryMB))
}

// DecodeWire implements orb.WireMessage.
func (m *Implementation) DecodeWire(r *wire.Reader) {
	m.Arch = r.Sym()
	m.OS = r.Sym()
	m.MemoryMB = int(r.Varint())
}

// AppendWire implements orb.WireMessage.
func (m *ImplementationsReply) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(m.Impls)))
	for i := range m.Impls {
		b = m.Impls[i].AppendWire(b)
	}
	return b
}

// DecodeWire implements orb.WireMessage.
func (m *ImplementationsReply) DecodeWire(r *wire.Reader) {
	n := r.Len()
	if n == 0 {
		m.Impls = nil
		return
	}
	if cap(m.Impls) >= n {
		m.Impls = m.Impls[:n]
	} else {
		m.Impls = make([]Implementation, n)
	}
	for i := range m.Impls {
		m.Impls[i].DecodeWire(r)
	}
}

// AppendWire implements orb.WireMessage.
func (m *InstancesReply) AppendWire(b []byte) []byte {
	return loid.AppendWireSlice(b, m.Instances)
}

// DecodeWire implements orb.WireMessage.
func (m *InstancesReply) DecodeWire(r *wire.Reader) {
	m.Instances = loid.DecodeWireSlice(r, m.Instances)
}

// --- Enactor messages ---

// AppendWire implements orb.WireMessage.
func (m *MakeReservationsArgs) AppendWire(b []byte) []byte {
	b = m.Request.AppendWire(b)
	return wire.AppendString(b, m.RequesterDomain)
}

// DecodeWire implements orb.WireMessage.
func (m *MakeReservationsArgs) DecodeWire(r *wire.Reader) {
	m.Request.DecodeWire(r)
	m.RequesterDomain = r.Sym()
}

// AppendWire implements orb.WireMessage.
func (m *FeedbackReply) AppendWire(b []byte) []byte {
	return m.Feedback.AppendWire(b)
}

// DecodeWire implements orb.WireMessage.
func (m *FeedbackReply) DecodeWire(r *wire.Reader) {
	m.Feedback.DecodeWire(r)
}

// AppendWire implements orb.WireMessage.
func (m *EnactScheduleArgs) AppendWire(b []byte) []byte {
	return wire.AppendUvarint(b, m.RequestID)
}

// DecodeWire implements orb.WireMessage.
func (m *EnactScheduleArgs) DecodeWire(r *wire.Reader) {
	m.RequestID = r.Uvarint()
}

// AppendWire implements orb.WireMessage.
func (m *EnactReply) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, uint64(len(m.Instances)))
	for i := range m.Instances {
		b = loid.AppendWireSlice(b, m.Instances[i])
	}
	b = wire.AppendBool(b, m.Success)
	return wire.AppendString(b, m.Detail)
}

// DecodeWire implements orb.WireMessage.
func (m *EnactReply) DecodeWire(r *wire.Reader) {
	n := r.Len()
	if n > 0 {
		if cap(m.Instances) >= n {
			m.Instances = m.Instances[:n]
		} else {
			m.Instances = make([][]loid.LOID, n)
		}
		for i := range m.Instances {
			m.Instances[i] = loid.DecodeWireSlice(r, m.Instances[i])
		}
	} else {
		m.Instances = nil
	}
	m.Success = r.Bool()
	m.Detail = r.Str()
}

// AppendWire implements orb.WireMessage.
func (m *CancelReservationsArgs) AppendWire(b []byte) []byte {
	return wire.AppendUvarint(b, m.RequestID)
}

// DecodeWire implements orb.WireMessage.
func (m *CancelReservationsArgs) DecodeWire(r *wire.Reader) {
	m.RequestID = r.Uvarint()
}

// AppendWire implements orb.WireMessage.
func (m *Ack) AppendWire(b []byte) []byte { return b }

// DecodeWire implements orb.WireMessage.
func (m *Ack) DecodeWire(r *wire.Reader) {}

// AppendWire implements orb.WireMessage. The Classes map is encoded in
// sorted key order so equal maps produce identical bytes (the virtual-
// trace differential depends on deterministic encodings).
func (m *ServicesReply) AppendWire(b []byte) []byte {
	b = m.Collection.AppendWire(b)
	b = m.Enactor.AppendWire(b)
	b = m.Monitor.AppendWire(b)
	b = wire.AppendUvarint(b, uint64(len(m.Classes)))
	if len(m.Classes) > 0 {
		keys := make([]string, 0, len(m.Classes))
		for k := range m.Classes {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b = wire.AppendString(b, k)
			b = m.Classes[k].AppendWire(b)
		}
	}
	b = loid.AppendWireSlice(b, m.Hosts)
	return loid.AppendWireSlice(b, m.Vaults)
}

// DecodeWire implements orb.WireMessage.
func (m *ServicesReply) DecodeWire(r *wire.Reader) {
	m.Collection.DecodeWire(r)
	m.Enactor.DecodeWire(r)
	m.Monitor.DecodeWire(r)
	n := r.Len()
	if n > 0 {
		m.Classes = make(map[string]loid.LOID, n)
		for i := 0; i < n; i++ {
			k := r.Sym()
			var l loid.LOID
			l.DecodeWire(r)
			if r.Err != nil {
				return
			}
			m.Classes[k] = l
		}
	} else {
		m.Classes = nil
	}
	m.Hosts = loid.DecodeWireSlice(r, m.Hosts)
	m.Vaults = loid.DecodeWireSlice(r, m.Vaults)
}
