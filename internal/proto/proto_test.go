package proto

import (
	"bytes"
	"encoding/gob"
	"testing"
	"time"

	"legion/internal/attr"
	"legion/internal/loid"
	"legion/internal/opr"
	"legion/internal/reservation"
	"legion/internal/sched"
)

// roundTrip gob-encodes a value through an `any` slot (exactly how the
// orb wire protocol carries it) and decodes it back, catching both
// unregistered types and unencodable fields.
func roundTrip(t *testing.T, v any) any {
	t.Helper()
	var buf bytes.Buffer
	holder := struct{ V any }{V: v}
	if err := gob.NewEncoder(&buf).Encode(&holder); err != nil {
		t.Fatalf("encode %T: %v", v, err)
	}
	var out struct{ V any }
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	return out.V
}

func TestAllMessageTypesCrossTheWire(t *testing.T) {
	hostL := loid.LOID{Domain: "uva", Class: "Host", Instance: 1}
	vaultL := loid.LOID{Domain: "uva", Class: "Vault", Instance: 2}
	classL := loid.LOID{Domain: "uva", Class: "WorkerClass", Instance: 3}
	instL := loid.LOID{Domain: "uva", Class: "Worker", Instance: 4}
	tok := reservation.Token{ID: 9, Host: hostL, Vault: vaultL,
		Type: reservation.ReusableTimesharing, Start: time.Unix(1e9, 0).UTC(),
		Duration: time.Hour, MAC: []byte{1, 2, 3}}
	o, err := opr.Encode(instL, 2, "state")
	if err != nil {
		t.Fatal(err)
	}
	attrs := []attr.Pair{{Name: "host_load", Value: attr.Float(0.5)}}

	var master sched.Master
	master.Mappings = []sched.Mapping{{Class: classL, Host: hostL, Vault: vaultL}}
	var variant sched.Variant
	variant.AddReplacement(0, sched.Mapping{Class: classL, Host: hostL, Vault: vaultL})
	master.Variants = []sched.Variant{variant}
	master.KofN = []sched.KofN{{Class: classL, K: 1,
		Alternatives: []sched.HostVault{{Host: hostL, Vault: vaultL}}}}

	msgs := []any{
		MakeReservationArgs{Requester: classL, Vault: vaultL,
			Type: reservation.OneShotSpaceSharing, Duration: time.Hour},
		MakeReservationReply{Token: tok},
		TokenArgs{Token: tok},
		StartObjectArgs{Token: tok, Class: classL, Instances: []loid.LOID{instL}, State: o},
		StartObjectReply{Started: []loid.LOID{instL}},
		ObjectArgs{Object: instL},
		DeactivateReply{OPR: o, Vault: vaultL},
		CompatibleVaultsReply{Vaults: []loid.LOID{vaultL}},
		VaultOKArgs{Vault: vaultL},
		BoolReply{OK: true},
		AttributesReply{Attrs: attrs},
		DefineTriggerArgs{Name: "t", Guard: "$host_load > 0.8"},
		RegisterOutcallArgs{Trigger: "t", Monitor: classL},
		NotifyArgs{Source: hostL, Trigger: "t", Attrs: attrs, Time: time.Unix(1e9, 0).UTC()},
		StoreOPRArgs{OPR: o},
		RetrieveOPRArgs{Object: instL},
		RetrieveOPRReply{OPR: o},
		DeleteOPRArgs{Object: instL},
		JoinArgs{Joiner: hostL, Attrs: attrs, Credential: "c"},
		LeaveArgs{Leaver: hostL, Credential: "c"},
		UpdateArgs{Member: hostL, Attrs: attrs, Credential: "c"},
		QueryArgs{Query: "true"},
		QueryReply{Records: []CollectionRecord{{Member: hostL, Attrs: attrs}}},
		CreateInstanceArgs{Count: 1, Placement: &Placement{Host: hostL, Vault: vaultL, Token: tok}},
		CreateInstanceReply{Instances: []loid.LOID{instL}, Host: hostL, Vault: vaultL},
		ImplementationsReply{Impls: []Implementation{{Arch: "x86", OS: "Linux", MemoryMB: 64}}},
		InstancesReply{Instances: []loid.LOID{instL}},
		MakeReservationsArgs{Request: sched.RequestList{ID: 1, Masters: []sched.Master{master},
			Res: sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour}}},
		FeedbackReply{Feedback: sched.Feedback{Success: true, MasterIndex: 0,
			Resolved: master.Mappings}},
		EnactScheduleArgs{RequestID: 1},
		EnactReply{Success: true, Instances: [][]loid.LOID{{instL}}},
		CancelReservationsArgs{RequestID: 1},
		Ack{},
		ServicesReply{Collection: hostL, Enactor: vaultL, Monitor: classL,
			Classes: map[string]loid.LOID{"Worker": classL},
			Hosts:   []loid.LOID{hostL}, Vaults: []loid.LOID{vaultL}},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if got == nil {
			t.Errorf("%T decoded to nil", m)
		}
	}

	// Spot-check deep contents survive.
	got := roundTrip(t, MakeReservationsArgs{Request: sched.RequestList{
		ID: 7, Masters: []sched.Master{master}}}).(MakeReservationsArgs)
	if got.Request.ID != 7 || len(got.Request.Masters) != 1 {
		t.Fatalf("request: %+v", got.Request)
	}
	m0 := got.Request.Masters[0]
	if len(m0.Mappings) != 1 || m0.Mappings[0].Host != hostL {
		t.Errorf("mappings: %+v", m0.Mappings)
	}
	if len(m0.Variants) != 1 || !m0.Variants[0].Covers.Get(0) {
		t.Errorf("variant bitmap lost: %+v", m0.Variants)
	}
	if len(m0.KofN) != 1 || m0.KofN[0].K != 1 {
		t.Errorf("k-of-n lost: %+v", m0.KofN)
	}

	tk := roundTrip(t, TokenArgs{Token: tok}).(TokenArgs)
	if tk.Token.ID != 9 || string(tk.Token.MAC) != string(tok.MAC) ||
		!tk.Token.Start.Equal(tok.Start) {
		t.Errorf("token: %+v", tk.Token)
	}

	op := roundTrip(t, RetrieveOPRReply{OPR: o}).(RetrieveOPRReply)
	var s string
	if err := op.OPR.Decode(&s); err != nil || s != "state" {
		t.Errorf("OPR payload: %q %v", s, err)
	}
}

func TestDirectoryLOIDWellKnown(t *testing.T) {
	l := DirectoryLOID("uva")
	if l.Domain != "uva" || l.Class != "Directory" || l.Instance != 1 {
		t.Errorf("DirectoryLOID = %v", l)
	}
	if DirectoryLOID("uva") != DirectoryLOID("uva") {
		t.Error("not stable")
	}
	if DirectoryLOID("uva") == DirectoryLOID("sdsc") {
		t.Error("not domain-distinct")
	}
}
