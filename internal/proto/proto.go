// Package proto defines the wire protocol of the Legion resource
// management infrastructure: the method names and message types exchanged
// between Schedulers, Enactors, Collections, Class objects, Hosts, and
// Vaults.
//
// Servers (package host, vault, collection, classobj, enactor) implement
// these methods; clients invoke them through an orb.Runtime. Keeping the
// protocol in one leaf package mirrors the paper's emphasis on published
// component interfaces (Table 1, Figures 4 and 6) that others can
// reimplement: a drop-in replacement Host only needs to speak this
// protocol.
package proto

import (
	"errors"
	"time"

	"legion/internal/attr"
	"legion/internal/loid"
	"legion/internal/opr"
	"legion/internal/orb"
	"legion/internal/reservation"
	"legion/internal/sched"
)

// ErrOverload is the typed refusal servers return when they shed a
// request under load (admission control at the Enactor, occupancy
// watermarks at a Host). It is a *refusal*, not a transport failure:
// package resilient classifies it permanent, so shedding makes callers
// back off through their protocol loops without opening circuit
// breakers — a loaded server is alive, and tripping breakers on sheds
// would amplify the overload into an availability collapse. The message
// prefix survives orb.RemoteError's identity erasure, so the classifier
// recognizes sheds across the wire too.
var ErrOverload = errors.New("legion: overloaded, request shed")

// Host object methods (Table 1), plus the trigger-registration calls the
// Monitor uses (§3.5) and the attribute report every Legion object
// provides.
const (
	// Reservation management.
	MethodMakeReservation   = "make_reservation"
	MethodCheckReservation  = "check_reservation"
	MethodCancelReservation = "cancel_reservation"
	// Process (object) management.
	MethodStartObject      = "startObject"
	MethodKillObject       = "killObject"
	MethodDeactivateObject = "deactivateObject"
	// Information reporting.
	MethodGetCompatibleVaults = "get_compatible_vaults"
	MethodVaultOK             = "vault_OK"
	MethodGetAttributes       = "get_attributes"
	// RGE trigger support.
	MethodDefineTrigger   = "define_trigger"
	MethodRegisterOutcall = "register_outcall"
)

// Vault object methods.
const (
	MethodStoreOPR    = "store_opr"
	MethodRetrieveOPR = "retrieve_opr"
	MethodDeleteOPR   = "delete_opr"
)

// Collection methods (Figure 4). UpdateCollectionBatch is this
// reproduction's extension for the Data Collection Daemon's coalesced
// push path: one call deposits many members' updates at once.
const (
	MethodJoinCollection        = "JoinCollection"
	MethodLeaveCollection       = "LeaveCollection"
	MethodQueryCollection       = "QueryCollection"
	MethodUpdateCollectionEntry = "UpdateCollectionEntry"
	MethodUpdateCollectionBatch = "UpdateCollectionBatch"
)

// Class object methods (§2.1, §3.4).
const (
	MethodCreateInstance     = "create_instance"
	MethodGetImplementations = "get_implementations"
	MethodListInstances      = "list_instances"
	MethodDestroyInstance    = "destroy_instance"
)

// Enactor methods (Figure 6).
const (
	MethodMakeReservations   = "make_reservations"
	MethodEnactSchedule      = "enact_schedule"
	MethodCancelReservations = "cancel_reservations"
)

// Economy account methods served by a ledger-enabled Enactor
// (DESIGN.md §15): deposit funds a tenant's account, status reports its
// ledger snapshot.
const (
	MethodAccountDeposit = "account_deposit"
	MethodAccountStatus  = "account_status"
)

// Monitor callback method: Hosts perform this outcall when a registered
// trigger fires.
const MethodNotify = "notify"

// Directory service: a bootstrap object at the well-known LOID
// (DirectoryLOID) through which remote runtimes discover a node's
// service objects. The real Legion system bootstraps through LegionClass
// at a well-known address; this plays the same role for the
// multi-process tools (cmd/legiond, cmd/legion-run).
const MethodLookupServices = "lookup_services"

// DirectoryLOID returns the well-known LOID of a domain's directory.
func DirectoryLOID(domain string) loid.LOID {
	return loid.LOID{Domain: domain, Class: "Directory", Instance: 1}
}

// ServicesReply describes a node's service objects.
type ServicesReply struct {
	Collection loid.LOID
	Enactor    loid.LOID
	Monitor    loid.LOID
	// Classes maps class name to class-object LOID.
	Classes map[string]loid.LOID
	// Hosts and Vaults list the node's resource objects.
	Hosts  []loid.LOID
	Vaults []loid.LOID
}

// --- Host messages ---

// MakeReservationArgs asks a Host for a reservation (§3.1).
type MakeReservationArgs struct {
	// Requester identifies the asking object, so the Host's local
	// placement policy can apply site-autonomy rules such as "domains
	// from which it refuses to accept object instantiation requests".
	Requester loid.LOID
	// Vault is the storage partner; the Host verifies reachability and
	// compatibility before granting.
	Vault loid.LOID
	// Type selects the Table 2 reservation class.
	Type reservation.Type
	// Start of the wanted interval; zero means now.
	Start time.Time
	// Duration of wanted service; Timeout is the confirmation deadline
	// for instantaneous reservations (zero = host default, negative is
	// rejected as malformed — see reservation.Table.Make).
	Duration time.Duration
	Timeout  time.Duration
	// Priority is the request's priority class (higher = more
	// important; 0 is the default class). Load-shedding Host policies
	// refuse low-priority reservations above an occupancy watermark.
	Priority int
	// Tenant names the paying account (DESIGN.md §15); empty means
	// unattributed. Hosts may use it in local placement policy, and it
	// lets site accounting attribute grants to tenants.
	Tenant string
}

// MakeReservationReply carries the granted token.
type MakeReservationReply struct {
	Token reservation.Token
	// Cost is the host's charge for this grant (host price × reservation
	// duration, in price units): the amount the Enactor debits from the
	// requesting tenant's ledger account. Zero for unpriced hosts.
	Cost float64
}

// TokenArgs carries a token for check/cancel calls.
type TokenArgs struct {
	Token reservation.Token
}

// StartObjectArgs redeems a reservation to instantiate objects. The class
// object mints the instance LOIDs; "the StartObject function can create
// one or more objects ... important to support efficient object creation
// for multiprocessor systems".
type StartObjectArgs struct {
	Token reservation.Token
	// Class is the class of the instances.
	Class loid.LOID
	// Instances are the pre-minted LOIDs to activate.
	Instances []loid.LOID
	// State optionally reactivates each instance from a stored OPR
	// (migration/restart); nil starts fresh instances. When non-nil it
	// applies to a single instance.
	State *opr.OPR
}

// StartObjectReply reports the activated instances.
type StartObjectReply struct {
	Started []loid.LOID
}

// ObjectArgs names one object for kill/deactivate calls.
type ObjectArgs struct {
	Object loid.LOID
}

// DeactivateReply returns the saved passive state's vault location.
type DeactivateReply struct {
	// OPR is the object's passive state; it has also been stored in the
	// Vault named by the object's reservation.
	OPR *opr.OPR
	// Vault is where the OPR was stored.
	Vault loid.LOID
}

// CompatibleVaultsReply lists the vaults reachable from the Host.
type CompatibleVaultsReply struct {
	Vaults []loid.LOID
}

// VaultOKArgs asks whether a specific vault is usable with the Host.
// Sent to a Vault, it asks the vault to verify its own identity (and,
// when Zone is non-empty, compatibility with a host in that zone).
type VaultOKArgs struct {
	Vault loid.LOID
	// Zone, when non-empty, additionally asks for zone compatibility
	// (paper §3.1: vaults "verify that they are compatible with a Host").
	Zone string
}

// BoolReply is a generic boolean result.
type BoolReply struct {
	OK bool
}

// AttributesReply carries an object's attribute snapshot.
type AttributesReply struct {
	Attrs []attr.Pair
}

// DefineTriggerArgs installs a guarded trigger on a Host (§2.1). Guard is
// a query-language expression over the Host's attributes.
type DefineTriggerArgs struct {
	Name  string
	Guard string
}

// RegisterOutcallArgs registers a Monitor for a trigger's events (§3.5).
// The Host invokes MethodNotify on the Monitor LOID when the trigger
// fires. An empty Trigger registers for all triggers.
type RegisterOutcallArgs struct {
	Trigger string
	Monitor loid.LOID
}

// NotifyArgs delivers a fired trigger event to a Monitor.
type NotifyArgs struct {
	Source  loid.LOID
	Trigger string
	Attrs   []attr.Pair
	Time    time.Time
}

// --- Vault messages ---

// StoreOPRArgs stores an object's passive state.
type StoreOPRArgs struct {
	OPR *opr.OPR
}

// RetrieveOPRArgs fetches the newest stored OPR for an object.
type RetrieveOPRArgs struct {
	Object loid.LOID
}

// RetrieveOPRReply carries the stored OPR.
type RetrieveOPRReply struct {
	OPR *opr.OPR
}

// DeleteOPRArgs removes an object's stored state.
type DeleteOPRArgs struct {
	Object loid.LOID
}

// --- Collection messages (Figure 4) ---

// JoinArgs registers a resource with a Collection, optionally installing
// initial descriptive information.
type JoinArgs struct {
	Joiner loid.LOID
	Attrs  []attr.Pair
	// Credential authenticates the caller; the Collection's auth hook
	// decides whether the update is allowed (§3.2 "The security
	// facilities of Legion authenticate the caller").
	Credential string
}

// LeaveArgs removes a resource's record.
type LeaveArgs struct {
	Leaver     loid.LOID
	Credential string
}

// UpdateArgs replaces/merges a member's descriptive information.
type UpdateArgs struct {
	Member     loid.LOID
	Attrs      []attr.Pair
	Credential string
}

// BatchEntry is one member's contribution to a coalesced update batch.
type BatchEntry struct {
	Member loid.LOID
	Attrs  []attr.Pair
	// UpdateOnly entries are dropped when the member is not currently in
	// the Collection instead of joining it — the failure detector's
	// down-flag must never resurrect (or create) a record for a resource
	// that was pruned or never deposited.
	UpdateOnly bool
}

// BatchUpdateArgs deposits many members' updates in one call. Entries
// apply in slice order, so a member's later entries win.
type BatchUpdateArgs struct {
	Entries    []BatchEntry
	Credential string
}

// BatchUpdateReply reports how many entries were applied; Dropped counts
// UpdateOnly entries skipped for absent members plus entries refused by
// the authorizer.
type BatchUpdateReply struct {
	Applied int
	Dropped int
}

// QueryArgs runs a query-language expression over all records.
type QueryArgs struct {
	Query string
}

// CollectionRecord is one resource description. UpdatedAt is the
// depositing Collection's receipt time for the latest update — under
// batched daemon pushes records are bounded-stale, and the timestamp
// lets federated callers judge that staleness for themselves.
type CollectionRecord struct {
	Member    loid.LOID
	Attrs     []attr.Pair
	UpdatedAt time.Time
}

// QueryReply is the CollectionData result: every record matching the
// query. SkippedShards is non-zero only for queries answered by a
// hierarchical Router: it counts Collection shards that contributed no
// records because they were unreachable, timed out, or breaker-open —
// the partial-result semantics callers may surface or ignore.
type QueryReply struct {
	Records       []CollectionRecord
	SkippedShards int
}

// --- Class object messages ---

// Placement directs create_instance to a reserved (Host, Vault) pair;
// the paper's "optional argument containing an LOID and a reservation
// token" enabling externally computed schedules.
type Placement struct {
	Host  loid.LOID
	Vault loid.LOID
	Token reservation.Token
}

// CreateInstanceArgs asks a class to instantiate objects. With Placement
// nil the class makes its own quick placement decision (§2.1); with
// Placement set it validates the directed placement against local policy
// and uses it.
type CreateInstanceArgs struct {
	Count     int
	Placement *Placement
	// State reactivates an instance from an OPR (migration).
	State *opr.OPR
}

// CreateInstanceReply reports the created instances and where they run.
type CreateInstanceReply struct {
	Instances []loid.LOID
	Host      loid.LOID
	Vault     loid.LOID
}

// Implementation describes one available object implementation; the
// Scheduler queries these to match hosts ("query the class for available
// implementations", Fig 7).
type Implementation struct {
	Arch string
	OS   string
	// MemoryMB is the implementation's expected memory footprint,
	// queryable by resource-aware schedulers.
	MemoryMB int
}

// ImplementationsReply lists a class's implementations.
type ImplementationsReply struct {
	Impls []Implementation
}

// InstancesReply lists a class's live instances.
type InstancesReply struct {
	Instances []loid.LOID
}

// --- Enactor messages (Figure 6) ---

// MakeReservationsArgs passes the entire schedule structure.
type MakeReservationsArgs struct {
	Request sched.RequestList
	// RequesterDomain names the calling Scheduler's domain; the
	// Enactor's admission controller uses it for per-domain fair-share
	// accounting. Empty means "unattributed" (one shared bucket).
	RequesterDomain string
}

// FeedbackReply wraps the LegionScheduleFeedback.
type FeedbackReply struct {
	Feedback sched.Feedback
}

// EnactScheduleArgs instantiates the objects of a previously reserved
// request.
type EnactScheduleArgs struct {
	RequestID uint64
}

// EnactReply reports per-mapping instantiation results.
type EnactReply struct {
	// Instances[i] are the objects created for resolved mapping i.
	Instances [][]loid.LOID
	Success   bool
	Detail    string
}

// CancelReservationsArgs releases a request's reservations.
type CancelReservationsArgs struct {
	RequestID uint64
}

// Ack is an empty success reply.
type Ack struct{}

// --- Economy account messages (DESIGN.md §15) ---

// AccountArgs names a tenant account for status queries.
type AccountArgs struct {
	Tenant string
}

// AccountDepositArgs funds a tenant's account. Amount is in economy
// credits (millionths of a price unit, see economy.Credits) so the
// ledger's integer conservation arithmetic crosses the wire exactly.
type AccountDepositArgs struct {
	Tenant string
	Amount int64
}

// AccountReply is a tenant account snapshot, all amounts in economy
// credits.
type AccountReply struct {
	Tenant    string
	Budget    int64
	Spent     int64
	Refunded  int64
	Remaining int64
}

func init() {
	for _, v := range []any{
		MakeReservationArgs{}, MakeReservationReply{}, TokenArgs{},
		StartObjectArgs{}, StartObjectReply{}, ObjectArgs{}, DeactivateReply{},
		CompatibleVaultsReply{}, VaultOKArgs{}, BoolReply{}, AttributesReply{},
		DefineTriggerArgs{}, RegisterOutcallArgs{}, NotifyArgs{},
		StoreOPRArgs{}, RetrieveOPRArgs{}, RetrieveOPRReply{}, DeleteOPRArgs{},
		JoinArgs{}, LeaveArgs{}, UpdateArgs{}, QueryArgs{}, QueryReply{},
		CollectionRecord{}, BatchEntry{}, BatchUpdateArgs{}, BatchUpdateReply{},
		CreateInstanceArgs{}, CreateInstanceReply{}, ImplementationsReply{},
		InstancesReply{}, Placement{}, Implementation{},
		MakeReservationsArgs{}, FeedbackReply{}, EnactScheduleArgs{},
		EnactReply{}, CancelReservationsArgs{}, Ack{}, ServicesReply{},
		AccountArgs{}, AccountDepositArgs{}, AccountReply{},
	} {
		orb.RegisterWireType(v)
	}
}
