package proto

import (
	"bytes"
	"encoding/gob"
	"io"
	"testing"

	"legion/internal/wire"
)

// The codec benchmarks compare the hand-rolled binary wire format
// against streaming gob — the fairest gob configuration: a persistent
// encoder/decoder pair amortizes type descriptors across frames exactly
// as the old one-gob-stream-per-connection transport did.

func benchFixtures() (MakeReservationsArgs, QueryReply) {
	return MakeReservationsArgs{Request: fixtureRequestList(32), RequesterDomain: "zone-2"},
		fixtureQueryReply(100)
}

func benchmarkBinaryEncode(b *testing.B, v interface{ AppendWire([]byte) []byte }) {
	buf := v.AppendWire(nil)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = v.AppendWire(buf[:0])
	}
}

func benchmarkGobEncode(b *testing.B, v any) {
	enc := gob.NewEncoder(io.Discard)
	if err := enc.Encode(v); err != nil { // prime type descriptors
		b.Fatal(err)
	}
	var n bytes.Buffer
	probe := gob.NewEncoder(&n)
	probe.Encode(v)
	first := n.Len()
	probe.Encode(v)
	b.SetBytes(int64(n.Len() - first)) // steady-state frame size
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecEncode(b *testing.B) {
	mra, rep := benchFixtures()
	b.Run("MakeReservationsArgs/binary", func(b *testing.B) { benchmarkBinaryEncode(b, &mra) })
	b.Run("MakeReservationsArgs/gob", func(b *testing.B) { benchmarkGobEncode(b, &mra) })
	b.Run("QueryReply/binary", func(b *testing.B) { benchmarkBinaryEncode(b, &rep) })
	b.Run("QueryReply/gob", func(b *testing.B) { benchmarkGobEncode(b, &rep) })
}

type wireDecodable interface{ DecodeWire(*wire.Reader) }

func benchmarkBinaryDecode(b *testing.B, enc []byte, out wireDecodable) {
	// One Reader reused across frames, as the per-connection read loops do.
	var r wire.Reader
	r.Reset(enc)
	out.DecodeWire(&r) // warm slice capacities and the symbol caches
	if r.Err != nil {
		b.Fatal(r.Err)
	}
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(enc)
		out.DecodeWire(&r)
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}

// repeatReader replays a primer (gob type descriptors + first frame)
// once, then yields the steady-state frame forever, so a persistent
// gob decoder can consume b.N frames without re-encoding.
type repeatReader struct {
	primer, frame []byte
	pos           []byte
	primed        bool
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if len(r.pos) == 0 {
		if !r.primed {
			r.primed = true
			r.pos = r.primer
		} else {
			r.pos = r.frame
		}
	}
	n := copy(p, r.pos)
	r.pos = r.pos[n:]
	return n, nil
}

func benchmarkGobDecode(b *testing.B, v any, out any) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(v); err != nil {
		b.Fatal(err)
	}
	first := buf.Len()
	if err := enc.Encode(v); err != nil {
		b.Fatal(err)
	}
	all := buf.Bytes()
	rr := &repeatReader{primer: all[:first], frame: all[first:]}
	dec := gob.NewDecoder(rr)
	if err := dec.Decode(out); err != nil { // consume primer
		b.Fatal(err)
	}
	b.SetBytes(int64(len(rr.frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.Decode(out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecode(b *testing.B) {
	mra, rep := benchFixtures()
	encMRA := mra.AppendWire(nil)
	encRep := rep.AppendWire(nil)
	b.Run("MakeReservationsArgs/binary", func(b *testing.B) {
		var out MakeReservationsArgs
		benchmarkBinaryDecode(b, encMRA, &out)
	})
	b.Run("MakeReservationsArgs/gob", func(b *testing.B) {
		var out MakeReservationsArgs
		benchmarkGobDecode(b, &mra, &out)
	})
	b.Run("QueryReply/binary", func(b *testing.B) {
		var out QueryReply
		benchmarkBinaryDecode(b, encRep, &out)
	})
	b.Run("QueryReply/gob", func(b *testing.B) {
		var out QueryReply
		benchmarkGobDecode(b, &rep, &out)
	})
}
