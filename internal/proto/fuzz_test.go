package proto

import (
	"testing"
	"time"

	"legion/internal/attr"
	"legion/internal/loid"
	"legion/internal/opr"
	"legion/internal/orb"
	"legion/internal/reservation"
	"legion/internal/sched"
)

// gen deterministically derives message fixtures from fuzz input bytes.
// Exhausted input yields zeros, so every byte string maps to a valid
// message and the fuzzer explores structure by mutating bytes.
type gen struct {
	data []byte
	pos  int
}

func (g *gen) byte() byte {
	if g.pos >= len(g.data) {
		return 0
	}
	b := g.data[g.pos]
	g.pos++
	return b
}

func (g *gen) n(max int) int { return int(g.byte()) % max }

func (g *gen) uint64() uint64 {
	v := uint64(g.byte())
	v = v<<8 | uint64(g.byte())
	if g.byte()&1 == 1 { // occasionally exercise wide varints
		v = v<<31 | uint64(g.byte())<<7
	}
	return v
}

func (g *gen) int64() int64 { return int64(g.uint64()) - 1<<32 }

func (g *gen) bool() bool { return g.byte()&1 == 1 }

var genSyms = []string{"", "zone-1", "zone-2", "Worker", "Host", "Vault", "arch", "x86_64", "linux", "load", "hot", "a b\x00c\xff"}

func (g *gen) sym() string { return genSyms[g.n(len(genSyms))] }

func (g *gen) str() string {
	switch g.n(4) {
	case 0:
		return ""
	case 1:
		return "free-form text with spaces"
	case 2:
		return string([]byte{0, 255, 128, 7})
	default:
		return g.sym()
	}
}

func (g *gen) time() time.Time {
	if g.bool() {
		return time.Time{}
	}
	return time.Unix(int64(g.uint64()), int64(g.n(1_000_000_000)))
}

func (g *gen) dur() time.Duration { return time.Duration(g.int64()) }

func (g *gen) loid() loid.LOID {
	return loid.LOID{Domain: g.sym(), Class: g.sym(), Instance: g.uint64()}
}

func (g *gen) loids() []loid.LOID {
	n := g.n(4)
	var out []loid.LOID
	for i := 0; i < n; i++ {
		out = append(out, g.loid())
	}
	return out
}

func (g *gen) bytes() []byte {
	n := g.n(8)
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = g.byte()
	}
	return out
}

func (g *gen) value(depth int) attr.Value {
	switch k := g.n(6); {
	case k == 0:
		return attr.String(g.str())
	case k == 1:
		return attr.Int(g.int64())
	case k == 2:
		return attr.Float(float64(g.int64()) / 3.0)
	case k == 3:
		return attr.Bool(g.bool())
	case k == 4 && depth < 2:
		var elems []attr.Value
		for i, n := 0, g.n(3); i < n; i++ {
			elems = append(elems, g.value(depth+1))
		}
		return attr.List(elems...)
	default:
		return attr.String(g.sym())
	}
}

func (g *gen) attrs() []attr.Pair {
	n := g.n(5)
	var out []attr.Pair
	for i := 0; i < n; i++ {
		out = append(out, attr.Pair{Name: g.sym(), Value: g.value(0)})
	}
	return out
}

func (g *gen) token() reservation.Token {
	return reservation.Token{
		ID:    g.uint64(),
		Host:  g.loid(),
		Vault: g.loid(),
		Type: reservation.Type{
			Share: g.bool(), Reuse: g.bool(),
		},
		Start:    g.time(),
		Duration: g.dur(),
		Timeout:  g.dur(),
		MAC:      g.bytes(),
	}
}

func (g *gen) opr() *opr.OPR {
	if g.bool() {
		return nil
	}
	o := &opr.OPR{
		Object:  g.loid(),
		Class:   g.sym(),
		Version: g.uint64(),
		SavedAt: g.time(),
		Payload: g.bytes(),
	}
	for i := range o.Digest {
		o.Digest[i] = g.byte()
	}
	return o
}

func (g *gen) mapping() sched.Mapping {
	return sched.Mapping{Class: g.loid(), Host: g.loid(), Vault: g.loid()}
}

func (g *gen) requestList() sched.RequestList {
	var masters []sched.Master
	for i, n := 0, g.n(3); i < n; i++ {
		var m sched.Master
		nm := g.n(4)
		for j := 0; j < nm; j++ {
			m.Mappings = append(m.Mappings, g.mapping())
		}
		for j, nv := 0, g.n(3); j < nv; j++ {
			v := sched.Variant{Covers: sched.NewBitmap(nm)}
			if nm > 0 {
				v.Covers.Set(g.n(nm))
				v.AddReplacement(g.n(nm), g.mapping())
			}
			m.Variants = append(m.Variants, v)
		}
		for j, nk := 0, g.n(2); j < nk; j++ {
			k := sched.KofN{Class: g.loid(), K: g.n(3)}
			for a, na := 0, g.n(3); a < na; a++ {
				k.Alternatives = append(k.Alternatives, sched.HostVault{Host: g.loid(), Vault: g.loid()})
			}
			m.KofN = append(m.KofN, k)
		}
		masters = append(masters, m)
	}
	return sched.RequestList{
		ID:      g.uint64(),
		Masters: masters,
		Res: sched.ReservationSpec{
			Share: g.bool(), Reuse: g.bool(),
			Start: g.time(), Duration: g.dur(), Timeout: g.dur(),
			Priority: int(g.byte()) - 128,
			Tenant:   g.sym(), Deadline: g.dur(),
			Budget: float64(g.int64()) / 3.0,
		},
	}
}

// message picks one registered type and fills it from the input.
func (g *gen) message() any {
	switch g.n(27) {
	case 0:
		return MakeReservationArgs{Requester: g.loid(), Vault: g.loid(),
			Type:  reservation.Type{Share: g.bool(), Reuse: g.bool()},
			Start: g.time(), Duration: g.dur(), Timeout: g.dur(), Priority: int(g.byte()) - 128,
			Tenant: g.sym()}
	case 1:
		return MakeReservationReply{Token: g.token(), Cost: float64(g.int64()) / 3.0}
	case 2:
		return TokenArgs{Token: g.token()}
	case 3:
		return StartObjectArgs{Token: g.token(), Class: g.loid(), Instances: g.loids(), State: g.opr()}
	case 4:
		return StartObjectReply{Started: g.loids()}
	case 5:
		return DeactivateReply{OPR: g.opr(), Vault: g.loid()}
	case 6:
		return VaultOKArgs{Vault: g.loid(), Zone: g.sym()}
	case 7:
		return AttributesReply{Attrs: g.attrs()}
	case 8:
		return DefineTriggerArgs{Name: g.sym(), Guard: g.str()}
	case 9:
		return NotifyArgs{Source: g.loid(), Trigger: g.sym(), Attrs: g.attrs(), Time: g.time()}
	case 10:
		return StoreOPRArgs{OPR: g.opr()}
	case 11:
		return RetrieveOPRReply{OPR: g.opr()}
	case 12:
		return JoinArgs{Joiner: g.loid(), Attrs: g.attrs(), Credential: g.str()}
	case 13:
		return UpdateArgs{Member: g.loid(), Attrs: g.attrs()}
	case 14:
		return QueryArgs{Query: g.str()}
	case 15:
		var recs []CollectionRecord
		for i, n := 0, g.n(4); i < n; i++ {
			recs = append(recs, CollectionRecord{Member: g.loid(), Attrs: g.attrs(), UpdatedAt: g.time()})
		}
		return QueryReply{Records: recs, SkippedShards: g.n(4)}
	case 16:
		var entries []BatchEntry
		for i, n := 0, g.n(3); i < n; i++ {
			entries = append(entries, BatchEntry{Member: g.loid(), Attrs: g.attrs(), UpdateOnly: g.bool()})
		}
		return BatchUpdateArgs{Entries: entries, Credential: g.str()}
	case 17:
		args := CreateInstanceArgs{Count: g.n(8), State: g.opr()}
		if g.bool() {
			args.Placement = &Placement{Host: g.loid(), Vault: g.loid(), Token: g.token()}
		}
		return args
	case 18:
		return CreateInstanceReply{Instances: g.loids(), Host: g.loid(), Vault: g.loid()}
	case 19:
		var impls []Implementation
		for i, n := 0, g.n(3); i < n; i++ {
			impls = append(impls, Implementation{Arch: g.sym(), OS: g.sym(), MemoryMB: int(g.uint64())})
		}
		return ImplementationsReply{Impls: impls}
	case 20:
		return MakeReservationsArgs{Request: g.requestList(), RequesterDomain: g.sym()}
	case 21:
		fb := sched.Feedback{
			Request: g.requestList(), Success: g.bool(),
			MasterIndex: g.n(4) - 1,
			Reason:      sched.FailureReason(g.n(5)),
			Detail:      g.str(),
			Stats: sched.EnactmentStats{
				ReservationsRequested: g.n(16), ReservationsGranted: g.n(16),
				ReservationsCancelled: g.n(16), VariantsTried: g.n(16), MastersTried: g.n(16),
			},
		}
		for i, n := 0, g.n(3); i < n; i++ {
			fb.Resolved = append(fb.Resolved, g.mapping())
			fb.VariantsApplied = append(fb.VariantsApplied, g.n(8))
		}
		return FeedbackReply{Feedback: fb}
	case 22:
		var inst [][]loid.LOID
		for i, n := 0, g.n(3); i < n; i++ {
			inst = append(inst, g.loids())
		}
		return EnactReply{Instances: inst, Success: g.bool(), Detail: g.str()}
	case 23:
		return AccountArgs{Tenant: g.sym()}
	case 24:
		return AccountDepositArgs{Tenant: g.sym(), Amount: g.int64()}
	case 25:
		return AccountReply{Tenant: g.sym(), Budget: g.int64(), Spent: g.int64(),
			Refunded: g.int64(), Remaining: g.int64()}
	default:
		sr := ServicesReply{
			Collection: g.loid(), Enactor: g.loid(), Monitor: g.loid(),
			Hosts: g.loids(), Vaults: g.loids(),
		}
		if n := g.n(3); n > 0 {
			sr.Classes = make(map[string]loid.LOID, n)
			for i := 0; i < n; i++ {
				sr.Classes[g.sym()+string(rune('a'+i))] = g.loid()
			}
		}
		return sr
	}
}

// FuzzCodecRoundTrip is the differential fuzzer behind the codec
// migration: for any generated message, the binary encode/decode round
// trip must agree with the gob round trip of the same value, and
// arbitrary attacker bytes fed to the decoder must fail cleanly, never
// panic.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03})
	f.Add([]byte("legion-codec-differential-seed"))
	for i := byte(0); i < 27; i++ { // one seed steering into each message arm
		f.Add([]byte{i, 0xff, 0x7f, 0x80, 0x01, 0x3c, 0xa5, 0x5a, 0x00, 0x10, 0xfe, 0x42, i * 11, 0x9c, 0x63, 0x31})
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arm 1: adversarial decode — raw fuzz bytes are not a valid
		// payload in general; decoding must error or succeed, not panic.
		if v, err := orb.DecodePayloadBytes(data); err == nil {
			// Whatever decoded cleanly must re-encode.
			if _, err := orb.EncodePayloadBytes(v); err != nil {
				t.Fatalf("decoded value %T fails to re-encode: %v", v, err)
			}
		}

		// Arm 2: differential round trip on a structured message derived
		// from the same bytes.
		g := &gen{data: data}
		msg := g.message()
		b, err := orb.EncodePayloadBytes(msg)
		if err != nil {
			t.Fatalf("%T: encode: %v", msg, err)
		}
		got, err := orb.DecodePayloadBytes(b)
		if err != nil {
			t.Fatalf("%T: decode own encoding: %v", msg, err)
		}
		want, err := orb.GobRoundTrip(msg)
		if err != nil {
			t.Fatalf("%T: gob reference: %v", msg, err)
		}
		if !wireEqual(got, want) {
			t.Fatalf("%T: binary and gob round trips diverge\nbinary: %#v\ngob:    %#v", msg, got, want)
		}
	})
}
