package proto

import (
	"math"
	"reflect"
	"testing"
	"time"

	"legion/internal/attr"
	"legion/internal/loid"
	"legion/internal/opr"
	"legion/internal/orb"
	"legion/internal/reservation"
	"legion/internal/sched"
	"legion/internal/wire"
)

// wireEqual compares two decoded message values with gob-compatible
// semantics: time.Time by instant (gob strips monotonic readings and may
// re-home the zone), floats bitwise (NaN round-trips), everything else
// structurally. reflect.DeepEqual can't do this — it compares time's
// internal representation and fails on equal instants in different
// zones.
func wireEqual(a, b any) bool {
	return wireEqualValue(reflect.ValueOf(a), reflect.ValueOf(b))
}

var timeType = reflect.TypeOf(time.Time{})

func wireEqualValue(a, b reflect.Value) bool {
	if a.IsValid() != b.IsValid() {
		return false
	}
	if !a.IsValid() {
		return true
	}
	if a.Type() != b.Type() {
		return false
	}
	if a.Type() == timeType && a.CanInterface() {
		return a.Interface().(time.Time).Equal(b.Interface().(time.Time))
	}
	switch a.Kind() {
	case reflect.Bool:
		return a.Bool() == b.Bool()
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return a.Int() == b.Int()
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return a.Uint() == b.Uint()
	case reflect.Float32, reflect.Float64:
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case reflect.String:
		return a.String() == b.String()
	case reflect.Pointer, reflect.Interface:
		if a.IsNil() != b.IsNil() {
			return false
		}
		return a.IsNil() || wireEqualValue(a.Elem(), b.Elem())
	case reflect.Slice:
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !wireEqualValue(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Array:
		for i := 0; i < a.Len(); i++ {
			if !wireEqualValue(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Map:
		if a.Len() != b.Len() {
			return false
		}
		iter := a.MapRange()
		for iter.Next() {
			bv := b.MapIndex(iter.Key())
			if !bv.IsValid() || !wireEqualValue(iter.Value(), bv) {
				return false
			}
		}
		return true
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			if !wireEqualValue(a.Field(i), b.Field(i)) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// --- fixtures ---

func fixtureToken(id uint64) reservation.Token {
	return reservation.Token{
		ID:       id,
		Host:     loid.LOID{Domain: "zone-1", Class: "Host", Instance: id},
		Vault:    loid.LOID{Domain: "zone-1", Class: "Vault", Instance: id + 1},
		Type:     reservation.Type{Share: true},
		Start:    time.Unix(1700000000, 123456789),
		Duration: 90 * time.Minute,
		Timeout:  30 * time.Second,
		MAC:      []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04},
	}
}

func fixtureOPR() *opr.OPR {
	o := &opr.OPR{
		Object:  loid.LOID{Domain: "zone-2", Class: "Worker", Instance: 7},
		Class:   "Worker",
		Version: 3,
		SavedAt: time.Unix(1700000100, 42),
		Payload: []byte("serialized object state"),
	}
	for i := range o.Digest {
		o.Digest[i] = byte(i)
	}
	return o
}

// fixtureRequestList builds a realistic MakeReservations payload: the
// Figure 5 structure with masters, variants, and k-of-n groups sized
// like a mid-size placement request.
func fixtureRequestList(mappings int) sched.RequestList {
	l := func(class string, i int) loid.LOID {
		return loid.LOID{Domain: "zone-1", Class: class, Instance: uint64(i + 1)}
	}
	var master sched.Master
	for i := 0; i < mappings; i++ {
		master.Mappings = append(master.Mappings, sched.Mapping{
			Class: l("Worker", 0),
			Host:  l("Host", i),
			Vault: l("Vault", i%4),
		})
	}
	for v := 0; v < 4; v++ {
		variant := sched.Variant{Covers: sched.NewBitmapOf(mappings, v, (v+1)%mappings)}
		variant.AddReplacement(v, sched.Mapping{
			Class: l("Worker", 0), Host: l("Host", mappings+v), Vault: l("Vault", v%4),
		})
		master.Variants = append(master.Variants, variant)
	}
	master.KofN = append(master.KofN, sched.KofN{
		Class: l("Worker", 0),
		K:     2,
		Alternatives: []sched.HostVault{
			{Host: l("Host", 50), Vault: l("Vault", 0)},
			{Host: l("Host", 51), Vault: l("Vault", 1)},
			{Host: l("Host", 52), Vault: l("Vault", 2)},
		},
	})
	return sched.RequestList{
		ID:      9001,
		Masters: []sched.Master{master},
		Res: sched.ReservationSpec{
			Share:    true,
			Start:    time.Unix(1700000200, 0),
			Duration: time.Hour,
			Timeout:  20 * time.Second,
			Priority: 3,
			Tenant:   "astro",
			Deadline: 3 * time.Hour,
			Budget:   12.5,
		},
	}
}

// fixtureQueryReply builds a Collection query result of n records with
// the scalar attribute shape the Data Collection Daemon deposits.
func fixtureQueryReply(n int) QueryReply {
	rep := QueryReply{SkippedShards: 1}
	for i := 0; i < n; i++ {
		rep.Records = append(rep.Records, CollectionRecord{
			Member: loid.LOID{Domain: "zone-1", Class: "Host", Instance: uint64(i + 1)},
			Attrs: []attr.Pair{
				{Name: "arch", Value: attr.String("x86_64")},
				{Name: "os", Value: attr.String("linux")},
				{Name: "load", Value: attr.Float(0.25 + float64(i)*0.001)},
				{Name: "mem_mb", Value: attr.Int(int64(4096 + i))},
				{Name: "up", Value: attr.Bool(true)},
			},
			UpdatedAt: time.Unix(1700000300+int64(i), 500),
		})
	}
	return rep
}

// fixtureMessages returns one representative instance of every
// registered message type, exercising optional pointers, maps, nested
// lists, and empty variants.
func fixtureMessages() []any {
	host := loid.LOID{Domain: "zone-1", Class: "Host", Instance: 3}
	vault := loid.LOID{Domain: "zone-1", Class: "Vault", Instance: 4}
	obj := loid.LOID{Domain: "zone-2", Class: "Worker", Instance: 5}
	attrs := []attr.Pair{
		{Name: "arch", Value: attr.String("x86_64")},
		{Name: "tags", Value: attr.Strings("gpu", "fast")},
		{Name: "load", Value: attr.Float(1.5)},
		{Name: "nested", Value: attr.List(attr.Int(1), attr.List(attr.Bool(false)))},
	}
	return []any{
		MakeReservationArgs{Requester: obj, Vault: vault, Type: reservation.Type{Share: true, Reuse: true},
			Start: time.Unix(1700000000, 1), Duration: time.Hour, Timeout: time.Minute, Priority: -2,
			Tenant: "astro"},
		MakeReservationReply{Token: fixtureToken(11), Cost: 0.125},
		MakeReservationReply{Token: fixtureToken(11)}, // free host: zero Cost
		TokenArgs{Token: fixtureToken(12)},
		StartObjectArgs{Token: fixtureToken(13), Class: obj, Instances: []loid.LOID{host, vault}, State: fixtureOPR()},
		StartObjectArgs{Token: fixtureToken(14)}, // nil State, nil Instances
		StartObjectReply{Started: []loid.LOID{obj}},
		ObjectArgs{Object: obj},
		DeactivateReply{OPR: fixtureOPR(), Vault: vault},
		DeactivateReply{Vault: vault},
		CompatibleVaultsReply{Vaults: []loid.LOID{vault}},
		VaultOKArgs{Vault: vault, Zone: "zone-1"},
		BoolReply{OK: true},
		AttributesReply{Attrs: attrs},
		AttributesReply{},
		DefineTriggerArgs{Name: "hot", Guard: "load > 0.9"},
		RegisterOutcallArgs{Trigger: "hot", Monitor: obj},
		NotifyArgs{Source: host, Trigger: "hot", Attrs: attrs, Time: time.Unix(1700000400, 7)},
		StoreOPRArgs{OPR: fixtureOPR()},
		RetrieveOPRArgs{Object: obj},
		RetrieveOPRReply{OPR: fixtureOPR()},
		RetrieveOPRReply{},
		DeleteOPRArgs{Object: obj},
		JoinArgs{Joiner: host, Attrs: attrs, Credential: "secret"},
		LeaveArgs{Leaver: host, Credential: "secret"},
		UpdateArgs{Member: host, Attrs: attrs},
		QueryArgs{Query: `arch == "x86_64" and load < 2`},
		fixtureQueryReply(3),
		QueryReply{},
		CollectionRecord{Member: host, Attrs: attrs, UpdatedAt: time.Unix(1700000500, 0)},
		BatchEntry{Member: host, Attrs: attrs, UpdateOnly: true},
		BatchUpdateArgs{Entries: []BatchEntry{{Member: host, Attrs: attrs}, {Member: vault, UpdateOnly: true}}, Credential: "c"},
		BatchUpdateReply{Applied: 10, Dropped: 2},
		CreateInstanceArgs{Count: 2, Placement: &Placement{Host: host, Vault: vault, Token: fixtureToken(15)}, State: fixtureOPR()},
		CreateInstanceArgs{Count: 1},
		CreateInstanceReply{Instances: []loid.LOID{obj}, Host: host, Vault: vault},
		Implementation{Arch: "x86_64", OS: "linux", MemoryMB: 512},
		ImplementationsReply{Impls: []Implementation{{Arch: "arm64", OS: "linux", MemoryMB: 256}}},
		InstancesReply{Instances: []loid.LOID{obj, host}},
		Placement{Host: host, Vault: vault, Token: fixtureToken(16)},
		MakeReservationsArgs{Request: fixtureRequestList(8), RequesterDomain: "zone-2"},
		FeedbackReply{Feedback: sched.Feedback{
			Request: fixtureRequestList(4), Success: true, MasterIndex: 0,
			Resolved:        fixtureRequestList(4).Masters[0].Mappings,
			VariantsApplied: []int{1, 3},
			Reason:          sched.FailureReason(0), Detail: "",
			Stats: sched.EnactmentStats{ReservationsRequested: 8, ReservationsGranted: 8},
		}},
		FeedbackReply{Feedback: sched.Feedback{
			Request: fixtureRequestList(2), MasterIndex: -1,
			Reason: sched.FailureReason(2), Detail: "no resources",
		}},
		EnactScheduleArgs{RequestID: 9001},
		EnactReply{Instances: [][]loid.LOID{{obj}, nil, {host, vault}}, Success: true, Detail: "ok"},
		CancelReservationsArgs{RequestID: 9001},
		AccountArgs{Tenant: "astro"},
		AccountArgs{},
		AccountDepositArgs{Tenant: "bio", Amount: 5_000_000},
		AccountDepositArgs{Tenant: "cfd", Amount: -250},
		AccountReply{Tenant: "astro", Budget: 10_000_000, Spent: 750_000,
			Refunded: 250_000, Remaining: 9_500_000},
		AccountReply{},
		Ack{},
		ServicesReply{
			Collection: loid.LOID{Domain: "z", Class: "Collection", Instance: 1},
			Enactor:    loid.LOID{Domain: "z", Class: "Enactor", Instance: 1},
			Monitor:    loid.LOID{Domain: "z", Class: "Monitor", Instance: 1},
			Classes:    map[string]loid.LOID{"Worker": obj, "Probe": host},
			Hosts:      []loid.LOID{host},
			Vaults:     []loid.LOID{vault},
		},
		ServicesReply{},
	}
}

// TestWireRoundTripMatchesGob encodes every fixture with the binary
// codec and checks the decode equals the gob round trip of the same
// value — the compatibility contract the codec migration rests on.
func TestWireRoundTripMatchesGob(t *testing.T) {
	for _, v := range fixtureMessages() {
		b, err := orb.EncodePayloadBytes(v)
		if err != nil {
			t.Fatalf("%T: encode: %v", v, err)
		}
		got, err := orb.DecodePayloadBytes(b)
		if err != nil {
			t.Fatalf("%T: decode: %v", v, err)
		}
		want, err := orb.GobRoundTrip(v)
		if err != nil {
			t.Fatalf("%T: gob: %v", v, err)
		}
		if !wireEqual(got, want) {
			t.Errorf("%T: binary round trip diverges from gob\nbinary: %#v\ngob:    %#v", v, got, want)
		}
	}
}

// TestWirePointerEncodesAsValue verifies *T arguments encode under T's
// ID and decode as T values, matching gob's interface semantics (the
// scheduler asserts res.(proto.QueryReply) on values).
func TestWirePointerEncodesAsValue(t *testing.T) {
	rep := fixtureQueryReply(2)
	bv, err := orb.EncodePayloadBytes(rep)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := orb.EncodePayloadBytes(&rep)
	if err != nil {
		t.Fatal(err)
	}
	if string(bv) != string(bp) {
		t.Fatal("pointer and value encodings differ")
	}
	got, err := orb.DecodePayloadBytes(bp)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.(QueryReply); !ok {
		t.Fatalf("decoded %T, want QueryReply value", got)
	}
}

// TestCodecAllocBudget holds the hot-path types to the zero-allocation
// contract: encoding into a warmed buffer and decoding into a reused
// struct must cost at most one allocation per op (interned symbols,
// reused slice capacities, pooled buffers).
func TestCodecAllocBudget(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	mra := MakeReservationsArgs{Request: fixtureRequestList(32), RequesterDomain: "zone-2"}
	rep := fixtureQueryReply(100)

	buf := make([]byte, 0, 1<<20)
	check := func(name string, fn func()) {
		t.Helper()
		fn() // warm: grow reuse capacities, intern symbols
		if allocs := testing.AllocsPerRun(50, fn); allocs > 1 {
			t.Errorf("%s: %.1f allocs/op, budget 1", name, allocs)
		}
	}

	var r wire.Reader // reused, as the per-connection read loops do

	check("encode MakeReservationsArgs", func() { buf = mra.AppendWire(buf[:0]) })
	encMRA := mra.AppendWire(nil)
	var mraOut MakeReservationsArgs
	check("decode MakeReservationsArgs", func() {
		r.Reset(encMRA)
		mraOut.DecodeWire(&r)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	})

	check("encode QueryReply", func() { buf = rep.AppendWire(buf[:0]) })
	encRep := rep.AppendWire(nil)
	var repOut QueryReply
	check("decode QueryReply", func() {
		r.Reset(encRep)
		repOut.DecodeWire(&r)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	})
}

// TestWireTruncationSafety truncates every fixture's encoding at every
// length and expects an error or a clean value — never a panic.
func TestWireTruncationSafety(t *testing.T) {
	for _, v := range fixtureMessages() {
		b, err := orb.EncodePayloadBytes(v)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(b); cut++ {
			if _, err := orb.DecodePayloadBytes(b[:cut]); err == nil {
				// A clean decode of a strict prefix is impossible: the
				// payload would have trailing bytes or a truncation error.
				t.Fatalf("%T: truncation at %d/%d decoded cleanly", v, cut, len(b))
			}
		}
	}
}
