package host

import (
	"sync"
	"testing"
	"time"

	"legion/internal/reservation"
)

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestReapReservationsReclaimsOrphans simulates an Enactor crashing
// between make_reservation and confirmation: the unconfirmed grant must
// be reclaimed by the reaper once its confirmation timeout passes,
// without any further reservation traffic to trigger lazy expiry.
func TestReapReservationsReclaimsOrphans(t *testing.T) {
	clk := &fakeClock{t: time.Unix(5000, 0)}
	e := newEnv(t, func(cfg *Config) { cfg.ReservationTimeout = 10 * time.Second })
	e.host.SetClock(clk.Now)

	e.reserve(t, reservation.OneShotTimesharing) // orphan: never confirmed
	if n := e.host.ActiveReservations(); n != 1 {
		t.Fatalf("active = %d, want 1", n)
	}
	if n := e.host.ReapReservations(); n != 0 {
		t.Fatalf("premature reap reclaimed %d", n)
	}

	clk.Advance(11 * time.Second) // past the confirmation timeout
	if n := e.host.ReapReservations(); n != 1 {
		t.Fatalf("reap reclaimed %d, want 1", n)
	}
	if n := e.host.ActiveReservations(); n != 0 {
		t.Fatalf("active after reap = %d, want 0", n)
	}
}

// TestStartReaperRunsInBackground verifies the periodic reaper reclaims
// an orphaned grant without any explicit call.
func TestStartReaperRunsInBackground(t *testing.T) {
	clk := &fakeClock{t: time.Unix(5000, 0)}
	e := newEnv(t, func(cfg *Config) { cfg.ReservationTimeout = 10 * time.Second })
	e.host.SetClock(clk.Now)

	e.reserve(t, reservation.OneShotTimesharing)
	stop := e.host.StartReaper(5 * time.Millisecond)
	defer stop()

	clk.Advance(11 * time.Second)
	deadline := time.Now().Add(2 * time.Second)
	for e.host.ActiveReservations() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("background reaper never reclaimed the orphan")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
}
