package host

import (
	"context"
	"errors"
	"testing"
	"time"

	"legion/internal/attr"
	"legion/internal/batchq"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/reservation"
	"legion/internal/telemetry"
	"legion/internal/vault"
)

// testEnv is a runtime with one vault and one (configurable) host.
type testEnv struct {
	rt    *orb.Runtime
	vault *vault.Vault
	host  *Host
}

func newEnv(t *testing.T, mutate func(*Config)) *testEnv {
	t.Helper()
	rt := orb.NewRuntime("uva")
	// Private registry: metric assertions stay independent of other
	// tests (and -count=N reruns) sharing telemetry.Default.
	rt.SetMetrics(telemetry.NewRegistry())
	v := vault.New(rt, vault.Config{Zone: "z1"})
	cfg := Config{
		Arch: "sparc", OS: "IRIX", OSVersion: "5.3",
		CPUs: 4, MemoryMB: 512, Zone: "z1",
		Vaults: []loid.LOID{v.LOID()},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	h := New(rt, cfg)
	return &testEnv{rt: rt, vault: v, host: h}
}

func (e *testEnv) reserve(t *testing.T, ty reservation.Type) *reservation.Token {
	t.Helper()
	tok, err := e.host.MakeReservation(context.Background(), proto.MakeReservationArgs{
		Requester: loid.LOID{Domain: "uva", Class: "Sched", Instance: 1},
		Vault:     e.vault.LOID(),
		Type:      ty,
		Duration:  time.Hour,
	})
	if err != nil {
		t.Fatalf("MakeReservation: %v", err)
	}
	return tok
}

var classL = loid.LOID{Domain: "uva", Class: "Class", Instance: 9}

func instances(n int) []loid.LOID {
	out := make([]loid.LOID, n)
	for i := range out {
		out[i] = loid.LOID{Domain: "uva", Class: "Worker", Instance: uint64(100 + i)}
	}
	return out
}

func TestTable1InterfaceComplete(t *testing.T) {
	// The Host must expose every Table 1 method plus the RGE calls.
	e := newEnv(t, nil)
	want := []string{
		proto.MethodMakeReservation, proto.MethodCheckReservation, proto.MethodCancelReservation,
		proto.MethodStartObject, proto.MethodKillObject, proto.MethodDeactivateObject,
		proto.MethodGetCompatibleVaults, proto.MethodVaultOK, proto.MethodGetAttributes,
		proto.MethodDefineTrigger, proto.MethodRegisterOutcall,
	}
	have := map[string]bool{}
	for _, m := range e.host.Methods() {
		have[m] = true
	}
	for _, m := range want {
		if !have[m] {
			t.Errorf("Table 1 method %q not exposed", m)
		}
	}
}

func TestReserveStartPingKill(t *testing.T) {
	e := newEnv(t, nil)
	ctx := context.Background()
	tok := e.reserve(t, reservation.ReusableTimesharing)

	insts := instances(2)
	started, err := e.host.StartObject(ctx, proto.StartObjectArgs{
		Token: *tok, Class: classL, Instances: insts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(started) != 2 {
		t.Fatalf("started %v", started)
	}
	if e.host.RunningCount() != 2 {
		t.Errorf("RunningCount = %d", e.host.RunningCount())
	}
	// The instances are live objects reachable through the runtime.
	res, err := e.rt.Call(ctx, insts[0], "ping", nil)
	if err != nil || res != "pong" {
		t.Errorf("ping: %v %v", res, err)
	}

	if err := e.host.KillObject(ctx, insts[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.rt.Call(ctx, insts[0], "ping", nil); !errors.Is(err, orb.ErrNotBound) {
		t.Errorf("killed object still answers: %v", err)
	}
	if err := e.host.KillObject(ctx, insts[0]); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("double kill: %v", err)
	}
	if e.host.RunningCount() != 1 {
		t.Errorf("RunningCount after kill = %d", e.host.RunningCount())
	}
}

func TestStartObjectRequiresValidToken(t *testing.T) {
	e := newEnv(t, nil)
	ctx := context.Background()
	// Forged token.
	forged := reservation.Token{ID: 99, Host: e.host.LOID(), Vault: e.vault.LOID(),
		Duration: time.Hour, MAC: []byte("forged")}
	if _, err := e.host.StartObject(ctx, proto.StartObjectArgs{
		Token: forged, Class: classL, Instances: instances(1),
	}); !errors.Is(err, reservation.ErrInvalidToken) {
		t.Errorf("forged token: %v", err)
	}
	// One-shot token consumed by first start.
	tok := e.reserve(t, reservation.OneShotTimesharing)
	if _, err := e.host.StartObject(ctx, proto.StartObjectArgs{
		Token: *tok, Class: classL, Instances: instances(1)[:1],
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.host.StartObject(ctx, proto.StartObjectArgs{
		Token: *tok, Class: classL, Instances: []loid.LOID{{Domain: "uva", Class: "W", Instance: 500}},
	}); !errors.Is(err, reservation.ErrInvalidToken) {
		t.Errorf("reused one-shot: %v", err)
	}
	// No instances is an error.
	tok2 := e.reserve(t, reservation.ReusableTimesharing)
	if _, err := e.host.StartObject(ctx, proto.StartObjectArgs{Token: *tok2, Class: classL}); err == nil {
		t.Error("empty instance list accepted")
	}
}

func TestPolicyRefusal(t *testing.T) {
	e := newEnv(t, func(c *Config) {
		c.Policy = RefuseDomains("evil", "worse")
	})
	_, err := e.host.MakeReservation(context.Background(), proto.MakeReservationArgs{
		Requester: loid.LOID{Domain: "evil", Class: "Sched", Instance: 1},
		Vault:     e.vault.LOID(), Type: reservation.ReusableTimesharing, Duration: time.Hour,
	})
	if !errors.Is(err, ErrPolicy) {
		t.Errorf("refused domain: %v", err)
	}
	// Friendly domain passes.
	if _, err := e.host.MakeReservation(context.Background(), proto.MakeReservationArgs{
		Requester: loid.LOID{Domain: "uva", Class: "Sched", Instance: 1},
		Vault:     e.vault.LOID(), Type: reservation.ReusableTimesharing, Duration: time.Hour,
	}); err != nil {
		t.Errorf("friendly domain: %v", err)
	}
}

func TestVaultReachability(t *testing.T) {
	e := newEnv(t, nil)
	ctx := context.Background()
	// Unknown vault.
	ghost := loid.LOID{Domain: "uva", Class: "Vault", Instance: 99}
	if _, err := e.host.MakeReservation(ctx, proto.MakeReservationArgs{
		Vault: ghost, Type: reservation.ReusableTimesharing, Duration: time.Hour,
	}); !errors.Is(err, ErrVaultUnreachable) {
		t.Errorf("unknown vault: %v", err)
	}
	// Wrong-zone vault: in the host's list but zone-incompatible.
	rt2 := e.rt
	farVault := vault.New(rt2, vault.Config{Zone: "far-zone"})
	e2 := newEnv(t, func(c *Config) {
		c.Vaults = []loid.LOID{farVault.LOID()}
	})
	// e2 has its own runtime; bind the far vault into it.
	if _, ok := e2.rt.Lookup(farVault.LOID()); !ok {
		// farVault lives in e.rt; register there and call across —
		// simplest is registering the vault object into e2's runtime.
		e2.rt.Register(farVault)
	}
	if _, err := e2.host.MakeReservation(ctx, proto.MakeReservationArgs{
		Vault: farVault.LOID(), Type: reservation.ReusableTimesharing, Duration: time.Hour,
	}); !errors.Is(err, ErrVaultUnreachable) {
		t.Errorf("incompatible zone: %v", err)
	}
	// Vault down (not bound anywhere).
	e3 := newEnv(t, func(c *Config) {
		c.Vaults = []loid.LOID{ghost}
	})
	if _, err := e3.host.MakeReservation(ctx, proto.MakeReservationArgs{
		Vault: ghost, Type: reservation.ReusableTimesharing, Duration: time.Hour,
	}); !errors.Is(err, ErrVaultUnreachable) {
		t.Errorf("vault down: %v", err)
	}
}

func TestCheckAndCancelReservation(t *testing.T) {
	e := newEnv(t, nil)
	tok := e.reserve(t, reservation.ReusableSpaceSharing)
	if err := e.host.CheckReservation(tok); err != nil {
		t.Errorf("Check: %v", err)
	}
	if err := e.host.CancelReservation(tok); err != nil {
		t.Errorf("Cancel: %v", err)
	}
	if err := e.host.CheckReservation(tok); err == nil {
		t.Error("cancelled token checks OK")
	}
}

func TestDeactivateAndReactivateWithState(t *testing.T) {
	e := newEnv(t, nil)
	ctx := context.Background()
	tok := e.reserve(t, reservation.ReusableTimesharing)
	inst := instances(1)[0]
	if _, err := e.host.StartObject(ctx, proto.StartObjectArgs{
		Token: *tok, Class: classL, Instances: []loid.LOID{inst},
	}); err != nil {
		t.Fatal(err)
	}
	// Mutate the object's state, then deactivate.
	if _, err := e.rt.Call(ctx, inst, "set", []string{"answer", "42"}); err != nil {
		t.Fatal(err)
	}
	e.rt.Call(ctx, inst, "ping", nil)
	o, vaultL, err := e.host.DeactivateObject(ctx, inst)
	if err != nil {
		t.Fatal(err)
	}
	if vaultL != e.vault.LOID() {
		t.Errorf("OPR stored in %v", vaultL)
	}
	if e.host.RunningCount() != 0 {
		t.Error("object still running after deactivate")
	}
	if _, err := e.rt.Call(ctx, inst, "ping", nil); !errors.Is(err, orb.ErrNotBound) {
		t.Errorf("deactivated object answers: %v", err)
	}
	// The OPR is in the vault.
	stored, err := e.vault.Retrieve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if stored.Version != o.Version {
		t.Errorf("vault holds version %d, deactivate returned %d", stored.Version, o.Version)
	}

	// Reactivate on the same host from the OPR (migration's second half).
	tok2 := e.reserve(t, reservation.ReusableTimesharing)
	if _, err := e.host.StartObject(ctx, proto.StartObjectArgs{
		Token: *tok2, Class: classL, Instances: []loid.LOID{inst}, State: stored,
	}); err != nil {
		t.Fatal(err)
	}
	got, err := e.rt.Call(ctx, inst, "get", "answer")
	if err != nil || got != "42" {
		t.Errorf("state after reactivation: %v %v", got, err)
	}
	// Reactivation with multiple instances is rejected.
	if _, err := e.host.StartObject(ctx, proto.StartObjectArgs{
		Token: *tok2, Class: classL, Instances: instances(2), State: stored,
	}); err == nil {
		t.Error("multi-instance reactivation accepted")
	}
}

func TestDeactivateUnknownObject(t *testing.T) {
	e := newEnv(t, nil)
	if _, _, err := e.host.DeactivateObject(context.Background(), instances(1)[0]); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("deactivate unknown: %v", err)
	}
}

func TestKillDeletesOPR(t *testing.T) {
	e := newEnv(t, nil)
	ctx := context.Background()
	tok := e.reserve(t, reservation.ReusableTimesharing)
	inst := instances(1)[0]
	e.host.StartObject(ctx, proto.StartObjectArgs{Token: *tok, Class: classL, Instances: []loid.LOID{inst}})
	// Deactivate stores an OPR; reactivate; kill should remove the OPR.
	o, _, _ := e.host.DeactivateObject(ctx, inst)
	e.host.StartObject(ctx, proto.StartObjectArgs{Token: *tok, Class: classL, Instances: []loid.LOID{inst}, State: o})
	if err := e.host.KillObject(ctx, inst); err != nil {
		t.Fatal(err)
	}
	if _, err := e.vault.Retrieve(inst); !errors.Is(err, vault.ErrNotFound) {
		t.Errorf("OPR survives kill: %v", err)
	}
}

func TestAttributesAndReassess(t *testing.T) {
	e := newEnv(t, func(c *Config) {
		c.ExtraAttrs = []attr.Pair{{Name: "host_charging", Value: attr.String("off-peak-only")}}
	})
	ctx := context.Background()
	m := attr.FromPairs(e.host.Attributes())
	for _, name := range []string{"host_arch", "host_os_name", "host_os_version", "host_cpus",
		"host_memory_mb", "host_mem_available_mb", "host_zone", "host_domain",
		"host_cost_per_cpu", "host_load", "host_running_objects", "host_queue_length",
		"host_is_batch", "host_loid", "host_charging"} {
		if _, ok := m[name]; !ok {
			t.Errorf("attribute %s missing", name)
		}
	}
	if m["host_arch"].Str() != "sparc" || m["host_is_batch"].BoolVal() {
		t.Error("attribute values wrong")
	}

	tok := e.reserve(t, reservation.ReusableTimesharing)
	e.host.StartObject(ctx, proto.StartObjectArgs{Token: *tok, Class: classL, Instances: instances(2)})
	e.host.SetExternalLoad(0.5)
	e.host.Reassess(ctx)
	m = attr.FromPairs(e.host.Attributes())
	if got := m["host_load"].FloatVal(); got != 0.5+2.0/4.0 {
		t.Errorf("host_load = %v", got)
	}
	if m["host_running_objects"].IntVal() != 2 {
		t.Errorf("host_running_objects = %v", m["host_running_objects"])
	}
	if m["host_mem_available_mb"].IntVal() != 512-128 {
		t.Errorf("host_mem_available_mb = %v", m["host_mem_available_mb"])
	}
	if e.host.Load() != 1.0 {
		t.Errorf("Load() = %v", e.host.Load())
	}
}

func TestTriggerOutcallToMonitor(t *testing.T) {
	e := newEnv(t, nil)
	ctx := context.Background()

	// A fake Monitor object records notifications.
	notified := make(chan proto.NotifyArgs, 1)
	mon := orb.NewServiceObject(e.rt.Mint("Monitor"))
	mon.Handle(proto.MethodNotify, func(_ context.Context, arg any) (any, error) {
		notified <- arg.(proto.NotifyArgs)
		return proto.Ack{}, nil
	})
	e.rt.Register(mon)

	if _, err := e.rt.Call(ctx, e.host.LOID(), proto.MethodDefineTrigger,
		proto.DefineTriggerArgs{Name: "overload", Guard: "$host_load > 0.8"}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.rt.Call(ctx, e.host.LOID(), proto.MethodRegisterOutcall,
		proto.RegisterOutcallArgs{Trigger: "overload", Monitor: mon.LOID()}); err != nil {
		t.Fatal(err)
	}

	e.host.SetExternalLoad(0.2)
	e.host.Reassess(ctx)
	select {
	case ev := <-notified:
		t.Fatalf("fired below threshold: %+v", ev)
	default:
	}

	e.host.SetExternalLoad(0.95)
	e.host.Reassess(ctx)
	select {
	case ev := <-notified:
		if ev.Source != e.host.LOID() || ev.Trigger != "overload" {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no outcall")
	}
}

func TestPushModelToCollectionStub(t *testing.T) {
	e := newEnv(t, nil)
	ctx := context.Background()
	got := make(chan proto.UpdateArgs, 1)
	coll := orb.NewServiceObject(e.rt.Mint("Collection"))
	coll.Handle(proto.MethodUpdateCollectionEntry, func(_ context.Context, arg any) (any, error) {
		got <- arg.(proto.UpdateArgs)
		return proto.Ack{}, nil
	})
	e.rt.Register(coll)

	e.host.PushTo(coll.LOID(), "secret")
	e.host.SetExternalLoad(0.3)
	e.host.Reassess(ctx)
	select {
	case u := <-got:
		if u.Member != e.host.LOID() || u.Credential != "secret" {
			t.Errorf("update = %+v", u)
		}
		m := attr.FromPairs(u.Attrs)
		if m["host_load"].FloatVal() != 0.3 {
			t.Errorf("pushed load = %v", m["host_load"])
		}
	default:
		t.Fatal("no push")
	}
}

func TestBatchQueueHost(t *testing.T) {
	q := batchq.New(batchq.Config{Name: "ll", Slots: 1, DispatchDelay: 10 * time.Millisecond})
	defer q.Close()
	e := newEnv(t, func(c *Config) { c.Queue = q })
	ctx := context.Background()

	m := attr.FromPairs(e.host.Attributes())
	if !m["host_is_batch"].BoolVal() {
		t.Error("host_is_batch should be true")
	}

	tok := e.reserve(t, reservation.ReusableTimesharing)
	inst := instances(1)[0]
	t0 := time.Now()
	started, err := e.host.StartObject(ctx, proto.StartObjectArgs{
		Token: *tok, Class: classL, Instances: []loid.LOID{inst},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 10*time.Millisecond {
		t.Errorf("batch start returned in %v, before dispatch delay", d)
	}
	if len(started) != 1 {
		t.Fatalf("started %v", started)
	}
	if res, err := e.rt.Call(ctx, inst, "ping", nil); err != nil || res != "pong" {
		t.Errorf("ping: %v %v", res, err)
	}

	// With the slot occupied, a second start blocks; a short ctx cancels
	// it and the queued job is withdrawn.
	ctx2, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	inst2 := loid.LOID{Domain: "uva", Class: "Worker", Instance: 777}
	if _, err := e.host.StartObject(ctx2, proto.StartObjectArgs{
		Token: *tok, Class: classL, Instances: []loid.LOID{inst2},
	}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("blocked batch start: %v", err)
	}
	if q.QueueLength() != 0 {
		t.Errorf("cancelled job left in queue: %d", q.QueueLength())
	}

	// Killing the first frees the slot for a new start.
	if err := e.host.KillObject(ctx, inst); err != nil {
		t.Fatal(err)
	}
	if _, err := e.host.StartObject(ctx, proto.StartObjectArgs{
		Token: *tok, Class: classL, Instances: []loid.LOID{inst2},
	}); err != nil {
		t.Errorf("start after slot freed: %v", err)
	}
}

func TestOrbProtocolEndToEnd(t *testing.T) {
	e := newEnv(t, nil)
	ctx := context.Background()

	res, err := e.rt.Call(ctx, e.host.LOID(), proto.MethodMakeReservation, proto.MakeReservationArgs{
		Vault: e.vault.LOID(), Type: reservation.ReusableTimesharing, Duration: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	tok := res.(proto.MakeReservationReply).Token

	res, err = e.rt.Call(ctx, e.host.LOID(), proto.MethodCheckReservation, proto.TokenArgs{Token: tok})
	if err != nil || !res.(proto.BoolReply).OK {
		t.Errorf("check: %v %v", res, err)
	}

	inst := instances(1)[0]
	res, err = e.rt.Call(ctx, e.host.LOID(), proto.MethodStartObject, proto.StartObjectArgs{
		Token: tok, Class: classL, Instances: []loid.LOID{inst},
	})
	if err != nil || len(res.(proto.StartObjectReply).Started) != 1 {
		t.Fatalf("start: %v %v", res, err)
	}

	res, err = e.rt.Call(ctx, e.host.LOID(), proto.MethodGetCompatibleVaults, nil)
	if err != nil || len(res.(proto.CompatibleVaultsReply).Vaults) != 1 {
		t.Errorf("vaults: %v %v", res, err)
	}
	res, err = e.rt.Call(ctx, e.host.LOID(), proto.MethodVaultOK, proto.VaultOKArgs{Vault: e.vault.LOID()})
	if err != nil || !res.(proto.BoolReply).OK {
		t.Errorf("vault_OK: %v %v", res, err)
	}
	res, err = e.rt.Call(ctx, e.host.LOID(), proto.MethodGetAttributes, nil)
	if err != nil || len(res.(proto.AttributesReply).Attrs) == 0 {
		t.Errorf("attrs: %v %v", res, err)
	}

	res, err = e.rt.Call(ctx, e.host.LOID(), proto.MethodDeactivateObject, proto.ObjectArgs{Object: inst})
	if err != nil {
		t.Fatal(err)
	}
	if res.(proto.DeactivateReply).Vault != e.vault.LOID() {
		t.Errorf("deactivate: %+v", res)
	}
	if _, err := e.rt.Call(ctx, e.host.LOID(), proto.MethodCancelReservation, proto.TokenArgs{Token: tok}); err != nil {
		t.Errorf("cancel: %v", err)
	}

	// Bad argument types surface as errors, not panics.
	for _, method := range []string{proto.MethodMakeReservation, proto.MethodCheckReservation,
		proto.MethodCancelReservation, proto.MethodStartObject, proto.MethodKillObject,
		proto.MethodDeactivateObject, proto.MethodVaultOK, proto.MethodDefineTrigger,
		proto.MethodRegisterOutcall} {
		if _, err := e.rt.Call(ctx, e.host.LOID(), method, 3.14); err == nil {
			t.Errorf("method %s accepted bad arg type", method)
		}
	}
}

func TestStartReassessing(t *testing.T) {
	e := newEnv(t, nil)
	stop := e.host.StartReassessing(5 * time.Millisecond)
	defer stop()
	e.host.SetExternalLoad(0.7)
	deadline := time.Now().Add(2 * time.Second)
	for {
		m := attr.FromPairs(e.host.Attributes())
		if m["host_load"].FloatVal() == 0.7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic reassessment never ran")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	stop() // idempotent
}

func TestAccessorsAndGenericObject(t *testing.T) {
	e := newEnv(t, nil)
	ctx := context.Background()
	if e.host.Runtime() != e.rt {
		t.Error("Runtime()")
	}
	if e.host.Zone() != "z1" {
		t.Errorf("Zone = %q", e.host.Zone())
	}
	if e.host.AttrSet() == nil || e.host.Triggers() == nil {
		t.Error("AttrSet/Triggers nil")
	}

	tok := e.reserve(t, reservation.ReusableTimesharing)
	inst := instances(1)[0]
	e.host.StartObject(ctx, proto.StartObjectArgs{Token: *tok, Class: classL, Instances: []loid.LOID{inst}})
	ri := e.host.RunningInstances()
	if len(ri) != 1 || ri[0] != inst {
		t.Errorf("RunningInstances = %v", ri)
	}

	obj, _ := e.rt.Lookup(inst)
	g := obj.(*GenericObject)
	if g.Class() != classL {
		t.Errorf("Class = %v", g.Class())
	}
	e.rt.Call(ctx, inst, "ping", nil)
	e.rt.Call(ctx, inst, "ping", nil)
	if g.Pings() != 2 {
		t.Errorf("Pings = %d", g.Pings())
	}
	if g.Generation() != 0 {
		t.Errorf("Generation = %d", g.Generation())
	}
	// Deactivate + reactivate: pings persist, generation increments.
	o, _, err := e.host.DeactivateObject(ctx, inst)
	if err != nil {
		t.Fatal(err)
	}
	e.host.StartObject(ctx, proto.StartObjectArgs{Token: *tok, Class: classL,
		Instances: []loid.LOID{inst}, State: o})
	obj2, _ := e.rt.Lookup(inst)
	g2 := obj2.(*GenericObject)
	if g2.Pings() != 2 || g2.Generation() != 1 {
		t.Errorf("after reactivation: pings=%d gen=%d", g2.Pings(), g2.Generation())
	}
	// Bad args to generic object methods error.
	if _, err := e.rt.Call(ctx, inst, "get", 42); err == nil {
		t.Error("get with non-string key accepted")
	}
	if _, err := e.rt.Call(ctx, inst, "set", "notapair"); err == nil {
		t.Error("set with bad arg accepted")
	}
}

func TestSetClockPropagates(t *testing.T) {
	e := newEnv(t, nil)
	fixed := time.Date(1999, 4, 12, 0, 0, 0, 0, time.UTC)
	e.host.SetClock(func() time.Time { return fixed })
	tok := e.reserve(t, reservation.ReusableTimesharing)
	if !tok.Start.Equal(fixed) {
		t.Errorf("reservation start = %v, want %v", tok.Start, fixed)
	}
}

func TestDrainDeactivatesEverything(t *testing.T) {
	e := newEnv(t, nil)
	ctx := context.Background()
	tok := e.reserve(t, reservation.ReusableTimesharing)
	insts := instances(3)
	if _, err := e.host.StartObject(ctx, proto.StartObjectArgs{
		Token: *tok, Class: classL, Instances: insts,
	}); err != nil {
		t.Fatal(err)
	}
	// Give each object distinct state.
	for i, inst := range insts {
		if _, err := e.rt.Call(ctx, inst, "set", []string{"id", string(rune('a' + i))}); err != nil {
			t.Fatal(err)
		}
	}
	drained, err := e.host.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(drained) != 3 || e.host.RunningCount() != 0 {
		t.Fatalf("drained %v, running %d", drained, e.host.RunningCount())
	}
	// Every OPR is in the vault; reactivation restores state.
	for i, inst := range insts {
		o, verr := e.vault.Retrieve(inst)
		if verr != nil {
			t.Fatalf("OPR for %v: %v", inst, verr)
		}
		if _, err := e.host.StartObject(ctx, proto.StartObjectArgs{
			Token: *tok, Class: classL, Instances: []loid.LOID{inst}, State: o,
		}); err != nil {
			t.Fatal(err)
		}
		got, gerr := e.rt.Call(ctx, inst, "get", "id")
		if gerr != nil || got != string(rune('a'+i)) {
			t.Errorf("state of %v after drain+restart: %v %v", inst, got, gerr)
		}
	}
}

func TestDrainEmptyHost(t *testing.T) {
	e := newEnv(t, nil)
	drained, err := e.host.Drain(context.Background())
	if err != nil || len(drained) != 0 {
		t.Errorf("empty drain: %v %v", drained, err)
	}
}

func TestDrainReportsVaultFailure(t *testing.T) {
	e := newEnv(t, nil)
	ctx := context.Background()
	tok := e.reserve(t, reservation.ReusableTimesharing)
	inst := instances(1)[0]
	e.host.StartObject(ctx, proto.StartObjectArgs{Token: *tok, Class: classL, Instances: []loid.LOID{inst}})
	// Vault disappears: deactivation cannot store the OPR.
	e.rt.Unregister(e.vault.LOID())
	if _, err := e.host.Drain(ctx); err == nil {
		t.Error("drain with dead vault succeeded")
	}
	// The object is still running (deactivation aborted safely).
	if e.host.RunningCount() != 1 {
		t.Errorf("running = %d", e.host.RunningCount())
	}
}
