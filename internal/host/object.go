package host

import (
	"context"
	"fmt"
	"sync"

	"legion/internal/loid"
	"legion/internal/opr"
	"legion/internal/orb"
)

// GenericObject is the default activated user object: a minimal Legion
// object that holds mutable state, answers pings, and supports the
// automatic shutdown/restart protocol (opr.Persistent) that makes every
// Legion object migratable.
//
// Applications with richer behaviour install their own Activator; the
// examples and experiments mostly need an object whose state provably
// survives deactivation, migration, and reactivation.
type GenericObject struct {
	*orb.ServiceObject
	class loid.LOID

	mu      sync.Mutex
	payload map[string]string
	pings   int64
	// generation counts reactivations, proving state continuity across
	// migrations in tests.
	generation int
}

// genericState is the GenericObject's OPR payload.
type genericState struct {
	Payload    map[string]string
	Pings      int64
	Generation int
}

func init() { orb.RegisterWireType(genericState{}) }

// NewGenericObject creates a GenericObject for the instance, restoring
// from the OPR when non-nil.
func NewGenericObject(instance, class loid.LOID, state *opr.OPR) (*GenericObject, error) {
	g := &GenericObject{
		ServiceObject: orb.NewServiceObject(instance),
		class:         class,
		payload:       make(map[string]string),
	}
	if state != nil {
		if err := g.RestoreState(state); err != nil {
			return nil, err
		}
	}
	g.Handle("ping", func(_ context.Context, _ any) (any, error) {
		g.mu.Lock()
		g.pings++
		g.mu.Unlock()
		return "pong", nil
	})
	g.Handle("get", func(_ context.Context, arg any) (any, error) {
		key, ok := arg.(string)
		if !ok {
			return nil, fmt.Errorf("object: want string key, got %T", arg)
		}
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.payload[key], nil
	})
	g.Handle("set", func(_ context.Context, arg any) (any, error) {
		kv, ok := arg.([]string)
		if !ok || len(kv) != 2 {
			return nil, fmt.Errorf("object: want [key, value], got %T", arg)
		}
		g.mu.Lock()
		g.payload[kv[0]] = kv[1]
		g.mu.Unlock()
		return nil, nil
	})
	return g, nil
}

// Class returns the object's class LOID.
func (g *GenericObject) Class() loid.LOID { return g.class }

// Pings returns how many pings the object has served (across
// reactivations, since the count persists in the OPR).
func (g *GenericObject) Pings() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.pings
}

// Generation returns how many times this object has been reactivated
// from an OPR.
func (g *GenericObject) Generation() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.generation
}

// SaveState implements opr.Persistent.
func (g *GenericObject) SaveState() (any, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	p := make(map[string]string, len(g.payload))
	for k, v := range g.payload {
		p[k] = v
	}
	return genericState{Payload: p, Pings: g.pings, Generation: g.generation}, nil
}

// RestoreState implements opr.Persistent.
func (g *GenericObject) RestoreState(state *opr.OPR) error {
	var s genericState
	if err := state.Decode(&s); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.payload = s.Payload
	if g.payload == nil {
		g.payload = make(map[string]string)
	}
	g.pings = s.Pings
	g.generation = s.Generation + 1
	return nil
}
