package host

import (
	"context"
	"fmt"
	"sync"

	"legion/internal/loid"
	"legion/internal/opr"
	"legion/internal/orb"
)

// GenericObject is the default activated user object: a minimal Legion
// object that holds mutable state, answers pings, and supports the
// automatic shutdown/restart protocol (opr.Persistent) that makes every
// Legion object migratable.
//
// Applications with richer behaviour install their own Activator; the
// examples and experiments mostly need an object whose state provably
// survives deactivation, migration, and reactivation.
type GenericObject struct {
	*orb.ServiceObject
	class loid.LOID

	mu      sync.Mutex
	payload map[string]string
	pings   int64
	// generation counts reactivations, proving state continuity across
	// migrations in tests.
	generation int
}

// genericState is the GenericObject's OPR payload.
type genericState struct {
	Payload    map[string]string
	Pings      int64
	Generation int
}

func init() { orb.RegisterWireType(genericState{}) }

// genericMethods is the class-wide dispatch table all GenericObjects
// share. Placement experiments create (and destroy) one GenericObject
// per placed instance — millions per scale run — so the per-instance
// closures this replaces were the dominant activation allocation. The
// payload map is likewise deferred until the first "set".
var (
	genericTableOnce sync.Once
	genericTable     *orb.DispatchTable
)

func genericMethods() *orb.DispatchTable {
	genericTableOnce.Do(func() {
		t := orb.NewDispatchTable()
		t.Handle("ping", func(_ context.Context, recv, _ any) (any, error) {
			g := recv.(*GenericObject)
			g.mu.Lock()
			g.pings++
			g.mu.Unlock()
			return "pong", nil
		})
		t.Handle("get", func(_ context.Context, recv, arg any) (any, error) {
			key, ok := arg.(string)
			if !ok {
				return nil, fmt.Errorf("object: want string key, got %T", arg)
			}
			g := recv.(*GenericObject)
			g.mu.Lock()
			defer g.mu.Unlock()
			return g.payload[key], nil
		})
		t.Handle("set", func(_ context.Context, recv, arg any) (any, error) {
			kv, ok := arg.([]string)
			if !ok || len(kv) != 2 {
				return nil, fmt.Errorf("object: want [key, value], got %T", arg)
			}
			g := recv.(*GenericObject)
			g.mu.Lock()
			if g.payload == nil {
				g.payload = make(map[string]string)
			}
			g.payload[kv[0]] = kv[1]
			g.mu.Unlock()
			return nil, nil
		})
		genericTable = t
	})
	return genericTable
}

// NewGenericObject creates a GenericObject for the instance, restoring
// from the OPR when non-nil.
func NewGenericObject(instance, class loid.LOID, state *opr.OPR) (*GenericObject, error) {
	g := &GenericObject{
		ServiceObject: orb.NewSharedServiceObject(instance, genericMethods(), nil),
		class:         class,
	}
	g.BindReceiver(g)
	if state != nil {
		if err := g.RestoreState(state); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Class returns the object's class LOID.
func (g *GenericObject) Class() loid.LOID { return g.class }

// Pings returns how many pings the object has served (across
// reactivations, since the count persists in the OPR).
func (g *GenericObject) Pings() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.pings
}

// Generation returns how many times this object has been reactivated
// from an OPR.
func (g *GenericObject) Generation() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.generation
}

// SaveState implements opr.Persistent.
func (g *GenericObject) SaveState() (any, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	var p map[string]string
	if len(g.payload) > 0 {
		p = make(map[string]string, len(g.payload))
		for k, v := range g.payload {
			p[k] = v
		}
	}
	return genericState{Payload: p, Pings: g.pings, Generation: g.generation}, nil
}

// RestoreState implements opr.Persistent.
func (g *GenericObject) RestoreState(state *opr.OPR) error {
	var s genericState
	if err := state.Decode(&s); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.payload = s.Payload
	g.pings = s.Pings
	g.generation = s.Generation + 1
	return nil
}
