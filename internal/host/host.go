// Package host implements Legion Host objects.
//
// The paper (§2.1): "Host Objects encapsulate machine capabilities (e.g.,
// a processor and its associated memory) and are responsible for
// instantiating objects on the processor. In this way, the Host acts as
// an arbiter for the machine's capabilities."
//
// A Host implements the Table 1 resource management interface —
// reservation management (make/check/cancel), object management
// (startObject/killObject/deactivateObject), and information reporting
// (get_compatible_vaults/vault_OK plus the attribute database) — and the
// RGE trigger calls the Monitor uses (§3.5).
//
// Two host flavours are provided, matching the paper:
//
//   - the Unix Host (Config.Queue == nil): objects start immediately; the
//     Host "maintains a reservation table in the Host Object, because the
//     Unix OS has no notion of reservations";
//   - the Batch Queue Host (Config.Queue != nil): object activations are
//     submitted to a simulated queue management system (package batchq,
//     standing in for LoadLeveler/Codine/Condor) and start when the queue
//     dispatches them; reservations are still kept in the Host, "in a
//     fashion similar to the Unix Host Object".
//
// Site autonomy: every request passes the Host's local placement policy
// before any resource is committed ("requests are made of resource
// guardians, who have final authority over what requests are honored").
package host

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"legion/internal/attr"
	"legion/internal/batchq"
	"legion/internal/loid"
	"legion/internal/opr"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/reservation"
	"legion/internal/rge"
	"legion/internal/telemetry"
)

// Errors returned by Host operations.
var (
	// ErrPolicy reports refusal by the Host's local placement policy.
	ErrPolicy = errors.New("host: refused by local placement policy")
	// ErrVaultUnreachable reports that the requested vault is not
	// compatible with or reachable from this host.
	ErrVaultUnreachable = errors.New("host: vault unreachable or incompatible")
	// ErrUnknownObject reports a kill/deactivate of an object this host
	// is not running.
	ErrUnknownObject = errors.New("host: object not running here")
	// ErrQueueRejected reports a batch-queue submission failure.
	ErrQueueRejected = errors.New("host: batch queue rejected job")
)

// PolicyFunc is a Host's local placement policy: it may refuse a
// reservation request before resources are considered. Returning a non-nil
// error refuses the request; wrap or return ErrPolicy.
type PolicyFunc func(req proto.MakeReservationArgs) error

// RefuseDomains returns a policy that refuses requesters from the given
// administrative domains — the paper's example of exported autonomy
// information.
func RefuseDomains(domains ...string) PolicyFunc {
	set := make(map[string]bool, len(domains))
	for _, d := range domains {
		set[d] = true
	}
	return func(req proto.MakeReservationArgs) error {
		if set[req.Requester.Domain] {
			return fmt.Errorf("%w: domain %q refused", ErrPolicy, req.Requester.Domain)
		}
		return nil
	}
}

// LoadShedPolicy returns a load-aware placement policy: once the host's
// reservation occupancy (live reservations / MaxShared) reaches
// watermark (0..1], requests below minPriority are refused with a typed
// proto.ErrOverload shed. Higher-priority requests still get the
// remaining capacity — the Table 2 admission rules are the hard limit —
// so under saturation the host degrades by shedding its least important
// work first instead of failing everything at the cliff. Combine with
// other policies via ChainPolicies.
func (h *Host) LoadShedPolicy(watermark float64, minPriority int) PolicyFunc {
	return func(req proto.MakeReservationArgs) error {
		if req.Priority >= minPriority {
			return nil
		}
		occ := float64(h.table.Active()) / float64(h.cfg.MaxShared)
		if occ >= watermark {
			return fmt.Errorf("%w: occupancy %.2f >= watermark %.2f, priority %d < %d",
				proto.ErrOverload, occ, watermark, req.Priority, minPriority)
		}
		return nil
	}
}

// ChainPolicies composes placement policies: the first refusal wins.
func ChainPolicies(policies ...PolicyFunc) PolicyFunc {
	return func(req proto.MakeReservationArgs) error {
		for _, p := range policies {
			if p == nil {
				continue
			}
			if err := p(req); err != nil {
				return err
			}
		}
		return nil
	}
}

// Activator constructs the runtime object for an activated instance.
// state is nil for fresh starts and carries the OPR on reactivation.
type Activator func(instance, class loid.LOID, state *opr.OPR) (orb.Object, error)

// Config parameterizes a Host.
type Config struct {
	// Arch, OS, OSVersion describe the machine for implementation
	// matching ("architecture, OS, and load average" and beyond).
	Arch      string
	OS        string
	OSVersion string
	// CPUs is the processor count; it bounds default reservation
	// multiplexing and scales the load model.
	CPUs int
	// MemoryMB is the machine's memory, exported via attributes.
	MemoryMB int
	// Zone is the reachability zone used for vault compatibility.
	Zone string
	// CostPerCPU is the advertised charge per CPU-second, exported so
	// schedulers can weigh cost (§3.1's "amount charged per CPU cycle").
	CostPerCPU float64
	// Price is the economy layer's charge per instance-hour, exported as
	// $host_price and billed (price × reservation duration) against the
	// requesting tenant's ledger account at grant time (DESIGN.md §15).
	// Zero means the host is free.
	Price float64
	// Spot marks the host as preemptible spot capacity ($host_class =
	// "spot" instead of "reserved"): typically cheaper, but its instances
	// are the first victims when the preempting rebalance policy must
	// defend a paying tenant's deadline.
	Spot bool
	// Speed is the machine's relative benchmark speed (1.0 = baseline),
	// exported as $host_speed so deadline-aware schedulers can estimate
	// completion time, not just occupancy. Zero or negative exports 1.0.
	Speed float64
	// Vaults are the vault objects reachable from this host.
	Vaults []loid.LOID
	// Queue, when non-nil, makes this a Batch Queue Host.
	Queue *batchq.Queue
	// MaxShared bounds concurrently overlapping timesharing
	// reservations; zero defaults to 4x CPUs.
	MaxShared int
	// ReservationTimeout is the default confirmation timeout for
	// instantaneous reservations; zero defaults to 30 seconds.
	ReservationTimeout time.Duration
	// Policy is the local placement policy; nil accepts everything.
	Policy PolicyFunc
	// Activator builds activated objects; nil uses NewGenericObject.
	Activator Activator
	// ExtraAttrs are merged into the attribute database at construction,
	// letting sites export arbitrary descriptive information.
	ExtraAttrs []attr.Pair
}

// runningObject tracks one active instance.
type runningObject struct {
	class   loid.LOID
	vault   loid.LOID
	version uint64
	job     batchq.JobID // batch hosts only
	queued  bool
	obj     orb.Object
	// tok is the reservation the object was started under. For one-shot
	// (non-reusable) reservations the paper specifies "a typical
	// timesharing system that expires a reservation when the job is
	// done": when the last object under such a token terminates, the
	// host releases the reservation.
	tok reservation.Token
}

// Host is a Legion Host object. It is safe for concurrent use.
type Host struct {
	*orb.ServiceObject
	rt    *orb.Runtime
	cfg   Config
	attrs *attr.Set
	table *reservation.Table
	trigs *rge.TriggerSet

	mu      sync.Mutex
	policy  PolicyFunc // live placement policy (SetPolicy may swap it)
	running map[loid.LOID]*runningObject
	extLoad float64
	pushTo  []pushTarget
	now     func() time.Time
	// preempted records reservation tokens the rebalancer's preempting
	// policy deliberately evicted. If the eviction's cancel RPC is lost
	// (chaos faults) the token can linger in the table with no backing
	// object; ReservationLeaks must not report those as migration leaks.
	preempted map[uint64]bool

	startsTotal  int64
	reassessions int64

	met hostMetrics
}

// hostMetrics holds the Host's telemetry handles, cached at New.
type hostMetrics struct {
	spans     *telemetry.SpanLog
	domain    string
	granted   *telemetry.Counter
	refused   *telemetry.Counter
	shed      *telemetry.Counter
	starts    *telemetry.Counter
	startTime *telemetry.Histogram
}

func newHostMetrics(rt *orb.Runtime) hostMetrics {
	reg := rt.Metrics()
	return hostMetrics{
		spans:     reg.Spans(),
		domain:    rt.Domain(),
		granted:   reg.Counter("legion_host_reservations_granted_total"),
		refused:   reg.Counter("legion_host_reservations_refused_total"),
		shed:      reg.Counter("legion_host_reservations_shed_total"),
		starts:    reg.Counter("legion_host_object_starts_total"),
		startTime: reg.Histogram("legion_host_start_object_seconds", telemetry.LatencyBuckets),
	}
}

// pushTarget is a Collection this host pushes state to on reassessment.
type pushTarget struct {
	collection loid.LOID
	credential string
}

// New creates a Host, registers its methods and itself with rt.
func New(rt *orb.Runtime, cfg Config) *Host {
	if cfg.CPUs < 1 {
		cfg.CPUs = 1
	}
	if cfg.MaxShared == 0 {
		if cfg.Queue != nil {
			// A Batch Queue Host can run only as many objects as the
			// queue has slots; admitting more reservations than that
			// would leave StartObject calls blocked behind full slots.
			cfg.MaxShared = cfg.Queue.Config().Slots
		} else {
			cfg.MaxShared = cfg.CPUs * 4
		}
	}
	if cfg.ReservationTimeout == 0 {
		cfg.ReservationTimeout = 30 * time.Second
	}
	if cfg.Zone == "" {
		cfg.Zone = rt.Domain()
	}
	if cfg.Activator == nil {
		cfg.Activator = func(instance, class loid.LOID, state *opr.OPR) (orb.Object, error) {
			return NewGenericObject(instance, class, state)
		}
	}
	h := &Host{
		ServiceObject: orb.NewSharedServiceObject(rt.Mint("Host"), hostMethods(), nil),
		rt:            rt,
		cfg:           cfg,
		policy:        cfg.Policy,
		table:         nil, // set below, needs LOID
		running:       make(map[loid.LOID]*runningObject),
		now:           rt.Clock().Now,
	}
	h.BindReceiver(h)
	h.table = reservation.NewTable(h.LOID(), cfg.MaxShared, cfg.ReservationTimeout)
	h.met = newHostMetrics(rt)
	// All Hosts on one runtime share the aggregate occupancy gauge; the
	// table pushes deltas into it on every grant/cancel/expiry.
	h.table.SetGauge(rt.Metrics().Gauge("legion_reservations_active"))
	h.trigs = rge.NewTriggerSet(h.LOID())
	h.attrs = attr.NewSet(
		attr.Pair{Name: "host_arch", Value: attr.String(cfg.Arch)},
		attr.Pair{Name: "host_os_name", Value: attr.String(cfg.OS)},
		attr.Pair{Name: "host_os_version", Value: attr.String(cfg.OSVersion)},
		attr.Pair{Name: "host_cpus", Value: attr.Int(int64(cfg.CPUs))},
		attr.Pair{Name: "host_speed", Value: attr.Float(speedOf(cfg))},
		attr.Pair{Name: "host_memory_mb", Value: attr.Int(int64(cfg.MemoryMB))},
		attr.Pair{Name: "host_mem_available_mb", Value: attr.Int(int64(cfg.MemoryMB))},
		attr.Pair{Name: "host_zone", Value: attr.String(cfg.Zone)},
		attr.Pair{Name: "host_domain", Value: attr.String(rt.Domain())},
		attr.Pair{Name: "host_cost_per_cpu", Value: attr.Float(cfg.CostPerCPU)},
		attr.Pair{Name: "host_price", Value: attr.Float(cfg.Price)},
		attr.Pair{Name: "host_class", Value: attr.String(hostClass(cfg.Spot))},
		attr.Pair{Name: "host_load", Value: attr.Float(0)},
		attr.Pair{Name: "host_running_objects", Value: attr.Int(0)},
		attr.Pair{Name: "host_queue_length", Value: attr.Int(0)},
		attr.Pair{Name: "host_is_batch", Value: attr.Bool(cfg.Queue != nil)},
		attr.Pair{Name: "host_loid", Value: attr.String(h.LOID().String())},
	)
	vaultStrs := make([]string, len(cfg.Vaults))
	for i, vl := range cfg.Vaults {
		vaultStrs[i] = vl.String()
	}
	h.attrs.Set("host_vaults", attr.Strings(vaultStrs...))
	h.attrs.Merge(cfg.ExtraAttrs)
	rt.Register(h)
	return h
}

// ClassSpot and ClassReserved are the $host_class attribute values.
const (
	ClassSpot     = "spot"
	ClassReserved = "reserved"
)

func hostClass(spot bool) string {
	if spot {
		return ClassSpot
	}
	return ClassReserved
}

func speedOf(cfg Config) float64 {
	if cfg.Speed <= 0 {
		return 1.0
	}
	return cfg.Speed
}

// Price returns the host's advertised per-instance-hour price.
func (h *Host) Price() float64 { return h.cfg.Price }

// Spot reports whether this host is preemptible spot capacity.
func (h *Host) Spot() bool { return h.cfg.Spot }

// ReservationCost prices a reservation of the given duration on this
// host: Price × hours, the amount the Enactor debits from the
// requesting tenant's account when the grant is confirmed.
func (h *Host) ReservationCost(d time.Duration) float64 {
	return h.cfg.Price * d.Hours()
}

// Runtime returns the runtime this host is registered with.
func (h *Host) Runtime() *orb.Runtime { return h.rt }

// Zone returns the host's reachability zone.
func (h *Host) Zone() string { return h.cfg.Zone }

// SetPolicy replaces the host's live placement policy (nil accepts
// everything). Unlike Config.Policy it may be installed after
// construction — e.g. a LoadShedPolicy needs the built host's
// reservation table — and is read under the host's mutex.
func (h *Host) SetPolicy(p PolicyFunc) {
	h.mu.Lock()
	h.policy = p
	h.mu.Unlock()
}

// SetClock overrides time sources (reservation table included).
func (h *Host) SetClock(now func() time.Time) {
	h.mu.Lock()
	h.now = now
	h.mu.Unlock()
	h.table.SetClock(now)
	h.trigs.SetClock(now)
}

// SetExternalLoad sets the synthetic background load (0..n), modelling
// non-Legion work on the machine; the sim package drives this.
func (h *Host) SetExternalLoad(l float64) {
	h.mu.Lock()
	h.extLoad = l
	h.mu.Unlock()
}

// Attributes returns the current attribute snapshot (the paper's
// information-reporting path for "an external agent to retrieve
// information describing the Host's state").
func (h *Host) Attributes() []attr.Pair { return h.attrs.Snapshot() }

// AttrSet exposes the live attribute database (used by tests and the RGE
// examples; treat as read-mostly).
func (h *Host) AttrSet() *attr.Set { return h.attrs }

// Triggers exposes the host's RGE trigger set.
func (h *Host) Triggers() *rge.TriggerSet { return h.trigs }

// RunningCount returns the number of active instances.
func (h *Host) RunningCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.running)
}

// RunningInstances returns the LOIDs of active instances.
func (h *Host) RunningInstances() []loid.LOID {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]loid.LOID, 0, len(h.running))
	for l := range h.running {
		out = append(out, l)
	}
	return out
}

// Load returns the host's current load figure: external (background)
// load plus Legion objects per CPU.
func (h *Host) Load() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.loadLocked()
}

func (h *Host) loadLocked() float64 {
	return h.extLoad + float64(len(h.running))/float64(h.cfg.CPUs)
}

// PushTo registers a Collection that Reassess pushes updated attributes
// to (the §3.1/§3.2 push model).
func (h *Host) PushTo(collection loid.LOID, credential string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.pushTo = append(h.pushTo, pushTarget{collection, credential})
}

// ClearPushTargets removes all push registrations; the host then only
// reassesses locally (a pull-model world where the Data Collection
// Daemon moves the data).
func (h *Host) ClearPushTargets() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.pushTo = nil
}

// Reassess recomputes the host's state attributes, evaluates RGE
// triggers, and pushes updates to registered Collections. "The Host
// Object reassesses its local state periodically, and repopulates its
// attributes" (§3.1).
func (h *Host) Reassess(ctx context.Context) {
	h.mu.Lock()
	load := h.loadLocked()
	runningN := len(h.running)
	memUsed := 0
	for range h.running {
		memUsed += 64 // nominal 64 MB per active object
	}
	avail := h.cfg.MemoryMB - memUsed
	if avail < 0 {
		avail = 0
	}
	qlen := 0
	if h.cfg.Queue != nil {
		qlen = h.cfg.Queue.QueueLength()
	}
	targets := append([]pushTarget(nil), h.pushTo...)
	h.reassessions++
	h.mu.Unlock()

	h.attrs.Merge([]attr.Pair{
		{Name: "host_load", Value: attr.Float(load)},
		{Name: "host_running_objects", Value: attr.Int(int64(runningN))},
		{Name: "host_mem_available_mb", Value: attr.Int(int64(avail))},
		{Name: "host_queue_length", Value: attr.Int(int64(qlen))},
	})

	h.trigs.Evaluate(h.attrs)

	snap := h.attrs.Snapshot()
	for _, t := range targets {
		// Push failures are tolerated: a Collection outage must not take
		// the Host down with it.
		_, _ = h.rt.Call(ctx, t.collection, proto.MethodUpdateCollectionEntry,
			proto.UpdateArgs{Member: h.LOID(), Attrs: snap, Credential: t.credential})
	}
}

// StartReassessing runs Reassess every interval until the returned stop
// function is called.
func (h *Host) StartReassessing(interval time.Duration) (stop func()) {
	clock := h.rt.Clock()
	ctx, cancel := context.WithCancel(context.Background())
	clock.Go(func() {
		t := clock.NewTicker(interval)
		defer t.Stop()
		for t.Wait(ctx) == nil {
			h.Reassess(context.Background())
		}
	})
	return cancel
}

// ReapReservations reclaims expired and orphaned (granted but never
// confirmed) reservations now, returning how many were dropped. This is
// the failure-recovery half of the §3.1 reservation protocol: an Enactor
// that crashed — or whose connection died after the grant — leaves
// unconfirmed tokens behind, and reaping frees those slots for other
// clients without waiting for the next reservation request to trigger
// lazy expiry.
func (h *Host) ReapReservations() int { return h.table.Reap() }

// ActiveReservations returns the number of live (confirmed or awaiting
// confirmation) reservations — chaos tests assert this drains to zero
// after failed negotiations.
func (h *Host) ActiveReservations() int { return h.table.Active() }

// ReservationLeaks reaps the table and returns the number of live
// one-shot reservations not backing any running object. Migration only
// ever takes one-shot tokens, so after the system quiesces this counts
// exactly the tokens a failed migration forgot to cancel: an unconfirmed
// grant nobody redeemed, or a consumed token whose object is gone without
// the release path running. It must be zero after any migration episode.
//
// Tokens recorded by NotePreempted are excluded: the preempting
// rebalance policy evicted them on purpose (and refunded the tenant),
// so a lost cancel RPC leaving one in the table is not a conservation
// violation — the slot frees at expiry.
func (h *Host) ReservationLeaks() int {
	h.table.Reap()
	h.mu.Lock()
	inUse := make(map[uint64]bool, len(h.running))
	for _, ro := range h.running {
		inUse[ro.tok.ID] = true
	}
	preempted := make(map[uint64]bool, len(h.preempted))
	for id := range h.preempted {
		preempted[id] = true
	}
	h.mu.Unlock()
	n := 0
	for _, e := range h.table.Snapshot() {
		if !e.Token.Type.Reuse && !inUse[e.Token.ID] && !preempted[e.Token.ID] {
			n++
		}
	}
	return n
}

// NotePreempted records that the given reservation token was evicted by
// the preempting rebalance policy, keeping ReservationLeaks honest when
// the eviction's cancel is lost to faults.
func (h *Host) NotePreempted(tokenID uint64) {
	h.mu.Lock()
	if h.preempted == nil {
		h.preempted = make(map[uint64]bool)
	}
	h.preempted[tokenID] = true
	h.mu.Unlock()
}

// PreemptedTokens returns how many preemption-cancelled tokens this
// host has recorded.
func (h *Host) PreemptedTokens() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.preempted)
}

// TokenFor returns the reservation token the named running instance was
// started under — the preempting policy uses it to cancel and refund a
// victim's reservation.
func (h *Host) TokenFor(instance loid.LOID) (reservation.Token, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ro, ok := h.running[instance]
	if !ok {
		return reservation.Token{}, false
	}
	return ro.tok, true
}

// IsRunning reports whether the named instance is active on this host.
func (h *Host) IsRunning(instance loid.LOID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.running[instance]
	return ok
}

// StartReaper runs ReapReservations every interval until the returned
// stop function is called.
func (h *Host) StartReaper(interval time.Duration) (stop func()) {
	clock := h.rt.Clock()
	ctx, cancel := context.WithCancel(context.Background())
	clock.Go(func() {
		t := clock.NewTicker(interval)
		defer t.Stop()
		for t.Wait(ctx) == nil {
			h.ReapReservations()
		}
	})
	return cancel
}

// --- Reservation management (Table 1, column 1) ---

// MakeReservation grants a reservation after checking, per §3.1, "that
// the vault is reachable, that sufficient resources are available, and
// that its local placement policy permits instantiating the object".
func (h *Host) MakeReservation(ctx context.Context, req proto.MakeReservationArgs) (*reservation.Token, error) {
	// 1. Local placement policy (site autonomy comes first).
	h.mu.Lock()
	policy := h.policy
	h.mu.Unlock()
	if policy != nil {
		if err := policy(req); err != nil {
			h.met.refused.Inc()
			if errors.Is(err, proto.ErrOverload) {
				h.met.shed.Inc()
			}
			return nil, err
		}
	}
	// 2. Vault reachable and compatible.
	if err := h.vaultOK(ctx, req.Vault); err != nil {
		h.met.refused.Inc()
		return nil, err
	}
	// 3. Sufficient resources: the reservation table's admission rules.
	tok, err := h.table.Make(reservation.Request{
		Vault:    req.Vault,
		Type:     req.Type,
		Start:    req.Start,
		Duration: req.Duration,
		Timeout:  req.Timeout,
	})
	if err != nil {
		h.met.refused.Inc()
		return nil, err
	}
	h.met.granted.Inc()
	return tok, nil
}

// CheckReservation validates a token without consuming it.
func (h *Host) CheckReservation(tok *reservation.Token) error {
	return h.table.Check(tok)
}

// CancelReservation releases a reservation.
func (h *Host) CancelReservation(tok *reservation.Token) error {
	return h.table.Cancel(tok)
}

// vaultOK verifies the vault is in this host's reachable list and (if
// the vault answers) zone-compatible.
func (h *Host) vaultOK(ctx context.Context, v loid.LOID) error {
	found := false
	for _, known := range h.cfg.Vaults {
		if known == v {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("%w: %v not in host's vault list", ErrVaultUnreachable, v)
	}
	// Identity + zone probe: the vault confirms it is the vault we think
	// it is and that a host in our zone can reach it.
	res, err := h.rt.Call(ctx, v, proto.MethodVaultOK, proto.VaultOKArgs{Vault: v, Zone: h.cfg.Zone})
	if err != nil {
		return fmt.Errorf("%w: %v", ErrVaultUnreachable, err)
	}
	if r, ok := res.(proto.BoolReply); !ok || !r.OK {
		return fmt.Errorf("%w: vault %v declines zone %q", ErrVaultUnreachable, v, h.cfg.Zone)
	}
	return nil
}

// CompatibleVaults returns the host's reachable vaults
// (get_compatible_vaults).
func (h *Host) CompatibleVaults() []loid.LOID {
	return append([]loid.LOID(nil), h.cfg.Vaults...)
}

// --- Object management (Table 1, column 2) ---

// StartObject redeems a reservation and activates the named instances.
// On a Unix Host activation is immediate; on a Batch Queue Host each
// instance is submitted as a job and this call blocks until dispatch (or
// ctx cancellation).
func (h *Host) StartObject(ctx context.Context, req proto.StartObjectArgs) (_ []loid.LOID, err error) {
	start := time.Now() // wall time: telemetry histograms measure real cost
	ctx, span := h.met.spans.StartIn(ctx, "host/startObject", h.met.domain)
	defer func() {
		span.Finish(err)
		h.met.startTime.ObserveSince(start)
	}()
	if len(req.Instances) == 0 {
		return nil, errors.New("host: StartObject with no instances")
	}
	if req.State != nil && len(req.Instances) != 1 {
		return nil, errors.New("host: OPR reactivation requires exactly one instance")
	}
	// Redeem once per StartObject call: a one-shot token admits one call
	// (which may start several objects, per the multiprocessor note); a
	// reusable token admits many calls.
	if err := h.table.Redeem(&req.Token); err != nil {
		return nil, err
	}

	started := make([]loid.LOID, 0, len(req.Instances))
	for _, inst := range req.Instances {
		if err := h.activate(ctx, inst, req.Class, req.Token, req.State); err != nil {
			// Partial failure: report what started; callers treat the
			// error as authoritative and may kill the started subset.
			return started, fmt.Errorf("host: activating %v: %w", inst, err)
		}
		started = append(started, inst)
	}
	h.mu.Lock()
	h.startsTotal += int64(len(started))
	h.mu.Unlock()
	h.met.starts.Add(int64(len(started)))
	return started, nil
}

// activate builds and registers one instance, via the batch queue when
// configured.
func (h *Host) activate(ctx context.Context, inst, class loid.LOID, tok reservation.Token, state *opr.OPR) error {
	obj, err := h.cfg.Activator(inst, class, state)
	if err != nil {
		return err
	}
	version := uint64(1)
	if state != nil {
		version = state.Version + 1
	}
	ro := &runningObject{class: class, vault: tok.Vault, obj: obj, version: version, tok: tok}

	if h.cfg.Queue == nil {
		h.rt.Register(obj)
		h.mu.Lock()
		h.running[inst] = ro
		h.mu.Unlock()
		return nil
	}

	dispatched := h.rt.Clock().NewGate()
	jobID, err := h.cfg.Queue.Submit(inst.String(), 0, func(id batchq.JobID) {
		dispatched.Signal()
	})
	if err != nil {
		return fmt.Errorf("%w: %v", ErrQueueRejected, err)
	}
	ro.job = jobID
	ro.queued = true
	if err := dispatched.Wait(ctx); err != nil {
		_ = h.cfg.Queue.Cancel(jobID)
		return fmt.Errorf("host: batch dispatch: %w", err)
	}
	h.rt.Register(obj)
	h.mu.Lock()
	h.running[inst] = ro
	h.mu.Unlock()
	return nil
}

// KillObject destroys a running instance: it is unregistered from the
// runtime and its stored OPR (if any) is deleted from its vault.
func (h *Host) KillObject(ctx context.Context, object loid.LOID) error {
	h.mu.Lock()
	ro, ok := h.running[object]
	if ok {
		delete(h.running, object)
	}
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %v", ErrUnknownObject, object)
	}
	h.releaseOneShot(ro)
	h.rt.Unregister(object)
	if h.cfg.Queue != nil {
		_ = h.cfg.Queue.Complete(ro.job)
	}
	// Destruction removes persistent state; ignore not-found.
	_, _ = h.rt.Call(ctx, ro.vault, proto.MethodDeleteOPR, proto.DeleteOPRArgs{Object: object})
	return nil
}

// DeactivateObject captures the instance's passive state as an OPR,
// stores it in the instance's vault, and removes the active object.
// Reactivation happens when a class (or the Enactor, on migration)
// presents the OPR to some host's StartObject.
func (h *Host) DeactivateObject(ctx context.Context, object loid.LOID) (*opr.OPR, loid.LOID, error) {
	h.mu.Lock()
	ro, ok := h.running[object]
	h.mu.Unlock()
	if !ok {
		return nil, loid.Nil, fmt.Errorf("%w: %v", ErrUnknownObject, object)
	}
	p, isPersistent := ro.obj.(opr.Persistent)
	if !isPersistent {
		return nil, loid.Nil, fmt.Errorf("host: %v does not support shutdown/restart", object)
	}
	stateVal, err := p.SaveState()
	if err != nil {
		return nil, loid.Nil, fmt.Errorf("host: saving state of %v: %w", object, err)
	}
	o, err := opr.Encode(object, ro.version, stateVal)
	if err != nil {
		return nil, loid.Nil, err
	}
	if _, err := h.rt.Call(ctx, ro.vault, proto.MethodStoreOPR, proto.StoreOPRArgs{OPR: o}); err != nil {
		return nil, loid.Nil, fmt.Errorf("host: storing OPR in vault %v: %w", ro.vault, err)
	}
	h.mu.Lock()
	delete(h.running, object)
	h.mu.Unlock()
	h.rt.Unregister(object)
	if h.cfg.Queue != nil {
		_ = h.cfg.Queue.Complete(ro.job)
	}
	h.releaseOneShot(ro)
	return o, ro.vault, nil
}

// releaseOneShot cancels a terminated object's one-shot reservation once
// no other running object holds it — §3.1's "expires a reservation when
// the job is done" semantics for (share=1, reuse=0) and the space-
// sharing one-shot analogue.
func (h *Host) releaseOneShot(ro *runningObject) {
	if ro.tok.Type.Reuse || ro.tok.ID == 0 {
		return
	}
	h.mu.Lock()
	inUse := false
	for _, other := range h.running {
		if other.tok.ID == ro.tok.ID {
			inUse = true
			break
		}
	}
	h.mu.Unlock()
	if !inUse {
		_ = h.table.Cancel(&ro.tok)
	}
}

// Drain deactivates every running object on this host, storing each OPR
// in its vault — the graceful-maintenance path enabled by "All Legion
// objects automatically support shutdown and restart" (§2.1). It returns
// the deactivated instances (reactivate them elsewhere with StartObject +
// the vault's OPR) and the first error encountered, continuing past
// per-object failures.
func (h *Host) Drain(ctx context.Context) ([]loid.LOID, error) {
	var drained []loid.LOID
	var firstErr error
	for _, inst := range h.RunningInstances() {
		if _, _, err := h.DeactivateObject(ctx, inst); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		drained = append(drained, inst)
	}
	return drained, firstErr
}

// --- orb protocol wiring ---

// hostMethods builds (once) the class-wide dispatch table every Host
// shares. At 100k hosts the per-instance method map this replaces was
// the single largest Host allocation.
var (
	hostTableOnce sync.Once
	hostTable     *orb.DispatchTable
)

func hostMethods() *orb.DispatchTable {
	hostTableOnce.Do(func() { hostTable = buildHostMethods() })
	return hostTable
}

func buildHostMethods() *orb.DispatchTable {
	t := orb.NewDispatchTable()
	t.Handle(proto.MethodMakeReservation, func(ctx context.Context, recv, arg any) (any, error) {
		h := recv.(*Host)
		a, ok := arg.(proto.MakeReservationArgs)
		if !ok {
			return nil, fmt.Errorf("host: want MakeReservationArgs, got %T", arg)
		}
		tok, err := h.MakeReservation(ctx, a)
		if err != nil {
			return nil, err
		}
		return proto.MakeReservationReply{Token: *tok, Cost: h.ReservationCost(tok.Duration)}, nil
	})
	t.Handle(proto.MethodCheckReservation, func(_ context.Context, recv, arg any) (any, error) {
		h := recv.(*Host)
		a, ok := arg.(proto.TokenArgs)
		if !ok {
			return nil, fmt.Errorf("host: want TokenArgs, got %T", arg)
		}
		if err := h.CheckReservation(&a.Token); err != nil {
			return proto.BoolReply{OK: false}, nil
		}
		return proto.BoolReply{OK: true}, nil
	})
	t.Handle(proto.MethodCancelReservation, func(_ context.Context, recv, arg any) (any, error) {
		h := recv.(*Host)
		a, ok := arg.(proto.TokenArgs)
		if !ok {
			return nil, fmt.Errorf("host: want TokenArgs, got %T", arg)
		}
		if err := h.CancelReservation(&a.Token); err != nil {
			return nil, err
		}
		return proto.Ack{}, nil
	})
	t.Handle(proto.MethodStartObject, func(ctx context.Context, recv, arg any) (any, error) {
		h := recv.(*Host)
		a, ok := arg.(proto.StartObjectArgs)
		if !ok {
			return nil, fmt.Errorf("host: want StartObjectArgs, got %T", arg)
		}
		started, err := h.StartObject(ctx, a)
		if err != nil {
			return nil, err
		}
		return proto.StartObjectReply{Started: started}, nil
	})
	t.Handle(proto.MethodKillObject, func(ctx context.Context, recv, arg any) (any, error) {
		h := recv.(*Host)
		a, ok := arg.(proto.ObjectArgs)
		if !ok {
			return nil, fmt.Errorf("host: want ObjectArgs, got %T", arg)
		}
		if err := h.KillObject(ctx, a.Object); err != nil {
			return nil, err
		}
		return proto.Ack{}, nil
	})
	t.Handle(proto.MethodDeactivateObject, func(ctx context.Context, recv, arg any) (any, error) {
		h := recv.(*Host)
		a, ok := arg.(proto.ObjectArgs)
		if !ok {
			return nil, fmt.Errorf("host: want ObjectArgs, got %T", arg)
		}
		o, vaultL, err := h.DeactivateObject(ctx, a.Object)
		if err != nil {
			return nil, err
		}
		return proto.DeactivateReply{OPR: o, Vault: vaultL}, nil
	})
	t.Handle(proto.MethodGetCompatibleVaults, func(_ context.Context, recv, _ any) (any, error) {
		return proto.CompatibleVaultsReply{Vaults: recv.(*Host).CompatibleVaults()}, nil
	})
	t.Handle(proto.MethodVaultOK, func(ctx context.Context, recv, arg any) (any, error) {
		h := recv.(*Host)
		a, ok := arg.(proto.VaultOKArgs)
		if !ok {
			return nil, fmt.Errorf("host: want VaultOKArgs, got %T", arg)
		}
		if err := h.vaultOK(ctx, a.Vault); err != nil {
			return proto.BoolReply{OK: false}, nil
		}
		return proto.BoolReply{OK: true}, nil
	})
	t.Handle(proto.MethodGetAttributes, func(_ context.Context, recv, _ any) (any, error) {
		return proto.AttributesReply{Attrs: recv.(*Host).Attributes()}, nil
	})
	t.Handle(proto.MethodDefineTrigger, func(_ context.Context, recv, arg any) (any, error) {
		h := recv.(*Host)
		a, ok := arg.(proto.DefineTriggerArgs)
		if !ok {
			return nil, fmt.Errorf("host: want DefineTriggerArgs, got %T", arg)
		}
		if err := h.trigs.Define(a.Name, a.Guard); err != nil {
			return nil, err
		}
		return proto.Ack{}, nil
	})
	t.Handle(proto.MethodRegisterOutcall, func(_ context.Context, recv, arg any) (any, error) {
		h := recv.(*Host)
		a, ok := arg.(proto.RegisterOutcallArgs)
		if !ok {
			return nil, fmt.Errorf("host: want RegisterOutcallArgs, got %T", arg)
		}
		monitor := a.Monitor
		// Keyed by the registering Monitor: a re-watch (reconnect, retried
		// Watch) replaces the previous registration instead of stacking a
		// duplicate, so one trigger firing notifies each Monitor once.
		h.trigs.RegisterOutcallKeyed(a.Trigger, monitor.String(), func(ev rge.Event) {
			// The outcall is a method invocation on the Monitor; failures
			// are tolerated (the Monitor may be down).
			ctx, cancel := h.rt.Clock().WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, _ = h.rt.Call(ctx, monitor, proto.MethodNotify, proto.NotifyArgs{
				Source:  ev.Source,
				Trigger: ev.Trigger,
				Attrs:   ev.Attrs,
				Time:    ev.Time,
			})
		})
		return proto.Ack{}, nil
	})
	return t
}
