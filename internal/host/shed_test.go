package host

import (
	"context"
	"errors"
	"testing"
	"time"

	"legion/internal/loid"
	"legion/internal/proto"
	"legion/internal/reservation"
)

// shedReq builds a reservation request at the given priority.
func shedReq(e *testEnv, priority int) proto.MakeReservationArgs {
	return proto.MakeReservationArgs{
		Requester: loid.LOID{Domain: "uva", Class: "Sched", Instance: 1},
		Vault:     e.vault.LOID(),
		Type:      reservation.Type{Share: true, Reuse: true},
		Duration:  time.Hour,
		Priority:  priority,
	}
}

// TestLoadShedPolicyRefusesLowPriorityAboveWatermark drives occupancy
// past the watermark and verifies low-priority requests are shed with
// the typed proto.ErrOverload (counted separately from other refusals)
// while high-priority requests still get the remaining capacity.
func TestLoadShedPolicyRefusesLowPriorityAboveWatermark(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.MaxShared = 4 })
	e.host.SetPolicy(e.host.LoadShedPolicy(0.5, 1))
	ctx := context.Background()

	// Two grants of four slots: occupancy 0.5 = watermark.
	for i := 0; i < 2; i++ {
		if _, err := e.host.MakeReservation(ctx, shedReq(e, 0)); err != nil {
			t.Fatalf("below-watermark grant %d: %v", i, err)
		}
	}

	// Priority 0 is now shed; the shed wraps proto.ErrOverload (so the
	// resilient classifier treats it as a refusal, not a transport
	// fault).
	_, err := e.host.MakeReservation(ctx, shedReq(e, 0))
	if !errors.Is(err, proto.ErrOverload) {
		t.Fatalf("above-watermark low-priority: %v, want ErrOverload", err)
	}

	// Priority >= minPriority rides through until the hard table limit.
	if _, err := e.host.MakeReservation(ctx, shedReq(e, 1)); err != nil {
		t.Fatalf("high-priority above watermark: %v", err)
	}
	if _, err := e.host.MakeReservation(ctx, shedReq(e, 2)); err != nil {
		t.Fatalf("high-priority above watermark: %v", err)
	}
	// Table full (4/4): even high priority hits the Table 2 hard limit.
	if _, err := e.host.MakeReservation(ctx, shedReq(e, 9)); !errors.Is(err, reservation.ErrConflict) {
		t.Fatalf("at hard limit: %v, want ErrConflict", err)
	}

	if n := e.host.met.shed.Value(); n != 1 {
		t.Fatalf("legion_host_reservations_shed_total = %d, want 1", n)
	}
	// Sheds also count as refusals (they are refusals).
	if n := e.host.met.refused.Value(); n < 1 {
		t.Fatalf("refused = %d, want >= 1", n)
	}
}

// TestSetPolicySwapsLive verifies SetPolicy replaces the policy on a
// built host (the LoadShedPolicy install path) and that nil restores
// accept-everything.
func TestSetPolicySwapsLive(t *testing.T) {
	e := newEnv(t, nil)
	ctx := context.Background()

	e.host.SetPolicy(RefuseDomains("uva"))
	if _, err := e.host.MakeReservation(ctx, shedReq(e, 0)); !errors.Is(err, ErrPolicy) {
		t.Fatalf("refuse-domains policy: %v, want ErrPolicy", err)
	}
	e.host.SetPolicy(nil)
	if _, err := e.host.MakeReservation(ctx, shedReq(e, 0)); err != nil {
		t.Fatalf("after clearing policy: %v", err)
	}
}

// TestChainPolicies composes an autonomy policy with a load shed and
// verifies the first refusal wins.
func TestChainPolicies(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.MaxShared = 2 })
	e.host.SetPolicy(ChainPolicies(
		RefuseDomains("untrusted"),
		e.host.LoadShedPolicy(0.5, 1),
	))
	ctx := context.Background()

	bad := shedReq(e, 9)
	bad.Requester = loid.LOID{Domain: "untrusted", Class: "Sched", Instance: 1}
	if _, err := e.host.MakeReservation(ctx, bad); !errors.Is(err, ErrPolicy) {
		t.Fatalf("chained autonomy refusal: %v, want ErrPolicy", err)
	}
	if _, err := e.host.MakeReservation(ctx, shedReq(e, 0)); err != nil {
		t.Fatalf("first grant: %v", err)
	}
	if _, err := e.host.MakeReservation(ctx, shedReq(e, 0)); !errors.Is(err, proto.ErrOverload) {
		t.Fatalf("chained shed: %v, want ErrOverload", err)
	}
}

// TestNegativeConfirmationTimeoutRejected pins the Host/Enactor timeout
// semantics audit: a negative confirmation window must be rejected as
// malformed at the table, not stored as an unexpirable grant the reaper
// can never reclaim.
func TestNegativeConfirmationTimeoutRejected(t *testing.T) {
	e := newEnv(t, nil)
	req := shedReq(e, 0)
	req.Timeout = -time.Second
	_, err := e.host.MakeReservation(context.Background(), req)
	if !errors.Is(err, reservation.ErrBadRequest) {
		t.Fatalf("negative timeout: %v, want ErrBadRequest", err)
	}
	if n := e.host.ActiveReservations(); n != 0 {
		t.Fatalf("rejected request left %d reservations", n)
	}
}
