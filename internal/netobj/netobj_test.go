package netobj

import (
	"context"
	"testing"

	"legion/internal/attr"
	"legion/internal/collection"
	"legion/internal/orb"
	"legion/internal/proto"
)

func TestLinkBasics(t *testing.T) {
	rt := orb.NewRuntime("uva")
	l := NewLink(rt, "zb", "za", 40, 100) // endpoints canonicalized
	a, b := l.Zones()
	if a != "za" || b != "zb" {
		t.Errorf("zones: %s %s", a, b)
	}
	if l.Latency() != 40 || l.Bandwidth() != 100 {
		t.Errorf("initial: %v %v", l.Latency(), l.Bandwidth())
	}
	l.Observe(55, 80)
	if l.Latency() != 55 || l.Bandwidth() != 80 {
		t.Errorf("after observe: %v %v", l.Latency(), l.Bandwidth())
	}
	m := attr.FromPairs(l.Attributes())
	if m["net_latency_ms"].FloatVal() != 55 || m["net_zone_a"].Str() != "za" {
		t.Errorf("attrs: %v", l.Attributes())
	}
	// Reachable as a Legion object.
	res, err := rt.Call(context.Background(), l.LOID(), proto.MethodGetAttributes, nil)
	if err != nil || len(res.(proto.AttributesReply).Attrs) == 0 {
		t.Errorf("get_attributes: %v %v", res, err)
	}
}

func TestLinkSameZonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewLink(orb.NewRuntime("uva"), "z", "z", 1, 1)
}

func TestTopologyLatency(t *testing.T) {
	rt := orb.NewRuntime("uva")
	topo := NewTopology(
		NewLink(rt, "za", "zb", 10, 1000),
		NewLink(rt, "zb", "zc", 50, 100),
	)
	if l := topo.LatencyMS("za", "za"); l != 0.1 {
		t.Errorf("intra-zone: %v", l)
	}
	if l := topo.LatencyMS("za", "zb"); l != 10 {
		t.Errorf("za-zb: %v", l)
	}
	if l := topo.LatencyMS("zb", "za"); l != 10 {
		t.Errorf("symmetric: %v", l)
	}
	if l := topo.LatencyMS("za", "zc"); l != 200 {
		t.Errorf("missing pair default: %v", l)
	}
	if _, ok := topo.Link("zc", "zb"); !ok {
		t.Error("Link lookup with swapped order failed")
	}
	if len(topo.Links()) != 2 {
		t.Errorf("links: %d", len(topo.Links()))
	}
}

func TestTopologyDynamicUpdates(t *testing.T) {
	rt := orb.NewRuntime("uva")
	link := NewLink(rt, "za", "zb", 10, 1000)
	topo := NewTopology(link)
	link.Observe(90, 10) // WAN degraded
	if l := topo.LatencyMS("za", "zb"); l != 90 {
		t.Errorf("after observe: %v", l)
	}
}

func TestJoinCollection(t *testing.T) {
	rt := orb.NewRuntime("uva")
	coll := collection.New(rt, nil)
	topo := NewTopology(
		NewLink(rt, "za", "zb", 10, 1000),
		NewLink(rt, "zb", "zc", 50, 100),
	)
	if err := topo.JoinCollection(context.Background(), rt, coll.LOID(), ""); err != nil {
		t.Fatal(err)
	}
	// Communication resources are queryable like any other resource.
	recs, err := coll.Query(`defined($net_latency_ms) and $net_latency_ms < 20`)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("fast links: %+v", recs)
	}
	m := attr.FromPairs(recs[0].Attrs)
	if m["net_zone_a"].Str() != "za" || m["net_zone_b"].Str() != "zb" {
		t.Errorf("record: %v", recs[0].Attrs)
	}
}
