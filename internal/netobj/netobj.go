// Package netobj implements Network Objects, the paper's §6 future work:
// "We are developing Network Objects to manage communications resources."
//
// A Link is a Legion object representing one inter-zone communication
// resource (a WAN path between sites, a campus backbone segment). Like
// Hosts, Links carry an attribute database — latency, bandwidth, the
// zones they join — and can deposit it into Collections, so Schedulers
// can reason about communication exactly the way they reason about
// computation. A Topology aggregates Links and answers zone-to-zone
// latency queries for communication-aware placement (see
// scheduler.CommAware).
package netobj

import (
	"context"
	"fmt"
	"sync"

	"legion/internal/attr"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
)

// Link is a Legion Network Object for one zone-to-zone link. It is safe
// for concurrent use.
type Link struct {
	*orb.ServiceObject
	zoneA, zoneB string

	mu        sync.Mutex
	latencyMS float64
	bwMbps    float64
	attrs     *attr.Set
}

// NewLink creates a Link between two zones, registers it with rt, and
// initializes its attribute database.
func NewLink(rt *orb.Runtime, zoneA, zoneB string, latencyMS, bwMbps float64) *Link {
	if zoneA == zoneB {
		panic("netobj: link endpoints must differ")
	}
	if zoneB < zoneA {
		zoneA, zoneB = zoneB, zoneA // canonical order
	}
	l := &Link{
		ServiceObject: orb.NewServiceObject(rt.Mint("NetworkLink")),
		zoneA:         zoneA,
		zoneB:         zoneB,
		latencyMS:     latencyMS,
		bwMbps:        bwMbps,
	}
	l.attrs = attr.NewSet(
		attr.Pair{Name: "net_zone_a", Value: attr.String(zoneA)},
		attr.Pair{Name: "net_zone_b", Value: attr.String(zoneB)},
		attr.Pair{Name: "net_latency_ms", Value: attr.Float(latencyMS)},
		attr.Pair{Name: "net_bandwidth_mbps", Value: attr.Float(bwMbps)},
	)
	l.Handle(proto.MethodGetAttributes, func(_ context.Context, _ any) (any, error) {
		return proto.AttributesReply{Attrs: l.Attributes()}, nil
	})
	rt.Register(l)
	return l
}

// Zones returns the link's endpoints in canonical order.
func (l *Link) Zones() (string, string) { return l.zoneA, l.zoneB }

// Latency returns the current one-way latency in milliseconds.
func (l *Link) Latency() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.latencyMS
}

// Bandwidth returns the current bandwidth in Mbit/s.
func (l *Link) Bandwidth() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bwMbps
}

// Observe updates the link's measured characteristics (driven by the
// simulation or a measurement daemon) and repopulates its attributes.
func (l *Link) Observe(latencyMS, bwMbps float64) {
	l.mu.Lock()
	l.latencyMS = latencyMS
	l.bwMbps = bwMbps
	l.mu.Unlock()
	l.attrs.Merge([]attr.Pair{
		{Name: "net_latency_ms", Value: attr.Float(latencyMS)},
		{Name: "net_bandwidth_mbps", Value: attr.Float(bwMbps)},
	})
}

// Attributes returns the link's attribute snapshot.
func (l *Link) Attributes() []attr.Pair { return l.attrs.Snapshot() }

// Topology aggregates Links and answers zone-distance queries. Missing
// pairs are treated as unreachable-but-expensive rather than errors, so
// placement degrades instead of failing. Safe for concurrent use.
type Topology struct {
	mu    sync.RWMutex
	links map[[2]string]*Link
	// IntraZoneMS is the latency charged within a zone (LAN); default 0.1.
	IntraZoneMS float64
	// DefaultMS is charged for zone pairs with no Link; default 200.
	DefaultMS float64
}

// NewTopology builds a Topology over the given links.
func NewTopology(links ...*Link) *Topology {
	t := &Topology{
		links:       make(map[[2]string]*Link),
		IntraZoneMS: 0.1,
		DefaultMS:   200,
	}
	for _, l := range links {
		t.Add(l)
	}
	return t
}

// Add registers a link (replacing any previous link for the pair).
func (t *Topology) Add(l *Link) {
	a, b := l.Zones()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.links[[2]string{a, b}] = l
}

// Link returns the link between two zones, if any.
func (t *Topology) Link(zoneA, zoneB string) (*Link, bool) {
	if zoneB < zoneA {
		zoneA, zoneB = zoneB, zoneA
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	l, ok := t.links[[2]string{zoneA, zoneB}]
	return l, ok
}

// LatencyMS returns the current zone-to-zone latency in milliseconds.
func (t *Topology) LatencyMS(zoneA, zoneB string) float64 {
	if zoneA == zoneB {
		return t.IntraZoneMS
	}
	if l, ok := t.Link(zoneA, zoneB); ok {
		return l.Latency()
	}
	return t.DefaultMS
}

// Links returns all registered links.
func (t *Topology) Links() []*Link {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Link, 0, len(t.links))
	for _, l := range t.links {
		out = append(out, l)
	}
	return out
}

// JoinCollection deposits every link's description into a Collection, so
// communication resources are discoverable alongside Hosts and Vaults.
func (t *Topology) JoinCollection(ctx context.Context, rt *orb.Runtime, coll loid.LOID, credential string) error {
	for _, l := range t.Links() {
		if _, err := rt.Call(ctx, coll, proto.MethodJoinCollection, proto.JoinArgs{
			Joiner: l.LOID(), Attrs: l.Attributes(), Credential: credential,
		}); err != nil {
			return fmt.Errorf("netobj: joining %v: %w", l.LOID(), err)
		}
	}
	return nil
}
