// Package wire provides the primitives of the ORB's compact binary wire
// format: varint-based append/consume helpers, a sticky-error Reader,
// pooled encode buffers, and a bounded string-intern table.
//
// The design goal is zero steady-state allocation on the negotiation hot
// path. Encoders are plain append functions over a caller-owned []byte
// (pooled via GetBuf/PutBuf), so a message encode costs no allocations
// once the buffer has grown to its working size. Decoders go through
// Reader, which reuses caller-provided slice capacity and interns
// symbol-like strings (domains, class names, attribute names, methods)
// so the same host fleet decoded a million times allocates each name
// once, not a million times.
//
// The format itself is deliberately boring: unsigned varints
// (encoding/binary layout), zigzag varints for signed values, IEEE-754
// bits for floats, and uvarint length prefixes for strings, byte blobs,
// and repeated fields. There is no embedded schema — both ends agree on
// field order via the hand-rolled AppendWire/DecodeWire methods of each
// message (package proto and friends), with stable explicit type IDs
// assigned at registration (package orb).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Errors reported by Reader. Decoders see them through Reader.Err.
var (
	// ErrTruncated reports that a field's encoding ran past the end of
	// the buffer.
	ErrTruncated = errors.New("wire: truncated message")
	// ErrTooLarge reports a length prefix exceeding the sanity cap (a
	// corrupt or hostile frame, not a big message).
	ErrTooLarge = errors.New("wire: length prefix exceeds limit")
)

// MaxLen is the sanity cap on any single length prefix (strings, byte
// blobs, repeated-field counts). Frames are capped separately by the
// transport; this bound stops a corrupt 10-byte prefix from asking a
// decoder to allocate gigabytes.
const MaxLen = 1 << 26 // 64M

// --- append helpers ---

// AppendUvarint appends v in unsigned varint form.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendVarint appends v in zigzag varint form.
func AppendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

// AppendBool appends a single 0/1 byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendFloat64 appends the IEEE-754 bits, little-endian. Bit-exact
// round trip, NaN payloads included.
func AppendFloat64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// AppendString appends a uvarint length prefix and the string bytes.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends a uvarint length prefix and the raw bytes.
func AppendBytes(b []byte, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendTime appends t as a presence byte + Unix seconds (zigzag) +
// nanoseconds. The zero time is a single 0 byte. Monotonic readings and
// locations do not cross the wire: a non-zero time round-trips as
// time.Unix(sec, nsec) in the decoder's local zone, which compares
// Equal to the original.
func AppendTime(b []byte, t time.Time) []byte {
	if t.IsZero() {
		return append(b, 0)
	}
	b = append(b, 1)
	b = binary.AppendVarint(b, t.Unix())
	return binary.AppendUvarint(b, uint64(t.Nanosecond()))
}

// AppendDuration appends d as a zigzag varint of nanoseconds.
func AppendDuration(b []byte, d time.Duration) []byte {
	return binary.AppendVarint(b, int64(d))
}

// --- Reader ---

// Reader consumes a buffer encoded with the append helpers. Errors are
// sticky: after the first failure every subsequent read returns the zero
// value and Err stays set, so decoders read a whole message and check
// once at the end.
type Reader struct {
	B   []byte
	Err error
	// sym is a direct-mapped cache in front of the global intern table.
	// Symbol vocabularies are tiny and repeat heavily within one message
	// (every LOID carries a domain and class), so most Sym reads hit here
	// and skip the shared table's atomic load and map hash entirely.
	sym [symCacheSize]string
}

const symCacheSize = 32 // must be a power of two

// NewReader returns a Reader over b.
func NewReader(b []byte) Reader { return Reader{B: b} }

// Reset re-aims the Reader at b and clears the error, keeping the
// symbol cache warm. Per-connection read loops reuse one Reader across
// frames so the cache (and the Reader's heap allocation, when it
// escapes) amortizes to zero per frame.
func (r *Reader) Reset(b []byte) {
	r.B = b
	r.Err = nil
}

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.Err == nil {
		r.Err = err
	}
}

// Uvarint consumes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.Err != nil {
		return 0
	}
	// Single-byte fast path: lengths, counts, and small IDs dominate.
	if len(r.B) > 0 && r.B[0] < 0x80 {
		v := uint64(r.B[0])
		r.B = r.B[1:]
		return v
	}
	v, n := binary.Uvarint(r.B)
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.B = r.B[n:]
	return v
}

// Varint consumes a zigzag varint.
func (r *Reader) Varint() int64 {
	if r.Err != nil {
		return 0
	}
	v, n := binary.Varint(r.B)
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	r.B = r.B[n:]
	return v
}

// Bool consumes a 0/1 byte; any other value is a format error.
func (r *Reader) Bool() bool {
	if r.Err != nil {
		return false
	}
	if len(r.B) < 1 {
		r.fail(ErrTruncated)
		return false
	}
	c := r.B[0]
	r.B = r.B[1:]
	if c > 1 {
		r.fail(fmt.Errorf("wire: invalid bool byte %d", c))
		return false
	}
	return c == 1
}

// Float64 consumes IEEE-754 bits.
func (r *Reader) Float64() float64 {
	if r.Err != nil {
		return 0
	}
	if len(r.B) < 8 {
		r.fail(ErrTruncated)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.B))
	r.B = r.B[8:]
	return v
}

// Len consumes a uvarint length prefix and validates it against both
// the remaining buffer and MaxLen. Decoders use it for repeated-field
// counts; per-element size is at least one byte, so a count can never
// exceed the remaining bytes.
func (r *Reader) Len() int {
	n := r.Uvarint()
	if r.Err != nil {
		return 0
	}
	if n > MaxLen {
		r.fail(ErrTooLarge)
		return 0
	}
	if n > uint64(len(r.B)) {
		r.fail(ErrTruncated)
		return 0
	}
	return int(n)
}

// take consumes exactly n bytes.
func (r *Reader) take(n int) []byte {
	p := r.B[:n]
	r.B = r.B[n:]
	return p
}

// Str consumes a length-prefixed string, allocating it. Use for
// free-form text (queries, error details, credentials).
func (r *Reader) Str() string {
	n := r.Len()
	if r.Err != nil {
		return ""
	}
	return string(r.take(n))
}

// Sym consumes a length-prefixed string through the intern table. Use
// for symbol-like fields drawn from small vocabularies — domains, class
// names, attribute names, method names — where the same few strings
// recur across millions of messages.
func (r *Reader) Sym() string {
	n := r.Len()
	if r.Err != nil || n == 0 {
		return ""
	}
	b := r.take(n)
	// Constant-time slot hash over length and edge bytes: symbol
	// vocabularies are small, and a collision merely falls back to the
	// shared intern table, so cheapness beats distribution here.
	h := uint32(n)*33 + uint32(b[0])*7 + uint32(b[n-1])*3
	slot := &r.sym[h&(symCacheSize-1)]
	if *slot == string(b) { // comparison form: no allocation
		return *slot
	}
	s := Intern(b)
	*slot = s
	return s
}

// Bytes consumes a length-prefixed byte blob into reuse's capacity when
// it fits, allocating otherwise. An empty blob returns nil. The data is
// always copied — the Reader's buffer is transport-owned and recycled.
func (r *Reader) Bytes(reuse []byte) []byte {
	n := r.Len()
	if r.Err != nil || n == 0 {
		return nil
	}
	var dst []byte
	if cap(reuse) >= n {
		dst = reuse[:n]
	} else {
		dst = make([]byte, n)
	}
	copy(dst, r.take(n))
	return dst
}

// Time consumes a time encoded by AppendTime.
func (r *Reader) Time() time.Time {
	if !r.Bool() {
		return time.Time{}
	}
	sec := r.Varint()
	nsec := r.Uvarint()
	if r.Err != nil {
		return time.Time{}
	}
	if nsec > 999_999_999 {
		r.fail(fmt.Errorf("wire: invalid nanoseconds %d", nsec))
		return time.Time{}
	}
	return time.Unix(sec, int64(nsec))
}

// Duration consumes a duration.
func (r *Reader) Duration() time.Duration { return time.Duration(r.Varint()) }

// --- intern table ---

// internMaxEntries bounds the process-wide intern table; past it, new
// strings are returned without being retained (hostile or unbounded
// vocabularies must not pin memory forever). internMaxStrLen keeps long
// free-form strings that were decoded via Sym by mistake from being
// pinned at all.
const (
	internMaxEntries = 1 << 16
	internMaxStrLen  = 128
)

var (
	internMu     sync.Mutex // guards internMaster, internDirty, publishing
	internMaster = make(map[string]string, 256)
	internDirty  int
	internSnap   atomic.Pointer[map[string]string]
)

// Intern returns a string equal to b, reusing a previously interned
// copy when possible. The read path is a single atomic load of an
// immutable snapshot map — no lock, and the []byte-keyed string map
// index does not allocate. Inserts go through a mutex-guarded master
// map and republish the snapshot: eagerly while the table is small,
// amortized (an eighth of the table must be new) once it is large, so
// a hostile vocabulary cannot force quadratic republishing work.
func Intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > internMaxStrLen {
		return string(b)
	}
	if m := internSnap.Load(); m != nil {
		if s, ok := (*m)[string(b)]; ok {
			return s
		}
	}
	s := string(b)
	internMu.Lock()
	if got, ok := internMaster[s]; ok {
		s = got
	} else if len(internMaster) < internMaxEntries {
		internMaster[s] = s
		internDirty++
	}
	if internDirty > 0 && (len(internMaster) <= 4096 || internDirty*8 >= len(internMaster)) {
		snap := make(map[string]string, len(internMaster))
		for k, v := range internMaster {
			snap[k] = v
		}
		internSnap.Store(&snap)
		internDirty = 0
	}
	internMu.Unlock()
	return s
}

// --- buffer pool ---

// bufPool recycles encode buffers across calls. Buffers that grew past
// recycleMax are dropped so one giant payload does not pin its memory
// for the life of the process.
const recycleMax = 1 << 20

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// GetBuf returns a pooled, length-zero buffer.
func GetBuf() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuf recycles a buffer obtained from GetBuf. The caller must not
// retain any view of it.
func PutBuf(p *[]byte) {
	if p == nil || cap(*p) > recycleMax {
		return
	}
	*p = (*p)[:0]
	bufPool.Put(p)
}

var readerPool = sync.Pool{
	New: func() any { return new(Reader) },
}

// GetReader returns a pooled Reader aimed at b. Pooling keeps the
// symbol caches of recently-used Readers warm for call sites that
// decode one message at a time (the loopback boundary) rather than a
// per-connection stream.
func GetReader(b []byte) *Reader {
	r := readerPool.Get().(*Reader)
	r.Reset(b)
	return r
}

// PutReader recycles a Reader obtained from GetReader. The caller must
// not retain it or any string it wants re-checked: cached symbols
// persist by design.
func PutReader(r *Reader) {
	r.B = nil
	r.Err = nil
	readerPool.Put(r)
}
