package rebalance

import (
	"context"
	"errors"
	"testing"
	"time"

	"legion/internal/classobj"
	"legion/internal/core"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/proto"
	"legion/internal/telemetry"
	"legion/internal/vault"
	"legion/internal/vclock"
)

// buildMeta assembles a metasystem with nHosts hosts sharing nVaults
// vaults, every host reaching every vault. Each gets a private telemetry
// registry so counter assertions don't see other tests' traffic.
func buildMeta(t *testing.T, nHosts, nVaults int) *core.Metasystem {
	t.Helper()
	ms := core.New("uva", core.Options{Seed: 11, Metrics: telemetry.NewRegistry()})
	vaults := make([]loid.LOID, 0, nVaults)
	for i := 0; i < nVaults; i++ {
		v := ms.AddVault(vault.Config{Zone: "z1"})
		vaults = append(vaults, v.LOID())
	}
	for i := 0; i < nHosts; i++ {
		ms.AddHost(host.Config{
			Arch: "x86", OS: "Linux", CPUs: 8, MemoryMB: 1024, Zone: "z1",
			Vaults: append([]loid.LOID(nil), vaults...),
		})
	}
	return ms
}

// TestRebalancerShedsOverloadedHost is the subsystem's end-to-end §3.5
// loop: overload trigger fires -> async event -> LeastLoaded plan ->
// core.Migrate — with the instance landing on the coolest host and the
// conservation audit staying clean.
func TestRebalancerShedsOverloadedHost(t *testing.T) {
	ms := buildMeta(t, 3, 1)
	c := ms.DefineClass("Worker", nil)
	ctx := context.Background()
	insts, p, err := c.CreateInstance(ctx, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst := insts[0]
	src := p.Host

	r := New(ms, Config{Classes: []*classobj.Class{c}, Cooldown: -1})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.Start(); err == nil {
		t.Fatal("double Start should fail")
	}

	if err := ms.WatchLoad(ctx, 0.8); err != nil {
		t.Fatal(err)
	}
	// Make the source hot and another host clearly coolest.
	for _, h := range ms.Hosts() {
		if h.LOID() == src {
			h.SetExternalLoad(0.95)
		} else {
			h.SetExternalLoad(0.3)
		}
	}
	ms.ReassessAll(ctx)

	deadline := time.After(3 * time.Second)
	for {
		hL, _, err := c.WhereIs(inst)
		if err != nil {
			t.Fatal(err)
		}
		if hL != src {
			break
		}
		select {
		case <-deadline:
			t.Fatal("rebalancer never migrated the instance")
		case <-time.After(5 * time.Millisecond):
		}
	}
	reg := ms.Runtime().Metrics()
	if n := reg.CounterValue("legion_rebalance_migrations_total", "result", "ok"); n < 1 {
		t.Errorf("migrations ok counter = %d", n)
	}
	if n := reg.CounterValue("legion_rebalance_events_total"); n < 1 {
		t.Errorf("events counter = %d", n)
	}
	if a := ms.AuditMigrations(c); !a.Clean() {
		t.Errorf("audit after rebalance: %v", a)
	}
}

// TestCooldownSuppressesRepeatShedding: after a successful shed, further
// events from the same host are ignored until the window passes.
func TestCooldownSuppressesRepeatShedding(t *testing.T) {
	ms := buildMeta(t, 3, 1)
	c := ms.DefineClass("Worker", nil)
	ctx := context.Background()
	if _, _, err := c.CreateInstance(ctx, 3, nil, nil); err != nil {
		t.Fatal(err)
	}

	// Virtual clock (epoch anchored near wall time so stdlib-derived
	// deadlines downstream stay sane); the test advances it directly
	// instead of sleeping through the cooldown window.
	vc := vclock.NewVirtual()
	r := New(ms, Config{Classes: []*classobj.Class{c}, Cooldown: time.Minute, Clock: vc})

	src := ms.Hosts()[0].LOID()
	ev := proto.NotifyArgs{Source: src, Trigger: "overload"}

	r.handle(ev) // first event: plans and migrates (or at least plans)
	reg := ms.Runtime().Metrics()
	migrated := reg.CounterValue("legion_rebalance_migrations_total", "result", "ok")
	if migrated < 1 {
		t.Fatalf("first event migrated %d", migrated)
	}
	r.handle(ev) // inside the window: suppressed
	if n := reg.CounterValue("legion_rebalance_skipped_total", "reason", "cooldown"); n != 1 {
		t.Errorf("cooldown skips = %d, want 1", n)
	}
	if n := reg.CounterValue("legion_rebalance_migrations_total", "result", "ok"); n != migrated {
		t.Errorf("migrated during cooldown: %d -> %d", migrated, n)
	}
	vc.Advance(2 * time.Minute)
	r.handle(ev) // window passed: acts again
	if n := reg.CounterValue("legion_rebalance_migrations_total", "result", "ok"); n <= migrated {
		t.Errorf("no migration after cooldown expiry: %d", n)
	}
}

// TestRateLimitBoundsChurn: with a tiny bucket, a burst of events
// executes at most Burst migrations and counts the rest as rate-limited.
func TestRateLimitBoundsChurn(t *testing.T) {
	ms := buildMeta(t, 4, 1)
	c := ms.DefineClass("Worker", nil)
	ctx := context.Background()
	if _, _, err := c.CreateInstance(ctx, 4, nil, nil); err != nil {
		t.Fatal(err)
	}

	// Virtual clock, never advanced: the bucket never refills.
	r := New(ms, Config{
		Classes:       []*classobj.Class{c},
		Cooldown:      -1,
		MaxConcurrent: 1, // burst = 1
		RatePerSec:    0.001,
		Clock:         vclock.NewVirtual(),
		Policy:        &LeastLoaded{MaxShedPerEvent: 4},
	})

	src := ms.Hosts()[0].LOID()
	r.handle(proto.NotifyArgs{Source: src, Trigger: "overload"})
	reg := ms.Runtime().Metrics()
	ok := reg.CounterValue("legion_rebalance_migrations_total", "result", "ok")
	limited := reg.CounterValue("legion_rebalance_skipped_total", "reason", "rate_limited")
	if ok > 1 {
		t.Errorf("rate limit let %d migrations through, want <= 1", ok)
	}
	if limited == 0 && ok <= 1 {
		// Some moves must have been clipped (4 instances, bucket of 1) —
		// unless fewer than 2 victims lived on src.
		victims := 0
		for _, inst := range c.Instances() {
			if h, _, err := c.WhereIs(inst); err == nil && h == src {
				victims++
			}
		}
		if victims >= 2 {
			t.Errorf("no rate_limited skips despite %d victims", victims)
		}
	}
}

// TestFailedMigrationRecovers: when the destination refuses StartObject,
// the rebalancer's EnsureRunning fallback restores the instance and the
// audit stays clean.
func TestFailedMigrationRecovers(t *testing.T) {
	ms := buildMeta(t, 2, 2)
	c := ms.DefineClass("Worker", nil)
	ctx := context.Background()
	insts, p, err := c.CreateInstance(ctx, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst := insts[0]
	src := p.Host

	var dest loid.LOID
	for _, h := range ms.Hosts() {
		if h.LOID() != src {
			dest = h.LOID()
		}
	}
	ms.Runtime().SetFaultInjector(func(target loid.LOID, method string) error {
		if target == dest && method == proto.MethodStartObject {
			return errors.New("injected: destination refuses")
		}
		return nil
	})
	defer ms.Runtime().SetFaultInjector(nil)

	r := New(ms, Config{Classes: []*classobj.Class{c}, Cooldown: -1})
	r.handle(proto.NotifyArgs{Source: src, Trigger: "overload"})

	reg := ms.Runtime().Metrics()
	if n := reg.CounterValue("legion_rebalance_migrations_total", "result", "failed"); n != 1 {
		t.Errorf("failed counter = %d, want 1", n)
	}
	if h, _, err := c.WhereIs(inst); err != nil || h != src {
		t.Errorf("instance not back on source: %v %v", h, err)
	}
	if a := ms.AuditMigrations(c); !a.Clean() {
		t.Errorf("audit after failed rebalance: %v", a)
	}
}

// TestReconcileRevivesDownedInstance: the anti-entropy sweep brings back
// an instance whose host lost it (killed out-of-band) from its OPR.
func TestReconcileRevivesDownedInstance(t *testing.T) {
	ms := buildMeta(t, 2, 1)
	c := ms.DefineClass("Worker", nil)
	ctx := context.Background()
	insts, p, err := c.CreateInstance(ctx, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst := insts[0]
	if _, err := ms.Runtime().Call(ctx, inst, "set", []string{"k", "v"}); err != nil {
		t.Fatal(err)
	}
	// Deactivate behind the class's back: the OPR lands in the vault and
	// the class record now points at a host not running the instance.
	if _, err := ms.Runtime().Call(ctx, p.Host, proto.MethodDeactivateObject, proto.ObjectArgs{Object: inst}); err != nil {
		t.Fatal(err)
	}

	r := New(ms, Config{Classes: []*classobj.Class{c}})
	if err := r.Reconcile(ctx); err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	if got, err := ms.Runtime().Call(ctx, inst, "get", "k"); err != nil || got != "v" {
		t.Fatalf("instance after reconcile: %v %v", got, err)
	}
	if a := ms.AuditMigrations(c); !a.Clean() {
		t.Errorf("audit after reconcile: %v", a)
	}
}

// TestPolicyPrefersCurrentVaultAndZone pins the destination ranking:
// current-vault hosts beat same-zone hosts beat the rest, load breaking
// ties.
func TestPolicyPrefersCurrentVaultAndZone(t *testing.T) {
	ms := core.New("uva", core.Options{Seed: 3, Metrics: telemetry.NewRegistry()})
	vA := ms.AddVault(vault.Config{Zone: "zoneA"})
	vB := ms.AddVault(vault.Config{Zone: "zoneB"})
	// src: in zoneA with vault A.
	src := ms.AddHost(host.Config{Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 512,
		Zone: "zoneA", Vaults: []loid.LOID{vA.LOID()}})
	// hSame: reaches the current vault (tier 0) despite higher load.
	hSame := ms.AddHost(host.Config{Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 512,
		Zone: "zoneA", Vaults: []loid.LOID{vA.LOID()}})
	// hOther: different vault, different zone (tier 2), lowest load.
	hOther := ms.AddHost(host.Config{Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 512,
		Zone: "zoneB", Vaults: []loid.LOID{vB.LOID()}})
	hSame.SetExternalLoad(0.5)
	hOther.SetExternalLoad(0.1)

	c := ms.DefineClass("Worker", nil)
	ctx := context.Background()
	insts, _, err := c.CreateInstance(ctx, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the victim to src/vA regardless of where quick placement put it.
	if err := ms.Migrate(ctx, c, insts[0], src.LOID(), vA.LOID()); err != nil {
		t.Fatal(err)
	}

	p := NewLeastLoaded()
	moves, err := p.Plan(ctx, proto.NotifyArgs{Source: src.LOID(), Trigger: "overload"}, ms, []*classobj.Class{c})
	if err != nil || len(moves) != 1 {
		t.Fatalf("plan: %v %v", moves, err)
	}
	if moves[0].ToHost != hSame.LOID() || moves[0].ToVault != vA.LOID() {
		t.Errorf("move = %+v, want current-vault host %v", moves[0], hSame.LOID())
	}
	_ = insts
}
