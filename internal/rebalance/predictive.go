package rebalance

import (
	"context"
	"time"

	"legion/internal/classobj"
	"legion/internal/core"
	"legion/internal/loid"
	"legion/internal/nws"
	"legion/internal/proto"
	"legion/internal/scheduler"
)

// ForecastTrigger names the synthetic trigger the forecast scan fires.
// A Monitor outcall carries the trigger name that fired; the scan uses
// this one so operators can tell predictive sheds from reactive ones in
// the event stream.
const ForecastTrigger = "forecast_overload"

// Predictive is the forecast-driven rebalancing policy: where
// LeastLoaded reacts to a host that IS overloaded, Predictive moves
// instances off hosts whose NWS forecast says they are ABOUT to be —
// before the watermark is crossed, while the move is still cheap (the
// PAPERS.md adaptive-scheduling line: migration should anticipate the
// load spike, not chase it).
//
// It consumes the rolling $host_load_history series the Collection
// daemon publishes (Config.HistoryLen), forecasting with Predictor —
// both for the source (is the event worth acting on?) and for ranking
// destinations (coolest forecast wins, same vault/zone tiers as
// LeastLoaded). Hosts whose records carry no history fall back to their
// instantaneous load, so on a history-less fleet the policy degrades to
// exactly LeastLoaded's behaviour.
//
// Events reach Plan two ways: ordinary overload triggers (the reactive
// path still works — a forecast can miss) and the synthetic
// ForecastTrigger events a Rebalancer.StartForecastScan sweep fires for
// hosts predicted to cross the watermark. Either way the moves execute
// through the same cooldown, rate-limit, per-instance-claim and
// EnsureRunning machinery as every other policy.
type Predictive struct {
	// Watermark is the forecast load at which a host is considered
	// about-to-overload (default 0.8): sources forecast at or above it
	// shed, destinations forecast at or above it are avoided.
	Watermark float64
	// MaxShedPerEvent bounds how many instances one event may move off
	// the source host (default 1).
	MaxShedPerEvent int
	// Query selects candidate destination records (default
	// "defined($host_load)" — history is optional on purpose: a
	// history-less host is still a usable destination, judged by its
	// current load).
	Query string
	// Predictor turns a load history into a forecast; nil means an
	// adaptive nws.Bank over the default predictor bank plus
	// nws.Trend{K: 8} — the extrapolating member is what lets the scan
	// flag a steadily heating host before its load crosses the
	// watermark.
	Predictor nws.Predictor
}

// NewPredictive returns the forecast-driven policy at the given
// watermark (<= 0 means 0.8).
func NewPredictive(watermark float64) *Predictive {
	return &Predictive{Watermark: watermark, MaxShedPerEvent: 1}
}

func (p *Predictive) predictor() nws.Predictor {
	if p.Predictor != nil {
		return p.Predictor
	}
	return nws.Bank{Members: append(nws.DefaultBank(), nws.Trend{K: 8})}
}

func (p *Predictive) watermark() float64 {
	if p.Watermark > 0 {
		return p.Watermark
	}
	return 0.8
}

// forecastOf reduces one host record to its expected near-term load:
// the predictor over its published history, or the instantaneous load
// when no history has been published (the LeastLoaded degradation).
func (p *Predictive) forecastOf(hi scheduler.HostInfo) float64 {
	if len(hi.LoadHistory) == 0 {
		return hi.Load
	}
	return p.predictor().Predict(hi.LoadHistory)
}

// Plan implements Policy.
func (p *Predictive) Plan(ctx context.Context, ev proto.NotifyArgs, ms *core.Metasystem, classes []*classobj.Class) ([]Move, error) {
	shed := p.MaxShedPerEvent
	if shed <= 0 {
		shed = 1
	}
	victims := victimsOn(ev.Source, classes, shed)
	if len(victims) == 0 {
		return nil, nil
	}

	cands, err := candidateHosts(ctx, ev.Source, ms, p.Query)
	if err != nil || len(cands) == 0 {
		return nil, err
	}

	// Precompute forecasts once: ranking consults the key O(n log n)
	// times, and Bank replays its whole member bank per call.
	forecast := make(map[loid.LOID]float64, len(cands))
	for _, hi := range cands {
		forecast[hi.LOID] = p.forecastOf(hi)
	}
	// Keep destinations not themselves predicted to cross the
	// watermark — shedding onto tomorrow's hot spot just schedules the
	// next migration. If every candidate is predicted hot, fall back to
	// the full set: moving to the coolest forecast still beats staying.
	cool := cands[:0:0]
	for _, hi := range cands {
		if forecast[hi.LOID] < p.watermark() {
			cool = append(cool, hi)
		}
	}
	if len(cool) > 0 {
		cands = cool
	}

	zoneOf := func(vaultL loid.LOID) string {
		if v := ms.VaultByLOID(vaultL); v != nil {
			return v.Zone()
		}
		return ""
	}

	var moves []Move
	for i, vic := range victims {
		ranked := rankCandidatesBy(cands, vic.vault, zoneOf(vic.vault),
			func(hi scheduler.HostInfo) float64 { return forecast[hi.LOID] })
		if len(ranked) == 0 {
			continue
		}
		// Spread multiple sheds across destinations instead of piling
		// them all onto the single coolest host.
		dest := ranked[i%len(ranked)]
		toVault := dest.Vaults[0]
		for _, dv := range dest.Vaults {
			if dv == vic.vault {
				toVault = dv // keep the vault: no OPR copy needed
				break
			}
		}
		moves = append(moves, Move{Class: vic.class, Instance: vic.inst, ToHost: dest.LOID, ToVault: toVault})
	}
	return moves, nil
}

// StartForecastScan runs the predictive sweep every interval until
// Stop: it queries the Collection for host records carrying a published
// load history, forecasts each with the policy's predictor, and for
// every host predicted at or above the watermark synthesizes a
// ForecastTrigger event through the same handle path a Monitor outcall
// takes — so per-host cooldown, the global migration rate limit,
// per-instance claims and the EnsureRunning failure path all apply to
// predictive sheds unchanged. The Rebalancer's policy should be (or
// behave like) a *Predictive; the scan only decides WHICH hosts get an
// event, the policy still plans the moves.
func (r *Rebalancer) StartForecastScan(interval time.Duration, p *Predictive) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopScan != nil {
		return
	}
	stop := make(chan struct{})
	r.stopScan = stop
	sctx, scancel := context.WithCancel(context.Background())
	go func() { <-stop; scancel() }()
	r.scanWG.Add(1)
	r.clock.Go(func() {
		defer r.scanWG.Done()
		t := r.clock.NewTicker(interval)
		defer t.Stop()
		for t.Wait(sctx) == nil {
			ctx, cancel := r.clock.WithTimeout(context.Background(), r.cfg.PlanTimeout)
			r.forecastScan(ctx, p)
			cancel()
		}
	})
}

// forecastScan performs one predictive pass: every host whose forecast
// crosses the watermark gets a synthetic trigger event, hottest
// forecast first so the rate limiter spends its tokens where the spike
// is steepest.
func (r *Rebalancer) forecastScan(ctx context.Context, p *Predictive) {
	infos, _, err := scheduler.QueryHostsPartial(ctx, r.ms.Env(), "defined($host_load_history)")
	if err != nil {
		return
	}
	type hot struct {
		loid     loid.LOID
		forecast float64
	}
	var hots []hot
	for _, hi := range infos {
		if hi.Down || len(hi.LoadHistory) == 0 {
			continue
		}
		if f := p.forecastOf(hi); f >= p.watermark() {
			hots = append(hots, hot{loid: hi.LOID, forecast: f})
		}
	}
	// infos arrives LOID-sorted, so this stable sort keeps the scan
	// deterministic under the virtual clock.
	for i := 1; i < len(hots); i++ {
		for j := i; j > 0 && hots[j].forecast > hots[j-1].forecast; j-- {
			hots[j], hots[j-1] = hots[j-1], hots[j]
		}
	}
	now := r.now()
	for _, h := range hots {
		r.handle(proto.NotifyArgs{Source: h.loid, Trigger: ForecastTrigger, Time: now})
	}
}
