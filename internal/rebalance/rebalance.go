// Package rebalance hardens the §3.5 monitor→migrate feedback loop into
// a production subsystem.
//
// The paper sketches the arc: Hosts carry guarded triggers ("initiate
// object migration if its load rises above a threshold", §2.1), the
// Monitor registers outcalls for them (§3.5), and somebody — "the
// Enactor or Scheduler perform the monitoring" — turns the resulting
// events into new placements. Earlier experiments wired that somebody up
// inline: a synchronous Monitor handler that called core.Migrate on the
// Host's own outcall goroutine, inside the Host's RPC timeout, with no
// concurrency bound, no hysteresis, and no protection against two events
// migrating the same instance at once.
//
// The Rebalancer replaces that with:
//
//   - asynchronous intake: it subscribes via monitor.OnEventAsync, so
//     trigger delivery returns immediately and migration work runs on the
//     Rebalancer's own goroutines behind a bounded queue;
//   - pluggable planning: a Policy maps each trigger event to a set of
//     Moves (default: LeastLoaded — shed the hottest instance from the
//     overloaded host to the least-loaded compatible host, zone- and
//     vault-aware, via the Collection);
//   - damping: a per-host cooldown suppresses re-shedding a host that
//     was just rebalanced, and a global token-bucket rate limit bounds
//     metasystem-wide migration churn;
//   - safety: per-instance serialization comes from core.Migrate's
//     migration locks; the Rebalancer additionally skips instances whose
//     migration is already in flight, and after a failed migration calls
//     core.EnsureRunning so a fault mid-move converges back to "running
//     exactly once". A periodic Reconcile sweep does the same for every
//     managed instance and clears stray OPR copies.
//
// Everything is observable: legion_rebalance_* counters, a migration
// latency histogram, and rebalance/* spans in the runtime's span log.
package rebalance

import (
	"context"
	"errors"
	"sync"
	"time"

	"legion/internal/classobj"
	"legion/internal/core"
	"legion/internal/fanout"
	"legion/internal/loid"
	"legion/internal/proto"
	"legion/internal/telemetry"
	"legion/internal/vclock"
)

// Move is one planned migration: put Instance of Class on (ToHost,
// ToVault).
type Move struct {
	Class    *classobj.Class
	Instance loid.LOID
	ToHost   loid.LOID
	ToVault  loid.LOID
}

// Policy plans migrations in response to a trigger event. Plan runs on a
// Rebalancer worker goroutine (never on the Monitor delivery path) and
// may query the Collection; returning no moves is the normal "nothing to
// do" outcome.
type Policy interface {
	Plan(ctx context.Context, ev proto.NotifyArgs, ms *core.Metasystem, classes []*classobj.Class) ([]Move, error)
}

// Config parameterizes a Rebalancer. The zero value of every field is
// usable: New fills in defaults.
type Config struct {
	// Classes are the object classes the Rebalancer manages. Instances of
	// other classes are never moved by it.
	Classes []*classobj.Class
	// Policy plans moves from events; nil uses NewLeastLoaded().
	Policy Policy
	// MaxConcurrent bounds simultaneously-executing migrations
	// (default 4).
	MaxConcurrent int
	// Cooldown is the per-source-host hysteresis window: after the
	// Rebalancer sheds load off a host, further events from that host are
	// ignored until the window passes (default 10s). Zero keeps the
	// default; negative disables cooldown.
	Cooldown time.Duration
	// RatePerSec caps metasystem-wide migrations per second via a token
	// bucket with burst MaxConcurrent (default 0 = unlimited).
	RatePerSec float64
	// QueueDepth bounds the Monitor event queue feeding this Rebalancer
	// (default monitor.DefaultQueueDepth).
	QueueDepth int
	// PlanTimeout bounds one event's plan+migrate episode (default 30s).
	PlanTimeout time.Duration
	// Clock overrides the time source for cooldown/rate-limit
	// bookkeeping, plan deadlines, and the reconcile sweep; nil means
	// the metasystem runtime's clock.
	Clock vclock.Clock
}

// Rebalancer owns the monitor→migrate arc for a metasystem.
type Rebalancer struct {
	ms    *core.Metasystem
	cfg   Config
	clock vclock.Clock
	now   func() time.Time

	mu        sync.Mutex
	started   bool
	stopMon   func() // detaches the OnEventAsync subscription
	stopSweep chan struct{}
	sweepWG   sync.WaitGroup
	stopScan  chan struct{} // forecast scan (predictive.go)
	scanWG    sync.WaitGroup
	lastShed  map[loid.LOID]time.Time // source host -> last successful shed
	inflight  map[loid.LOID]bool      // instances being migrated by us
	tokens    float64                 // rate-limit bucket level
	lastFill  time.Time

	events      *telemetry.Counter
	migrationsO *telemetry.Counter // result="ok"
	migrationsF *telemetry.Counter // result="failed"
	recoveries  *telemetry.Counter
	skipCool    *telemetry.Counter
	skipRate    *telemetry.Counter
	skipBusy    *telemetry.Counter
	skipPlan    *telemetry.Counter
	migSeconds  *telemetry.Histogram
	spans       *telemetry.SpanLog
}

// New builds a Rebalancer over the metasystem. Call Start to subscribe
// it to the Monitor; until then it is inert.
func New(ms *core.Metasystem, cfg Config) *Rebalancer {
	if cfg.Policy == nil {
		cfg.Policy = NewLeastLoaded()
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = 10 * time.Second
	}
	if cfg.PlanTimeout <= 0 {
		cfg.PlanTimeout = 30 * time.Second
	}
	clock := cfg.Clock
	if clock == nil {
		clock = ms.Runtime().Clock()
	}
	now := clock.Now
	reg := ms.Runtime().Metrics()
	r := &Rebalancer{
		ms:          ms,
		cfg:         cfg,
		clock:       clock,
		now:         now,
		lastShed:    make(map[loid.LOID]time.Time),
		inflight:    make(map[loid.LOID]bool),
		tokens:      float64(cfg.MaxConcurrent),
		lastFill:    now(),
		events:      reg.Counter("legion_rebalance_events_total"),
		migrationsO: reg.Counter("legion_rebalance_migrations_total", "result", "ok"),
		migrationsF: reg.Counter("legion_rebalance_migrations_total", "result", "failed"),
		recoveries:  reg.Counter("legion_rebalance_recoveries_total"),
		skipCool:    reg.Counter("legion_rebalance_skipped_total", "reason", "cooldown"),
		skipRate:    reg.Counter("legion_rebalance_skipped_total", "reason", "rate_limited"),
		skipBusy:    reg.Counter("legion_rebalance_skipped_total", "reason", "in_flight"),
		skipPlan:    reg.Counter("legion_rebalance_skipped_total", "reason", "no_plan"),
		migSeconds:  reg.Histogram("legion_rebalance_migration_seconds", telemetry.LatencyBuckets),
		spans:       reg.Spans(),
	}
	return r
}

// Start subscribes the Rebalancer to the metasystem's Monitor. Events
// arriving before Start (or after Stop) are ignored. Start is not
// idempotent-safe to call twice without Stop; it returns an error then.
func (r *Rebalancer) Start() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return errors.New("rebalance: already started")
	}
	r.started = true
	r.stopMon = r.ms.Monitor.OnEventAsync(r.cfg.QueueDepth, func(ev proto.NotifyArgs) {
		r.handle(ev)
	})
	return nil
}

// StartSweeping additionally runs Reconcile every interval until Stop.
func (r *Rebalancer) StartSweeping(interval time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopSweep != nil {
		return
	}
	stop := make(chan struct{})
	r.stopSweep = stop
	sctx, scancel := context.WithCancel(context.Background())
	go func() { <-stop; scancel() }()
	r.sweepWG.Add(1)
	r.clock.Go(func() {
		defer r.sweepWG.Done()
		t := r.clock.NewTicker(interval)
		defer t.Stop()
		for t.Wait(sctx) == nil {
			ctx, cancel := r.clock.WithTimeout(context.Background(), r.cfg.PlanTimeout)
			_ = r.Reconcile(ctx)
			cancel()
		}
	})
}

// Stop detaches from the Monitor and halts the reconcile sweep. Any
// in-flight migration episode finishes on its own goroutine; Stop does
// not wait for it.
func (r *Rebalancer) Stop() {
	r.mu.Lock()
	stopMon := r.stopMon
	stopSweep := r.stopSweep
	stopScan := r.stopScan
	r.stopMon = nil
	r.stopSweep = nil
	r.stopScan = nil
	r.started = false
	r.mu.Unlock()
	if stopMon != nil {
		stopMon()
	}
	if stopSweep != nil {
		close(stopSweep)
		r.sweepWG.Wait()
	}
	if stopScan != nil {
		close(stopScan)
		r.scanWG.Wait()
	}
}

// handle is the per-event worker: damp, plan, execute. It runs on the
// Monitor's async dispatch goroutine for this subscription, so events
// are processed one at a time in arrival order; the moves within one
// event fan out up to MaxConcurrent wide.
func (r *Rebalancer) handle(ev proto.NotifyArgs) {
	r.events.Inc()
	if r.underCooldown(ev.Source) {
		r.skipCool.Inc()
		return
	}

	ctx, cancel := r.clock.WithTimeout(context.Background(), r.cfg.PlanTimeout)
	defer cancel()
	ctx, span := r.spans.StartIn(ctx, "rebalance/handle_event", r.ms.Domain())

	moves, err := r.cfg.Policy.Plan(ctx, ev, r.ms, r.cfg.Classes)
	if err != nil || len(moves) == 0 {
		r.skipPlan.Inc()
		span.Finish(err)
		return
	}
	ok := r.execute(ctx, moves)
	if ok > 0 {
		r.markShed(ev.Source)
	}
	span.Finish(nil)
}

// Reconcile is the anti-entropy sweep: every instance of every managed
// class is driven back to "running exactly once where its class says,
// with no stray OPR copies" via core.EnsureRunning. It returns the first
// error encountered (after attempting every instance).
func (r *Rebalancer) Reconcile(ctx context.Context) error {
	ctx, span := r.spans.StartIn(ctx, "rebalance/reconcile", r.ms.Domain())
	var firstErr error
	for _, c := range r.cfg.Classes {
		for _, inst := range c.Instances() {
			if r.ms.MigrationInFlight(inst) {
				continue
			}
			if err := r.ensureRunning(ctx, c, inst); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	span.Finish(firstErr)
	return firstErr
}

// ensureRunning wraps core.EnsureRunning with recovery accounting: the
// counter moves only when the instance was actually down beforehand.
func (r *Rebalancer) ensureRunning(ctx context.Context, c *classobj.Class, inst loid.LOID) error {
	wasDown := true
	if hL, _, err := c.WhereIs(inst); err == nil {
		if h := r.ms.HostByLOID(hL); h != nil && h.IsRunning(inst) {
			wasDown = false
		}
	}
	err := r.ms.EnsureRunning(ctx, c, inst)
	if err == nil && wasDown {
		r.recoveries.Inc()
	}
	return err
}

// execute runs the moves with bounded concurrency and returns how many
// succeeded. A failed move triggers EnsureRunning so the instance
// converges back to exactly-once.
func (r *Rebalancer) execute(ctx context.Context, moves []Move) int {
	var okCount int64
	var mu sync.Mutex
	fanout.Do(r.cfg.MaxConcurrent, len(moves), func(i int) {
		m := moves[i]
		if !r.claim(m.Instance) {
			r.skipBusy.Inc()
			return
		}
		defer r.release(m.Instance)
		if !r.takeToken() {
			r.skipRate.Inc()
			return
		}
		mctx, span := r.spans.StartIn(ctx, "rebalance/migrate", r.ms.Domain())
		start := r.now()
		err := r.ms.Migrate(mctx, m.Class, m.Instance, m.ToHost, m.ToVault)
		r.migSeconds.Observe(r.clock.Since(start).Seconds())
		span.Finish(err)
		if err != nil {
			r.migrationsF.Inc()
			// The failure path inside Migrate already restored what it
			// could; EnsureRunning closes the remaining gap (e.g. the
			// source host died between deactivate and recovery).
			_ = r.ensureRunning(mctx, m.Class, m.Instance)
			return
		}
		r.migrationsO.Inc()
		mu.Lock()
		okCount++
		mu.Unlock()
	})
	return int(okCount)
}

// claim marks the instance as being migrated by this Rebalancer;
// returns false if it already is (here or in core).
func (r *Rebalancer) claim(inst loid.LOID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.inflight[inst] {
		return false
	}
	if r.ms.MigrationInFlight(inst) {
		return false
	}
	r.inflight[inst] = true
	return true
}

func (r *Rebalancer) release(inst loid.LOID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.inflight, inst)
}

// underCooldown reports whether the source host was shed too recently.
func (r *Rebalancer) underCooldown(src loid.LOID) bool {
	if r.cfg.Cooldown <= 0 {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	last, ok := r.lastShed[src]
	return ok && r.now().Sub(last) < r.cfg.Cooldown
}

func (r *Rebalancer) markShed(src loid.LOID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lastShed[src] = r.now()
}

// takeToken consumes one migration token from the global rate bucket.
// With RatePerSec <= 0 every take succeeds.
func (r *Rebalancer) takeToken() bool {
	if r.cfg.RatePerSec <= 0 {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	r.tokens += now.Sub(r.lastFill).Seconds() * r.cfg.RatePerSec
	if cap := float64(r.cfg.MaxConcurrent); r.tokens > cap {
		r.tokens = cap
	}
	r.lastFill = now
	if r.tokens < 1 {
		return false
	}
	r.tokens--
	return true
}
