package rebalance

import (
	"context"
	"sort"

	"legion/internal/classobj"
	"legion/internal/core"
	"legion/internal/economy"
	"legion/internal/loid"
	"legion/internal/proto"
	"legion/internal/scheduler"
)

// PreemptingPolicy is the computational economy's eviction arm
// (DESIGN.md §15): when a spot-class host's trigger fires — a paying
// tenant's deadline is at risk on capacity that was sold as
// preemptible — it evicts the lowest-priority instances running there
// and migrates them away, preferring reserved-class destinations so the
// displaced work does not just queue up behind the next preemption.
//
// Eviction is an economy event, not only a placement one: the victim's
// source reservation token is marked preempted on the host (so the E10
// conservation audit does not report the stranded token as a leak once
// the instance has moved) and its ledger charge is refunded — the
// tenant does not pay for preempted time. Both are exactly-once: the
// preempted set is idempotent and economy.Ledger.Refund refunds a
// token at most once, so a re-fired trigger or a failed-then-retried
// migration cannot double-refund.
//
// The actual move rides the existing machinery — core.Migrate under the
// Rebalancer's damping, with EnsureRunning converging a failed move
// back to running-exactly-once.
type PreemptingPolicy struct {
	// MaxShedPerEvent bounds how many instances one trigger event may
	// evict (default 1).
	MaxShedPerEvent int
	// Priority maps an instance to its scheduling priority class; the
	// lowest classes are evicted first. Nil treats every instance as
	// priority 0 (any instance is preemptible). The class records do not
	// retain request priority, so the operator wiring the policy
	// supplies the mapping.
	Priority func(inst loid.LOID) int
	// Ledger, when non-nil, is refunded for each victim's source
	// reservation at eviction time.
	Ledger *economy.Ledger
	// Query selects candidate destination records (default
	// "defined($host_load)").
	Query string
}

// NewPreempting returns a PreemptingPolicy with defaults over the given
// ledger (which may be nil for placement-only preemption).
func NewPreempting(led *economy.Ledger) *PreemptingPolicy {
	return &PreemptingPolicy{MaxShedPerEvent: 1, Ledger: led}
}

// Plan implements Policy.
func (p *PreemptingPolicy) Plan(ctx context.Context, ev proto.NotifyArgs, ms *core.Metasystem, classes []*classobj.Class) ([]Move, error) {
	src := ms.HostByLOID(ev.Source)
	if src == nil || !src.Spot() {
		// Reserved capacity is never preempted; its overload is
		// LeastLoaded's problem.
		return nil, nil
	}
	shed := p.MaxShedPerEvent
	if shed <= 0 {
		shed = 1
	}
	prio := p.Priority
	if prio == nil {
		prio = func(loid.LOID) int { return 0 }
	}

	type victim struct {
		class *classobj.Class
		inst  loid.LOID
		vault loid.LOID
		prio  int
	}
	var victims []victim
	for _, c := range classes {
		for _, inst := range c.Instances() {
			h, v, err := c.WhereIs(inst)
			if err != nil || h != ev.Source {
				continue
			}
			victims = append(victims, victim{class: c, inst: inst, vault: v, prio: prio(inst)})
		}
	}
	if len(victims) == 0 {
		return nil, nil
	}
	// Cheapest blood first: lowest priority class, LOID tiebreak for
	// determinism.
	sort.Slice(victims, func(a, b int) bool {
		if victims[a].prio != victims[b].prio {
			return victims[a].prio < victims[b].prio
		}
		return victims[a].inst.Less(victims[b].inst)
	})
	if len(victims) > shed {
		victims = victims[:shed]
	}

	cands, err := candidateHosts(ctx, ev.Source, ms, p.Query)
	if err != nil || len(cands) == 0 {
		return nil, err
	}
	// Reserved-class destinations first (so the evictee stops being
	// preemptible), then the usual vault/zone/load ranking within each
	// class.
	sort.SliceStable(cands, func(a, b int) bool {
		return !cands[a].Spot && cands[b].Spot
	})

	zoneOf := func(vaultL loid.LOID) string {
		if v := ms.VaultByLOID(vaultL); v != nil {
			return v.Zone()
		}
		return ""
	}

	var moves []Move
	for i, vic := range victims {
		ranked := rankPreserveSpotOrder(cands, vic.vault, zoneOf(vic.vault))
		if len(ranked) == 0 {
			continue
		}
		dest := ranked[i%len(ranked)]
		toVault := dest.Vaults[0]
		for _, dv := range dest.Vaults {
			if dv == vic.vault {
				toVault = dv
				break
			}
		}
		// Economy bookkeeping before the move is attempted: the
		// eviction decision, not the migration outcome, is what ends
		// the tenant's obligation to pay for this grant.
		if tok, ok := src.TokenFor(vic.inst); ok {
			src.NotePreempted(tok.ID)
			if p.Ledger != nil {
				p.Ledger.Refund(tok.ID)
			}
		}
		moves = append(moves, Move{Class: vic.class, Instance: vic.inst, ToHost: dest.LOID, ToVault: toVault})
	}
	return moves, nil
}

// rankPreserveSpotOrder ranks like rankCandidates (vault-reachable, then
// same-zone, then rest, by load) but keeps the caller's reserved-before-
// spot partition as the outermost sort key.
func rankPreserveSpotOrder(cands []scheduler.HostInfo, curVault loid.LOID, vaultZone string) []scheduler.HostInfo {
	tier := func(hi scheduler.HostInfo) int {
		t := 0
		for _, v := range hi.Vaults {
			if v == curVault {
				t = -3
				break
			}
		}
		if t == 0 && vaultZone != "" && hi.Zone == vaultZone {
			t = -2
		}
		if hi.Spot {
			t += 10 // spot destinations always rank behind reserved ones
		}
		return t
	}
	out := append([]scheduler.HostInfo(nil), cands...)
	sort.SliceStable(out, func(i, j int) bool {
		ti, tj := tier(out[i]), tier(out[j])
		if ti != tj {
			return ti < tj
		}
		return out[i].Load < out[j].Load
	})
	return out
}
