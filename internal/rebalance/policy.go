package rebalance

import (
	"context"
	"sort"

	"legion/internal/classobj"
	"legion/internal/core"
	"legion/internal/loid"
	"legion/internal/proto"
	"legion/internal/scheduler"
)

// LeastLoaded is the default rebalancing policy: when a host's overload
// trigger fires, shed up to MaxShedPerEvent of its managed instances to
// the least-loaded compatible hosts.
//
// Destination selection goes through the Collection (the same directory
// the Scheduler uses), filtering records that are flagged down or
// advertise no compatible vault, and ranks the survivors:
//
//  1. hosts that can reach the instance's current vault (the migration
//     stays single-vault — no OPR copy at all);
//  2. hosts in the same zone as the instance's current vault (a
//     cross-vault move that stays inside the zone);
//  3. everything else;
//
// ties broken by ascending advertised load. If the Collection yields no
// usable candidate (e.g. no daemon is pushing load updates), the policy
// falls back to direct host introspection via the metasystem.
type LeastLoaded struct {
	// MaxShedPerEvent bounds how many instances one trigger event may
	// move off the source host (default 1).
	MaxShedPerEvent int
	// Query selects candidate destination records (default
	// "defined($host_load)").
	Query string
}

// NewLeastLoaded returns the default policy.
func NewLeastLoaded() *LeastLoaded {
	return &LeastLoaded{MaxShedPerEvent: 1, Query: "defined($host_load)"}
}

// Plan implements Policy.
func (p *LeastLoaded) Plan(ctx context.Context, ev proto.NotifyArgs, ms *core.Metasystem, classes []*classobj.Class) ([]Move, error) {
	shed := p.MaxShedPerEvent
	if shed <= 0 {
		shed = 1
	}

	victims := victimsOn(ev.Source, classes, shed)
	if len(victims) == 0 {
		return nil, nil
	}

	cands, err := p.candidates(ctx, ev.Source, ms)
	if err != nil || len(cands) == 0 {
		return nil, err
	}

	zoneOf := func(vaultL loid.LOID) string {
		if v := ms.VaultByLOID(vaultL); v != nil {
			return v.Zone()
		}
		return ""
	}

	var moves []Move
	for i, vic := range victims {
		ranked := rankCandidates(cands, vic.vault, zoneOf(vic.vault))
		if len(ranked) == 0 {
			continue
		}
		// Spread multiple sheds across destinations instead of piling
		// them all onto the single coolest host.
		dest := ranked[i%len(ranked)]
		toVault := dest.Vaults[0]
		for _, dv := range dest.Vaults {
			if dv == vic.vault {
				toVault = dv // keep the vault: no OPR copy needed
				break
			}
		}
		moves = append(moves, Move{Class: vic.class, Instance: vic.inst, ToHost: dest.LOID, ToVault: toVault})
	}
	return moves, nil
}

// candidates returns usable destination host records, Collection-first
// with a metasystem-introspection fallback.
func (p *LeastLoaded) candidates(ctx context.Context, source loid.LOID, ms *core.Metasystem) ([]scheduler.HostInfo, error) {
	return candidateHosts(ctx, source, ms, p.Query)
}

// victim is one shed candidate: a managed instance placed on the
// overloaded source.
type victim struct {
	class *classobj.Class
	inst  loid.LOID
	vault loid.LOID
}

// victimsOn lists up to shed managed instances the class records place
// on source. Shared by every rebalancing policy.
func victimsOn(source loid.LOID, classes []*classobj.Class, shed int) []victim {
	var victims []victim
	for _, c := range classes {
		for _, inst := range c.Instances() {
			h, v, err := c.WhereIs(inst)
			if err != nil || h != source {
				continue
			}
			victims = append(victims, victim{class: c, inst: inst, vault: v})
			if len(victims) >= shed {
				return victims
			}
		}
	}
	return victims
}

// candidateHosts returns usable destination host records for a shed off
// source, Collection-first with a metasystem-introspection fallback.
// Shared by every rebalancing policy.
func candidateHosts(ctx context.Context, source loid.LOID, ms *core.Metasystem, query string) ([]scheduler.HostInfo, error) {
	if query == "" {
		query = "defined($host_load)"
	}
	infos, _, err := scheduler.QueryHostsPartial(ctx, ms.Env(), query)
	var out []scheduler.HostInfo
	if err == nil {
		for _, hi := range infos {
			if hi.LOID == source || hi.Down || len(hi.Vaults) == 0 {
				continue
			}
			out = append(out, hi)
		}
	}
	if len(out) == 0 {
		// Collection empty or stale — fall back to live host state.
		for _, h := range ms.Hosts() {
			if h.LOID() == source || len(h.CompatibleVaults()) == 0 {
				continue
			}
			out = append(out, scheduler.HostInfo{
				LOID:   h.LOID(),
				Load:   h.Load(),
				Zone:   h.Zone(),
				Price:  h.Price(),
				Spot:   h.Spot(),
				Vaults: h.CompatibleVaults(),
			})
		}
	}
	return out, nil
}

// rankCandidates orders destinations: current-vault-reachable first,
// then same-zone, then the rest; each tier sorted by ascending load.
func rankCandidates(cands []scheduler.HostInfo, curVault loid.LOID, vaultZone string) []scheduler.HostInfo {
	return rankCandidatesBy(cands, curVault, vaultZone,
		func(hi scheduler.HostInfo) float64 { return hi.Load })
}

// rankCandidatesBy is rankCandidates with a pluggable coolness key —
// predictive policies rank by forecast load, reactive ones by current
// load; the vault/zone tiering is identical.
func rankCandidatesBy(cands []scheduler.HostInfo, curVault loid.LOID, vaultZone string, key func(scheduler.HostInfo) float64) []scheduler.HostInfo {
	tier := func(hi scheduler.HostInfo) int {
		for _, v := range hi.Vaults {
			if v == curVault {
				return 0
			}
		}
		if vaultZone != "" && hi.Zone == vaultZone {
			return 1
		}
		return 2
	}
	out := append([]scheduler.HostInfo(nil), cands...)
	sort.SliceStable(out, func(i, j int) bool {
		ti, tj := tier(out[i]), tier(out[j])
		if ti != tj {
			return ti < tj
		}
		return key(out[i]) < key(out[j])
	})
	return out
}
