package rebalance

import (
	"context"
	"testing"
	"time"

	"legion/internal/classobj"
	"legion/internal/collection/daemon"
	"legion/internal/nws"
	"legion/internal/proto"
	"legion/internal/scheduler"
)

// TestPredictiveDegradesToLeastLoadedWithoutHistory is the differential
// contract: on a fleet whose records carry no $host_load_history (no
// daemon publishing, or HistoryLen disabled), Predictive's forecast of
// every host is its instantaneous load, so — below the watermark — it
// must plan exactly the moves LeastLoaded plans.
func TestPredictiveDegradesToLeastLoadedWithoutHistory(t *testing.T) {
	ctx := context.Background()
	plans := make([][]Move, 2)
	for i, policy := range []Policy{
		&LeastLoaded{MaxShedPerEvent: 2},
		&Predictive{MaxShedPerEvent: 2, Watermark: 0.9},
	} {
		ms := buildMeta(t, 4, 2)
		c := ms.DefineClass("Worker", nil)
		insts, p, err := c.CreateInstance(ctx, 2, nil, nil)
		if err != nil || len(insts) != 2 {
			t.Fatalf("create: %v %v", insts, err)
		}
		src := p.Host
		// A deterministic load spread, all below the watermark so the
		// predictive destination filter keeps every candidate.
		for j, h := range ms.Hosts() {
			if h.LOID() == src {
				h.SetExternalLoad(0.85)
			} else {
				h.SetExternalLoad(0.1 * float64(j+1))
			}
		}
		ms.ReassessAll(ctx)

		moves, err := policy.Plan(ctx, proto.NotifyArgs{Source: src}, ms, []*classobj.Class{c})
		if err != nil {
			t.Fatal(err)
		}
		plans[i] = moves
		ms.Close()
	}
	// Same seed builds identical metasystems, so the LOIDs align.
	if len(plans[0]) != len(plans[1]) || len(plans[0]) == 0 {
		t.Fatalf("plan sizes differ: least-loaded %d, predictive %d", len(plans[0]), len(plans[1]))
	}
	for i := range plans[0] {
		ll, pr := plans[0][i], plans[1][i]
		if ll.Instance != pr.Instance || ll.ToHost != pr.ToHost || ll.ToVault != pr.ToVault {
			t.Errorf("move %d differs: least-loaded %+v, predictive %+v", i, ll, pr)
		}
	}
}

// TestPredictiveRanksByForecastNotCurrentLoad: two destinations — one
// spiky (momentarily idle, but its recent history says it runs warm)
// and one steady. LeastLoaded would pick the spiky host (lowest
// instantaneous load); Predictive must rank by the window-mean forecast
// and pick the steady one.
func TestPredictiveRanksByForecastNotCurrentLoad(t *testing.T) {
	ctx := context.Background()
	ms := buildMeta(t, 3, 1)
	c := ms.DefineClass("Worker", nil)
	insts, p, err := c.CreateInstance(ctx, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := p.Host

	// Publish histories through the daemon so the policy sees exactly
	// what production sees.
	d := ms.NewDaemonConfig(daemon.Config{Interval: time.Second, HistoryLen: 8})
	hosts := ms.Hosts()
	spikyIdx, steadyIdx := -1, -1
	for i, h := range hosts {
		if h.LOID() == src {
			continue
		}
		if spikyIdx < 0 {
			spikyIdx = i
		} else {
			steadyIdx = i
		}
	}
	series := [][]float64{
		{0.7, 0.7, 0.7, 0.1},     // spiky: idle this instant, warm on average
		{0.35, 0.35, 0.35, 0.35}, // steady
	}
	for s := 0; s < len(series[0]); s++ {
		for _, h := range hosts {
			switch {
			case h.LOID() == src:
				h.SetExternalLoad(0.9)
			case h == hosts[spikyIdx]:
				h.SetExternalLoad(series[0][s])
			default:
				h.SetExternalLoad(series[1][s])
			}
		}
		ms.ReassessAll(ctx)
		d.Sweep(ctx)
	}

	pol := &Predictive{Watermark: 0.8, Predictor: nws.WindowMean{K: 4}}
	moves, err := pol.Plan(ctx, proto.NotifyArgs{Source: src}, ms, []*classobj.Class{c})
	if err != nil || len(moves) != 1 {
		t.Fatalf("plan: %v %v", moves, err)
	}
	if moves[0].ToHost != hosts[steadyIdx].LOID() {
		t.Errorf("predictive chose %v (the spiky host?); want steady host %v",
			moves[0].ToHost, hosts[steadyIdx].LOID())
	}
	if moves[0].Instance != insts[0] {
		t.Errorf("victim = %v, want %v", moves[0].Instance, insts[0])
	}

	// The reactive ranking really would have differed: the spiky host
	// has the lower instantaneous load.
	infos, _, err := scheduler.QueryHostsPartial(ctx, ms.Env(), "defined($host_load)")
	if err != nil {
		t.Fatal(err)
	}
	var spikyLoad, steadyLoad float64
	for _, hi := range infos {
		switch hi.LOID {
		case hosts[spikyIdx].LOID():
			spikyLoad = hi.Load
		case hosts[steadyIdx].LOID():
			steadyLoad = hi.Load
		}
	}
	if spikyLoad >= steadyLoad {
		t.Fatalf("test premise broken: spiky load %v >= steady load %v", spikyLoad, steadyLoad)
	}
	ms.Close()
}

// TestForecastScanShedsBeforeOverload drives the proactive loop end to
// end: no overload trigger ever fires (the source never crosses the
// reactive threshold during the test), yet the forecast scan sees the
// rising published history, synthesizes a ForecastTrigger event, and
// the instance moves off the heating host through the normal damped
// machinery.
func TestForecastScanShedsBeforeOverload(t *testing.T) {
	ctx := context.Background()
	ms := buildMeta(t, 3, 1)
	c := ms.DefineClass("Worker", nil)
	insts, p, err := c.CreateInstance(ctx, 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, src := insts[0], p.Host

	d := ms.NewDaemonConfig(daemon.Config{Interval: time.Second, HistoryLen: 8})
	pol := &Predictive{Watermark: 0.8, Predictor: nws.Trend{K: 4}}
	r := New(ms, Config{Classes: []*classobj.Class{c}, Policy: pol, Cooldown: -1})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	// The source ramps 0.3 → 0.75 — below the watermark throughout —
	// but the trend extrapolation crosses 0.8 while the current load is
	// still 0.75: the scan must shed on the ramp, before the 0.85
	// sample ever becomes the present. Feed the ramp and scan after
	// each sweep.
	for s, load := range []float64{0.3, 0.45, 0.6, 0.75, 0.85} {
		for _, h := range ms.Hosts() {
			if h.LOID() == src {
				h.SetExternalLoad(load)
			} else {
				h.SetExternalLoad(0.2)
			}
		}
		ms.ReassessAll(ctx)
		d.Sweep(ctx)
		r.forecastScan(ctx, pol)
		hL, _, err := c.WhereIs(inst)
		if err != nil {
			t.Fatal(err)
		}
		if hL != src {
			// Shed must land before the 0.85 sample is current: the
			// whole point of predicting.
			if load >= 0.85 {
				t.Errorf("migration only after the source was already hot (step %d)", s)
			}
			reg := ms.Runtime().Metrics()
			if n := reg.CounterValue("legion_rebalance_migrations_total", "result", "ok"); n < 1 {
				t.Errorf("migrations ok counter = %d", n)
			}
			if a := ms.AuditMigrations(c); !a.Clean() {
				t.Errorf("audit: %v", a)
			}
			ms.Close()
			return
		}
	}
	t.Fatal("forecast scan never shed the heating host")
}
