// Package nws provides Network Weather Service-style resource
// forecasting.
//
// The paper (§3.2) motivates Collection function injection with exactly
// this use: "This capability is especially important to users of the
// Network Weather Service, which predicts future resource availability
// based on statistical analysis of past behavior." (Wolski, HPDC-6.)
//
// Following the NWS design, several simple predictors run side by side —
// last value, running mean, sliding-window mean/median, exponential
// smoothing — and an adaptive meta-predictor tracks each one's past
// mean-squared error, answering with the forecast of whichever predictor
// has been most accurate so far.
//
// The bridge to the RMI is InjectForecast: it registers a
// "forecast_load" query function on a Collection, computing a prediction
// from the record's $host_load_history attribute, so schedulers can write
// queries like "forecast_load() < 0.5" — dynamically computed description
// information, per the paper.
package nws

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"legion/internal/attr"
	"legion/internal/collection"
	"legion/internal/query"
)

// Predictor forecasts the next value of a series from its history.
type Predictor interface {
	// Name identifies the predictor in reports.
	Name() string
	// Predict returns the forecast for the next observation. The history
	// is ordered oldest first and is non-empty.
	Predict(history []float64) float64
}

// LastValue predicts the most recent observation.
type LastValue struct{}

// Name implements Predictor.
func (LastValue) Name() string { return "last" }

// Predict implements Predictor.
func (LastValue) Predict(h []float64) float64 { return h[len(h)-1] }

// RunningMean predicts the mean of the full history.
type RunningMean struct{}

// Name implements Predictor.
func (RunningMean) Name() string { return "mean" }

// Predict implements Predictor.
func (RunningMean) Predict(h []float64) float64 {
	s := 0.0
	for _, v := range h {
		s += v
	}
	return s / float64(len(h))
}

// WindowMean predicts the mean of the last K observations.
type WindowMean struct {
	// K is the window size; values < 1 behave as 1.
	K int
}

// Name implements Predictor.
func (w WindowMean) Name() string { return fmt.Sprintf("win-mean-%d", w.K) }

// Predict implements Predictor.
func (w WindowMean) Predict(h []float64) float64 {
	k := w.K
	if k < 1 {
		k = 1
	}
	if k > len(h) {
		k = len(h)
	}
	s := 0.0
	for _, v := range h[len(h)-k:] {
		s += v
	}
	return s / float64(k)
}

// WindowMedian predicts the median of the last K observations — NWS's
// robust choice under spiky load.
type WindowMedian struct {
	// K is the window size; values < 1 behave as 1.
	K int
}

// Name implements Predictor.
func (w WindowMedian) Name() string { return fmt.Sprintf("win-median-%d", w.K) }

// Predict implements Predictor.
func (w WindowMedian) Predict(h []float64) float64 {
	k := w.K
	if k < 1 {
		k = 1
	}
	if k > len(h) {
		k = len(h)
	}
	win := append([]float64(nil), h[len(h)-k:]...)
	sort.Float64s(win)
	mid := len(win) / 2
	if len(win)%2 == 1 {
		return win[mid]
	}
	return (win[mid-1] + win[mid]) / 2
}

// ExpSmoothing predicts with exponential smoothing:
// s(t) = alpha*x(t) + (1-alpha)*s(t-1).
type ExpSmoothing struct {
	// Alpha in (0,1]; values outside are clamped.
	Alpha float64
}

// Name implements Predictor.
func (e ExpSmoothing) Name() string { return fmt.Sprintf("exp-%.2f", e.Alpha) }

// Predict implements Predictor.
func (e ExpSmoothing) Predict(h []float64) float64 {
	alpha := e.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	s := h[0]
	for _, v := range h[1:] {
		s = alpha*v + (1-alpha)*s
	}
	return s
}

// Adaptive is the NWS meta-predictor: it scores a bank of predictors by
// their historical mean-squared error on the series seen so far and
// forecasts with the current best. It is stateful; feed observations in
// order with Observe and ask for Forecast.
type Adaptive struct {
	mu      sync.Mutex
	bank    []Predictor
	history []float64
	sqErr   []float64
	n       []int
	maxHist int
}

// NewAdaptive builds an Adaptive over the given bank (a default bank is
// used when empty).
func NewAdaptive(bank ...Predictor) *Adaptive {
	if len(bank) == 0 {
		bank = []Predictor{
			LastValue{}, RunningMean{}, WindowMean{K: 5},
			WindowMedian{K: 5}, ExpSmoothing{Alpha: 0.5},
		}
	}
	return &Adaptive{
		bank:    bank,
		sqErr:   make([]float64, len(bank)),
		n:       make([]int, len(bank)),
		maxHist: 512,
	}
}

// Observe appends an observation, first scoring every predictor's
// standing forecast against it.
func (a *Adaptive) Observe(v float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.history) > 0 {
		for i, p := range a.bank {
			e := p.Predict(a.history) - v
			a.sqErr[i] += e * e
			a.n[i]++
		}
	}
	a.history = append(a.history, v)
	if len(a.history) > a.maxHist {
		a.history = append([]float64(nil), a.history[len(a.history)-a.maxHist:]...)
	}
}

// Forecast returns the best predictor's forecast and that predictor's
// name. It errors when no observations exist.
func (a *Adaptive) Forecast() (float64, string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.history) == 0 {
		return 0, "", errors.New("nws: no observations")
	}
	best, bestMSE := 0, math.Inf(1)
	for i := range a.bank {
		if a.n[i] == 0 {
			continue
		}
		mse := a.sqErr[i] / float64(a.n[i])
		if mse < bestMSE {
			best, bestMSE = i, mse
		}
	}
	return a.bank[best].Predict(a.history), a.bank[best].Name(), nil
}

// History returns a copy of the observed series.
func (a *Adaptive) History() []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]float64(nil), a.history...)
}

// HistoryAttr converts a series to the attribute value stored as
// $host_load_history.
func HistoryAttr(h []float64) attr.Value {
	vals := make([]attr.Value, len(h))
	for i, v := range h {
		vals[i] = attr.Float(v)
	}
	return attr.List(vals...)
}

// historyFromAttr parses $host_load_history back into a series.
func historyFromAttr(v attr.Value) ([]float64, error) {
	if v.Kind() != attr.KindList || v.Len() == 0 {
		return nil, errors.New("nws: host_load_history missing or empty")
	}
	out := make([]float64, v.Len())
	for i := 0; i < v.Len(); i++ {
		f, ok := v.At(i).AsFloat()
		if !ok {
			return nil, fmt.Errorf("nws: history element %d is %s", i, v.At(i).Kind())
		}
		out[i] = f
	}
	return out, nil
}

// InjectForecast registers the "forecast_load" function on a Collection:
// it predicts the next load of the record under evaluation from its
// $host_load_history attribute using the given predictor (the adaptive
// default when nil). An optional string argument selects a different
// history attribute.
func InjectForecast(c *collection.Collection, p Predictor) {
	if p == nil {
		p = WindowMean{K: 5}
	}
	c.InjectFunc("forecast_load", func(rec query.Record, args []attr.Value) (attr.Value, error) {
		attrName := "host_load_history"
		if len(args) == 1 && args[0].Kind() == attr.KindString {
			attrName = args[0].Str()
		} else if len(args) > 1 {
			return attr.Value{}, errors.New("forecast_load wants at most one attribute-name argument")
		}
		v, ok := rec.Lookup(attrName)
		if !ok {
			return attr.Value{}, fmt.Errorf("record has no $%s", attrName)
		}
		h, err := historyFromAttr(v)
		if err != nil {
			return attr.Value{}, err
		}
		return attr.Float(p.Predict(h)), nil
	})
}
