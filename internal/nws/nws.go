// Package nws provides Network Weather Service-style resource
// forecasting.
//
// The paper (§3.2) motivates Collection function injection with exactly
// this use: "This capability is especially important to users of the
// Network Weather Service, which predicts future resource availability
// based on statistical analysis of past behavior." (Wolski, HPDC-6.)
//
// Following the NWS design, several simple predictors run side by side —
// last value, running mean, sliding-window mean/median, exponential
// smoothing — and an adaptive meta-predictor tracks each one's past
// mean-squared error, answering with the forecast of whichever predictor
// has been most accurate so far.
//
// The bridge to the RMI is InjectForecast: it registers a
// "forecast_load" query function on a Collection, computing a prediction
// from the record's $host_load_history attribute, so schedulers can write
// queries like "forecast_load() < 0.5" — dynamically computed description
// information, per the paper.
package nws

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"legion/internal/attr"
	"legion/internal/collection"
	"legion/internal/query"
)

// Predictor forecasts the next value of a series from its history.
type Predictor interface {
	// Name identifies the predictor in reports.
	Name() string
	// Predict returns the forecast for the next observation. The history
	// is ordered oldest first and is non-empty.
	Predict(history []float64) float64
}

// LastValue predicts the most recent observation.
type LastValue struct{}

// Name implements Predictor.
func (LastValue) Name() string { return "last" }

// Predict implements Predictor.
func (LastValue) Predict(h []float64) float64 { return h[len(h)-1] }

// RunningMean predicts the mean of the full history.
type RunningMean struct{}

// Name implements Predictor.
func (RunningMean) Name() string { return "mean" }

// Predict implements Predictor.
func (RunningMean) Predict(h []float64) float64 {
	s := 0.0
	for _, v := range h {
		s += v
	}
	return s / float64(len(h))
}

// WindowMean predicts the mean of the last K observations.
type WindowMean struct {
	// K is the window size; values < 1 behave as 1.
	K int
}

// Name implements Predictor.
func (w WindowMean) Name() string { return fmt.Sprintf("win-mean-%d", w.K) }

// Predict implements Predictor.
func (w WindowMean) Predict(h []float64) float64 {
	k := w.K
	if k < 1 {
		k = 1
	}
	if k > len(h) {
		k = len(h)
	}
	s := 0.0
	for _, v := range h[len(h)-k:] {
		s += v
	}
	return s / float64(k)
}

// WindowMedian predicts the median of the last K observations — NWS's
// robust choice under spiky load.
type WindowMedian struct {
	// K is the window size; values < 1 behave as 1.
	K int
}

// Name implements Predictor.
func (w WindowMedian) Name() string { return fmt.Sprintf("win-median-%d", w.K) }

// Predict implements Predictor.
func (w WindowMedian) Predict(h []float64) float64 {
	k := w.K
	if k < 1 {
		k = 1
	}
	if k > len(h) {
		k = len(h)
	}
	win := append([]float64(nil), h[len(h)-k:]...)
	sort.Float64s(win)
	mid := len(win) / 2
	if len(win)%2 == 1 {
		return win[mid]
	}
	return (win[mid-1] + win[mid]) / 2
}

// ExpSmoothing predicts with exponential smoothing:
// s(t) = alpha*x(t) + (1-alpha)*s(t-1).
type ExpSmoothing struct {
	// Alpha in (0,1]; values outside are clamped.
	Alpha float64
}

// Name implements Predictor.
func (e ExpSmoothing) Name() string { return fmt.Sprintf("exp-%.2f", e.Alpha) }

// Predict implements Predictor.
func (e ExpSmoothing) Predict(h []float64) float64 {
	alpha := e.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	s := h[0]
	for _, v := range h[1:] {
		s = alpha*v + (1-alpha)*s
	}
	return s
}

// Trend predicts by least-squares linear extrapolation over the last K
// observations: the one predictor in the kit whose forecast can leave
// the range of its history, which is what makes rebalancing on it
// predictive — a steadily heating host is forecast above the watermark
// while its current load is still below it. Not part of DefaultBank:
// extrapolation is the right tool for monotone ramps and the wrong one
// for noise, so callers opt in (rebalance.Predictive does).
type Trend struct {
	// K is the fit window; values < 2 behave as 2.
	K int
	// Horizon is how many steps past the last observation the fitted
	// line is evaluated (default 1). Controllers whose actuation period
	// spans several samples forecast a full period ahead — predicting
	// one sample out when you can only act every third sample still
	// reacts too late.
	Horizon int
}

// Name implements Predictor.
func (t Trend) Name() string {
	if t.Horizon > 1 {
		return fmt.Sprintf("trend-%d@%d", t.K, t.Horizon)
	}
	return fmt.Sprintf("trend-%d", t.K)
}

func (t Trend) horizon() int {
	if t.Horizon < 1 {
		return 1
	}
	return t.Horizon
}

// Predict implements Predictor.
func (t Trend) Predict(h []float64) float64 {
	k := t.K
	if k < 2 {
		k = 2
	}
	if k > len(h) {
		k = len(h)
	}
	return trendFit(h[len(h)-k:], t.horizon())
}

// trendFit least-squares-fits win (indices 0..m-1) and evaluates the
// line at index m-1+ahead. A single point extrapolates flat.
func trendFit(win []float64, ahead int) float64 {
	m := len(win)
	if m < 2 {
		return win[0]
	}
	var sx, sy, sxx, sxy float64
	for i, v := range win {
		x := float64(i)
		sx += x
		sy += v
		sxx += x * x
		sxy += x * v
	}
	n := float64(m)
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	return intercept + slope*(n-1+float64(ahead))
}

type trendState struct {
	ring    []float64
	idx     int
	n       int
	horizon int
}

func (s *trendState) Observe(v float64) {
	s.ring[s.idx] = v
	s.idx = (s.idx + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
}

func (s *trendState) Forecast() float64 {
	win := make([]float64, 0, s.n)
	if s.n < len(s.ring) {
		win = append(win, s.ring[:s.n]...)
	} else {
		win = append(win, s.ring[s.idx:]...)
		win = append(win, s.ring[:s.idx]...)
	}
	return trendFit(win, s.horizon)
}

// NewState implements Incremental. The fit re-runs over the K-sized
// ring per forecast; K is a small constant, so the cost is O(1) in the
// history length.
func (t Trend) NewState() State {
	k := t.K
	if k < 2 {
		k = 2
	}
	return &trendState{ring: make([]float64, k), horizon: t.horizon()}
}

// Incremental is an optional Predictor extension: predictors that can
// maintain their forecast in O(1) per observation implement it, and
// Adaptive uses the returned State instead of re-running Predict over
// the full history on every Observe. Every built-in predictor is
// Incremental; external predictors that are not fall back to a generic
// replay State whose per-observation cost is O(len(history)).
type Incremental interface {
	Predictor
	// NewState returns a fresh per-series evaluator.
	NewState() State
}

// State is one predictor's incremental view of a series: Observe folds
// in the next value, Forecast answers for the value after that.
type State interface {
	Observe(v float64)
	Forecast() float64
}

type lastState struct{ v float64 }

func (s *lastState) Observe(v float64) { s.v = v }
func (s *lastState) Forecast() float64 { return s.v }

// NewState implements Incremental.
func (LastValue) NewState() State { return &lastState{} }

type meanState struct {
	sum float64
	n   int
}

func (s *meanState) Observe(v float64) { s.sum += v; s.n++ }
func (s *meanState) Forecast() float64 { return s.sum / float64(s.n) }

// NewState implements Incremental. The incremental mean runs over the
// entire observed series, not just Adaptive's bounded history buffer —
// the predictor's own definition, kept exactly instead of approximately.
func (RunningMean) NewState() State { return &meanState{} }

// winState keeps the last K observations in a ring with a running sum.
type winState struct {
	ring   []float64
	sum    float64
	idx, n int
	median bool
}

func (s *winState) Observe(v float64) {
	if s.n < len(s.ring) {
		s.n++
	} else {
		s.sum -= s.ring[s.idx]
	}
	s.ring[s.idx] = v
	s.sum += v
	s.idx = (s.idx + 1) % len(s.ring)
}

func (s *winState) Forecast() float64 {
	if !s.median {
		return s.sum / float64(s.n)
	}
	win := make([]float64, 0, s.n)
	win = append(win, s.ring[:s.n]...)
	sort.Float64s(win)
	mid := len(win) / 2
	if len(win)%2 == 1 {
		return win[mid]
	}
	return (win[mid-1] + win[mid]) / 2
}

func winSize(k int) int {
	if k < 1 {
		return 1
	}
	return k
}

// NewState implements Incremental.
func (w WindowMean) NewState() State { return &winState{ring: make([]float64, winSize(w.K))} }

// NewState implements Incremental. The median still sorts its K-sized
// window per forecast; K is a small constant, so the cost is O(1) in the
// history length.
func (w WindowMedian) NewState() State {
	return &winState{ring: make([]float64, winSize(w.K)), median: true}
}

type expState struct {
	alpha float64
	s     float64
	init  bool
}

func (s *expState) Observe(v float64) {
	if !s.init {
		s.s, s.init = v, true
		return
	}
	s.s = s.alpha*v + (1-s.alpha)*s.s
}
func (s *expState) Forecast() float64 { return s.s }

// NewState implements Incremental.
func (e ExpSmoothing) NewState() State {
	alpha := e.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	return &expState{alpha: alpha}
}

// replayState adapts a non-Incremental predictor: it keeps the bounded
// history itself and replays Predict over it, the pre-existing
// O(len(history)) behaviour, now confined to predictors that opt out of
// incremental evaluation.
type replayState struct {
	p       Predictor
	hist    []float64
	maxHist int
}

func (s *replayState) Observe(v float64) {
	s.hist = append(s.hist, v)
	if len(s.hist) > s.maxHist {
		s.hist = append([]float64(nil), s.hist[len(s.hist)-s.maxHist:]...)
	}
}
func (s *replayState) Forecast() float64 { return s.p.Predict(s.hist) }

// DefaultErrorWindow is how many recent one-step-ahead errors Adaptive
// scores each predictor on. NWS windows its error tracking for the same
// reason: a meta-predictor scoring on all-time error freezes onto
// whichever predictor won the earliest regime and never adapts when the
// series changes character.
const DefaultErrorWindow = 64

// DefaultBank returns the standard predictor bank Adaptive (and the
// stateless Bank) use when given none.
func DefaultBank() []Predictor {
	return []Predictor{
		LastValue{}, RunningMean{}, WindowMean{K: 5},
		WindowMedian{K: 5}, ExpSmoothing{Alpha: 0.5},
	}
}

// Adaptive is the NWS meta-predictor: it scores a bank of predictors by
// their mean-squared one-step-ahead error over a sliding window of
// recent observations and forecasts with the current best. The window
// (DefaultErrorWindow) is what lets the choice of predictor track
// regime changes in the series; scoring is incremental — each
// predictor's standing forecast is kept up to date through the State
// returned by its Incremental implementation — so Observe costs
// O(len(bank)) regardless of history length. It is stateful; feed
// observations in order with Observe and ask for Forecast.
type Adaptive struct {
	mu       sync.Mutex
	bank     []Predictor
	states   []State
	standing []float64 // each predictor's forecast for the next value
	errRing  [][]float64
	errSum   []float64
	errIdx   []int
	errN     []int
	history  []float64
	maxHist  int
}

// NewAdaptive builds an Adaptive over the given bank (DefaultBank when
// empty) scoring errors over DefaultErrorWindow observations.
func NewAdaptive(bank ...Predictor) *Adaptive {
	return NewAdaptiveWindow(DefaultErrorWindow, bank...)
}

// NewAdaptiveWindow is NewAdaptive with an explicit error window size
// (values < 1 behave as 1).
func NewAdaptiveWindow(window int, bank ...Predictor) *Adaptive {
	if len(bank) == 0 {
		bank = DefaultBank()
	}
	if window < 1 {
		window = 1
	}
	const maxHist = 512
	a := &Adaptive{
		bank:     bank,
		states:   make([]State, len(bank)),
		standing: make([]float64, len(bank)),
		errRing:  make([][]float64, len(bank)),
		errSum:   make([]float64, len(bank)),
		errIdx:   make([]int, len(bank)),
		errN:     make([]int, len(bank)),
		maxHist:  maxHist,
	}
	for i, p := range bank {
		if inc, ok := p.(Incremental); ok {
			a.states[i] = inc.NewState()
		} else {
			a.states[i] = &replayState{p: p, maxHist: maxHist}
		}
		a.errRing[i] = make([]float64, window)
	}
	return a
}

// Observe appends an observation: every predictor's standing forecast
// is scored against it (into the sliding error window), then every
// incremental state folds it in. Cost is O(len(bank)) — no predictor
// re-reads the history.
func (a *Adaptive) Observe(v float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.history) > 0 {
		for i := range a.bank {
			e := a.standing[i] - v
			a.scoreLocked(i, e*e)
		}
	}
	a.history = append(a.history, v)
	if len(a.history) > a.maxHist {
		a.history = append([]float64(nil), a.history[len(a.history)-a.maxHist:]...)
	}
	for i, st := range a.states {
		st.Observe(v)
		a.standing[i] = st.Forecast()
	}
}

// scoreLocked pushes one squared error into predictor i's sliding
// window, maintaining the running sum incrementally.
func (a *Adaptive) scoreLocked(i int, sq float64) {
	ring := a.errRing[i]
	if a.errN[i] < len(ring) {
		a.errN[i]++
	} else {
		a.errSum[i] -= ring[a.errIdx[i]]
	}
	ring[a.errIdx[i]] = sq
	a.errSum[i] += sq
	if a.errSum[i] < 0 {
		a.errSum[i] = 0 // floating-point drift from the rolling subtract
	}
	a.errIdx[i] = (a.errIdx[i] + 1) % len(ring)
}

// Forecast returns the best predictor's forecast and that predictor's
// name, best meaning lowest mean-squared error over the sliding window.
// It errors when no observations exist.
func (a *Adaptive) Forecast() (float64, string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.history) == 0 {
		return 0, "", errors.New("nws: no observations")
	}
	best, bestMSE := 0, math.Inf(1)
	for i := range a.bank {
		if a.errN[i] == 0 {
			continue
		}
		mse := a.errSum[i] / float64(a.errN[i])
		if mse < bestMSE {
			best, bestMSE = i, mse
		}
	}
	return a.standing[best], a.bank[best].Name(), nil
}

// History returns a copy of the observed series.
func (a *Adaptive) History() []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]float64(nil), a.history...)
}

// Bank is the stateless form of the adaptive meta-predictor, for places
// that receive a fresh history slice on every call (Collection queries)
// and so cannot keep per-series Observe state: Predict replays every
// member over the tail of the supplied history, scoring one-step-ahead
// squared errors, and answers with the best member's forecast. With a
// short history ring — the Collection daemon publishes a few dozen
// samples — the replay is cheap; Window (DefaultErrorWindow when zero)
// bounds it regardless.
type Bank struct {
	// Members to score; DefaultBank when empty.
	Members []Predictor
	// Window bounds how many trailing points score the members.
	Window int
}

// Name implements Predictor.
func (Bank) Name() string { return "adaptive" }

// Predict implements Predictor.
func (b Bank) Predict(h []float64) float64 {
	members := b.Members
	if len(members) == 0 {
		members = DefaultBank()
	}
	if len(h) < 2 {
		return h[0]
	}
	win := b.Window
	if win <= 0 {
		win = DefaultErrorWindow
	}
	start := len(h) - win
	if start < 1 {
		start = 1
	}
	best, bestSE := 0, math.Inf(1)
	for i, p := range members {
		se := 0.0
		for j := start; j < len(h); j++ {
			e := p.Predict(h[:j]) - h[j]
			se += e * e
		}
		if se < bestSE {
			best, bestSE = i, se
		}
	}
	return members[best].Predict(h)
}

// HistoryAttr converts a series to the attribute value stored as
// $host_load_history.
func HistoryAttr(h []float64) attr.Value {
	vals := make([]attr.Value, len(h))
	for i, v := range h {
		vals[i] = attr.Float(v)
	}
	return attr.List(vals...)
}

// HistoryFromAttr parses a $host_load_history attribute value back into
// a series.
func HistoryFromAttr(v attr.Value) ([]float64, error) {
	return historyFromAttr(v)
}

// historyFromAttr parses $host_load_history back into a series.
func historyFromAttr(v attr.Value) ([]float64, error) {
	if v.Kind() != attr.KindList || v.Len() == 0 {
		return nil, errors.New("nws: host_load_history missing or empty")
	}
	out := make([]float64, v.Len())
	for i := 0; i < v.Len(); i++ {
		f, ok := v.At(i).AsFloat()
		if !ok {
			return nil, fmt.Errorf("nws: history element %d is %s", i, v.At(i).Kind())
		}
		out[i] = f
	}
	return out, nil
}

// InjectForecast registers the "forecast_load" function on a Collection:
// it predicts the next load of the record under evaluation from its
// $host_load_history attribute using the given predictor. Nil means the
// adaptive default — Bank{} over DefaultBank(), which re-scores the
// bank against each record's own history on every evaluation (queries
// hand the function a bare record, so there is no per-record identity
// to hang Observe state on). An optional string argument selects a
// different history attribute.
func InjectForecast(c *collection.Collection, p Predictor) {
	if p == nil {
		p = Bank{}
	}
	c.InjectFunc("forecast_load", func(rec query.Record, args []attr.Value) (attr.Value, error) {
		attrName := "host_load_history"
		if len(args) == 1 && args[0].Kind() == attr.KindString {
			attrName = args[0].Str()
		} else if len(args) > 1 {
			return attr.Value{}, errors.New("forecast_load wants at most one attribute-name argument")
		}
		v, ok := rec.Lookup(attrName)
		if !ok {
			return attr.Value{}, fmt.Errorf("record has no $%s", attrName)
		}
		h, err := historyFromAttr(v)
		if err != nil {
			return attr.Value{}, err
		}
		return attr.Float(p.Predict(h)), nil
	})
}
