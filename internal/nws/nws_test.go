package nws

import (
	"math"
	"testing"
	"testing/quick"

	"legion/internal/attr"
	"legion/internal/collection"
	"legion/internal/loid"
	"legion/internal/orb"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBasicPredictors(t *testing.T) {
	h := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    Predictor
		want float64
	}{
		{LastValue{}, 5},
		{RunningMean{}, 3},
		{WindowMean{K: 2}, 4.5},
		{WindowMean{K: 100}, 3},   // clamps to len
		{WindowMean{K: 0}, 5},     // clamps to 1
		{WindowMedian{K: 3}, 4},   // median of 3,4,5
		{WindowMedian{K: 4}, 3.5}, // median of 2,3,4,5
		{WindowMedian{K: 0}, 5},
	}
	for _, c := range cases {
		if got := c.p.Predict(h); !almost(got, c.want) {
			t.Errorf("%s.Predict = %v, want %v", c.p.Name(), got, c.want)
		}
	}
}

func TestExpSmoothing(t *testing.T) {
	// alpha=1 -> last value; alpha->0 -> first value dominates.
	h := []float64{1, 2, 3}
	if got := (ExpSmoothing{Alpha: 1}).Predict(h); !almost(got, 3) {
		t.Errorf("alpha=1: %v", got)
	}
	got := (ExpSmoothing{Alpha: 0.5}).Predict(h)
	// s = 1; s = 0.5*2+0.5*1 = 1.5; s = 0.5*3+0.5*1.5 = 2.25
	if !almost(got, 2.25) {
		t.Errorf("alpha=0.5: %v", got)
	}
	// Out-of-range alpha clamps to 0.5.
	if got2 := (ExpSmoothing{Alpha: 7}).Predict(h); !almost(got2, got) {
		t.Errorf("clamped alpha: %v vs %v", got2, got)
	}
}

func TestPredictorsStayInRangeProperty(t *testing.T) {
	// Every predictor's forecast lies within [min, max] of the history.
	preds := []Predictor{LastValue{}, RunningMean{}, WindowMean{K: 3},
		WindowMedian{K: 3}, ExpSmoothing{Alpha: 0.3}}
	f := func(raw []float64) bool {
		h := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				h = append(h, math.Mod(math.Abs(v), 100))
			}
		}
		if len(h) == 0 {
			return true
		}
		lo, hi := h[0], h[0]
		for _, v := range h {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		for _, p := range preds {
			g := p.Predict(h)
			if g < lo-1e-9 || g > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdaptivePicksGoodPredictorOnConstantSeries(t *testing.T) {
	a := NewAdaptive()
	for i := 0; i < 50; i++ {
		a.Observe(0.4)
	}
	got, _, err := a.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 0.4) {
		t.Errorf("forecast = %v", got)
	}
}

func TestAdaptivePrefersLastValueOnTrend(t *testing.T) {
	// On a strong monotone trend, last-value beats the running mean.
	a := NewAdaptive(LastValue{}, RunningMean{})
	for i := 0; i < 100; i++ {
		a.Observe(float64(i))
	}
	_, name, err := a.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if name != "last" {
		t.Errorf("best predictor on trend = %q, want last", name)
	}
}

func TestAdaptivePrefersSmoothingOnOscillation(t *testing.T) {
	// On a +-1 oscillation around 0.5, the mean predictor (error ~1)
	// beats last-value (error ~2 each step).
	a := NewAdaptive(LastValue{}, RunningMean{})
	for i := 0; i < 100; i++ {
		v := 0.0
		if i%2 == 0 {
			v = 1.0
		}
		a.Observe(v)
	}
	_, name, err := a.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if name != "mean" {
		t.Errorf("best predictor on oscillation = %q, want mean", name)
	}
}

func TestAdaptiveAdaptsToRegimeChange(t *testing.T) {
	// Phase 1: a steep ramp (step +10), where last-value (error 10/step)
	// crushes the 4-wide window mean (error 25/step). Phase 2: the
	// series flips to an oscillation around a plateau (±5), where the
	// window mean (error 5/step) crushes last-value (error 10/step).
	//
	// The accumulate-forever scoring this test regressed against built a
	// ~105k squared-error lead for last-value during phase 1; the ~75 per
	// step phase 2 earns back would have needed ~1400 oscillation steps
	// to flip the ranking, so after 150 steps the meta-predictor was
	// still forecasting with last-value. Sliding-window scoring forgets
	// phase 1 within DefaultErrorWindow observations and flips.
	a := NewAdaptive(LastValue{}, WindowMean{K: 4})
	for i := 0; i < 300; i++ {
		a.Observe(float64(i) * 10)
	}
	if _, name, _ := a.Forecast(); name != "last" {
		t.Fatalf("best on ramp = %q, want last", name)
	}
	for i := 0; i < 150; i++ {
		v := 3000.0 - 5
		if i%2 == 0 {
			v = 3000.0 + 5
		}
		a.Observe(v)
	}
	_, name, err := a.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if name != "win-mean-4" {
		t.Errorf("best after regime change = %q, want win-mean-4 (stale all-time error ranking?)", name)
	}
}

// countingPredictor counts full-history Predict calls; its incremental
// state does not use Predict at all.
type countingPredictor struct{ predicts *int }

func (countingPredictor) Name() string { return "counting" }
func (c countingPredictor) Predict(h []float64) float64 {
	*c.predicts++
	return h[len(h)-1]
}
func (c countingPredictor) NewState() State { return &lastState{} }

func TestObserveIsIncremental(t *testing.T) {
	// Observe must never re-run a predictor over the full history: for
	// Incremental bank members the per-observation work is the State
	// update, so Predict (the O(len(history)) path) stays uncalled no
	// matter how many observations arrive.
	calls := 0
	a := NewAdaptive(countingPredictor{predicts: &calls}, LastValue{})
	for i := 0; i < 1000; i++ {
		a.Observe(float64(i % 7))
	}
	if calls != 0 {
		t.Errorf("Observe ran full-history Predict %d times, want 0", calls)
	}
	if _, _, err := a.Forecast(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalStatesMatchPredict(t *testing.T) {
	// Each built-in predictor's incremental state must forecast exactly
	// what Predict over the same (untrimmed) history forecasts.
	preds := []Incremental{LastValue{}, RunningMean{}, WindowMean{K: 5},
		WindowMedian{K: 5}, WindowMedian{K: 4}, ExpSmoothing{Alpha: 0.3},
		Trend{K: 4}, Trend{K: 16}}
	h := []float64{0.9, 0.1, 0.5, 0.5, 0.7, 0.2, 0.8, 0.4, 0.6, 0.3}
	for _, p := range preds {
		st := p.NewState()
		for i, v := range h {
			st.Observe(v)
			want := p.Predict(h[:i+1])
			if got := st.Forecast(); !almost(got, want) {
				t.Errorf("%s state at %d: %v, want %v", p.Name(), i, got, want)
			}
		}
	}
}

func TestTrendExtrapolates(t *testing.T) {
	// The point of Trend: its forecast leaves the range of the history.
	// A perfect ramp extrapolates exactly one slope step beyond the last
	// sample.
	got := Trend{K: 4}.Predict([]float64{0.3, 0.45, 0.6, 0.75})
	if !almost(got, 0.9) {
		t.Errorf("ramp forecast = %v, want 0.9", got)
	}
	// Flat series: flat forecast.
	if got := (Trend{K: 4}).Predict([]float64{0.5, 0.5, 0.5}); !almost(got, 0.5) {
		t.Errorf("flat forecast = %v, want 0.5", got)
	}
	// Degenerate windows never panic: single point predicts itself.
	if got := (Trend{K: 4}).Predict([]float64{0.7}); !almost(got, 0.7) {
		t.Errorf("singleton forecast = %v, want 0.7", got)
	}
}

func TestBankPicksBestMember(t *testing.T) {
	// On a ramp the Bank must answer with last-value's forecast; on an
	// oscillation with the window mean's.
	ramp := make([]float64, 40)
	for i := range ramp {
		ramp[i] = float64(i) * 10
	}
	b := Bank{Members: []Predictor{LastValue{}, WindowMean{K: 4}}}
	if got := b.Predict(ramp); !almost(got, 390) {
		t.Errorf("bank on ramp = %v, want 390 (last value)", got)
	}
	osc := make([]float64, 40)
	for i := range osc {
		osc[i] = 5
		if i%2 == 0 {
			osc[i] = -5
		}
	}
	want := (WindowMean{K: 4}).Predict(osc)
	if got := b.Predict(osc); !almost(got, want) {
		t.Errorf("bank on oscillation = %v, want %v (win-mean)", got, want)
	}
	if got := b.Predict([]float64{0.7}); !almost(got, 0.7) {
		t.Errorf("bank on singleton = %v", got)
	}
}

func TestAdaptiveEmpty(t *testing.T) {
	a := NewAdaptive()
	if _, _, err := a.Forecast(); err == nil {
		t.Error("forecast with no observations succeeded")
	}
}

func TestAdaptiveHistoryBounded(t *testing.T) {
	a := NewAdaptive()
	a.maxHist = 16
	for i := 0; i < 100; i++ {
		a.Observe(float64(i))
	}
	if n := len(a.History()); n != 16 {
		t.Errorf("history length = %d", n)
	}
}

func TestHistoryAttrRoundTrip(t *testing.T) {
	h := []float64{0.1, 0.2, 0.3}
	v := HistoryAttr(h)
	got, err := historyFromAttr(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h {
		if !almost(got[i], h[i]) {
			t.Errorf("round trip: %v", got)
		}
	}
	if _, err := historyFromAttr(attr.String("nope")); err == nil {
		t.Error("non-list accepted")
	}
	if _, err := historyFromAttr(attr.List(attr.String("x"))); err == nil {
		t.Error("non-numeric element accepted")
	}
	if _, err := historyFromAttr(attr.List()); err == nil {
		t.Error("empty list accepted")
	}
}

func TestInjectForecastIntoCollection(t *testing.T) {
	rt := orb.NewRuntime("uva")
	c := collection.New(rt, nil)
	InjectForecast(c, WindowMean{K: 3})

	busy := loid.LOID{Domain: "uva", Class: "Host", Instance: 1}
	idle := loid.LOID{Domain: "uva", Class: "Host", Instance: 2}
	c.Join(busy, []attr.Pair{{Name: "host_load_history",
		Value: HistoryAttr([]float64{0.9, 0.95, 0.85})}}, "")
	c.Join(idle, []attr.Pair{{Name: "host_load_history",
		Value: HistoryAttr([]float64{0.2, 0.1, 0.15})}}, "")

	recs, err := c.Query(`forecast_load() < 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Member != idle {
		t.Errorf("forecast query: %+v", recs)
	}

	// Custom attribute name argument (guarded with defined() since only
	// one record carries the attribute).
	c.Join(idle, []attr.Pair{{Name: "mem_history",
		Value: HistoryAttr([]float64{100, 110, 120})}}, "")
	recs, err = c.Query(`defined($mem_history) and forecast_load("mem_history") > 100`)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Member != idle {
		t.Errorf("custom-attr forecast: %+v", recs)
	}

	// A record without history fails that record's evaluation; the
	// Collection skips it and still returns the records with history
	// (one bad host must not hide the rest from the scheduler).
	c.Join(loid.LOID{Domain: "uva", Class: "Host", Instance: 3}, nil, "")
	recs, err = c.Query(`forecast_load() < 0.5`)
	if err != nil || len(recs) != 1 || recs[0].Member != idle {
		t.Errorf("history-less record not skipped: %v %v", recs, err)
	}
	// defined() still guards explicitly, reporting no error either way.
	recs, err = c.Query(`defined($host_load_history) and forecast_load() < 0.5`)
	if err != nil || len(recs) != 1 {
		t.Errorf("guarded query: %v %v", recs, err)
	}
}

func TestInjectForecastDefaultPredictor(t *testing.T) {
	rt := orb.NewRuntime("uva")
	c := collection.New(rt, nil)
	InjectForecast(c, nil)
	m := loid.LOID{Domain: "uva", Class: "Host", Instance: 1}
	c.Join(m, []attr.Pair{{Name: "host_load_history",
		Value: HistoryAttr([]float64{0.4, 0.4, 0.4})}}, "")
	// Range check rather than equality: the mean of three 0.4s differs
	// from 0.4 by a ulp.
	recs, err := c.Query(`forecast_load() > 0.39 and forecast_load() < 0.41`)
	if err != nil || len(recs) != 1 {
		t.Errorf("default predictor: %v %v", recs, err)
	}
}
