package nws

import (
	"math"
	"testing"
	"testing/quick"

	"legion/internal/attr"
	"legion/internal/collection"
	"legion/internal/loid"
	"legion/internal/orb"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBasicPredictors(t *testing.T) {
	h := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    Predictor
		want float64
	}{
		{LastValue{}, 5},
		{RunningMean{}, 3},
		{WindowMean{K: 2}, 4.5},
		{WindowMean{K: 100}, 3},   // clamps to len
		{WindowMean{K: 0}, 5},     // clamps to 1
		{WindowMedian{K: 3}, 4},   // median of 3,4,5
		{WindowMedian{K: 4}, 3.5}, // median of 2,3,4,5
		{WindowMedian{K: 0}, 5},
	}
	for _, c := range cases {
		if got := c.p.Predict(h); !almost(got, c.want) {
			t.Errorf("%s.Predict = %v, want %v", c.p.Name(), got, c.want)
		}
	}
}

func TestExpSmoothing(t *testing.T) {
	// alpha=1 -> last value; alpha->0 -> first value dominates.
	h := []float64{1, 2, 3}
	if got := (ExpSmoothing{Alpha: 1}).Predict(h); !almost(got, 3) {
		t.Errorf("alpha=1: %v", got)
	}
	got := (ExpSmoothing{Alpha: 0.5}).Predict(h)
	// s = 1; s = 0.5*2+0.5*1 = 1.5; s = 0.5*3+0.5*1.5 = 2.25
	if !almost(got, 2.25) {
		t.Errorf("alpha=0.5: %v", got)
	}
	// Out-of-range alpha clamps to 0.5.
	if got2 := (ExpSmoothing{Alpha: 7}).Predict(h); !almost(got2, got) {
		t.Errorf("clamped alpha: %v vs %v", got2, got)
	}
}

func TestPredictorsStayInRangeProperty(t *testing.T) {
	// Every predictor's forecast lies within [min, max] of the history.
	preds := []Predictor{LastValue{}, RunningMean{}, WindowMean{K: 3},
		WindowMedian{K: 3}, ExpSmoothing{Alpha: 0.3}}
	f := func(raw []float64) bool {
		h := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				h = append(h, math.Mod(math.Abs(v), 100))
			}
		}
		if len(h) == 0 {
			return true
		}
		lo, hi := h[0], h[0]
		for _, v := range h {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		for _, p := range preds {
			g := p.Predict(h)
			if g < lo-1e-9 || g > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdaptivePicksGoodPredictorOnConstantSeries(t *testing.T) {
	a := NewAdaptive()
	for i := 0; i < 50; i++ {
		a.Observe(0.4)
	}
	got, _, err := a.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, 0.4) {
		t.Errorf("forecast = %v", got)
	}
}

func TestAdaptivePrefersLastValueOnTrend(t *testing.T) {
	// On a strong monotone trend, last-value beats the running mean.
	a := NewAdaptive(LastValue{}, RunningMean{})
	for i := 0; i < 100; i++ {
		a.Observe(float64(i))
	}
	_, name, err := a.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if name != "last" {
		t.Errorf("best predictor on trend = %q, want last", name)
	}
}

func TestAdaptivePrefersSmoothingOnOscillation(t *testing.T) {
	// On a +-1 oscillation around 0.5, the mean predictor (error ~1)
	// beats last-value (error ~2 each step).
	a := NewAdaptive(LastValue{}, RunningMean{})
	for i := 0; i < 100; i++ {
		v := 0.0
		if i%2 == 0 {
			v = 1.0
		}
		a.Observe(v)
	}
	_, name, err := a.Forecast()
	if err != nil {
		t.Fatal(err)
	}
	if name != "mean" {
		t.Errorf("best predictor on oscillation = %q, want mean", name)
	}
}

func TestAdaptiveEmpty(t *testing.T) {
	a := NewAdaptive()
	if _, _, err := a.Forecast(); err == nil {
		t.Error("forecast with no observations succeeded")
	}
}

func TestAdaptiveHistoryBounded(t *testing.T) {
	a := NewAdaptive()
	a.maxHist = 16
	for i := 0; i < 100; i++ {
		a.Observe(float64(i))
	}
	if n := len(a.History()); n != 16 {
		t.Errorf("history length = %d", n)
	}
}

func TestHistoryAttrRoundTrip(t *testing.T) {
	h := []float64{0.1, 0.2, 0.3}
	v := HistoryAttr(h)
	got, err := historyFromAttr(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h {
		if !almost(got[i], h[i]) {
			t.Errorf("round trip: %v", got)
		}
	}
	if _, err := historyFromAttr(attr.String("nope")); err == nil {
		t.Error("non-list accepted")
	}
	if _, err := historyFromAttr(attr.List(attr.String("x"))); err == nil {
		t.Error("non-numeric element accepted")
	}
	if _, err := historyFromAttr(attr.List()); err == nil {
		t.Error("empty list accepted")
	}
}

func TestInjectForecastIntoCollection(t *testing.T) {
	rt := orb.NewRuntime("uva")
	c := collection.New(rt, nil)
	InjectForecast(c, WindowMean{K: 3})

	busy := loid.LOID{Domain: "uva", Class: "Host", Instance: 1}
	idle := loid.LOID{Domain: "uva", Class: "Host", Instance: 2}
	c.Join(busy, []attr.Pair{{Name: "host_load_history",
		Value: HistoryAttr([]float64{0.9, 0.95, 0.85})}}, "")
	c.Join(idle, []attr.Pair{{Name: "host_load_history",
		Value: HistoryAttr([]float64{0.2, 0.1, 0.15})}}, "")

	recs, err := c.Query(`forecast_load() < 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Member != idle {
		t.Errorf("forecast query: %+v", recs)
	}

	// Custom attribute name argument (guarded with defined() since only
	// one record carries the attribute).
	c.Join(idle, []attr.Pair{{Name: "mem_history",
		Value: HistoryAttr([]float64{100, 110, 120})}}, "")
	recs, err = c.Query(`defined($mem_history) and forecast_load("mem_history") > 100`)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Member != idle {
		t.Errorf("custom-attr forecast: %+v", recs)
	}

	// A record without history fails that record's evaluation; the
	// Collection skips it and still returns the records with history
	// (one bad host must not hide the rest from the scheduler).
	c.Join(loid.LOID{Domain: "uva", Class: "Host", Instance: 3}, nil, "")
	recs, err = c.Query(`forecast_load() < 0.5`)
	if err != nil || len(recs) != 1 || recs[0].Member != idle {
		t.Errorf("history-less record not skipped: %v %v", recs, err)
	}
	// defined() still guards explicitly, reporting no error either way.
	recs, err = c.Query(`defined($host_load_history) and forecast_load() < 0.5`)
	if err != nil || len(recs) != 1 {
		t.Errorf("guarded query: %v %v", recs, err)
	}
}

func TestInjectForecastDefaultPredictor(t *testing.T) {
	rt := orb.NewRuntime("uva")
	c := collection.New(rt, nil)
	InjectForecast(c, nil)
	m := loid.LOID{Domain: "uva", Class: "Host", Instance: 1}
	c.Join(m, []attr.Pair{{Name: "host_load_history",
		Value: HistoryAttr([]float64{0.4, 0.4, 0.4})}}, "")
	// Range check rather than equality: the mean of three 0.4s differs
	// from 0.4 by a ulp.
	recs, err := c.Query(`forecast_load() > 0.39 and forecast_load() < 0.41`)
	if err != nil || len(recs) != 1 {
		t.Errorf("default predictor: %v %v", recs, err)
	}
}
