package reservation

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"legion/internal/loid"
	"legion/internal/telemetry"
)

// Admission errors returned by Table operations.
var (
	// ErrConflict reports that the requested interval conflicts with
	// existing reservations under the admission rules.
	ErrConflict = errors.New("reservation: conflicts with existing reservation")
	// ErrInvalidToken reports a forged, tampered, cancelled, consumed, or
	// unknown token.
	ErrInvalidToken = errors.New("reservation: invalid token")
	// ErrExpired reports a token presented outside its valid window
	// (confirmation timeout elapsed or interval over).
	ErrExpired = errors.New("reservation: expired")
	// ErrNotYetValid reports a token presented before its start time.
	ErrNotYetValid = errors.New("reservation: start time not reached")
	// ErrBadRequest reports a malformed reservation request.
	ErrBadRequest = errors.New("reservation: bad request")
)

// Request asks a Table for a reservation.
type Request struct {
	// Vault is the storage partner the reservation pairs with.
	Vault loid.LOID
	// Type selects the Table 2 reservation class.
	Type Type
	// Start is the beginning of the wanted interval; the zero time means
	// "now" (an instantaneous reservation).
	Start time.Time
	// Duration is the wanted service time; must be positive.
	Duration time.Duration
	// Timeout is the confirmation deadline for instantaneous
	// reservations; zero means the Table's default.
	Timeout time.Duration
}

// entry is a live reservation in the table.
type entry struct {
	tok       Token
	issuedAt  time.Time
	confirmed bool // true once redeemed at least once
	consumed  bool // one-shot token already used
	cancelled bool
}

// Table is the host-side reservation store.
//
// The paper: "the standard Unix Host Object maintains a reservation table
// in the Host Object, because the Unix OS has no notion of reservations."
// The admission policy models a machine with a fixed number of slots
// (processors):
//
//   - an unshared (space-sharing) reservation allocates the entire
//     resource: it is admitted only if no other reservation overlaps its
//     interval, and once admitted nothing else may overlap it;
//   - shared (timesharing) reservations multiplex the resource: any
//     number up to MaxShared may overlap, but never alongside an
//     unshared one.
type Table struct {
	host   loid.LOID
	signer *Signer

	mu      sync.Mutex
	nextID  uint64
	entries map[uint64]*entry

	// MaxShared bounds concurrently overlapping shared reservations;
	// zero means unlimited.
	maxShared int
	// defaultTimeout applies to instantaneous reservations that specify
	// no timeout.
	defaultTimeout time.Duration

	// gauge, when set, tracks live-entry occupancy (see SetGauge);
	// gaugeCount is this table's last-reported contribution.
	gauge      *telemetry.Gauge
	gaugeCount int64

	now func() time.Time
}

// NewTable creates a reservation table for the given host. maxShared
// bounds overlapping timesharing reservations (0 = unlimited).
func NewTable(host loid.LOID, maxShared int, defaultTimeout time.Duration) *Table {
	return &Table{
		host:           host,
		signer:         NewSigner(),
		entries:        make(map[uint64]*entry),
		maxShared:      maxShared,
		defaultTimeout: defaultTimeout,
		now:            time.Now,
	}
}

// SetClock overrides the table's time source for simulations.
func (tb *Table) SetClock(now func() time.Time) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.now = now
}

// SetGauge attaches an occupancy gauge tracking the number of live
// (granted, uncancelled, unexpired) reservations. Updates are deltas,
// so several tables (the Hosts of one site) may share one aggregate
// gauge. The owning Host wires this to its runtime's registry; a nil
// gauge is a no-op.
func (tb *Table) SetGauge(g *telemetry.Gauge) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.gauge = g
	tb.gaugeCount = int64(len(tb.entries))
	g.Add(tb.gaugeCount)
}

// syncGaugeLocked pushes the live-entry count delta into the gauge;
// callers hold tb.mu and must call it after any entries-map mutation.
func (tb *Table) syncGaugeLocked() {
	n := int64(len(tb.entries))
	tb.gauge.Add(n - tb.gaugeCount)
	tb.gaugeCount = n
}

// Make attempts to grant a reservation. On success it returns a signed
// token; on admission failure it returns ErrConflict.
func (tb *Table) Make(req Request) (*Token, error) {
	if req.Duration <= 0 {
		return nil, fmt.Errorf("%w: non-positive duration", ErrBadRequest)
	}
	if req.Timeout < 0 {
		// A negative confirmation window would be stored as-is and the
		// `Timeout > 0` expiry guards would never fire: the unconfirmed
		// grant could outlive every reaper sweep — a permanent leak.
		// Reject it as malformed instead of silently defaulting.
		return nil, fmt.Errorf("%w: negative confirmation timeout %v", ErrBadRequest, req.Timeout)
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()

	now := tb.now()
	start := req.Start
	instantaneous := start.IsZero() || !start.After(now)
	if start.IsZero() {
		start = now
	}
	if start.Add(req.Duration).Before(now) {
		return nil, fmt.Errorf("%w: interval entirely in the past", ErrBadRequest)
	}
	end := start.Add(req.Duration)

	tb.gcLocked(now)

	overlappingShared := 0
	for _, e := range tb.entries {
		if !e.tok.Overlaps(start, end) {
			continue
		}
		if !e.tok.Type.Share || !req.Type.Share {
			// Space sharing on either side forbids any overlap.
			return nil, fmt.Errorf("%w: interval [%v,%v)", ErrConflict, start, end)
		}
		overlappingShared++
	}
	if req.Type.Share && tb.maxShared > 0 && overlappingShared >= tb.maxShared {
		return nil, fmt.Errorf("%w: timesharing multiplex limit %d reached", ErrConflict, tb.maxShared)
	}

	timeout := req.Timeout
	if instantaneous && timeout == 0 {
		timeout = tb.defaultTimeout
	}
	if !instantaneous {
		timeout = 0 // confirmation deadlines only apply to instantaneous reservations
	}

	tb.nextID++
	tok := Token{
		ID:       tb.nextID,
		Host:     tb.host,
		Vault:    req.Vault,
		Type:     req.Type,
		Start:    start,
		Duration: req.Duration,
		Timeout:  timeout,
	}
	tb.signer.Sign(&tok)
	tb.entries[tok.ID] = &entry{tok: tok, issuedAt: now}
	tb.syncGaugeLocked()
	return &tok, nil
}

// lookupLocked authenticates a presented token and returns its live entry.
func (tb *Table) lookupLocked(t *Token) (*entry, error) {
	if t == nil || !tb.signer.Valid(t) {
		return nil, fmt.Errorf("%w: bad MAC", ErrInvalidToken)
	}
	e, ok := tb.entries[t.ID]
	if !ok || e.cancelled {
		return nil, fmt.Errorf("%w: unknown or cancelled", ErrInvalidToken)
	}
	if e.consumed {
		return nil, fmt.Errorf("%w: one-shot token already used", ErrInvalidToken)
	}
	return e, nil
}

// Check reports whether the token is currently honored: authentic, known,
// not cancelled/consumed, and within its validity window. It implements
// the Host interface's check_reservation.
func (tb *Table) Check(t *Token) error {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	e, err := tb.lookupLocked(t)
	if err != nil {
		return err
	}
	return tb.windowLocked(e, false)
}

// windowLocked validates timing. If redeem is true the caller is
// presenting the token with a service request, which confirms it.
func (tb *Table) windowLocked(e *entry, redeem bool) error {
	now := tb.now()
	if now.Before(e.tok.Start) {
		return fmt.Errorf("%w: starts %v", ErrNotYetValid, e.tok.Start)
	}
	if !now.Before(e.tok.End()) {
		return fmt.Errorf("%w: ended %v", ErrExpired, e.tok.End())
	}
	if !e.confirmed && e.tok.Timeout > 0 && now.After(e.issuedAt.Add(e.tok.Timeout)) {
		return fmt.Errorf("%w: confirmation timeout %v elapsed", ErrExpired, e.tok.Timeout)
	}
	if redeem {
		e.confirmed = true
		if !e.tok.Type.Reuse {
			e.consumed = true
		}
	}
	return nil
}

// Redeem presents the token with a service request (StartObject). For
// one-shot tokens this consumes the token; for reusable tokens it leaves
// the token valid. Redemption implicitly confirms the reservation.
func (tb *Table) Redeem(t *Token) error {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	e, err := tb.lookupLocked(t)
	if err != nil {
		return err
	}
	return tb.windowLocked(e, true)
}

// Cancel releases a reservation. Cancelling an unknown or already-
// cancelled token returns ErrInvalidToken; cancelling a consumed one-shot
// token succeeds (it is already spent, the slot is free).
func (tb *Table) Cancel(t *Token) error {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if t == nil || !tb.signer.Valid(t) {
		return fmt.Errorf("%w: bad MAC", ErrInvalidToken)
	}
	e, ok := tb.entries[t.ID]
	if !ok || e.cancelled {
		return fmt.Errorf("%w: unknown or cancelled", ErrInvalidToken)
	}
	e.cancelled = true
	delete(tb.entries, t.ID)
	tb.syncGaugeLocked()
	return nil
}

// EntryInfo is one live reservation as seen by Snapshot.
type EntryInfo struct {
	Token     Token
	Confirmed bool
	Consumed  bool
}

// Snapshot returns the live (uncancelled, unexpired) reservations with
// their confirmation state. Audits use this to cross-reference tokens
// against the objects actually running under them.
func (tb *Table) Snapshot() []EntryInfo {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.gcLocked(tb.now())
	out := make([]EntryInfo, 0, len(tb.entries))
	for _, e := range tb.entries {
		out = append(out, EntryInfo{Token: e.tok, Confirmed: e.confirmed, Consumed: e.consumed})
	}
	return out
}

// Active returns the number of live (uncancelled, unexpired) reservations.
func (tb *Table) Active() int {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.gcLocked(tb.now())
	return len(tb.entries)
}

// Reap synchronously drops expired and unconfirmed-past-timeout
// reservations and reports how many were reclaimed. Expiry also happens
// lazily on Make/Active, but a Host whose clients crashed between
// make_reservation and confirmation may see no further traffic — the
// background reaper calls this so orphaned grants free their slots
// promptly instead of at the next request.
func (tb *Table) Reap() int {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	before := len(tb.entries)
	tb.gcLocked(tb.now())
	return before - len(tb.entries)
}

// gcLocked drops reservations whose interval has entirely passed or whose
// confirmation timeout elapsed unconfirmed.
func (tb *Table) gcLocked(now time.Time) {
	for id, e := range tb.entries {
		expired := !now.Before(e.tok.End()) ||
			(!e.confirmed && e.tok.Timeout > 0 && now.After(e.issuedAt.Add(e.tok.Timeout)))
		if expired {
			delete(tb.entries, id)
		}
	}
	tb.syncGaugeLocked()
}
