// Package reservation implements Legion reservations (paper §3.1).
//
// "To support scheduling, Hosts grant reservations for future service.
// The exact form of the reservation depends upon the Host Object
// implementation, but they must be non-forgeable tokens; the Host Object
// must recognize these tokens when they are passed in with service
// requests. It is not necessary for any other object in the system to be
// able to decode the reservation token."
//
// Tokens here are HMAC-SHA256-signed by the issuing Host's secret key:
// any object can carry and present a token, only the issuing Host can
// mint or validate one, and tampering with any field invalidates the MAC.
// Our tokens encode both the Host and the Vault used for execution, as
// the paper's implementation does.
//
// Reservations have a start time, a duration, and an optional timeout
// period (how long the recipient has to confirm an instantaneous
// reservation), plus two type bits — share and reuse — yielding the four
// reservation classes of Table 2:
//
//	one-shot space sharing   (share=0, reuse=0)
//	reusable space sharing   (share=0, reuse=1)   "machine is mine"
//	one-shot timesharing     (share=1, reuse=0)   typical batch job
//	reusable timesharing     (share=1, reuse=1)
package reservation

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"time"

	"legion/internal/loid"
)

// Type is the two type bits of a Legion reservation (Table 2).
type Type struct {
	// Share: if false the reservation allocates the entire resource
	// (space sharing); if true the resource may be multiplexed among
	// concurrent reservations (timesharing).
	Share bool
	// Reuse: if true the token may be presented with multiple
	// StartObject calls; if false it is consumed by the first.
	Reuse bool
}

// The four reservation types of Table 2.
var (
	OneShotSpaceSharing  = Type{Share: false, Reuse: false}
	ReusableSpaceSharing = Type{Share: false, Reuse: true}
	OneShotTimesharing   = Type{Share: true, Reuse: false}
	ReusableTimesharing  = Type{Share: true, Reuse: true}
)

// String names the type as in Table 2.
func (t Type) String() string {
	switch t {
	case OneShotSpaceSharing:
		return "one-shot space sharing"
	case ReusableSpaceSharing:
		return "reusable space sharing"
	case OneShotTimesharing:
		return "one-shot timesharing"
	default:
		return "reusable timesharing"
	}
}

// Token is a non-forgeable reservation token.
type Token struct {
	// ID is unique per issuing host.
	ID uint64
	// Host is the issuing Host object; Vault is the storage partner the
	// reservation was validated against.
	Host  loid.LOID
	Vault loid.LOID
	// Type is the reservation's share/reuse classification.
	Type Type
	// Start and Duration delimit the reserved service interval.
	Start    time.Time
	Duration time.Duration
	// Timeout is how long the recipient has to confirm an instantaneous
	// reservation (zero = no confirmation deadline). Confirmation is
	// implicit when the token is presented with StartObject.
	Timeout time.Duration
	// MAC authenticates all the above fields under the issuing host's
	// secret key.
	MAC []byte
}

// End returns the end of the reserved interval.
func (t *Token) End() time.Time { return t.Start.Add(t.Duration) }

// Overlaps reports whether the token's interval intersects [start, end).
func (t *Token) Overlaps(start, end time.Time) bool {
	return t.Start.Before(end) && start.Before(t.End())
}

// Signer mints and validates tokens for one Host. The key never leaves
// the host; other objects treat tokens as opaque.
type Signer struct {
	key []byte
}

// NewSigner creates a Signer with a fresh random 32-byte key.
func NewSigner() *Signer {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		panic("reservation: cannot read entropy: " + err.Error())
	}
	return &Signer{key: key}
}

// NewSignerWithKey creates a Signer with a caller-provided key, for tests
// that need determinism or key-compromise scenarios.
func NewSignerWithKey(key []byte) *Signer {
	k := append([]byte(nil), key...)
	return &Signer{key: k}
}

// mac computes the HMAC over every authenticated token field.
func (s *Signer) mac(t *Token) []byte {
	h := hmac.New(sha256.New, s.key)
	var buf [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeLOID := func(l loid.LOID) {
		h.Write([]byte(l.String()))
		h.Write([]byte{0})
	}
	put(t.ID)
	writeLOID(t.Host)
	writeLOID(t.Vault)
	var bits uint64
	if t.Type.Share {
		bits |= 1
	}
	if t.Type.Reuse {
		bits |= 2
	}
	put(bits)
	put(uint64(t.Start.UnixNano()))
	put(uint64(t.Duration))
	put(uint64(t.Timeout))
	return h.Sum(nil)
}

// Sign sets the token's MAC.
func (s *Signer) Sign(t *Token) { t.MAC = s.mac(t) }

// Valid reports whether the token's MAC is genuine under this signer's
// key. Any field mutation or forgery attempt fails.
func (s *Signer) Valid(t *Token) bool {
	return hmac.Equal(t.MAC, s.mac(t))
}
