package reservation

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// This file checks the reservation table against an independent model of
// the Table 2 semantics under long seeded random op sequences. The model
// mirrors the admission, redemption, and expiry rules; every divergence
// is a bug in one of them. Three safety properties get asserted
// directly, independent of the oracle:
//
//  1. forged tokens (any field or MAC bit mutated) are never honored;
//  2. a one-shot (Reuse=false) token never redeems twice;
//  3. no two concurrently live reservations overlap when either is
//     space-sharing (Share=false).
//
// Failures print the sequence seed; re-run with that seed in the subtest
// name to reproduce.

type modelEntry struct {
	tok       Token
	issuedAt  time.Time
	confirmed bool
	consumed  bool
}

// model is the reference implementation the real Table is checked
// against. It garbage-collects only where the Table does (Make, Active)
// so error classes stay aligned: presenting an expired-but-unswept
// token reports ErrExpired, a swept one ErrInvalidToken.
type model struct {
	entries   map[uint64]*modelEntry
	maxShared int
}

func (m *model) expired(e *modelEntry, now time.Time) bool {
	return !now.Before(e.tok.End()) ||
		(!e.confirmed && e.tok.Timeout > 0 && now.After(e.issuedAt.Add(e.tok.Timeout)))
}

func (m *model) gc(now time.Time) {
	for id, e := range m.entries {
		if m.expired(e, now) {
			delete(m.entries, id)
		}
	}
}

// admit mirrors Table.Make's decision (call after gc).
func (m *model) admit(req Request, now time.Time) bool {
	if req.Duration <= 0 {
		return false
	}
	start := req.Start
	if start.IsZero() {
		start = now
	}
	if start.Add(req.Duration).Before(now) {
		return false
	}
	end := start.Add(req.Duration)
	shared := 0
	for _, e := range m.entries {
		if !e.tok.Overlaps(start, end) {
			continue
		}
		if !e.tok.Type.Share || !req.Type.Share {
			return false
		}
		shared++
	}
	if req.Type.Share && m.maxShared > 0 && shared >= m.maxShared {
		return false
	}
	return true
}

// presentExpect predicts Check/Redeem's error class for an authentic
// token; redeem additionally applies confirmation/consumption.
func (m *model) presentExpect(tok *Token, now time.Time, redeem bool) error {
	e, ok := m.entries[tok.ID]
	if !ok {
		return ErrInvalidToken
	}
	if e.consumed {
		return ErrInvalidToken
	}
	if now.Before(e.tok.Start) {
		return ErrNotYetValid
	}
	if !now.Before(e.tok.End()) {
		return ErrExpired
	}
	if !e.confirmed && e.tok.Timeout > 0 && now.After(e.issuedAt.Add(e.tok.Timeout)) {
		return ErrExpired
	}
	if redeem {
		e.confirmed = true
		if !e.tok.Type.Reuse {
			e.consumed = true
		}
	}
	return nil
}

// checkNoForbiddenOverlap asserts property 3 over the model's unexpired
// entries.
func (m *model) checkNoForbiddenOverlap(t *testing.T, now time.Time) {
	t.Helper()
	var live []*modelEntry
	for _, e := range m.entries {
		if !m.expired(e, now) {
			live = append(live, e)
		}
	}
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			a, b := live[i].tok, live[j].tok
			if a.Overlaps(b.Start, b.End()) && (!a.Type.Share || !b.Type.Share) {
				t.Fatalf("double-booked exclusive reservation: #%d %s [%v,%v) overlaps #%d %s [%v,%v)",
					a.ID, a.Type, a.Start, a.End(), b.ID, b.Type, b.Start, b.End())
			}
		}
	}
}

var allTypes = []Type{
	OneShotSpaceSharing, ReusableSpaceSharing,
	OneShotTimesharing, ReusableTimesharing,
}

func TestReservationClassesProperty(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runReservationSequence(t, seed, 500)
		})
	}
}

func runReservationSequence(t *testing.T, seed int64, ops int) {
	t.Logf("sequence seed %d (op mix and timings derive from it)", seed)
	rng := rand.New(rand.NewSource(seed))
	const maxShared = 3
	tb, clk := newTestTable(maxShared)
	m := &model{entries: make(map[uint64]*modelEntry), maxShared: maxShared}

	// issued holds every token ever granted, including cancelled and
	// consumed ones, so stale presentations get exercised too.
	var issued []*Token

	pick := func() *Token {
		if len(issued) == 0 {
			return nil
		}
		return issued[rng.Intn(len(issued))]
	}

	for op := 0; op < ops; op++ {
		now := clk.Now()
		switch r := rng.Intn(10); {
		case r < 4: // make
			req := Request{
				Vault:    vaultL,
				Type:     allTypes[rng.Intn(len(allTypes))],
				Duration: time.Duration(1+rng.Intn(10)) * time.Second,
			}
			if rng.Intn(2) == 0 {
				// Future or slightly past start; zero means "now".
				req.Start = now.Add(time.Duration(rng.Intn(16)-5) * time.Second)
			}
			if rng.Intn(4) == 0 {
				req.Timeout = time.Duration(1+rng.Intn(3)) * time.Second
			}
			m.gc(now)
			want := m.admit(req, now)
			tok, err := tb.Make(req)
			if want != (err == nil) {
				t.Fatalf("op %d: Make(%+v) err=%v, model admit=%v", op, req, err, want)
			}
			if err == nil {
				issued = append(issued, tok)
				m.entries[tok.ID] = &modelEntry{tok: *tok, issuedAt: now}
				m.checkNoForbiddenOverlap(t, now)
			}
		case r < 6: // redeem
			tok := pick()
			if tok == nil {
				continue
			}
			want := m.presentExpect(tok, now, true)
			err := tb.Redeem(tok)
			if !errors.Is(err, want) && !(want == nil && err == nil) {
				t.Fatalf("op %d: Redeem(#%d %s) = %v, model wants %v", op, tok.ID, tok.Type, err, want)
			}
		case r < 7: // check (no state change)
			tok := pick()
			if tok == nil {
				continue
			}
			want := m.presentExpect(tok, now, false)
			err := tb.Check(tok)
			if !errors.Is(err, want) && !(want == nil && err == nil) {
				t.Fatalf("op %d: Check(#%d) = %v, model wants %v", op, tok.ID, err, want)
			}
		case r < 8: // cancel
			tok := pick()
			if tok == nil {
				continue
			}
			_, known := m.entries[tok.ID]
			err := tb.Cancel(tok)
			if known != (err == nil) {
				t.Fatalf("op %d: Cancel(#%d) = %v, model known=%v", op, tok.ID, err, known)
			}
			delete(m.entries, tok.ID)
		case r < 9: // forge: mutate an authentic token; never honored
			tok := pick()
			if tok == nil {
				continue
			}
			forged := *tok
			forged.MAC = append([]byte(nil), tok.MAC...)
			switch rng.Intn(5) {
			case 0:
				forged.ID += uint64(1 + rng.Intn(100))
			case 1:
				forged.Type.Reuse = !forged.Type.Reuse // grant yourself reuse
			case 2:
				forged.Type.Share = !forged.Type.Share
			case 3:
				forged.Duration += time.Second // extend your slot
			case 4:
				forged.MAC[rng.Intn(len(forged.MAC))] ^= 1 << (rng.Intn(8))
			}
			for name, err := range map[string]error{
				"Check":  tb.Check(&forged),
				"Redeem": tb.Redeem(&forged),
				"Cancel": tb.Cancel(&forged),
			} {
				if !errors.Is(err, ErrInvalidToken) {
					t.Fatalf("op %d: %s accepted forged token #%d: %v", op, name, forged.ID, err)
				}
			}
		default: // advance time
			clk.Advance(time.Duration(rng.Intn(8000)) * time.Millisecond)
		}

		// Occupancy oracle: Active() sweeps, so sweep the model too.
		now = clk.Now()
		m.gc(now)
		if got, want := tb.Active(), len(m.entries); got != want {
			t.Fatalf("op %d: Active() = %d, model has %d live entries", op, got, want)
		}
	}
}

// TestOneShotNeverRedeemsTwice pins property 2 for both one-shot
// classes directly, without the oracle in the loop.
func TestOneShotNeverRedeemsTwice(t *testing.T) {
	for _, ty := range []Type{OneShotSpaceSharing, OneShotTimesharing} {
		tb, _ := newTestTable(0)
		tok, err := tb.Make(Request{Vault: vaultL, Type: ty, Duration: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.Redeem(tok); err != nil {
			t.Fatalf("%s: first redeem: %v", ty, err)
		}
		if err := tb.Redeem(tok); !errors.Is(err, ErrInvalidToken) {
			t.Errorf("%s: second redeem of one-shot token = %v, want ErrInvalidToken", ty, err)
		}
	}
}
