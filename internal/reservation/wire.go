package reservation

import "legion/internal/wire"

// AppendWire appends the Type's two classification bits packed into one
// byte (bit 0 = share, bit 1 = reuse).
func (t Type) AppendWire(b []byte) []byte {
	var v byte
	if t.Share {
		v |= 1
	}
	if t.Reuse {
		v |= 2
	}
	return append(b, v)
}

// DecodeWire consumes a Type encoded by AppendWire.
func (t *Type) DecodeWire(r *wire.Reader) {
	if r.Err != nil {
		return
	}
	if len(r.B) < 1 {
		r.Err = wire.ErrTruncated
		return
	}
	v := r.B[0]
	r.B = r.B[1:]
	t.Share = v&1 != 0
	t.Reuse = v&2 != 0
}

// AppendWire appends the Token in the ORB's binary wire format. Every
// authenticated field crosses as-is; the MAC stays opaque, exactly as
// the paper requires ("it is not necessary for any other object in the
// system to be able to decode the reservation token").
func (t *Token) AppendWire(b []byte) []byte {
	b = wire.AppendUvarint(b, t.ID)
	b = t.Host.AppendWire(b)
	b = t.Vault.AppendWire(b)
	b = t.Type.AppendWire(b)
	b = wire.AppendTime(b, t.Start)
	b = wire.AppendDuration(b, t.Duration)
	b = wire.AppendDuration(b, t.Timeout)
	return wire.AppendBytes(b, t.MAC)
}

// DecodeWire consumes a Token encoded by AppendWire, reusing the MAC
// slice's capacity.
func (t *Token) DecodeWire(r *wire.Reader) {
	t.ID = r.Uvarint()
	t.Host.DecodeWire(r)
	t.Vault.DecodeWire(r)
	t.Type.DecodeWire(r)
	t.Start = r.Time()
	t.Duration = r.Duration()
	t.Timeout = r.Duration()
	t.MAC = r.Bytes(t.MAC)
}
