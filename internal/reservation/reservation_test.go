package reservation

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"legion/internal/loid"
)

var (
	hostL  = loid.LOID{Domain: "uva", Class: "Host", Instance: 1}
	vaultL = loid.LOID{Domain: "uva", Class: "Vault", Instance: 1}
)

// fakeClock is a settable time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(1999, 4, 12, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestTable(maxShared int) (*Table, *fakeClock) {
	tb := NewTable(hostL, maxShared, time.Minute)
	clk := newFakeClock()
	tb.SetClock(clk.Now)
	return tb, clk
}

func TestTypeNames(t *testing.T) {
	names := map[Type]string{
		OneShotSpaceSharing:  "one-shot space sharing",
		ReusableSpaceSharing: "reusable space sharing",
		OneShotTimesharing:   "one-shot timesharing",
		ReusableTimesharing:  "reusable timesharing",
	}
	for ty, want := range names {
		if got := ty.String(); got != want {
			t.Errorf("%+v.String() = %q want %q", ty, got, want)
		}
	}
}

func TestTokenForgeryResistance(t *testing.T) {
	s := NewSigner()
	tok := Token{ID: 1, Host: hostL, Vault: vaultL, Type: ReusableSpaceSharing,
		Start: time.Now(), Duration: time.Hour, Timeout: time.Minute}
	s.Sign(&tok)
	if !s.Valid(&tok) {
		t.Fatal("fresh token invalid")
	}
	mutations := []func(*Token){
		func(t *Token) { t.ID++ },
		func(t *Token) { t.Host.Instance++ },
		func(t *Token) { t.Vault.Instance++ },
		func(t *Token) { t.Type.Share = !t.Type.Share },
		func(t *Token) { t.Type.Reuse = !t.Type.Reuse },
		func(t *Token) { t.Start = t.Start.Add(time.Nanosecond) },
		func(t *Token) { t.Duration++ },
		func(t *Token) { t.Timeout++ },
		func(t *Token) { t.MAC[0] ^= 1 },
	}
	for i, mut := range mutations {
		c := tok
		c.MAC = append([]byte(nil), tok.MAC...)
		mut(&c)
		if s.Valid(&c) {
			t.Errorf("mutation %d accepted", i)
		}
	}
	// Another host's signer never validates this host's tokens.
	if NewSigner().Valid(&tok) {
		t.Error("foreign signer validated token")
	}
}

func TestSignerDeterministicWithKey(t *testing.T) {
	key := []byte("0123456789abcdef0123456789abcdef")
	a, b := NewSignerWithKey(key), NewSignerWithKey(key)
	tok := Token{ID: 7, Host: hostL, Vault: vaultL, Duration: time.Hour}
	a.Sign(&tok)
	if !b.Valid(&tok) {
		t.Error("same-key signers disagree")
	}
}

// TestForgeryProperty: random field perturbations never validate.
func TestForgeryProperty(t *testing.T) {
	s := NewSigner()
	f := func(id uint64, durNs int64, share, reuse bool, flipBit uint16) bool {
		tok := Token{ID: id, Host: hostL, Vault: vaultL,
			Type: Type{Share: share, Reuse: reuse}, Duration: time.Duration(durNs)}
		s.Sign(&tok)
		if !s.Valid(&tok) {
			return false
		}
		forged := tok
		forged.MAC = append([]byte(nil), tok.MAC...)
		forged.MAC[int(flipBit)%len(forged.MAC)] ^= 1 << (flipBit % 8)
		return !s.Valid(&forged)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMakeAndCheck(t *testing.T) {
	tb, _ := newTestTable(0)
	tok, err := tb.Make(Request{Vault: vaultL, Type: ReusableTimesharing, Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if tok.Host != hostL || tok.Vault != vaultL {
		t.Errorf("token identity: %+v", tok)
	}
	if err := tb.Check(tok); err != nil {
		t.Errorf("Check: %v", err)
	}
	if tb.Active() != 1 {
		t.Errorf("Active = %d", tb.Active())
	}
}

func TestBadRequests(t *testing.T) {
	tb, clk := newTestTable(0)
	if _, err := tb.Make(Request{Vault: vaultL, Duration: 0}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("zero duration: %v", err)
	}
	if _, err := tb.Make(Request{Vault: vaultL, Duration: -time.Hour}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("negative duration: %v", err)
	}
	past := clk.Now().Add(-2 * time.Hour)
	if _, err := tb.Make(Request{Vault: vaultL, Start: past, Duration: time.Hour}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("past interval: %v", err)
	}
}

// TestTable2Semantics exercises the four reservation classes (Table 2).
func TestTable2Semantics(t *testing.T) {
	t.Run("space sharing excludes everything", func(t *testing.T) {
		tb, _ := newTestTable(0)
		if _, err := tb.Make(Request{Vault: vaultL, Type: ReusableSpaceSharing, Duration: time.Hour}); err != nil {
			t.Fatal(err)
		}
		// Neither another space-sharing nor a timesharing reservation may overlap.
		if _, err := tb.Make(Request{Vault: vaultL, Type: OneShotSpaceSharing, Duration: time.Hour}); !errors.Is(err, ErrConflict) {
			t.Errorf("second space-sharing: %v", err)
		}
		if _, err := tb.Make(Request{Vault: vaultL, Type: OneShotTimesharing, Duration: time.Hour}); !errors.Is(err, ErrConflict) {
			t.Errorf("timesharing over space-sharing: %v", err)
		}
	})

	t.Run("timesharing multiplexes", func(t *testing.T) {
		tb, _ := newTestTable(0)
		for i := 0; i < 10; i++ {
			if _, err := tb.Make(Request{Vault: vaultL, Type: OneShotTimesharing, Duration: time.Hour}); err != nil {
				t.Fatalf("shared reservation %d: %v", i, err)
			}
		}
		// But space sharing cannot move in on top.
		if _, err := tb.Make(Request{Vault: vaultL, Type: OneShotSpaceSharing, Duration: time.Hour}); !errors.Is(err, ErrConflict) {
			t.Errorf("space sharing over timesharing: %v", err)
		}
	})

	t.Run("timesharing respects multiplex limit", func(t *testing.T) {
		tb, _ := newTestTable(3)
		for i := 0; i < 3; i++ {
			if _, err := tb.Make(Request{Vault: vaultL, Type: ReusableTimesharing, Duration: time.Hour}); err != nil {
				t.Fatalf("reservation %d: %v", i, err)
			}
		}
		if _, err := tb.Make(Request{Vault: vaultL, Type: ReusableTimesharing, Duration: time.Hour}); !errors.Is(err, ErrConflict) {
			t.Errorf("over limit: %v", err)
		}
	})

	t.Run("one-shot consumed by redeem", func(t *testing.T) {
		tb, _ := newTestTable(0)
		tok, err := tb.Make(Request{Vault: vaultL, Type: OneShotTimesharing, Duration: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.Redeem(tok); err != nil {
			t.Fatalf("first redeem: %v", err)
		}
		if err := tb.Redeem(tok); !errors.Is(err, ErrInvalidToken) {
			t.Errorf("second redeem of one-shot: %v", err)
		}
	})

	t.Run("reusable redeemable many times", func(t *testing.T) {
		tb, _ := newTestTable(0)
		tok, err := tb.Make(Request{Vault: vaultL, Type: ReusableTimesharing, Duration: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := tb.Redeem(tok); err != nil {
				t.Fatalf("redeem %d: %v", i, err)
			}
		}
	})
}

func TestFutureReservationNotYetValid(t *testing.T) {
	tb, clk := newTestTable(0)
	start := clk.Now().Add(time.Hour)
	tok, err := tb.Make(Request{Vault: vaultL, Type: ReusableSpaceSharing, Start: start, Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Redeem(tok); !errors.Is(err, ErrNotYetValid) {
		t.Errorf("early redeem: %v", err)
	}
	clk.Advance(90 * time.Minute)
	if err := tb.Redeem(tok); err != nil {
		t.Errorf("redeem inside window: %v", err)
	}
	clk.Advance(time.Hour)
	if err := tb.Redeem(tok); !errors.Is(err, ErrExpired) {
		t.Errorf("redeem after end: %v", err)
	}
}

func TestConfirmationTimeout(t *testing.T) {
	tb, clk := newTestTable(0)
	// Instantaneous reservation with a 1-minute default confirmation
	// timeout (set in newTestTable).
	tok, err := tb.Make(Request{Vault: vaultL, Type: ReusableTimesharing, Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	if err := tb.Redeem(tok); !errors.Is(err, ErrExpired) {
		t.Errorf("redeem after confirmation timeout: %v", err)
	}

	// A confirmed (redeemed-in-time) reservation survives past the
	// timeout: confirmation is implicit in StartObject (paper §3.1).
	tok2, err := tb.Make(Request{Vault: vaultL, Type: ReusableTimesharing, Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Redeem(tok2); err != nil {
		t.Fatal(err)
	}
	clk.Advance(10 * time.Minute)
	if err := tb.Redeem(tok2); err != nil {
		t.Errorf("confirmed token after timeout window: %v", err)
	}
}

func TestExplicitTimeoutOverridesDefault(t *testing.T) {
	tb, clk := newTestTable(0)
	tok, err := tb.Make(Request{Vault: vaultL, Type: ReusableTimesharing,
		Duration: time.Hour, Timeout: 10 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Minute)
	if err := tb.Check(tok); err != nil {
		t.Errorf("within explicit timeout: %v", err)
	}
	clk.Advance(6 * time.Minute)
	if err := tb.Check(tok); !errors.Is(err, ErrExpired) {
		t.Errorf("past explicit timeout: %v", err)
	}
}

func TestCancelFreesInterval(t *testing.T) {
	tb, _ := newTestTable(0)
	tok, err := tb.Make(Request{Vault: vaultL, Type: ReusableSpaceSharing, Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Cancel(tok); err != nil {
		t.Fatal(err)
	}
	if err := tb.Check(tok); !errors.Is(err, ErrInvalidToken) {
		t.Errorf("cancelled token still checks: %v", err)
	}
	if err := tb.Cancel(tok); !errors.Is(err, ErrInvalidToken) {
		t.Errorf("double cancel: %v", err)
	}
	// Interval is free again.
	if _, err := tb.Make(Request{Vault: vaultL, Type: ReusableSpaceSharing, Duration: time.Hour}); err != nil {
		t.Errorf("re-reserve after cancel: %v", err)
	}
}

func TestExpiredReservationFreesInterval(t *testing.T) {
	tb, clk := newTestTable(0)
	if _, err := tb.Make(Request{Vault: vaultL, Type: ReusableSpaceSharing, Duration: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Make(Request{Vault: vaultL, Type: ReusableSpaceSharing, Duration: time.Hour}); !errors.Is(err, ErrConflict) {
		t.Fatal("expected conflict while active")
	}
	clk.Advance(2 * time.Hour)
	if _, err := tb.Make(Request{Vault: vaultL, Type: ReusableSpaceSharing, Duration: time.Hour}); err != nil {
		t.Errorf("reserve after expiry: %v", err)
	}
	if tb.Active() != 1 {
		t.Errorf("Active = %d, want 1 (expired entries collected)", tb.Active())
	}
}

func TestNonOverlappingIntervalsCoexist(t *testing.T) {
	tb, clk := newTestTable(0)
	t0 := clk.Now().Add(time.Hour)
	if _, err := tb.Make(Request{Vault: vaultL, Type: ReusableSpaceSharing, Start: t0, Duration: time.Hour}); err != nil {
		t.Fatal(err)
	}
	// Adjacent (end == start) does not overlap.
	if _, err := tb.Make(Request{Vault: vaultL, Type: ReusableSpaceSharing, Start: t0.Add(time.Hour), Duration: time.Hour}); err != nil {
		t.Errorf("adjacent interval rejected: %v", err)
	}
	// Before it, also fine.
	if _, err := tb.Make(Request{Vault: vaultL, Type: ReusableSpaceSharing, Start: t0.Add(-30 * time.Minute), Duration: 30 * time.Minute}); err != nil {
		t.Errorf("preceding interval rejected: %v", err)
	}
	// Straddling its middle conflicts.
	if _, err := tb.Make(Request{Vault: vaultL, Type: ReusableSpaceSharing, Start: t0.Add(30 * time.Minute), Duration: time.Hour}); !errors.Is(err, ErrConflict) {
		t.Errorf("straddling interval: %v", err)
	}
}

func TestForeignTokenRejected(t *testing.T) {
	tb1, _ := newTestTable(0)
	tb2, _ := newTestTable(0)
	tok, err := tb1.Make(Request{Vault: vaultL, Type: ReusableTimesharing, Duration: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb2.Check(tok); !errors.Is(err, ErrInvalidToken) {
		t.Errorf("foreign table accepted token: %v", err)
	}
	if err := tb2.Redeem(tok); !errors.Is(err, ErrInvalidToken) {
		t.Errorf("foreign table redeemed token: %v", err)
	}
	if err := tb2.Cancel(tok); !errors.Is(err, ErrInvalidToken) {
		t.Errorf("foreign table cancelled token: %v", err)
	}
	if err := tb1.Check(nil); !errors.Is(err, ErrInvalidToken) {
		t.Errorf("nil token: %v", err)
	}
}

// TestTableInvariantProperty: under random interleavings of make/cancel/
// redeem, the table never admits a space-sharing reservation overlapping
// any other live reservation.
func TestTableInvariantProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		tb, clk := newTestTable(4)
		var live []*Token
		for _, op := range ops {
			switch op % 4 {
			case 0: // make shared
				if tok, err := tb.Make(Request{Vault: vaultL, Type: ReusableTimesharing, Duration: time.Hour}); err == nil {
					live = append(live, tok)
				}
			case 1: // make exclusive
				tok, err := tb.Make(Request{Vault: vaultL, Type: ReusableSpaceSharing, Duration: time.Hour})
				if err == nil {
					if len(live) != 0 {
						return false // invariant violation: exclusive admitted alongside others
					}
					live = append(live, tok)
				}
			case 2: // cancel one
				if len(live) > 0 {
					tb.Cancel(live[len(live)-1])
					live = live[:len(live)-1]
				}
			case 3: // redeem (confirm) one
				if len(live) > 0 {
					tb.Redeem(live[0])
				}
			}
			clk.Advance(time.Second)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentMakeRespectsExclusivity(t *testing.T) {
	for round := 0; round < 20; round++ {
		tb, _ := newTestTable(0)
		var wg sync.WaitGroup
		granted := make(chan *Token, 16)
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if tok, err := tb.Make(Request{Vault: vaultL, Type: ReusableSpaceSharing, Duration: time.Hour}); err == nil {
					granted <- tok
				}
			}()
		}
		wg.Wait()
		close(granted)
		n := 0
		for range granted {
			n++
		}
		if n != 1 {
			t.Fatalf("round %d: %d exclusive reservations granted, want 1", round, n)
		}
	}
}

func TestOverlapsHelper(t *testing.T) {
	base := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	tok := Token{Start: base, Duration: time.Hour}
	cases := []struct {
		s, e time.Duration
		want bool
	}{
		{-time.Hour, 0, false}, // ends exactly at start
		{-time.Hour, time.Minute, true},
		{0, time.Hour, true},
		{30 * time.Minute, 2 * time.Hour, true},
		{time.Hour, 2 * time.Hour, false}, // begins exactly at end
	}
	for _, c := range cases {
		if got := tok.Overlaps(base.Add(c.s), base.Add(c.e)); got != c.want {
			t.Errorf("Overlaps(%v,%v) = %v want %v", c.s, c.e, got, c.want)
		}
	}
}
