package fanout

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, limit := range []int{1, 2, 8, 100} {
		n := 37
		counts := make([]int32, n)
		Do(limit, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Errorf("limit %d: index %d called %d times", limit, i, c)
			}
		}
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	const limit = 3
	var inflight, peak int32
	var mu sync.Mutex
	Do(limit, 20, func(int) {
		cur := atomic.AddInt32(&inflight, 1)
		mu.Lock()
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&inflight, -1)
	})
	if peak > limit {
		t.Errorf("peak concurrency %d exceeds limit %d", peak, limit)
	}
	if peak < 2 {
		t.Errorf("peak concurrency %d: never actually parallel", peak)
	}
}

func TestDoSerialWhenLimitOne(t *testing.T) {
	// limit 1 must run in order on the calling goroutine: appending to a
	// plain slice with no synchronization is race-free only then (the
	// race detector guards this property).
	var order []int
	Do(1, 5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestDoZeroAndNegative(t *testing.T) {
	called := false
	Do(4, 0, func(int) { called = true })
	Do(0, -3, func(int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
}
