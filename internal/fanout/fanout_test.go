package fanout

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, limit := range []int{1, 2, 8, 100} {
		n := 37
		counts := make([]int32, n)
		Do(limit, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Errorf("limit %d: index %d called %d times", limit, i, c)
			}
		}
	}
}

func TestDoBoundsConcurrency(t *testing.T) {
	const limit = 3
	var inflight, peak int32
	var mu sync.Mutex
	Do(limit, 20, func(int) {
		cur := atomic.AddInt32(&inflight, 1)
		mu.Lock()
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&inflight, -1)
	})
	if peak > limit {
		t.Errorf("peak concurrency %d exceeds limit %d", peak, limit)
	}
	if peak < 2 {
		t.Errorf("peak concurrency %d: never actually parallel", peak)
	}
}

func TestDoSerialWhenLimitOne(t *testing.T) {
	// limit 1 must run in order on the calling goroutine: appending to a
	// plain slice with no synchronization is race-free only then (the
	// race detector guards this property).
	var order []int
	Do(1, 5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestDoZeroAndNegative(t *testing.T) {
	called := false
	Do(4, 0, func(int) { called = true })
	Do(0, -3, func(int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
}

func TestLimiterAdmitsUpToLimit(t *testing.T) {
	l := NewLimiter(3)
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		if !l.TryGo(func() { defer wg.Done(); <-release }) {
			t.Fatalf("task %d refused below limit", i)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.InFlight() != 3 {
		if time.Now().After(deadline) {
			t.Fatal("admitted tasks never counted in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	if l.TryGo(func() {}) {
		t.Fatal("admitted past the limit")
	}
	close(release)
	wg.Wait()
	for l.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("slots never released")
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	if !l.TryGo(func() { close(done) }) {
		t.Fatal("refused after slots freed")
	}
	<-done
	if l.Limit() != 3 {
		t.Fatalf("Limit() = %d, want 3", l.Limit())
	}
}

func TestLimiterRefusalIsNonBlocking(t *testing.T) {
	l := NewLimiter(1)
	release := make(chan struct{})
	defer close(release)
	var wg sync.WaitGroup
	wg.Add(1)
	if !l.TryGo(func() { defer wg.Done(); <-release }) {
		t.Fatal("first task refused")
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.InFlight() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("task never started")
		}
		time.Sleep(time.Millisecond)
	}
	var ran atomic.Bool
	start := time.Now()
	if l.TryGo(func() { ran.Store(true) }) {
		t.Fatal("admitted past the limit")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("refusal blocked for %v", elapsed)
	}
	if ran.Load() {
		t.Fatal("refused task ran anyway")
	}
}

func TestLimiterPanicsOnBadLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLimiter(0) did not panic")
		}
	}()
	NewLimiter(0)
}
