// Package fanout provides the bounded worker pool the negotiation hot
// path fans out on: per-resource calls (reservations, k-of-n probes,
// create_instance, cancellations, daemon pulls) are independent, so they
// run concurrently up to a configured limit instead of one host at a
// time.
package fanout

import (
	"sync"
	"sync/atomic"
)

// Limiter is a non-blocking concurrency bound over spawned goroutines:
// the admission-control counterpart of Do's fixed-width fan-out. The ORB
// server uses one to cap in-flight request handlers — a flood of frames
// on one connection must shed, not spawn goroutines until memory is
// exhausted.
type Limiter struct {
	limit    int64
	inFlight atomic.Int64
}

// NewLimiter returns a Limiter admitting at most limit concurrent
// tasks; limit < 1 panics, which is a configuration bug.
func NewLimiter(limit int) *Limiter {
	if limit < 1 {
		panic("fanout: limiter needs limit >= 1")
	}
	return &Limiter{limit: int64(limit)}
}

// TryGo runs fn on a new goroutine if a slot is free, returning whether
// it was admitted. It never blocks: at capacity it refuses immediately
// so the caller can shed with a typed refusal instead of queueing
// unboundedly.
func (l *Limiter) TryGo(fn func()) bool {
	if l.inFlight.Add(1) > l.limit {
		l.inFlight.Add(-1)
		return false
	}
	go func() {
		defer l.inFlight.Add(-1)
		fn()
	}()
	return true
}

// InFlight returns the number of currently admitted tasks.
func (l *Limiter) InFlight() int { return int(l.inFlight.Load()) }

// Limit returns the configured bound.
func (l *Limiter) Limit() int { return int(l.limit) }

// Do calls fn(i) for every i in [0, n), running at most limit calls
// concurrently, and returns when all have finished. fn must write its
// result into caller-owned slots indexed by i (never shared state), so
// no synchronization is needed beyond the join. limit <= 1 degenerates
// to a plain loop on the calling goroutine — callers expose
// "parallelism 1" as an exact serial ablation.
//
// The calling goroutine works as one of the limit workers, so a fan-out
// of width w spawns min(limit, w)-1 goroutines, not w — on the query
// hot path (one Do per federated query) goroutine churn is measurable.
func Do(limit, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if limit > n {
		limit = n
	}
	if limit <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	worker := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(limit - 1)
	for w := 1; w < limit; w++ {
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	worker()
	wg.Wait()
}
