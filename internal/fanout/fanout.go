// Package fanout provides the bounded worker pool the negotiation hot
// path fans out on: per-resource calls (reservations, k-of-n probes,
// create_instance, cancellations, daemon pulls) are independent, so they
// run concurrently up to a configured limit instead of one host at a
// time.
package fanout

import "sync"

// Do calls fn(i) for every i in [0, n), running at most limit calls
// concurrently, and returns when all have finished. fn must write its
// result into caller-owned slots indexed by i (never shared state), so
// no synchronization is needed beyond the join. limit <= 1 degenerates
// to a plain loop on the calling goroutine — callers expose
// "parallelism 1" as an exact serial ablation.
func Do(limit, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if limit > n {
		limit = n
	}
	if limit <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, limit)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}
