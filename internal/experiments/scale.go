package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"legion/internal/core"
	"legion/internal/resilient"
	"legion/internal/sim"
	"legion/internal/telemetry"
	"legion/internal/vclock"
)

// E12VirtualScale drives a large synthetic metasystem through the real
// placement pipeline under the deterministic discrete-event clock: every
// timer, deadline, backoff, and injected link delay runs in virtual
// time, so a 100k-host, 1M-placement campaign that would occupy a
// wide-area testbed for hours executes in one process in minutes of
// wall-clock — with latency percentiles measured on the virtual clock,
// where they are exact properties of the model rather than artifacts of
// the harness machine.
//
// The paper's own evaluation stopped at a multi-site testbed of tens of
// machines; its design sections argue the architecture scales far
// beyond that ("scheduling in metasystems is a hard problem ... millions
// of hosts", §1). This experiment is the closest executable form of that
// claim: the production Scheduler/Enactor/Host negotiation, a 2ms±1ms
// synthetic wide-area link on every method call, an open-loop Poisson
// arrival process, and a post-run conservation audit (no reservation or
// instance may survive the drain).
//
// hosts/requests <= 0 default to 100,000 hosts and 1,000,000 placements
// (the committed EXPERIMENTS.md row); CI runs a reduced 10k/50k row.
func E12VirtualScale(hosts, requests int) *Table {
	if hosts <= 0 {
		hosts = 100_000
	}
	if requests <= 0 {
		requests = 1_000_000
	}
	t := &Table{
		ID:    "E12",
		Title: "Virtual-time scale: open-loop placements through the real pipeline",
		Header: []string{"hosts", "requests", "ok", "shed", "failed",
			"p50", "p99", "p999", "goodput/vs", "vtime", "wall", "leaks", "MB", "B/host"},
	}

	vc := vclock.NewVirtual()
	reg := telemetry.NewRegistry()
	ms := core.New("scale", core.Options{
		Seed:    12,
		Metrics: reg,
		Clock:   vc,
		Retry: resilient.Policy{
			MaxAttempts: 2, BaseDelay: 5 * time.Millisecond,
			Budget: 5 * time.Second, AttemptTimeout: 2 * time.Second,
			Clock: vc, JitterRand: resilient.NewLockedRand(12),
		},
	})
	class := ms.DefineClass("Worker", nil)

	rng := rand.New(rand.NewSource(12))
	fleet := sim.Build(ms, rng, sim.RandomSpecs(rng, hosts, "z1", "z2", "z3", "z4"))

	// Bytes per host: heap growth across the fleet build, which covers
	// the Host object, its attribute database, its reservation table,
	// and its Collection record.
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	heapMB := float64(m.HeapAlloc) / (1 << 20)
	perHost := float64(m.HeapAlloc) / float64(hosts)

	// 2ms±1ms virtual link latency on every method call: placement
	// latency becomes a count of negotiation round-trips, measured
	// exactly in virtual time.
	ms.Runtime().SetLatency(2*time.Millisecond, time.Millisecond)

	var res *sim.DriverResult
	wall0 := time.Now()
	vc.Run(func() {
		res = fleet.Drive(context.Background(), class, sim.DriverConfig{
			Clock:       vc,
			Rate:        2000,
			Requests:    requests,
			Arrivals:    sim.Poisson,
			Seed:        12,
			Deadline:    10 * time.Second,
			SnapshotTTL: 10 * time.Second,
		})
	})
	wall := time.Since(wall0)

	// Conservation audit: the drain must leave an empty metasystem.
	leaks := 0
	for _, h := range fleet.Hosts {
		leaks += h.ActiveReservations() + h.RunningCount()
	}

	t.AddRow(hosts, requests, res.Succeeded, res.Shed, res.Failed,
		res.Percentile(0.50), res.Percentile(0.99), res.Percentile(0.999),
		fmt.Sprintf("%.0f", res.Goodput()),
		res.Elapsed.Round(time.Millisecond), wall.Round(time.Millisecond),
		leaks, fmt.Sprintf("%.0f", heapMB), fmt.Sprintf("%.0f", perHost))
	t.Notes = append(t.Notes,
		"single process, deterministic discrete-event clock (internal/vclock); latencies are virtual time",
		"2ms±1ms synthetic link latency per method call; Poisson arrivals at 2000 req/virtual-second",
		fmt.Sprintf("host snapshots cached 10 virtual seconds: %d hits / %d misses", res.CacheHits, res.CacheMisses),
		"leaks = active reservations + running instances after the drain (must be 0)",
		"MB = heap after fleet build; B/host = heap bytes per built host")
	return t
}
