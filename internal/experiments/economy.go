package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"legion/internal/core"
	"legion/internal/economy"
	"legion/internal/resilient"
	"legion/internal/sched"
	"legion/internal/scheduler"
	"legion/internal/sim"
	"legion/internal/telemetry"
	"legion/internal/vclock"
)

// economyTenants is the fixed tenant roster of the E14 campaign: four
// competing projects drawing on separate budgets.
var economyTenants = []string{"astro", "bio", "cfd", "hep"}

// economyDeadline is request i's scheduling deadline: alternating strict
// and relaxed classes, both feasible on the archetype fleet (the
// slowest single-occupancy completion is ~2.3h).
func economyDeadline(i int) time.Duration {
	if i%2 == 0 {
		return 3 * time.Hour
	}
	return 6 * time.Hour
}

// economySpec stamps request i's reservation with its tenant and
// deadline — the per-request identity the ledger and the DeadlineBudget
// generator act on.
func economySpec(i int) sched.ReservationSpec {
	return sched.ReservationSpec{
		Share: true, Reuse: true, Duration: time.Hour,
		Tenant:   economyTenants[i%len(economyTenants)],
		Deadline: economyDeadline(i),
	}
}

// economyRun is one E14 campaign outcome: placement tallies plus the
// ledger's verdict on what the placements cost.
type economyRun struct {
	res *sim.DriverResult
	// spent is the gross ledger spend across all tenants (refunds do
	// not decrement it — the number compares what each policy bought,
	// not what it kept).
	spent    economy.Credits
	refunded economy.Credits
	// hit/judged count successful placements whose modelled completion
	// fits the request's deadline.
	hit, judged int
	leaks       int
	audit       []string
	trace       []string
}

// runEconomyCampaign drives one policy through the placement pipeline on
// a priced fleet under a virtual clock, stamping each request with
// spec(i) (nil spec leaves the driver's plain unconstrained default —
// the differential test's configuration), and reads the bill off the
// ledger afterwards.
func runEconomyCampaign(gen scheduler.Generator, hosts, requests int, spec func(int) sched.ReservationSpec, keepTrace bool) economyRun {
	vc := vclock.NewVirtual()
	ms := core.New("econ", core.Options{
		Seed:    13,
		Metrics: telemetry.NewRegistry(),
		Clock:   vc,
		Economy: true,
		Retry: resilient.Policy{
			MaxAttempts: 2, BaseDelay: 5 * time.Millisecond,
			Budget: 5 * time.Second, AttemptTimeout: 2 * time.Second,
			Clock: vc, JitterRand: resilient.NewLockedRand(13),
		},
	})
	defer ms.Close()
	class := ms.DefineClass("Worker", nil)

	rng := rand.New(rand.NewSource(13))
	fleet := sim.Build(ms, rng, sim.EconomySpecs(rng, hosts, "z1", "z2"))
	ms.Runtime().SetLatency(2*time.Millisecond, time.Millisecond)

	led := ms.Ledger()
	for _, tn := range economyTenants {
		led.Open(tn, economy.ToCredits(1e9))
	}

	const est = time.Hour // matches the reservation duration the specs carry
	var run economyRun
	var mu sync.Mutex
	if keepTrace {
		vc.StartTrace()
	}
	vc.Run(func() {
		run.res = fleet.Drive(context.Background(), class, sim.DriverConfig{
			Clock:       vc,
			Rate:        2000,
			Requests:    requests,
			Arrivals:    sim.Poisson,
			Seed:        13,
			Deadline:    10 * time.Second,
			SnapshotTTL: 10 * time.Second,
			Generator:   gen,
			Spec:        spec,
			Observe: func(i int, out *scheduler.Outcome) {
				if spec == nil {
					return
				}
				dl := spec(i).Deadline
				if dl <= 0 {
					return
				}
				fit := fleet.Makespan(out.Feedback.Resolved, est) <= dl
				mu.Lock()
				run.judged++
				if fit {
					run.hit++
				}
				mu.Unlock()
			},
		})
	})
	for _, a := range led.Accounts() {
		run.spent += a.Spent
		run.refunded += a.Refunded
	}
	run.audit = led.Audit()
	for _, h := range fleet.Hosts {
		run.leaks += h.ActiveReservations() + h.RunningCount()
	}
	if keepTrace {
		run.trace = vc.Trace()
	}
	return run
}

// economyLadder is the fixed policy lineup E14 (and its tests) compare.
func economyLadder() []struct {
	Name string
	Gen  scheduler.Generator
} {
	return []struct {
		Name string
		Gen  scheduler.Generator
	}{
		{"random", scheduler.Random{}},
		{"irs", scheduler.IRS{NSched: 4}},
		{"deadline-budget", scheduler.DeadlineBudget{Estimate: time.Hour}},
	}
}

// E14Economy is the computational-economy benchmark (DESIGN.md §15,
// Nimrod/G's core claim transplanted into Legion's negotiation
// pipeline): the same tenant/deadline-stamped workload placed by a
// cost-blind baseline (Random), the variant-bearing baseline (IRS), and
// the DeadlineBudget economy generator, on one priced 10k-host fleet
// under a virtual clock. Every placement is billed to its tenant's
// ledger account at the host-quoted price; the table compares what each
// policy bought (gross spend) and whether the placements it made fit
// their deadlines under the makespan model.
//
// Expected shape: deadline-budget meets >=90% of the (feasible)
// deadlines at strictly lower gross spend than either cost-blind
// policy, because it buys the cheapest deadline-feasible hosts while
// Random/IRS pay the fleet-average price.
//
// hosts/requests <= 0 default to 10,000 hosts and 20,000 placements.
func E14Economy(hosts, requests int) *Table {
	if hosts <= 0 {
		hosts = 10_000
	}
	if requests <= 0 {
		requests = 20_000
	}
	t := &Table{
		ID:    "E14",
		Title: "Computational economy: deadline/budget scheduling vs cost-blind policies (virtual clock)",
		Header: []string{"scheduler", "hosts", "requests", "ok", "shed", "failed",
			"deadline hit", "gross spend", "spend vs random", "p99", "ledger", "leaks"},
	}
	var base economy.Credits
	for ri, row := range economyLadder() {
		r := runEconomyCampaign(row.Gen, hosts, requests, economySpec, false)
		if ri == 0 {
			base = r.spent
		}
		relative := "-"
		if ri > 0 && base > 0 {
			relative = fmt.Sprintf("%+.0f%%", 100*(float64(r.spent)/float64(base)-1))
		}
		hitPct := "-"
		if r.judged > 0 {
			hitPct = fmt.Sprintf("%.1f%%", 100*float64(r.hit)/float64(r.judged))
		}
		ledgerState := "conserved"
		if len(r.audit) > 0 {
			ledgerState = fmt.Sprintf("VIOLATED(%d)", len(r.audit))
		}
		t.AddRow(row.Name, hosts, requests, r.res.Succeeded, r.res.Shed, r.res.Failed,
			hitPct, fmt.Sprintf("%.1f", r.spent.Units()), relative,
			r.res.Percentile(0.99), ledgerState, r.leaks)
	}
	t.Notes = append(t.Notes,
		"every request carries a tenant (4-way round-robin) and an alternating 3h/6h deadline; reservations are billed at $host_price x duration and refunded on teardown",
		"gross spend = sum of tenant Spent (refunds excluded): what the policy bought, not what it kept",
		"deadline hit = modelled completion (makespan model, live load) within the request's deadline",
		"ledger = per-tenant conservation audit after the run (budget = remaining + outstanding, refunds <= spend)")
	return t
}
