package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"legion/internal/core"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/proto"
	"legion/internal/sched"
	"legion/internal/vault"
)

// Fig5VariantSelection measures the schedule data structure of Figure 5:
// the per-variant bitmap lets the Enactor pick the next applicable
// variant by word-wise intersection instead of rescanning every
// replacement list. Both strategies are timed over schedules with
// growing variant counts, and the bitmap's benefit is reported.
func Fig5VariantSelection(mappings int, variantCounts []int) *Table {
	if mappings < 1 {
		mappings = 64
	}
	if len(variantCounts) == 0 {
		variantCounts = []int{8, 64, 512}
	}
	t := &Table{
		ID:     "F5",
		Title:  "Schedule structure (Figure 5): variant selection, bitmap vs replacement-list scan",
		Header: []string{"mappings", "variants", "bitmap select", "list scan", "speedup"},
	}
	rng := rand.New(rand.NewSource(5))
	mk := func(c, h, v uint64) sched.Mapping {
		return sched.Mapping{
			Class: loid.LOID{Domain: "d", Class: "C", Instance: c},
			Host:  loid.LOID{Domain: "d", Class: "H", Instance: h},
			Vault: loid.LOID{Domain: "d", Class: "V", Instance: v},
		}
	}
	for _, nv := range variantCounts {
		m := sched.Master{}
		for i := 0; i < mappings; i++ {
			m.Mappings = append(m.Mappings, mk(1, uint64(i+1), 1))
		}
		// Each variant replaces a few random entries.
		for v := 0; v < nv; v++ {
			var vr sched.Variant
			seen := map[int]bool{}
			for k := 0; k < 3; k++ {
				idx := rng.Intn(mappings)
				if seen[idx] {
					continue
				}
				seen[idx] = true
				vr.AddReplacement(idx, mk(1, uint64(1000+v), 1))
			}
			m.Variants = append(m.Variants, vr)
		}
		failed := sched.NewBitmap(mappings)
		failed.Set(mappings - 1) // worst case: only the last entry failed

		const iters = 5000
		t0 := time.Now()
		sink := 0
		for i := 0; i < iters; i++ {
			sink += m.NextVariant(0, failed)
		}
		bitmapT := time.Since(t0) / iters

		// Naive: rescan each variant's replacement list.
		t0 = time.Now()
		for i := 0; i < iters; i++ {
			found := -1
			for vi := range m.Variants {
				for _, r := range m.Variants[vi].Replacements {
					if failed.Get(r.Index) {
						found = vi
						break
					}
				}
				if found >= 0 {
					break
				}
			}
			sink += found
		}
		scanT := time.Since(t0) / iters
		_ = sink
		speedup := float64(scanT) / float64(bitmapT)
		t.AddRow(mappings, nv, bitmapT, scanT, fmt.Sprintf("%.1fx", speedup))
	}
	t.Notes = append(t.Notes,
		`"a bitmap field ... allows the Enactor to efficiently select the next variant schedule to try"`)
	return t
}

// Fig6EnactorProtocol drives the Figure 6 Enactor interface through its
// outcome space — clean success, variant-patched success, resource
// failure with rollback, malformed schedule, cancellation — and reports
// the negotiation statistics for each, including the reservation
// thrashing avoided by keeping unchanged reservations across variants.
func Fig6EnactorProtocol() *Table {
	t := &Table{
		ID:    "F6",
		Title: "Enactor protocol (Figure 6): outcomes and negotiation effort",
		Header: []string{"scenario", "result", "reason", "requested", "granted",
			"cancelled", "variants tried"},
	}
	ctx := context.Background()

	build := func(brokenHosts ...int) (*msEnv, func()) {
		env := newMSEnv(6, 4, brokenHosts...)
		return env, func() { env.ms.Close() }
	}

	// Clean success: all mappings on healthy hosts.
	{
		env, done := build()
		req := env.request(
			env.mapping(0), env.mapping(1), env.mapping(2))
		fb := env.ms.Enactor.MakeReservations(ctx, req)
		t.AddRow("3 mappings, all healthy", okStr(fb.Success), fb.Reason,
			fb.Stats.ReservationsRequested, fb.Stats.ReservationsGranted,
			fb.Stats.ReservationsCancelled, fb.Stats.VariantsTried)
		done()
	}
	// Variant-patched success: entry 1 broken, variant redirects it.
	{
		env, done := build(1)
		master := sched.Master{Mappings: []sched.Mapping{env.mapping(0), env.mapping(1)}}
		var v sched.Variant
		v.AddReplacement(1, env.mapping(2))
		master.Variants = []sched.Variant{v}
		req := sched.RequestList{ID: env.ms.Enactor.NewRequestID(),
			Masters: []sched.Master{master}, Res: shareSpec()}
		fb := env.ms.Enactor.MakeReservations(ctx, req)
		t.AddRow("1 broken host, variant patch", okStr(fb.Success), fb.Reason,
			fb.Stats.ReservationsRequested, fb.Stats.ReservationsGranted,
			fb.Stats.ReservationsCancelled, fb.Stats.VariantsTried)
		done()
	}
	// Resource failure: co-allocation rollback cancels partial holdings.
	{
		env, done := build(1)
		req := env.request(env.mapping(0), env.mapping(1))
		fb := env.ms.Enactor.MakeReservations(ctx, req)
		t.AddRow("1 broken host, no variants", okStr(fb.Success), fb.Reason,
			fb.Stats.ReservationsRequested, fb.Stats.ReservationsGranted,
			fb.Stats.ReservationsCancelled, fb.Stats.VariantsTried)
		done()
	}
	// Malformed schedule.
	{
		env, done := build()
		fb := env.ms.Enactor.MakeReservations(ctx, sched.RequestList{ID: 99})
		t.AddRow("empty request list", okStr(fb.Success), fb.Reason,
			fb.Stats.ReservationsRequested, fb.Stats.ReservationsGranted,
			fb.Stats.ReservationsCancelled, fb.Stats.VariantsTried)
		done()
	}
	// cancel_reservations releases resources.
	{
		env, done := build()
		req := env.request(env.mapping(0))
		fb := env.ms.Enactor.MakeReservations(ctx, req)
		err := env.ms.Enactor.CancelReservations(ctx, req.ID)
		t.AddRow("reserve then cancel", okStr(fb.Success && err == nil), "released",
			fb.Stats.ReservationsRequested, fb.Stats.ReservationsGranted,
			"1 (explicit)", fb.Stats.VariantsTried)
		done()
	}
	t.Notes = append(t.Notes,
		"all-or-nothing co-allocation: a failed master cancels everything it obtained",
		"variant patching re-reserves only replaced entries (thrash avoidance)")
	return t
}

// msEnv is a small metasystem with optionally broken hosts for protocol
// experiments.
type msEnv struct {
	ms    *core.Metasystem
	class loid.LOID
	vault loid.LOID
	hosts []loid.LOID
}

func newMSEnv(nHosts, cpus int, broken ...int) *msEnv {
	ms := core.New("uva", core.Options{Seed: 6})
	brokenSet := map[int]bool{}
	for _, b := range broken {
		brokenSet[b] = true
	}
	vaultL := ms.AddVault(vault.Config{Zone: "z1"}).LOID()
	env := &msEnv{ms: ms, vault: vaultL}
	for i := 0; i < nHosts; i++ {
		cfg := host.Config{
			Arch: "x86", OS: "Linux", CPUs: cpus, MemoryMB: 1024, Zone: "z1",
			Vaults: []loid.LOID{vaultL},
		}
		if brokenSet[i] {
			cfg.Policy = func(proto.MakeReservationArgs) error {
				return fmt.Errorf("%w: broken for experiment", host.ErrPolicy)
			}
		}
		h := ms.AddHost(cfg)
		env.hosts = append(env.hosts, h.LOID())
	}
	c := ms.DefineClass("Worker", nil)
	env.class = c.LOID()
	return env
}

func (e *msEnv) mapping(hostIdx int) sched.Mapping {
	return sched.Mapping{Class: e.class, Host: e.hosts[hostIdx], Vault: e.vault}
}

func (e *msEnv) request(ms ...sched.Mapping) sched.RequestList {
	return sched.RequestList{
		ID:      e.ms.Enactor.NewRequestID(),
		Masters: []sched.Master{{Mappings: ms}},
		Res:     shareSpec(),
	}
}

func shareSpec() sched.ReservationSpec {
	return sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour}
}

func okStr(ok bool) string {
	if ok {
		return "success"
	}
	return "failure"
}
