package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"legion/internal/core"
	"legion/internal/loid"
	"legion/internal/proto"
	"legion/internal/scheduler"
	"legion/internal/sim"
)

// newRand seeds a deterministic source for fleet construction.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// E6MonitoredRebalancing runs the full §3.5 closed loop over a timeline:
// objects are placed once, background load then drifts unevenly, and a
// Monitor-driven rescheduler migrates objects off overloaded hosts. The
// same timeline runs once with monitoring disabled (static placement) as
// the baseline. Reported: mean/peak effective host load over the run and
// migrations performed — the "recomputation of the schedule ... based on
// the load on the hosts" the paper describes.
func E6MonitoredRebalancing(steps int) *Table {
	if steps < 4 {
		steps = 40
	}
	t := &Table{
		ID:     "E6",
		Title:  "Monitored rebalancing (§3.5 loop) vs static placement under drifting load",
		Header: []string{"policy", "migrations", "mean experienced load", "final experienced load"},
	}
	ctx := context.Background()
	const nHosts, nObjects = 4, 8

	for _, monitored := range []bool{false, true} {
		ms := core.New("uva", core.Options{Seed: 66})
		// 8-CPU hosts: an object adds little load itself, so the drifting
		// background load dominates the experienced-load objective.
		fleet := sim.Build(ms, newRand(66), withMaxShared(sim.UniformSpecs(nHosts, 8), 64))
		class := ms.DefineClass("Worker", nil)

		out, err := ms.PlaceApplication(ctx, scheduler.LoadAware{}, scheduler.Request{
			Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: nObjects}},
			Res:     shareSpec(),
		})
		if err != nil {
			t.Notes = append(t.Notes, "placement: "+err.Error())
			ms.Close()
			continue
		}
		var instances []loid.LOID
		for _, insts := range out.Instances {
			instances = append(instances, insts...)
		}

		// Drifting load: host 0 ramps toward saturation, the rest stay
		// quiet — a deterministic drift so both runs see the same world.
		drift := func(step int) {
			for i, h := range fleet.Hosts {
				if i == 0 {
					h.SetExternalLoad(math.Min(1.5, 0.05*float64(step)))
				} else {
					h.SetExternalLoad(0.1)
				}
			}
		}

		migrations := 0
		var mu sync.Mutex
		if monitored {
			if err := ms.WatchLoad(ctx, 1.0); err != nil {
				t.Notes = append(t.Notes, "watch: "+err.Error())
			}
			ms.Monitor.OnEvent(func(ev proto.NotifyArgs) {
				// Move one object off the overloaded host.
				var victim loid.LOID
				for _, inst := range instances {
					hL, _, err := class.WhereIs(inst)
					if err == nil && hL == ev.Source {
						victim = inst
						break
					}
				}
				if victim.IsNil() {
					return
				}
				dest, dv, err := ms.LeastLoadedHost(ev.Source)
				if err != nil {
					return
				}
				if err := ms.Migrate(ctx, class, victim, dest.LOID(), dv); err == nil {
					mu.Lock()
					migrations++
					mu.Unlock()
				}
			})
		}

		// The objective an application cares about: the load its objects
		// actually experience (their host's load), averaged per step —
		// migration can move objects away from hot machines even though
		// it cannot cool the machines themselves.
		experienced := func() float64 {
			loadOf := map[loid.LOID]float64{}
			for _, h := range fleet.Hosts {
				loadOf[h.LOID()] = h.Load()
			}
			sum, n := 0.0, 0
			for _, inst := range instances {
				if hL, _, err := class.WhereIs(inst); err == nil {
					sum += loadOf[hL]
					n++
				}
			}
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		}

		expSum, final := 0.0, 0.0
		for s := 0; s < steps; s++ {
			drift(s)
			ms.ReassessAll(ctx) // triggers fire here when monitored
			final = experienced()
			expSum += final
		}

		name := "static placement"
		if monitored {
			name = "monitored rebalancing"
		}
		mu.Lock()
		m := migrations
		mu.Unlock()
		t.AddRow(name, m, fmt.Sprintf("%.2f", expSum/float64(steps)), fmt.Sprintf("%.2f", final))
		ms.Close()
	}
	t.Notes = append(t.Notes,
		"host 0's background load ramps to 1.5 over the run; overload trigger fires at load > 1.0",
		"each trigger firing migrates one object to the least-loaded host (same LOID, state intact)")
	return t
}

// withMaxShared sets the admission bound on every spec.
func withMaxShared(specs []sim.HostSpec, n int) []sim.HostSpec {
	for i := range specs {
		specs[i].MaxShared = n
	}
	return specs
}
