package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"legion/internal/classobj"
	"legion/internal/core"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/proto"
	"legion/internal/rebalance"
	"legion/internal/scheduler"
	"legion/internal/sim"
	"legion/internal/telemetry"
	"legion/internal/vault"
)

// newRand seeds a deterministic source for fleet construction.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// E6MonitoredRebalancing runs the full §3.5 closed loop over a timeline:
// objects are placed once, background load then drifts unevenly, and the
// rebalance subsystem — subscribed to the Monitor through its bounded
// async queue — migrates objects off overloaded hosts. The same timeline
// runs once with the Rebalancer stopped (static placement) as the
// baseline. Reported: mean/peak effective host load over the run and
// migrations performed — the "recomputation of the schedule ... based on
// the load on the hosts" the paper describes.
func E6MonitoredRebalancing(steps int) *Table {
	if steps < 4 {
		steps = 40
	}
	t := &Table{
		ID:     "E6",
		Title:  "Monitored rebalancing (internal/rebalance) vs static placement under drifting load",
		Header: []string{"policy", "migrations", "mean experienced load", "final experienced load"},
	}
	ctx := context.Background()
	const nHosts, nObjects = 4, 8

	for _, monitored := range []bool{false, true} {
		reg := telemetry.NewRegistry()
		ms := core.New("uva", core.Options{Seed: 66, Metrics: reg})
		// 8-CPU hosts: an object adds little load itself, so the drifting
		// background load dominates the experienced-load objective.
		fleet := sim.Build(ms, newRand(66), withMaxShared(sim.UniformSpecs(nHosts, 8), 64))
		class := ms.DefineClass("Worker", nil)

		out, err := ms.PlaceApplication(ctx, scheduler.LoadAware{}, scheduler.Request{
			Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: nObjects}},
			Res:     shareSpec(),
		})
		if err != nil {
			t.Notes = append(t.Notes, "placement: "+err.Error())
			ms.Close()
			continue
		}
		var instances []loid.LOID
		for _, insts := range out.Instances {
			instances = append(instances, insts...)
		}

		// Drifting load: host 0 ramps toward saturation, the rest stay
		// quiet — a deterministic drift so both runs see the same world.
		drift := func(step int) {
			for i, h := range fleet.Hosts {
				if i == 0 {
					h.SetExternalLoad(math.Min(1.5, 0.05*float64(step)))
				} else {
					h.SetExternalLoad(0.1)
				}
			}
		}

		var rb *rebalance.Rebalancer
		if monitored {
			rb = rebalance.New(ms, rebalance.Config{
				Classes:  []*classobj.Class{class},
				Cooldown: -1,
				Policy:   &rebalance.LeastLoaded{MaxShedPerEvent: nObjects / nHosts},
			})
			if err := rb.Start(); err != nil {
				t.Notes = append(t.Notes, "rebalancer: "+err.Error())
			}
			if err := ms.WatchLoad(ctx, 1.0); err != nil {
				t.Notes = append(t.Notes, "watch: "+err.Error())
			}
		}

		// The objective an application cares about: the load its objects
		// actually experience (their host's load), averaged per step —
		// migration can move objects away from hot machines even though
		// it cannot cool the machines themselves.
		experienced := func() float64 {
			loadOf := map[loid.LOID]float64{}
			for _, h := range fleet.Hosts {
				loadOf[h.LOID()] = h.Load()
			}
			sum, n := 0.0, 0
			for _, inst := range instances {
				if hL, _, err := class.WhereIs(inst); err == nil {
					sum += loadOf[hL]
					n++
				}
			}
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		}

		expSum, final := 0.0, 0.0
		for s := 0; s < steps; s++ {
			drift(s)
			ms.ReassessAll(ctx) // triggers fire here when monitored
			if monitored {
				drainRebalancer(ms, 250*time.Millisecond)
			}
			final = experienced()
			expSum += final
		}

		name := "static placement"
		if monitored {
			name = "monitored rebalancing"
			rb.Stop()
		}
		m := reg.CounterValue("legion_rebalance_migrations_total", "result", "ok")
		t.AddRow(name, m, fmt.Sprintf("%.2f", expSum/float64(steps)), fmt.Sprintf("%.2f", final))
		ms.Close()
	}
	t.Notes = append(t.Notes,
		"host 0's background load ramps to 1.5 over the run; overload trigger fires at load > 1.0",
		"each trigger firing sheds the overloaded host's objects to the least-loaded hosts (same LOIDs, state intact)",
		"migrations run through internal/rebalance: async Monitor queue, per-instance locks, cooldown disabled")
	return t
}

// drainRebalancer waits (bounded) for the Monitor's async queues to
// empty so a benchmark step observes the post-migration placement.
func drainRebalancer(ms *core.Metasystem, budget time.Duration) {
	deadline := time.Now().Add(budget)
	for ms.Monitor.QueueDepth() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Queue empty means dequeued, not finished: give the in-flight
	// handler a moment to complete its Migrate calls.
	time.Sleep(5 * time.Millisecond)
}

// E10RebalanceChaosScale is the PR 5 acceptance experiment: a larger
// fleet under drifting load AND a >= 20% injected fault rate on the
// migration protocol's own steps (StartObject, StoreOPR). The rebalance
// subsystem keeps shedding overloaded hosts while destinations fail
// mid-migration; at the end the token/OPR conservation audit must come
// back clean and every object must be running exactly once.
func E10RebalanceChaosScale(nHosts, nObjects, steps int, faultRate float64) *Table {
	if nHosts < 2 {
		nHosts = 12
	}
	if nObjects < 1 {
		nObjects = 36
	}
	if steps < 4 {
		steps = 60
	}
	if faultRate < 0 {
		faultRate = 0.25
	}
	t := &Table{
		ID:    "E10",
		Title: "Rebalancing at scale under migration-path faults (conservation audit)",
		Header: []string{"fault rate", "migrations ok", "migrations failed", "recoveries",
			"mean experienced load", "running exactly once", "leaked tokens", "orphan OPRs"},
	}
	ctx := context.Background()

	for _, rate := range []float64{0, faultRate} {
		reg := telemetry.NewRegistry()
		ms := core.New("uva", core.Options{Seed: 1999, Metrics: reg})
		vaults := make([]loid.LOID, 0, 2)
		for i := 0; i < 2; i++ {
			v := ms.AddVault(vault.Config{Zone: "z1"})
			vaults = append(vaults, v.LOID())
		}
		for i := 0; i < nHosts; i++ {
			ms.AddHost(host.Config{
				Arch: "x86", OS: "Linux", CPUs: 8, MemoryMB: 1024, Zone: "z1",
				MaxShared: 64, Vaults: append([]loid.LOID(nil), vaults...),
			})
		}
		class := ms.DefineClass("Worker", nil)
		out, err := ms.PlaceApplication(ctx, scheduler.LoadAware{}, scheduler.Request{
			Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: nObjects}},
			Res:     shareSpec(),
		})
		if err != nil {
			t.Notes = append(t.Notes, "placement: "+err.Error())
			ms.Close()
			continue
		}
		var instances []loid.LOID
		for _, insts := range out.Instances {
			instances = append(instances, insts...)
		}

		// Seeded migration-path faults: the destination host "dies" at
		// StartObject, the destination vault at StoreOPR.
		if rate > 0 {
			rng := newRand(7)
			ms.Runtime().SetFaultInjector(func(target loid.LOID, method string) error {
				if method == proto.MethodStartObject || method == proto.MethodStoreOPR {
					if rng.Float64() < rate {
						return fmt.Errorf("injected: %s dies mid-migration", method)
					}
				}
				return nil
			})
		}

		rb := rebalance.New(ms, rebalance.Config{
			Classes:  []*classobj.Class{class},
			Cooldown: -1,
			Policy:   &rebalance.LeastLoaded{MaxShedPerEvent: nObjects / nHosts},
		})
		if err := rb.Start(); err != nil {
			t.Notes = append(t.Notes, "rebalancer: "+err.Error())
		}
		if err := ms.WatchLoad(ctx, 0.8); err != nil {
			t.Notes = append(t.Notes, "watch: "+err.Error())
		}

		hosts := ms.Hosts()
		experienced := func() float64 {
			loadOf := map[loid.LOID]float64{}
			for _, h := range hosts {
				loadOf[h.LOID()] = h.Load()
			}
			sum, n := 0.0, 0
			for _, inst := range instances {
				if hL, _, err := class.WhereIs(inst); err == nil {
					sum += loadOf[hL]
					n++
				}
			}
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		}

		// A rotating hot-spot: each phase saturates a different host.
		loadRNG := newRand(31)
		expSum := 0.0
		for s := 0; s < steps; s++ {
			hot := (s / 5) % nHosts
			for i, h := range hosts {
				if i == hot {
					h.SetExternalLoad(1.2)
				} else {
					h.SetExternalLoad(0.1 + 0.2*loadRNG.Float64())
				}
			}
			ms.ReassessAll(ctx)
			drainRebalancer(ms, 250*time.Millisecond)
			expSum += experienced()
		}
		rb.Stop()
		ms.Runtime().SetFaultInjector(nil)

		// Converge and audit: the invariant the whole PR exists for.
		_ = rb.Reconcile(ctx)
		audit := ms.AuditMigrations(class)
		exactlyOnce := len(audit.Missing) == 0 && len(audit.Duplicated) == 0

		t.AddRow(
			fmt.Sprintf("%.0f%%", rate*100),
			reg.CounterValue("legion_rebalance_migrations_total", "result", "ok"),
			reg.CounterValue("legion_rebalance_migrations_total", "result", "failed"),
			reg.CounterValue("legion_rebalance_recoveries_total"),
			fmt.Sprintf("%.2f", expSum/float64(steps)),
			exactlyOnce,
			audit.LeakedTokens,
			len(audit.OrphanOPRs),
		)
		ms.Close()
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d hosts x 2 vaults, %d objects; a rotating hot-spot saturates a different host every 5 steps", nHosts, nObjects),
		"faults hit the migration protocol itself: destination StartObject and vault StoreOPR fail at the given rate",
		"after the storm one Reconcile pass runs; the audit then checks exactly-once + zero leaked tokens + zero orphan OPRs")
	return t
}

// withMaxShared sets the admission bound on every spec.
func withMaxShared(specs []sim.HostSpec, n int) []sim.HostSpec {
	for i := range specs {
		specs[i].MaxShared = n
	}
	return specs
}
