package experiments

import "testing"

func TestE15PredictiveBeatsReactive(t *testing.T) {
	tb := E15PredictiveRebalancing(48)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows:\n%s", tb)
	}
	reactLate := numVal(t, cell(t, tb, "reactive", "too late"))
	predLate := numVal(t, cell(t, tb, "predictive", "too late"))
	reactMean := numVal(t, cell(t, tb, "reactive", "mean experienced load"))
	predMean := numVal(t, cell(t, tb, "predictive", "mean experienced load"))
	if predLate >= reactLate {
		t.Errorf("predictive too-late %v >= reactive %v\n%s", predLate, reactLate, tb)
	}
	if predMean >= reactMean {
		t.Errorf("predictive mean experienced %v >= reactive %v\n%s", predMean, reactMean, tb)
	}
	if m := numVal(t, cell(t, tb, "predictive", "migrations")); m < 1 {
		t.Errorf("predictive arm never migrated\n%s", tb)
	}
	if e := numVal(t, cell(t, tb, "predictive", "early")); e < 1 {
		t.Errorf("predictive arm made no early sheds\n%s", tb)
	}
}

func TestE15Deterministic(t *testing.T) {
	// Byte-identical replay: the fixed seed plus virtual clock must
	// reproduce every cell exactly.
	a, b := E15PredictiveRebalancing(24).String(), E15PredictiveRebalancing(24).String()
	if a != b {
		t.Errorf("E15 not deterministic:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}

func TestE16PoolBeatsPerTaskRPCs(t *testing.T) {
	tb := E16ParamSpaceThroughput(120)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows:\n%s", tb)
	}
	// Equal goodput: both arms complete every task.
	for _, row := range []string{"wrapper", "paramspace"} {
		if f := numVal(t, cell(t, tb, row, "failed")); f != 0 {
			t.Errorf("%s failed %v tasks\n%s", row, f, tb)
		}
		if s := numVal(t, cell(t, tb, row, "started")); s != 120 {
			t.Errorf("%s started %v, want 120\n%s", row, s, tb)
		}
	}
	// The acceptance bar: >= 5x fewer reservation RPCs per task.
	per := numVal(t, cell(t, tb, "wrapper", "RPCs/task"))
	pool := numVal(t, cell(t, tb, "paramspace", "RPCs/task"))
	if pool*5 > per {
		t.Errorf("pool RPCs/task %v not 5x under per-task %v\n%s", pool, per, tb)
	}
}
