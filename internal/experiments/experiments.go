// Package experiments implements the reproduction harness: one function
// per paper artifact (tables, figures, and the §6 promised benchmark),
// each returning a printable Table. cmd/legion-bench runs them from the
// command line; bench_test.go wraps them as testing.B benchmarks; and
// EXPERIMENTS.md records their output.
//
// The paper contains no quantitative evaluation (its tables and figures
// are interfaces, data structures, and pseudocode), so each experiment
// here makes the corresponding artifact *executable* and measures the
// behaviour the prose claims: IRS does fewer Collection lookups than
// repeated Random; variant schedules avoid reservation thrashing;
// specialized schedulers beat generic ones; mechanism cost scales with
// policy capability.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"legion/internal/core"
	"legion/internal/sim"
)

// Table is one experiment's result, printable as an aligned text table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, converting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// uniformFleet builds a homogeneous metasystem for latency-oriented
// experiments.
func uniformFleet(seed int64, hosts, cpus int) (*core.Metasystem, *sim.Fleet) {
	ms := core.New("uva", core.Options{Seed: seed})
	f := sim.Build(ms, rand.New(rand.NewSource(seed)), sim.UniformSpecs(hosts, cpus))
	return ms, f
}

// heteroFleet builds a mixed-architecture metasystem for placement-
// quality experiments. maxShared lifts per-host admission bounds when
// the experiment wants capacity rather than admission to discriminate.
func heteroFleet(seed int64, hosts int, maxShared int, zones ...string) (*core.Metasystem, *sim.Fleet) {
	ms := core.New("uva", core.Options{Seed: seed})
	rng := rand.New(rand.NewSource(seed))
	specs := sim.RandomSpecs(rng, hosts, zones...)
	for i := range specs {
		specs[i].MaxShared = maxShared
	}
	f := sim.Build(ms, rng, specs)
	return ms, f
}

// meanDuration averages a sample set.
func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// pct formats a ratio as a percentage string.
func pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(num)/float64(den))
}
