package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"legion/internal/attr"
	"legion/internal/collection"
	"legion/internal/loid"
	"legion/internal/nws"
	"legion/internal/orb"
)

// Fig4CollectionOps exercises the Figure 4 Collection interface —
// JoinCollection, UpdateCollectionEntry, QueryCollection,
// LeaveCollection — and reports per-operation throughput at several
// collection sizes, including the paper's IRIX example query.
func Fig4CollectionOps(sizes []int) *Table {
	if len(sizes) == 0 {
		sizes = []int{100, 1000, 10000}
	}
	t := &Table{
		ID:     "F4",
		Title:  "Collection interface (Figure 4): per-op latency vs collection size",
		Header: []string{"records", "join", "update", "query (IRIX 5.x)", "matches", "query (load<0.5)", "leave"},
	}
	rng := rand.New(rand.NewSource(4))
	oses := []struct{ name, ver string }{
		{"IRIX", "5.3"}, {"IRIX", "6.5"}, {"Solaris", "2.6"}, {"Linux", "2.2"}, {"AIX", "4.3"},
	}
	for _, n := range sizes {
		rt := orb.NewRuntime("uva")
		c := collection.New(rt, nil)
		members := make([]loid.LOID, n)
		attrsFor := func(i int) []attr.Pair {
			o := oses[i%len(oses)]
			return []attr.Pair{
				{Name: "host_os_name", Value: attr.String(o.name)},
				{Name: "host_os_version", Value: attr.String(o.ver)},
				{Name: "host_load", Value: attr.Float(rng.Float64())},
				{Name: "host_arch", Value: attr.String("x86")},
			}
		}
		t0 := time.Now()
		for i := range members {
			members[i] = loid.LOID{Domain: "uva", Class: "Host", Instance: uint64(i + 1)}
			if err := c.Join(members[i], attrsFor(i), ""); err != nil {
				t.Notes = append(t.Notes, "join: "+err.Error())
			}
		}
		joinLat := time.Since(t0) / time.Duration(n)

		t0 = time.Now()
		for i := range members {
			c.Update(members[i], []attr.Pair{{Name: "host_load", Value: attr.Float(rng.Float64())}}, "")
		}
		updateLat := time.Since(t0) / time.Duration(n)

		// The paper's §3.2 example: all Hosts running IRIX 5.x.
		irix := `match("IRIX", $host_os_name) and match("5\..*", $host_os_version)`
		t0 = time.Now()
		recs, err := c.Query(irix)
		irixLat := time.Since(t0)
		if err != nil {
			t.Notes = append(t.Notes, "irix query: "+err.Error())
		}

		t0 = time.Now()
		if _, err := c.Query(`$host_load < 0.5`); err != nil {
			t.Notes = append(t.Notes, "load query: "+err.Error())
		}
		loadLat := time.Since(t0)

		t0 = time.Now()
		for i := range members {
			c.Leave(members[i], "")
		}
		leaveLat := time.Since(t0) / time.Duration(n)

		t.AddRow(n, joinLat, updateLat, irixLat, len(recs), loadLat, leaveLat)
	}
	t.Notes = append(t.Notes, "query latency grows linearly with collection size; regex compilation is cached")
	return t
}

// E4FunctionInjection compares placement decisions made on raw
// instantaneous load against NWS-style forecast queries injected into
// the Collection (§3.2's motivation).
//
// Host A carries a steady moderate load; host B flaps between nearly
// idle and saturated every step. The instantaneous reading is
// anti-correlated with B's next-step state, so the raw-load chooser is
// systematically wrong; the injected window-mean forecast sees B's true
// expected load and prefers the steady host.
func E4FunctionInjection(steps int) *Table {
	if steps < 4 {
		steps = 40
	}
	rt := orb.NewRuntime("uva")
	c := collection.New(rt, nil)
	nws.InjectForecast(c, nws.WindowMean{K: 6})

	a := loid.LOID{Domain: "uva", Class: "Host", Instance: 1}
	b := loid.LOID{Domain: "uva", Class: "Host", Instance: 2}
	c.Join(a, nil, "")
	c.Join(b, nil, "")

	histA, histB := []float64{}, []float64{}
	loadAt := func(step int, host int) float64 {
		if host == 0 {
			return 0.4 // steady
		}
		if step%2 == 0 {
			return 0.05 // flapping: looks idle...
		}
		return 0.95 // ...but saturates next step
	}

	rawWins, forecastWins := 0, 0
	rawRegret, forecastRegret := 0.0, 0.0
	decisions := 0
	for step := 0; step < steps; step++ {
		la, lb := loadAt(step, 0), loadAt(step, 1)
		histA = append(histA, la)
		histB = append(histB, lb)
		c.Update(a, []attr.Pair{
			{Name: "host_load", Value: attr.Float(la)},
			{Name: "host_load_history", Value: nws.HistoryAttr(histA)},
		}, "")
		c.Update(b, []attr.Pair{
			{Name: "host_load", Value: attr.Float(lb)},
			{Name: "host_load_history", Value: nws.HistoryAttr(histB)},
		}, "")
		if step < 6 {
			continue // warm the forecaster
		}
		// Next-step truth: where would the task actually run better?
		nextA, nextB := loadAt(step+1, 0), loadAt(step+1, 1)

		pickRaw := a
		if lb < la {
			pickRaw = b
		}
		// Forecast-based pick via an injected-function query.
		recs, err := c.Query(`defined($host_load_history) and forecast_load() < 0.5`)
		pickFct := pickRaw
		if err == nil && len(recs) > 0 {
			pickFct = recs[0].Member // lowest-LOID matching host
			best := 2.0
			for _, r := range recs {
				m := attr.FromPairs(r.Attrs)
				h, herr := historyMean(m["host_load_history"])
				if herr == nil && h < best {
					best = h
					pickFct = r.Member
				}
			}
		}
		decisions++
		rawNext, fctNext := nextA, nextA
		if pickRaw == b {
			rawNext = nextB
		}
		if pickFct == b {
			fctNext = nextB
		}
		better := nextA
		if nextB < nextA {
			better = nextB
		}
		rawRegret += rawNext - better
		forecastRegret += fctNext - better
		if rawNext == better {
			rawWins++
		}
		if fctNext == better {
			forecastWins++
		}
	}
	t := &Table{
		ID:     "E4",
		Title:  "Function injection (§3.2): raw-load vs NWS-forecast placement under oscillating load",
		Header: []string{"policy", "correct next-step pick", "mean load regret"},
	}
	t.AddRow("raw $host_load", pct(rawWins, decisions), fmt.Sprintf("%.3f", rawRegret/float64(decisions)))
	t.AddRow("forecast_load() injected", pct(forecastWins, decisions), fmt.Sprintf("%.3f", forecastRegret/float64(decisions)))
	t.Notes = append(t.Notes,
		"out-of-phase square-wave load: instantaneous readings invert by the time the object runs",
		"the injected forecaster computes new description information from $host_load_history at query time")
	return t
}

// historyMean averages a history attribute.
func historyMean(v attr.Value) (float64, error) {
	if v.Kind() != attr.KindList || v.Len() == 0 {
		return 0, fmt.Errorf("no history")
	}
	sum := 0.0
	for i := 0; i < v.Len(); i++ {
		f, _ := v.At(i).AsFloat()
		sum += f
	}
	return sum / float64(v.Len()), nil
}
