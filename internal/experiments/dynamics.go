package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"legion/internal/proto"
	"legion/internal/reservation"
)

// E2ReservationContention sweeps offered load against a fixed pool of
// hosts for each of the four Table 2 reservation classes, reporting the
// grant rate. Space sharing saturates at one reservation per host;
// timesharing multiplexes up to the admission bound.
func E2ReservationContention(offered []int) *Table {
	if len(offered) == 0 {
		offered = []int{4, 8, 16, 32, 64}
	}
	const nHosts = 8
	const maxShared = 4
	t := &Table{
		ID:    "E2",
		Title: fmt.Sprintf("Reservation contention: grant rate on %d hosts (timeshare bound %d)", nHosts, maxShared),
		Header: append([]string{"type"}, func() []string {
			h := make([]string, len(offered))
			for i, o := range offered {
				h[i] = fmt.Sprintf("offered=%d", o)
			}
			return h
		}()...),
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(2))
	for _, ty := range []reservation.Type{
		reservation.ReusableSpaceSharing,
		reservation.ReusableTimesharing,
	} {
		row := []any{ty.String()}
		for _, o := range offered {
			ms, _ := uniformFleet(2, nHosts, 1)
			// uniformFleet's hosts default MaxShared=4*CPUs; rebuild with
			// explicit bound by using the host's admission via CPUs=1 ->
			// MaxShared=4, which matches the experiment's parameters.
			hosts := ms.Hosts()
			vaultL := ms.Vaults()[0].LOID()
			granted := 0
			for i := 0; i < o; i++ {
				h := hosts[rng.Intn(len(hosts))]
				_, err := h.MakeReservation(ctx, proto.MakeReservationArgs{
					Vault: vaultL, Type: ty, Duration: time.Hour,
				})
				if err == nil {
					granted++
				}
			}
			row = append(row, pct(granted, o))
			ms.Close()
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"space sharing allocates the entire resource: at most one grant per host",
		fmt.Sprintf("timesharing multiplexes up to the admission bound (%d per host here)", maxShared))
	return t
}

// E3MigrationPipeline measures the §2.1/§3.5 migration path end to end:
// trigger fire -> deactivate (OPR to vault) -> state move -> reactivate,
// as a function of object state size. It also verifies state continuity
// (the object's counters survive).
func E3MigrationPipeline(stateSizes []int) *Table {
	if len(stateSizes) == 0 {
		stateSizes = []int{1 << 10, 64 << 10, 1 << 20}
	}
	t := &Table{
		ID:    "E3",
		Title: "Migration pipeline: shutdown -> OPR move -> reactivate",
		Header: []string{"state size", "migrate latency", "state intact",
			"same LOID answers", "src empty"},
	}
	ctx := context.Background()
	for _, size := range stateSizes {
		ms, _ := uniformFleet(3, 2, 8)
		class := ms.DefineClass("Worker", nil)
		h1, h2 := ms.Hosts()[0], ms.Hosts()[1]
		insts, p, err := class.CreateInstance(ctx, 1, nil, nil)
		if err != nil {
			t.Notes = append(t.Notes, "setup: "+err.Error())
			ms.Close()
			continue
		}
		inst := insts[0]
		if p.Host != h1.LOID() {
			h1, h2 = h2, h1 // normalize: h1 is where the object runs
		}
		// Fill the object's state to the target size.
		payload := strings.Repeat("x", size)
		if _, err := ms.Runtime().Call(ctx, inst, "set", []string{"blob", payload}); err != nil {
			t.Notes = append(t.Notes, "set: "+err.Error())
			ms.Close()
			continue
		}
		destVault := h2.CompatibleVaults()[0]

		t0 := time.Now()
		err = ms.Migrate(ctx, class, inst, h2.LOID(), destVault)
		lat := time.Since(t0)
		if err != nil {
			t.AddRow(sizeStr(size), "-", "-", "-", "migrate failed: "+err.Error())
			ms.Close()
			continue
		}
		got, gerr := ms.Runtime().Call(ctx, inst, "get", "blob")
		intact := gerr == nil && got == payload
		answers := false
		if r, err := ms.Runtime().Call(ctx, inst, "ping", nil); err == nil && r == "pong" {
			answers = true
		}
		t.AddRow(sizeStr(size), lat, intact, answers, h1.RunningCount() == 0)
		ms.Close()
	}
	t.Notes = append(t.Notes,
		`"any active object can be migrated by shutting it down, moving the passive state`+
			` to a new Vault if necessary, and activating the object on another host"`)
	return t
}

// E3TriggerLatency measures the monitoring half: load spike ->
// reassessment -> RGE trigger -> Monitor outcall, repeated.
func E3TriggerLatency(rounds int) *Table {
	if rounds < 1 {
		rounds = 50
	}
	ms, _ := uniformFleet(3, 1, 8)
	defer ms.Close()
	ctx := context.Background()
	h := ms.Hosts()[0]
	if err := ms.WatchLoad(ctx, 0.8); err != nil {
		return &Table{ID: "E3b", Title: "trigger latency", Notes: []string{err.Error()}}
	}
	fired := make(chan time.Time, 1)
	ms.Monitor.OnEvent(func(proto.NotifyArgs) {
		select {
		case fired <- time.Now():
		default:
		}
	})
	var samples []time.Duration
	for i := 0; i < rounds; i++ {
		h.SetExternalLoad(0.1)
		h.Reassess(ctx) // re-arm
		h.SetExternalLoad(0.95)
		t0 := time.Now()
		h.Reassess(ctx)
		select {
		case ts := <-fired:
			samples = append(samples, ts.Sub(t0))
		case <-time.After(time.Second):
		}
	}
	t := &Table{
		ID:     "E3b",
		Title:  "Trigger-to-outcall latency (§3.5 RGE path)",
		Header: []string{"rounds", "delivered", "mean latency"},
	}
	t.AddRow(rounds, len(samples), meanDuration(samples))
	return t
}

func sizeStr(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
