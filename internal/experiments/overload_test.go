package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestE11AdmissionAcceptance pins the E11 acceptance criteria at 5x
// load: with admission on, goodput is no worse than the uncontrolled
// baseline (within measurement noise), p99 stays bounded by the client
// deadline, sheds leave zero reservations or instances behind, and
// shedding opens zero circuit breakers.
func TestE11AdmissionAcceptance(t *testing.T) {
	tb := E11OverloadAdmission([]float64{5}, 400*time.Millisecond)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows:\n%s", tb)
	}
	var on, off, slowOn []string
	for _, row := range tb.Rows {
		switch {
		case row[0] == "5x" && row[1] == "on":
			on = row
		case row[0] == "5x" && row[1] == "off":
			off = row
		case row[0] == "5x-slow" && row[1] == "on":
			slowOn = row
		}
	}
	if on == nil || off == nil || slowOn == nil {
		t.Fatalf("missing admission on/off rows:\n%s", tb)
	}
	col := func(name string) int {
		for i, h := range tb.Header {
			if h == name {
				return i
			}
		}
		t.Fatalf("no column %q", name)
		return -1
	}

	// Conservation and breaker invariants are exact.
	for _, row := range [][]string{on, off, slowOn} {
		if row[col("leaks")] != "0" {
			t.Errorf("admission %s/%s leaked: %v", row[0], row[1], row)
		}
	}
	for _, row := range [][]string{on, slowOn} {
		if row[col("breakers opened")] != "0" {
			t.Errorf("shedding opened breakers: %v", row)
		}
	}
	// The slow pair saturates the gate: admission must actually shed.
	if slowOn[col("shed")] == "0" {
		t.Errorf("saturated admission gate shed nothing: %v", slowOn)
	}

	// Goodput: admission on must be no worse than uncontrolled (10%
	// noise floor for CI scheduling jitter).
	gOn := numVal(t, on[col("goodput/s")])
	gOff := numVal(t, off[col("goodput/s")])
	if gOn < 0.9*gOff {
		t.Errorf("admission-on goodput %.1f < uncontrolled %.1f\n%s", gOn, gOff, tb)
	}

	// p99 bounded by the client deadline (300ms) when anything succeeded.
	p99 := on[col("p99")]
	if p99 != "0s" {
		d, err := time.ParseDuration(strings.ReplaceAll(p99, "µ", "u"))
		if err != nil {
			t.Fatalf("p99 cell %q: %v", p99, err)
		}
		if d > 300*time.Millisecond {
			t.Errorf("admission-on p99 %v exceeds the 300ms client deadline\n%s", d, tb)
		}
	}
}
