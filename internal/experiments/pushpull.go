package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"legion/internal/attr"
	"legion/internal/collection/daemon"
)

// A4PushVsPull compares the Collection's two population models (DESIGN
// D4): hosts pushing their own state on reassessment versus the Data
// Collection Daemon pulling snapshots — at equal periods, measuring the
// load error a querying Scheduler observes and the update traffic.
func A4PushVsPull(steps int) *Table {
	if steps < 2 {
		steps = 50
	}
	t := &Table{
		ID:     "A4",
		Title:  "Ablation D4: push (host-initiated) vs pull (Data Collection Daemon)",
		Header: []string{"model", "period", "collection updates", "mean |load error| at query time"},
	}
	ctx := context.Background()
	const nHosts = 6
	for _, model := range []string{"push", "pull"} {
		for _, period := range []int{1, 5} {
			ms, fleet := uniformFleet(44, nHosts, 4)
			rng := rand.New(rand.NewSource(44))
			var d *daemon.Daemon
			if model == "pull" {
				// Pull-only world: hosts reassess locally, never push;
				// the daemon moves the data.
				for _, h := range fleet.Hosts {
					h.ClearPushTargets()
				}
				d = daemon.New(ms.Runtime(), daemon.Config{})
				for _, h := range fleet.Hosts {
					d.Watch(h.LOID())
				}
				d.PushInto(ms.Collection.LOID())
			}
			_, u0 := ms.Collection.Stats()
			totalErr, samples := 0.0, 0
			for s := 0; s < steps; s++ {
				// True load moves every step; hosts always notice locally.
				for _, h := range fleet.Hosts {
					h.SetExternalLoad(rng.Float64())
				}
				if model == "pull" {
					ms.ReassessAll(ctx) // local only: push targets cleared
					if s%period == 0 {
						d.Sweep(ctx)
					}
				} else if s%period == 0 {
					ms.ReassessAll(ctx) // reassess + push
				}
				// A Scheduler queries now: compare recorded vs true load.
				recs, err := ms.Collection.Query("defined($host_load)")
				if err != nil {
					continue
				}
				for _, r := range recs {
					m := attr.FromPairs(r.Attrs)
					seen, _ := m["host_load"].AsFloat()
					for _, h := range fleet.Hosts {
						if h.LOID() == r.Member {
							totalErr += math.Abs(seen - h.Load())
							samples++
						}
					}
				}
			}
			_, u1 := ms.Collection.Stats()
			mean := 0.0
			if samples > 0 {
				mean = totalErr / float64(samples)
			}
			t.AddRow(model, fmt.Sprintf("every %d steps", period), u1-u0,
				fmt.Sprintf("%.3f", mean))
			if d != nil {
				d.Stop()
			}
			ms.Close()
		}
	}
	t.Notes = append(t.Notes,
		"both models converge to the same staleness at equal period; they differ in who pays",
		"pull centralizes policy in the daemon (footnote 4); push spreads it across Hosts")
	return t
}
