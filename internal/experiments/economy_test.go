package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"legion/internal/classobj"
	"legion/internal/core"
	"legion/internal/economy"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/rebalance"
	"legion/internal/resilient"
	"legion/internal/sched"
	"legion/internal/scheduler"
	"legion/internal/sim"
	"legion/internal/telemetry"
	"legion/internal/vclock"
)

// TestE14EconomyShape is the reduced acceptance run for the E14 claim:
// the DeadlineBudget policy meets at least 90% of the deadlines it
// places against, at strictly lower gross spend than either cost-blind
// baseline, with every tenant's ledger conserved and no reservation
// leaks.
func TestE14EconomyShape(t *testing.T) {
	const hosts, requests = 400, 1_200

	runs := map[string]economyRun{}
	for _, row := range economyLadder() {
		runs[row.Name] = runEconomyCampaign(row.Gen, hosts, requests, economySpec, false)
	}

	for name, r := range runs {
		if r.res.Succeeded == 0 {
			t.Fatalf("%s placed nothing: %+v", name, r.res)
		}
		if len(r.audit) > 0 {
			t.Errorf("%s ledger conservation violated: %v", name, r.audit)
		}
		if r.leaks != 0 {
			t.Errorf("%s leaked %d reservations/instances", name, r.leaks)
		}
		if r.spent <= 0 {
			t.Errorf("%s spent nothing on a priced fleet", name)
		}
	}

	db := runs["deadline-budget"]
	if db.judged == 0 {
		t.Fatal("deadline-budget judged no placements")
	}
	if hit := float64(db.hit) / float64(db.judged); hit < 0.9 {
		t.Errorf("deadline-budget hit rate %.3f < 0.90 (%d/%d)", hit, db.hit, db.judged)
	}
	for _, blind := range []string{"random", "irs"} {
		if db.spent >= runs[blind].spent {
			t.Errorf("deadline-budget gross spend %.1f not strictly below %s %.1f",
				db.spent.Units(), blind, runs[blind].spent.Units())
		}
	}
}

// TestE14EconomyDifferential pins the degenerate-economy equivalence:
// with no deadline and no budget on any request, DeadlineBudget must be
// decision-for-decision identical to the cost-blind Random baseline —
// same placements, same sheds, and a byte-identical discrete-event
// trace. Same harness as TestE13CodecDifferential: if the economy rung
// consumes even one extra random draw or reorders one event, the trace
// hash diverges.
func TestE14EconomyDifferential(t *testing.T) {
	const hosts, requests = 300, 1_000

	type fingerprint struct {
		ok, shed, failed, leaks int
		events                  int
		traceHash               string
	}
	run := func(gen scheduler.Generator) fingerprint {
		r := runEconomyCampaign(gen, hosts, requests, nil, true)
		sum := sha256.Sum256([]byte(strings.Join(r.trace, "\n")))
		return fingerprint{
			ok: r.res.Succeeded, shed: r.res.Shed, failed: r.res.Failed,
			leaks: r.leaks, events: len(r.trace),
			traceHash: hex.EncodeToString(sum[:8]),
		}
	}

	base := run(scheduler.Random{})
	if base.ok == 0 {
		t.Fatalf("baseline campaign placed nothing: %+v", base)
	}
	got := run(scheduler.DeadlineBudget{Estimate: time.Hour})
	if got != base {
		t.Errorf("unconstrained deadline-budget diverges from random:\nrandom: %+v\ndb:     %+v", base, got)
	}
}

// runConservationCampaign drives a seeded multi-tenant workload through
// a flaky transport (failed reservations, lost cancels, aborted
// enactments), then quiesces — a virtual-time sleep past the Enactor's
// request TTL plus an explicit sweep — and returns the ledger.
func runConservationCampaign(t *testing.T, seed int64, faultRate float64) *economy.Ledger {
	t.Helper()
	vc := vclock.NewVirtual()
	ms := core.New("conserve", core.Options{
		Seed:    seed,
		Metrics: telemetry.NewRegistry(),
		Clock:   vc,
		Economy: true,
		Retry: resilient.Policy{
			MaxAttempts: 2, BaseDelay: 5 * time.Millisecond,
			Budget: 5 * time.Second, AttemptTimeout: 2 * time.Second,
			Clock: vc, JitterRand: resilient.NewLockedRand(seed),
		},
	})
	defer ms.Close()
	class := ms.DefineClass("Worker", nil)

	rng := rand.New(rand.NewSource(seed))
	fleet := sim.Build(ms, rng, sim.EconomySpecs(rng, 200, "z1", "z2"))
	ms.Runtime().SetLatency(2*time.Millisecond, time.Millisecond)

	led := ms.Ledger()
	budgets := map[string]economy.Credits{}
	for i, tn := range economyTenants {
		// The first tenant runs on a shoestring so the campaign also
		// exercises the budget-refusal rollback path; the rest are rich.
		b := economy.ToCredits(25)
		if i > 0 {
			b = economy.ToCredits(1e6)
		}
		led.Open(tn, b)
		budgets[tn] = b
	}

	if faultRate > 0 {
		var fmu sync.Mutex
		frng := rand.New(rand.NewSource(seed + 1))
		ms.Runtime().SetFaultInjector(func(target loid.LOID, method string) error {
			fmu.Lock()
			defer fmu.Unlock()
			if frng.Float64() < faultRate {
				return fmt.Errorf("%w: flaky link (%s)", orb.ErrInjectedFault, method)
			}
			return nil
		})
	}

	vc.Run(func() {
		_ = fleet.Drive(context.Background(), class, sim.DriverConfig{
			Clock:       vc,
			Rate:        1000,
			Requests:    800,
			Arrivals:    sim.Poisson,
			Seed:        seed,
			Deadline:    5 * time.Second,
			SnapshotTTL: 10 * time.Second,
			Spec:        economySpec,
		})
		// Quiesce: outlive the Enactor's request TTL so the sweep below
		// refunds every orphaned episode (replies lost to faults).
		_ = vc.Sleep(context.Background(), 6*time.Minute)
	})
	ms.Runtime().SetFaultInjector(nil)
	ms.Enactor.ReapRequests()

	for tn, b := range budgets {
		if got := led.Account(tn).Budget; got != b {
			t.Errorf("seed %d: tenant %s budget drifted: %v != %v", seed, tn, got, b)
		}
	}
	return led
}

// TestEconomyLedgerConservationCampaign is the campaign-level property
// test: across randomized multi-tenant workloads with injected
// transport faults (failed enactments, rollbacks, lost cancellations),
// every tenant's credits are conserved to the token — budget =
// remaining + outstanding throughout, every refund matches a charge,
// and after quiescence every charge has been refunded exactly once,
// restoring remaining == budget.
func TestEconomyLedgerConservationCampaign(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		rate float64
	}{
		{seed: 7, rate: 0},
		{seed: 11, rate: 0.05},
	} {
		t.Run(fmt.Sprintf("seed=%d_fault=%v", tc.seed, tc.rate), func(t *testing.T) {
			led := runConservationCampaign(t, tc.seed, tc.rate)
			if msgs := led.Audit(); len(msgs) > 0 {
				t.Errorf("ledger audit failed: %v", msgs)
			}
			if n := led.LiveCharges(); n != 0 {
				t.Errorf("%d live charges after quiescence", n)
			}
			var spent economy.Credits
			for _, a := range led.Accounts() {
				if a.Spent != a.Refunded {
					t.Errorf("tenant %q: spent %v != refunded %v after teardown",
						a.Tenant, a.Spent, a.Refunded)
				}
				if a.Remaining() != a.Budget {
					t.Errorf("tenant %q: remaining %v != budget %v after teardown",
						a.Tenant, a.Remaining(), a.Budget)
				}
				spent += a.Spent
			}
			if spent == 0 {
				t.Error("campaign spent nothing: the property was tested against a no-op")
			}
		})
	}
}

// TestPreemptionExactlyOnce is the preemption chaos test: a paying
// tenant's instance on spot capacity is evicted by PreemptingPolicy
// while the reservation-cancel RPC path is completely broken. The
// victim's charge must be refunded exactly once (replanning must not
// double-refund), the stranded source token must not surface as a
// reservation leak, and the migration audit must stay clean end to end.
func TestPreemptionExactlyOnce(t *testing.T) {
	ms := core.New("preempt", core.Options{Seed: 3, Metrics: telemetry.NewRegistry(), Economy: true})
	defer ms.Close()
	vlt := ms.AddVault(vaultCfg("z1"))

	spot := ms.AddHost(host.Config{
		Arch: "x86", OS: "Linux", CPUs: 2, MemoryMB: 256, Zone: "z1",
		Price: 0.1, Spot: true, Vaults: []loid.LOID{vlt.LOID()},
	})
	reserved := ms.AddHost(host.Config{
		Arch: "x86", OS: "Linux", CPUs: 2, MemoryMB: 256, Zone: "z1",
		Price: 0.5, Vaults: []loid.LOID{vlt.LOID()},
	})
	class := ms.DefineClass("Worker", nil)
	led := ms.Ledger()
	led.Open("payer", economy.ToCredits(100))

	// Place one instance directly onto the spot host.
	ctx := context.Background()
	req := sched.RequestList{
		ID: ms.Enactor.NewRequestID(),
		Masters: []sched.Master{{Mappings: []sched.Mapping{{
			Class: class.LOID(), Host: spot.LOID(), Vault: vlt.LOID(),
		}}}},
		Res: sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour, Tenant: "payer"},
	}
	if fb := ms.Enactor.MakeReservations(ctx, req); !fb.Success {
		t.Fatalf("make_reservations failed: %s", fb.Detail)
	}
	enact := ms.Enactor.EnactSchedule(ctx, req.ID)
	if !enact.Success {
		t.Fatalf("enact failed: %s", enact.Detail)
	}
	victim := enact.Instances[0][0]
	charged := led.Account("payer").Spent
	if charged <= 0 {
		t.Fatal("placement on a priced host charged nothing")
	}
	if led.Account("payer").Refunded != 0 {
		t.Fatal("refund recorded before any cancellation")
	}

	// Chaos: every reservation-cancel RPC is lost from here on.
	ms.Runtime().SetFaultInjector(func(target loid.LOID, method string) error {
		if method == proto.MethodCancelReservation {
			return fmt.Errorf("%w: cancel lost", orb.ErrInjectedFault)
		}
		return nil
	})
	defer ms.Runtime().SetFaultInjector(nil)

	pol := rebalance.NewPreempting(led)
	ev := proto.NotifyArgs{Source: spot.LOID(), Trigger: "deadline_at_risk"}
	moves, err := pol.Plan(ctx, ev, ms, []*classobj.Class{class})
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if len(moves) != 1 {
		t.Fatalf("want 1 move, got %d", len(moves))
	}
	if moves[0].Instance != victim {
		t.Errorf("planned victim %v, want %v", moves[0].Instance, victim)
	}
	if moves[0].ToHost != reserved.LOID() {
		t.Errorf("victim moved to %v, want the reserved host %v", moves[0].ToHost, reserved.LOID())
	}
	refundedOnce := led.Account("payer").Refunded
	if refundedOnce != charged {
		t.Errorf("refund %v != charge %v", refundedOnce, charged)
	}

	// Replan before the move executes: a re-fired trigger must not
	// refund again.
	if _, err := pol.Plan(ctx, ev, ms, []*classobj.Class{class}); err != nil {
		t.Fatalf("replan: %v", err)
	}
	if got := led.Account("payer").Refunded; got != refundedOnce {
		t.Errorf("double refund: %v after replan, want %v", got, refundedOnce)
	}

	if err := ms.Migrate(ctx, moves[0].Class, moves[0].Instance, moves[0].ToHost, moves[0].ToVault); err != nil {
		t.Fatalf("migrate: %v", err)
	}

	if !reserved.IsRunning(victim) {
		t.Error("victim not running on the reserved host after migration")
	}
	// The source token could not be cancelled (the RPC path is down),
	// but it was marked preempted — the conservation audit must not
	// report it as a leak.
	if n := spot.ReservationLeaks(); n != 0 {
		t.Errorf("preempted token reported as %d leaks", n)
	}
	if n := spot.PreemptedTokens(); n != 1 {
		t.Errorf("preempted tokens = %d, want 1", n)
	}
	if audit := ms.AuditMigrations(class); !audit.Clean() {
		t.Errorf("migration audit dirty after preemption: %s", audit)
	}
	if msgs := led.Audit(); len(msgs) > 0 {
		t.Errorf("ledger audit failed: %v", msgs)
	}
}
