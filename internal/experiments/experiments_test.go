package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell finds a row by first-column prefix and returns the named column.
func cell(t *testing.T, tb *Table, rowPrefix, col string) string {
	t.Helper()
	ci := -1
	for i, h := range tb.Header {
		if h == col {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("table %s has no column %q (header %v)", tb.ID, col, tb.Header)
	}
	for _, row := range tb.Rows {
		if strings.HasPrefix(row[0], rowPrefix) {
			if ci >= len(row) {
				t.Fatalf("table %s row %q too short", tb.ID, rowPrefix)
			}
			return row[ci]
		}
	}
	t.Fatalf("table %s has no row starting %q:\n%s", tb.ID, rowPrefix, tb)
	return ""
}

func pctVal(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("not a percentage: %q", s)
	}
	return v
}

func numVal(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return v
}

func TestTable1AllOpsMeasured(t *testing.T) {
	tb := Table1HostInterface(20)
	if len(tb.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 (Table 1 ops + reactivate):\n%s", len(tb.Rows), tb)
	}
	for _, n := range tb.Notes {
		if strings.Contains(n, "failed") {
			t.Errorf("operation failed: %s", n)
		}
	}
}

func TestTable2SemanticsShape(t *testing.T) {
	tb := Table2ReservationTypes()
	if len(tb.Rows) != 4 {
		t.Fatalf("rows:\n%s", tb)
	}
	// Space sharing conflicts; timesharing admits.
	if got := cell(t, tb, "one-shot space sharing", "2nd overlapping res."); got != "conflict" {
		t.Errorf("space sharing admission: %q", got)
	}
	if got := cell(t, tb, "reusable timesharing", "2nd overlapping res."); got != "admitted" {
		t.Errorf("timesharing admission: %q", got)
	}
	// One-shot consumed, reusable accepted.
	if got := cell(t, tb, "one-shot timesharing", "2nd startObject"); got != "rejected (consumed)" {
		t.Errorf("one-shot reuse: %q", got)
	}
	if got := cell(t, tb, "reusable timesharing", "2nd startObject"); got != "accepted" {
		t.Errorf("reusable reuse: %q", got)
	}
}

func TestFig1Tree(t *testing.T) {
	tb := Fig1CoreObjectTree(3, 1, 4)
	if got := cell(t, tb, "HostClass", "instances"); got != "3" {
		t.Errorf("HostClass instances = %s", got)
	}
	if got := cell(t, tb, "VaultClass", "instances"); got != "2" {
		t.Errorf("VaultClass instances = %s", got)
	}
	if got := cell(t, tb, "MyObjClass", "instances"); got != "4" {
		t.Errorf("MyObjClass instances = %s", got)
	}
}

func TestFig2AllLayeringsSucceed(t *testing.T) {
	tb := Fig2Layerings(5)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows:\n%s", tb)
	}
	for _, row := range tb.Rows {
		if row[3] != "100%" {
			t.Errorf("layering %s placed %s, want 100%%", row[0], row[3])
		}
	}
	// Scheme (a) interrogates hosts directly: more calls than (b).
	a := numVal(t, cell(t, tb, "(a)", "orb calls/placement"))
	b := numVal(t, cell(t, tb, "(b)", "orb calls/placement"))
	if a <= b {
		t.Errorf("calls (a)=%v should exceed (b)=%v on an 8-host fleet", a, b)
	}
}

func TestFig3TraceCoversPipeline(t *testing.T) {
	tb := Fig3PlacementTrace()
	text := tb.String()
	for _, step := range []string{"step 1:", "step 2:", "step 4:", "steps 5-6:",
		"steps 7-8:", "steps 9-10:", "step 12", "steps 12-13:"} {
		if !strings.Contains(text, step) {
			t.Errorf("trace missing %q:\n%s", step, text)
		}
	}
}

func TestFig4SizesAndIRIXMatches(t *testing.T) {
	tb := Fig4CollectionOps([]int{50, 500})
	if len(tb.Rows) != 2 {
		t.Fatalf("rows:\n%s", tb)
	}
	// A fifth of records run IRIX 5.3.
	if got := cell(t, tb, "50", "matches"); got != "10" {
		t.Errorf("IRIX matches at 50 = %s", got)
	}
	if got := cell(t, tb, "500", "matches"); got != "100" {
		t.Errorf("IRIX matches at 500 = %s", got)
	}
}

func TestFig5BitmapWins(t *testing.T) {
	tb := Fig5VariantSelection(64, []int{256})
	sp := cell(t, tb, "64", "speedup")
	v := numVal(t, strings.TrimSuffix(sp, "x"))
	if v < 1 {
		t.Errorf("bitmap slower than scan: %s\n%s", sp, tb)
	}
}

func TestFig6Outcomes(t *testing.T) {
	tb := Fig6EnactorProtocol()
	if got := cell(t, tb, "3 mappings, all healthy", "result"); got != "success" {
		t.Errorf("healthy: %s", got)
	}
	if got := cell(t, tb, "1 broken host, variant patch", "result"); got != "success" {
		t.Errorf("variant patch: %s", got)
	}
	if got := cell(t, tb, "1 broken host, variant patch", "cancelled"); got != "0" {
		t.Errorf("variant patch cancelled = %s (thrash avoidance)", got)
	}
	if got := cell(t, tb, "1 broken host, no variants", "result"); got != "failure" {
		t.Errorf("no variants: %s", got)
	}
	if got := cell(t, tb, "1 broken host, no variants", "cancelled"); got != "1" {
		t.Errorf("rollback cancelled = %s", got)
	}
	if got := cell(t, tb, "empty request list", "reason"); got != "malformed schedule" {
		t.Errorf("malformed reason: %s", got)
	}
}

func TestFig7AllPlaced(t *testing.T) {
	tb := Fig7RandomScheduler([]int{4, 16})
	for _, row := range tb.Rows {
		if row[1] != "ok" {
			t.Errorf("count %s: %s", row[0], row[1])
		}
	}
}

func TestFig8IRSBeatsRandom(t *testing.T) {
	tb := Fig8IRS(15)
	irsLookups := numVal(t, cell(t, tb, "irs", "collection lookups/placement"))
	randLookups := numVal(t, cell(t, tb, "random", "collection lookups/placement"))
	if irsLookups > randLookups {
		t.Errorf("IRS lookups %v > random %v\n%s", irsLookups, randLookups, tb)
	}
	irsSucc := pctVal(t, cell(t, tb, "irs", "success"))
	randSucc := pctVal(t, cell(t, tb, "random", "success"))
	if irsSucc < randSucc {
		t.Errorf("IRS success %v%% < random %v%%\n%s", irsSucc, randSucc, tb)
	}
}

func TestE1LadderShape(t *testing.T) {
	tb := E1SchedulerLadder()
	// All placements succeed.
	for _, row := range tb.Rows {
		if row[2] != "ok" {
			t.Errorf("%s/%s failed", row[0], row[1])
		}
	}
	// Stencil has the lowest edge cut on the grid workload.
	var stencilCut, randomCut float64
	for _, row := range tb.Rows {
		if row[0] == "2-D stencil 8x8" {
			switch row[1] {
			case "stencil":
				stencilCut = numVal(t, row[5])
			case "random":
				randomCut = numVal(t, row[5])
			}
		}
	}
	if stencilCut >= randomCut {
		t.Errorf("stencil cut %v >= random cut %v\n%s", stencilCut, randomCut, tb)
	}
}

func TestE2ContentionShape(t *testing.T) {
	tb := E2ReservationContention([]int{8, 64})
	// At low offered load both types grant nearly everything; at high
	// offered load space sharing grants far less than timesharing.
	spaceHigh := pctVal(t, cell(t, tb, "reusable space sharing", "offered=64"))
	timeHigh := pctVal(t, cell(t, tb, "reusable timesharing", "offered=64"))
	if spaceHigh >= timeHigh {
		t.Errorf("space sharing %v%% >= timesharing %v%% at high load\n%s", spaceHigh, timeHigh, tb)
	}
	if timeHigh < 40 {
		t.Errorf("timesharing grant rate %v%% unexpectedly low\n%s", timeHigh, tb)
	}
}

func TestE3MigrationIntact(t *testing.T) {
	tb := E3MigrationPipeline([]int{1 << 10, 64 << 10})
	if len(tb.Rows) != 2 {
		t.Fatalf("rows:\n%s", tb)
	}
	for _, row := range tb.Rows {
		if row[2] != "true" || row[3] != "true" || row[4] != "true" {
			t.Errorf("migration row %v", row)
		}
	}
}

func TestE3TriggerDelivery(t *testing.T) {
	tb := E3TriggerLatency(10)
	if got := cell(t, tb, "10", "delivered"); got != "10" {
		t.Errorf("delivered = %s\n%s", got, tb)
	}
}

func TestE4ForecastBeatsRaw(t *testing.T) {
	tb := E4FunctionInjection(60)
	raw := pctVal(t, cell(t, tb, "raw", "correct next-step pick"))
	fct := pctVal(t, cell(t, tb, "forecast_load()", "correct next-step pick"))
	if fct <= raw {
		t.Errorf("forecast %v%% <= raw %v%%\n%s", fct, raw, tb)
	}
}

func TestA1VariantsReduceWaste(t *testing.T) {
	tb := A1VariantVsRegenerate(20, 3)
	vs := pctVal(t, cell(t, tb, "variants", "success"))
	ns := pctVal(t, cell(t, tb, "no variants", "success"))
	if vs < ns {
		t.Errorf("variants success %v%% < regenerate %v%%\n%s", vs, ns, tb)
	}
	vc := numVal(t, cell(t, tb, "variants", "cancelled/plc"))
	nc := numVal(t, cell(t, tb, "no variants", "cancelled/plc"))
	if vc > nc {
		t.Errorf("variants cancel %v/plc > regenerate %v/plc (thrashing)\n%s", vc, nc, tb)
	}
	va := numVal(t, cell(t, tb, "variants", "sched attempts/plc"))
	na := numVal(t, cell(t, tb, "no variants", "sched attempts/plc"))
	if va > na {
		t.Errorf("variants used more schedule generations (%v > %v)\n%s", va, na, tb)
	}
}

func TestA2CoAllocationNoPartials(t *testing.T) {
	tb := A2CoAllocation(15, 6)
	if got := cell(t, tb, "reserve-all-then-start", "partial gangs"); got != "0" {
		t.Errorf("co-allocation left partial gangs: %s\n%s", got, tb)
	}
	wasted := numVal(t, cell(t, tb, "optimistic direct start", "objects started then killed"))
	partials := numVal(t, cell(t, tb, "optimistic direct start", "partial gangs"))
	if partials > 0 && wasted == 0 {
		t.Errorf("optimist partials without waste?\n%s", tb)
	}
}

func TestA3FreshBeatsStaleOnAccuracy(t *testing.T) {
	tb := A3SnapshotVsDirect(20, 5)
	stale := pctVal(t, cell(t, tb, "collection snapshot", "picked truly-least-loaded"))
	fresh := pctVal(t, cell(t, tb, "direct host queries", "picked truly-least-loaded"))
	if fresh < stale {
		t.Errorf("fresh %v%% < stale %v%%\n%s", fresh, stale, tb)
	}
	staleCalls := numVal(t, cell(t, tb, "collection snapshot", "calls/decision"))
	freshCalls := numVal(t, cell(t, tb, "direct host queries", "calls/decision"))
	if staleCalls >= freshCalls {
		t.Errorf("snapshot calls %v >= direct calls %v\n%s", staleCalls, freshCalls, tb)
	}
}

func TestA4PushPullRows(t *testing.T) {
	tb := A4PushVsPull(20)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows:\n%s", tb)
	}
	// Longer periods mean more staleness for the push model.
	var pushFast, pushSlow float64
	for _, row := range tb.Rows {
		if row[0] == "push" {
			if row[1] == "every 1 steps" {
				pushFast = numVal(t, row[3])
			} else {
				pushSlow = numVal(t, row[3])
			}
		}
	}
	if pushFast > pushSlow {
		t.Errorf("push staleness: fast %v > slow %v\n%s", pushFast, pushSlow, tb)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("xyz", "w")
	tb.Notes = append(tb.Notes, "a note")
	out := tb.String()
	for _, want := range []string{"== X: demo ==", "a    bb", "xyz", "2.5", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestE5CommAwareShape(t *testing.T) {
	tb := E5NetworkObjects()
	var randomW, stencilW, commW float64
	for _, row := range tb.Rows {
		if row[1] == "failed" {
			t.Fatalf("policy %s failed: %v", row[0], row)
		}
		switch row[0] {
		case "random":
			randomW = numVal(t, row[2])
		case "stencil":
			stencilW = numVal(t, row[2])
		case "comm-aware":
			commW = numVal(t, row[2])
		}
	}
	if commW > stencilW {
		t.Errorf("comm-aware weighted cut %v > stencil %v\n%s", commW, stencilW, tb)
	}
	if stencilW > randomW {
		t.Errorf("stencil weighted cut %v > random %v\n%s", stencilW, randomW, tb)
	}
}

func TestE6MonitoredBeatsStatic(t *testing.T) {
	tb := E6MonitoredRebalancing(30)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows:\n%s", tb)
	}
	staticFinal := numVal(t, cell(t, tb, "static", "final experienced load"))
	monFinal := numVal(t, cell(t, tb, "monitored", "final experienced load"))
	if monFinal >= staticFinal {
		t.Errorf("monitored final %v >= static %v\n%s", monFinal, staticFinal, tb)
	}
	if m := numVal(t, cell(t, tb, "monitored", "migrations")); m < 1 {
		t.Errorf("no migrations happened\n%s", tb)
	}
	if m := numVal(t, cell(t, tb, "static", "migrations")); m != 0 {
		t.Errorf("static run migrated\n%s", tb)
	}
}
