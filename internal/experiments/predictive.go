package experiments

import (
	"context"
	"fmt"
	"time"

	"legion/internal/classobj"
	"legion/internal/collection/daemon"
	"legion/internal/core"
	"legion/internal/loid"
	"legion/internal/nws"
	"legion/internal/rebalance"
	"legion/internal/sched"
	"legion/internal/scheduler"
	"legion/internal/sim"
	"legion/internal/telemetry"
	"legion/internal/vclock"
)

// E15PredictiveRebalancing races the forecast-driven rebalancer against
// the reactive one on an identical virtual-time load timeline: a hot
// spot ramps up on a different host each phase, fast enough that by the
// time a host's load crosses the watermark its objects are already
// suffering. Both arms run the SAME machinery — a Collection daemon
// publishing $host_load_history, a Rebalancer, and the periodic
// forecast scan — and differ only in the predictor: the reactive arm
// forecasts with nws.LastValue (its "forecast" IS the current load, so
// it fires exactly when the watermark is crossed — threshold
// triggering), the predictive arm with nws.Trend (least-squares
// extrapolation, so a steadily heating host trips the scan while its
// load is still below the watermark).
//
// Reported per arm: migrations performed, migrations-too-late (the
// source's load had already crossed the watermark when the shed
// landed), and the mean load the objects experienced. The predictive
// arm must win on both quality metrics; the virtual clock makes every
// cell byte-identical across runs.
func E15PredictiveRebalancing(steps int) *Table {
	if steps < 8 {
		steps = 96
	}
	t := &Table{
		ID:    "E15",
		Title: "Predictive (NWS forecast) vs reactive rebalancing on one virtual-time timeline",
		Header: []string{"policy", "migrations", "too late", "early",
			"mean experienced load", "peak experienced load"},
	}
	const (
		nHosts    = 6
		nObjects  = 12
		watermark = 0.8
		tick      = time.Second
		rampSteps = 12 // hot host heats 0.1 -> 1.3 over this many ticks
		// The controller can only act every scanEvery load samples —
		// monitoring is cheap, migration sweeps are not. Lead time
		// therefore requires forecasting a full actuation period ahead,
		// which is exactly what the predictive arm's horizon buys.
		scanEvery = 3
	)
	ctx := context.Background()

	for _, arm := range []struct {
		name      string
		predictor nws.Predictor
	}{
		{"reactive (last-value)", nws.LastValue{}},
		{"predictive (trend)", nws.Trend{K: 4, Horizon: scanEvery}},
	} {
		vc := vclock.NewVirtual()
		reg := telemetry.NewRegistry()
		ms := core.New("uva", core.Options{Seed: 15, Metrics: reg, Clock: vc})
		// 32-CPU hosts keep each running object's own load contribution
		// small (~0.03) so the advertised load the daemon publishes tracks
		// the external ramp rather than the shed feedback — the signal the
		// trend fit needs to be clean.
		sim.Build(ms, newRand(15), withMaxShared(sim.UniformSpecs(nHosts, 32), 64))
		class := ms.DefineClass("Worker", nil)

		// The driver itself stays an unmanaged goroutine (the vclock
		// contract: only it may call Advance); placement and the per-step
		// calls below are synchronous and never park on the clock.
		var instances []loid.LOID
		out, err := ms.PlaceApplication(ctx, scheduler.LoadAware{}, scheduler.Request{
			Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: nObjects}},
			Res:     shareSpec(),
		})
		if err != nil {
			t.Notes = append(t.Notes, "placement: "+err.Error())
			ms.Close()
			continue
		}
		for _, insts := range out.Instances {
			instances = append(instances, insts...)
		}

		d := ms.NewDaemonConfig(daemon.Config{Interval: tick, HistoryLen: 8})
		pol := &rebalance.Predictive{
			Watermark:       watermark,
			MaxShedPerEvent: nObjects, // drain the hot host in one event
			Predictor:       arm.predictor,
		}
		rb := rebalance.New(ms, rebalance.Config{
			Classes:  []*classobj.Class{class},
			Cooldown: -1,
			Policy:   pol,
			Clock:    vc,
		})

		hosts := ms.Hosts()
		experienced := func() float64 {
			loadOf := map[loid.LOID]float64{}
			for _, h := range hosts {
				loadOf[h.LOID()] = h.Load()
			}
			sum, n := 0.0, 0
			for _, inst := range instances {
				if hL, _, err := class.WhereIs(inst); err == nil {
					sum += loadOf[hL]
					n++
				}
			}
			if n == 0 {
				return 0
			}
			return sum / float64(n)
		}
		whereAll := func() map[loid.LOID]loid.LOID {
			m := make(map[loid.LOID]loid.LOID, len(instances))
			for _, inst := range instances {
				if hL, _, err := class.WhereIs(inst); err == nil {
					m[inst] = hL
				}
			}
			return m
		}

		var expSum, peak float64
		late, early := 0, 0
		if err := rb.Start(); err != nil {
			t.Notes = append(t.Notes, "rebalancer: "+err.Error())
			ms.Close()
			continue
		}
		rb.StartForecastScan(scanEvery*tick, pol)

		prev := whereAll()
		for s := 0; s < steps; s++ {
			// The rotating ramp: each phase a different host heats
			// linearly from 0.1 to 1.3, everyone else idles at 0.2.
			hot := (s / rampSteps) % nHosts
			frac := float64(s%rampSteps) / float64(rampSteps-1)
			for i, h := range hosts {
				l := 0.2
				if i == hot {
					l = 0.1 + 1.2*frac
				}
				h.SetExternalLoad(l)
			}
			ms.ReassessAll(ctx)
			// Advertised load (external + running objects) is what the
			// scan judges against the watermark; the late/early verdict
			// must use the same scale.
			loadOf := make(map[loid.LOID]float64, nHosts)
			for _, h := range hosts {
				loadOf[h.LOID()] = h.Load()
			}
			d.Sweep(ctx)
			// One virtual tick fires the forecast scan; Advance returns
			// only at full quiescence — the scan and every migration it
			// started have completed — so the step observes the
			// post-shed placement deterministically.
			vc.Advance(tick)

			cur := whereAll()
			for inst, h := range cur {
				if ph, ok := prev[inst]; ok && ph != h {
					if loadOf[ph] >= watermark {
						late++
					} else {
						early++
					}
				}
			}
			prev = cur

			e := experienced()
			expSum += e
			if e > peak {
				peak = e
			}
		}
		rb.Stop()

		t.AddRow(arm.name,
			reg.CounterValue("legion_rebalance_migrations_total", "result", "ok"),
			late, early,
			fmt.Sprintf("%.3f", expSum/float64(steps)),
			fmt.Sprintf("%.3f", peak))
		ms.Close()
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d hosts, %d objects; the hot host ramps 0.1->1.3 over %d virtual-second ticks, rotating each phase", nHosts, nObjects, rampSteps),
		fmt.Sprintf("load is sampled every tick but the rebalance scan only runs every %d ticks: detection lag is the reactive arm's handicap", scanEvery),
		"both arms run the identical scan machinery; only the predictor differs, so the delta is purely forecast quality",
		fmt.Sprintf("'too late' counts sheds landing after the source load had already crossed the %.1f watermark; 'early' before", watermark),
		"deterministic: virtual clock, fixed seed — cells are byte-identical across runs")
	return t
}

// E16ParamSpaceThroughput measures Table 2's justification for reusable
// reservations: a parameter-space study of many short tasks. The
// baseline drives every task through the full Wrapper/Enactor
// negotiation (generate schedule, make_reservations, enact) — one fresh
// reservation round per task, exactly what an application not using
// reusable tokens pays. The ParamSpace scheduler instead holds a small
// pool of reusable timesharing grants and redeems them per task,
// renegotiating only at the reuse cap. Both must complete every task
// (equal goodput); the reservation-RPC-per-task ratio is the win.
func E16ParamSpaceThroughput(tasks int) *Table {
	if tasks < 10 {
		tasks = 300
	}
	t := &Table{
		ID:    "E16",
		Title: "Parameter-space study: per-task negotiation vs reusable-reservation pool (Table 2)",
		Header: []string{"scheduler", "tasks", "started", "failed",
			"reservation RPCs", "RPCs/task", "wall ms", "tasks/s"},
	}
	ctx := context.Background()
	const nHosts, slots, reuseCap = 4, 4, 64

	var perTask, pooled float64

	// Arm 1: one Wrapper negotiation per task (fresh one-shot grant).
	{
		ms, _ := uniformFleet(16, nHosts, 8)
		class := ms.DefineClass("Worker", nil)
		started, failed := 0, 0
		wall0 := time.Now()
		for i := 0; i < tasks; i++ {
			// One-shot timesharing: the grant dies with the task's
			// instance, exactly the fresh-reservation-per-task protocol
			// the reusable pool is supposed to beat.
			out, err := ms.PlaceApplication(ctx, scheduler.LoadAware{}, scheduler.Request{
				Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: 1}},
				Res:     sched.ReservationSpec{Share: true, Reuse: false, Duration: time.Hour},
			})
			if err != nil {
				failed++
				continue
			}
			started++
			for _, insts := range out.Instances {
				for _, inst := range insts {
					_ = class.DestroyInstance(ctx, inst)
				}
			}
		}
		wall := time.Since(wall0)
		rpcs := ms.Enactor.TotalStats().ReservationsRequested +
			ms.Enactor.TotalStats().ReservationsCancelled
		perTask = float64(rpcs) / float64(tasks)
		t.AddRow("wrapper per task", tasks, started, failed, rpcs,
			fmt.Sprintf("%.2f", perTask),
			wall.Milliseconds(),
			fmt.Sprintf("%.0f", float64(started)/wall.Seconds()))
		ms.Close()
	}

	// Arm 2: the ParamSpace pool.
	{
		ms, _ := uniformFleet(16, nHosts, 8)
		class := ms.DefineClass("Worker", nil)
		wall0 := time.Now()
		res, err := scheduler.ParamSpace{Slots: slots, ReuseCap: reuseCap}.
			Run(ctx, ms.Env(), class, tasks, nil)
		wall := time.Since(wall0)
		if err != nil {
			t.Notes = append(t.Notes, "paramspace: "+err.Error())
		}
		pooled = float64(res.ReservationRPCs) / float64(tasks)
		t.AddRow(fmt.Sprintf("paramspace pool (%d slots, cap %d)", slots, reuseCap),
			tasks, res.Started, res.Failed, res.ReservationRPCs,
			fmt.Sprintf("%.2f", pooled),
			wall.Milliseconds(),
			fmt.Sprintf("%.0f", float64(res.Started)/wall.Seconds()))
		ms.Close()
	}

	if perTask > 0 && pooled > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("reservation-RPC reduction: %.1fx fewer per task", perTask/pooled))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d hosts; short tasks: create one instance on the reserved placement, then destroy it", nHosts),
		"baseline counts Enactor make_reservation + cancel_reservation traffic; pool counts its own direct host RPCs",
		"the pool redeems each reusable timesharing token for up to the cap before renegotiating (Table 2's parameter-space case)")
	return t
}
