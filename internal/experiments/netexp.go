package experiments

import (
	"context"
	"fmt"

	"legion/internal/core"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/netobj"
	"legion/internal/sched"
	"legion/internal/scheduler"
)

// E5NetworkObjects measures the §6 future-work extension: Network
// Objects managing communications resources, and the comm-aware stencil
// scheduler that consults them. A three-site metasystem with two fast
// links and one slow link runs a 12x6 stencil grid under three policies;
// the latency-weighted edge cut (ms of link latency crossed per
// iteration's halo exchange) is the objective.
func E5NetworkObjects() *Table {
	t := &Table{
		ID:    "E5",
		Title: "Network Objects (§6 extension): communication-aware stencil placement",
		Header: []string{"scheduler", "edge cut (count)", "weighted cut (ms)",
			"cross-zone fraction"},
	}
	const rows, cols = 12, 6
	ctx := context.Background()

	build := func() (*core.Metasystem, *netobj.Topology, map[loid.LOID]string, loid.LOID) {
		ms := core.New("uva", core.Options{Seed: 55})
		zoneOf := map[loid.LOID]string{}
		cpusByZone := map[string][]int{"za": {16, 2}, "zb": {12, 4}, "zc": {8, 6}}
		for _, z := range []string{"za", "zb", "zc"} {
			v := ms.AddVault(vaultCfg(z))
			for _, cpus := range cpusByZone[z] {
				h := ms.AddHost(host.Config{
					Arch: "x86", OS: "Linux", CPUs: cpus, MemoryMB: 1024, Zone: z,
					MaxShared: 1024, Vaults: []loid.LOID{v.LOID()},
				})
				zoneOf[h.LOID()] = z
			}
		}
		topo := netobj.NewTopology(
			netobj.NewLink(ms.Runtime(), "za", "zb", 5, 1000),
			netobj.NewLink(ms.Runtime(), "zb", "zc", 5, 1000),
			netobj.NewLink(ms.Runtime(), "za", "zc", 100, 10),
		)
		// Network objects are first-class: discoverable via the Collection.
		_ = topo.JoinCollection(ctx, ms.Runtime(), ms.Collection.LOID(), "")
		class := ms.DefineClass("Cell", nil)
		return ms, topo, zoneOf, class.LOID()
	}

	gens := func(topo *netobj.Topology) []scheduler.Generator {
		return []scheduler.Generator{
			scheduler.Random{},
			scheduler.Stencil{Rows: rows, Cols: cols},
			scheduler.CommAware{Rows: rows, Cols: cols, Topo: topo},
		}
	}

	msProbe, topoProbe, _, _ := build()
	n := len(gens(topoProbe))
	msProbe.Close()

	for gi := 0; gi < n; gi++ {
		ms, topo, zoneOf, classL := build()
		gen := gens(topo)[gi]
		env := ms.Env()
		rl, err := gen.Generate(ctx, env, scheduler.Request{
			Classes: []scheduler.ClassRequest{{Class: classL, Count: rows * cols}},
			Res:     shareSpec(),
		})
		if err != nil {
			t.AddRow(gen.Name(), "failed", err.Error(), "-")
			ms.Close()
			continue
		}
		maps := rl.Masters[0].Mappings
		assignment := scheduler.AssignmentOf(maps)
		cut := scheduler.EdgeCut(assignment, rows, cols)
		wcut := scheduler.WeightedEdgeCut(assignment, rows, cols,
			func(l loid.LOID) string { return zoneOf[l] }, topo)
		cross := crossZone(maps, zoneOf)
		t.AddRow(gen.Name(), cut, fmt.Sprintf("%.1f", wcut), fmt.Sprintf("%.2f", cross))
		ms.Close()
	}
	t.Notes = append(t.Notes,
		"topology: za-zb 5ms, zb-zc 5ms, za-zc 100ms; link state lives in Network Objects",
		"comm-aware chains zones by link latency so no band boundary pays the 100ms link")
	return t
}

// crossZone is the fraction of mappings outside the modal zone.
func crossZone(maps []sched.Mapping, zoneOf map[loid.LOID]string) float64 {
	if len(maps) == 0 {
		return 0
	}
	counts := map[string]int{}
	for _, m := range maps {
		counts[zoneOf[m.Host]]++
	}
	best := 0
	for _, n := range counts {
		if n > best {
			best = n
		}
	}
	return 1 - float64(best)/float64(len(maps))
}
