package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"

	"legion/internal/orb"
)

// TestE13CodecDifferential is the codec analog of the E11 clock
// differential: the marshalling boundary must be behaviourally
// invisible. A reduced campaign runs under no boundary, the gob codec,
// and the binary codec; all three must produce identical placement
// outcomes and — because encoding is synchronous CPU work the virtual
// clock cannot observe — byte-identical discrete-event traces.
func TestE13CodecDifferential(t *testing.T) {
	const hosts, requests = 400, 2_000

	type fingerprint struct {
		ok, shed, failed, leaks int
		events                  int
		traceHash               string
	}
	run := func(lc orb.LoopbackCodec) fingerprint {
		r := runCodecCampaign(lc, hosts, requests, true)
		sum := sha256.Sum256([]byte(strings.Join(r.trace, "\n")))
		return fingerprint{
			ok: r.res.Succeeded, shed: r.res.Shed, failed: r.res.Failed,
			leaks: r.leaks, events: len(r.trace),
			traceHash: hex.EncodeToString(sum[:8]),
		}
	}

	off := run(orb.LoopbackOff)
	if off.ok == 0 {
		t.Fatalf("baseline campaign placed nothing: %+v", off)
	}
	if off.leaks != 0 {
		t.Fatalf("baseline campaign leaked %d reservations/instances", off.leaks)
	}
	for _, lc := range []orb.LoopbackCodec{orb.LoopbackGob, orb.LoopbackBinary} {
		got := run(lc)
		if got != off {
			t.Errorf("%v boundary diverges from baseline:\nbase:  %+v\ncodec: %+v", lc, off, got)
		}
	}
}
