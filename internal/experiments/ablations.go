package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"legion/internal/loid"
	"legion/internal/proto"
	"legion/internal/reservation"
	"legion/internal/scheduler"
)

// A1VariantVsRegenerate ablates the variant-schedule mechanism (DESIGN
// D1): placements on a fleet with some broken hosts run once with IRS
// variants enabled and once with a variant-free equivalent that must
// regenerate whole schedules, measuring reservation thrashing
// (cancel+remake) and attempts to success.
func A1VariantVsRegenerate(rounds, brokenCount int) *Table {
	if rounds < 1 {
		rounds = 30
	}
	t := &Table{
		ID:    "A1",
		Title: "Ablation D1: variant schedules vs regenerate-from-scratch",
		Header: []string{"strategy", "success", "reservations requested/plc",
			"cancelled/plc", "sched attempts/plc"},
	}
	ctx := context.Background()
	for _, strat := range []string{"variants (IRS n=4)", "no variants (regenerate)"} {
		env := newMSEnv(8, 4, brokenIdx(brokenCount)...)
		class, _ := env.ms.Class("Worker")
		senv := env.ms.Env()
		var gen scheduler.Generator
		var wrapper scheduler.Wrapper
		if strat == "variants (IRS n=4)" {
			gen = scheduler.IRS{NSched: 4}
			wrapper = scheduler.Wrapper{SchedTryLimit: 1, EnactTryLimit: 1}
		} else {
			gen = scheduler.IRS{NSched: 1} // master only, no variants
			wrapper = scheduler.Wrapper{SchedTryLimit: 4, EnactTryLimit: 1}
		}
		succ, requested, cancelled, attempts := 0, 0, 0, 0
		for r := 0; r < rounds; r++ {
			out, err := wrapper.Run(ctx, senv, env.ms.Enactor.LOID(), gen, scheduler.Request{
				Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: 4}},
				Res:     shareSpec(),
			})
			attempts += out.SchedAttempts
			requested += out.Feedback.Stats.ReservationsRequested
			cancelled += out.Feedback.Stats.ReservationsCancelled
			if err == nil {
				succ++
				for i, insts := range out.Instances {
					for _, inst := range insts {
						_, _ = env.ms.Runtime().Call(ctx, out.Feedback.Resolved[i].Class,
							proto.MethodDestroyInstance, proto.ObjectArgs{Object: inst})
					}
				}
				_ = env.ms.Enactor.CancelReservations(ctx, out.RequestID)
			}
		}
		t.AddRow(strat, pct(succ, rounds),
			fmt.Sprintf("%.1f", float64(requested)/float64(rounds)),
			fmt.Sprintf("%.1f", float64(cancelled)/float64(rounds)),
			fmt.Sprintf("%.2f", float64(attempts)/float64(rounds)))
		env.ms.Close()
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d of 8 hosts refuse all reservations; schedulers cannot see that in advance", brokenCount),
		"without variants, one bad pick wastes the whole schedule's reservations (rollback)")
	return t
}

func brokenIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// A2CoAllocation ablates reservation-based co-allocation (DESIGN D2):
// gang-placing objects under tight admission, comparing
// reserve-all-then-start against optimistic direct starts without an
// all-or-nothing barrier. The optimist strands partial gangs: objects it
// started and must kill when a later sibling is refused.
func A2CoAllocation(rounds, gang int) *Table {
	if rounds < 1 {
		rounds = 20
	}
	if gang < 2 {
		gang = 6
	}
	t := &Table{
		ID:    "A2",
		Title: "Ablation D2: reservation co-allocation vs optimistic direct starts",
		Header: []string{"strategy", "complete gangs", "failed cleanly",
			"partial gangs", "objects started then killed"},
	}
	ctx := context.Background()
	spec := shareSpec()
	for _, strat := range []string{"reserve-all-then-start", "optimistic direct start"} {
		// 4 hosts x 1 CPU -> admission bound 4 shared reservations each;
		// background occupancy makes some hosts nearly full.
		env := newMSEnv(4, 1)
		class, _ := env.ms.Class("Worker")
		for i, h := range env.ms.Hosts() {
			for k := 0; k < i; k++ { // host i carries i background reservations
				_, _ = h.MakeReservation(ctx, proto.MakeReservationArgs{
					Vault:    env.vault,
					Type:     reservation.ReusableTimesharing,
					Duration: time.Hour,
				})
			}
		}
		complete, cleanFail, partial, wasted := 0, 0, 0, 0
		rr := &scheduler.RoundRobin{}
		senv := env.ms.Env()
		for r := 0; r < rounds; r++ {
			rl, err := rr.Generate(ctx, senv, scheduler.Request{
				Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: gang}},
				Res:     spec,
			})
			if err != nil {
				cleanFail++
				continue
			}
			if strat == "reserve-all-then-start" {
				rl.ID = env.ms.Enactor.NewRequestID()
				fb := env.ms.Enactor.MakeReservations(ctx, rl)
				if !fb.Success {
					cleanFail++ // nothing started, nothing stranded
					continue
				}
				reply := env.ms.Enactor.EnactSchedule(ctx, rl.ID)
				if reply.Success {
					complete++
					for i, insts := range reply.Instances {
						for _, inst := range insts {
							_, _ = env.ms.Runtime().Call(ctx, fb.Resolved[i].Class,
								proto.MethodDestroyInstance, proto.ObjectArgs{Object: inst})
						}
					}
				}
				_ = env.ms.Enactor.CancelReservations(ctx, rl.ID)
				continue
			}
			// Optimistic: reserve+start each mapping independently.
			var started []loid.LOID
			var heldTokens []reservation.Token
			ok := true
			for _, m := range rl.Masters[0].Mappings {
				res, err := env.ms.Runtime().Call(ctx, m.Host, proto.MethodMakeReservation,
					proto.MakeReservationArgs{Vault: m.Vault,
						Type:     reservation.ReusableTimesharing,
						Duration: time.Hour})
				if err != nil {
					ok = false
					break
				}
				tok := res.(proto.MakeReservationReply).Token
				heldTokens = append(heldTokens, tok)
				cres, err := env.ms.Runtime().Call(ctx, m.Class, proto.MethodCreateInstance,
					proto.CreateInstanceArgs{Count: 1, Placement: &proto.Placement{
						Host: m.Host, Vault: m.Vault, Token: tok}})
				if err != nil {
					ok = false
					break
				}
				started = append(started, cres.(proto.CreateInstanceReply).Instances...)
			}
			switch {
			case ok && len(started) == gang:
				complete++
			case len(started) > 0:
				partial++
				wasted += len(started)
			default:
				cleanFail++
			}
			for _, inst := range started {
				_, _ = env.ms.Runtime().Call(ctx, class.LOID(),
					proto.MethodDestroyInstance, proto.ObjectArgs{Object: inst})
			}
			for i, tok := range heldTokens {
				m := rl.Masters[0].Mappings[i]
				_, _ = env.ms.Runtime().Call(ctx, m.Host, proto.MethodCancelReservation,
					proto.TokenArgs{Token: tok})
			}
		}
		t.AddRow(strat, complete, cleanFail, partial, wasted)
		env.ms.Close()
	}
	t.Notes = append(t.Notes,
		"co-allocation never holds a partial gang: reservations all succeed or all roll back",
		"the optimist starts objects it must then kill when a later sibling is refused")
	return t
}

// A3SnapshotVsDirect ablates Collection-snapshot scheduling against
// direct per-host interrogation (DESIGN D3): the snapshot costs one
// query per decision but may be stale; direct interrogation is fresh at
// one call per host.
func A3SnapshotVsDirect(rounds, staleSteps int) *Table {
	if rounds < 1 {
		rounds = 30
	}
	if staleSteps < 1 {
		staleSteps = 5
	}
	t := &Table{
		ID:    "A3",
		Title: "Ablation D3: Collection snapshot vs direct host interrogation",
		Header: []string{"information source", "mean decision latency", "calls/decision",
			"picked truly-least-loaded"},
	}
	ctx := context.Background()
	for _, strat := range []string{"collection snapshot (stale)", "direct host queries (fresh)"} {
		ms, fleet := uniformFleet(33, 8, 4)
		rng := rand.New(rand.NewSource(33))
		correct, calls := 0, 0
		var lat []time.Duration
		for r := 0; r < rounds; r++ {
			// Loads move every round; the Collection only hears about it
			// every staleSteps rounds (a slow push period).
			for _, h := range fleet.Hosts {
				h.SetExternalLoad(rng.Float64())
			}
			if r%staleSteps == 0 {
				ms.ReassessAll(ctx)
			}
			t0 := time.Now()
			var pick loid.LOID
			if strat == "collection snapshot (stale)" {
				hosts, err := scheduler.QueryHosts(ctx, ms.Env(), "defined($host_arch)")
				calls++
				if err != nil || len(hosts) == 0 {
					continue
				}
				best := hosts[0]
				for _, h := range hosts[1:] {
					if h.Load < best.Load {
						best = h
					}
				}
				pick = best.LOID
			} else {
				bestLoad := 99.0
				for _, h := range fleet.Hosts {
					h.Reassess(ctx) // fresh read costs a reassessment...
					res, err := ms.Runtime().Call(ctx, h.LOID(), proto.MethodGetAttributes, nil)
					calls++
					if err != nil {
						continue
					}
					_ = res
					if l := h.Load(); l < bestLoad {
						bestLoad = l
						pick = h.LOID()
					}
				}
			}
			lat = append(lat, time.Since(t0))
			truly := fleet.Hosts[0]
			for _, h := range fleet.Hosts[1:] {
				if h.Load() < truly.Load() {
					truly = h
				}
			}
			if pick == truly.LOID() {
				correct++
			}
		}
		t.AddRow(strat, meanDuration(lat),
			fmt.Sprintf("%.1f", float64(calls)/float64(rounds)), pct(correct, rounds))
		ms.Close()
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("hosts push state to the Collection only every %d decision rounds", staleSteps),
		"fresh interrogation costs one call per host per decision; the Collection amortizes")
	return t
}
