package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"legion/internal/attr"
	"legion/internal/classobj"
	"legion/internal/core"
	"legion/internal/loid"
	"legion/internal/proto"
	"legion/internal/reservation"
	"legion/internal/sched"
	"legion/internal/scheduler"
	"legion/internal/vault"
)

// Fig1CoreObjectTree builds and reports the Figure 1 core object
// hierarchy: LegionClass managing HostClass, VaultClass, and a user
// class, each managing their instances.
func Fig1CoreObjectTree(hosts, extraVaults, workers int) *Table {
	ms, _ := uniformFleet(1, hosts, 8)
	defer ms.Close()
	ctx := context.Background()
	for i := 0; i < extraVaults; i++ {
		ms.AddVault(vault.Config{Zone: "z1"})
	}
	class := ms.DefineClass("MyObj", nil)
	placed := 0
	for i := 0; i < workers; i++ {
		if _, _, err := class.CreateInstance(ctx, 1, nil, nil); err != nil {
			break
		}
		placed++
	}
	t := &Table{
		ID:     "F1",
		Title:  "Core object hierarchy (Figure 1)",
		Header: []string{"class object", "managed by", "instances"},
	}
	t.AddRow("LegionClass", "(root)", "HostClass, VaultClass, MyObjClass")
	t.AddRow("HostClass", "LegionClass", len(ms.HostClass.Instances()))
	t.AddRow("VaultClass", "LegionClass", len(ms.VaultClass.Instances()))
	t.AddRow("MyObjClass", "LegionClass", len(class.Instances()))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"MyObjClass placed its %d instances itself (the §2.1 quick placement decision)", placed))
	return t
}

// layeringFn is one Figure 2 layering scheme: place one instance of the
// class and return an error on failure.
type layeringFn func(ctx context.Context, ms *core.Metasystem, class *classobj.Class) error

// runLayeringA — "the application does it all, negotiating directly with
// resources and making placement decisions": no Collection, no Enactor.
// The app interrogates every Host directly, picks the least loaded,
// negotiates its own reservation, and directs create_instance.
func runLayeringA(ctx context.Context, ms *core.Metasystem, class *classobj.Class) error {
	rt := ms.Runtime()
	type candidate struct {
		host  loid.LOID
		vault loid.LOID
		load  float64
	}
	var best *candidate
	for _, l := range ms.HostClass.Instances() {
		res, err := rt.Call(ctx, l, proto.MethodGetAttributes, nil)
		if err != nil {
			continue
		}
		m := attr.FromPairs(res.(proto.AttributesReply).Attrs)
		load, _ := m["host_load"].AsFloat()
		vres, err := rt.Call(ctx, l, proto.MethodGetCompatibleVaults, nil)
		if err != nil {
			continue
		}
		vaults := vres.(proto.CompatibleVaultsReply).Vaults
		if len(vaults) == 0 {
			continue
		}
		if best == nil || load < best.load {
			best = &candidate{host: l, vault: vaults[0], load: load}
		}
	}
	if best == nil {
		return errors.New("no host answered")
	}
	res, err := rt.Call(ctx, best.host, proto.MethodMakeReservation, proto.MakeReservationArgs{
		Vault: best.vault, Type: reservation.ReusableTimesharing, Duration: time.Hour,
	})
	if err != nil {
		return err
	}
	_, _, err = class.CreateInstance(ctx, 1, &proto.Placement{
		Host: best.host, Vault: best.vault,
		Token: res.(proto.MakeReservationReply).Token,
	}, nil)
	return err
}

// runLayeringB — the application still makes its own placement decision
// but uses the RM services: Collection for information, Enactor for
// negotiation and instantiation.
func runLayeringB(ctx context.Context, ms *core.Metasystem, class *classobj.Class) error {
	env := ms.Env()
	hosts, err := scheduler.QueryHosts(ctx, env, "defined($host_arch)")
	if err != nil {
		return err
	}
	var best *scheduler.HostInfo
	for i := range hosts {
		if len(hosts[i].Vaults) == 0 {
			continue
		}
		if best == nil || hosts[i].Load < best.Load {
			best = &hosts[i]
		}
	}
	if best == nil {
		return errors.New("no usable host in Collection")
	}
	req := sched.RequestList{
		ID: ms.Enactor.NewRequestID(),
		Masters: []sched.Master{{Mappings: []sched.Mapping{{
			Class: class.LOID(), Host: best.LOID, Vault: best.Vaults[0],
		}}}},
		Res: sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	}
	fb := ms.Enactor.MakeReservations(ctx, req)
	if !fb.Success {
		return fmt.Errorf("reservations: %s", fb.Detail)
	}
	reply := ms.Enactor.EnactSchedule(ctx, req.ID)
	if !reply.Success {
		return fmt.Errorf("enact: %s", reply.Detail)
	}
	return nil
}

// runLayeringC — a combined placement+negotiation module (messiahs
// style): Scheduler and Enactor fused, invoked in-process with no orb
// hop between them.
func runLayeringC(ctx context.Context, ms *core.Metasystem, class *classobj.Class) error {
	env := ms.Env()
	rl, err := scheduler.LoadAware{}.Generate(ctx, env, scheduler.Request{
		Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: 1}},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	})
	if err != nil {
		return err
	}
	rl.ID = ms.Enactor.NewRequestID()
	fb := ms.Enactor.MakeReservations(ctx, rl)
	if !fb.Success {
		return fmt.Errorf("reservations: %s", fb.Detail)
	}
	reply := ms.Enactor.EnactSchedule(ctx, rl.ID)
	if !reply.Success {
		return fmt.Errorf("enact: %s", reply.Detail)
	}
	return nil
}

// runLayeringD — fully separated modules: Scheduler -> (orb) -> Enactor
// -> resources, via the Figure 9 Wrapper.
func runLayeringD(ctx context.Context, ms *core.Metasystem, class *classobj.Class) error {
	_, err := ms.PlaceApplication(ctx, scheduler.LoadAware{}, scheduler.Request{
		Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: 1}},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	})
	return err
}

// Fig2Layerings places the same workload through the four resource
// management layering schemes of Figure 2 and reports latency and the
// number of method invocations each scheme makes — the "cost that scales
// with capability" continuum.
func Fig2Layerings(rounds int) *Table {
	if rounds < 1 {
		rounds = 20
	}
	t := &Table{
		ID:     "F2",
		Title:  "Resource management layering schemes (Figure 2)",
		Header: []string{"layering", "mean latency", "orb calls/placement", "placed"},
	}
	ctx := context.Background()
	schemes := []struct {
		name string
		run  layeringFn
	}{
		{"(a) app alone", runLayeringA},
		{"(b) app + RM services", runLayeringB},
		{"(c) combined sched+enactor", runLayeringC},
		{"(d) separate modules", runLayeringD},
	}
	for _, s := range schemes {
		ms, _ := uniformFleet(7, 8, 8)
		class := ms.DefineClass("Worker", nil)

		var mu sync.Mutex
		var calls int64
		ms.Runtime().SetTracer(func(_ string, _ loid.LOID, _ string, _ time.Duration, _ error) {
			mu.Lock()
			calls++
			mu.Unlock()
		})

		var samples []time.Duration
		ok := 0
		for i := 0; i < rounds; i++ {
			t0 := time.Now()
			if err := s.run(ctx, ms, class); err == nil {
				ok++
			}
			samples = append(samples, time.Since(t0))
		}
		mu.Lock()
		perPlacement := float64(calls) / float64(rounds)
		mu.Unlock()
		t.AddRow(s.name, meanDuration(samples), fmt.Sprintf("%.1f", perPlacement), pct(ok, rounds))
		ms.Close()
	}
	t.Notes = append(t.Notes,
		"scheme (a) interrogates every Host per placement; (b)-(d) amortize through the Collection",
		"later schemes trade method invocations for modularity and reuse")
	return t
}

// Fig3PlacementTrace runs one full placement and reports the observed
// method-invocation sequence mapped to the 13 steps of Figure 3.
func Fig3PlacementTrace() *Table {
	ms, _ := uniformFleet(11, 3, 8)
	defer ms.Close()
	ctx := context.Background()
	class := ms.DefineClass("MyObj", nil)

	type call struct {
		method string
		d      time.Duration
	}
	var mu sync.Mutex
	var calls []call
	ms.Runtime().SetTracer(func(_ string, _ loid.LOID, method string, d time.Duration, _ error) {
		mu.Lock()
		calls = append(calls, call{method, d})
		mu.Unlock()
	})

	t := &Table{
		ID:     "F3",
		Title:  "Placement walkthrough (Figure 3): observed method invocations",
		Header: []string{"fig-3 step(s)", "observed calls", "mean latency"},
	}
	// Steps 2-11 run through the Wrapper.
	if _, err := ms.PlaceApplication(ctx, scheduler.LoadAware{}, scheduler.Request{
		Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: 2}},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	}); err != nil {
		t.Notes = append(t.Notes, "placement failed: "+err.Error())
		return t
	}
	// Steps 12-13: Monitor registration, overload outcall, and step 1
	// again via the push updates of reassessment.
	if err := ms.WatchLoad(ctx, 0.8); err != nil {
		t.Notes = append(t.Notes, "watch: "+err.Error())
	}
	ms.Hosts()[0].SetExternalLoad(0.95)
	ms.ReassessAll(ctx)

	mu.Lock()
	defer mu.Unlock()
	groups := map[string][]time.Duration{}
	for _, c := range calls {
		var key string
		switch c.method {
		case proto.MethodUpdateCollectionEntry:
			key = "step 1: resources deposit state in Collection"
		case proto.MethodQueryCollection:
			key = "step 2: Scheduler queries Collection"
		case proto.MethodGetImplementations:
			key = "step 3: Scheduler queries object classes"
		case proto.MethodMakeReservations:
			key = "step 4: schedule passed to Enactor"
		case proto.MethodMakeReservation, proto.MethodVaultOK:
			key = "steps 5-6: Enactor obtains reservations from Hosts/Vaults"
		case proto.MethodEnactSchedule:
			key = "steps 7-8: schedule confirmed, enactment requested"
		case proto.MethodCreateInstance, proto.MethodStartObject:
			key = "steps 9-10: classes instantiate objects on Hosts"
		case proto.MethodDefineTrigger, proto.MethodRegisterOutcall:
			key = "step 12 setup: Monitor registers outcalls"
		case proto.MethodNotify:
			key = "steps 12-13: resource outcall, rescheduling requested"
		default:
			key = "other: " + c.method
		}
		groups[key] = append(groups[key], c.d)
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.AddRow(k, len(groups[k]), meanDuration(groups[k]))
	}
	t.Notes = append(t.Notes, "step 11 (feedback to Scheduler) is the make_reservations return value")
	return t
}
