package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"legion/internal/core"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/resilient"
	"legion/internal/sched"
	"legion/internal/scheduler"
)

// E7FaultRateResilience measures end-to-end placement under injected
// transport faults: for each fault rate, `trials` full Figure 3
// pipelines (IRS generation → Wrapper negotiation → Enactor enactment)
// run against a 4-host metasystem whose runtime fails the given
// fraction of calls with orb.ErrInjectedFault. With the resilience
// layer on (retry + breakers + classification), placements should keep
// succeeding at 20% faults; the ablation row (resilience off at the
// same rate) shows what the retry layer is absorbing.
func E7FaultRateResilience(trials int, rates []float64) *Table {
	if trials < 1 {
		trials = 20
	}
	if len(rates) == 0 {
		rates = []float64{0, 0.05, 0.20}
	}
	t := &Table{
		ID:    "E7",
		Title: "Placement under injected transport faults (retry/breaker layer)",
		Header: []string{"fault rate", "resilience", "trials", "placed", "success",
			"mean latency", "mean enact attempts"},
	}
	for _, rate := range rates {
		for _, on := range []bool{true, false} {
			placed, meanLat, meanAttempts := faultRateRun(trials, rate, on)
			mode := "on"
			if !on {
				mode = "off"
			}
			t.AddRow(fmt.Sprintf("%.0f%%", rate*100), mode, trials, placed,
				fmt.Sprintf("%.0f%%", 100*float64(placed)/float64(trials)),
				meanLat, meanAttempts)
		}
	}
	t.Notes = append(t.Notes,
		"resilience off = single-attempt calls everywhere (the pre-resilience code path)",
		"faults are injected before the call reaches its target, so retries are duplicate-safe")
	return t
}

// faultRateRun executes trials placements at one fault rate and reports
// how many succeeded, the mean wall-clock per successful placement, and
// the mean Figure 9 enact attempts consumed.
func faultRateRun(trials int, rate float64, resilienceOn bool) (placed int, meanLatency time.Duration, meanAttempts float64) {
	retry := resilient.Policy{
		MaxAttempts:    4,
		BaseDelay:      time.Millisecond,
		Budget:         10 * time.Second,
		AttemptTimeout: 5 * time.Second,
	}
	if !resilienceOn {
		retry.MaxAttempts = 1
	}
	ms := core.New("uva", core.Options{Seed: 1, Retry: retry})
	defer ms.Close()
	vlt := ms.AddVault(vaultCfg("z1"))
	for i := 0; i < 4; i++ {
		ms.AddHost(hostCfg("z1", vlt.LOID(), trials*4+16))
	}
	class := ms.DefineClass("Worker", nil)

	// Seeded flaky link: deterministic across runs.
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(1999))
	if rate > 0 {
		ms.Runtime().SetFaultInjector(func(target loid.LOID, method string) error {
			mu.Lock()
			defer mu.Unlock()
			if rng.Float64() < rate {
				return fmt.Errorf("%w: flaky link", orb.ErrInjectedFault)
			}
			return nil
		})
		defer ms.Runtime().SetFaultInjector(nil)
	}

	ctx := context.Background()
	var totalLat time.Duration
	var totalAttempts int
	for i := 0; i < trials; i++ {
		t0 := time.Now()
		out, err := ms.PlaceApplicationLimits(ctx, scheduler.IRS{NSched: 3},
			scheduler.Request{
				Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: 3}},
				Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
			},
			scheduler.Wrapper{SchedTryLimit: 4, EnactTryLimit: 2})
		totalAttempts += out.EnactAttempts
		if err != nil || !out.Success {
			continue
		}
		placed++
		totalLat += time.Since(t0)
		// Tear the placement down so capacity does not monotonically
		// shrink across trials.
		for j, insts := range out.Instances {
			for _, inst := range insts {
				_, _ = ms.Runtime().Call(ctx, out.Feedback.Resolved[j].Class,
					proto.MethodDestroyInstance, proto.ObjectArgs{Object: inst})
			}
		}
		_ = ms.Enactor.CancelReservations(ctx, out.RequestID)
	}
	if placed > 0 {
		meanLatency = totalLat / time.Duration(placed)
	}
	meanAttempts = float64(totalAttempts) / float64(trials)
	return placed, meanLatency, meanAttempts
}
