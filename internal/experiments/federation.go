package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"legion/internal/attr"
	"legion/internal/collection"
	"legion/internal/collection/daemon"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/telemetry"
)

// E9HierarchicalCollections measures the federation layer from two
// sides:
//
//   - Query: the selective E8 query over nHosts total records, answered
//     by a Router scatter-gather over 1/2/4 Collection shards vs the
//     direct single-Collection baseline. Each shard holds 1/N of the
//     records, so per-shard scan/prune work shrinks as the fan-out
//     widens; the merge and the extra local ORB hop are the overhead
//     being priced.
//   - Update: one Data Collection Daemon sweeping nRes resources for
//     `sweeps` rounds, with the host→Collection traffic pushed directly
//     (one UpdateCollectionEntry per resource per sweep) vs coalesced
//     into batches flushed once per sweep. The column is the number of
//     Collection-bound ORB calls; the acceptance bar is a ≥4× cut.
func E9HierarchicalCollections(nHosts, nRes, sweeps int) *Table {
	if nHosts <= 0 {
		nHosts = 10000
	}
	if nRes <= 0 {
		nRes = 64
	}
	if sweeps <= 0 {
		sweeps = 10
	}
	t := &Table{
		ID:     "E9",
		Title:  "Hierarchical Collections: sharded scatter-gather queries, batched updates",
		Header: []string{"stage", "scale", "mode", "latency", "orb calls", "vs baseline"},
	}

	scale := fmt.Sprintf("%d hosts", nHosts)
	modes := []queryMode{
		{label: "direct (1 collection)", shards: 0},
		{label: "router, 1 shard", shards: 1},
		{label: "router, 2 shards", shards: 2},
		{label: "router, 4 shards", shards: 4},
		{label: "direct, 1ms link", shards: 0, link: time.Millisecond},
		{label: "router, 4 shards, 1ms links", shards: 4, link: time.Millisecond},
		{label: "serial scatter, 1ms links", shards: 4, link: time.Millisecond, serial: true},
	}
	lat := federatedQueryLatencies(nHosts, modes)
	for i, m := range modes {
		// Each regime (in-process vs 1ms links) is compared against its
		// own direct single-Collection baseline.
		base := lat[0]
		if m.link > 0 {
			base = lat[4]
		}
		ratio := ""
		if i != 0 && i != 4 {
			ratio = fmt.Sprintf("%.2fx", float64(lat[i])/float64(base))
		}
		t.AddRow("query", scale, m.label, lat[i], "", ratio)
	}

	scale = fmt.Sprintf("%d res x %d sweeps", nRes, sweeps)
	direct := daemonPushCalls(nRes, sweeps, false)
	batched := daemonPushCalls(nRes, sweeps, true)
	t.AddRow("update", scale, "direct push", "", direct, "")
	t.AddRow("update", scale, "batched push", "", batched,
		fmt.Sprintf("%.1fx fewer", float64(direct)/float64(batched)))

	t.Notes = append(t.Notes,
		"query: `$host_zone == \"z3\" and $host_load < 0.5`, default indexed keys, warm parse cache; latency = best round mean over interleaved rounds",
		"vs baseline = mode latency / the same regime's direct baseline (in-process rows vs in-process direct; 1ms-link rows vs the 1ms-link direct call)",
		"1ms links: every orb call sleeps 1ms — the concurrent scatter pays the link once, the serial ablation once per shard",
		"update: orb calls = Collection-bound update RPCs; batched mode coalesces one flush per sweep")
	return t
}

// queryMode is one measured configuration of the E9 query stage.
type queryMode struct {
	label  string
	shards int           // 0: one Collection, no Router
	link   time.Duration // simulated per-call link latency (0: in-process)
	serial bool          // Parallelism 1: the serial shard-by-shard ablation
}

// federatedQueryLatencies builds one population of nHosts records per
// mode — directly in one Collection, or behind a Router over the
// mode's shard count — and times the selective query against every
// mode with the measurement rounds interleaved, so machine-load drift
// hits all modes alike instead of biasing whichever ran last. Per mode
// it returns the fastest round's mean, the usual noise-robust
// estimator on a shared machine. Modes with a link latency route the
// direct query through the orb too (a remote Collection service is one
// call away; the Router's scatter pays the link once when concurrent,
// once per shard when serial).
func federatedQueryLatencies(nHosts int, modes []queryMode) []time.Duration {
	const q = `$host_zone == "z3" and $host_load < 0.5`
	const rounds = 7
	ctx := context.Background()

	queries := make([]func() error, len(modes))
	repsOf := make([]int, len(modes))
	for m, mode := range modes {
		rt := orb.NewRuntime("uva")
		rt.SetMetrics(telemetry.NewDisabled())
		rng := rand.New(rand.NewSource(8))
		hostAttrs := func(i int) []attr.Pair {
			return []attr.Pair{
				{Name: "host_zone", Value: attr.String(fmt.Sprintf("z%d", i%20))},
				{Name: "host_arch", Value: attr.String("x86")},
				{Name: "host_load", Value: attr.Float(rng.Float64())},
			}
		}
		repsOf[m] = 10
		if mode.link > 0 {
			repsOf[m] = 3 // link-bound: fewer reps keep the sweep short
		}
		if mode.shards == 0 {
			c := collection.New(rt, nil)
			for i := 0; i < nHosts; i++ {
				c.Join(loid.LOID{Domain: "uva", Class: "Host", Instance: uint64(i + 1)}, hostAttrs(i), "")
			}
			if mode.link > 0 {
				rt.SetLatency(mode.link, 0) // after population: joins are free
				queries[m] = func() error {
					_, err := rt.Call(ctx, c.LOID(), proto.MethodQueryCollection, proto.QueryArgs{Query: q})
					return err
				}
			} else {
				queries[m] = func() error {
					_, err := c.Query(q)
					return err
				}
			}
		} else {
			loids := make([]loid.LOID, mode.shards)
			for i := range loids {
				loids[i] = collection.New(rt, nil).LOID()
			}
			cfg := collection.RouterConfig{Shards: loids}
			if mode.serial {
				cfg.Parallelism = 1
			}
			r := collection.NewRouter(rt, cfg)
			for i := 0; i < nHosts; i++ {
				member := loid.LOID{Domain: "uva", Class: "Host", Instance: uint64(i + 1)}
				if err := r.Join(ctx, member, hostAttrs(i), ""); err != nil {
					return make([]time.Duration, len(modes))
				}
			}
			if mode.link > 0 {
				rt.SetLatency(mode.link, 0)
			}
			queries[m] = func() error {
				_, _, err := r.QueryPartial(ctx, q)
				return err
			}
		}
		if err := queries[m](); err != nil { // warm the parse caches
			return make([]time.Duration, len(modes))
		}
	}

	best := make([]time.Duration, len(queries))
	for r := 0; r < rounds; r++ {
		for m, query := range queries {
			reps := repsOf[m]
			t0 := time.Now()
			for i := 0; i < reps; i++ {
				if err := query(); err != nil {
					return make([]time.Duration, len(queries))
				}
			}
			if d := time.Since(t0) / time.Duration(reps); best[m] == 0 || d < best[m] {
				best[m] = d
			}
		}
	}
	return best
}

// daemonPushCalls sweeps nRes hosts `sweeps` times and returns how many
// Collection-bound update calls the daemon issued.
func daemonPushCalls(nRes, sweeps int, batched bool) int64 {
	rt := orb.NewRuntime("uva")
	rt.SetMetrics(telemetry.NewDisabled())
	c := collection.New(rt, nil)
	cfg := daemon.Config{Interval: time.Hour, Credential: ""}
	if batched {
		cfg.BatchInterval = time.Hour // flushed manually once per sweep
		cfg.BatchSize = 1 << 20
	}
	d := daemon.New(rt, cfg)
	for i := 0; i < nRes; i++ {
		h := host.New(rt, host.Config{Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 1024, Zone: "z1"})
		d.Watch(h.LOID())
	}
	d.PushInto(c.LOID())
	ctx := context.Background()
	for s := 0; s < sweeps; s++ {
		d.Sweep(ctx)
		if batched {
			d.FlushAll(ctx)
		}
	}
	d.Stop()
	return d.PushCalls()
}
