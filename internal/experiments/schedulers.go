package experiments

import (
	"context"
	"fmt"
	"time"

	"legion/internal/core"
	"legion/internal/proto"
	"legion/internal/scheduler"
)

// Fig7RandomScheduler characterizes the Figure 7 random placement
// policy: placement success rate and quality (makespan, imbalance) on a
// heterogeneous fleet, as a function of how many objects are requested.
func Fig7RandomScheduler(counts []int) *Table {
	if len(counts) == 0 {
		counts = []int{4, 16, 48}
	}
	t := &Table{
		ID:     "F7",
		Title:  "Random scheduler (Figure 7) on a 12-host heterogeneous fleet",
		Header: []string{"objects", "placed", "sched attempts", "makespan", "imbalance"},
	}
	ctx := context.Background()
	for _, n := range counts {
		ms, fleet := heteroFleet(7, 12, 256)
		class := ms.DefineClass("Worker", nil)
		out, err := ms.PlaceApplication(ctx, scheduler.Random{}, scheduler.Request{
			Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: n}},
			Res:     shareSpec(),
		})
		if err != nil {
			t.AddRow(n, "failed", out.SchedAttempts, "-", "-")
		} else {
			t.AddRow(n, "ok", out.SchedAttempts,
				fleet.Makespan(out.Feedback.Resolved, 30*time.Second),
				fmt.Sprintf("%.2f", fleet.Imbalance(out.Feedback.Resolved)))
		}
		ms.Close()
	}
	t.Notes = append(t.Notes,
		`"no consideration of load, speed, memory contention ... the goal here is simplicity, not performance"`)
	return t
}

// Fig8IRS compares IRS (Figures 8-9) against repeated Random under
// resource contention: tight per-host admission bounds make individual
// reservations fail, which IRS absorbs with variant schedules while
// Random must regenerate from scratch.
func Fig8IRS(rounds int) *Table {
	if rounds < 1 {
		rounds = 30
	}
	t := &Table{
		ID:    "F8",
		Title: "IRS vs Random (Figures 8-9) under contention (tight admission bounds)",
		Header: []string{"scheduler", "success", "collection lookups/placement",
			"sched attempts", "reservations cancelled", "variants tried"},
	}
	ctx := context.Background()
	for _, genName := range []string{"random", "irs"} {
		// 8 hosts, each admitting exactly one concurrent reservation;
		// each round places 6 objects. Random choices collide within a
		// placement (birthday effect) and force whole-schedule
		// regeneration; IRS absorbs collisions with variants.
		ms := core.New("uva", core.Options{Seed: 8})
		vlt := ms.AddVault(vaultCfg("z1"))
		for i := 0; i < 8; i++ {
			ms.AddHost(hostCfg("z1", vlt.LOID(), 1))
		}
		class := ms.DefineClass("Worker", nil)
		env := ms.Env()

		var gen scheduler.Generator
		if genName == "irs" {
			gen = scheduler.IRS{NSched: 4}
		} else {
			gen = scheduler.Random{}
		}

		succ := 0
		schedAttempts, cancelled, variants := 0, 0, 0
		q0, _ := ms.Collection.Stats()
		for r := 0; r < rounds; r++ {
			out, err := (scheduler.Wrapper{SchedTryLimit: 3, EnactTryLimit: 1}).Run(
				ctx, env, ms.Enactor.LOID(), gen, scheduler.Request{
					Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: 6}},
					Res:     shareSpec(),
				})
			schedAttempts += out.SchedAttempts
			cancelled += out.Feedback.Stats.ReservationsCancelled
			variants += out.Feedback.Stats.VariantsTried
			if err == nil {
				succ++
				// Release everything for the next round.
				for i, insts := range out.Instances {
					for _, inst := range insts {
						_, _ = ms.Runtime().Call(ctx, out.Feedback.Resolved[i].Class,
							proto.MethodDestroyInstance, proto.ObjectArgs{Object: inst})
					}
				}
				_ = ms.Enactor.CancelReservations(ctx, out.RequestID)
			}
		}
		q1, _ := ms.Collection.Stats()
		t.AddRow(genName, pct(succ, rounds),
			fmt.Sprintf("%.1f", float64(q1-q0)/float64(rounds)),
			fmt.Sprintf("%.2f", float64(schedAttempts)/float64(rounds)),
			cancelled, variants)
		ms.Close()
	}
	t.Notes = append(t.Notes,
		`"IRS does fewer lookups in the Collection" — one per class vs one per generated schedule`,
		"variant schedules let IRS survive individual reservation failures without regenerating")
	return t
}

// E1SchedulerLadder is the benchmark the paper promised (§6): "measure
// the improvement in performance as we develop more intelligent
// Schedulers." Four policies place three workload families on the same
// heterogeneous fleet; quality is modelled makespan / imbalance / edge
// cut.
func E1SchedulerLadder() *Table {
	t := &Table{
		ID:    "E1",
		Title: "Scheduler intelligence ladder (§6's promised benchmark)",
		Header: []string{"workload", "scheduler", "placed", "makespan",
			"imbalance", "edge cut"},
	}
	ctx := context.Background()
	const gridR, gridC = 8, 8

	type work struct {
		name  string
		count int
		grid  bool
	}
	workloads := []work{
		{"bag-of-tasks (32)", 32, false},
		{"2-D stencil 8x8", gridR * gridC, true},
	}
	for _, w := range workloads {
		gens := []scheduler.Generator{
			scheduler.Random{},
			scheduler.IRS{NSched: 4},
			scheduler.LoadAware{},
			scheduler.DeadlineBudget{Estimate: 30 * time.Second},
		}
		if w.grid {
			gens = append(gens, scheduler.Stencil{Rows: gridR, Cols: gridC})
		}
		for _, gen := range gens {
			ms, fleet := heteroFleet(11, 10, 256)
			class := ms.DefineClass("Worker", nil)
			res := shareSpec()
			if _, isEco := gen.(scheduler.DeadlineBudget); isEco {
				// The economy rung needs a deadline to optimize against;
				// everything else about the request is identical.
				res.Deadline = 10 * time.Minute
			}
			out, err := ms.PlaceApplication(ctx, gen, scheduler.Request{
				Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: w.count}},
				Res:     res,
			})
			if err != nil {
				t.AddRow(w.name, gen.Name(), "failed", "-", "-", "-")
				ms.Close()
				continue
			}
			cut := "-"
			if w.grid {
				cut = fmt.Sprintf("%d", scheduler.EdgeCut(
					scheduler.AssignmentOf(out.Feedback.Resolved), gridR, gridC))
			}
			t.AddRow(w.name, gen.Name(), "ok",
				fleet.Makespan(out.Feedback.Resolved, 30*time.Second),
				fmt.Sprintf("%.2f", fleet.Imbalance(out.Feedback.Resolved)), cut)
			ms.Close()
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: load-aware beats random on makespan; stencil minimizes edge cut on grids",
		`"simple, generic default Schedulers ... can easily be outperformed by Schedulers with`+
			` specialized algorithms or knowledge of the application"`)
	return t
}
