package experiments

import (
	"context"
	"testing"
	"time"

	"legion/internal/chaos"
	"legion/internal/core"
	"legion/internal/resilient"
	"legion/internal/telemetry"
	"legion/internal/vclock"
)

// TestE11DifferentialVirtualClock runs E11's admission-storm scenario at
// small scale twice — once on the wall clock (TCP-served world, exactly
// as E11 ships it) and once on the virtual clock (in-process world) —
// and asserts the same invariants hold. The virtual clock is only
// trustworthy as a scale harness if it reproduces wall-clock behaviour:
// same offered count (the open-loop schedule is a property of rate and
// duration, not of the clock driving it), full accounting (every
// offered request resolves to exactly one of ok/shed/failed), sheds
// under genuine overload, goodput above zero, and conservation (no
// reservation or instance survives the drain).
func TestE11DifferentialVirtualClock(t *testing.T) {
	type outcome struct {
		offered, ok, shed, failed, leaks int
	}

	// Capacity math: ~5ms per method call and ~7 calls per placement
	// puts service time near 35ms; 2 slots ≈ 57 placements/s against
	// 200 offered/s, so the 4-deep queue fills at once and the gate
	// must genuinely bind — and shed — in both runs, while a 250ms
	// client deadline leaves admitted requests room to finish.
	run := func(vc *vclock.Virtual) outcome {
		opts := core.Options{
			Seed:           1,
			Metrics:        telemetry.NewRegistry(),
			MaxInFlight:    2,
			AdmissionQueue: 4,
			ShedWatermark:  0.8,
			Retry: resilient.Policy{
				MaxAttempts: 2, BaseDelay: time.Millisecond,
				Budget: 2 * time.Second, AttemptTimeout: time.Second,
			},
		}
		if vc != nil {
			opts.Clock = vc
			opts.Retry.Clock = vc
			opts.Retry.JitterRand = resilient.NewLockedRand(7)
		}
		w, err := chaos.NewWorld(11, opts, chaos.SiteSpec{Domain: "uva", Hosts: 2})
		if err != nil {
			t.Fatalf("world: %v", err)
		}
		defer w.Close()
		site := w.Sites[0]
		w.Slow(site, 5*time.Millisecond, time.Millisecond)

		var res *chaos.StormResult
		var resv, running int
		body := func() {
			res = w.Storm(context.Background(), site, chaos.StormConfig{
				Rate:       200,
				Duration:   250 * time.Millisecond,
				Deadline:   250 * time.Millisecond,
				Priorities: []int{0, 0, 0, 1},
			})
			resv, running = w.Quiesce(site, 2*time.Second)
		}
		if vc != nil {
			vc.Run(body)
		} else {
			body()
		}
		return outcome{res.Offered, res.Succeeded, res.Shed, res.Failed, resv + running}
	}

	wall := run(nil)
	virt := run(vclock.NewVirtual())
	t.Logf("wall clock:    %+v", wall)
	t.Logf("virtual clock: %+v", virt)

	for name, o := range map[string]outcome{"wall": wall, "virtual": virt} {
		if o.offered != 50 {
			t.Errorf("%s: offered = %d, want 50 (open-loop schedule is clock-independent)", name, o.offered)
		}
		if o.ok+o.shed+o.failed != o.offered {
			t.Errorf("%s: accounting hole: ok %d + shed %d + failed %d != offered %d",
				name, o.ok, o.shed, o.failed, o.offered)
		}
		if o.ok == 0 {
			t.Errorf("%s: zero goodput under a 2x overload — the gate should admit ~half", name)
		}
		if o.shed == 0 {
			t.Errorf("%s: zero sheds at 2x the site's service capacity", name)
		}
		if o.leaks != 0 {
			t.Errorf("%s: %d leaked reservations/instances after drain", name, o.leaks)
		}
	}
}
