package experiments

import (
	"context"
	"fmt"
	"time"

	"legion/internal/core"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/proto"
	"legion/internal/reservation"
	"legion/internal/vault"
)

// vaultCfg and hostCfg are small config builders for experiments needing
// explicit admission bounds.
func vaultCfg(zone string) vault.Config { return vault.Config{Zone: zone} }

func hostCfg(zone string, vaultL loid.LOID, maxShared int) host.Config {
	return host.Config{
		Arch: "x86", OS: "Linux", OSVersion: "2.2",
		CPUs: 8, MemoryMB: 1024, Zone: zone,
		MaxShared: maxShared,
		Vaults:    []loid.LOID{vaultL},
	}
}

// Table1HostInterface exercises every operation of the Host resource
// management interface (paper Table 1) and reports per-operation latency
// over iters invocations each. It reproduces Table 1 as a living
// artifact: the rows are the interface.
func Table1HostInterface(iters int) *Table {
	if iters < 1 {
		iters = 100
	}
	ms := core.New("uva", core.Options{Seed: 1})
	defer ms.Close()
	vlt := ms.AddVault(vaultCfg("z1"))
	ms.AddHost(hostCfg("z1", vlt.LOID(), iters+8))
	ctx := context.Background()
	h := ms.Hosts()[0]
	v := ms.Vaults()[0]
	class := ms.DefineClass("Worker", nil)
	rt := ms.Runtime()

	t := &Table{
		ID:     "T1",
		Title:  "Host Object resource management interface (Table 1), per-op latency",
		Header: []string{"group", "operation", "mean latency", "ops"},
	}

	measure := func(group, op string, f func(i int) error) {
		var samples []time.Duration
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			if err := f(i); err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("%s failed: %v", op, err))
				return
			}
			samples = append(samples, time.Since(t0))
		}
		t.AddRow(group, op, meanDuration(samples), iters)
	}

	// Reservation management.
	tokens := make([]*reservation.Token, 0, iters)
	measure("reservation", "make_reservation()", func(i int) error {
		tok, err := h.MakeReservation(ctx, proto.MakeReservationArgs{
			Vault: v.LOID(), Type: reservation.ReusableTimesharing, Duration: time.Hour,
		})
		if err != nil {
			return err
		}
		tokens = append(tokens, tok)
		return nil
	})
	measure("reservation", "check_reservation()", func(i int) error {
		return h.CheckReservation(tokens[i%len(tokens)])
	})
	measure("reservation", "cancel_reservation()", func(i int) error {
		return h.CancelReservation(tokens[i])
	})

	// Process management.
	workTok, err := h.MakeReservation(ctx, proto.MakeReservationArgs{
		Vault: v.LOID(), Type: reservation.ReusableTimesharing, Duration: time.Hour,
	})
	if err != nil {
		t.Notes = append(t.Notes, "setup reservation failed: "+err.Error())
		return t
	}
	insts := make([]loid.LOID, iters)
	measure("process", "startObject()", func(i int) error {
		insts[i] = rt.Mint("Worker")
		_, err := h.StartObject(ctx, proto.StartObjectArgs{
			Token: *workTok, Class: class.LOID(), Instances: insts[i : i+1],
		})
		return err
	})
	measure("process", "deactivateObject()", func(i int) error {
		_, _, err := h.DeactivateObject(ctx, insts[i])
		return err
	})
	// Reactivate half to have something to kill.
	measure("process", "startObject(reactivate)", func(i int) error {
		o, err := v.Retrieve(insts[i])
		if err != nil {
			return err
		}
		_, err = h.StartObject(ctx, proto.StartObjectArgs{
			Token: *workTok, Class: class.LOID(), Instances: insts[i : i+1], State: o,
		})
		return err
	})
	measure("process", "killObject()", func(i int) error {
		return h.KillObject(ctx, insts[i])
	})

	// Information reporting.
	measure("information", "get_compatible_vaults()", func(i int) error {
		if len(h.CompatibleVaults()) == 0 {
			return fmt.Errorf("no vaults")
		}
		return nil
	})
	measure("information", "vault_OK()", func(i int) error {
		res, err := rt.Call(ctx, h.LOID(), proto.MethodVaultOK, proto.VaultOKArgs{Vault: v.LOID()})
		if err != nil {
			return err
		}
		if !res.(proto.BoolReply).OK {
			return fmt.Errorf("vault not OK")
		}
		return nil
	})
	measure("information", "get_attributes()", func(i int) error {
		if len(h.Attributes()) == 0 {
			return fmt.Errorf("no attributes")
		}
		return nil
	})
	return t
}

// Table2ReservationTypes demonstrates the four reservation classes of
// paper Table 2 (share x reuse): whether a second concurrent reservation
// is admitted, and whether the token survives a second StartObject.
func Table2ReservationTypes() *Table {
	t := &Table{
		ID:    "T2",
		Title: "Legion reservation types (Table 2): admission and reuse semantics",
		Header: []string{"type", "share", "reuse",
			"2nd overlapping res.", "2nd startObject", "issue+verify"},
	}
	ctx := context.Background()
	for _, ty := range []reservation.Type{
		reservation.OneShotSpaceSharing,
		reservation.ReusableSpaceSharing,
		reservation.OneShotTimesharing,
		reservation.ReusableTimesharing,
	} {
		ms, _ := uniformFleet(2, 1, 8)
		h := ms.Hosts()[0]
		v := ms.Vaults()[0]
		class := ms.DefineClass("Worker", nil)
		rt := ms.Runtime()

		tok, err := h.MakeReservation(ctx, proto.MakeReservationArgs{
			Vault: v.LOID(), Type: ty, Duration: time.Hour,
		})
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("%v: %v", ty, err))
			ms.Close()
			continue
		}
		// Can a second overlapping reservation be admitted?
		_, err2 := h.MakeReservation(ctx, proto.MakeReservationArgs{
			Vault: v.LOID(), Type: ty, Duration: time.Hour,
		})
		secondRes := "admitted"
		if err2 != nil {
			secondRes = "conflict"
		}
		// Does the token survive two StartObject calls?
		i1, i2 := rt.Mint("Worker"), rt.Mint("Worker")
		_, e1 := h.StartObject(ctx, proto.StartObjectArgs{Token: *tok, Class: class.LOID(), Instances: []loid.LOID{i1}})
		_, e2 := h.StartObject(ctx, proto.StartObjectArgs{Token: *tok, Class: class.LOID(), Instances: []loid.LOID{i2}})
		secondStart := "accepted"
		if e1 != nil {
			secondStart = "first failed: " + e1.Error()
		} else if e2 != nil {
			secondStart = "rejected (consumed)"
		}

		// Token issue+verify microcost.
		signer := reservation.NewSigner()
		probe := reservation.Token{ID: 1, Host: h.LOID(), Vault: v.LOID(), Type: ty, Duration: time.Hour}
		t0 := time.Now()
		const n = 2000
		for i := 0; i < n; i++ {
			signer.Sign(&probe)
			if !signer.Valid(&probe) {
				t.Notes = append(t.Notes, "token failed self-verification")
				break
			}
		}
		perOp := time.Since(t0) / (2 * n)

		t.AddRow(ty.String(), ty.Share, ty.Reuse, secondRes, secondStart, perOp)
		ms.Close()
	}
	t.Notes = append(t.Notes,
		`space sharing (share=0) allocates the entire resource: overlapping reservations conflict`,
		`one-shot (reuse=0) tokens are consumed by the first StartObject`)
	return t
}
