package experiments

import (
	"os"
	"strconv"
	"testing"
	"time"
)

// testWriter adapts t.Log to the Table printer.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) { w.t.Log(string(p)); return len(p), nil }

// TestE12ReducedScale is the CI-sized E12: 10k hosts, 50k placements
// through the real pipeline on the virtual clock (the committed
// EXPERIMENTS.md row is the 100k/1M run; regenerate it with
// `legion-bench -virtual`). The conservation audit inside
// E12VirtualScale feeds the leaks column; this test asserts it.
func TestE12ReducedScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	hosts, requests := 10_000, 50_000
	if v := os.Getenv("LEGION_E12_HOSTS"); v != "" {
		hosts, _ = strconv.Atoi(v)
	}
	if v := os.Getenv("LEGION_E12_REQUESTS"); v != "" {
		requests, _ = strconv.Atoi(v)
	}
	start := time.Now()
	tb := E12VirtualScale(hosts, requests)
	t.Logf("wall: %v", time.Since(start))
	tb.Fprint(testWriter{t})

	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tb.Rows))
	}
	row := tb.Rows[0]
	// Header: hosts requests ok shed failed p50 p99 p999 goodput/vs vtime wall leaks MB B/host
	atoi := func(i int) int {
		n, err := strconv.Atoi(row[i])
		if err != nil {
			t.Fatalf("cell %d (%s) = %q, not an int", i, tb.Header[i], row[i])
		}
		return n
	}
	ok, shed, failed := atoi(2), atoi(3), atoi(4)
	if ok+shed+failed != requests {
		t.Errorf("accounting hole: ok %d + shed %d + failed %d != offered %d", ok, shed, failed, requests)
	}
	if ok == 0 {
		t.Error("zero successful placements")
	}
	if leaks := atoi(11); leaks != 0 {
		t.Errorf("conservation audit: %d leaked reservations/instances", leaks)
	}
}
