package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"legion/internal/core"
	"legion/internal/orb"
	"legion/internal/resilient"
	"legion/internal/sim"
	"legion/internal/telemetry"
	"legion/internal/vclock"
)

// codecCampaign is one reduced E12 run with a marshalling boundary on
// local dispatch. Virtual time is untouched by the boundary (encoding
// is synchronous CPU work, invisible to the discrete-event clock), so
// the campaign's placements, sheds, latencies, and event trace must be
// identical across codecs — only the wall-clock differs. That is the
// point: the delta between two rows is pure codec cost, measured inside
// the real placement pipeline rather than a microbenchmark loop.
type codecRun struct {
	res   *sim.DriverResult
	wall  time.Duration
	leaks int
	trace []string
}

func runCodecCampaign(lc orb.LoopbackCodec, hosts, requests int, keepTrace bool) codecRun {
	vc := vclock.NewVirtual()
	ms := core.New("codec", core.Options{
		Seed:    13,
		Metrics: telemetry.NewRegistry(),
		Clock:   vc,
		Retry: resilient.Policy{
			MaxAttempts: 2, BaseDelay: 5 * time.Millisecond,
			Budget: 5 * time.Second, AttemptTimeout: 2 * time.Second,
			Clock: vc, JitterRand: resilient.NewLockedRand(13),
		},
	})
	defer ms.Close()
	class := ms.DefineClass("Worker", nil)

	rng := rand.New(rand.NewSource(13))
	fleet := sim.Build(ms, rng, sim.RandomSpecs(rng, hosts, "z1", "z2"))

	ms.Runtime().SetLatency(2*time.Millisecond, time.Millisecond)
	ms.Runtime().SetLoopbackCodec(lc)

	if keepTrace {
		vc.StartTrace()
	}
	var res *sim.DriverResult
	wall0 := time.Now()
	vc.Run(func() {
		res = fleet.Drive(context.Background(), class, sim.DriverConfig{
			Clock:       vc,
			Rate:        2000,
			Requests:    requests,
			Arrivals:    sim.Poisson,
			Seed:        13,
			Deadline:    10 * time.Second,
			SnapshotTTL: 10 * time.Second,
		})
	})
	run := codecRun{res: res, wall: time.Since(wall0)}
	for _, h := range fleet.Hosts {
		run.leaks += h.ActiveReservations() + h.RunningCount()
	}
	if keepTrace {
		run.trace = vc.Trace()
	}
	return run
}

// E13CodecBoundary reruns a reduced E12 virtual-time campaign three
// times — no marshalling boundary (E12's own configuration), the gob
// stream codec, and the binary wire codec — and reports the wall-clock
// cost of each. Every placement's argument and result crosses the
// selected codec on local dispatch, exactly as it would cross a
// connection, so the gob→binary delta is the serialization time the
// new codec removes from the metasystem's hot path.
//
// hosts/requests <= 0 default to 10,000 hosts and 50,000 placements
// (the committed EXPERIMENTS.md row, matching E12's CI-reduced size).
func E13CodecBoundary(hosts, requests int) *Table {
	if hosts <= 0 {
		hosts = 10_000
	}
	if requests <= 0 {
		requests = 50_000
	}
	t := &Table{
		ID:    "E13",
		Title: "Codec boundary: E12 campaign wall-clock under gob vs binary marshalling",
		Header: []string{"codec", "hosts", "requests", "ok", "shed", "failed",
			"p50", "p99", "vtime", "wall", "wall vs off", "leaks"},
	}

	base := runCodecCampaign(orb.LoopbackOff, hosts, requests, false)
	for _, row := range []struct {
		lc  orb.LoopbackCodec
		run codecRun
	}{
		{orb.LoopbackOff, base},
		{orb.LoopbackGob, runCodecCampaign(orb.LoopbackGob, hosts, requests, false)},
		{orb.LoopbackBinary, runCodecCampaign(orb.LoopbackBinary, hosts, requests, false)},
	} {
		r := row.run
		t.AddRow(row.lc.String(), hosts, requests, r.res.Succeeded, r.res.Shed, r.res.Failed,
			r.res.Percentile(0.50), r.res.Percentile(0.99),
			r.res.Elapsed.Round(time.Millisecond), r.wall.Round(time.Millisecond),
			fmt.Sprintf("%+.0f%%", 100*(float64(r.wall)/float64(base.wall)-1)),
			r.leaks)
	}
	t.Notes = append(t.Notes,
		"same seed, same virtual-time schedule in all rows: placements, sheds, and virtual latencies are identical by construction (asserted by TestE13CodecDifferential)",
		"loopback codec round-trips every method argument and result through the codec on local dispatch; 'off' is E12's own configuration",
		"wall vs off = extra wall-clock the codec adds to the whole campaign; the gob-to-binary gap is the serialization cost the wire codec removes")
	return t
}
