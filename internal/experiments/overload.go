package experiments

import (
	"context"
	"fmt"
	"time"

	"legion/internal/chaos"
	"legion/internal/core"
	"legion/internal/resilient"
	"legion/internal/telemetry"
)

// E11OverloadAdmission measures overload robustness: an open-loop storm
// fires placements at a 4-host site at several multiples of a base rate,
// once with the admission layer off (the uncontrolled baseline) and once
// with it on (bounded in-flight placements, a priority wait queue,
// deadline-aware shedding, and a host-side occupancy watermark).
//
// The claim under test is the metastability argument: an uncontrolled
// service accepts every request and serves all of them badly — queues
// grow without bound, latency blows past every client's patience, and
// goodput collapses even though the service is doing maximal work. The
// admission layer refuses what it cannot serve in time (cheaply, with a
// typed refusal that trips no circuit breaker) so the work it does accept
// still completes within its deadline.
//
// Each row also carries the conservation checks: after the storm drains,
// sheds must have left zero active reservations and zero running
// instances behind, and the breaker pool must have recorded zero trips —
// shedding is a refusal, not a failure.
func E11OverloadAdmission(multipliers []float64, stormDur time.Duration) *Table {
	if len(multipliers) == 0 {
		multipliers = []float64{2, 5, 10}
	}
	if stormDur <= 0 {
		stormDur = 600 * time.Millisecond
	}
	t := &Table{
		ID:    "E11",
		Title: "Overload storms: admission control vs uncontrolled (goodput, p99, conservation)",
		Header: []string{"load", "admission", "offered", "ok", "shed", "failed",
			"goodput/s", "p99", "leaks", "breakers opened"},
	}
	const baseRate = 50.0 // requests/second at 1× load
	addRow := func(load string, admission, slow bool) overloadRow {
		var m float64
		fmt.Sscanf(load, "%fx", &m)
		row := overloadStormRun(m*baseRate, stormDur, admission, slow)
		mode := "off"
		if admission {
			mode = "on"
		}
		t.AddRow(load, mode, row.Offered, row.Succeeded,
			row.Shed, row.Failed, fmt.Sprintf("%.1f", row.Goodput()), row.P99(),
			row.leaks, row.breakersOpened)
		return row
	}
	for _, m := range multipliers {
		load := fmt.Sprintf("%.0fx", m)
		addRow(load, false, false)
		addRow(load, true, false)
	}
	// The in-process fast path never saturates — placements are
	// sub-millisecond, so the plain rows show admission as a pass-through
	// when the site keeps up. The slow pair injects per-call service time
	// so the gate genuinely binds and the artifact shows sheds in action.
	addRow("5x-slow", false, true)
	slowOn := addRow("5x-slow", true, true)
	t.Notes = append(t.Notes,
		fmt.Sprintf("open-loop arrivals, %.0f req/s at 1x, %v per storm, 300ms client deadline", baseRate, stormDur),
		"admission on = -max-inflight 8 -admission-queue 16 -shed-watermark 0.8; priorities cycle 0,0,0,1",
		"5x-slow rows inject 10ms±2ms per-call service time so the gate binds: admission sheds instead of queueing past the deadline",
		fmt.Sprintf("5x-slow admission-on shed by priority: %v (priority 1 is preferred under fair-share)", slowOn.ShedByPriority),
		"leaks = active reservations + running instances left after the storm drains (must be 0)",
		"breakers opened counts legion_breaker_transitions_total{to=open} (sheds must not trip breakers)")
	return t
}

// overloadRow is one storm's result plus its conservation counters.
type overloadRow struct {
	*chaos.StormResult
	leaks          int
	breakersOpened int64
}

// overloadStormRun builds a fresh single-site world, fires one storm at
// the given rate, and reads back the conservation state. slow injects
// 10ms±2ms of per-call service time so the admission gate saturates.
func overloadStormRun(rate float64, dur time.Duration, admission, slow bool) overloadRow {
	reg := telemetry.NewRegistry()
	opts := core.Options{
		Seed:    1,
		Metrics: reg,
		Retry: resilient.Policy{
			MaxAttempts: 2, BaseDelay: time.Millisecond,
			Budget: 2 * time.Second, AttemptTimeout: time.Second,
		},
	}
	if admission {
		opts.MaxInFlight = 8
		opts.AdmissionQueue = 16
		opts.ShedWatermark = 0.8
	}
	w, err := chaos.NewWorld(chaos.SeedFromEnv(11), opts,
		chaos.SiteSpec{Domain: "uva", Hosts: 4})
	if err != nil {
		return overloadRow{StormResult: &chaos.StormResult{}}
	}
	defer w.Close()
	site := w.Sites[0]
	if slow {
		w.Slow(site, 10*time.Millisecond, 2*time.Millisecond)
	}

	res := w.Storm(context.Background(), site, chaos.StormConfig{
		Rate:       rate,
		Duration:   dur,
		Deadline:   300 * time.Millisecond,
		Priorities: []int{0, 0, 0, 1},
	})

	// Quiesce, then check conservation: a shed must be a pure refusal.
	// The wait matters — server-side rollbacks may still be in flight
	// when the last client-side request returns.
	resv, running := w.Quiesce(site, 2*time.Second)
	leaks := resv + running
	opened := reg.CounterValue("legion_breaker_transitions_total", "to", "open")
	return overloadRow{StormResult: res, leaks: leaks, breakersOpened: opened}
}
