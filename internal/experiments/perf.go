package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"legion/internal/attr"
	"legion/internal/classobj"
	"legion/internal/collection"
	"legion/internal/enactor"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/sched"
	"legion/internal/telemetry"
	"legion/internal/vault"
)

// E8ConcurrentPipeline measures the two hot-path optimizations of the
// concurrent placement pipeline against their own ablations:
//
//   - Collection queries: a selective conjunctive query over N hosts,
//     answered through the inverted attribute index vs the full linear
//     scan (SetIndexedKeys() disabled). Both run with a warm parse
//     cache, so the delta is candidate pruning alone.
//   - Enactment: reserve+enact of a width-W schedule over simulated
//     1 ms wide-area links, with the per-resource calls fanned out
//     (Parallelism 8) vs the serial host-by-host walk (Parallelism 1).
//
// The speedup column is the ablation's mean latency over the optimized
// mean for the same scale.
func E8ConcurrentPipeline(sizes, widths []int) *Table {
	if len(sizes) == 0 {
		sizes = []int{1000, 10000}
	}
	if len(widths) == 0 {
		widths = []int{4, 16, 32}
	}
	t := &Table{
		ID:     "E8",
		Title:  "Concurrent placement pipeline: indexed queries and parallel enactment",
		Header: []string{"stage", "scale", "mode", "mean latency", "speedup"},
	}

	for _, n := range sizes {
		indexed := queryLatency(n, true)
		scan := queryLatency(n, false)
		scale := fmt.Sprintf("%d hosts", n)
		t.AddRow("query", scale, "indexed", indexed, "")
		t.AddRow("query", scale, "full scan", scan,
			fmt.Sprintf("%.1fx", float64(scan)/float64(indexed)))
	}
	for _, w := range widths {
		par := enactLatency(w, 8)
		ser := enactLatency(w, 1)
		scale := fmt.Sprintf("width %d", w)
		t.AddRow("reserve+enact", scale, "parallel (8)", par, "")
		t.AddRow("reserve+enact", scale, "serial walk", ser,
			fmt.Sprintf("%.1fx", float64(ser)/float64(par)))
	}
	t.Notes = append(t.Notes,
		"query: `$host_zone == \"z3\" and $host_load < 0.5` (5% zone selectivity), warm parse cache in both modes",
		"speedup = ablation latency / optimized latency at the same scale",
		"enact: every orb call carries a simulated 1ms link latency; serial latency grows with width, fan-out stays near-flat")
	return t
}

// queryLatency builds an n-host Collection and times the selective query
// with the attribute index on or off.
func queryLatency(n int, indexed bool) time.Duration {
	rt := orb.NewRuntime("uva")
	rt.SetMetrics(telemetry.NewDisabled())
	c := collection.New(rt, nil)
	if !indexed {
		c.SetIndexedKeys() // revert to the linear-scan ablation
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < n; i++ {
		c.Join(loid.LOID{Domain: "uva", Class: "Host", Instance: uint64(i + 1)},
			[]attr.Pair{
				{Name: "host_zone", Value: attr.String(fmt.Sprintf("z%d", i%20))},
				{Name: "host_arch", Value: attr.String("x86")},
				{Name: "host_load", Value: attr.Float(rng.Float64())},
			}, "")
	}
	const q = `$host_zone == "z3" and $host_load < 0.5`
	if _, err := c.Query(q); err != nil { // warm the parse cache
		return 0
	}
	const reps = 20
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := c.Query(q); err != nil {
			return 0
		}
	}
	return time.Since(t0) / reps
}

// enactLatency wires width hosts behind simulated 1ms links and times
// one reserve+enact episode at the given Enactor parallelism.
func enactLatency(width, parallelism int) time.Duration {
	rt := orb.NewRuntime("uva")
	rt.SetMetrics(telemetry.NewDisabled())
	rt.SetLatency(time.Millisecond, 0)
	v := vault.New(rt, vault.Config{Zone: "z1"})
	hosts := make([]*host.Host, width)
	for i := range hosts {
		hosts[i] = host.New(rt, host.Config{
			Arch: "x86", OS: "Linux", CPUs: 64, MemoryMB: 1 << 14, Zone: "z1",
			MaxShared: 1024, Vaults: []loid.LOID{v.LOID()},
		})
	}
	class := classobj.New(rt, classobj.Config{Name: "Worker"})
	e := enactor.New(rt, enactor.Config{
		CallTimeout: 30 * time.Second,
		Parallelism: parallelism,
	})
	var maps []sched.Mapping
	for i := 0; i < width; i++ {
		maps = append(maps, sched.Mapping{Class: class.LOID(), Host: hosts[i].LOID(), Vault: v.LOID()})
	}
	ctx := context.Background()
	const trials = 3
	var total time.Duration
	for trial := 0; trial < trials; trial++ {
		req := sched.RequestList{
			ID:      e.NewRequestID(),
			Masters: []sched.Master{{Mappings: maps}},
			Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
		}
		t0 := time.Now()
		fb := e.MakeReservations(ctx, req)
		if !fb.Success {
			return 0
		}
		if reply := e.EnactSchedule(ctx, req.ID); !reply.Success {
			return 0
		}
		total += time.Since(t0)
	}
	return total / trials
}
