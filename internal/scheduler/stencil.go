package scheduler

import (
	"context"
	"fmt"
	"sort"

	"legion/internal/loid"
	"legion/internal/sched"
)

// Stencil is a specialized placement policy for structured multi-object
// applications (paper §4.3): "we are working with the DoD MSRC in
// Stennis, Mississippi to develop a Scheduler for an MPI-based ocean
// simulation which uses nearest-neighbor communication within a 2-D
// grid."
//
// The request must contain exactly one class whose Count equals
// Rows*Cols; instance i represents grid cell (i/Cols, i%Cols) in
// row-major order. The policy partitions the grid into contiguous bands
// of rows, sized proportionally to each host's free capacity
// (CPUs*(1-load)), so nearest-neighbour edges stay within a host wherever
// possible. The schedule quality metric is the edge cut (see EdgeCut),
// which the specialized-vs-generic experiment reports.
type Stencil struct {
	Rows, Cols int
}

// Name implements Generator.
func (Stencil) Name() string { return "stencil" }

// Generate implements Generator.
func (g Stencil) Generate(ctx context.Context, env *Env, req Request) (sched.RequestList, error) {
	if g.Rows < 1 || g.Cols < 1 {
		return sched.RequestList{}, fmt.Errorf("scheduler: stencil needs positive grid dims, got %dx%d", g.Rows, g.Cols)
	}
	if len(req.Classes) != 1 || req.Classes[0].Count != g.Rows*g.Cols {
		return sched.RequestList{}, fmt.Errorf("scheduler: stencil wants one class with count %d", g.Rows*g.Cols)
	}
	cr := req.Classes[0]
	hosts, err := matchingHosts(ctx, env, cr.Class)
	if err != nil {
		return sched.RequestList{}, err
	}
	hosts = usable(hosts)
	if len(hosts) == 0 {
		return sched.RequestList{}, fmt.Errorf("%w: class %v", ErrNoResources, cr.Class)
	}

	// Order hosts by free capacity, largest first, so the biggest
	// contiguous band lands on the roomiest machine.
	sort.Slice(hosts, func(a, b int) bool {
		ca, cb := freeCapacity(hosts[a]), freeCapacity(hosts[b])
		if ca != cb {
			return ca > cb
		}
		return hosts[a].LOID.Less(hosts[b].LOID)
	})
	master := bandSchedule(cr.Class, hosts, g.Rows, g.Cols)
	return sched.RequestList{Masters: []sched.Master{master}, Res: req.Res}, nil
}

// freeCapacity estimates a host's remaining compute: CPUs scaled by idle
// fraction, floored so even saturated hosts can take a sliver.
func freeCapacity(h HostInfo) float64 {
	cpus := h.CPUs
	if cpus < 1 {
		cpus = 1
	}
	free := 1 - h.Load
	if free < 0.05 {
		free = 0.05
	}
	return float64(cpus) * free
}

// apportionRows distributes rows to the (pre-ordered) hosts proportional
// to free capacity, largest-remainder method: every row is owned and at
// most len(hosts) bands exist.
func apportionRows(hosts []HostInfo, rows int) []int {
	total := 0.0
	for _, h := range hosts {
		total += freeCapacity(h)
	}
	quota := make([]int, len(hosts))
	assigned := 0
	type frac struct {
		i int
		f float64
	}
	fracs := make([]frac, len(hosts))
	for i, h := range hosts {
		exact := float64(rows) * freeCapacity(h) / total
		quota[i] = int(exact)
		fracs[i] = frac{i: i, f: exact - float64(quota[i])}
		assigned += quota[i]
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].f != fracs[b].f {
			return fracs[a].f > fracs[b].f
		}
		return fracs[a].i < fracs[b].i
	})
	for r := assigned; r < rows; r++ {
		quota[fracs[(r-assigned)%len(fracs)].i]++
	}
	return quota
}

// bandSchedule emits a row-major master schedule assigning contiguous
// row bands to hosts in the given order.
func bandSchedule(class loid.LOID, hosts []HostInfo, rows, cols int) sched.Master {
	quota := apportionRows(hosts, rows)
	master := sched.Master{Mappings: make([]sched.Mapping, 0, rows*cols)}
	hostIdx, rowsLeft := 0, 0
	for row := 0; row < rows; row++ {
		for rowsLeft == 0 {
			rowsLeft = quota[hostIdx]
			if rowsLeft == 0 {
				hostIdx++
				continue
			}
			break
		}
		h := hosts[hostIdx]
		for col := 0; col < cols; col++ {
			master.Mappings = append(master.Mappings, sched.Mapping{
				Class: class, Host: h.LOID, Vault: h.Vaults[0],
			})
		}
		rowsLeft--
		if rowsLeft == 0 {
			hostIdx++
		}
	}
	return master
}

// EdgeCut counts nearest-neighbour grid edges whose endpoints land on
// different hosts — the communication cost a stencil application pays per
// iteration. assignment[i] is the host of grid cell (i/cols, i%cols).
func EdgeCut(assignment []loid.LOID, rows, cols int) int {
	if len(assignment) != rows*cols {
		panic("scheduler: assignment length mismatch")
	}
	cut := 0
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			if c+1 < cols && assignment[i] != assignment[i+1] {
				cut++
			}
			if r+1 < rows && assignment[i] != assignment[i+cols] {
				cut++
			}
		}
	}
	return cut
}

// AssignmentOf extracts the per-cell host list from a schedule's resolved
// mappings, for EdgeCut.
func AssignmentOf(mappings []sched.Mapping) []loid.LOID {
	out := make([]loid.LOID, len(mappings))
	for i, m := range mappings {
		out[i] = m.Host
	}
	return out
}
