package scheduler

import (
	"context"
	"fmt"

	"legion/internal/sched"
)

// IRS implements Improved Random Scheduling (Figures 8 and 9).
//
// "The improved version generates n random mappings for each object
// class, and then constructs n schedules out of them. The Scheduler could
// just as easily build n schedules through calls to the original
// generator function, but IRS does fewer lookups in the Collection."
//
// The master schedule takes the first mapping of each instance's list;
// each further schedule l becomes a variant containing only the mappings
// that differ from the master ("construct a list of all that do not
// appear in the master list"), with the coverage bitmap set accordingly.
type IRS struct {
	// NSched is the number of mappings generated per instance (the
	// pseudocode's n / NSched global). Values below 2 behave like Random
	// with no variants; the default is 4.
	NSched int
}

// Name implements Generator.
func (IRS) Name() string { return "irs" }

// Generate implements Generator per the Fig 8 pseudocode.
func (g IRS) Generate(ctx context.Context, env *Env, req Request) (sched.RequestList, error) {
	if env.Rand == nil {
		panic("scheduler: IRS requires Env.Rand")
	}
	n := g.NSched
	if n < 1 {
		n = 4
	}

	// choices[i][l] is the l-th mapping generated for instance i.
	var choices [][]sched.Mapping
	for _, cr := range req.Classes {
		// One class-implementations query + one Collection lookup per
		// class — this is the lookup economy over calling Random n times.
		hosts, err := matchingHosts(ctx, env, cr.Class)
		if err != nil {
			return sched.RequestList{}, err
		}
		hosts = usable(hosts)
		if len(hosts) == 0 {
			return sched.RequestList{}, fmt.Errorf("%w: class %v", ErrNoResources, cr.Class)
		}
		for i := 0; i < cr.Count; i++ {
			list := make([]sched.Mapping, n)
			for l := 0; l < n; l++ {
				h := hosts[env.Rand.Intn(len(hosts))]
				v := h.Vaults[env.Rand.Intn(len(h.Vaults))]
				list[l] = sched.Mapping{Class: cr.Class, Host: h.LOID, Vault: v}
			}
			choices = append(choices, list)
		}
	}

	// Master = first item from each instance list.
	master := sched.Master{Mappings: make([]sched.Mapping, len(choices))}
	for i, list := range choices {
		master.Mappings[i] = list[0]
	}
	// Variants = l-th components that differ from the master.
	for l := 1; l < n; l++ {
		var v sched.Variant
		for i, list := range choices {
			if list[l] != master.Mappings[i] {
				v.AddReplacement(i, list[l])
			}
		}
		if v.Covers.Any() {
			master.Variants = append(master.Variants, v)
		}
	}
	return sched.RequestList{Masters: []sched.Master{master}, Res: req.Res}, nil
}
