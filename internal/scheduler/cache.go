package scheduler

import (
	"sync"
	"time"

	"legion/internal/vclock"
)

// HostCache memoizes parsed Collection query results for a bounded
// lifetime.
//
// Every Generate run issues one Collection query per requested class and
// parses every matching record into a HostInfo. At metasystem scale that
// is the placement pipeline's dominant cost: a 100k-host directory means
// 100k records fetched, parsed, and sorted per placement, so an open-loop
// driver offering a million placements would touch 10^11 records. The
// paper's own schedulers tolerate stale resource information by design —
// "the resource management framework makes no guarantee that the
// information is current" (§3.2) — which is exactly the license a TTL
// cache needs: within the TTL all placements share one parsed snapshot,
// and staleness is bounded by the same figure the Collection's own pull
// interval already imposes.
//
// The cached slice is handed out shared and must be treated as
// read-only; every shipped Generator honors this by filtering through
// usable(), which copies into a fresh backing array before any in-place
// reorder. Time comes from the supplied Clock, so under a virtual clock
// the TTL expires in virtual time along with everything else.
type HostCache struct {
	clock vclock.Clock
	ttl   time.Duration

	mu      sync.Mutex
	entries map[string]hostCacheEntry

	hits, misses, evicted int64
}

type hostCacheEntry struct {
	hosts   []HostInfo
	usable  []HostInfo // hosts filtered through usable(), computed once at fill
	skipped int
	fetched time.Time
}

// NewHostCache creates a cache whose entries expire ttl after they were
// fetched, measured on clock (nil means the wall clock).
func NewHostCache(clock vclock.Clock, ttl time.Duration) *HostCache {
	return &HostCache{
		clock:   vclock.Default(clock),
		ttl:     ttl,
		entries: make(map[string]hostCacheEntry),
	}
}

// get returns the live entry for the query, if any.
func (c *HostCache) get(query string) ([]HostInfo, int, bool) {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[query]
	if !ok || now.Sub(e.fetched) >= c.ttl {
		c.misses++
		return nil, 0, false
	}
	c.hits++
	return e.hosts, e.skipped, true
}

// getUsable is get returning the usable-filtered view instead. The
// returned slice is shared across every placement in the TTL window and
// MUST be treated as read-only; it exists so non-mutating generators
// (Random) can skip the per-placement filter copy, which at 100k hosts
// is the placement path's dominant allocation.
func (c *HostCache) getUsable(query string) ([]HostInfo, int, bool) {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[query]
	if !ok || now.Sub(e.fetched) >= c.ttl {
		c.misses++
		return nil, 0, false
	}
	c.hits++
	return e.usable, e.skipped, true
}

// put stores a freshly fetched result, first sweeping out every expired
// entry. Without the sweep, entries are only ever overwritten (same
// query string) or mass-dropped by Invalidate, so a workload whose query
// strings vary — per-class filters, per-tenant predicates — leaks one
// parsed fleet snapshot per distinct string forever. Sweeping here keeps
// the map bounded by the number of query shapes live within one TTL, at
// O(entries) per put; puts happen at most once per TTL per shape, so the
// sweep never dominates the fetch it rides on.
func (c *HostCache) put(query string, hosts []HostInfo, skipped int) {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for q, e := range c.entries {
		if now.Sub(e.fetched) >= c.ttl {
			delete(c.entries, q)
			c.evicted++
		}
	}
	c.entries[query] = hostCacheEntry{
		hosts: hosts, usable: usable(hosts),
		skipped: skipped, fetched: now,
	}
}

// Invalidate drops every entry, forcing the next query of each shape to
// refetch. Drivers call it after events that change the fleet (hosts
// added, mass load shifts) when they cannot wait out the TTL.
func (c *HostCache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.entries)
}

// Stats reports cache hits and misses since creation.
func (c *HostCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports how many entries (live or not-yet-swept) the cache holds.
func (c *HostCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Evicted reports how many expired entries put has swept out.
func (c *HostCache) Evicted() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicted
}
