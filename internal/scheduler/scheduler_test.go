package scheduler

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"legion/internal/classobj"
	"legion/internal/collection"
	"legion/internal/enactor"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/sched"
	"legion/internal/vault"
)

// tenv is a full single-runtime metasystem for scheduler tests.
type tenv struct {
	rt      *orb.Runtime
	coll    *collection.Collection
	vaults  []*vault.Vault
	hosts   []*host.Host
	class   *classobj.Class
	enactor *enactor.Enactor
	env     *Env
}

// hostSpec describes one synthetic host.
type hostSpec struct {
	arch string
	os   string
	load float64
	cpus int
}

func newTenv(t *testing.T, specs []hostSpec) *tenv {
	t.Helper()
	rt := orb.NewRuntime("uva")
	coll := collection.New(rt, nil)
	v := vault.New(rt, vault.Config{Zone: "z1"})
	e := &tenv{rt: rt, coll: coll, vaults: []*vault.Vault{v}}
	for _, s := range specs {
		cpus := s.cpus
		if cpus == 0 {
			cpus = 4
		}
		h := host.New(rt, host.Config{
			Arch: s.arch, OS: s.os, CPUs: cpus, MemoryMB: 1024, Zone: "z1",
			Vaults: []loid.LOID{v.LOID()},
		})
		h.SetExternalLoad(s.load)
		h.Reassess(context.Background())
		if err := coll.Join(h.LOID(), h.Attributes(), ""); err != nil {
			t.Fatal(err)
		}
		e.hosts = append(e.hosts, h)
	}
	e.class = classobj.New(rt, classobj.Config{Name: "Worker", Impls: []proto.Implementation{
		{Arch: "x86", OS: "Linux"},
	}})
	e.enactor = enactor.New(rt, enactor.Config{})
	e.env = &Env{RT: rt, Collection: coll.LOID(), Rand: rand.New(rand.NewSource(42))}
	return e
}

func (e *tenv) req(count int) Request {
	return Request{
		Classes: []ClassRequest{{Class: e.class.LOID(), Count: count}},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	}
}

func (e *tenv) hostSet(matching ...int) map[loid.LOID]bool {
	m := make(map[loid.LOID]bool)
	for _, i := range matching {
		m[e.hosts[i].LOID()] = true
	}
	return m
}

func TestRandomMatchesImplementations(t *testing.T) {
	e := newTenv(t, []hostSpec{
		{arch: "x86", os: "Linux"},
		{arch: "sparc", os: "Solaris"}, // must never be picked
		{arch: "x86", os: "Linux"},
	})
	ok := e.hostSet(0, 2)
	rl, err := Random{}.Generate(context.Background(), e.env, e.req(20))
	if err != nil {
		t.Fatal(err)
	}
	if len(rl.Masters) != 1 || len(rl.Masters[0].Mappings) != 20 {
		t.Fatalf("schedule shape: %+v", rl)
	}
	if len(rl.Masters[0].Variants) != 0 {
		t.Error("Random should emit no variants (Fig 7)")
	}
	for _, m := range rl.Masters[0].Mappings {
		if !ok[m.Host] {
			t.Errorf("mapping on non-matching host %v", m.Host)
		}
		if m.Vault != e.vaults[0].LOID() {
			t.Errorf("vault %v", m.Vault)
		}
		if m.Class != e.class.LOID() {
			t.Errorf("class %v", m.Class)
		}
	}
	if err := rl.Masters[0].Validate(); err != nil {
		t.Error(err)
	}
}

func TestRandomDeterministicUnderSeed(t *testing.T) {
	e := newTenv(t, []hostSpec{{arch: "x86", os: "Linux"}, {arch: "x86", os: "Linux"}})
	gen := Random{}
	e.env.Rand = rand.New(rand.NewSource(7))
	a, _ := gen.Generate(context.Background(), e.env, e.req(10))
	e.env.Rand = rand.New(rand.NewSource(7))
	b, _ := gen.Generate(context.Background(), e.env, e.req(10))
	for i := range a.Masters[0].Mappings {
		if a.Masters[0].Mappings[i] != b.Masters[0].Mappings[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
}

func TestRandomNoResources(t *testing.T) {
	e := newTenv(t, []hostSpec{{arch: "sparc", os: "Solaris"}})
	_, err := Random{}.Generate(context.Background(), e.env, e.req(1))
	if !errors.Is(err, ErrNoResources) {
		t.Errorf("want ErrNoResources, got %v", err)
	}
}

func TestRandomRequiresRand(t *testing.T) {
	e := newTenv(t, []hostSpec{{arch: "x86", os: "Linux"}})
	e.env.Rand = nil
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	Random{}.Generate(context.Background(), e.env, e.req(1))
}

func TestIRSStructure(t *testing.T) {
	e := newTenv(t, []hostSpec{
		{arch: "x86", os: "Linux"}, {arch: "x86", os: "Linux"},
		{arch: "x86", os: "Linux"}, {arch: "x86", os: "Linux"},
	})
	rl, err := IRS{NSched: 4}.Generate(context.Background(), e.env, e.req(6))
	if err != nil {
		t.Fatal(err)
	}
	m := rl.Masters[0]
	if len(m.Mappings) != 6 {
		t.Fatalf("mappings: %d", len(m.Mappings))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Variants) == 0 || len(m.Variants) > 3 {
		t.Errorf("variants: %d (want 1..3 for NSched=4)", len(m.Variants))
	}
	// Every variant replacement must actually differ from the master
	// ("construct a list of all that do not appear in the master list").
	for vi, v := range m.Variants {
		if !v.Covers.Any() {
			t.Errorf("variant %d empty", vi)
		}
		for _, r := range v.Replacements {
			if r.Mapping == m.Mappings[r.Index] {
				t.Errorf("variant %d entry %d identical to master", vi, r.Index)
			}
		}
	}
}

func TestIRSFewerCollectionLookupsThanRepeatedRandom(t *testing.T) {
	e := newTenv(t, []hostSpec{
		{arch: "x86", os: "Linux"}, {arch: "x86", os: "Linux"}, {arch: "x86", os: "Linux"},
	})
	ctx := context.Background()
	const n = 4

	q0, _ := e.coll.Stats()
	if _, err := (IRS{NSched: n}).Generate(ctx, e.env, e.req(5)); err != nil {
		t.Fatal(err)
	}
	q1, _ := e.coll.Stats()
	irsQueries := q1 - q0

	for i := 0; i < n; i++ {
		if _, err := (Random{}).Generate(ctx, e.env, e.req(5)); err != nil {
			t.Fatal(err)
		}
	}
	q2, _ := e.coll.Stats()
	randomQueries := q2 - q1

	if irsQueries >= randomQueries {
		t.Errorf("IRS used %d lookups, %d x Random used %d — paper claims IRS does fewer",
			irsQueries, n, randomQueries)
	}
	if irsQueries != 1 {
		t.Errorf("IRS lookups = %d, want 1 per class", irsQueries)
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	e := newTenv(t, []hostSpec{
		{arch: "x86", os: "Linux"}, {arch: "x86", os: "Linux"}, {arch: "x86", os: "Linux"},
	})
	rr := &RoundRobin{}
	rl, err := rr.Generate(context.Background(), e.env, e.req(9))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[loid.LOID]int{}
	for _, m := range rl.Masters[0].Mappings {
		counts[m.Host]++
	}
	for _, h := range e.hosts {
		if counts[h.LOID()] != 3 {
			t.Errorf("host %v got %d instances, want 3", h.LOID(), counts[h.LOID()])
		}
	}
}

func TestLoadAwarePrefersIdleHosts(t *testing.T) {
	e := newTenv(t, []hostSpec{
		{arch: "x86", os: "Linux", load: 0.9, cpus: 4},
		{arch: "x86", os: "Linux", load: 0.1, cpus: 4},
		{arch: "x86", os: "Linux", load: 0.5, cpus: 4},
	})
	rl, err := LoadAware{}.Generate(context.Background(), e.env, e.req(2))
	if err != nil {
		t.Fatal(err)
	}
	// Both instances fit comfortably on the idle host (projected load
	// 0.1, then 0.35 — still the minimum).
	for _, m := range rl.Masters[0].Mappings {
		if m.Host != e.hosts[1].LOID() {
			t.Errorf("instance on %v, want idle host %v", m.Host, e.hosts[1].LOID())
		}
	}
	if err := rl.Masters[0].Validate(); err != nil {
		t.Fatal(err)
	}
	if len(rl.Masters[0].Variants) == 0 {
		t.Error("LoadAware should emit fallback variants")
	}
}

func TestLoadAwareProjectedLoadSpreads(t *testing.T) {
	e := newTenv(t, []hostSpec{
		{arch: "x86", os: "Linux", load: 0.0, cpus: 1},
		{arch: "x86", os: "Linux", load: 0.1, cpus: 1},
	})
	// 4 instances on 1-CPU hosts: projected load forces alternation
	// rather than piling all on host 0.
	rl, err := LoadAware{}.Generate(context.Background(), e.env, e.req(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[loid.LOID]int{}
	for _, m := range rl.Masters[0].Mappings {
		counts[m.Host]++
	}
	if counts[e.hosts[0].LOID()] != 2 || counts[e.hosts[1].LOID()] != 2 {
		t.Errorf("distribution: %v", counts)
	}
}

func TestCostAwarePrefersCheapHosts(t *testing.T) {
	rt := orb.NewRuntime("uva")
	coll := collection.New(rt, nil)
	v := vault.New(rt, vault.Config{Zone: "z1"})
	costs := []float64{5.0, 0.5, 2.0}
	var hosts []*host.Host
	for _, c := range costs {
		h := host.New(rt, host.Config{
			Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 1024, Zone: "z1",
			CostPerCPU: c, Vaults: []loid.LOID{v.LOID()},
		})
		coll.Join(h.LOID(), h.Attributes(), "")
		hosts = append(hosts, h)
	}
	class := classobj.New(rt, classobj.Config{Name: "Worker"})
	env := &Env{RT: rt, Collection: coll.LOID()}
	rl, err := CostAware{}.Generate(context.Background(), env, Request{
		Classes: []ClassRequest{{Class: class.LOID(), Count: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rl.Masters[0].Mappings[0].Host != hosts[1].LOID() {
		t.Errorf("placed on %v, want cheapest %v", rl.Masters[0].Mappings[0].Host, hosts[1].LOID())
	}
}

func TestStencilContiguousBandsAndEdgeCut(t *testing.T) {
	e := newTenv(t, []hostSpec{
		{arch: "x86", os: "Linux", cpus: 8},
		{arch: "x86", os: "Linux", cpus: 8},
		{arch: "x86", os: "Linux", cpus: 8},
	})
	const rows, cols = 6, 6
	gen := Stencil{Rows: rows, Cols: cols}
	rl, err := gen.Generate(context.Background(), e.env, e.req(rows*cols))
	if err != nil {
		t.Fatal(err)
	}
	maps := rl.Masters[0].Mappings
	if len(maps) != rows*cols {
		t.Fatalf("mappings: %d", len(maps))
	}
	// Rows are never split across hosts.
	for r := 0; r < rows; r++ {
		rowHost := maps[r*cols].Host
		for c := 1; c < cols; c++ {
			if maps[r*cols+c].Host != rowHost {
				t.Fatalf("row %d split across hosts", r)
			}
		}
	}
	// Band partition: equal capacity -> 2 rows each -> edge cut = 2
	// boundaries * 6 cols = 12.
	cut := EdgeCut(AssignmentOf(maps), rows, cols)
	if cut != 12 {
		t.Errorf("stencil edge cut = %d, want 12", cut)
	}

	// Random placement on the same fleet has a (much) higher cut.
	rrl, err := Random{}.Generate(context.Background(), e.env, e.req(rows*cols))
	if err != nil {
		t.Fatal(err)
	}
	randCut := EdgeCut(AssignmentOf(rrl.Masters[0].Mappings), rows, cols)
	if randCut <= cut {
		t.Errorf("random cut %d <= stencil cut %d; specialized policy should win", randCut, cut)
	}
}

func TestStencilValidation(t *testing.T) {
	e := newTenv(t, []hostSpec{{arch: "x86", os: "Linux"}})
	if _, err := (Stencil{Rows: 0, Cols: 3}).Generate(context.Background(), e.env, e.req(0)); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := (Stencil{Rows: 2, Cols: 3}).Generate(context.Background(), e.env, e.req(5)); err == nil {
		t.Error("count != rows*cols accepted")
	}
}

func TestEdgeCutKnownCases(t *testing.T) {
	a := loid.LOID{Domain: "d", Class: "H", Instance: 1}
	b := loid.LOID{Domain: "d", Class: "H", Instance: 2}
	// 2x2 all same host: cut 0.
	if c := EdgeCut([]loid.LOID{a, a, a, a}, 2, 2); c != 0 {
		t.Errorf("uniform cut = %d", c)
	}
	// 2x2 checkerboard: every edge cut (4 edges).
	if c := EdgeCut([]loid.LOID{a, b, b, a}, 2, 2); c != 4 {
		t.Errorf("checkerboard cut = %d", c)
	}
	// 2x2 split by row: 2 vertical edges cut.
	if c := EdgeCut([]loid.LOID{a, a, b, b}, 2, 2); c != 2 {
		t.Errorf("row split cut = %d", c)
	}
}

func TestWrapperSuccess(t *testing.T) {
	e := newTenv(t, []hostSpec{{arch: "x86", os: "Linux"}, {arch: "x86", os: "Linux"}})
	out, err := Wrapper{}.Run(context.Background(), e.env, e.enactor.LOID(), Random{}, e.req(3))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success || out.SchedAttempts != 1 || out.EnactAttempts != 1 {
		t.Errorf("outcome: %+v", out)
	}
	if len(out.Instances) != 3 {
		t.Errorf("instances: %v", out.Instances)
	}
	total := 0
	for _, h := range e.hosts {
		total += h.RunningCount()
	}
	if total != 3 {
		t.Errorf("running objects: %d", total)
	}
}

func TestWrapperRetriesThenFails(t *testing.T) {
	// All hosts refuse reservations: the wrapper must exhaust its limits
	// and report failure with attempt counts.
	rt := orb.NewRuntime("uva")
	coll := collection.New(rt, nil)
	v := vault.New(rt, vault.Config{Zone: "z1"})
	h := host.New(rt, host.Config{
		Arch: "x86", OS: "Linux", CPUs: 4, MemoryMB: 512, Zone: "z1",
		Vaults: []loid.LOID{v.LOID()},
		Policy: func(proto.MakeReservationArgs) error {
			return fmt.Errorf("%w: nothing today", host.ErrPolicy)
		},
	})
	coll.Join(h.LOID(), h.Attributes(), "")
	class := classobj.New(rt, classobj.Config{Name: "Worker"})
	en := enactor.New(rt, enactor.Config{})
	env := &Env{RT: rt, Collection: coll.LOID(), Rand: rand.New(rand.NewSource(1))}

	out, err := Wrapper{SchedTryLimit: 2, EnactTryLimit: 2}.Run(
		context.Background(), env, en.LOID(), Random{},
		Request{Classes: []ClassRequest{{Class: class.LOID(), Count: 1}},
			Res: sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour}})
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	if out.Success || out.SchedAttempts != 2 || out.EnactAttempts != 4 {
		t.Errorf("outcome: %+v", out)
	}
	if out.Feedback.Reason != sched.FailureResources {
		t.Errorf("feedback reason: %v", out.Feedback.Reason)
	}
}

func TestWrapperRecoversFromContention(t *testing.T) {
	// One host with exclusive (space-sharing) semantics and two wrappers
	// competing: the first wins, the second fails on resources — then
	// after cancel, a retry succeeds.
	e := newTenv(t, []hostSpec{{arch: "x86", os: "Linux"}})
	ctx := context.Background()
	exclusive := Request{
		Classes: []ClassRequest{{Class: e.class.LOID(), Count: 1}},
		Res:     sched.ReservationSpec{Share: false, Reuse: true, Duration: time.Hour},
	}
	out1, err := Wrapper{}.Run(ctx, e.env, e.enactor.LOID(), Random{}, exclusive)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Wrapper{SchedTryLimit: 1, EnactTryLimit: 1}).Run(ctx, e.env, e.enactor.LOID(), Random{}, exclusive); err == nil {
		t.Fatal("second exclusive placement should fail")
	}
	// Release the first episode's resources, then retry succeeds.
	if err := e.enactor.CancelReservations(ctx, out1.RequestID); err != nil {
		t.Fatal(err)
	}
	// Kill the running object to free the machine conceptually (the
	// reservation was what blocked; object slots are not exclusive).
	if _, err := (Wrapper{}).Run(ctx, e.env, e.enactor.LOID(), Random{}, exclusive); err != nil {
		t.Fatalf("after cancel: %v", err)
	}
}

func TestQueryHostsParsesEverything(t *testing.T) {
	e := newTenv(t, []hostSpec{{arch: "x86", os: "Linux", load: 0.25, cpus: 8}})
	hosts, err := QueryHosts(context.Background(), e.env, "defined($host_arch)")
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 1 {
		t.Fatalf("hosts: %v", hosts)
	}
	h := hosts[0]
	if h.Arch != "x86" || h.OS != "Linux" || h.Load != 0.25 || h.CPUs != 8 ||
		h.Zone != "z1" || h.Batch || len(h.Vaults) != 1 {
		t.Errorf("parsed: %+v", h)
	}
}

func TestImplQueryShapes(t *testing.T) {
	if q := implQuery(nil); q != `defined($host_arch)` {
		t.Errorf("empty impls: %q", q)
	}
	q := implQuery([]proto.Implementation{
		{Arch: "x86", OS: "Linux", MemoryMB: 128},
		{Arch: "sparc"},
		{},
	})
	want := `($host_arch == "x86" and $host_os_name == "Linux" and $host_mem_available_mb >= 128) or ($host_arch == "sparc") or (defined($host_arch))`
	if q != want {
		t.Errorf("query:\n got %q\nwant %q", q, want)
	}
}

func TestGeneratorNames(t *testing.T) {
	names := map[Generator]string{
		Random{}:      "random",
		IRS{}:         "irs",
		&RoundRobin{}: "round-robin",
		LoadAware{}:   "load-aware",
		CostAware{}:   "cost-aware",
		Stencil{}:     "stencil",
	}
	for gen, want := range names {
		if gen.Name() != want {
			t.Errorf("Name() = %q, want %q", gen.Name(), want)
		}
	}
}

func TestReplicatedKofN(t *testing.T) {
	e := newTenv(t, []hostSpec{
		{arch: "x86", os: "Linux", load: 0.8},
		{arch: "x86", os: "Linux", load: 0.1},
		{arch: "x86", os: "Linux", load: 0.5},
		{arch: "x86", os: "Linux", load: 0.3},
	})
	rl, err := Replicated{N: 3}.Generate(context.Background(), e.env, e.req(2))
	if err != nil {
		t.Fatal(err)
	}
	m := rl.Masters[0]
	if len(m.Mappings) != 0 || len(m.KofN) != 1 {
		t.Fatalf("schedule shape: %+v", m)
	}
	g := m.KofN[0]
	if g.K != 2 || len(g.Alternatives) != 3 {
		t.Fatalf("group: %+v", g)
	}
	// Preference order = ascending load: hosts 1 (0.1), 3 (0.3), 2 (0.5).
	if g.Alternatives[0].Host != e.hosts[1].LOID() ||
		g.Alternatives[1].Host != e.hosts[3].LOID() ||
		g.Alternatives[2].Host != e.hosts[2].LOID() {
		t.Errorf("preference order: %v", g.Alternatives)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}

	// End to end: the Enactor binds k=2 of the alternatives.
	out, err := Wrapper{}.Run(context.Background(), e.env, e.enactor.LOID(), Replicated{N: 3}, e.req(2))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success || len(out.Instances) != 2 {
		t.Fatalf("outcome: %+v", out)
	}
	hostsUsed := map[loid.LOID]bool{}
	for _, m := range out.Feedback.Resolved {
		hostsUsed[m.Host] = true
	}
	if len(hostsUsed) != 2 {
		t.Errorf("replicas not on distinct hosts: %v", out.Feedback.Resolved)
	}
}

func TestReplicatedInsufficientHosts(t *testing.T) {
	e := newTenv(t, []hostSpec{{arch: "x86", os: "Linux"}})
	_, err := Replicated{}.Generate(context.Background(), e.env, e.req(3))
	if !errors.Is(err, ErrNoResources) {
		t.Errorf("want ErrNoResources, got %v", err)
	}
}
