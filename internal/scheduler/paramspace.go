package scheduler

import (
	"context"
	"fmt"
	"sort"
	"time"

	"legion/internal/classobj"
	"legion/internal/loid"
	"legion/internal/proto"
	"legion/internal/reservation"
	"legion/internal/resilient"
)

// ParamSpace streams a parameter-space study — thousands of short
// independent tasks of one class — through a small pool of standing
// reusable timesharing reservations (Table 2: Share+Reuse) instead of
// negotiating a fresh reservation round per task.
//
// This is the workload Table 2 justifies reusable tokens with: "a
// parameter space study in which the application wishes to run a large
// number of relatively short-lived jobs". The per-task path through the
// Wrapper costs a schedule generation plus at least one make_reservation
// RPC per task; here each pool slot pays one make_reservation up front
// and then redeems the same token for up to ReuseCap task starts, so the
// steady-state reservation-RPC cost per task is Slots/(Slots×ReuseCap) =
// 1/ReuseCap. Experiment E16 measures the win.
//
// Tasks run sequentially in submission order (determinism is the point
// for experiments; concurrency belongs to the tasks themselves, which
// the timesharing grants already permit to overlap on a host). A slot
// whose token has been redeemed ReuseCap times — or whose host starts
// refusing — is renegotiated: the old token is cancelled (freeing the
// host's multiplex slot) and a fresh reservation is made, preferring the
// currently least-loaded compatible host.
type ParamSpace struct {
	// Slots is the number of standing reservations to rotate across
	// (default 4, clamped to the number of usable hosts).
	Slots int
	// ReuseCap bounds how many task starts one token may serve before
	// the slot renegotiates (default 64). The cap keeps any single
	// host/vault pair from serving the whole study as the fleet's load
	// shifts, and bounds the blast radius of a revoked token.
	ReuseCap int
	// Duration is the reserved service interval per token (default 1h).
	Duration time.Duration
	// Priority and Tenant flow into every make_reservation call.
	Priority int
	Tenant   string
	// KeepInstances leaves task instances running; by default each
	// instance is destroyed once its task returns (short-lived jobs).
	KeepInstances bool
}

// ParamSpaceResult reports one study.
type ParamSpaceResult struct {
	// Started and Failed count tasks.
	Started int
	Failed  int
	// ReservationRPCs counts make_reservation + cancel_reservation
	// calls issued — the E16 comparison metric.
	ReservationRPCs int
	// Renewals counts slot renegotiations after the initial fill.
	Renewals int
	// PerToken maps "host#tokenID" to the number of task starts that
	// token served. No value ever exceeds ReuseCap (the reuse-cap
	// property test pins this).
	PerToken map[string]int
}

// psSlot is one standing reservation.
type psSlot struct {
	placement proto.Placement
	used      int
}

func tokenKey(t reservation.Token) string {
	return fmt.Sprintf("%v#%d", t.Host, t.ID)
}

// Run executes tasks.Count short tasks of class through the pool. For
// each task it creates one instance on the slot's reserved placement,
// calls run (nil run means "start only"), and destroys the instance
// unless KeepInstances. A slot that fails to start an instance is
// renegotiated once before the task counts as failed.
func (p ParamSpace) Run(ctx context.Context, env *Env, class *classobj.Class, tasks int, run func(ctx context.Context, inst loid.LOID, task int) error) (ParamSpaceResult, error) {
	res := ParamSpaceResult{PerToken: make(map[string]int)}
	slots := p.Slots
	if slots <= 0 {
		slots = 4
	}
	cap := p.ReuseCap
	if cap <= 0 {
		cap = 64
	}

	caller := resilient.NewCallerWith(env.RT, env.Retry, env.Breakers)

	// negotiate acquires a fresh reservation for one slot, preferring
	// the least-loaded compatible host not already carrying more of this
	// study's slots than its share.
	inUse := make(map[loid.LOID]int)
	negotiate := func(s *psSlot) error {
		hosts, err := matchingUsableHosts(ctx, env, class.LOID())
		if err != nil {
			return err
		}
		if len(hosts) == 0 {
			return ErrNoResources
		}
		sort.SliceStable(hosts, func(i, j int) bool {
			li := hosts[i].Load + float64(inUse[hosts[i].LOID])
			lj := hosts[j].Load + float64(inUse[hosts[j].LOID])
			return li < lj
		})
		dur := p.Duration
		if dur <= 0 {
			dur = time.Hour
		}
		var lastErr error
		for _, h := range hosts {
			reply, err := caller.Call(ctx, h.LOID, proto.MethodMakeReservation, proto.MakeReservationArgs{
				Requester: env.Collection, // the study has no LOID of its own; attribute to the RM
				Vault:     h.Vaults[0],
				Type:      reservation.ReusableTimesharing,
				Duration:  dur,
				Priority:  p.Priority,
				Tenant:    p.Tenant,
			})
			res.ReservationRPCs++
			if err != nil {
				lastErr = err
				continue
			}
			tok := reply.(proto.MakeReservationReply).Token
			s.placement = proto.Placement{Host: h.LOID, Vault: tok.Vault, Token: tok}
			s.used = 0
			inUse[h.LOID]++
			return nil
		}
		return fmt.Errorf("scheduler: paramspace: no host granted a reservation: %w", lastErr)
	}

	// release cancels a slot's token so the host's timesharing multiplex
	// slot frees immediately instead of aging out.
	release := func(s *psSlot) {
		if s.placement.Host.IsNil() {
			return
		}
		_, _ = caller.Call(ctx, s.placement.Host, proto.MethodCancelReservation,
			proto.TokenArgs{Token: s.placement.Token})
		res.ReservationRPCs++
		inUse[s.placement.Host]--
		s.placement = proto.Placement{}
	}

	// Fill the pool. A study that cannot get even one slot is an error;
	// a partially filled pool proceeds (fewer standing reservations,
	// same protocol).
	pool := make([]*psSlot, 0, slots)
	var fillErr error
	for i := 0; i < slots; i++ {
		s := &psSlot{}
		if err := negotiate(s); err != nil {
			fillErr = err
			break
		}
		pool = append(pool, s)
	}
	if len(pool) == 0 {
		return res, fmt.Errorf("scheduler: paramspace: pool empty: %w", fillErr)
	}
	defer func() {
		for _, s := range pool {
			release(s)
		}
	}()

	for task := 0; task < tasks; task++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		s := pool[task%len(pool)]
		// Renegotiate a capped slot BEFORE redeeming: the cap is a hard
		// bound on starts per token, not a soft rotation hint.
		if s.used >= cap {
			release(s)
			if err := negotiate(s); err != nil {
				res.Failed++
				continue
			}
			res.Renewals++
		}
		started := false
		for attempt := 0; attempt < 2; attempt++ {
			insts, _, err := class.CreateInstance(ctx, 1, &s.placement, nil)
			if err != nil {
				// Host refused or token died (revocation, host restart):
				// renegotiate once and retry the task on the new grant.
				release(s)
				if nerr := negotiate(s); nerr != nil {
					break
				}
				res.Renewals++
				continue
			}
			s.used++
			res.PerToken[tokenKey(s.placement.Token)]++
			res.Started++
			started = true
			if run != nil {
				if rerr := run(ctx, insts[0], task); rerr != nil {
					res.Failed++
					res.Started--
				}
			}
			if !p.KeepInstances {
				_ = class.DestroyInstance(ctx, insts[0])
			}
			break
		}
		if !started {
			res.Failed++
		}
	}
	return res, nil
}
