package scheduler

import (
	"context"
	"fmt"

	"legion/internal/sched"
)

// Replicated emits k-of-n equivalence-class schedules (§3.3: "We will
// also support 'k out of n' scheduling, where the Scheduler specifies an
// equivalence class of n resources and asks the Enactor to start k
// instances of the same object on them").
//
// For each requested class it ranks matching hosts by load, takes the
// best N as the equivalence class, and asks for Count instances (k =
// Count); the Enactor then binds to whichever K resources actually grant
// reservations. This is the natural scheduler for replicated services:
// the caller cares that k replicas run on distinct machines, not which
// machines.
type Replicated struct {
	// N is the equivalence-class size; 0 means all matching hosts.
	N int
}

// Name implements Generator.
func (Replicated) Name() string { return "replicated-k-of-n" }

// Generate implements Generator.
func (g Replicated) Generate(ctx context.Context, env *Env, req Request) (sched.RequestList, error) {
	var master sched.Master
	for _, cr := range req.Classes {
		hosts, err := matchingHosts(ctx, env, cr.Class)
		if err != nil {
			return sched.RequestList{}, err
		}
		hosts = usable(hosts)
		if len(hosts) < cr.Count {
			return sched.RequestList{}, fmt.Errorf(
				"%w: class %v wants %d distinct hosts, %d available",
				ErrNoResources, cr.Class, cr.Count, len(hosts))
		}
		// Rank by load, least first; ties by LOID for determinism.
		ordered := append([]HostInfo(nil), hosts...)
		for i := 1; i < len(ordered); i++ {
			for j := i; j > 0; j-- {
				a, b := ordered[j-1], ordered[j]
				if b.Load < a.Load || (b.Load == a.Load && b.LOID.Less(a.LOID)) {
					ordered[j-1], ordered[j] = b, a
				} else {
					break
				}
			}
		}
		n := g.N
		if n <= 0 || n > len(ordered) {
			n = len(ordered)
		}
		if n < cr.Count {
			n = cr.Count
		}
		group := sched.KofN{Class: cr.Class, K: cr.Count}
		for _, h := range ordered[:n] {
			group.Alternatives = append(group.Alternatives,
				sched.HostVault{Host: h.LOID, Vault: h.Vaults[0]})
		}
		master.KofN = append(master.KofN, group)
	}
	return sched.RequestList{Masters: []sched.Master{master}, Res: req.Res}, nil
}
