package scheduler

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"legion/internal/sched"
)

// RoundRobin spreads instances across matching hosts in LOID order,
// remembering its position across calls. It is deterministic, making it
// the baseline for reproducible experiments.
type RoundRobin struct {
	next atomic.Uint64
}

// Name implements Generator.
func (*RoundRobin) Name() string { return "round-robin" }

// Generate implements Generator.
func (rr *RoundRobin) Generate(ctx context.Context, env *Env, req Request) (sched.RequestList, error) {
	var master sched.Master
	for _, cr := range req.Classes {
		hosts, err := matchingHosts(ctx, env, cr.Class)
		if err != nil {
			return sched.RequestList{}, err
		}
		hosts = usable(hosts)
		if len(hosts) == 0 {
			return sched.RequestList{}, fmt.Errorf("%w: class %v", ErrNoResources, cr.Class)
		}
		for i := 0; i < cr.Count; i++ {
			h := hosts[int(rr.next.Add(1)-1)%len(hosts)]
			master.Mappings = append(master.Mappings, sched.Mapping{
				Class: cr.Class, Host: h.LOID, Vault: h.Vaults[0],
			})
		}
	}
	return sched.RequestList{Masters: []sched.Master{master}, Res: req.Res}, nil
}

// LoadAware places instances on the least-loaded matching hosts,
// accounting for the load its own placements add (instances/CPUs). It
// also emits variant schedules pointing at the next-least-loaded
// alternatives, so enactment failures degrade gracefully.
//
// This is the kind of "smarter" Scheduler the paper's §4 template points
// toward: same infrastructure interactions as Random, better placement
// from the same Collection snapshot.
type LoadAware struct {
	// Variants is how many alternative schedules to emit; default 2.
	Variants int
}

// Name implements Generator.
func (LoadAware) Name() string { return "load-aware" }

// Generate implements Generator.
func (g LoadAware) Generate(ctx context.Context, env *Env, req Request) (sched.RequestList, error) {
	nVar := g.Variants
	if nVar <= 0 {
		nVar = 2
	}
	var master sched.Master
	type projected struct {
		HostInfo
		extra int // instances this schedule has already put here
	}
	for _, cr := range req.Classes {
		hosts, err := matchingHosts(ctx, env, cr.Class)
		if err != nil {
			return sched.RequestList{}, err
		}
		hosts = usable(hosts)
		if len(hosts) == 0 {
			return sched.RequestList{}, fmt.Errorf("%w: class %v", ErrNoResources, cr.Class)
		}
		pool := make([]projected, len(hosts))
		for i, h := range hosts {
			pool[i] = projected{HostInfo: h}
		}
		effLoad := func(p projected) float64 {
			cpus := p.CPUs
			if cpus < 1 {
				cpus = 1
			}
			return p.Load + float64(p.extra)/float64(cpus)
		}
		for i := 0; i < cr.Count; i++ {
			// Least projected load wins; ties break on LOID for
			// determinism.
			sort.Slice(pool, func(a, b int) bool {
				la, lb := effLoad(pool[a]), effLoad(pool[b])
				if la != lb {
					return la < lb
				}
				return pool[a].LOID.Less(pool[b].LOID)
			})
			best := &pool[0]
			idx := len(master.Mappings)
			master.Mappings = append(master.Mappings, sched.Mapping{
				Class: cr.Class, Host: best.LOID, Vault: best.Vaults[0],
			})
			best.extra++
			// Variants: the next-best alternatives for this entry.
			for v := 0; v < nVar && v+1 < len(pool); v++ {
				for len(master.Variants) <= v {
					master.Variants = append(master.Variants, sched.Variant{})
				}
				alt := pool[v+1]
				master.Variants[v].AddReplacement(idx, sched.Mapping{
					Class: cr.Class, Host: alt.LOID, Vault: alt.Vaults[0],
				})
			}
		}
	}
	return sched.RequestList{Masters: []sched.Master{master}, Res: req.Res}, nil
}

// CostAware prefers the cheapest matching hosts ($host_cost_per_cpu),
// breaking ties by load. It demonstrates scheduling on the richer
// descriptive information §3.1 says Hosts can export ("the amount charged
// per CPU cycle consumed").
type CostAware struct{}

// Name implements Generator.
func (CostAware) Name() string { return "cost-aware" }

// Generate implements Generator.
func (CostAware) Generate(ctx context.Context, env *Env, req Request) (sched.RequestList, error) {
	var master sched.Master
	for _, cr := range req.Classes {
		hosts, err := matchingHosts(ctx, env, cr.Class)
		if err != nil {
			return sched.RequestList{}, err
		}
		hosts = usable(hosts)
		if len(hosts) == 0 {
			return sched.RequestList{}, fmt.Errorf("%w: class %v", ErrNoResources, cr.Class)
		}
		sort.Slice(hosts, func(a, b int) bool {
			if hosts[a].Cost != hosts[b].Cost {
				return hosts[a].Cost < hosts[b].Cost
			}
			if hosts[a].Load != hosts[b].Load {
				return hosts[a].Load < hosts[b].Load
			}
			return hosts[a].LOID.Less(hosts[b].LOID)
		})
		for i := 0; i < cr.Count; i++ {
			h := hosts[i%len(hosts)]
			master.Mappings = append(master.Mappings, sched.Mapping{
				Class: cr.Class, Host: h.LOID, Vault: h.Vaults[0],
			})
		}
	}
	return sched.RequestList{Masters: []sched.Master{master}, Res: req.Res}, nil
}
