package scheduler

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"legion/internal/sched"
)

// ErrBudgetInfeasible reports that even the cheapest deadline-feasible
// schedule exceeds the request's budget — Nimrod/G's "cannot be done
// within the deadline and budget" refusal, raised before any
// reservation is attempted.
var ErrBudgetInfeasible = errors.New("scheduler: cheapest deadline-feasible schedule exceeds budget")

// DeadlineBudget is the computational-economy generator (ROADMAP item
// 1): Nimrod/G's deadline/budget-constrained scheduling loop over the
// same E8 query machinery the other generators use. Each matching host
// is priced at $host_price × estimated task duration and assigned an
// estimated completion time from its load and CPU count; the generator
// then buys capacity cheapest-first, but only from hosts whose
// estimated completion fits the request's deadline — paying more for
// faster hosts exactly when the deadline forces it, and refusing
// (ErrBudgetInfeasible) when deadline and budget cannot both hold.
//
// With no deadline and no budget the economy has nothing to optimize:
// Generate delegates verbatim to Random, so a cost-blind request
// through DeadlineBudget is decision-for-decision identical to the
// baseline (pinned by TestE14EconomyDifferential).
type DeadlineBudget struct {
	// Estimate is the assumed per-instance task duration used to price
	// hosts and test deadline feasibility. Zero falls back to the
	// request's reservation Duration, then to one hour.
	Estimate time.Duration
	// Variants is how many alternative schedules to emit per entry
	// (next-cheapest feasible hosts); default 2.
	Variants int
	// Margin is the fraction of the deadline a host's estimated
	// completion must fit within to count as feasible (default 0.75).
	// The headroom absorbs what the snapshot cannot see: load added by
	// concurrent requests between the Collection pull and enactment.
	Margin float64
}

// Name implements Generator.
func (DeadlineBudget) Name() string { return "deadline-budget" }

// Generate implements Generator.
func (g DeadlineBudget) Generate(ctx context.Context, env *Env, req Request) (sched.RequestList, error) {
	if req.Res.Deadline <= 0 && req.Res.Budget <= 0 {
		// Unconstrained: behave exactly like the cost-blind baseline.
		return Random{}.Generate(ctx, env, req)
	}
	nVar := g.Variants
	if nVar <= 0 {
		nVar = 2
	}
	est := g.Estimate
	if est <= 0 {
		est = req.Res.Duration
	}
	if est <= 0 {
		est = time.Hour
	}
	deadline := req.Res.Deadline

	var master sched.Master
	var totalCost float64
	for _, cr := range req.Classes {
		hosts, err := matchingHosts(ctx, env, cr.Class)
		if err != nil {
			return sched.RequestList{}, err
		}
		hosts = usable(hosts)
		if len(hosts) == 0 {
			return sched.RequestList{}, fmt.Errorf("%w: class %v", ErrNoResources, cr.Class)
		}
		sort.Slice(hosts, func(a, b int) bool {
			if hosts[a].Price != hosts[b].Price {
				return hosts[a].Price < hosts[b].Price
			}
			return hosts[a].LOID.Less(hosts[b].LOID)
		})
		// Within one price tier, order is irrelevant to cost — shuffle it
		// so concurrent cheapest-first buyers spread across equally-cheap
		// hosts instead of all piling onto the lexicographically first
		// one and thrashing its admission bound.
		if env.Rand != nil {
			for lo := 0; lo < len(hosts); {
				hi := lo + 1
				for hi < len(hosts) && hosts[hi].Price == hosts[lo].Price {
					hi++
				}
				env.Rand.Shuffle(hi-lo, func(a, b int) {
					hosts[lo+a], hosts[lo+b] = hosts[lo+b], hosts[lo+a]
				})
				lo = hi
			}
		}
		// capFor bounds how many instances a host can finish within the
		// deadline (with Margin headroom), under the same fluid capacity
		// model the makespan judge applies: n tasks of the estimated
		// duration complete in est×n×(1+load)/(CPUs×speed), where load
		// includes the n/CPUs the placed instances themselves add once
		// running.
		margin := g.Margin
		if margin <= 0 || margin > 1 {
			margin = 0.75
		}
		budget := time.Duration(float64(deadline) * margin)
		capFor := func(h HostInfo) int {
			if deadline <= 0 {
				return cr.Count
			}
			cpus := h.CPUs
			if cpus < 1 {
				cpus = 1
			}
			speed := h.Speed
			if speed <= 0 {
				speed = 1
			}
			n := 0
			for n < cr.Count {
				m := float64(n + 1)
				t := float64(est) * m * (1 + h.Load + m/float64(cpus)) / (float64(cpus) * speed)
				if time.Duration(t) > budget {
					break
				}
				n++
			}
			return n
		}
		placed := 0
		for hi := 0; hi < len(hosts) && placed < cr.Count; hi++ {
			h := hosts[hi]
			room := capFor(h)
			if room <= 0 {
				continue
			}
			n := cr.Count - placed
			if room < n {
				n = room
			}
			for k := 0; k < n; k++ {
				idx := len(master.Mappings)
				master.Mappings = append(master.Mappings, sched.Mapping{
					Class: cr.Class, Host: h.LOID, Vault: h.Vaults[0],
				})
				totalCost += h.Price * est.Hours()
				// Alternatives: the next-cheapest hosts that also meet
				// the deadline, so enactment failures degrade to the
				// next-best buy instead of a rescheduling round trip.
				vn := 0
				for aj := hi + 1; aj < len(hosts) && vn < nVar; aj++ {
					if capFor(hosts[aj]) <= 0 {
						continue
					}
					for len(master.Variants) <= vn {
						master.Variants = append(master.Variants, sched.Variant{})
					}
					master.Variants[vn].AddReplacement(idx, sched.Mapping{
						Class: cr.Class, Host: hosts[aj].LOID, Vault: hosts[aj].Vaults[0],
					})
					vn++
				}
			}
			placed += n
		}
		if placed < cr.Count {
			// The deadline leaves too little feasible capacity in the
			// whole fleet. Best effort: spread the remainder across the
			// fastest (least-loaded) hosts — the deadline will slip, but
			// by the least the estimates allow.
			byLoad := append([]HostInfo(nil), hosts...)
			sort.Slice(byLoad, func(a, b int) bool {
				if byLoad[a].Load != byLoad[b].Load {
					return byLoad[a].Load < byLoad[b].Load
				}
				return byLoad[a].LOID.Less(byLoad[b].LOID)
			})
			for i := placed; i < cr.Count; i++ {
				h := byLoad[(i-placed)%len(byLoad)]
				master.Mappings = append(master.Mappings, sched.Mapping{
					Class: cr.Class, Host: h.LOID, Vault: h.Vaults[0],
				})
				totalCost += h.Price * est.Hours()
			}
		}
	}
	if req.Res.Budget > 0 && totalCost > req.Res.Budget {
		return sched.RequestList{}, fmt.Errorf("%w: cost %.6g > budget %.6g (tenant %q)",
			ErrBudgetInfeasible, totalCost, req.Res.Budget, req.Res.Tenant)
	}
	return sched.RequestList{Masters: []sched.Master{master}, Res: req.Res}, nil
}
