package scheduler

import (
	"context"
	"testing"
	"testing/quick"
	"time"

	"legion/internal/loid"
)

func psFleet() []hostSpec {
	return []hostSpec{
		{arch: "x86", os: "Linux", load: 0.2},
		{arch: "x86", os: "Linux", load: 0.4},
		{arch: "x86", os: "Linux", load: 0.6},
	}
}

func TestParamSpaceStreamsTasks(t *testing.T) {
	e := newTenv(t, psFleet())
	var ran []int
	res, err := ParamSpace{Slots: 2, ReuseCap: 10}.Run(context.Background(), e.env, e.class, 25,
		func(ctx context.Context, inst loid.LOID, task int) error {
			if inst.IsNil() {
				t.Fatalf("task %d: nil instance", task)
			}
			ran = append(ran, task)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Started != 25 || res.Failed != 0 {
		t.Fatalf("started %d failed %d, want 25/0", res.Started, res.Failed)
	}
	for i, task := range ran {
		if task != i {
			t.Fatalf("tasks ran out of order: %v", ran)
		}
	}
	// Short-lived jobs: nothing left running.
	if n := len(e.class.Instances()); n != 0 {
		t.Errorf("%d instances left running, want 0", n)
	}
	// The whole point: 25 tasks cost far fewer than 25 reservation
	// RPCs. 2 slot fills + 1 renewal round (2 slots × cap 10 < 25) of
	// cancel+make pairs + 2 final releases.
	if res.ReservationRPCs >= 25 {
		t.Errorf("reservation RPCs = %d for 25 tasks; reuse bought nothing", res.ReservationRPCs)
	}
	if res.Renewals == 0 {
		t.Errorf("expected at least one renewal with cap 10 over 25 tasks")
	}
}

func TestParamSpaceReuseCapProperty(t *testing.T) {
	// Property: no token EVER serves more task starts than ReuseCap,
	// for any (slots, cap, tasks) shape — the cap is a hard bound, not
	// a rotation hint, so a capped slot renegotiates before redeeming.
	e := newTenv(t, psFleet())
	ctx := context.Background()
	f := func(rawSlots, rawCap, rawTasks uint8) bool {
		slots := int(rawSlots)%4 + 1
		cap := int(rawCap)%7 + 1
		tasks := int(rawTasks) % 40
		res, err := ParamSpace{Slots: slots, ReuseCap: cap}.Run(ctx, e.env, e.class, tasks, nil)
		if err != nil {
			t.Logf("slots=%d cap=%d tasks=%d: %v", slots, cap, tasks, err)
			return false
		}
		if res.Started+res.Failed != tasks || res.Failed != 0 {
			t.Logf("slots=%d cap=%d tasks=%d: started %d failed %d",
				slots, cap, tasks, res.Started, res.Failed)
			return false
		}
		total := 0
		for tok, n := range res.PerToken {
			if n > cap {
				t.Logf("slots=%d cap=%d tasks=%d: token %s served %d > cap",
					slots, cap, tasks, tok, n)
				return false
			}
			total += n
		}
		return total == res.Started
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParamSpaceSurvivesTokenDeath(t *testing.T) {
	// Kill the standing grants mid-study by jumping the issuing hosts'
	// clocks past the reservation window: every held token answers
	// ErrExpired on the next redeem, and the slots must renegotiate
	// fresh grants and stream on without failing a single task.
	e := newTenv(t, psFleet())
	ctx := context.Background()
	broke := false
	res, err := ParamSpace{Slots: 2, ReuseCap: 100}.Run(ctx, e.env, e.class, 20,
		func(_ context.Context, _ loid.LOID, task int) error {
			if task == 9 && !broke {
				broke = true
				for _, h := range e.hosts {
					h.SetClock(func() time.Time { return time.Now().Add(2 * time.Hour) })
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Started != 20 || res.Failed != 0 {
		t.Fatalf("started %d failed %d, want 20/0 (revocation should renegotiate, not fail)",
			res.Started, res.Failed)
	}
	if res.Renewals == 0 {
		t.Errorf("revocation mid-study must force renewals")
	}
}
