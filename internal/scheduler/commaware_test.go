package scheduler

import (
	"context"
	"testing"
	"time"

	"legion/internal/classobj"
	"legion/internal/collection"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/netobj"
	"legion/internal/orb"
	"legion/internal/sched"
	"legion/internal/vault"
)

// multiZoneEnv builds hosts across three zones with a WAN topology.
type multiZoneEnv struct {
	rt     *orb.Runtime
	coll   *collection.Collection
	class  *classobj.Class
	topo   *netobj.Topology
	zoneOf map[loid.LOID]string
	env    *Env
}

func newMultiZone(t *testing.T, hostsPerZone int, zones ...string) *multiZoneEnv {
	t.Helper()
	rt := orb.NewRuntime("uva")
	coll := collection.New(rt, nil)
	e := &multiZoneEnv{rt: rt, coll: coll, zoneOf: map[loid.LOID]string{}}
	for _, z := range zones {
		v := vault.New(rt, vault.Config{Zone: z})
		for i := 0; i < hostsPerZone; i++ {
			h := host.New(rt, host.Config{
				Arch: "x86", OS: "Linux", CPUs: 8, MemoryMB: 1024, Zone: z,
				MaxShared: 1024,
				Vaults:    []loid.LOID{v.LOID()},
			})
			coll.Join(h.LOID(), h.Attributes(), "")
			e.zoneOf[h.LOID()] = z
		}
	}
	e.class = classobj.New(rt, classobj.Config{Name: "Cell"})
	e.env = &Env{RT: rt, Collection: coll.LOID()}
	return e
}

func (e *multiZoneEnv) req(n int) Request {
	return Request{
		Classes: []ClassRequest{{Class: e.class.LOID(), Count: n}},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	}
}

func TestCommAwareKeepsBandsZoneContiguous(t *testing.T) {
	e := newMultiZone(t, 2, "za", "zb", "zc")
	// WAN: za-zb close, zb-zc close, za-zc far. The greedy chain should
	// visit za, zb, zc so no band boundary pays the za-zc latency.
	e.topo = netobj.NewTopology(
		netobj.NewLink(e.rt, "za", "zb", 5, 1000),
		netobj.NewLink(e.rt, "zb", "zc", 5, 1000),
		netobj.NewLink(e.rt, "za", "zc", 100, 10),
	)
	const rows, cols = 6, 6
	rl, err := CommAware{Rows: rows, Cols: cols, Topo: e.topo}.Generate(
		context.Background(), e.env, e.req(rows*cols))
	if err != nil {
		t.Fatal(err)
	}
	maps := rl.Masters[0].Mappings
	// Zone sequence down the rows must be contiguous (each zone appears
	// as one run).
	var zoneSeq []string
	for r := 0; r < rows; r++ {
		z := e.zoneOf[maps[r*cols].Host]
		if len(zoneSeq) == 0 || zoneSeq[len(zoneSeq)-1] != z {
			zoneSeq = append(zoneSeq, z)
		}
	}
	seen := map[string]bool{}
	for _, z := range zoneSeq {
		if seen[z] {
			t.Fatalf("zone %s split into non-contiguous bands: %v", z, zoneSeq)
		}
		seen[z] = true
	}
	// And the chain never puts za adjacent to zc.
	for i := 1; i < len(zoneSeq); i++ {
		if (zoneSeq[i-1] == "za" && zoneSeq[i] == "zc") ||
			(zoneSeq[i-1] == "zc" && zoneSeq[i] == "za") {
			t.Errorf("expensive za-zc boundary in chain %v", zoneSeq)
		}
	}
}

func TestCommAwareBeatsStencilOnWeightedCut(t *testing.T) {
	// Hosts with varied CPU counts so Stencil's capacity ordering
	// interleaves zones, while CommAware groups by zone chain.
	rt := orb.NewRuntime("uva")
	coll := collection.New(rt, nil)
	e := &multiZoneEnv{rt: rt, coll: coll, zoneOf: map[loid.LOID]string{}}
	cpusByZone := map[string][]int{"za": {16, 2}, "zb": {12, 4}, "zc": {8, 6}}
	for _, z := range []string{"za", "zb", "zc"} {
		v := vault.New(rt, vault.Config{Zone: z})
		for _, cpus := range cpusByZone[z] {
			h := host.New(rt, host.Config{
				Arch: "x86", OS: "Linux", CPUs: cpus, MemoryMB: 1024, Zone: z,
				MaxShared: 1024, Vaults: []loid.LOID{v.LOID()},
			})
			coll.Join(h.LOID(), h.Attributes(), "")
			e.zoneOf[h.LOID()] = z
		}
	}
	e.class = classobj.New(rt, classobj.Config{Name: "Cell"})
	e.env = &Env{RT: rt, Collection: coll.LOID()}
	e.topo = netobj.NewTopology(
		netobj.NewLink(e.rt, "za", "zb", 5, 1000),
		netobj.NewLink(e.rt, "zb", "zc", 5, 1000),
		netobj.NewLink(e.rt, "za", "zc", 100, 10),
	)
	const rows, cols = 9, 6
	ctx := context.Background()
	zoneOf := func(l loid.LOID) string { return e.zoneOf[l] }

	stencilRL, err := Stencil{Rows: rows, Cols: cols}.Generate(ctx, e.env, e.req(rows*cols))
	if err != nil {
		t.Fatal(err)
	}
	commRL, err := CommAware{Rows: rows, Cols: cols, Topo: e.topo}.Generate(ctx, e.env, e.req(rows*cols))
	if err != nil {
		t.Fatal(err)
	}
	stencilCut := WeightedEdgeCut(AssignmentOf(stencilRL.Masters[0].Mappings), rows, cols, zoneOf, e.topo)
	commCut := WeightedEdgeCut(AssignmentOf(commRL.Masters[0].Mappings), rows, cols, zoneOf, e.topo)
	if commCut > stencilCut {
		t.Errorf("comm-aware weighted cut %v > stencil %v", commCut, stencilCut)
	}
	// Unweighted cuts are comparable (same band count): the win comes
	// from zone placement, not fewer boundaries.
	if commCut <= 0 {
		t.Errorf("weighted cut should be positive: %v", commCut)
	}
}

func TestCommAwareValidation(t *testing.T) {
	e := newMultiZone(t, 1, "za")
	if _, err := (CommAware{Rows: 0, Cols: 2}).Generate(context.Background(), e.env, e.req(0)); err == nil {
		t.Error("bad dims accepted")
	}
	if _, err := (CommAware{Rows: 2, Cols: 2}).Generate(context.Background(), e.env, e.req(3)); err == nil {
		t.Error("count mismatch accepted")
	}
}

func TestWeightedEdgeCutKnownCase(t *testing.T) {
	rt := orb.NewRuntime("uva")
	topo := netobj.NewTopology(netobj.NewLink(rt, "za", "zb", 10, 100))
	a := loid.LOID{Domain: "d", Class: "H", Instance: 1} // za
	b := loid.LOID{Domain: "d", Class: "H", Instance: 2} // za
	c := loid.LOID{Domain: "d", Class: "H", Instance: 3} // zb
	zoneOf := func(l loid.LOID) string {
		if l == c {
			return "zb"
		}
		return "za"
	}
	// 3x1 column: a,b,c. Edges: a-b (intra-zone cut, 0.1), b-c (10).
	got := WeightedEdgeCut([]loid.LOID{a, b, c}, 3, 1, zoneOf, topo)
	if got != 10.1 {
		t.Errorf("weighted cut = %v, want 10.1", got)
	}
}

func TestChainZones(t *testing.T) {
	rt := orb.NewRuntime("uva")
	topo := netobj.NewTopology(
		netobj.NewLink(rt, "za", "zc", 5, 100),
		netobj.NewLink(rt, "zc", "zb", 5, 100),
		netobj.NewLink(rt, "za", "zb", 90, 10),
	)
	got := chainZones([]string{"za", "zb", "zc"}, topo)
	want := []string{"za", "zc", "zb"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chain = %v, want %v", got, want)
		}
	}
	// Nil topology or short lists pass through.
	if out := chainZones([]string{"zb", "za"}, nil); out[0] != "zb" {
		t.Errorf("nil topo chain: %v", out)
	}
}
