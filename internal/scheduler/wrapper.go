package scheduler

import (
	"context"
	"fmt"
	"sync/atomic"

	"legion/internal/loid"
	"legion/internal/proto"
	"legion/internal/sched"
)

// wrapperIDs mints request IDs for Wrapper-driven episodes. It starts
// high so IDs never collide with an Enactor's own NewRequestID sequence
// in the same process.
var wrapperIDs atomic.Uint64

func init() { wrapperIDs.Store(1 << 32) }

// Wrapper drives a Generator through the Enactor with retry limits — the
// Figure 9 IRS_Wrapper protocol, generalized to any Generator:
//
//	for i in 1 to SchedTryLimit:
//	    sched = Gen_Placement(...)
//	    for j in 1 to EnactTryLimit:
//	        if make_reservations(sched) succeeded:
//	            if enact_placement(sched) succeeded: return success
//	return failure
type Wrapper struct {
	// SchedTryLimit bounds schedule generations; default 3.
	SchedTryLimit int
	// EnactTryLimit bounds reservation+enactment attempts per generated
	// schedule; default 2.
	EnactTryLimit int
}

// Outcome reports one Wrapper run.
type Outcome struct {
	// Success is true when some schedule was reserved and enacted.
	Success bool
	// RequestID identifies the winning episode at the Enactor.
	RequestID uint64
	// Feedback is the winning (or last failing) reservation feedback.
	Feedback sched.Feedback
	// Instances are the created objects per resolved mapping.
	Instances [][]loid.LOID
	// SchedAttempts and EnactAttempts count work performed.
	SchedAttempts int
	EnactAttempts int
}

// Run executes the retry protocol, calling the Enactor through the orb
// (so the Enactor may be remote or replaced — Figure 2's layering
// freedom).
func (w Wrapper) Run(ctx context.Context, env *Env, enactorL loid.LOID, gen Generator, req Request) (Outcome, error) {
	schedLimit := w.SchedTryLimit
	if schedLimit <= 0 {
		schedLimit = 3
	}
	enactLimit := w.EnactTryLimit
	if enactLimit <= 0 {
		enactLimit = 2
	}

	var out Outcome
	var lastErr error
	for i := 0; i < schedLimit; i++ {
		out.SchedAttempts++
		request, err := gen.Generate(ctx, env, req)
		if err != nil {
			lastErr = err
			continue // transient resource shortage: regenerate
		}
		for j := 0; j < enactLimit; j++ {
			out.EnactAttempts++
			request.ID = wrapperIDs.Add(1)
			res, err := env.RT.Call(ctx, enactorL, proto.MethodMakeReservations,
				proto.MakeReservationsArgs{Request: request})
			if err != nil {
				lastErr = err
				continue
			}
			fb := res.(proto.FeedbackReply).Feedback
			out.Feedback = fb
			if !fb.Success {
				lastErr = fmt.Errorf("scheduler: %s: %s", fb.Reason, fb.Detail)
				// Malformed schedules will not improve with retries of
				// the same schedule; resources might.
				if fb.Reason == sched.FailureMalformed {
					break
				}
				continue
			}
			eres, err := env.RT.Call(ctx, enactorL, proto.MethodEnactSchedule,
				proto.EnactScheduleArgs{RequestID: request.ID})
			if err != nil {
				lastErr = err
				continue
			}
			reply := eres.(proto.EnactReply)
			if reply.Success {
				out.Success = true
				out.RequestID = request.ID
				out.Instances = reply.Instances
				return out, nil
			}
			lastErr = fmt.Errorf("scheduler: enactment failed: %s", reply.Detail)
		}
	}
	if lastErr == nil {
		lastErr = ErrExhausted
	}
	return out, fmt.Errorf("%w (after %d schedules, %d enact attempts): %v",
		ErrExhausted, out.SchedAttempts, out.EnactAttempts, lastErr)
}
