package scheduler

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/resilient"
	"legion/internal/sched"
)

// isRefusal reports whether err is a typed refusal — an admission shed
// or a deadline expiry caught before dispatch — for which the remote
// method is guaranteed not to have run. Cross-runtime calls flatten
// sentinel identity into a RemoteError message, so the check falls back
// to the sentinel text (the same convention resilient.Classify uses).
func isRefusal(err error) bool {
	if errors.Is(err, proto.ErrOverload) || errors.Is(err, orb.ErrDeadlineExpired) {
		return true
	}
	msg := err.Error()
	return strings.Contains(msg, proto.ErrOverload.Error()) ||
		strings.Contains(msg, orb.ErrDeadlineExpired.Error())
}

// wrapperIDs mints request IDs for Wrapper-driven episodes. It starts
// high so IDs never collide with an Enactor's own NewRequestID sequence
// in the same process.
var wrapperIDs atomic.Uint64

func init() { wrapperIDs.Store(1 << 32) }

// Wrapper drives a Generator through the Enactor with retry limits — the
// Figure 9 IRS_Wrapper protocol, generalized to any Generator:
//
//	for i in 1 to SchedTryLimit:
//	    sched = Gen_Placement(...)
//	    for j in 1 to EnactTryLimit:
//	        if make_reservations(sched) succeeded:
//	            if enact_placement(sched) succeeded: return success
//	return failure
//
// Transport faults are handled below the protocol loops: each Enactor
// call runs under the Env's retry policy and shared breakers, so a
// dropped connection is redialed and retried (with a fresh request ID
// per reservation attempt — see below) without burning a Figure 9
// attempt, while permanent refusals fall through to the protocol's own
// regenerate / give-up logic.
type Wrapper struct {
	// SchedTryLimit bounds schedule generations; default 3.
	SchedTryLimit int
	// EnactTryLimit bounds reservation+enactment attempts per generated
	// schedule; default 2.
	EnactTryLimit int
}

// Outcome reports one Wrapper run.
type Outcome struct {
	// Success is true when some schedule was reserved and enacted.
	Success bool
	// RequestID identifies the winning episode at the Enactor.
	RequestID uint64
	// Feedback is the winning (or last failing) reservation feedback.
	Feedback sched.Feedback
	// Instances are the created objects per resolved mapping.
	Instances [][]loid.LOID
	// SchedAttempts and EnactAttempts count work performed.
	SchedAttempts int
	EnactAttempts int
	// TransportRetries counts Enactor calls repeated below the protocol
	// after a retryable transport fault.
	TransportRetries int
}

// Run executes the retry protocol, calling the Enactor through the orb
// (so the Enactor may be remote or replaced — Figure 2's layering
// freedom).
func (w Wrapper) Run(ctx context.Context, env *Env, enactorL loid.LOID, gen Generator, req Request) (Outcome, error) {
	schedLimit := w.SchedTryLimit
	if schedLimit <= 0 {
		schedLimit = 3
	}
	enactLimit := w.EnactTryLimit
	if enactLimit <= 0 {
		enactLimit = 2
	}
	caller := resilient.NewCallerWith(env.RT, env.Retry, env.Breakers)

	// cancelEpisode best-effort releases one episode's reservations on a
	// context detached from the caller's: the episodes worth cancelling
	// are exactly the ones abandoned because the caller's deadline died,
	// and a cancel under that dead context could never land. An episode
	// the Enactor never recorded answers ErrUnknownRequest — harmless.
	// Cleanup runs breaker-free: a faulted cancel is bookkeeping, not a
	// verdict on the Enactor's health, and letting it strike the shared
	// breaker would fail the *placement* path for hygiene's sake. The
	// cancel is idempotent (a repeat answers ErrUnknownRequest), so it
	// retries transport faults under the normal policy.
	canceller := resilient.NewCallerWith(env.RT, env.Retry, nil)
	cancelEpisode := func(id uint64) {
		cctx, cancel := env.RT.Clock().WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
		defer cancel()
		_, _ = canceller.Call(cctx, enactorL, proto.MethodCancelReservations,
			proto.CancelReservationsArgs{RequestID: id})
	}

	var out Outcome
	var lastErr error
	for i := 0; i < schedLimit; i++ {
		out.SchedAttempts++
		request, err := gen.Generate(ctx, env, req)
		if err != nil {
			lastErr = err
			continue // transient resource shortage: regenerate
		}
		for j := 0; j < enactLimit; j++ {
			out.EnactAttempts++
			// make_reservations is retried with a FRESH request ID per
			// transport attempt: if a success reply was lost, the orphan
			// episode's unconfirmed reservations are reclaimed by the
			// Hosts' confirmation timeouts, whereas reusing the ID would
			// silently overwrite held state at the Enactor.
			var fb sched.Feedback
			var staleIDs []uint64
			rerr := env.Retry.Do(ctx, func(actx context.Context) error {
				request.ID = wrapperIDs.Add(1)
				res, cerr := caller.CallOnce(actx, enactorL, proto.MethodMakeReservations,
					proto.MakeReservationsArgs{Request: request, RequesterDomain: env.RT.Domain()})
				if cerr != nil {
					// The attempt may have succeeded server-side with the
					// reply lost — its episode (never to be enacted: the
					// next attempt mints a fresh ID) would strand its
					// unconfirmed grants until the hosts' confirmation
					// timeouts. Remember the ID and cancel it below —
					// unless the fault provably fired before dispatch
					// (NeverReached), in which case no episode exists and
					// a cancel would be pure extra load on a link that is
					// already misbehaving.
					if !resilient.NeverReached(cerr) {
						staleIDs = append(staleIDs, request.ID)
					}
					out.TransportRetries++
					return cerr
				}
				fb = res.(proto.FeedbackReply).Feedback
				return nil
			})
			for _, id := range staleIDs {
				cancelEpisode(id)
			}
			if rerr != nil {
				lastErr = rerr
				if errors.Is(rerr, resilient.ErrCircuitOpen) {
					// The Enactor endpoint itself is down; neither this
					// schedule nor a regenerated one can proceed.
					return out, fmt.Errorf("%w (after %d schedules, %d enact attempts): %v",
						ErrExhausted, out.SchedAttempts, out.EnactAttempts, rerr)
				}
				continue
			}
			out.Feedback = fb
			if !fb.Success {
				lastErr = fmt.Errorf("scheduler: %s: %s", fb.Reason, fb.Detail)
				// Malformed schedules will not improve with retries of
				// the same schedule; resources might.
				if fb.Reason == sched.FailureMalformed {
					break
				}
				continue
			}
			// enact_schedule is idempotent at the Enactor (a retried
			// success returns the same instances), so the same request
			// ID is safely retried through the resilient caller.
			eres, err := caller.Call(ctx, enactorL, proto.MethodEnactSchedule,
				proto.EnactScheduleArgs{RequestID: request.ID})
			if err != nil {
				lastErr = err
				// A refusal (admission shed, deadline expired before
				// dispatch) guarantees the enactment never ran, so the
				// held reservations can be released immediately instead
				// of aging out through the confirmation timeouts. Other
				// errors are ambiguous — the enactment may have
				// completed with the reply lost — and cancelling could
				// strand running instances, so those are left to the
				// Enactor's TTL sweep and the hosts' reapers.
				if isRefusal(err) {
					cancelEpisode(request.ID)
				}
				continue
			}
			reply := eres.(proto.EnactReply)
			if reply.Success {
				out.Success = true
				out.RequestID = request.ID
				out.Instances = reply.Instances
				return out, nil
			}
			lastErr = fmt.Errorf("scheduler: enactment failed: %s", reply.Detail)
		}
	}
	if lastErr == nil {
		lastErr = ErrExhausted
	}
	return out, fmt.Errorf("%w (after %d schedules, %d enact attempts): %v",
		ErrExhausted, out.SchedAttempts, out.EnactAttempts, lastErr)
}
