package scheduler

import (
	"context"
	"fmt"

	"legion/internal/sched"
)

// Random implements the Figure 7 random placement generator.
//
// "The Random Scheduling Policy, as the name implies, randomly selects
// from the available resources that appear to be able to run the task.
// There is no consideration of load, speed, memory contention,
// communication patterns, or other factors that might affect the
// completion time of the task. The goal here is simplicity, not
// performance." It builds exactly one master schedule with no variants —
// "the equivalent of the default schedule generator for Legion Classes in
// releases prior to 1.5".
type Random struct{}

// Name implements Generator.
func (Random) Name() string { return "random" }

// Generate implements Generator, following the Fig 7 pseudocode line by
// line: for each ObjectClass, query the class for implementations, query
// the Collection for matching Hosts, then for each desired instance pick
// a Host at random and a compatible Vault at random.
func (Random) Generate(ctx context.Context, env *Env, req Request) (sched.RequestList, error) {
	if env.Rand == nil {
		panic("scheduler: Random requires Env.Rand")
	}
	var master sched.Master
	for _, cr := range req.Classes {
		// Read-only shared view: Random only indexes into it, so it can
		// share the cache's filtered snapshot instead of copying 100k
		// HostInfos per placement.
		hosts, err := matchingUsableHosts(ctx, env, cr.Class)
		if err != nil {
			return sched.RequestList{}, err
		}
		if len(hosts) == 0 {
			return sched.RequestList{}, fmt.Errorf("%w: class %v", ErrNoResources, cr.Class)
		}
		for i := 0; i < cr.Count; i++ {
			h := hosts[env.Rand.Intn(len(hosts))]
			v := h.Vaults[env.Rand.Intn(len(h.Vaults))]
			master.Mappings = append(master.Mappings, sched.Mapping{
				Class: cr.Class, Host: h.LOID, Vault: v,
			})
		}
	}
	return sched.RequestList{Masters: []sched.Master{master}, Res: req.Res}, nil
}
