package scheduler

import (
	"context"
	"fmt"
	"sort"

	"legion/internal/loid"
	"legion/internal/netobj"
	"legion/internal/sched"
)

// CommAware is the Network-Object-aware stencil scheduler: §6's future
// work ("We are developing Network Objects to manage communications
// resources") combined with the §4.3 specialized stencil policy.
//
// Like Stencil, it partitions a Rows x Cols grid into contiguous row
// bands sized by host capacity — but it also consults a netobj.Topology
// and arranges the bands so that adjacent bands live in network-close
// zones: hosts are grouped by zone, zones are chained greedily by
// link latency, and bands are walked along that chain. Cross-zone grid
// edges (the expensive ones) then only occur at zone-chain boundaries.
type CommAware struct {
	Rows, Cols int
	// Topo answers zone-to-zone latency; nil behaves like Stencil with
	// alphabetical zone grouping.
	Topo *netobj.Topology
}

// Name implements Generator.
func (CommAware) Name() string { return "comm-aware" }

// Generate implements Generator.
func (g CommAware) Generate(ctx context.Context, env *Env, req Request) (sched.RequestList, error) {
	if g.Rows < 1 || g.Cols < 1 {
		return sched.RequestList{}, fmt.Errorf("scheduler: comm-aware needs positive grid dims, got %dx%d", g.Rows, g.Cols)
	}
	if len(req.Classes) != 1 || req.Classes[0].Count != g.Rows*g.Cols {
		return sched.RequestList{}, fmt.Errorf("scheduler: comm-aware wants one class with count %d", g.Rows*g.Cols)
	}
	cr := req.Classes[0]
	hosts, err := matchingHosts(ctx, env, cr.Class)
	if err != nil {
		return sched.RequestList{}, err
	}
	hosts = usable(hosts)
	if len(hosts) == 0 {
		return sched.RequestList{}, fmt.Errorf("%w: class %v", ErrNoResources, cr.Class)
	}

	// Group hosts by zone; order each group by capacity (largest first).
	byZone := map[string][]HostInfo{}
	for _, h := range hosts {
		byZone[h.Zone] = append(byZone[h.Zone], h)
	}
	zones := make([]string, 0, len(byZone))
	for z := range byZone {
		zones = append(zones, z)
		sort.Slice(byZone[z], func(a, b int) bool {
			ca, cb := freeCapacity(byZone[z][a]), freeCapacity(byZone[z][b])
			if ca != cb {
				return ca > cb
			}
			return byZone[z][a].LOID.Less(byZone[z][b].LOID)
		})
	}
	sort.Strings(zones)
	zones = chainZones(zones, g.Topo)

	ordered := make([]HostInfo, 0, len(hosts))
	for _, z := range zones {
		ordered = append(ordered, byZone[z]...)
	}
	master := bandSchedule(cr.Class, ordered, g.Rows, g.Cols)
	return sched.RequestList{Masters: []sched.Master{master}, Res: req.Res}, nil
}

// chainZones orders zones as a greedy nearest-neighbour chain under the
// topology's latency metric, starting from the alphabetically first
// zone. With a nil topology the input (sorted) order is returned.
func chainZones(zones []string, topo *netobj.Topology) []string {
	if topo == nil || len(zones) < 3 {
		return zones
	}
	remaining := append([]string(nil), zones[1:]...)
	chain := []string{zones[0]}
	for len(remaining) > 0 {
		last := chain[len(chain)-1]
		best, bestLat := 0, topo.LatencyMS(last, remaining[0])
		for i := 1; i < len(remaining); i++ {
			if l := topo.LatencyMS(last, remaining[i]); l < bestLat {
				best, bestLat = i, l
			}
		}
		chain = append(chain, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return chain
}

// WeightedEdgeCut sums the zone-to-zone latency of every grid edge whose
// endpoints land on different hosts — the latency-weighted analogue of
// EdgeCut, and the objective CommAware minimizes. zoneOf maps a host to
// its zone.
func WeightedEdgeCut(assignment []loid.LOID, rows, cols int, zoneOf func(loid.LOID) string, topo *netobj.Topology) float64 {
	if len(assignment) != rows*cols {
		panic("scheduler: assignment length mismatch")
	}
	cost := 0.0
	edge := func(a, b loid.LOID) float64 {
		if a == b {
			return 0
		}
		return topo.LatencyMS(zoneOf(a), zoneOf(b))
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			if c+1 < cols {
				cost += edge(assignment[i], assignment[i+1])
			}
			if r+1 < rows {
				cost += edge(assignment[i], assignment[i+cols])
			}
		}
	}
	return cost
}
