// Package scheduler implements Legion Schedulers (paper §3.3, §4).
//
// "The Scheduler computes the mapping of objects to resources. At a
// minimum, the Scheduler knows how many instances of each class must be
// started. ... The Scheduler obtains resource description information by
// querying the Collection, and then computes a mapping of object
// instances to resources. This mapping is passed on to the Enactor for
// implementation."
//
// The paper is explicit that Legion provides enabling technology, not
// scheduling research: "Legion provides simple, generic default
// Schedulers that offer the classic '90%' solution". This package
// provides:
//
//   - Random — the Figure 7 random placement generator;
//   - IRS — Improved Random Scheduling (Figures 8 and 9), which computes
//     n mappings per object instance with fewer Collection lookups and
//     emits master + variant schedules;
//   - RoundRobin — a simple deterministic spreader;
//   - LoadAware — least-loaded placement using $host_load;
//   - Stencil — a specialized policy for 2-D nearest-neighbour grids
//     (§4.3's MPI ocean-simulation scenario), minimizing cross-host
//     communication edges;
//
// plus the Wrapper retry protocol of Figure 9 that drives any generator
// through the Enactor.
package scheduler

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"legion/internal/attr"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/resilient"
	"legion/internal/sched"
)

// Errors returned by schedulers.
var (
	// ErrNoResources reports that the Collection offered no viable hosts.
	ErrNoResources = errors.New("scheduler: no matching resources in Collection")
	// ErrExhausted reports that the Wrapper ran out of retry budget.
	ErrExhausted = errors.New("scheduler: try limits exhausted")
)

// ClassRequest asks for Count instances of Class.
type ClassRequest struct {
	Class loid.LOID
	Count int
}

// Request is a placement problem: how many instances of which classes,
// under what reservation terms.
type Request struct {
	Classes []ClassRequest
	Res     sched.ReservationSpec
}

// TotalInstances returns the number of mappings a schedule for the
// request will contain.
func (r Request) TotalInstances() int {
	n := 0
	for _, c := range r.Classes {
		n += c.Count
	}
	return n
}

// Generator computes schedules: the Scheduler role of Figure 3, step 4.
// Generators are driven by the Wrapper (or called directly) and must be
// safe for concurrent use.
type Generator interface {
	// Name identifies the policy in experiment reports.
	Name() string
	// Generate computes a RequestList (without an ID; the Wrapper
	// assigns one per negotiation attempt).
	Generate(ctx context.Context, env *Env, req Request) (sched.RequestList, error)
}

// Env gives schedulers access to the infrastructure: the runtime for
// method calls, and the Collection to query. This mirrors layering (d) of
// Figure 2 — the Scheduler is its own module talking to RM services.
type Env struct {
	RT         *orb.Runtime
	Collection loid.LOID
	// Rand drives randomized policies; a nil Rand panics in those
	// policies (determinism must be an explicit choice).
	Rand *rand.Rand
	// QueryTimeout bounds Collection and class queries; zero means 30s.
	QueryTimeout time.Duration
	// Retry shapes transport-fault retries for scheduler-side calls
	// (Collection queries, class queries, Enactor negotiation); the zero
	// value uses resilient defaults.
	Retry resilient.Policy
	// Breakers, when non-nil, pools per-endpoint circuit state — core
	// shares one set across the Wrapper, queries, and episodes so a dead
	// Collection or Enactor fails fast. Nil disables breakers.
	Breakers *resilient.BreakerSet
	// Cache, when non-nil, memoizes Collection query results (see
	// HostCache). Scale drivers set it; interactive paths usually leave
	// it nil and pay the full query for freshness.
	Cache *HostCache
}

func (e *Env) timeout() time.Duration {
	if e.QueryTimeout > 0 {
		return e.QueryTimeout
	}
	return 30 * time.Second
}

// call makes one scheduler-side metasystem call through the Env's retry
// policy and shared breakers.
func (e *Env) call(ctx context.Context, target loid.LOID, method string, arg any) (any, error) {
	return resilient.NewCallerWith(e.RT, e.Retry, e.Breakers).Call(ctx, target, method, arg)
}

// HostInfo is a scheduler's parsed view of one Collection host record.
type HostInfo struct {
	LOID   loid.LOID
	Arch   string
	OS     string
	Load   float64
	CPUs   int
	Zone   string
	Cost   float64
	// Price is the economy layer's advertised charge per instance-hour
	// ($host_price); Spot marks preemptible spot capacity ($host_class
	// == "spot"). The DeadlineBudget generator trades Price against
	// estimated completion time.
	Price  float64
	Spot   bool
	// Speed is the host's relative benchmark speed ($host_speed,
	// 1.0 = baseline); deadline-aware schedulers scale completion
	// estimates by it.
	Speed  float64
	Batch  bool
	Vaults []loid.LOID
	// Down is true when the record is flagged unreachable
	// (host_alive == false, set by the Collection daemon's failure
	// detector); schedulers skip such hosts.
	Down bool
	// LoadHistory is the rolling window of recent host_load samples the
	// Collection daemon publishes as $host_load_history (oldest first);
	// empty when the record carries none. Forecast-driven policies feed
	// it to an nws.Predictor instead of trusting the instantaneous Load.
	LoadHistory []float64
}

// queryClassImpls fetches a class's available implementations (Fig 7:
// "query the class for available implementations").
func queryClassImpls(ctx context.Context, env *Env, class loid.LOID) ([]proto.Implementation, error) {
	cctx, cancel := env.RT.Clock().WithTimeout(ctx, env.timeout())
	defer cancel()
	res, err := env.call(cctx, class, proto.MethodGetImplementations, nil)
	if err != nil {
		return nil, fmt.Errorf("scheduler: get_implementations on %v: %w", class, err)
	}
	reply, ok := res.(proto.ImplementationsReply)
	if !ok {
		return nil, fmt.Errorf("scheduler: unexpected reply %T", res)
	}
	return reply.Impls, nil
}

// implQuery builds the Collection query matching hosts able to run any of
// the implementations (Fig 7: "query Collection for Hosts matching
// available implementations"). A class with no implementations matches
// any host that reports an architecture.
func implQuery(impls []proto.Implementation) string {
	if len(impls) == 0 {
		return `defined($host_arch)`
	}
	terms := make([]string, len(impls))
	for i, im := range impls {
		var sub []string
		if im.Arch != "" {
			sub = append(sub, fmt.Sprintf(`$host_arch == %q`, im.Arch))
		}
		if im.OS != "" {
			sub = append(sub, fmt.Sprintf(`$host_os_name == %q`, im.OS))
		}
		if im.MemoryMB > 0 {
			sub = append(sub, fmt.Sprintf(`$host_mem_available_mb >= %d`, im.MemoryMB))
		}
		if len(sub) == 0 {
			sub = []string{`defined($host_arch)`}
		}
		terms[i] = "(" + strings.Join(sub, " and ") + ")"
	}
	return strings.Join(terms, " or ")
}

// matchingHosts runs one Collection query for a class and parses the
// results. This is the single lookup per class that IRS amortizes.
func matchingHosts(ctx context.Context, env *Env, class loid.LOID) ([]HostInfo, error) {
	impls, err := queryClassImpls(ctx, env, class)
	if err != nil {
		return nil, err
	}
	return QueryHosts(ctx, env, implQuery(impls))
}

// QueryHosts runs an arbitrary query against the Collection and parses
// host records from the result. When the Collection is a federation
// Router, the result may silently be partial; schedulers that should
// react to degraded directories use QueryHostsPartial instead.
func QueryHosts(ctx context.Context, env *Env, querySrc string) ([]HostInfo, error) {
	hosts, _, err := QueryHostsPartial(ctx, env, querySrc)
	return hosts, err
}

// matchingUsableHosts is matchingHosts pre-filtered through usable().
// The returned slice may be the cache's shared filtered view: callers
// MUST NOT reorder or mutate it. Generators that sort or shuffle in
// place use matchingHosts + usable() (which copies) instead.
func matchingUsableHosts(ctx context.Context, env *Env, class loid.LOID) ([]HostInfo, error) {
	impls, err := queryClassImpls(ctx, env, class)
	if err != nil {
		return nil, err
	}
	querySrc := implQuery(impls)
	if env.Cache != nil {
		if hosts, _, ok := env.Cache.getUsable(querySrc); ok {
			return hosts, nil
		}
	}
	hosts, _, err := QueryHostsPartial(ctx, env, querySrc)
	if err != nil {
		return nil, err
	}
	return usable(hosts), nil
}

// QueryHostsPartial is QueryHosts surfacing the federation layer's
// partial-result marker: skipped is how many Collection shards
// contributed nothing (timed out, unreachable, breaker-open) — always
// zero when env.Collection is a plain single Collection. A scheduler
// seeing skipped > 0 knows the host list under-represents the
// metasystem and can widen its schedule or retry later.
func QueryHostsPartial(ctx context.Context, env *Env, querySrc string) (hosts []HostInfo, skipped int, err error) {
	if env.Cache != nil {
		if hosts, skipped, ok := env.Cache.get(querySrc); ok {
			return hosts, skipped, nil
		}
	}
	cctx, cancel := env.RT.Clock().WithTimeout(ctx, env.timeout())
	defer cancel()
	res, err := env.call(cctx, env.Collection, proto.MethodQueryCollection,
		proto.QueryArgs{Query: querySrc})
	if err != nil {
		return nil, 0, fmt.Errorf("scheduler: collection query: %w", err)
	}
	reply, ok := res.(proto.QueryReply)
	if !ok {
		return nil, 0, fmt.Errorf("scheduler: unexpected reply %T", res)
	}
	hosts = make([]HostInfo, 0, len(reply.Records))
	for _, rec := range reply.Records {
		hosts = append(hosts, parseHostInfo(rec))
	}
	// Deterministic base order; randomized policies shuffle explicitly.
	sort.Slice(hosts, func(i, j int) bool { return hosts[i].LOID.Less(hosts[j].LOID) })
	if env.Cache != nil {
		env.Cache.put(querySrc, hosts, reply.SkippedShards)
	}
	return hosts, reply.SkippedShards, nil
}

// parseHostInfo converts a Collection record into a HostInfo.
func parseHostInfo(rec proto.CollectionRecord) HostInfo {
	m := attr.FromPairs(rec.Attrs)
	h := HostInfo{LOID: rec.Member}
	if v, ok := m["host_arch"]; ok {
		h.Arch = v.Str()
	}
	if v, ok := m["host_os_name"]; ok {
		h.OS = v.Str()
	}
	if v, ok := m["host_load"]; ok {
		h.Load, _ = v.AsFloat()
	}
	if v, ok := m["host_cpus"]; ok {
		if f, fok := v.AsFloat(); fok {
			h.CPUs = int(f)
		}
	}
	if v, ok := m["host_zone"]; ok {
		h.Zone = v.Str()
	}
	if v, ok := m["host_cost_per_cpu"]; ok {
		h.Cost, _ = v.AsFloat()
	}
	if v, ok := m["host_price"]; ok {
		h.Price, _ = v.AsFloat()
	}
	if v, ok := m["host_class"]; ok {
		h.Spot = v.Str() == "spot"
	}
	if v, ok := m["host_speed"]; ok {
		h.Speed, _ = v.AsFloat()
	}
	if v, ok := m["host_is_batch"]; ok {
		h.Batch = v.BoolVal()
	}
	if v, ok := m["host_alive"]; ok {
		h.Down = !v.BoolVal()
	}
	if v, ok := m["host_load_history"]; ok && v.Kind() == attr.KindList {
		for i := 0; i < v.Len(); i++ {
			if f, fok := v.At(i).AsFloat(); fok {
				h.LoadHistory = append(h.LoadHistory, f)
			}
		}
	}
	if v, ok := m["host_vaults"]; ok && v.Kind() == attr.KindList {
		for i := 0; i < v.Len(); i++ {
			if l, err := loid.Parse(v.At(i).Str()); err == nil {
				h.Vaults = append(h.Vaults, l)
			}
		}
	}
	return h
}

// usable filters hosts that have at least one compatible vault — a host
// with no vault cannot run anything (objects need OPR storage) — and are
// not flagged down by the failure detector.
func usable(hosts []HostInfo) []HostInfo {
	out := hosts[:0:0]
	for _, h := range hosts {
		if len(h.Vaults) > 0 && !h.Down {
			out = append(out, h)
		}
	}
	return out
}
