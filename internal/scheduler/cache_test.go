package scheduler

import (
	"context"
	"fmt"
	"testing"
	"time"

	"legion/internal/vclock"
)

// TestHostCacheEvictsExpiredEntries regresses the unbounded-growth leak:
// expired entries were only ever overwritten by a put of the same query
// string or mass-dropped by Invalidate, so a workload with varying query
// strings (per-class filters, per-tenant predicates) grew the map by one
// dead fleet snapshot per distinct string forever. put must sweep them.
func TestHostCacheEvictsExpiredEntries(t *testing.T) {
	vc := vclock.NewVirtual()
	c := NewHostCache(vc, 10*time.Second)
	vc.Run(func() {
		ctx := context.Background()
		for i := 0; i < 100; i++ {
			c.put(fmt.Sprintf("defined($host_load) and $gen == %d", i), nil, 0)
		}
		if n := c.Len(); n != 100 {
			t.Errorf("live entries = %d, want 100", n)
		}
		_ = vc.Sleep(ctx, 11*time.Second)
		// All 100 are now expired; the next put must sweep every one.
		c.put("defined($host_load)", nil, 0)
		if n := c.Len(); n != 1 {
			t.Errorf("entries after expiry sweep = %d, want 1", n)
		}
		if ev := c.Evicted(); ev != 100 {
			t.Errorf("evicted = %d, want 100", ev)
		}
		// A live entry must survive an unrelated put.
		_ = vc.Sleep(ctx, time.Second)
		c.put("other", nil, 0)
		if n := c.Len(); n != 2 {
			t.Errorf("entries with live neighbor = %d, want 2", n)
		}
		if _, _, ok := c.get("defined($host_load)"); !ok {
			t.Error("live entry evicted early")
		}
	})
}
