package loid

import "legion/internal/wire"

// AppendWire appends the LOID in the ORB's binary wire format: domain,
// class, instance. The nil LOID round-trips as two empty strings and a
// zero serial.
func (l LOID) AppendWire(b []byte) []byte {
	b = wire.AppendString(b, l.Domain)
	b = wire.AppendString(b, l.Class)
	return wire.AppendUvarint(b, l.Instance)
}

// DecodeWire consumes a LOID encoded by AppendWire. Domain and class are
// interned: a metasystem has a handful of domains and classes but mints
// millions of LOIDs, so decoding must not re-allocate the names.
func (l *LOID) DecodeWire(r *wire.Reader) {
	l.Domain = r.Sym()
	l.Class = r.Sym()
	l.Instance = r.Uvarint()
}

// AppendWireSlice appends a length-prefixed LOID slice.
func AppendWireSlice(b []byte, ls []LOID) []byte {
	b = wire.AppendUvarint(b, uint64(len(ls)))
	for i := range ls {
		b = ls[i].AppendWire(b)
	}
	return b
}

// DecodeWireSlice consumes a LOID slice, reusing reuse's capacity.
func DecodeWireSlice(r *wire.Reader, reuse []LOID) []LOID {
	n := r.Len()
	if r.Err != nil || n == 0 {
		return nil
	}
	var out []LOID
	if cap(reuse) >= n {
		out = reuse[:n]
	} else {
		out = make([]LOID, n)
	}
	for i := range out {
		out[i].DecodeWire(r)
	}
	return out
}
