// Package loid implements Legion Object IDentifiers (LOIDs).
//
// Every object in a Legion metasystem — hosts, vaults, classes, instances,
// collections, enactors, schedulers — is named by a LOID. The paper treats
// LOIDs as opaque, location-independent names; the binding of a LOID to a
// communication endpoint is the job of the object runtime (package orb).
//
// This implementation gives LOIDs a small amount of structure, mirroring
// the real Legion system's hierarchical identifiers:
//
//	legion:<domain>/<class>/<instance>
//
// Domain identifies the administrative domain that created the object
// (site autonomy is a core Legion objective), class names the type
// ("Host", "Vault", "BasicClass", ...), and instance is a unique serial
// within (domain, class). The zero LOID is invalid and usable as a "no
// object" sentinel.
package loid

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// LOID is a Legion Object IDentifier. LOIDs are comparable and may be used
// as map keys. The zero value is the invalid "nil LOID".
type LOID struct {
	// Domain is the administrative domain that minted the identifier.
	Domain string
	// Class is the object's class name (e.g. "Host", "Vault").
	Class string
	// Instance is a serial number unique within (Domain, Class).
	Instance uint64
}

// Nil is the invalid zero LOID.
var Nil LOID

// IsNil reports whether l is the invalid zero LOID.
func (l LOID) IsNil() bool { return l == Nil }

// String renders the LOID in its canonical textual form,
// "legion:<domain>/<class>/<instance>". The nil LOID renders as
// "legion:nil".
func (l LOID) String() string {
	if l.IsNil() {
		return "legion:nil"
	}
	return fmt.Sprintf("legion:%s/%s/%d", l.Domain, l.Class, l.Instance)
}

// Short returns an abbreviated human-readable form, "<class>/<instance>",
// used in logs and traces where the domain is clear from context.
func (l LOID) Short() string {
	if l.IsNil() {
		return "nil"
	}
	return fmt.Sprintf("%s/%d", l.Class, l.Instance)
}

// Less imposes a total order on LOIDs (domain, class, instance), useful for
// producing deterministic iteration orders in schedules and reports.
func (l LOID) Less(o LOID) bool {
	if l.Domain != o.Domain {
		return l.Domain < o.Domain
	}
	if l.Class != o.Class {
		return l.Class < o.Class
	}
	return l.Instance < o.Instance
}

// Parse parses the canonical textual form produced by String. It accepts
// "legion:nil" and returns the nil LOID for it.
func Parse(s string) (LOID, error) {
	const prefix = "legion:"
	if !strings.HasPrefix(s, prefix) {
		return Nil, fmt.Errorf("loid: %q lacks %q prefix", s, prefix)
	}
	rest := s[len(prefix):]
	if rest == "nil" {
		return Nil, nil
	}
	parts := strings.Split(rest, "/")
	if len(parts) != 3 {
		return Nil, fmt.Errorf("loid: %q: want domain/class/instance", s)
	}
	if parts[0] == "" || parts[1] == "" {
		return Nil, fmt.Errorf("loid: %q: empty domain or class", s)
	}
	n, err := strconv.ParseUint(parts[2], 10, 64)
	if err != nil {
		return Nil, fmt.Errorf("loid: %q: bad instance: %v", s, err)
	}
	l := LOID{Domain: parts[0], Class: parts[1], Instance: n}
	if l.IsNil() {
		return Nil, fmt.Errorf("loid: %q parses to the nil LOID", s)
	}
	return l, nil
}

// MustParse is Parse but panics on error; intended for tests and
// compile-time-constant-like identifiers.
func MustParse(s string) LOID {
	l, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return l
}

// Minter mints fresh LOIDs for a domain. It is safe for concurrent use.
// In the real Legion system LOIDs embed public keys and are minted by
// class objects; here a per-domain atomic serial suffices to guarantee
// uniqueness within one metasystem.
type Minter struct {
	domain string
	next   atomic.Uint64
}

// NewMinter returns a Minter that mints LOIDs in the given administrative
// domain. Instance numbers start at 1 so that the zero LOID is never
// minted.
func NewMinter(domain string) *Minter {
	if domain == "" {
		panic("loid: empty domain")
	}
	return &Minter{domain: domain}
}

// Domain returns the administrative domain this Minter mints for.
func (m *Minter) Domain() string { return m.domain }

// Mint returns a fresh LOID for the given class name.
func (m *Minter) Mint(class string) LOID {
	if class == "" {
		panic("loid: empty class")
	}
	return LOID{Domain: m.domain, Class: class, Instance: m.next.Add(1)}
}
