package loid

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestStringParseRoundTrip(t *testing.T) {
	cases := []LOID{
		{Domain: "uva", Class: "Host", Instance: 1},
		{Domain: "sdsc", Class: "Vault", Instance: 42},
		{Domain: "a.b.c", Class: "BasicClass", Instance: 1 << 60},
	}
	for _, want := range cases {
		got, err := Parse(want.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", want.String(), err)
		}
		if got != want {
			t.Errorf("round trip: got %v want %v", got, want)
		}
	}
}

func TestParseNil(t *testing.T) {
	got, err := Parse("legion:nil")
	if err != nil || !got.IsNil() {
		t.Errorf("Parse(legion:nil) = %v, %v; want nil LOID", got, err)
	}
	if Nil.String() != "legion:nil" {
		t.Errorf("Nil.String() = %q", Nil.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"host/1",
		"legion:",
		"legion:uva/Host",
		"legion:uva/Host/1/2",
		"legion:/Host/1",
		"legion:uva//1",
		"legion:uva/Host/notanumber",
		"legion:uva/Host/-1",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): want error, got nil", s)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(dom, class string, inst uint64) bool {
		// Constrain to the character set LOIDs are minted with.
		if dom == "" || class == "" || inst == 0 {
			return true
		}
		for _, r := range dom + class {
			if r == '/' || r == '\n' || r < ' ' {
				return true
			}
		}
		l := LOID{Domain: dom, Class: class, Instance: inst}
		got, err := Parse(l.String())
		return err == nil && got == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLessIsStrictTotalOrder(t *testing.T) {
	ls := []LOID{
		{Domain: "a", Class: "A", Instance: 1},
		{Domain: "a", Class: "A", Instance: 2},
		{Domain: "a", Class: "B", Instance: 1},
		{Domain: "b", Class: "A", Instance: 1},
	}
	for i := range ls {
		if ls[i].Less(ls[i]) {
			t.Errorf("%v.Less(self) = true", ls[i])
		}
		for j := range ls {
			if i == j {
				continue
			}
			if ls[i].Less(ls[j]) == ls[j].Less(ls[i]) {
				t.Errorf("Less not antisymmetric for %v, %v", ls[i], ls[j])
			}
		}
	}
	for i := 0; i < len(ls)-1; i++ {
		if !ls[i].Less(ls[i+1]) {
			t.Errorf("want %v < %v", ls[i], ls[i+1])
		}
	}
}

func TestMinterUnique(t *testing.T) {
	m := NewMinter("uva")
	if m.Domain() != "uva" {
		t.Fatalf("Domain() = %q", m.Domain())
	}
	const n = 1000
	var mu sync.Mutex
	seen := make(map[LOID]bool, n)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				l := m.Mint("Host")
				mu.Lock()
				if seen[l] {
					t.Errorf("duplicate LOID %v", l)
				}
				seen[l] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != n {
		t.Errorf("minted %d unique, want %d", len(seen), n)
	}
	for l := range seen {
		if l.IsNil() || l.Instance == 0 {
			t.Errorf("minted invalid LOID %v", l)
		}
	}
}

func TestMinterPanics(t *testing.T) {
	assertPanics(t, func() { NewMinter("") })
	assertPanics(t, func() { NewMinter("d").Mint("") })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	f()
}

func TestShortAndMustParse(t *testing.T) {
	l := LOID{Domain: "uva", Class: "Host", Instance: 7}
	if l.Short() != "Host/7" {
		t.Errorf("Short = %q", l.Short())
	}
	if Nil.Short() != "nil" {
		t.Errorf("Nil.Short = %q", Nil.Short())
	}
	if MustParse(l.String()) != l {
		t.Error("MustParse round trip")
	}
	assertPanics(t, func() { MustParse("garbage") })
}
