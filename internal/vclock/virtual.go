package vclock

import (
	"container/heap"
	"context"
	"fmt"
	"sync"
	"time"
)

// Virtual is the deterministic discrete-event Clock.
//
// Model: a priority queue of pending events (timers, ticks, deadlines,
// goroutine starts) ordered by (virtual time, sequence number), plus a
// busy counter of registered goroutines that are currently runnable.
// The engine (Run / Advance / RunUntilIdle) fires exactly one event at
// a time and fires the next only after the busy count returns to zero —
// i.e. virtual time advances only when every registered goroutine is
// parked in a clock primitive. There is no sleep-and-hope: execution is
// fully serialized, so a fixed seed yields a bit-identical event trace.
//
// Rules for code running under a Virtual clock (enforced by panics
// where cheap, by review elsewhere; see DESIGN.md §13):
//
//   - every goroutine that parks (Sleep, Ticker.Wait, Gate.Wait,
//     Group.Wait) must be spawned via Go or be the root of Run;
//   - registered goroutines never block on bare channels, WaitGroups,
//     or network I/O — they use Gate/Group, and fan-out runs with
//     Parallelism=1;
//   - cancellation that must wake a parked goroutine flows through a
//     context created by this clock's WithTimeout (stdlib contexts work
//     but wake asynchronously, which costs determinism, not safety).
type Virtual struct {
	mu   sync.Mutex
	cond *sync.Cond

	start time.Time
	now   time.Time
	seq   uint64
	heap  eventHeap
	busy  int

	tracing bool
	trace   []string
}

// event is one scheduled occurrence. fire runs with v.mu held.
type event struct {
	at        time.Time
	seq       uint64
	kind      string
	cancelled bool
	fired     bool
	index     int
	fire      func(v *Virtual)
}

// eventHeap orders events by (time, seq) — seq breaks ties in
// registration order, which serialized execution makes deterministic.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// waiter is one parked goroutine awaiting a grant.
type waiter struct {
	ch      chan struct{}
	granted bool
	err     error
	ev      *event
}

// NewVirtual creates a virtual clock whose epoch is the current wall
// time. Anchoring near real time keeps any stdlib-derived deadline
// (code paths not yet threaded through the clock) from appearing
// already expired; determinism is unaffected because traces and all
// behaviour depend only on offsets from the epoch.
func NewVirtual() *Virtual { return NewVirtualAt(time.Now()) }

// NewVirtualAt creates a virtual clock with an explicit epoch.
func NewVirtualAt(epoch time.Time) *Virtual {
	v := &Virtual{start: epoch, now: epoch}
	v.cond = sync.NewCond(&v.mu)
	return v
}

// schedule registers an event; v.mu must be held.
func (v *Virtual) schedule(at time.Time, kind string, fire func(*Virtual)) *event {
	if at.Before(v.now) {
		at = v.now
	}
	v.seq++
	e := &event{at: at, seq: v.seq, kind: kind, fire: fire}
	heap.Push(&v.heap, e)
	return e
}

// cancelLocked marks e dead and removes it from the heap immediately.
// Lazy removal (skip-on-pop) would also be correct, but long-deadline
// context events are almost always cancelled well before they fire, and
// letting them pile up makes every heap operation pay for the corpses;
// v.mu must be held.
func (v *Virtual) cancelEventLocked(e *event) {
	if e == nil || e.cancelled || e.fired {
		return
	}
	e.cancelled = true
	if e.index >= 0 {
		heap.Remove(&v.heap, e.index)
	}
}

// grant wakes a parked waiter, handing it a busy credit so the engine
// waits for it before firing the next event; v.mu must be held.
func (v *Virtual) grant(w *waiter, err error) {
	if w.granted {
		return
	}
	w.granted = true
	w.err = err
	v.busy++
	close(w.ch)
}

// park releases the caller's busy credit and blocks until granted or
// ctx is done; v.mu must be held on entry and is released.
func (v *Virtual) park(ctx context.Context, w *waiter) error {
	v.busy--
	if v.busy < 0 {
		v.mu.Unlock()
		panic("vclock: park from a goroutine not registered with the virtual clock (spawn it via Clock.Go)")
	}
	v.cond.Broadcast()
	v.mu.Unlock()
	select {
	case <-w.ch:
		return w.err
	case <-ctx.Done():
		v.mu.Lock()
		if w.granted {
			v.mu.Unlock()
			// The grant raced the cancellation; the busy credit is
			// already ours either way.
			return w.err
		}
		w.granted = true
		v.cancelEventLocked(w.ev)
		v.busy++
		v.mu.Unlock()
		return ctx.Err()
	}
}

// attachCtx registers w with ctx when ctx is one of this clock's
// virtual contexts, so cancellation grants the waiter synchronously
// (serialized) instead of waking it through the select race; v.mu held.
func (v *Virtual) attachCtx(ctx context.Context, w *waiter) {
	if c, ok := ctx.(*vctx); ok && c.v == v && c.err == nil {
		c.waiters = append(c.waiters, w)
	}
}

func (v *Virtual) exitBusy() {
	v.mu.Lock()
	v.busy--
	v.cond.Broadcast()
	v.mu.Unlock()
}

// --- Clock interface ---

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since is Now().Sub(t) in virtual time.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Until is t.Sub(Now()) in virtual time.
func (v *Virtual) Until(t time.Time) time.Duration { return t.Sub(v.Now()) }

// Elapsed is the virtual time passed since the epoch.
func (v *Virtual) Elapsed() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now.Sub(v.start)
}

// Sleep parks the calling (registered) goroutine for d of virtual time.
func (v *Virtual) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	v.mu.Lock()
	w := &waiter{ch: make(chan struct{})}
	w.ev = v.schedule(v.now.Add(d), "sleep", func(v *Virtual) { v.grant(w, nil) })
	v.attachCtx(ctx, w)
	return v.park(ctx, w)
}

// After returns a one-shot channel; see the interface note — only
// unregistered (driver-side) goroutines may block on it.
func (v *Virtual) After(d time.Duration) <-chan time.Time { return v.NewTimer(d).C() }

// AfterFunc schedules f to run after d on a registered goroutine.
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	t := &vtimer{v: v}
	t.ev = v.schedule(v.now.Add(d), "afterfunc", func(v *Virtual) {
		v.busy++
		go func() {
			defer v.exitBusy()
			f()
		}()
	})
	return t
}

// NewTimer returns a one-shot timer delivering the virtual fire time
// on a buffered channel.
func (v *Virtual) NewTimer(d time.Duration) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	t := &vtimer{v: v, ch: make(chan time.Time, 1)}
	t.arm(d)
	return t
}

// NewTicker returns a virtual ticker; consumers loop on Wait.
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("vclock: non-positive ticker period")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return &vticker{v: v, period: d, next: v.now.Add(d)}
}

// Go registers f with the barrier and schedules its start at the
// current virtual time; it begins running once every currently
// runnable goroutine has parked.
func (v *Virtual) Go(f func()) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.schedule(v.now, "go", func(v *Virtual) {
		v.busy++
		go func() {
			defer v.exitBusy()
			f()
		}()
	})
}

// NewGate returns a virtual Gate.
func (v *Virtual) NewGate() Gate { return &vgate{v: v} }

// NewGroup returns a virtual Group.
func (v *Virtual) NewGroup() Group { return &vgroup{v: v} }

// --- engine ---

// peekLocked discards cancelled events and returns the next live one
// without popping, or nil.
func (v *Virtual) peekLocked() *event {
	for v.heap.Len() > 0 {
		e := v.heap[0]
		if e.cancelled {
			heap.Pop(&v.heap)
			continue
		}
		return e
	}
	return nil
}

// stepLocked fires the earliest pending event, advancing now to its
// time; it reports whether an event fired.
func (v *Virtual) stepLocked() bool {
	e := v.peekLocked()
	if e == nil {
		return false
	}
	heap.Pop(&v.heap)
	if e.at.After(v.now) {
		v.now = e.at
	}
	e.fired = true
	if v.tracing {
		v.trace = append(v.trace,
			fmt.Sprintf("+%012dus #%06d %s", v.now.Sub(v.start).Microseconds(), e.seq, e.kind))
	}
	e.fire(v)
	return true
}

func (v *Virtual) waitQuietLocked() {
	for v.busy > 0 {
		v.cond.Wait()
	}
}

// Advance moves virtual time forward by d, firing every event due in
// the window in order and waiting for full quiescence between events.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	v.advanceToLocked(v.now.Add(d))
	v.mu.Unlock()
}

// AdvanceTo is Advance to an absolute virtual time.
func (v *Virtual) AdvanceTo(t time.Time) {
	v.mu.Lock()
	v.advanceToLocked(t)
	v.mu.Unlock()
}

func (v *Virtual) advanceToLocked(t time.Time) {
	for {
		v.waitQuietLocked()
		e := v.peekLocked()
		if e == nil || e.at.After(t) {
			break
		}
		v.stepLocked()
	}
	if t.After(v.now) {
		v.now = t
	}
}

// RunUntilIdle fires events (waiting for quiescence between them)
// until none remain. It does not terminate while periodic work — a
// ticker loop that re-arms itself — is still live; bound those loops
// with a context or use Advance.
func (v *Virtual) RunUntilIdle() {
	v.mu.Lock()
	for {
		v.waitQuietLocked()
		if !v.stepLocked() {
			break
		}
	}
	v.mu.Unlock()
}

// Run executes fn as a registered goroutine and drives the event loop
// until fn returns, however much virtual time that takes. Background
// periodic events keep firing while fn is blocked; they are left
// pending when Run returns. Run panics if fn parks with no pending
// events to wake anything (a guaranteed deadlock — some goroutine
// blocked outside the clock's primitives).
func (v *Virtual) Run(fn func()) {
	finished := false
	v.Go(func() {
		defer func() {
			v.mu.Lock()
			finished = true
			v.cond.Broadcast()
			v.mu.Unlock()
		}()
		fn()
	})
	v.mu.Lock()
	for !finished {
		for v.busy > 0 && !finished {
			v.cond.Wait()
		}
		if finished {
			break
		}
		if !v.stepLocked() {
			v.mu.Unlock()
			panic("vclock: deadlock: all goroutines parked with no pending events " +
				"(a goroutine is blocked outside the clock's primitives)")
		}
	}
	v.mu.Unlock()
}

// --- tracing ---

// StartTrace clears the trace buffer and begins recording one line per
// fired event: "+<offset-us> #<seq> <kind>". Under serialized
// execution the trace is a pure function of the workload and its
// seeds, which is the determinism proof the chaos experiments commit.
func (v *Virtual) StartTrace() {
	v.mu.Lock()
	v.tracing = true
	v.trace = nil
	v.mu.Unlock()
}

// Trace returns a copy of the recorded event trace.
func (v *Virtual) Trace() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]string(nil), v.trace...)
}

// PendingEvents returns how many live events are scheduled (tests and
// leak checks).
func (v *Virtual) PendingEvents() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, e := range v.heap {
		if !e.cancelled {
			n++
		}
	}
	return n
}

// --- timers & tickers ---

type vtimer struct {
	v  *Virtual
	ch chan time.Time // nil for AfterFunc
	ev *event
}

func (t *vtimer) C() <-chan time.Time { return t.ch }

// arm schedules the fire event; v.mu must be held.
func (t *vtimer) arm(d time.Duration) {
	t.ev = t.v.schedule(t.v.now.Add(d), "timer", func(v *Virtual) {
		if t.ch != nil {
			select {
			case t.ch <- v.now:
			default:
			}
		}
	})
}

func (t *vtimer) Stop() bool {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	active := t.ev != nil && !t.ev.fired && !t.ev.cancelled
	t.v.cancelEventLocked(t.ev)
	return active
}

func (t *vtimer) Reset(d time.Duration) bool {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	active := t.ev != nil && !t.ev.fired && !t.ev.cancelled
	t.v.cancelEventLocked(t.ev)
	if t.ch == nil {
		// AfterFunc timer: re-arm the original callback.
		old := t.ev
		t.ev = t.v.schedule(t.v.now.Add(d), "afterfunc", old.fire)
		return active
	}
	t.arm(d)
	return active
}

type vticker struct {
	v       *Virtual
	period  time.Duration
	next    time.Time
	stopped bool
}

func (t *vticker) Wait(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t.v.mu.Lock()
	if t.stopped {
		t.v.mu.Unlock()
		return context.Canceled
	}
	at := t.next
	if at.Before(t.v.now) {
		at = t.v.now // fell behind: fire immediately, no backlog
	}
	t.next = at.Add(t.period)
	w := &waiter{ch: make(chan struct{})}
	w.ev = t.v.schedule(at, "tick", func(v *Virtual) { v.grant(w, nil) })
	t.v.attachCtx(ctx, w)
	return t.v.park(ctx, w)
}

func (t *vticker) Stop() {
	t.v.mu.Lock()
	t.stopped = true
	t.v.mu.Unlock()
}

// --- gate & group ---

type vgate struct {
	v      *Virtual
	tokens int
	waiter *waiter
}

func (g *vgate) Signal() {
	g.v.mu.Lock()
	defer g.v.mu.Unlock()
	if g.waiter != nil && !g.waiter.granted {
		w := g.waiter
		g.waiter = nil
		g.v.grant(w, nil)
		return
	}
	g.tokens++
}

func (g *vgate) Wait(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	g.v.mu.Lock()
	if g.tokens > 0 {
		g.tokens--
		g.v.mu.Unlock()
		return nil
	}
	if g.waiter != nil {
		g.v.mu.Unlock()
		panic("vclock: concurrent Gate.Wait (single-waiter contract)")
	}
	w := &waiter{ch: make(chan struct{})}
	g.waiter = w
	g.v.attachCtx(ctx, w)
	err := g.v.park(ctx, w)
	if err != nil {
		// Cancelled: detach so a later Signal deposits a token instead
		// of granting a dead waiter.
		g.v.mu.Lock()
		if g.waiter == w {
			g.waiter = nil
		}
		g.v.mu.Unlock()
	}
	return err
}

type vgroup struct {
	v       *Virtual
	n       int
	waiters []*waiter
}

func (g *vgroup) Add(n int) {
	g.v.mu.Lock()
	defer g.v.mu.Unlock()
	g.n += n
	if g.n < 0 {
		panic("vclock: negative Group counter")
	}
	if g.n == 0 {
		for _, w := range g.waiters {
			g.v.grant(w, nil)
		}
		g.waiters = nil
	}
}

func (g *vgroup) Done() { g.Add(-1) }

func (g *vgroup) Wait(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	g.v.mu.Lock()
	if g.n == 0 {
		g.v.mu.Unlock()
		return nil
	}
	w := &waiter{ch: make(chan struct{})}
	g.waiters = append(g.waiters, w)
	g.v.attachCtx(ctx, w)
	return g.v.park(ctx, w)
}
