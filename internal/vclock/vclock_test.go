package vclock

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestVirtualNowAdvance(t *testing.T) {
	v := NewVirtual()
	t0 := v.Now()
	v.Advance(5 * time.Second)
	if got := v.Since(t0); got != 5*time.Second {
		t.Fatalf("Since = %v, want 5s", got)
	}
	v.AdvanceTo(t0.Add(7 * time.Second))
	if got := v.Elapsed(); got != 7*time.Second {
		t.Fatalf("Elapsed = %v, want 7s", got)
	}
}

func TestVirtualSleepOrdering(t *testing.T) {
	v := NewVirtual()
	var mu sync.Mutex
	var order []string
	sleeper := func(name string, d time.Duration) func() {
		return func() {
			_ = v.Sleep(context.Background(), d)
			mu.Lock()
			order = append(order, fmt.Sprintf("%s@%v", name, v.Elapsed()))
			mu.Unlock()
		}
	}
	v.Go(sleeper("c", 30*time.Millisecond))
	v.Go(sleeper("a", 10*time.Millisecond))
	v.Go(sleeper("b", 20*time.Millisecond))
	v.RunUntilIdle()
	want := []string{"a@10ms", "b@20ms", "c@30ms"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestVirtualRun(t *testing.T) {
	v := NewVirtual()
	done := false
	v.Run(func() {
		for i := 0; i < 100; i++ {
			_ = v.Sleep(context.Background(), time.Millisecond)
		}
		done = true
	})
	if !done {
		t.Fatal("Run returned before fn finished")
	}
	if got := v.Elapsed(); got != 100*time.Millisecond {
		t.Fatalf("Elapsed = %v, want 100ms", got)
	}
}

func TestVirtualSleepCancel(t *testing.T) {
	v := NewVirtual()
	ctx, cancel := v.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	var err error
	v.Run(func() {
		err = v.Sleep(ctx, time.Hour)
	})
	if err != context.DeadlineExceeded {
		t.Fatalf("Sleep err = %v, want DeadlineExceeded", err)
	}
	if got := v.Elapsed(); got != 10*time.Millisecond {
		t.Fatalf("woke at %v, want 10ms", got)
	}
}

func TestVirtualWithTimeoutDeadline(t *testing.T) {
	v := NewVirtual()
	ctx, cancel := v.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok || !dl.Equal(v.Now().Add(time.Minute)) {
		t.Fatalf("Deadline = %v,%v; want virtual now+1m", dl, ok)
	}
	if ctx.Err() != nil {
		t.Fatalf("fresh ctx Err = %v", ctx.Err())
	}
	v.Advance(time.Minute)
	if ctx.Err() != context.DeadlineExceeded {
		t.Fatalf("expired ctx Err = %v, want DeadlineExceeded", ctx.Err())
	}
	select {
	case <-ctx.Done():
	default:
		t.Fatal("Done channel not closed after deadline")
	}
}

func TestVirtualWithTimeoutParentCancel(t *testing.T) {
	v := NewVirtual()
	parent, pcancel := v.WithTimeout(context.Background(), time.Hour)
	child, ccancel := v.WithTimeout(parent, time.Hour)
	defer ccancel()
	pcancel()
	if child.Err() != context.Canceled {
		t.Fatalf("child Err = %v, want Canceled after parent cancel", child.Err())
	}
}

func TestVirtualWithTimeoutStdlibParent(t *testing.T) {
	v := NewVirtual()
	parent, pcancel := context.WithCancel(context.Background())
	child, ccancel := v.WithTimeout(parent, time.Hour)
	defer ccancel()
	pcancel()
	<-child.Done()
	if child.Err() != context.Canceled {
		t.Fatalf("child Err = %v, want Canceled", child.Err())
	}
}

func TestVirtualTicker(t *testing.T) {
	v := NewVirtual()
	var ticks []time.Duration
	v.Run(func() {
		tk := v.NewTicker(10 * time.Millisecond)
		defer tk.Stop()
		for i := 0; i < 3; i++ {
			if err := tk.Wait(context.Background()); err != nil {
				t.Errorf("Wait: %v", err)
				return
			}
			ticks = append(ticks, v.Elapsed())
			// Simulate slow consumer on the second tick: the ticker
			// fires once immediately, then resumes its schedule.
			if i == 0 {
				_ = v.Sleep(context.Background(), 25*time.Millisecond)
			}
		}
	})
	want := []time.Duration{10 * time.Millisecond, 35 * time.Millisecond, 45 * time.Millisecond}
	if fmt.Sprint(ticks) != fmt.Sprint(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
}

func TestVirtualGate(t *testing.T) {
	v := NewVirtual()
	g := v.NewGate()
	var got []string
	v.Go(func() {
		_ = v.Sleep(context.Background(), 5*time.Millisecond)
		got = append(got, "signal")
		g.Signal()
	})
	v.Run(func() {
		if err := g.Wait(context.Background()); err != nil {
			t.Errorf("Wait: %v", err)
		}
		got = append(got, "woke")
	})
	if fmt.Sprint(got) != "[signal woke]" {
		t.Fatalf("got %v", got)
	}
	// Token deposited before Wait is consumed without parking.
	g.Signal()
	if err := g.Wait(context.Background()); err != nil {
		t.Fatalf("token Wait: %v", err)
	}
}

func TestVirtualGroup(t *testing.T) {
	v := NewVirtual()
	g := v.NewGroup()
	g.Add(3)
	var sum time.Duration
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * 10 * time.Millisecond
		v.Go(func() {
			_ = v.Sleep(context.Background(), d)
			g.Done()
		})
	}
	v.Run(func() {
		if err := g.Wait(context.Background()); err != nil {
			t.Errorf("Wait: %v", err)
		}
		sum = v.Elapsed()
	})
	if sum != 30*time.Millisecond {
		t.Fatalf("group joined at %v, want 30ms", sum)
	}
}

func TestVirtualAfterFunc(t *testing.T) {
	v := NewVirtual()
	fired := 0
	tm := v.AfterFunc(10*time.Millisecond, func() { fired++ })
	v.Advance(5 * time.Millisecond)
	if fired != 0 {
		t.Fatal("fired early")
	}
	if !tm.Stop() {
		t.Fatal("Stop on pending timer = false")
	}
	v.Advance(20 * time.Millisecond)
	if fired != 0 {
		t.Fatal("fired after Stop")
	}
	tm.Reset(10 * time.Millisecond)
	v.Advance(10 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 after Reset", fired)
	}
}

func TestVirtualTraceDeterminism(t *testing.T) {
	run := func(seed int64) []string {
		v := NewVirtual()
		v.StartTrace()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 20; i++ {
			d := time.Duration(rng.Intn(50)) * time.Millisecond
			v.Go(func() { _ = v.Sleep(context.Background(), d) })
		}
		v.RunUntilIdle()
		return v.Trace()
	}
	a, b := run(7), run(7)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same-seed traces differ:\n%v\n%v", a, b)
	}
	c := run(8)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different-seed traces identical (trace not capturing schedule)")
	}
}

func TestVirtualRunDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	v := NewVirtual()
	g := v.NewGate()
	v.Run(func() {
		_ = g.Wait(context.Background()) // nothing will ever Signal
	})
}

func TestWallClockBasics(t *testing.T) {
	c := Default(nil)
	t0 := c.Now()
	if err := c.Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	if c.Since(t0) <= 0 {
		t.Fatal("time did not advance")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Sleep(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("cancelled Sleep err = %v", err)
	}
	g := c.NewGate()
	g.Signal()
	if err := g.Wait(context.Background()); err != nil {
		t.Fatalf("gate: %v", err)
	}
	grp := c.NewGroup()
	grp.Add(1)
	go grp.Done()
	if err := grp.Wait(context.Background()); err != nil {
		t.Fatalf("group: %v", err)
	}
}

// --- property test (satellite 2): randomized timer operations against
// a model oracle. Invariants: a timer fires never early, at most once,
// and exactly once unless stopped/reset while pending; fires are
// observed in nondecreasing virtual-time order.

type modelTimer struct {
	id      int
	due     time.Duration // elapsed-at-fire per the model; -1 when inactive
	fired   bool
	stopped bool
}

func TestVirtualTimerProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			v := NewVirtual()
			epoch := v.Now()

			type firing struct {
				id int
				at time.Duration
			}
			var mu sync.Mutex
			var fires []firing

			var timers []Timer
			var model []*modelTimer

			elapsed := func() time.Duration { return v.Now().Sub(epoch) }

			// consume checks fire records appended since the last call
			// against the model's state as armed at fire time: never
			// early, never after a Stop, at most once per arming.
			processed := 0
			consume := func(step int) {
				mu.Lock()
				defer mu.Unlock()
				for ; processed < len(fires); processed++ {
					f := fires[processed]
					m := model[f.id]
					switch {
					case m.stopped:
						t.Fatalf("step %d: timer #%d fired after Stop", step, f.id)
					case m.fired:
						t.Fatalf("step %d: timer #%d fired twice for one arming", step, f.id)
					case f.at < m.due:
						t.Fatalf("step %d: timer #%d fired early: at %v, due %v", step, f.id, f.at, m.due)
					}
					m.fired = true
				}
			}

			for step := 0; step < 200; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // create
					id := len(timers)
					d := time.Duration(rng.Intn(100)) * time.Millisecond
					m := &modelTimer{id: id, due: elapsed() + d}
					tm := v.AfterFunc(d, func() {
						mu.Lock()
						fires = append(fires, firing{id: id, at: elapsed()})
						mu.Unlock()
					})
					timers = append(timers, tm)
					model = append(model, m)
				case op < 6 && len(timers) > 0: // stop
					i := rng.Intn(len(timers))
					wasPending := !model[i].fired && !model[i].stopped
					got := timers[i].Stop()
					if got != wasPending {
						t.Fatalf("step %d: Stop(#%d) = %v, model pending = %v", step, i, got, wasPending)
					}
					model[i].stopped = true
				case op < 8 && len(timers) > 0: // reset
					i := rng.Intn(len(timers))
					d := time.Duration(rng.Intn(100)) * time.Millisecond
					wasPending := !model[i].fired && !model[i].stopped
					got := timers[i].Reset(d)
					if got != wasPending {
						t.Fatalf("step %d: Reset(#%d) = %v, model pending = %v", step, i, got, wasPending)
					}
					model[i].stopped = false
					model[i].fired = false
					model[i].due = elapsed() + d
				default: // advance
					v.Advance(time.Duration(rng.Intn(40)) * time.Millisecond)
					consume(step)
				}
			}
			v.RunUntilIdle()
			v.Advance(time.Second) // flush everything still due
			consume(200)

			mu.Lock()
			defer mu.Unlock()

			// Fires are observed in nondecreasing virtual-time order.
			if !sort.SliceIsSorted(fires, func(i, j int) bool { return fires[i].at < fires[j].at }) {
				t.Fatalf("fires out of order: %v", fires)
			}
			// Exactly-once: every armed, never-stopped timer has fired
			// by now (the final Advance flushed a full second past any
			// due time); duplicates and post-Stop fires were caught in
			// consume.
			for i, m := range model {
				if !m.stopped && !m.fired {
					t.Fatalf("timer #%d due %v never fired", i, m.due)
				}
			}
		})
	}
}

// TestVirtualSleepNeverEarly pins the no-early-wake invariant for Sleep
// across randomized schedules.
func TestVirtualSleepNeverEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	v := NewVirtual()
	var mu sync.Mutex
	violations := 0
	for i := 0; i < 100; i++ {
		d := time.Duration(rng.Intn(200)) * time.Millisecond
		start := v.Now()
		v.Go(func() {
			_ = v.Sleep(context.Background(), d)
			mu.Lock()
			if v.Now().Sub(start) < d {
				violations++
			}
			mu.Unlock()
		})
	}
	v.RunUntilIdle()
	if violations > 0 {
		t.Fatalf("%d early wakes", violations)
	}
}
