// Package vclock abstracts time for the Legion reproduction: every
// subsystem that sleeps, backs off, ticks, or arms a deadline does so
// through a Clock, so the same production code runs against the wall
// clock (Wall) or against a deterministic discrete-event clock
// (Virtual) that advances only when every participating goroutine is
// parked.
//
// The virtual mode exists for scale and determinism (ROADMAP item 2,
// GridSim-style simulation): one process can push 100k+ hosts and a
// million placement requests through the real Scheduler → Collection →
// Enactor → Host pipeline in virtual time, and chaos storms replay
// bit-identically from a seed because nothing waits on the scheduler's
// whims — see DESIGN.md §13 for the architecture and the rules
// virtual-mode code must follow (spawn via Clock.Go, block only through
// Clock primitives, Parallelism=1).
package vclock

import (
	"context"
	"time"
)

// Clock is the time source and parking substrate. Implementations:
// Wall (real time) and *Virtual (discrete-event time).
type Clock interface {
	// Now returns the current (real or virtual) time.
	Now() time.Time
	// Since is Now().Sub(t).
	Since(t time.Time) time.Duration
	// Until is t.Sub(Now()).
	Until(t time.Time) time.Duration
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in
	// the latter case. A non-positive d returns immediately.
	Sleep(ctx context.Context, d time.Duration) error
	// After returns a channel delivering the clock's time after d. In
	// virtual mode only the Advance driver (or an unparked goroutine)
	// may select on it — a registered goroutine blocking on a bare
	// channel stalls the barrier; registered code uses Sleep.
	After(d time.Duration) <-chan time.Time
	// AfterFunc runs f after d on its own goroutine (registered, in
	// virtual mode). The returned Timer has a nil C.
	AfterFunc(d time.Duration, f func()) Timer
	// NewTimer returns a one-shot Timer delivering on C after d.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a Ticker with the given period. Virtual-safe
	// consumers loop on Wait rather than selecting on a channel.
	NewTicker(d time.Duration) Ticker
	// WithTimeout derives a context whose deadline is d from now on
	// this clock. In virtual mode the deadline is a scheduled event and
	// Deadline() reports a virtual time.
	WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc)
	// Go spawns f as a participating goroutine. In virtual mode the
	// goroutine is registered with the barrier: virtual time cannot
	// advance while it is runnable. All goroutines that touch this
	// clock's parking primitives MUST be spawned through Go (or be the
	// root function of Virtual.Run).
	Go(f func())
	// NewGate returns a single-waiter wakeup gate (see Gate).
	NewGate() Gate
	// NewGroup returns a cancellable WaitGroup analogue (see Group).
	NewGroup() Group
}

// Timer is a one-shot timer. Stop and Reset report whether the timer
// was still pending, with time.Timer semantics.
type Timer interface {
	// C delivers the fire time; nil for AfterFunc timers.
	C() <-chan time.Time
	// Stop cancels the pending fire; it reports whether it was pending.
	Stop() bool
	// Reset re-arms the timer for d from now; it reports whether the
	// timer was still pending.
	Reset(d time.Duration) bool
}

// Ticker fires repeatedly. Consumers call Wait in a loop; in virtual
// mode Wait parks the goroutine so the barrier can advance time.
// Like time.Ticker, a Ticker that falls behind does not accumulate a
// backlog: the next Wait fires immediately (once), then the schedule
// resumes from there.
type Ticker interface {
	// Wait blocks until the next tick or ctx cancellation.
	Wait(ctx context.Context) error
	// Stop releases the ticker; pending Waits return via their ctx.
	Stop()
}

// Gate is a single-waiter handoff: Signal deposits a token (never
// blocking), Wait consumes one or parks until one arrives. It replaces
// the `ch := make(chan struct{}, 1); ch <- x / <-ch` idiom on paths a
// virtual-mode goroutine blocks on: parking through the Gate releases
// the barrier, and a Signal from a registered goroutine hands its busy
// credit to the waiter so execution stays serialized. At most one
// goroutine may Wait at a time.
type Gate interface {
	Signal()
	Wait(ctx context.Context) error
}

// Group is a WaitGroup whose Wait is context-cancellable and, in
// virtual mode, barrier-aware. The chaos storm uses it to join its
// in-flight arrival goroutines without stalling virtual time.
type Group interface {
	Add(n int)
	Done()
	Wait(ctx context.Context) error
}

// Default returns c, or Wall when c is nil — config structs carry a
// nil Clock to mean "real time".
func Default(c Clock) Clock {
	if c == nil {
		return Wall
	}
	return c
}
