package vclock

import (
	"context"
	"sync/atomic"
	"time"
)

// vctx is a context whose deadline lives on the virtual clock: expiry
// is a scheduled event, so code that checks Deadline()/Err() or parks
// against the context sees virtual time, not wall time. Cancellation
// of parked waiters is granted under the clock mutex, keeping wakeups
// inside the serialized event order.
type vctx struct {
	context.Context // parent (values, parent Done as fallback)

	v        *Virtual
	deadline time.Time
	done     chan struct{}
	err      error // guarded by v.mu
	ev       *event
	waiters  []*waiter
	children []*vctx
	detach   func() // remove self from a vctx parent's children
	stop     atomic.Bool
}

// vctxKey lets WithTimeout find the nearest vctx ancestor through
// stdlib wrappers (context.WithValue from tracing, etc.) that would
// otherwise hide it from a direct type assertion.
type vctxKey struct{}

func (c *vctx) Value(key any) any {
	if _, ok := key.(vctxKey); ok {
		return c
	}
	return c.Context.Value(key)
}

// WithTimeout derives a context whose deadline is d of virtual time
// from now. Parent cancellation propagates: synchronously (serialized)
// for parents created by this clock, via a watcher goroutine for
// arbitrary cancellable parents.
func (v *Virtual) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	p, isOurs := parent.(*vctx)
	if !isOurs {
		// The parent may be a vctx under stdlib wrapper layers (tracing
		// adds context.WithValue on every call path). If the nearest
		// vctx ancestor's done channel IS the parent's done channel, no
		// cancellable stdlib context sits between them, so linking to
		// the ancestor is exact — and keeps cancellation on the
		// synchronous serialized path instead of a watcher goroutine.
		if pv, ok := parent.Value(vctxKey{}).(*vctx); ok && parent.Done() == pv.done {
			p, isOurs = pv, true
		}
	}
	isOurs = isOurs && p.v == v
	var perr error
	if !isOurs {
		// Safe to ask outside v.mu; a vctx parent's err is read under
		// the lock below instead (its Err() would re-lock v.mu).
		perr = parent.Err()
	}
	v.mu.Lock()
	c := &vctx{
		Context:  parent,
		v:        v,
		deadline: v.now.Add(d),
		done:     make(chan struct{}),
	}
	if pd, ok := parent.Deadline(); ok && pd.Before(c.deadline) {
		c.deadline = pd
	}
	if isOurs {
		perr = p.err
	}
	if perr != nil {
		c.cancelLocked(perr)
		v.mu.Unlock()
		return c, func() {}
	}
	c.ev = v.schedule(c.deadline, "ctx-deadline", func(v *Virtual) {
		c.cancelLocked(context.DeadlineExceeded)
	})
	if isOurs {
		p.children = append(p.children, c)
		c.detach = func() {
			for i, ch := range p.children {
				if ch == c {
					p.children = append(p.children[:i], p.children[i+1:]...)
					break
				}
			}
		}
	} else if parent.Done() != nil {
		// Arbitrary cancellable parent: watch it from an unregistered
		// goroutine. The watcher takes the self-grant path (busy++ under
		// the lock), so safety holds; the wakeup lands between events
		// rather than at a scheduled one, which is the documented
		// nondeterminism window for stdlib contexts in virtual mode.
		go func() {
			select {
			case <-parent.Done():
				// Read the parent's error BEFORE taking v.mu: if the
				// parent chain bottoms out in a vctx, its Err() takes
				// v.mu too, and taking it while holding it self-deadlocks
				// the whole clock.
				err := parent.Err()
				v.mu.Lock()
				c.cancelLocked(err)
				v.mu.Unlock()
			case <-c.done:
			}
		}()
	}
	v.mu.Unlock()
	cancel := func() {
		if c.stop.CompareAndSwap(false, true) {
			v.mu.Lock()
			c.cancelLocked(context.Canceled)
			v.mu.Unlock()
		}
	}
	return c, cancel
}

// cancelLocked finalizes the context with err; v.mu must be held.
// Idempotent. Grants parked waiters and cascades to child contexts,
// all inside the same serialized critical section.
func (c *vctx) cancelLocked(err error) {
	if c.err != nil {
		return
	}
	c.err = err
	c.v.cancelEventLocked(c.ev)
	if c.detach != nil {
		c.detach()
		c.detach = nil
	}
	close(c.done)
	for _, w := range c.waiters {
		c.v.cancelEventLocked(w.ev)
		c.v.grant(w, err)
	}
	c.waiters = nil
	for _, ch := range c.children {
		ch.cancelLocked(context.Canceled)
	}
	c.children = nil
}

func (c *vctx) Deadline() (time.Time, bool) { return c.deadline, true }
func (c *vctx) Done() <-chan struct{}       { return c.done }

func (c *vctx) Err() error {
	c.v.mu.Lock()
	defer c.v.mu.Unlock()
	return c.err
}
