package vclock

import (
	"context"
	"sync"
	"time"
)

// Wall is the real-time Clock: thin wrappers over package time and
// context. It is the default everywhere a Clock is not configured.
var Wall Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time                  { return time.Now() }
func (wallClock) Since(t time.Time) time.Duration { return time.Since(t) }
func (wallClock) Until(t time.Time) time.Duration { return time.Until(t) }

func (wallClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (wallClock) AfterFunc(d time.Duration, f func()) Timer {
	return wallTimer{t: time.AfterFunc(d, f)}
}

func (wallClock) NewTimer(d time.Duration) Timer {
	return wallTimer{t: time.NewTimer(d)}
}

func (wallClock) NewTicker(d time.Duration) Ticker {
	return &wallTicker{t: time.NewTicker(d)}
}

func (wallClock) WithTimeout(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(parent, d)
}

func (wallClock) Go(f func()) { go f() }

func (wallClock) NewGate() Gate   { return &wallGate{} }
func (wallClock) NewGroup() Group { return &wallGroup{} }

// wallTimer adapts *time.Timer.
type wallTimer struct{ t *time.Timer }

func (w wallTimer) C() <-chan time.Time        { return w.t.C }
func (w wallTimer) Stop() bool                 { return w.t.Stop() }
func (w wallTimer) Reset(d time.Duration) bool { return w.t.Reset(d) }

// wallTicker adapts *time.Ticker with a cancellable Wait.
type wallTicker struct{ t *time.Ticker }

func (w *wallTicker) Wait(ctx context.Context) error {
	select {
	case <-w.t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (w *wallTicker) Stop() { w.t.Stop() }

// wallGate is the real-time Gate: a token count plus a one-slot wake
// channel (single waiter by contract).
type wallGate struct {
	mu     sync.Mutex
	tokens int
	wake   chan struct{}
}

func (g *wallGate) Signal() {
	g.mu.Lock()
	g.tokens++
	wake := g.wake
	g.mu.Unlock()
	if wake != nil {
		select {
		case wake <- struct{}{}:
		default:
		}
	}
}

func (g *wallGate) Wait(ctx context.Context) error {
	g.mu.Lock()
	if g.wake == nil {
		g.wake = make(chan struct{}, 1)
	}
	wake := g.wake
	g.mu.Unlock()
	for {
		g.mu.Lock()
		if g.tokens > 0 {
			g.tokens--
			g.mu.Unlock()
			return nil
		}
		g.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// wallGroup is the real-time Group: counter plus broadcast channels.
type wallGroup struct {
	mu      sync.Mutex
	n       int
	waiters []chan struct{}
}

func (g *wallGroup) Add(n int) {
	g.mu.Lock()
	g.n += n
	if g.n < 0 {
		g.mu.Unlock()
		panic("vclock: negative Group counter")
	}
	done := g.n == 0
	var ws []chan struct{}
	if done {
		ws, g.waiters = g.waiters, nil
	}
	g.mu.Unlock()
	for _, ch := range ws {
		close(ch)
	}
}

func (g *wallGroup) Done() { g.Add(-1) }

func (g *wallGroup) Wait(ctx context.Context) error {
	g.mu.Lock()
	if g.n == 0 {
		g.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	g.waiters = append(g.waiters, ch)
	g.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
