package telemetry

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketEdges pins the boundary semantics: an observation
// exactly at a bucket's upper bound counts in that bucket, not the next.
func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})

	cases := []struct {
		v      float64
		bucket int // index into counts; 3 = +Inf overflow
	}{
		{0, 0},
		{0.5, 0},
		{1, 0}, // exactly at the edge -> le="1"
		{1.0001, 1},
		{2, 1}, // exactly at the edge -> le="2"
		{4.999, 2},
		{5, 2},
		{5.0001, 3}, // above the last bound -> +Inf
		{1e9, 3},
	}
	for _, c := range cases {
		before := snapshotCounts(h)
		h.Observe(c.v)
		after := snapshotCounts(h)
		for i := range after {
			want := before[i]
			if i == c.bucket {
				want++
			}
			if after[i] != want {
				t.Errorf("Observe(%g): bucket[%d] = %d, want %d", c.v, i, after[i], want)
			}
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(cases))
	}
}

func snapshotCounts(h *Histogram) []int64 {
	_, counts := h.Buckets()
	return counts
}

func TestHistogramSumMean(t *testing.T) {
	h := newHistogram(LatencyBuckets)
	for _, v := range []float64{0.001, 0.002, 0.003} {
		h.Observe(v)
	}
	if got := h.Sum(); got < 0.0059 || got > 0.0061 {
		t.Errorf("Sum = %g, want ~0.006", got)
	}
	if got := h.Mean(); got < 0.0019 || got > 0.0021 {
		t.Errorf("Mean = %g, want ~0.002", got)
	}
}

// TestConcurrentCounters hammers one counter, one gauge, and one
// histogram from many goroutines; run under -race this is the data-race
// check, and the totals check the arithmetic.
func TestConcurrentCounters(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h", LatencyBuckets)

	const workers, each = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*each {
		t.Errorf("counter = %d, want %d", c.Value(), workers*each)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != workers*each {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*each)
	}
}

// TestRegistryHandleIdentity: same (name, labels) yields the same
// handle; different labels yield different handles.
func TestRegistryHandleIdentity(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x", "method", "m1")
	b := reg.Counter("x", "method", "m1")
	c := reg.Counter("x", "method", "m2")
	if a != b {
		t.Error("same identity returned distinct handles")
	}
	if a == c {
		t.Error("distinct labels returned the same handle")
	}
	a.Inc()
	if got := reg.CounterValue("x", "method", "m1"); got != 1 {
		t.Errorf("CounterValue = %d, want 1", got)
	}
	if got := reg.CounterValue("x", "method", "m2"); got != 0 {
		t.Errorf("CounterValue(m2) = %d, want 0", got)
	}
}

func TestDisabledRegistryIsInert(t *testing.T) {
	reg := NewDisabled()
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(5)
	reg.Histogram("h", LatencyBuckets).Observe(1)
	ctx, span := reg.Spans().Start(context.Background(), "s")
	span.Finish(nil)
	if _, ok := SpanFromContext(ctx); ok {
		t.Error("disabled span log leaked a span context")
	}
	if reg.CounterValue("c") != 0 || reg.GaugeValue("g") != 0 {
		t.Error("disabled registry recorded values")
	}
	if reg.Spans().Total() != 0 {
		t.Error("disabled span log recorded spans")
	}
}

func TestWriteTextFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("calls_total", "method", "ping").Add(3)
	reg.Gauge("occupancy").Set(2)
	reg.Histogram("lat_seconds", []float64{1, 2}).Observe(1.5)

	var b strings.Builder
	reg.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`calls_total{method="ping"} 3`,
		"occupancy 2",
		`lat_seconds_bucket{le="1"} 0`,
		`lat_seconds_bucket{le="2"} 1`,
		`lat_seconds_bucket{le="+Inf"} 1`,
		"lat_seconds_sum 1.5",
		"lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestSpanParentChild(t *testing.T) {
	log := NewSpanLog(16)
	ctx, parent := log.Start(context.Background(), "outer")
	ctx2, child := log.Start(ctx, "inner")
	child.Finish(nil)
	parent.Finish(errors.New("boom"))

	if _, ok := SpanFromContext(ctx2); !ok {
		t.Fatal("child ctx carries no span")
	}
	spans := log.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Finish order: child first.
	if spans[0].Name != "inner" || spans[1].Name != "outer" {
		t.Fatalf("unexpected order: %v %v", spans[0].Name, spans[1].Name)
	}
	if spans[0].TraceID != spans[1].TraceID {
		t.Error("child not in parent's trace")
	}
	if spans[0].ParentID != spans[1].SpanID {
		t.Error("child's parent is not the outer span")
	}
	if spans[1].Err != "boom" {
		t.Errorf("outer Err = %q, want boom", spans[1].Err)
	}
	if spans[0].Duration <= 0 || spans[1].Duration <= 0 {
		t.Error("durations must be positive")
	}
	if got := log.ByTrace(spans[0].TraceID); len(got) != 2 {
		t.Errorf("ByTrace: %d spans, want 2", len(got))
	}
	if got := log.ByName("inner"); len(got) != 1 {
		t.Errorf("ByName(inner): %d spans, want 1", len(got))
	}
}

func TestSpanRingOverflow(t *testing.T) {
	log := NewSpanLog(4)
	for i := 0; i < 10; i++ {
		_, s := log.Start(context.Background(), "s")
		s.Finish(nil)
	}
	if log.Total() != 10 {
		t.Errorf("Total = %d, want 10", log.Total())
	}
	if got := len(log.Snapshot()); got != 4 {
		t.Errorf("retained %d spans, want 4", got)
	}
}

func TestRemoteParentPropagation(t *testing.T) {
	log := NewSpanLog(8)
	wire := SpanContext{TraceID: 77, SpanID: 99}
	ctx := WithRemoteParent(context.Background(), wire)
	_, s := log.Start(ctx, "server")
	s.Finish(nil)
	got := log.Snapshot()[0]
	if got.TraceID != 77 || got.ParentID != 99 {
		t.Errorf("span trace/parent = %d/%d, want 77/99", got.TraceID, got.ParentID)
	}
}
