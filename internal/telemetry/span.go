package telemetry

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// defaultSpanCap bounds the span ring buffer; old spans are overwritten.
const defaultSpanCap = 4096

// SpanContext is the wire-propagatable identity of an active span: the
// trace it belongs to and the span itself. The ORB copies it into call
// metadata (orb/tcp.go request.TraceID/SpanID) so the receiving runtime
// parents its spans under the caller's.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 && sc.SpanID != 0 }

// Span is one in-flight timed operation. Created by SpanLog.Start,
// completed by Finish; a nil *Span is a valid no-op (the disabled path).
type Span struct {
	log     *SpanLog
	name    string
	trace   uint64
	id      uint64
	parent  uint64
	runtime string
	start   time.Time
}

// Context returns the span's propagatable identity; zero for nil spans.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.trace, SpanID: s.id}
}

// Finish records the span into its log with the outcome err (nil for
// success). Safe on a nil receiver; must be called at most once.
func (s *Span) Finish(err error) {
	if s == nil {
		return
	}
	fs := FinishedSpan{
		TraceID:  s.trace,
		SpanID:   s.id,
		ParentID: s.parent,
		Name:     s.name,
		Runtime:  s.runtime,
		Start:    s.start,
		Duration: time.Since(s.start),
	}
	if err != nil {
		fs.Err = err.Error()
	}
	s.log.add(fs)
}

// FinishedSpan is a completed span as stored in the log.
type FinishedSpan struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
	Name     string
	Runtime  string // domain of the runtime that recorded it, if known
	Start    time.Time
	Duration time.Duration
	Err      string
}

// String renders one span for logs and the /spans endpoint.
func (s FinishedSpan) String() string {
	errPart := ""
	if s.Err != "" {
		errPart = " err=" + s.Err
	}
	rtPart := ""
	if s.Runtime != "" {
		rtPart = " rt=" + s.Runtime
	}
	return fmt.Sprintf("trace=%016x span=%016x parent=%016x %s%s dur=%s%s",
		s.TraceID, s.SpanID, s.ParentID, s.Name, rtPart, s.Duration, errPart)
}

// SpanLog is a fixed-capacity ring of finished spans plus the factory
// for new ones. Safe for concurrent use.
type SpanLog struct {
	disabled bool
	runtime  string // stamped onto spans; set via SetRuntime

	mu    sync.Mutex
	ring  []FinishedSpan
	next  int
	total int64
}

// NewSpanLog creates a log retaining the most recent cap spans
// (cap <= 0 uses the default).
func NewSpanLog(cap int) *SpanLog {
	if cap <= 0 {
		cap = defaultSpanCap
	}
	return &SpanLog{ring: make([]FinishedSpan, 0, cap)}
}

// SetRuntime stamps subsequently recorded spans with the runtime's
// domain name, so a merged multi-runtime dump stays attributable.
func (l *SpanLog) SetRuntime(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.runtime = name
}

// ids mints process-unique span/trace IDs. Starting at 1 keeps 0 free
// as "no span".
var ids atomic.Uint64

func nextID() uint64 { return ids.Add(1) }

type spanCtxKey struct{}

// SpanFromContext returns the active span context, if any — either a
// local parent installed by Start or a remote parent installed by the
// ORB server from call metadata.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// WithRemoteParent installs a span context received from the wire, so
// spans started while handling the call parent under the caller's span.
func WithRemoteParent(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// Start begins a span named name, parented under any span context
// already carried by ctx (same trace); otherwise it opens a new trace.
// The returned ctx carries the new span for children to parent under.
// On a disabled log it returns (ctx, nil) — and nil spans no-op.
func (l *SpanLog) Start(ctx context.Context, name string) (context.Context, *Span) {
	if l == nil {
		return ctx, nil
	}
	l.mu.Lock()
	rt := l.runtime
	l.mu.Unlock()
	return l.StartIn(ctx, name, rt)
}

// StartIn is Start with an explicit runtime stamp — used by call sites
// sharing one log (e.g. the Default registry) across several runtimes.
func (l *SpanLog) StartIn(ctx context.Context, name, runtime string) (context.Context, *Span) {
	if l == nil || l.disabled {
		return ctx, nil
	}
	s := &Span{log: l, name: name, id: nextID(), start: time.Now(), runtime: runtime}
	if parent, ok := SpanFromContext(ctx); ok {
		s.trace = parent.TraceID
		s.parent = parent.SpanID
	} else {
		s.trace = nextID()
	}
	return context.WithValue(ctx, spanCtxKey{}, s.Context()), s
}

func (l *SpanLog) add(fs FinishedSpan) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, fs)
		return
	}
	l.ring[l.next] = fs
	l.next = (l.next + 1) % cap(l.ring)
}

// Total reports how many spans have ever been recorded (including ones
// the ring has since overwritten).
func (l *SpanLog) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns retained spans, oldest first.
func (l *SpanLog) Snapshot() []FinishedSpan {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]FinishedSpan, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// ByTrace returns retained spans of one trace, oldest first.
func (l *SpanLog) ByTrace(traceID uint64) []FinishedSpan {
	var out []FinishedSpan
	for _, s := range l.Snapshot() {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}

// ByName returns retained spans with the given name, oldest first.
func (l *SpanLog) ByName(name string) []FinishedSpan {
	var out []FinishedSpan
	for _, s := range l.Snapshot() {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}
