// Package telemetry is the observability substrate for the Legion
// reproduction: a dependency-free metrics registry (counters, gauges,
// histograms with preset latency buckets) plus lightweight trace spans
// (span.go) whose IDs propagate through ORB call metadata, so one
// placement request can be followed Scheduler → Collection query →
// Enactor reserve/enact → Host startObject across runtimes.
//
// The paper's RMI is a pipeline of replaceable service objects with
// feedback loops; this package is the measurement substrate those loops
// read. Everything here is stdlib-only and cheap on the hot path:
// counters and gauges are single atomics, histograms are a preallocated
// bucket array of atomics, and metric handles are cached by the caller
// so steady-state observation does no map lookups.
//
// Each orb.Runtime carries a Registry (telemetry.Default unless
// overridden), so a multi-runtime test can give every site its own
// registry and assert exact counts, while a process-wide daemon or
// bench run aggregates into Default and dumps it in one place.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyBuckets are the preset histogram bucket upper bounds, in
// seconds, used for every latency histogram in the tree: roughly
// exponential from 50µs (an in-process ORB dispatch) to 10s (a retry
// budget exhausting against a dead host).
var LatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are preset bucket upper bounds for count-valued
// distributions (query result-set sizes, batch sizes).
var SizeBuckets = []float64{0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}

// Counter is a monotonically increasing value. The zero value is not
// usable; obtain counters from a Registry so they appear in dumps.
type Counter struct {
	v   atomic.Int64
	nop bool
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0; negative deltas are ignored).
func (c *Counter) Add(n int64) {
	if c == nil || c.nop || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down (occupancy, queue depth).
type Gauge struct {
	v   atomic.Int64
	nop bool
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil || g.nop {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil || g.nop {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Observations are assigned
// to the first bucket whose upper bound is >= the value (cumulative
// counts are reconstructed at dump time); values above the last bound
// land in the implicit +Inf overflow bucket.
type Histogram struct {
	nop     bool
	bounds  []float64 // sorted upper bounds
	counts  []atomic.Int64
	over    atomic.Int64 // +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.nop {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.over.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start, in seconds — the
// idiom for latency histograms.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil || h.nop {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the average observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Buckets returns the bucket upper bounds and the per-bucket
// (non-cumulative) counts; the final count is the +Inf overflow bucket,
// so len(counts) == len(bounds)+1.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]int64, len(h.counts)+1)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	counts[len(h.counts)] = h.over.Load()
	return bounds, counts
}

// Registry holds named metrics. Metric identity is name plus an
// optional ordered label list ("k", "v", ...): the same (name, labels)
// always returns the same handle, so callers may either cache handles
// (hot paths) or re-look them up (cold paths).
type Registry struct {
	disabled bool

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    *SpanLog
}

// NewRegistry creates an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		spans:    NewSpanLog(defaultSpanCap),
	}
}

// NewDisabled creates a registry whose metrics and spans are no-ops —
// the uninstrumented baseline for overhead measurements. Handles are
// still minted (and deduplicated) so wiring code is identical.
func NewDisabled() *Registry {
	r := NewRegistry()
	r.disabled = true
	r.spans.disabled = true
	return r
}

// Default is the process-wide registry; runtimes use it unless given
// their own via orb.Runtime.SetMetrics / core.Options.Metrics.
var Default = NewRegistry()

// key builds the canonical metric identity string, e.g.
// `orb_client_seconds{method="make_reservation"}`.
func key(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 16*len(labels))
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(labels[i+1])
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (minting if needed) the counter for name+labels.
// Labels are alternating key, value strings.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	k := key(name, labels)
	r.mu.RLock()
	c, ok := r.counters[k]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[k]; ok {
		return c
	}
	c = &Counter{nop: r.disabled}
	r.counters[k] = c
	return c
}

// Gauge returns (minting if needed) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	k := key(name, labels)
	r.mu.RLock()
	g, ok := r.gauges[k]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[k]; ok {
		return g
	}
	g = &Gauge{nop: r.disabled}
	r.gauges[k] = g
	return g
}

// Histogram returns (minting if needed) the histogram for name+labels.
// The bucket bounds are fixed at first mint; later calls with different
// bounds return the existing histogram unchanged.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	k := key(name, labels)
	r.mu.RLock()
	h, ok := r.hists[k]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[k]; ok {
		return h
	}
	h = newHistogram(bounds)
	h.nop = r.disabled
	r.hists[k] = h
	return h
}

// Spans returns the registry's span log.
func (r *Registry) Spans() *SpanLog { return r.spans }

// CounterValue reads a counter by identity without minting it; 0 if
// absent. Convenient for tests and dumps.
func (r *Registry) CounterValue(name string, labels ...string) int64 {
	k := key(name, labels)
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.counters[k].Value()
}

// GaugeValue reads a gauge by identity without minting it; 0 if absent.
func (r *Registry) GaugeValue(name string, labels ...string) int64 {
	k := key(name, labels)
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gauges[k].Value()
}

// WriteText dumps every metric in a stable, Prometheus-flavoured text
// form: counters and gauges one line each, histograms as cumulative
// _bucket lines plus _sum and _count.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.RLock()
	counters := make(map[string]int64, len(r.counters))
	for k, c := range r.counters {
		counters[k] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for k, g := range r.gauges {
		gauges[k] = g.Value()
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hists[k] = h
	}
	r.mu.RUnlock()

	for _, k := range sortedKeys(counters) {
		fmt.Fprintf(w, "%s %d\n", k, counters[k])
	}
	for _, k := range sortedKeys(gauges) {
		fmt.Fprintf(w, "%s %d\n", k, gauges[k])
	}
	hkeys := make([]string, 0, len(hists))
	for k := range hists {
		hkeys = append(hkeys, k)
	}
	sort.Strings(hkeys)
	for _, k := range hkeys {
		h := hists[k]
		name, labels := splitKey(k)
		bounds, counts := h.Buckets()
		cum := int64(0)
		for i, ub := range bounds {
			cum += counts[i]
			fmt.Fprintf(w, "%s_bucket{%sle=\"%g\"} %d\n", name, labels, ub, cum)
		}
		cum += counts[len(counts)-1]
		fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
		fmt.Fprintf(w, "%s_sum%s %g\n", name, bracketed(labels), h.Sum())
		fmt.Fprintf(w, "%s_count%s %d\n", name, bracketed(labels), h.Count())
	}
}

// splitKey separates `name{a="b"}` into "name" and `a="b",` (trailing
// comma so it can prefix the le label), or (key, "") without labels.
func splitKey(k string) (name, labels string) {
	i := strings.IndexByte(k, '{')
	if i < 0 {
		return k, ""
	}
	return k[:i], k[i+1:len(k)-1] + ","
}

func bracketed(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + strings.TrimSuffix(labels, ",") + "}"
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Handler returns an HTTP handler serving the registry as text — the
// expvar-style endpoint legiond mounts at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}

// SpanHandler returns an HTTP handler dumping the span log, newest
// last, one span per line — mounted at /spans by legiond.
func (r *Registry) SpanHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, s := range r.spans.Snapshot() {
			fmt.Fprintln(w, s.String())
		}
	})
}
