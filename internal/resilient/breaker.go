package resilient

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"legion/internal/loid"
)

// ErrCircuitOpen reports a call refused locally because the endpoint's
// breaker is open (the endpoint failed repeatedly and its cooldown has
// not elapsed). Classified permanent: the caller should fall back —
// variant schedule, other master, stale record — rather than retry.
var ErrCircuitOpen = errors.New("resilient: circuit open")

// State is a breaker's position.
type State int

// Breaker states (closed → open → half-open → closed).
const (
	// Closed: calls flow normally.
	Closed State = iota
	// Open: calls are refused without touching the endpoint.
	Open
	// HalfOpen: a limited number of probe calls may test the endpoint.
	HalfOpen
)

// String names the state.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	default:
		return "half-open"
	}
}

// BreakerConfig parameterizes breakers.
type BreakerConfig struct {
	// FailureThreshold is the consecutive transport-failure count that
	// opens the breaker; <=0 means 5.
	FailureThreshold int
	// Cooldown is how long an open breaker refuses calls before allowing
	// half-open probes; <=0 means 2s.
	Cooldown time.Duration
	// HalfOpenMax bounds concurrent probes in half-open; <=0 means 1.
	HalfOpenMax int
}

func (c BreakerConfig) threshold() int {
	if c.FailureThreshold <= 0 {
		return 5
	}
	return c.FailureThreshold
}

func (c BreakerConfig) cooldown() time.Duration {
	if c.Cooldown <= 0 {
		return 2 * time.Second
	}
	return c.Cooldown
}

func (c BreakerConfig) halfOpenMax() int {
	if c.HalfOpenMax <= 0 {
		return 1
	}
	return c.HalfOpenMax
}

// Breaker is a circuit breaker for one endpoint (a LOID or a TCP
// address). Only transport faults count toward opening it: a permanent
// refusal (policy, conflict) proves the endpoint alive and resets the
// failure streak. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	failures int       // consecutive transport failures (closed state)
	openedAt time.Time // when the breaker last opened
	probes   int       // in-flight probes (half-open state)
	now      func() time.Time
	onChange func(from, to State) // observer, invoked outside mu
}

// OnStateChange installs an observer invoked (outside the breaker's
// lock) on every state transition — the telemetry layer counts trips
// and recoveries with this. At most one observer; nil clears it.
func (b *Breaker) OnStateChange(fn func(from, to State)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onChange = fn
}

// transitionLocked moves the breaker to state to and returns a function
// the caller must run after releasing b.mu (nil-safe) to notify the
// observer.
func (b *Breaker) transitionLocked(to State) func() {
	from := b.state
	b.state = to
	fn := b.onChange
	if fn == nil || from == to {
		return func() {}
	}
	return func() { fn(from, to) }
}

// NewBreaker creates a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg, now: time.Now}
}

// SetClock overrides the breaker's time source for tests.
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

// State returns the breaker's current position, accounting for cooldown
// expiry (an open breaker past its cooldown reports half-open).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.now().Sub(b.openedAt) >= b.cfg.cooldown() {
		return HalfOpen
	}
	return b.state
}

// Allow asks permission to place one call. It returns nil (call may
// proceed; the caller must Record the outcome) or ErrCircuitOpen.
func (b *Breaker) Allow() error {
	notify := func() {}
	b.mu.Lock()
	defer func() { b.mu.Unlock(); notify() }()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.now().Sub(b.openedAt) < b.cfg.cooldown() {
			return fmt.Errorf("%w: cooling down", ErrCircuitOpen)
		}
		// Cooldown elapsed: transition to half-open and admit this call
		// as the first probe.
		notify = b.transitionLocked(HalfOpen)
		b.probes = 1
		return nil
	default: // HalfOpen
		if b.probes >= b.cfg.halfOpenMax() {
			return fmt.Errorf("%w: half-open probe limit", ErrCircuitOpen)
		}
		b.probes++
		return nil
	}
}

// Record reports one allowed call's outcome. Success or a permanent
// refusal (both prove the endpoint reachable) closes or keeps closed;
// a transport fault counts toward opening.
func (b *Breaker) Record(err error) {
	class := Classify(err)
	notify := func() {}
	b.mu.Lock()
	defer func() { b.mu.Unlock(); notify() }()
	switch b.state {
	case HalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if class == ClassRetryable {
			notify = b.transitionLocked(Open)
			b.openedAt = b.now()
			b.failures = 0
			return
		}
		// The probe reached the endpoint: recover.
		notify = b.transitionLocked(Closed)
		b.failures = 0
	case Closed:
		if class != ClassRetryable {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.threshold() {
			notify = b.transitionLocked(Open)
			b.openedAt = b.now()
			b.failures = 0
		}
	case Open:
		// A straggler from before the breaker opened; nothing to update.
	}
}

// Trip forces the breaker open (liveness trackers use this when an
// endpoint is declared down out-of-band).
func (b *Breaker) Trip() {
	b.mu.Lock()
	notify := b.transitionLocked(Open)
	b.openedAt = b.now()
	b.failures = 0
	b.mu.Unlock()
	notify()
}

// Reset forces the breaker closed.
func (b *Breaker) Reset() {
	b.mu.Lock()
	notify := b.transitionLocked(Closed)
	b.failures = 0
	b.probes = 0
	b.mu.Unlock()
	notify()
}

// BreakerSet holds one Breaker per endpoint key (a LOID string or TCP
// address). Safe for concurrent use.
type BreakerSet struct {
	cfg BreakerConfig

	mu       sync.Mutex
	m        map[string]*Breaker
	clock    func() time.Time     // non-nil after SetClock; applied to new breakers
	onChange func(from, to State) // applied to current and new breakers

	// byLOID memoizes LOID→Breaker so the per-call lookup on the query
	// hot path skips formatting the LOID into its string key. Entries
	// alias s.m and live as long as the set, like the breakers they name.
	byLOID sync.Map
}

// NewBreakerSet creates an empty set minting breakers with cfg.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg, m: make(map[string]*Breaker)}
}

// For returns (creating if needed) the breaker for key.
func (s *BreakerSet) For(key string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	if !ok {
		b = NewBreaker(s.cfg)
		if s.clock != nil {
			b.SetClock(s.clock)
		}
		if s.onChange != nil {
			b.OnStateChange(s.onChange)
		}
		s.m[key] = b
	}
	return b
}

// ForLOID is For keyed by a target LOID, memoized so repeated calls for
// the same endpoint avoid re-deriving the string key.
func (s *BreakerSet) ForLOID(target loid.LOID) *Breaker {
	if b, ok := s.byLOID.Load(target); ok {
		return b.(*Breaker)
	}
	b := s.For(target.String())
	s.byLOID.Store(target, b)
	return b
}

// OnStateChange installs a transition observer on every current and
// future breaker in the set — one counter hook covers a whole domain's
// endpoints.
func (s *BreakerSet) OnStateChange(fn func(from, to State)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onChange = fn
	for _, b := range s.m {
		b.OnStateChange(fn)
	}
}

// States snapshots every known endpoint's state.
func (s *BreakerSet) States() map[string]State {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]State, len(s.m))
	for k, b := range s.m {
		out[k] = b.State()
	}
	return out
}

// SetClock overrides the clock of all current and future breakers.
func (s *BreakerSet) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.m {
		b.SetClock(now)
	}
	s.clock = now
}
