package resilient

import (
	"context"
	"fmt"

	"legion/internal/loid"
)

// Invoker is the calling surface the resilience layer wraps —
// *orb.Runtime satisfies it.
type Invoker interface {
	Call(ctx context.Context, target loid.LOID, method string, arg any) (any, error)
}

// Caller makes metasystem calls through a retry policy and per-endpoint
// circuit breakers. Endpoints are keyed by target LOID: in the paper's
// model the LOID is the stable name of the Host/Vault/Collection being
// negotiated with, regardless of which connection carries the call.
// Safe for concurrent use.
type Caller struct {
	inv      Invoker
	policy   Policy
	breakers *BreakerSet // may be nil: retry without breakers
}

// NewCaller wraps inv with the policy and a fresh breaker set.
func NewCaller(inv Invoker, p Policy, bc BreakerConfig) *Caller {
	return &Caller{inv: inv, policy: p, breakers: NewBreakerSet(bc)}
}

// NewCallerWith wraps inv sharing an existing breaker set (nil disables
// breakers), so several components can pool endpoint health knowledge.
func NewCallerWith(inv Invoker, p Policy, breakers *BreakerSet) *Caller {
	return &Caller{inv: inv, policy: p, breakers: breakers}
}

// Breakers exposes the caller's breaker set (nil when disabled).
func (c *Caller) Breakers() *BreakerSet { return c.breakers }

// Policy returns the caller's retry policy.
func (c *Caller) Policy() Policy { return c.policy }

// Call invokes method on target under the retry policy; every attempt
// consults and informs the target's breaker. An open breaker fails the
// call immediately with ErrCircuitOpen (classified permanent, so callers
// fall back instead of spinning).
func (c *Caller) Call(ctx context.Context, target loid.LOID, method string, arg any) (any, error) {
	return c.call(ctx, c.policy, target, method, arg)
}

// CallOnce invokes without retries (one attempt) but still through the
// breaker — for non-idempotent operations where a duplicate would leak
// real work.
func (c *Caller) CallOnce(ctx context.Context, target loid.LOID, method string, arg any) (any, error) {
	p := c.policy
	p.MaxAttempts = 1
	return c.call(ctx, p, target, method, arg)
}

// CallPolicy invokes under an explicit policy override.
func (c *Caller) CallPolicy(ctx context.Context, p Policy, target loid.LOID, method string, arg any) (any, error) {
	return c.call(ctx, p, target, method, arg)
}

func (c *Caller) call(ctx context.Context, p Policy, target loid.LOID, method string, arg any) (any, error) {
	var br *Breaker
	if c.breakers != nil {
		br = c.breakers.ForLOID(target)
	}
	return p.DoValue(ctx, func(ctx context.Context) (any, error) {
		if br != nil {
			if err := br.Allow(); err != nil {
				return nil, fmt.Errorf("%w (target %v, method %s)", err, target, method)
			}
		}
		res, err := c.inv.Call(ctx, target, method, arg)
		if br != nil {
			br.Record(err)
		}
		return res, err
	})
}
