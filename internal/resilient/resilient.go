// Package resilient is the failure-tolerance substrate for metasystem
// method calls.
//
// The paper requires that "our Legion objects are built to accommodate
// failure at any step in the scheduling process". In a wide-area
// metasystem the negotiation substrate itself — the orb calls between
// Scheduler, Enactor, Collection, Hosts and Vaults — is the component
// that fails most often: connections drop, sites partition, hosts hang.
// This package provides the three mechanisms the rest of the RMI uses to
// degrade gracefully instead of failing a whole negotiation on the first
// dropped packet:
//
//   - an error classifier (Classify) separating retryable transport
//     faults (injected faults, connection loss, timeouts) from permanent
//     refusals (placement policy, reservation conflicts, unbound
//     objects) that retrying cannot fix;
//   - a retry Policy with exponential backoff, jitter, and a per-call
//     deadline budget (Do / DoValue);
//   - a per-endpoint circuit Breaker (closed → open → half-open, see
//     breaker.go) so a dead Host is failed fast after a few strikes
//     instead of absorbing a full retry budget on every call.
//
// Caller (caller.go) composes all three over any Invoker — in practice
// an *orb.Runtime — and is what the Enactor, Scheduler Wrapper, and Data
// Collection Daemon use for their negotiation calls.
package resilient

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"legion/internal/host"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/reservation"
	"legion/internal/vclock"
)

// Class is the classifier's verdict on a call error.
type Class int

// Classification outcomes.
const (
	// ClassOK: no error.
	ClassOK Class = iota
	// ClassRetryable: a transport-level fault; the same call may succeed
	// if repeated (possibly over a fresh connection).
	ClassRetryable
	// ClassPermanent: a definitive refusal or a logic error; retrying the
	// same call against the same endpoint cannot succeed.
	ClassPermanent
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassRetryable:
		return "retryable"
	default:
		return "permanent"
	}
}

// permanentMarks are substrings of errors that are definitive refusals
// even after crossing the wire as an *orb.RemoteError (which erases the
// sentinel identity but preserves the message).
var permanentMarks = []string{
	host.ErrPolicy.Error(),
	host.ErrVaultUnreachable.Error(),
	host.ErrUnknownObject.Error(),
	host.ErrQueueRejected.Error(),
	reservation.ErrConflict.Error(),
	reservation.ErrInvalidToken.Error(),
	reservation.ErrExpired.Error(),
	reservation.ErrNotYetValid.Error(),
	reservation.ErrBadRequest.Error(),
	orb.ErrNotBound.Error(),
	orb.ErrNoMethod.Error(),
	// Overload sheds and expired-deadline refusals are deliberate
	// server decisions, not connection failures: retrying immediately
	// would feed the overload, and counting them toward breakers would
	// take a *live* (merely busy) endpoint out of rotation.
	proto.ErrOverload.Error(),
	orb.ErrDeadlineExpired.Error(),
}

// transportMarks are substrings of errors produced by the orb transport
// (or its remote echo) when a connection, not the target object, failed.
var transportMarks = []string{
	"orb: injected fault",
	"orb: connection closed by peer",
	"orb: runtime closed",
	"orb: send",
	"orb: dial",
	"connection refused",
	"connection reset",
	"broken pipe",
	"i/o timeout",
	"use of closed network connection",
	"EOF",
}

// Classify sorts a call error into retryable transport faults versus
// permanent refusals. Unknown errors classify as permanent: blindly
// retrying a call whose failure mode we cannot name risks duplicating
// non-idempotent work (e.g. double-granting a reservation), while
// treating it as final merely falls back to a variant schedule.
func Classify(err error) Class {
	switch {
	case err == nil:
		return ClassOK
	case errors.Is(err, orb.ErrInjectedFault):
		return ClassRetryable
	case errors.Is(err, ErrCircuitOpen):
		return ClassPermanent
	case errors.Is(err, context.DeadlineExceeded):
		// A per-attempt deadline: the endpoint was slow, not wrong.
		return ClassRetryable
	case errors.Is(err, context.Canceled):
		return ClassPermanent
	case errors.Is(err, orb.ErrNotBound), errors.Is(err, orb.ErrNoMethod):
		return ClassPermanent
	case errors.Is(err, proto.ErrOverload), errors.Is(err, orb.ErrServerOverload),
		errors.Is(err, orb.ErrDeadlineExpired):
		// A shed (application-level or by the orb server's admission
		// limiter) or an expired-on-arrival frame is a refusal by a live
		// server: retrying the same call feeds the overload. Callers fall
		// through to their protocol-level logic (regenerate, back off)
		// and breakers never count it as a strike.
		return ClassPermanent
	case errors.Is(err, host.ErrPolicy), errors.Is(err, host.ErrVaultUnreachable):
		return ClassPermanent
	case errors.Is(err, reservation.ErrConflict), errors.Is(err, reservation.ErrInvalidToken),
		errors.Is(err, reservation.ErrExpired), errors.Is(err, reservation.ErrBadRequest):
		return ClassPermanent
	}
	var nerr net.Error
	if errors.As(err, &nerr) {
		return ClassRetryable
	}
	msg := err.Error()
	for _, m := range permanentMarks {
		if strings.Contains(msg, m) {
			return ClassPermanent
		}
	}
	for _, m := range transportMarks {
		if strings.Contains(msg, m) {
			return ClassRetryable
		}
	}
	return ClassPermanent
}

// NeverReached reports whether the error guarantees the call was aborted
// before it reached the target object — fault injection, an open
// breaker, or a failed dial. Such calls are safe to retry even when the
// operation is not idempotent (nothing happened on the far side); the
// Enactor uses this predicate for create_instance.
func NeverReached(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, orb.ErrInjectedFault) || errors.Is(err, ErrCircuitOpen) {
		return true
	}
	msg := err.Error()
	return strings.Contains(msg, "orb: dial") || strings.Contains(msg, "connection refused")
}

// Policy parameterizes retries for one logical call.
type Policy struct {
	// MaxAttempts bounds total attempts (first try included); <=0 means 4.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; <=0 means 5ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; <=0 means 64*BaseDelay.
	MaxDelay time.Duration
	// Multiplier grows the backoff per attempt; <=1 means 2.
	Multiplier float64
	// Jitter is the fraction of the delay randomized (0..1); zero means
	// 0.5, negative disables jitter (deterministic backoff).
	Jitter float64
	// Budget bounds the whole call — attempts plus backoffs — with a
	// deadline; 0 imposes none beyond the caller's ctx.
	Budget time.Duration
	// AttemptTimeout bounds each individual attempt; 0 imposes none
	// beyond the (budgeted) ctx.
	AttemptTimeout time.Duration
	// Retryable overrides Classify as the retry predicate; nil uses
	// Classify(err) == ClassRetryable.
	Retryable func(error) bool
	// Clock supplies backoff waits and budget/attempt deadlines; nil
	// means the wall clock. Virtual-time runs set it so retries park on
	// the discrete-event clock.
	Clock vclock.Clock
	// JitterRand, when non-nil, replaces the process-global jitter RNG
	// so same-process replays draw an independent, seedable stream.
	// Callers must not share one *rand.Rand across policies without
	// their own locking; the policy serializes its own draws.
	JitterRand *LockedRand
}

// LockedRand is a mutex-guarded rand.Rand for policy-scoped jitter.
type LockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewLockedRand seeds a policy-scoped jitter source.
func NewLockedRand(seed int64) *LockedRand {
	return &LockedRand{rng: rand.New(rand.NewSource(seed))}
}

func (r *LockedRand) float64() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64()
}

func (p Policy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 4
	}
	return p.MaxAttempts
}

func (p Policy) retryable(err error) bool {
	if p.Retryable != nil {
		return p.Retryable(err)
	}
	return Classify(err) == ClassRetryable
}

// jitterRng randomizes backoff; guarded because retries run on many
// goroutines (the Enactor negotiates mappings concurrently under test).
var (
	jitterMu  sync.Mutex
	jitterRng = rand.New(rand.NewSource(42))
)

// delay computes the backoff before attempt n (n=1 is the delay after
// the first failure).
func (p Policy) delay(n int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 64 * base
	}
	d := float64(base)
	for i := 1; i < n; i++ {
		d *= mult
		if d >= float64(maxd) {
			d = float64(maxd)
			break
		}
	}
	jit := p.Jitter
	if jit == 0 {
		jit = 0.5
	} else if jit < 0 {
		jit = 0
	}
	if jit > 1 {
		jit = 1
	}
	if jit > 0 {
		var f float64
		if p.JitterRand != nil {
			f = p.JitterRand.float64()
		} else {
			jitterMu.Lock()
			f = jitterRng.Float64()
			jitterMu.Unlock()
		}
		d = d * (1 - jit + jit*f) // uniform in [d*(1-jit), d]
	}
	return time.Duration(d)
}

// Do runs op under the policy: attempts are repeated with backoff while
// the error stays retryable, the budget deadline holds, and attempts
// remain. The final error is returned annotated with the attempt count.
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	clock := vclock.Default(p.Clock)
	if p.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = clock.WithTimeout(ctx, p.Budget)
		defer cancel()
	}
	var err error
	attempts := p.attempts()
	for n := 1; ; n++ {
		actx := ctx
		var cancel context.CancelFunc = func() {}
		if p.AttemptTimeout > 0 {
			actx, cancel = clock.WithTimeout(ctx, p.AttemptTimeout)
		}
		err = op(actx)
		cancel()
		if err == nil {
			return nil
		}
		if !p.retryable(err) {
			return err
		}
		if n >= attempts {
			return fmt.Errorf("resilient: %d attempts exhausted: %w", attempts, err)
		}
		if ctx.Err() != nil {
			return fmt.Errorf("resilient: budget exhausted after %d attempts: %w", n, err)
		}
		if serr := clock.Sleep(ctx, p.delay(n)); serr != nil {
			return fmt.Errorf("resilient: budget exhausted after %d attempts: %w", n, err)
		}
	}
}

// DoValue is Do for operations returning a value.
func (p Policy) DoValue(ctx context.Context, op func(ctx context.Context) (any, error)) (any, error) {
	var res any
	err := p.Do(ctx, func(ctx context.Context) error {
		var oerr error
		res, oerr = op(ctx)
		return oerr
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
