package resilient

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/reservation"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, ClassOK},
		{"injected fault", fmt.Errorf("wrap: %w", orb.ErrInjectedFault), ClassRetryable},
		{"deadline", context.DeadlineExceeded, ClassRetryable},
		{"canceled", context.Canceled, ClassPermanent},
		{"not bound", fmt.Errorf("%w: x", orb.ErrNotBound), ClassPermanent},
		{"policy", fmt.Errorf("%w: domain refused", host.ErrPolicy), ClassPermanent},
		{"conflict", fmt.Errorf("%w: slot", reservation.ErrConflict), ClassPermanent},
		{"circuit open", fmt.Errorf("%w: cooling", ErrCircuitOpen), ClassPermanent},
		{"server shed", fmt.Errorf("%w (remote)", orb.ErrServerOverload), ClassPermanent},
		{"remote server shed", &orb.RemoteError{Msg: orb.ErrServerOverload.Error()}, ClassPermanent},
		// Remote echoes: sentinel identity lost, message preserved.
		{"remote policy", &orb.RemoteError{Msg: "host: refused by local placement policy: domain \"uva\" refused"}, ClassPermanent},
		{"remote conflict", &orb.RemoteError{Msg: "reservation: conflicts with existing reservation: [a,b)"}, ClassPermanent},
		{"remote conn loss", &orb.RemoteError{Msg: "orb: connection closed by peer"}, ClassRetryable},
		{"send failure", errors.New("orb: send: write tcp: broken pipe"), ClassRetryable},
		{"dial failure", errors.New("orb: dial 127.0.0.1:9: connect: connection refused"), ClassRetryable},
		{"unknown", errors.New("some application error"), ClassPermanent},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("%s: Classify(%v) = %v, want %v", c.name, c.err, got, c.want)
		}
	}
}

func TestNeverReached(t *testing.T) {
	if !NeverReached(fmt.Errorf("%w", orb.ErrInjectedFault)) {
		t.Error("injected fault should be never-reached")
	}
	if !NeverReached(errors.New("orb: dial 127.0.0.1:9: connection refused")) {
		t.Error("dial failure should be never-reached")
	}
	if NeverReached(&orb.RemoteError{Msg: "orb: connection closed by peer"}) {
		t.Error("mid-call connection loss may have reached the target")
	}
	if NeverReached(nil) {
		t.Error("nil is not never-reached")
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	n := 0
	err := Policy{MaxAttempts: 5, BaseDelay: time.Microsecond, Jitter: -1}.Do(
		context.Background(), func(ctx context.Context) error {
			n++
			if n < 3 {
				return fmt.Errorf("%w: flaky", orb.ErrInjectedFault)
			}
			return nil
		})
	if err != nil || n != 3 {
		t.Fatalf("err=%v attempts=%d", err, n)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	n := 0
	err := Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}.Do(
		context.Background(), func(ctx context.Context) error {
			n++
			return fmt.Errorf("%w: refused", host.ErrPolicy)
		})
	if !errors.Is(err, host.ErrPolicy) || n != 1 {
		t.Fatalf("err=%v attempts=%d, want 1 attempt with policy error", err, n)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	n := 0
	err := Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, Jitter: -1}.Do(
		context.Background(), func(ctx context.Context) error {
			n++
			return fmt.Errorf("%w: always", orb.ErrInjectedFault)
		})
	if !errors.Is(err, orb.ErrInjectedFault) || n != 3 {
		t.Fatalf("err=%v attempts=%d", err, n)
	}
}

func TestDoHonorsBudget(t *testing.T) {
	n := 0
	start := time.Now()
	err := Policy{MaxAttempts: 100, BaseDelay: 20 * time.Millisecond, Jitter: -1,
		Budget: 30 * time.Millisecond}.Do(
		context.Background(), func(ctx context.Context) error {
			n++
			return fmt.Errorf("%w: always", orb.ErrInjectedFault)
		})
	if err == nil {
		t.Fatal("want error")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("budget ignored: ran %v over %d attempts", elapsed, n)
	}
	if n >= 100 {
		t.Fatalf("attempts not cut short by budget: %d", n)
	}
}

func TestDoAttemptTimeout(t *testing.T) {
	n := 0
	err := Policy{MaxAttempts: 2, BaseDelay: time.Microsecond, Jitter: -1,
		AttemptTimeout: 10 * time.Millisecond}.Do(
		context.Background(), func(ctx context.Context) error {
			n++
			<-ctx.Done() // simulate a hung endpoint honoring ctx
			return ctx.Err()
		})
	if !errors.Is(err, context.DeadlineExceeded) || n != 2 {
		t.Fatalf("err=%v attempts=%d, want deadline after 2 attempts", err, n)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clock := time.Now()
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: time.Second})
	b.SetClock(func() time.Time { return clock })

	transport := fmt.Errorf("%w: boom", orb.ErrInjectedFault)
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused call %d: %v", i, err)
		}
		b.Record(transport)
	}
	if b.State() != Open {
		t.Fatalf("state after threshold: %v, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker allowed a call: %v", err)
	}

	// Cooldown elapses: one probe is admitted, a second refused.
	clock = clock.Add(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second concurrent probe allowed: %v", err)
	}

	// Failed probe re-opens.
	b.Record(transport)
	if b.State() != Open {
		t.Fatalf("state after failed probe: %v, want open", b.State())
	}

	// Another cooldown; successful probe closes.
	clock = clock.Add(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("state after good probe: %v, want closed", b.State())
	}
}

func TestBreakerPermanentRefusalsDoNotTrip(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 2})
	refusal := fmt.Errorf("%w: no", host.ErrPolicy)
	for i := 0; i < 10; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("refusals tripped breaker at %d: %v", i, err)
		}
		b.Record(refusal)
	}
	if b.State() != Closed {
		t.Fatalf("state: %v, want closed (endpoint is alive)", b.State())
	}
	// Refusals also reset a transport-failure streak.
	b.Record(fmt.Errorf("%w", orb.ErrInjectedFault))
	b.Record(refusal)
	b.Record(fmt.Errorf("%w", orb.ErrInjectedFault))
	if b.State() != Closed {
		t.Fatal("streak not reset by a successful (refused) round trip")
	}
}

// fakeInvoker scripts per-target behaviour for Caller tests.
type fakeInvoker struct {
	mu    sync.Mutex
	calls map[string]int
	fail  map[string]func(n int) error // n is the 1-based call count
}

func (f *fakeInvoker) Call(ctx context.Context, target loid.LOID, method string, arg any) (any, error) {
	f.mu.Lock()
	f.calls[target.String()]++
	n := f.calls[target.String()]
	fn := f.fail[target.String()]
	f.mu.Unlock()
	if fn != nil {
		if err := fn(n); err != nil {
			return nil, err
		}
	}
	return "ok", nil
}

func TestCallerRetriesThroughBreaker(t *testing.T) {
	good := loid.LOID{Domain: "d", Class: "Host", Instance: 1}
	f := &fakeInvoker{calls: map[string]int{}, fail: map[string]func(int) error{
		good.String(): func(n int) error {
			if n < 3 {
				return fmt.Errorf("%w: flaky", orb.ErrInjectedFault)
			}
			return nil
		},
	}}
	c := NewCaller(f, Policy{MaxAttempts: 4, BaseDelay: time.Microsecond, Jitter: -1},
		BreakerConfig{FailureThreshold: 10})
	res, err := c.Call(context.Background(), good, "m", nil)
	if err != nil || res != "ok" {
		t.Fatalf("res=%v err=%v", res, err)
	}
	if got := f.calls[good.String()]; got != 3 {
		t.Fatalf("calls=%d, want 3", got)
	}
}

func TestCallerOpensBreakerAndFailsFast(t *testing.T) {
	dead := loid.LOID{Domain: "d", Class: "Host", Instance: 2}
	f := &fakeInvoker{calls: map[string]int{}, fail: map[string]func(int) error{
		dead.String(): func(n int) error { return fmt.Errorf("%w: down", orb.ErrInjectedFault) },
	}}
	c := NewCaller(f, Policy{MaxAttempts: 3, BaseDelay: time.Microsecond, Jitter: -1},
		BreakerConfig{FailureThreshold: 3, Cooldown: time.Hour})
	if _, err := c.Call(context.Background(), dead, "m", nil); err == nil {
		t.Fatal("want failure")
	}
	// The first call burned 3 attempts and opened the breaker; the next
	// call must fail fast without touching the endpoint.
	before := f.calls[dead.String()]
	_, err := c.Call(context.Background(), dead, "m", nil)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err=%v, want circuit open", err)
	}
	if f.calls[dead.String()] != before {
		t.Fatalf("open breaker still reached endpoint: %d → %d", before, f.calls[dead.String()])
	}
}

func TestCallerOnceDoesNotRetry(t *testing.T) {
	l := loid.LOID{Domain: "d", Class: "Class", Instance: 3}
	f := &fakeInvoker{calls: map[string]int{}, fail: map[string]func(int) error{
		l.String(): func(n int) error { return fmt.Errorf("%w", orb.ErrInjectedFault) },
	}}
	c := NewCaller(f, Policy{MaxAttempts: 5, BaseDelay: time.Microsecond}, BreakerConfig{})
	_, err := c.CallOnce(context.Background(), l, "m", nil)
	if err == nil || f.calls[l.String()] != 1 {
		t.Fatalf("err=%v calls=%d, want 1 attempt", err, f.calls[l.String()])
	}
}
