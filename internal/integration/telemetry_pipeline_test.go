package integration

import (
	"context"
	"testing"
	"time"

	"legion/internal/core"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/sched"
	"legion/internal/scheduler"
	"legion/internal/telemetry"
	"legion/internal/vault"
)

// TestTelemetryAcrossPlacementPipeline drives one placement through the
// full negotiation pipeline — Scheduler query → Enactor reservation →
// Host startObject — with a private registry, and reads back what the
// instrumentation recorded: every pipeline stage left a span with a
// real (non-zero) duration, the reservation counters agree with the
// outcome, and nothing tripped a breaker.
func TestTelemetryAcrossPlacementPipeline(t *testing.T) {
	reg := telemetry.NewRegistry()
	// Other tests in this process legitimately use telemetry.Default;
	// snapshot it so the isolation check below sees only this test's
	// delta.
	defaultStarts := telemetry.Default.CounterValue("legion_host_object_starts_total")
	ms := core.New("uva", core.Options{Seed: 1, Metrics: reg})
	t.Cleanup(func() { ms.Close() })
	v := ms.AddVault(vault.Config{Zone: "uva"})
	for i := 0; i < 4; i++ {
		ms.AddHost(host.Config{
			Arch: "x86", OS: "Linux", OSVersion: "2.2",
			CPUs: 4, MemoryMB: 512, Zone: "uva",
			Vaults: []loid.LOID{v.LOID()},
		})
	}
	class := ms.DefineClass("Worker", nil)

	const count = 2
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, err := ms.PlaceApplication(ctx, scheduler.IRS{NSched: 3}, scheduler.Request{
		Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: count}},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	})
	if err != nil || !out.Success {
		t.Fatalf("placement failed: %v (outcome %+v)", err, out)
	}
	placed := 0
	for _, insts := range out.Instances {
		placed += len(insts)
	}
	if placed != count {
		t.Fatalf("placed %d instances, want %d", placed, count)
	}

	// Every pipeline stage must have recorded at least one finished span
	// with a measurable duration.
	spans := reg.Spans()
	for _, stage := range []string{
		"collection/query",
		"enactor/make_reservations",
		"enactor/enact_schedule",
		"host/startObject",
	} {
		got := spans.ByName(stage)
		if len(got) == 0 {
			t.Errorf("no %s span recorded", stage)
			continue
		}
		for _, s := range got {
			if s.Duration <= 0 {
				t.Errorf("%s span has non-positive duration %v", stage, s.Duration)
			}
			if s.TraceID == 0 || s.SpanID == 0 {
				t.Errorf("%s span has zero trace/span id", stage)
			}
		}
	}

	// Counter cross-checks. The Enactor's grants must cover the placed
	// instances and match what the Hosts say they granted, and live
	// occupancy must obey conservation: granted − cancelled = active
	// (reusable tokens are not consumed by redemption).
	granted := reg.CounterValue("legion_enactor_reservations_granted_total")
	cancelled := reg.CounterValue("legion_enactor_reservations_cancelled_total")
	hostGranted := reg.CounterValue("legion_host_reservations_granted_total")
	if granted < int64(count) {
		t.Errorf("enactor granted %d reservations, want >= %d", granted, count)
	}
	if granted != hostGranted {
		t.Errorf("enactor granted %d but hosts granted %d", granted, hostGranted)
	}
	if active := reg.GaugeValue("legion_reservations_active"); active != granted-cancelled {
		t.Errorf("occupancy gauge %d != granted %d - cancelled %d", active, granted, cancelled)
	}
	if starts := reg.CounterValue("legion_host_object_starts_total"); starts != int64(count) {
		t.Errorf("host started %d objects, want %d", starts, count)
	}
	if enacts := reg.CounterValue("legion_enactor_enactments_total"); enacts < 1 {
		t.Errorf("enactments counter %d, want >= 1", enacts)
	}

	// A healthy single-domain placement must not trip any breaker.
	if trips := reg.CounterValue("legion_breaker_transitions_total", "to", "open"); trips != 0 {
		t.Errorf("breaker tripped %d times during healthy placement", trips)
	}

	// Latency histograms for the two negotiation stages recorded the
	// same episodes the spans did.
	if n := reg.Histogram("legion_enactor_make_reservations_seconds", telemetry.LatencyBuckets).Count(); n < 1 {
		t.Errorf("make_reservations histogram count %d, want >= 1", n)
	}
	if n := reg.Histogram("legion_enactor_enact_schedule_seconds", telemetry.LatencyBuckets).Count(); n < 1 {
		t.Errorf("enact_schedule histogram count %d, want >= 1", n)
	}

	// Nothing leaked into the process-wide default registry: the private
	// registry isolated the whole pipeline.
	if n := telemetry.Default.CounterValue("legion_host_object_starts_total"); n != defaultStarts {
		t.Errorf("default registry saw %d object starts from a private-registry metasystem", n-defaultStarts)
	}
}
