package integration

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"legion/internal/attr"
	"legion/internal/collection"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/resilient"
	"legion/internal/sched"
	"legion/internal/scheduler"
	"legion/internal/telemetry"
)

func hostPairs(arch string, load float64) []attr.Pair {
	return []attr.Pair{
		{Name: "host_arch", Value: attr.String(arch)},
		{Name: "host_load", Value: attr.Float(load)},
	}
}

// TestRouterFederationSurvivesShardDeath is the federation satellite:
// two per-domain Collection shards behind real TCP runtimes, fronted by
// a client-side Router. One domain dies mid-run; the Router must keep
// answering with the surviving shard's records inside the query
// deadline, surface the skip to the scheduler, and the scheduler must
// still place on the live domain's hosts.
func TestRouterFederationSurvivesShardDeath(t *testing.T) {
	east := newSite(t, "east", 3, nil)
	west := newSite(t, "west", 2, nil)

	rt := orb.NewRuntime("app")
	reg := telemetry.NewRegistry()
	rt.SetMetrics(reg)
	t.Cleanup(func() { rt.Close() })
	ctx := context.Background()
	dirs := make(map[string]proto.ServicesReply)
	for _, s := range []*site{east, west} {
		rt.BindDomain(s.ms.Domain(), s.addr)
		res, err := rt.Call(ctx, proto.DirectoryLOID(s.ms.Domain()), proto.MethodLookupServices, nil)
		if err != nil {
			t.Fatalf("directory lookup for %s: %v", s.ms.Domain(), err)
		}
		dirs[s.ms.Domain()] = res.(proto.ServicesReply)
	}

	r := collection.NewRouter(rt, collection.RouterConfig{
		Shards:       []loid.LOID{dirs["east"].Collection, dirs["west"].Collection},
		ShardTimeout: time.Second,
		Retry:        resilient.Policy{MaxAttempts: 1},
		Route:        collection.RouteByDomain(map[string]int{"east": 0, "west": 1}),
	})

	// Healthy federation: one query sees both domains' hosts.
	env := &scheduler.Env{RT: rt, Collection: r.LOID(), Rand: rand.New(rand.NewSource(5))}
	hosts, skipped, err := scheduler.QueryHostsPartial(ctx, env, "defined($host_arch)")
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 5 || skipped != 0 {
		t.Fatalf("healthy federation: %d hosts, %d skipped; want 5, 0", len(hosts), skipped)
	}

	// Kill west mid-run.
	west.ms.Close()

	start := time.Now()
	hosts, skipped, err = scheduler.QueryHostsPartial(ctx, env, "defined($host_arch)")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("degraded query failed outright: %v", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("degraded query took %v, want within the shard deadline budget", elapsed)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	if len(hosts) != 3 {
		t.Fatalf("surviving records = %d, want east's 3", len(hosts))
	}
	for _, h := range hosts {
		if h.LOID.Domain != "east" {
			t.Fatalf("dead domain's record survived: %v", h.LOID)
		}
	}
	if got := reg.CounterValue("legion_collection_shard_skips"); got < 1 {
		t.Fatalf("legion_collection_shard_skips = %d, want >= 1", got)
	}

	// The scheduler still places — on live hosts only — through the
	// degraded Router.
	out, err := (scheduler.Wrapper{SchedTryLimit: 3, EnactTryLimit: 2}).Run(
		ctx, env, dirs["east"].Enactor, scheduler.IRS{NSched: 3},
		scheduler.Request{
			Classes: []scheduler.ClassRequest{{Class: dirs["east"].Classes["Worker"], Count: 2}},
			Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
		})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success {
		t.Fatalf("placement through degraded federation failed: %+v", out)
	}
	running := 0
	for _, h := range east.ms.Hosts() {
		running += h.RunningCount()
	}
	if running != 2 {
		t.Fatalf("running on east = %d, want 2", running)
	}
}

// TestRouterFederationMutationsOverTCP pushes writes through the Router
// across the wire: joins and updates land on the owning domain's shard.
func TestRouterFederationMutationsOverTCP(t *testing.T) {
	east := newSite(t, "east", 1, nil)
	west := newSite(t, "west", 1, nil)
	rt := orb.NewRuntime("app")
	t.Cleanup(func() { rt.Close() })
	ctx := context.Background()
	rt.BindDomain("east", east.addr)
	rt.BindDomain("west", west.addr)
	res, err := rt.Call(ctx, proto.DirectoryLOID("east"), proto.MethodLookupServices, nil)
	if err != nil {
		t.Fatal(err)
	}
	eastColl := res.(proto.ServicesReply).Collection
	res, err = rt.Call(ctx, proto.DirectoryLOID("west"), proto.MethodLookupServices, nil)
	if err != nil {
		t.Fatal(err)
	}
	westColl := res.(proto.ServicesReply).Collection

	r := collection.NewRouter(rt, collection.RouterConfig{
		Shards: []loid.LOID{eastColl, westColl},
		Route:  collection.RouteByDomain(map[string]int{"east": 0, "west": 1}),
	})
	sensor := loid.LOID{Domain: "west", Class: "Sensor", Instance: 42}
	if err := r.Join(ctx, sensor, hostPairs("arm", 0.2), ""); err != nil {
		t.Fatal(err)
	}
	// The record landed on west's shard, not east's.
	wres, err := rt.Call(ctx, westColl, proto.MethodQueryCollection, proto.QueryArgs{Query: `$host_arch == "arm"`})
	if err != nil {
		t.Fatal(err)
	}
	if recs := wres.(proto.QueryReply).Records; len(recs) != 1 || recs[0].Member != sensor {
		t.Fatalf("west shard records: %+v", recs)
	}
	eres, err := rt.Call(ctx, eastColl, proto.MethodQueryCollection, proto.QueryArgs{Query: `$host_arch == "arm"`})
	if err != nil {
		t.Fatal(err)
	}
	if recs := eres.(proto.QueryReply).Records; len(recs) != 0 {
		t.Fatalf("record leaked onto east shard: %+v", recs)
	}
	// A batch through the Router over TCP updates it in place.
	reply, err := r.ApplyBatch(ctx, []proto.BatchEntry{
		{Member: sensor, Attrs: hostPairs("arm", 0.9), UpdateOnly: true},
	}, "")
	if err != nil || reply.Applied != 1 {
		t.Fatalf("batch over TCP: %+v, %v", reply, err)
	}
	recs, err := r.QueryCtx(ctx, `$host_load > 0.5`)
	if err != nil || len(recs) != 1 || recs[0].Member != sensor {
		t.Fatalf("federated query after batch: %+v, %v", recs, err)
	}
}
