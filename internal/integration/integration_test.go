// Package integration tests multi-domain metasystems: several
// administrative domains, each its own runtime behind a TCP listener,
// federated the way separate legiond processes would be. This exercises
// the paper's wide-area claims — cross-domain co-allocation by the
// Enactor, site autonomy via local placement policies, and migration
// between domains.
package integration

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"legion/internal/core"
	"legion/internal/host"
	"legion/internal/loid"
	"legion/internal/orb"
	"legion/internal/proto"
	"legion/internal/sched"
	"legion/internal/scheduler"
	"legion/internal/vault"
)

// site is one administrative domain served over TCP.
type site struct {
	ms   *core.Metasystem
	addr string
}

// newSite builds a domain with nHosts hosts and one vault, listening on
// loopback. mutate may adjust each host config (site policy).
func newSite(t *testing.T, domain string, nHosts int, mutate func(i int, c *host.Config)) *site {
	t.Helper()
	ms := core.New(domain, core.Options{Seed: 1})
	v := ms.AddVault(vault.Config{Zone: domain})
	for i := 0; i < nHosts; i++ {
		cfg := host.Config{
			Arch: "x86", OS: "Linux", OSVersion: "2.2",
			CPUs: 4, MemoryMB: 512, Zone: domain,
			Vaults: []loid.LOID{v.LOID()},
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		ms.AddHost(cfg)
	}
	ms.DefineClass("Worker", nil)
	addr, err := ms.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	return &site{ms: ms, addr: addr}
}

// client is an application-side runtime federated with several sites.
type client struct {
	rt   *orb.Runtime
	dirs map[string]proto.ServicesReply
}

func newClient(t *testing.T, sites ...*site) *client {
	t.Helper()
	rt := orb.NewRuntime("app")
	t.Cleanup(func() { rt.Close() })
	c := &client{rt: rt, dirs: make(map[string]proto.ServicesReply)}
	ctx := context.Background()
	for _, s := range sites {
		rt.BindDomain(s.ms.Domain(), s.addr)
		res, err := rt.Call(ctx, proto.DirectoryLOID(s.ms.Domain()), proto.MethodLookupServices, nil)
		if err != nil {
			t.Fatalf("directory lookup for %s: %v", s.ms.Domain(), err)
		}
		c.dirs[s.ms.Domain()] = res.(proto.ServicesReply)
	}
	return c
}

func TestCrossDomainCoAllocation(t *testing.T) {
	uva := newSite(t, "uva", 2, nil)
	sdsc := newSite(t, "sdsc", 2, nil)
	cl := newClient(t, uva, sdsc)
	ctx := context.Background()

	// The application builds a schedule spanning both domains and runs
	// its own Enactor-equivalent via uva's Enactor — which must
	// negotiate with sdsc's hosts over TCP through its own domain
	// binding. Wire uva's runtime to sdsc first.
	uva.ms.Runtime().BindDomain("sdsc", sdsc.addr)

	uvaDir, sdscDir := cl.dirs["uva"], cl.dirs["sdsc"]
	master := sched.Master{Mappings: []sched.Mapping{
		{Class: uvaDir.Classes["Worker"], Host: uvaDir.Hosts[0], Vault: uvaDir.Vaults[0]},
		{Class: uvaDir.Classes["Worker"], Host: sdscDir.Hosts[0], Vault: sdscDir.Vaults[0]},
	}}
	req := sched.RequestList{
		ID:      777,
		Masters: []sched.Master{master},
		Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	}
	res, err := cl.rt.Call(ctx, uvaDir.Enactor, proto.MethodMakeReservations,
		proto.MakeReservationsArgs{Request: req})
	if err != nil {
		t.Fatal(err)
	}
	fb := res.(proto.FeedbackReply).Feedback
	if !fb.Success {
		t.Fatalf("cross-domain reservations: %+v", fb)
	}
	eres, err := cl.rt.Call(ctx, uvaDir.Enactor, proto.MethodEnactSchedule,
		proto.EnactScheduleArgs{RequestID: 777})
	if err != nil || !eres.(proto.EnactReply).Success {
		t.Fatalf("cross-domain enact: %v %v", eres, err)
	}
	// One object runs in each domain.
	if uva.ms.Hosts()[0].RunningCount() != 1 {
		t.Error("no object on uva host")
	}
	if sdsc.ms.Hosts()[0].RunningCount() != 1 {
		t.Error("no object on sdsc host")
	}
	// The client can invoke both instances across domains. Note: the
	// instances' LOIDs live in the uva domain (the class minted them)
	// but one runs at sdsc; bind it explicitly for this check.
	insts := eres.(proto.EnactReply).Instances
	if r, err := cl.rt.Call(ctx, insts[0][0], "ping", nil); err != nil || r != "pong" {
		t.Errorf("uva instance: %v %v", r, err)
	}
	cl.rt.Bind(insts[1][0], sdsc.addr)
	if r, err := cl.rt.Call(ctx, insts[1][0], "ping", nil); err != nil || r != "pong" {
		t.Errorf("sdsc instance: %v %v", r, err)
	}
}

func TestSiteAutonomyRefusesForeignDomain(t *testing.T) {
	// sdsc's hosts refuse requests from the uva domain — the paper's
	// "domains from which it refuses to accept object instantiation
	// requests".
	uva := newSite(t, "uva", 1, nil)
	sdsc := newSite(t, "sdsc", 1, func(i int, c *host.Config) {
		c.Policy = host.RefuseDomains("uva")
	})
	cl := newClient(t, uva, sdsc)
	ctx := context.Background()
	sdscDir := cl.dirs["sdsc"]

	// A request from uva's Enactor (domain "uva") is refused...
	uva.ms.Runtime().BindDomain("sdsc", sdsc.addr)
	req := sched.RequestList{
		ID: uva.ms.Enactor.NewRequestID(),
		Masters: []sched.Master{{Mappings: []sched.Mapping{{
			Class: cl.dirs["uva"].Classes["Worker"],
			Host:  sdscDir.Hosts[0],
			Vault: sdscDir.Vaults[0],
		}}}},
		Res: sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	}
	fb := uva.ms.Enactor.MakeReservations(ctx, req)
	if fb.Success {
		t.Fatal("sdsc accepted a uva requester despite policy")
	}
	// ...but sdsc's own Enactor is welcome.
	req2 := sched.RequestList{
		ID: 1,
		Masters: []sched.Master{{Mappings: []sched.Mapping{{
			Class: sdscDir.Classes["Worker"],
			Host:  sdscDir.Hosts[0],
			Vault: sdscDir.Vaults[0],
		}}}},
		Res: sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	}
	res, err := cl.rt.Call(ctx, sdscDir.Enactor, proto.MethodMakeReservations,
		proto.MakeReservationsArgs{Request: req2})
	if err != nil || !res.(proto.FeedbackReply).Feedback.Success {
		t.Fatalf("sdsc's own enactor refused: %v %v", res, err)
	}
}

func TestRemoteSchedulingThroughCollection(t *testing.T) {
	// The client runs a Scheduler locally against a remote Collection
	// and Enactor (layering (d) across process boundaries).
	site1 := newSite(t, "uva", 3, nil)
	cl := newClient(t, site1)
	ctx := context.Background()
	dir := cl.dirs["uva"]

	env := &scheduler.Env{
		RT:         cl.rt,
		Collection: dir.Collection,
		Rand:       rand.New(rand.NewSource(9)),
	}
	out, err := scheduler.Wrapper{}.Run(ctx, env, dir.Enactor, scheduler.IRS{NSched: 3},
		scheduler.Request{
			Classes: []scheduler.ClassRequest{{Class: dir.Classes["Worker"], Count: 4}},
			Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
		})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success || len(out.Instances) != 4 {
		t.Fatalf("outcome: %+v", out)
	}
	total := 0
	for _, h := range site1.ms.Hosts() {
		total += h.RunningCount()
	}
	if total != 4 {
		t.Errorf("running: %d", total)
	}
}

func TestFederatedFailureFallsBackToHealthyDomain(t *testing.T) {
	// Two domains; one goes down mid-session. A client schedule listing
	// a dead-domain master first falls through to the healthy domain's
	// master (Figure 5's master-schedule preference list).
	uva := newSite(t, "uva", 1, nil)
	sdsc := newSite(t, "sdsc", 1, nil)
	cl := newClient(t, uva, sdsc)
	ctx := context.Background()
	uvaDir, sdscDir := cl.dirs["uva"], cl.dirs["sdsc"]

	// uva's enactor will negotiate with both domains.
	uva.ms.Runtime().BindDomain("sdsc", sdsc.addr)

	// Kill sdsc.
	sdsc.ms.Close()

	req := sched.RequestList{
		ID: uva.ms.Enactor.NewRequestID(),
		Masters: []sched.Master{
			{Mappings: []sched.Mapping{{
				Class: uvaDir.Classes["Worker"], Host: sdscDir.Hosts[0], Vault: sdscDir.Vaults[0],
			}}},
			{Mappings: []sched.Mapping{{
				Class: uvaDir.Classes["Worker"], Host: uvaDir.Hosts[0], Vault: uvaDir.Vaults[0],
			}}},
		},
		Res: sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
	}
	fb := uva.ms.Enactor.MakeReservations(ctx, req)
	if !fb.Success {
		t.Fatalf("feedback: %+v", fb)
	}
	if fb.MasterIndex != 1 {
		t.Errorf("winning master: %d, want 1 (healthy domain)", fb.MasterIndex)
	}
	if fb.Stats.MastersTried != 2 {
		t.Errorf("masters tried: %d", fb.Stats.MastersTried)
	}
}

func TestCrossDomainInvocationLatencyInjection(t *testing.T) {
	// Verify the latency injection hook works across the wire: a client
	// with simulated WAN latency sees slower calls.
	s := newSite(t, "uva", 1, nil)
	cl := newClient(t, s)
	ctx := context.Background()
	dir := cl.dirs["uva"]

	t0 := time.Now()
	if _, err := cl.rt.Call(ctx, dir.Collection, proto.MethodQueryCollection,
		proto.QueryArgs{Query: "true"}); err != nil {
		t.Fatal(err)
	}
	base := time.Since(t0)

	cl.rt.SetLatency(30*time.Millisecond, 0)
	t0 = time.Now()
	if _, err := cl.rt.Call(ctx, dir.Collection, proto.MethodQueryCollection,
		proto.QueryArgs{Query: "true"}); err != nil {
		t.Fatal(err)
	}
	wan := time.Since(t0)
	if wan < 30*time.Millisecond || wan < base {
		t.Errorf("latency injection: base %v, wan %v", base, wan)
	}
	cl.rt.SetLatency(0, 0)
}

func TestDirectoryListsEverything(t *testing.T) {
	s := newSite(t, "uva", 3, nil)
	cl := newClient(t, s)
	dir := cl.dirs["uva"]
	if dir.Collection.IsNil() || dir.Enactor.IsNil() || dir.Monitor.IsNil() {
		t.Errorf("directory: %+v", dir)
	}
	if len(dir.Hosts) != 3 || len(dir.Vaults) != 1 {
		t.Errorf("resources: %d hosts %d vaults", len(dir.Hosts), len(dir.Vaults))
	}
	if _, ok := dir.Classes["Worker"]; !ok {
		t.Errorf("classes: %v", dir.Classes)
	}
}

func TestWideAreaPlacementWithFaultInjection(t *testing.T) {
	// Random message-level faults on the application runtime: the
	// Wrapper's retry protocol must still land a placement.
	s := newSite(t, "uva", 4, nil)
	cl := newClient(t, s)
	ctx := context.Background()
	dir := cl.dirs["uva"]

	var n int
	cl.rt.SetFaultInjector(func(target loid.LOID, method string) error {
		n++
		if n%5 == 0 { // every 5th call fails
			return fmt.Errorf("%w: injected network fault", orb.ErrInjectedFault)
		}
		return nil
	})
	defer cl.rt.SetFaultInjector(nil)

	env := &scheduler.Env{RT: cl.rt, Collection: dir.Collection,
		Rand: rand.New(rand.NewSource(3))}
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		out, err := (scheduler.Wrapper{SchedTryLimit: 4, EnactTryLimit: 2}).Run(
			ctx, env, dir.Enactor, scheduler.Random{},
			scheduler.Request{
				Classes: []scheduler.ClassRequest{{Class: dir.Classes["Worker"], Count: 2}},
				Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
			})
		if err == nil && out.Success {
			return // placed despite faults
		}
		lastErr = err
	}
	if !errors.Is(lastErr, nil) {
		t.Fatalf("never placed under fault injection: %v", lastErr)
	}
}

// TestConcurrentSchedulersConserveCapacity races many application-side
// Schedulers against one metasystem with tight admission. Invariants:
// every successful placement's objects actually run, the per-host
// reservation bound is never exceeded, and after teardown the system
// drains to zero.
func TestConcurrentSchedulersConserveCapacity(t *testing.T) {
	const nHosts, maxShared = 4, 2
	ms := core.New("uva", core.Options{Seed: 99})
	defer ms.Close()
	v := ms.AddVault(vault.Config{Zone: "z1"})
	for i := 0; i < nHosts; i++ {
		ms.AddHost(host.Config{
			Arch: "x86", OS: "Linux", CPUs: 1, MemoryMB: 256, Zone: "z1",
			MaxShared: maxShared, Vaults: []loid.LOID{v.LOID()},
		})
	}
	class := ms.DefineClass("Worker", nil)
	ctx := context.Background()

	var mu sync.Mutex
	placed, failed := 0, 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			env := &scheduler.Env{RT: ms.Runtime(), Collection: ms.Collection.LOID(),
				Rand: rand.New(rand.NewSource(int64(g)))}
			for i := 0; i < 10; i++ {
				out, err := (scheduler.Wrapper{SchedTryLimit: 2, EnactTryLimit: 1}).Run(
					ctx, env, ms.Enactor.LOID(), scheduler.IRS{NSched: 3},
					scheduler.Request{
						Classes: []scheduler.ClassRequest{{Class: class.LOID(), Count: 3}},
						Res:     sched.ReservationSpec{Share: true, Reuse: true, Duration: time.Hour},
					})
				if err != nil {
					mu.Lock()
					failed++
					mu.Unlock()
					continue
				}
				mu.Lock()
				placed++
				mu.Unlock()
				// Objects are genuinely running.
				for _, insts := range out.Instances {
					for _, inst := range insts {
						if r, perr := ms.Runtime().Call(ctx, inst, "ping", nil); perr != nil || r != "pong" {
							t.Errorf("placed instance %v dead: %v", inst, perr)
						}
					}
				}
				// Tear down to let others in.
				for i2, insts := range out.Instances {
					for _, inst := range insts {
						_, _ = ms.Runtime().Call(ctx, out.Feedback.Resolved[i2].Class,
							proto.MethodDestroyInstance, proto.ObjectArgs{Object: inst})
					}
				}
				_ = ms.Enactor.CancelReservations(ctx, out.RequestID)
			}
		}(g)
	}
	wg.Wait()
	if placed == 0 {
		t.Fatalf("no placement ever succeeded (failed=%d)", failed)
	}
	// System drains: nothing left running, class manages nothing.
	total := 0
	for _, h := range ms.Hosts() {
		total += h.RunningCount()
	}
	if total != 0 {
		t.Errorf("objects leaked: %d still running", total)
	}
	if n := len(class.Instances()); n != 0 {
		t.Errorf("class still manages %d instances", n)
	}
	t.Logf("placed=%d failed=%d under contention", placed, failed)
}
