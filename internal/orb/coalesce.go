package orb

import (
	"io"
	"runtime"
	"sync"
)

// coalescer gathers frames from concurrent callers into single large
// writes. Callers append complete frames to a shared pending buffer
// under one short mutex hold; the first appender spawns a flusher
// goroutine that swaps the buffer out and issues one conn.Write for
// everything accumulated while the previous write was in flight. Under
// concurrency this replaces N serialized per-call writes (and, in the
// gob codec, N serialized stream encodes under one mutex) with a
// handful of batched writes — the same dynamic-batching idea as
// batchq's flush loop, applied to the socket.
//
// The coalescer also tracks frame fate, because context-expiry
// semantics depend on it: a frame whose bytes are fully written is
// "flushed" (the connection is fine, the response will be dropped); a
// frame inside an in-flight write is "inflight" (the stream may be cut
// mid-frame, the connection must die); a frame still in the pending
// buffer is excised in place ("excised" — nothing touched the wire, the
// connection stays alive).
type coalescer struct {
	w     io.Writer
	onErr func(error) // invoked once, outside the lock, on write failure

	mu       sync.Mutex
	pending  []byte // frames accumulated since the last swap
	spans    []frameSpan
	spare    []byte      // recycled write buffer
	spareSp  []frameSpan // recycled span slice
	scratch  []byte      // header scratch for append callbacks
	flushing bool
	err      error

	nextID    uint64 // last assigned frame ID (IDs start at 1)
	flushedID uint64 // every frame with ID <= flushedID is fully written
	writeLo   uint64 // in-flight write covers IDs [writeLo, writeHi]; 0 = none
	writeHi   uint64
}

// frameSpan locates one frame inside the pending buffer.
type frameSpan struct {
	id         uint64
	start, end int
}

// coalesceRecycleMax bounds recycled write buffers; one giant payload
// must not pin its memory for the connection's lifetime.
const coalesceRecycleMax = 1 << 22

func newCoalescer(w io.Writer, onErr func(error)) *coalescer {
	return &coalescer{w: w, onErr: onErr}
}

// append runs fn under the coalescer lock to append exactly one
// complete frame to the pending buffer, then ensures a flusher is
// running. fn may use co.scratch and any per-connection state that is
// only touched under this lock (the client's method-intern table rides
// here, so the frame introducing a method ID is ordered before every
// frame using it). It returns the frame's ID for cancel.
func (co *coalescer) append(fn func(b []byte) []byte) (uint64, error) {
	co.mu.Lock()
	if co.err != nil {
		err := co.err
		co.mu.Unlock()
		return 0, err
	}
	start := len(co.pending)
	co.pending = fn(co.pending)
	co.nextID++
	id := co.nextID
	co.spans = append(co.spans, frameSpan{id: id, start: start, end: len(co.pending)})
	if !co.flushing {
		co.flushing = true
		go co.flushLoop()
	}
	co.mu.Unlock()
	return id, nil
}

// flushLoop drains the pending buffer with one Write per pass until
// nothing new arrived during the previous write, then exits; the next
// append restarts it.
func (co *coalescer) flushLoop() {
	for {
		// One scheduler yield before swapping: appenders that are already
		// runnable get to add their frames to this pass, roughly doubling
		// batch sizes under concurrency for one deferral of latency.
		runtime.Gosched()
		co.mu.Lock()
		if co.err != nil || len(co.spans) == 0 {
			// Appends may have been excised down to zero frames with
			// residual bytes; drop them.
			co.pending = co.pending[:0]
			co.flushing = false
			co.mu.Unlock()
			return
		}
		buf, spans := co.pending, co.spans
		co.pending, co.spans = co.spare[:0], co.spareSp[:0]
		co.spare, co.spareSp = nil, nil
		co.writeLo, co.writeHi = spans[0].id, spans[len(spans)-1].id
		co.mu.Unlock()

		_, err := co.w.Write(buf)

		co.mu.Lock()
		hi := co.writeHi
		co.writeLo, co.writeHi = 0, 0
		if err != nil {
			if co.err == nil {
				co.err = err
			}
			co.flushing = false
			onErr := co.onErr
			co.mu.Unlock()
			if onErr != nil {
				onErr(err)
			}
			return
		}
		co.flushedID = hi
		if cap(buf) <= coalesceRecycleMax {
			co.spare, co.spareSp = buf[:0], spans[:0]
		}
		co.mu.Unlock()
	}
}

// cancelState classifies what had happened to a frame when its caller
// gave up on it.
type cancelState int

const (
	// cancelFlushed: the frame was fully written; the connection is
	// intact and the eventual response will be dropped.
	cancelFlushed cancelState = iota
	// cancelInflight: the frame was part of a write still in progress;
	// the stream may be cut mid-frame and the connection must be closed.
	cancelInflight
	// cancelExcised: the frame was removed from the pending buffer
	// before any of its bytes touched the wire; the connection is fine.
	cancelExcised
)

// cancel resolves the fate of the identified frame, excising it from
// the pending buffer when it has not started toward the wire. Each
// frame may be cancelled at most once.
func (co *coalescer) cancel(id uint64) cancelState {
	co.mu.Lock()
	defer co.mu.Unlock()
	if id <= co.flushedID {
		return cancelFlushed
	}
	if co.writeLo != 0 && id >= co.writeLo && id <= co.writeHi {
		return cancelInflight
	}
	for i, f := range co.spans {
		if f.id != id {
			continue
		}
		w := f.end - f.start
		co.pending = append(co.pending[:f.start], co.pending[f.end:]...)
		co.spans = append(co.spans[:i], co.spans[i+1:]...)
		for j := i; j < len(co.spans); j++ {
			co.spans[j].start -= w
			co.spans[j].end -= w
		}
		return cancelExcised
	}
	// Not pending, not in the write window, not flushed: the connection
	// failed and the frame evaporated with it. The connection is already
	// dead, so "flushed" (do not close again) is the safe answer.
	return cancelFlushed
}
