package orb

import (
	"context"
	"testing"

	"legion/internal/telemetry"
)

// TestSpanPropagationOverTCP drives a real TCP round-trip and checks
// that the client-side span's identity crosses the wire: the server's
// rpc/<method> span must join the client's trace with the client span
// as its parent.
func TestSpanPropagationOverTCP(t *testing.T) {
	server := NewRuntime("uva")
	defer server.Close()
	serverReg := telemetry.NewRegistry()
	server.SetMetrics(serverReg)
	obj := newEcho(server)
	addr, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	client := NewRuntime("sdsc")
	defer client.Close()
	clientReg := telemetry.NewRegistry()
	client.SetMetrics(clientReg)
	client.Bind(obj.LOID(), addr)

	ctx, span := clientReg.Spans().StartIn(context.Background(), "test/placement", "sdsc")
	if _, err := client.Call(ctx, obj.LOID(), "double", echoArg{N: 3, S: "y"}); err != nil {
		t.Fatal(err)
	}
	span.Finish(nil)
	sc := span.Context()

	rpc := serverReg.Spans().ByName("rpc/double")
	if len(rpc) != 1 {
		t.Fatalf("server recorded %d rpc/double spans, want 1", len(rpc))
	}
	got := rpc[0]
	if got.TraceID != sc.TraceID {
		t.Errorf("server span trace %016x, want client trace %016x", got.TraceID, sc.TraceID)
	}
	if got.ParentID != sc.SpanID {
		t.Errorf("server span parent %016x, want client span %016x", got.ParentID, sc.SpanID)
	}
	if got.Runtime != "uva" {
		t.Errorf("server span runtime %q, want uva", got.Runtime)
	}
	if got.Duration <= 0 {
		t.Error("server span duration must be positive")
	}

	// Client/server call metrics landed in the right registries.
	if n := clientReg.Histogram("legion_orb_client_seconds", telemetry.LatencyBuckets, "method", "double").Count(); n != 1 {
		t.Errorf("client histogram count = %d, want 1", n)
	}
	if n := serverReg.Histogram("legion_orb_server_seconds", telemetry.LatencyBuckets, "method", "double").Count(); n != 1 {
		t.Errorf("server histogram count = %d, want 1", n)
	}
	if n := serverReg.CounterValue("legion_orb_server_errors_total", "method", "double"); n != 0 {
		t.Errorf("server error counter = %d, want 0", n)
	}
}

// TestCallWithoutSpanStillServes: requests carrying no span context must
// be served normally and open a fresh trace on the server.
func TestCallWithoutSpanStillServes(t *testing.T) {
	server := NewRuntime("uva")
	defer server.Close()
	serverReg := telemetry.NewRegistry()
	server.SetMetrics(serverReg)
	obj := newEcho(server)
	addr, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	client := NewRuntime("sdsc")
	defer client.Close()
	client.SetMetrics(telemetry.NewRegistry())
	client.Bind(obj.LOID(), addr)

	if _, err := client.Call(context.Background(), obj.LOID(), "echo", echoArg{N: 1}); err != nil {
		t.Fatal(err)
	}
	rpc := serverReg.Spans().ByName("rpc/echo")
	if len(rpc) != 1 {
		t.Fatalf("server recorded %d rpc/echo spans, want 1", len(rpc))
	}
	if rpc[0].TraceID == 0 || rpc[0].ParentID != 0 {
		t.Errorf("span without remote parent: trace=%d parent=%d, want fresh trace with no parent",
			rpc[0].TraceID, rpc[0].ParentID)
	}
}
