// Package orb is the object runtime underlying the Legion resource
// management reproduction.
//
// Legion is an object-oriented metacomputing environment: every component
// — Hosts, Vaults, Collections, Enactors, Class objects — is an active
// object named by a LOID and invoked by location-independent method calls.
// The original system implements this with the Legion run-time library
// (Viles et al. 1997); this package provides the equivalent substrate in
// Go:
//
//   - a Runtime holding a binding table from LOIDs to objects (local) or
//     TCP endpoints (remote),
//   - synchronous method invocation via Call, transparently local or
//     remote,
//   - a gob-based wire protocol (tcp.go) so multiple Runtimes form one
//     metasystem across OS processes ("multi-process emulation"),
//   - fault injection and latency hooks so tests and benchmarks can
//     exercise the failure tolerance the paper requires ("our Legion
//     objects are built to accommodate failure at any step in the
//     scheduling process").
//
// Objects registered with a Runtime must be safe for concurrent use:
// calls are dispatched on the caller's goroutine (local) or a connection
// goroutine (remote), and the runtime imposes no per-object serialization.
package orb

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"legion/internal/fanout"
	"legion/internal/loid"
	"legion/internal/telemetry"
	"legion/internal/vclock"
	"legion/internal/wire"
)

// Object is an active Legion object that can receive method calls.
type Object interface {
	// LOID returns the object's name.
	LOID() loid.LOID
	// Dispatch handles one method invocation. Arguments and results are
	// values of wire-registered types (see RegisterWireType); they must
	// be treated as immutable since local calls pass them by reference.
	Dispatch(ctx context.Context, method string, arg any) (any, error)
}

// Errors returned by the runtime itself (as opposed to errors returned by
// the target object's method).
var (
	// ErrNotBound reports that the target LOID has no binding. In the
	// paper's model this is what an inactive (deactivated) object looks
	// like from the outside until its class reactivates it.
	ErrNotBound = errors.New("orb: LOID not bound")
	// ErrNoMethod reports that the object does not implement the method.
	ErrNoMethod = errors.New("orb: no such method")
	// ErrInjectedFault reports a fault introduced by a FaultInjector.
	ErrInjectedFault = errors.New("orb: injected fault")
	// ErrDeadlineExpired reports that a request's propagated deadline had
	// already passed when the serving runtime dequeued the frame, so the
	// method was never invoked — the caller has abandoned the call and any
	// work done for it would be wasted.
	ErrDeadlineExpired = errors.New("orb: deadline expired before dispatch")
)

// RemoteError is a method error that crossed the wire. It preserves the
// message of the remote error; errors.Is matching for sentinel errors
// like ErrNoMethod is handled by the transport.
type RemoteError struct{ Msg string }

// Error implements the error interface.
func (e *RemoteError) Error() string { return e.Msg }

// FaultInjector decides whether a given call should fail artificially.
// Returning a non-nil error aborts the call before it reaches the target.
type FaultInjector func(target loid.LOID, method string) error

// CallTracer observes every call made through a Runtime, for the step
// traces used to reproduce the paper's Figure 3 walkthrough.
type CallTracer func(caller string, target loid.LOID, method string, d time.Duration, err error)

// Runtime is one node of the metasystem: a registry of local objects, a
// binding table for remote ones, and the machinery to invoke both.
type Runtime struct {
	name   string
	minter *loid.Minter

	mu      sync.RWMutex
	objects map[loid.LOID]Object
	remote  map[loid.LOID]string // LOID -> TCP address
	domains map[string]string    // domain -> TCP address (fallback binding)

	clientsMu sync.Mutex
	clients   map[string]*tcpClient

	server *tcpServer

	hooksMu   sync.RWMutex
	inject    FaultInjector
	latency   time.Duration
	jitter    time.Duration
	tracer    CallTracer
	metrics   *telemetry.Registry
	clock     vclock.Clock
	loopback  LoopbackCodec
	wireCodec WireCodec
	srvLim    *fanout.Limiter

	loopGobMu  sync.Mutex
	loopGobBuf bytes.Buffer
	loopGobEnc *gob.Encoder
	loopGobDec *gob.Decoder

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewRuntime creates a runtime for the given administrative domain. The
// domain names the site (site autonomy is a core Legion objective); all
// LOIDs minted through the runtime carry it.
func NewRuntime(domain string) *Runtime {
	return &Runtime{
		name:      domain,
		minter:    loid.NewMinter(domain),
		objects:   make(map[loid.LOID]Object),
		remote:    make(map[loid.LOID]string),
		domains:   make(map[string]string),
		clients:   make(map[string]*tcpClient),
		rng:       rand.New(rand.NewSource(1)),
		metrics:   telemetry.Default,
		clock:     vclock.Wall,
		wireCodec: CodecBinary,
		srvLim:    fanout.NewLimiter(DefaultServerLimit),
	}
}

// Domain returns the runtime's administrative domain name.
func (rt *Runtime) Domain() string { return rt.name }

// Mint mints a fresh LOID in this runtime's domain.
func (rt *Runtime) Mint(class string) loid.LOID { return rt.minter.Mint(class) }

// Register makes a local object callable. Registering an object whose
// LOID is already bound replaces the binding (reactivation).
func (rt *Runtime) Register(obj Object) {
	l := obj.LOID()
	if l.IsNil() {
		panic("orb: registering object with nil LOID")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.objects[l] = obj
	delete(rt.remote, l)
}

// Unregister removes a local object binding; subsequent calls to it fail
// with ErrNotBound. This is the runtime-level half of object deactivation.
func (rt *Runtime) Unregister(l loid.LOID) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.objects, l)
}

// Lookup returns the local object bound to l, if any. Intended for
// co-located fast paths and tests; normal interaction goes through Call.
func (rt *Runtime) Lookup(l loid.LOID) (Object, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	o, ok := rt.objects[l]
	return o, ok
}

// Bind records that the object named l lives at the given TCP address
// (another Runtime's listener).
func (rt *Runtime) Bind(l loid.LOID, addr string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, local := rt.objects[l]; !local {
		rt.remote[l] = addr
	}
}

// BindDomain routes all otherwise-unbound LOIDs of an administrative
// domain to the given address. This models inter-site routing without
// per-object bindings.
func (rt *Runtime) BindDomain(domain, addr string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.domains[domain] = addr
}

// Locals returns the LOIDs of all locally registered objects, in
// unspecified order.
func (rt *Runtime) Locals() []loid.LOID {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make([]loid.LOID, 0, len(rt.objects))
	for l := range rt.objects {
		out = append(out, l)
	}
	return out
}

// SetFaultInjector installs (or clears, with nil) a fault injector
// consulted before every call.
func (rt *Runtime) SetFaultInjector(f FaultInjector) {
	rt.hooksMu.Lock()
	defer rt.hooksMu.Unlock()
	rt.inject = f
}

// SetLatency adds a simulated base latency and uniform jitter to every
// call made through this runtime, modeling the wide-area links of a
// metasystem. Zero disables.
func (rt *Runtime) SetLatency(base, jitter time.Duration) {
	rt.hooksMu.Lock()
	defer rt.hooksMu.Unlock()
	rt.latency = base
	rt.jitter = jitter
}

// SetTracer installs (or clears) a tracer observing every call.
func (rt *Runtime) SetTracer(t CallTracer) {
	rt.hooksMu.Lock()
	defer rt.hooksMu.Unlock()
	rt.tracer = t
}

// SetMetrics replaces the runtime's telemetry registry (by default the
// process-wide telemetry.Default). Call it before constructing services
// on the runtime: services cache metric handles at construction.
func (rt *Runtime) SetMetrics(reg *telemetry.Registry) {
	if reg == nil {
		reg = telemetry.Default
	}
	rt.hooksMu.Lock()
	defer rt.hooksMu.Unlock()
	rt.metrics = reg
}

// Metrics returns the runtime's telemetry registry.
func (rt *Runtime) Metrics() *telemetry.Registry {
	rt.hooksMu.RLock()
	defer rt.hooksMu.RUnlock()
	return rt.metrics
}

// SetClock replaces the runtime's time source (by default the wall
// clock). The runtime is the distribution point: services built on it
// read the clock here, so install a virtual clock before constructing
// them. nil restores the wall clock.
func (rt *Runtime) SetClock(c vclock.Clock) {
	rt.hooksMu.Lock()
	defer rt.hooksMu.Unlock()
	rt.clock = vclock.Default(c)
}

// Clock returns the runtime's time source.
func (rt *Runtime) Clock() vclock.Clock {
	rt.hooksMu.RLock()
	defer rt.hooksMu.RUnlock()
	return rt.clock
}

// SetWireCodec selects the codec this runtime's outbound connections
// negotiate (default CodecBinary). Existing cached connections keep
// their negotiated codec; call it before the first remote call.
func (rt *Runtime) SetWireCodec(c WireCodec) {
	rt.hooksMu.Lock()
	defer rt.hooksMu.Unlock()
	rt.wireCodec = c
}

// clientCodec returns the codec for new outbound connections.
func (rt *Runtime) clientCodec() WireCodec {
	rt.hooksMu.RLock()
	defer rt.hooksMu.RUnlock()
	return rt.wireCodec
}

// DefaultServerLimit is the default bound on concurrently executing
// inbound request handlers across all of a runtime's server
// connections. Past it, frames are shed with ErrServerOverload instead
// of spawning goroutines until memory is exhausted.
const DefaultServerLimit = 1024

// SetServerLimit replaces the bound on concurrent inbound request
// handlers. Call it before ListenAndServe; connections capture the
// limiter when serving starts. limit < 1 panics.
func (rt *Runtime) SetServerLimit(limit int) {
	lim := fanout.NewLimiter(limit)
	rt.hooksMu.Lock()
	defer rt.hooksMu.Unlock()
	rt.srvLim = lim
}

// serverLimiter returns the current inbound-handler limiter.
func (rt *Runtime) serverLimiter() *fanout.Limiter {
	rt.hooksMu.RLock()
	defer rt.hooksMu.RUnlock()
	return rt.srvLim
}

// LoopbackCodec selects whether local dispatch round-trips arguments
// and results through a wire codec. Off (the default) passes values by
// reference, as the runtime always has. The simulation harness turns
// this on so in-process experiments pay honest per-call marshalling
// cost — the virtual-time scale runs otherwise assume serialization is
// free, which hides exactly the cost this codec exists to cut.
type LoopbackCodec int

// The loopback modes.
const (
	LoopbackOff LoopbackCodec = iota
	// LoopbackGob round-trips through a persistent gob stream (type
	// descriptors sent once, encodes serialized under one mutex —
	// faithful to the real gob connection's cost shape).
	LoopbackGob
	// LoopbackBinary round-trips through the binary payload codec with
	// pooled buffers, like a binary connection would.
	LoopbackBinary
)

// String names the mode.
func (lc LoopbackCodec) String() string {
	switch lc {
	case LoopbackGob:
		return "gob"
	case LoopbackBinary:
		return "binary"
	default:
		return "off"
	}
}

// SetLoopbackCodec installs (or, with LoopbackOff, removes) the
// marshalling boundary on local dispatch.
func (rt *Runtime) SetLoopbackCodec(lc LoopbackCodec) {
	rt.hooksMu.Lock()
	defer rt.hooksMu.Unlock()
	rt.loopback = lc
}

// loopbackRoundTrip re-materializes v through the selected codec,
// exactly as it would arrive on the far side of a connection.
func (rt *Runtime) loopbackRoundTrip(lc LoopbackCodec, v any) (any, error) {
	if lc == LoopbackBinary {
		buf := wire.GetBuf()
		defer wire.PutBuf(buf)
		b, err := AppendPayload((*buf)[:0], v)
		if err != nil {
			return nil, err
		}
		*buf = b
		r := wire.GetReader(b)
		defer wire.PutReader(r)
		return DecodePayload(r)
	}
	// Gob: one persistent stream per runtime, strictly alternating
	// encode/decode over a shared buffer, serialized like a real
	// connection's encMu.
	rt.loopGobMu.Lock()
	defer rt.loopGobMu.Unlock()
	if rt.loopGobEnc == nil {
		rt.loopGobEnc = gob.NewEncoder(&rt.loopGobBuf)
		rt.loopGobDec = gob.NewDecoder(&rt.loopGobBuf)
	}
	if err := rt.loopGobEnc.Encode(gobPayload{V: v}); err != nil {
		return nil, err
	}
	var p gobPayload
	if err := rt.loopGobDec.Decode(&p); err != nil {
		return nil, err
	}
	return p.V, nil
}

// dispatchLoopback is local dispatch with the marshalling boundary:
// the argument crosses the codec inbound, the result (or the method's
// error, re-materialized the way a response frame would carry it)
// crosses outbound.
func (rt *Runtime) dispatchLoopback(ctx context.Context, lc LoopbackCodec, obj Object, method string, arg any) (any, error) {
	arg, err := rt.loopbackRoundTrip(lc, arg)
	if err != nil {
		return nil, fmt.Errorf("orb: loopback encode arg: %w", err)
	}
	res, err := obj.Dispatch(ctx, method, arg)
	if err != nil {
		kind, msg := encodeErr(err)
		return nil, decodeErr(kind, msg)
	}
	res, err = rt.loopbackRoundTrip(lc, res)
	if err != nil {
		return nil, fmt.Errorf("orb: loopback encode result: %w", err)
	}
	return res, nil
}

// Call synchronously invokes method on the object named target, passing
// arg and returning the method's result. It consults, in order: the fault
// injector, the local object table, the per-LOID remote bindings, and the
// per-domain bindings. Call honors ctx cancellation for remote calls and
// latency simulation; local dispatch runs on the caller's goroutine.
func (rt *Runtime) Call(ctx context.Context, target loid.LOID, method string, arg any) (any, error) {
	// One hooksMu acquisition per call: Call is the hottest path in the
	// system (every scheduler probe, query, and reservation goes through
	// it), and the three separate RLocks this used to take were
	// measurable at virtual-scale call volumes.
	rt.hooksMu.RLock()
	h := callHooks{
		clock:    rt.clock,
		tracer:   rt.tracer,
		inject:   rt.inject,
		latency:  rt.latency,
		jitter:   rt.jitter,
		loopback: rt.loopback,
	}
	rt.hooksMu.RUnlock()
	start := h.clock.Now()
	res, err := rt.call(ctx, h, target, method, arg)
	if h.tracer != nil {
		h.tracer(rt.name, target, method, h.clock.Since(start), err)
	}
	return res, err
}

// callHooks is the per-call snapshot of the runtime's hook state, read
// once under hooksMu at the top of Call.
type callHooks struct {
	clock    vclock.Clock
	tracer   CallTracer
	inject   FaultInjector
	latency  time.Duration
	jitter   time.Duration
	loopback LoopbackCodec
}

func (rt *Runtime) call(ctx context.Context, h callHooks, target loid.LOID, method string, arg any) (any, error) {
	if target.IsNil() {
		return nil, fmt.Errorf("%w: nil LOID", ErrNotBound)
	}
	inject, latency, jitter := h.inject, h.latency, h.jitter
	clock := h.clock

	if inject != nil {
		if err := inject(target, method); err != nil {
			return nil, err
		}
	}
	if latency > 0 || jitter > 0 {
		d := latency
		if jitter > 0 {
			rt.rngMu.Lock()
			d += time.Duration(rt.rng.Int63n(int64(jitter) + 1))
			rt.rngMu.Unlock()
		}
		if err := clock.Sleep(ctx, d); err != nil {
			return nil, err
		}
	}

	rt.mu.RLock()
	obj, local := rt.objects[target]
	addr, bound := rt.remote[target]
	if !local && !bound {
		addr, bound = rt.domains[target.Domain]
	}
	rt.mu.RUnlock()

	if local {
		if h.loopback != LoopbackOff {
			return rt.dispatchLoopback(ctx, h.loopback, obj, method, arg)
		}
		return obj.Dispatch(ctx, method, arg)
	}
	if bound {
		return rt.callRemote(ctx, addr, target, method, arg)
	}
	return nil, fmt.Errorf("%w: %v", ErrNotBound, target)
}
