package orb

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"legion/internal/loid"
	"legion/internal/telemetry"
	"legion/internal/wire"
)

func init() {
	// Package proto registers the real message types; these tests use a
	// bare LOID as a stand-in payload, which needs gob registration for
	// the fallback blob path.
	RegisterWireType(loid.LOID{})
}

// codecEchoObj echoes its argument back; "fail" returns an error.
type codecEchoObj struct {
	l       loid.LOID
	invoked atomic.Int64
	block   chan struct{} // when non-nil, "hold" blocks until closed
}

func (o *codecEchoObj) LOID() loid.LOID { return o.l }

func (o *codecEchoObj) Dispatch(ctx context.Context, method string, arg any) (any, error) {
	o.invoked.Add(1)
	switch method {
	case "fail":
		return nil, errors.New("codec test failure")
	case "hold":
		if o.block != nil {
			select {
			case <-o.block:
			case <-ctx.Done():
			}
		}
		return "held", nil
	default:
		return arg, nil
	}
}

// startEcho returns a serving runtime, its echo object, and the address.
func startEcho(t *testing.T) (*Runtime, *codecEchoObj, string) {
	t.Helper()
	server := NewRuntime("srv")
	obj := &codecEchoObj{l: server.Mint("Echo")}
	server.Register(obj)
	addr, err := server.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	return server, obj, addr
}

// TestMixedCodecInterop drives one server from a binary client and a
// gob client at once: the server auto-detects each connection's codec
// from its preamble, so mixed-version runtimes interoperate.
func TestMixedCodecInterop(t *testing.T) {
	_, obj, addr := startEcho(t)
	ctx := context.Background()

	for _, tc := range []struct {
		name  string
		codec WireCodec
	}{
		{"binary-client", CodecBinary},
		{"gob-client", CodecGob},
	} {
		t.Run(tc.name, func(t *testing.T) {
			client := NewRuntime("cli-" + tc.name)
			defer client.Close()
			client.SetWireCodec(tc.codec)
			client.Bind(obj.LOID(), addr)

			// A registered wire type (echoed LOID inside a payload), a
			// gob-fallback payload (plain string), and a nil round trip.
			if res, err := client.Call(ctx, obj.LOID(), "echo", "hello"); err != nil || res != "hello" {
				t.Fatalf("string echo: %v %v", res, err)
			}
			want := loid.LOID{Domain: "d", Class: "C", Instance: 9}
			if res, err := client.Call(ctx, obj.LOID(), "echo", want); err != nil || res != want {
				t.Fatalf("LOID echo: %v %v", res, err)
			}
			if res, err := client.Call(ctx, obj.LOID(), "echo", nil); err != nil || res != nil {
				t.Fatalf("nil echo: %v %v", res, err)
			}
			// Errors cross with their message.
			if _, err := client.Call(ctx, obj.LOID(), "fail", nil); err == nil ||
				!strings.Contains(err.Error(), "codec test failure") {
				t.Fatalf("error passthrough: %v", err)
			}
			// Unbound targets keep their typed identity.
			if _, err := client.Call(ctx, loid.LOID{Domain: "srv", Class: "Nope", Instance: 1}, "echo", nil); !errors.Is(err, ErrNotBound) {
				t.Fatalf("not-bound: %v", err)
			}
		})
	}
}

// TestBinaryCodecConcurrentCalls hammers one binary connection from many
// goroutines so frames coalesce, verifying responses route back to the
// right callers.
func TestBinaryCodecConcurrentCalls(t *testing.T) {
	_, obj, addr := startEcho(t)
	client := NewRuntime("cli")
	defer client.Close()
	client.Bind(obj.LOID(), addr)

	const callers, calls = 16, 50
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				want := fmt.Sprintf("msg-%d-%d", g, i)
				res, err := client.Call(context.Background(), obj.LOID(), "echo", want)
				if err != nil || res != want {
					errs <- fmt.Errorf("caller %d call %d: got %v, %v", g, i, res, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := obj.invoked.Load(); n != callers*calls {
		t.Fatalf("dispatched %d calls, want %d", n, callers*calls)
	}
}

// TestServerOverloadSheds verifies the server-wide handler bound: past
// the limit, frames are refused immediately with ErrServerOverload, the
// shed counter increments, and the connection keeps serving once
// capacity frees up.
func TestServerOverloadSheds(t *testing.T) {
	for _, codec := range []WireCodec{CodecBinary, CodecGob} {
		t.Run(codec.String(), func(t *testing.T) {
			reg := telemetry.NewRegistry()
			server := NewRuntime("srv")
			server.SetMetrics(reg)
			server.SetServerLimit(2)
			obj := &codecEchoObj{l: server.Mint("Echo"), block: make(chan struct{})}
			server.Register(obj)
			addr, err := server.ListenAndServe("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer server.Close()

			client := NewRuntime("cli")
			defer client.Close()
			client.SetWireCodec(codec)
			client.Bind(obj.LOID(), addr)
			ctx := context.Background()

			// Fill both handler slots with calls that park in the object.
			var wg sync.WaitGroup
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if res, err := client.Call(ctx, obj.LOID(), "hold", nil); err != nil || res != "held" {
						t.Errorf("held call: %v %v", res, err)
					}
				}()
			}
			deadline := time.Now().Add(5 * time.Second)
			for server.serverLimiter().InFlight() != 2 {
				if time.Now().After(deadline) {
					t.Fatal("holders never occupied the limiter")
				}
				time.Sleep(time.Millisecond)
			}

			// The third frame must shed, typed and counted.
			_, err = client.Call(ctx, obj.LOID(), "echo", "overflow")
			if !errors.Is(err, ErrServerOverload) {
				t.Fatalf("overload err=%v, want ErrServerOverload", err)
			}
			// The message carries the proto.ErrOverload prefix package
			// resilient classifies as a permanent refusal.
			if !strings.Contains(err.Error(), "legion: overloaded, request shed") {
				t.Fatalf("overload message %q lacks the shed-classification prefix", err)
			}
			if n := reg.CounterValue("legion_orb_server_overload_total", "method", "echo"); n != 1 {
				t.Fatalf("legion_orb_server_overload_total = %v, want 1", n)
			}

			// Capacity frees; the same connection serves again.
			close(obj.block)
			wg.Wait()
			if res, err := client.Call(ctx, obj.LOID(), "echo", "after"); err != nil || res != "after" {
				t.Fatalf("call after shed: %v %v", res, err)
			}
		})
	}
}

// TestLoopbackCodecRoundTrips verifies the loopback marshalling boundary:
// local dispatch sees a re-materialized argument (not the caller's
// reference) under both codecs, and results round-trip equally.
func TestLoopbackCodecRoundTrips(t *testing.T) {
	for _, lc := range []LoopbackCodec{LoopbackGob, LoopbackBinary} {
		t.Run(lc.String(), func(t *testing.T) {
			rt := NewRuntime("local")
			rt.SetLoopbackCodec(lc)
			var seen any
			obj := &funcObj{l: rt.Mint("Echo"), fn: func(arg any) (any, error) {
				seen = arg
				return arg, nil
			}}
			rt.Register(obj)

			arg := loid.LOID{Domain: "d", Class: "C", Instance: 42}
			res, err := rt.Call(context.Background(), obj.LOID(), "echo", arg)
			if err != nil || res != arg {
				t.Fatalf("loopback echo: %v %v", res, err)
			}
			if seen != arg {
				t.Fatalf("dispatch saw %v, want %v", seen, arg)
			}
			// A byte slice crosses by value now: mutating the original
			// after the call must not be visible to a retained argument.
			raw := []byte{1, 2, 3}
			if _, err := rt.Call(context.Background(), obj.LOID(), "echo", raw); err != nil {
				t.Fatal(err)
			}
			raw[0] = 99
			if got := seen.([]byte); got[0] != 1 {
				t.Fatalf("loopback aliased the caller's slice: %v", got)
			}
		})
	}
}

// funcObj adapts a closure to Object.
type funcObj struct {
	l  loid.LOID
	fn func(arg any) (any, error)
}

func (o *funcObj) LOID() loid.LOID { return o.l }
func (o *funcObj) Dispatch(ctx context.Context, method string, arg any) (any, error) {
	return o.fn(arg)
}

// TestCoalescerCancelStates drives the frame-fate trichotomy directly:
// flushed frames report flushed, pending frames excise cleanly (and the
// buffer compacts around them), and frames inside a blocked write report
// inflight.
func TestCoalescerCancelStates(t *testing.T) {
	// A writer that blocks until released, recording everything written.
	w := &gateWriter{gate: make(chan struct{})}
	co := newCoalescer(w, nil)

	mk := func(tag byte, n int) func([]byte) []byte {
		return func(b []byte) []byte {
			for i := 0; i < n; i++ {
				b = append(b, tag)
			}
			return b
		}
	}
	id1, err := co.append(mk('a', 4))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until frame 1's write is in flight.
	deadline := time.Now().Add(5 * time.Second)
	for {
		co.mu.Lock()
		inFlight := co.writeLo != 0
		co.mu.Unlock()
		if inFlight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flusher never started")
		}
		time.Sleep(time.Millisecond)
	}
	if got := co.cancel(id1); got != cancelInflight {
		t.Fatalf("cancel(in-flight) = %v, want inflight", got)
	}

	// Three more frames accumulate behind the blocked write; excising the
	// middle one leaves the outer two intact.
	id2, _ := co.append(mk('b', 2))
	id3, _ := co.append(mk('c', 3))
	id4, _ := co.append(mk('d', 2))
	if got := co.cancel(id3); got != cancelExcised {
		t.Fatalf("cancel(pending) = %v, want excised", got)
	}
	co.mu.Lock()
	pending := string(co.pending)
	co.mu.Unlock()
	if pending != "bbdd" {
		t.Fatalf("pending after excision = %q, want %q", pending, "bbdd")
	}

	// Release the writer; everything left flushes.
	close(w.gate)
	deadline = time.Now().Add(5 * time.Second)
	for {
		co.mu.Lock()
		done := co.flushedID >= id4 && !co.flushing
		co.mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("frames never flushed")
		}
		time.Sleep(time.Millisecond)
	}
	if got := co.cancel(id2); got != cancelFlushed {
		t.Fatalf("cancel(flushed) = %v, want flushed", got)
	}
	w.mu.Lock()
	written := string(w.buf)
	w.mu.Unlock()
	if written != "aaaa"+"bbdd" {
		t.Fatalf("wrote %q, want %q", written, "aaaabbdd")
	}
}

// gateWriter blocks each Write until its gate closes, then records.
type gateWriter struct {
	gate chan struct{}
	mu   sync.Mutex
	buf  []byte
}

func (w *gateWriter) Write(p []byte) (int, error) {
	<-w.gate
	w.mu.Lock()
	w.buf = append(w.buf, p...)
	w.mu.Unlock()
	return len(p), nil
}

// TestPayloadRegistryFallback round-trips an unregistered type through
// the gob-blob payload path.
func TestPayloadRegistryFallback(t *testing.T) {
	type weird struct{ X int } // never registered with RegisterWireMessage
	RegisterWireType(weird{})
	b, err := EncodePayloadBytes(weird{X: 7})
	if err != nil {
		t.Fatal(err)
	}
	v, err := DecodePayloadBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := v.(weird); !ok || got.X != 7 {
		t.Fatalf("round trip = %#v", v)
	}
}

// TestDecodePayloadRejectsGarbage feeds malformed payload bytes and
// expects typed errors, never panics.
func TestDecodePayloadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},                  // missing tag
		{0xFF},              // truncated uvarint
		{2},                 // reserved tag below WireIDFirst with no decoder
		{1},                 // gob tag with no blob
		{1, 0x05, 1, 2},     // gob blob shorter than its prefix
		{200, 1},            // unknown registered ID
		wire.AppendUvarint(nil, 1<<40), // absurd tag
	}
	for i, b := range cases {
		if _, err := DecodePayloadBytes(b); err == nil {
			t.Fatalf("case %d (% x): decoded without error", i, b)
		}
	}
}

// TestRequestFrameRoundTrip exercises the header codec including
// method interning: first use carries the name, repeats carry the bare
// ID, and both sides stay in sync across frames.
func TestRequestFrameRoundTrip(t *testing.T) {
	var mi methodIntern
	var mt methodTable
	var scratch []byte
	target := loid.LOID{Domain: "zone-1", Class: "Host", Instance: 31}

	var frames [][]byte
	for i := 0; i < 3; i++ {
		method := "make_reservation"
		if i == 1 {
			method = "query"
		}
		req := request{
			ID:       uint64(100 + i),
			Target:   wireLOID{Domain: target.Domain, Class: target.Class, Instance: target.Instance},
			Method:   method,
			TraceID:  7,
			SpanID:   8,
			Deadline: 1234567890,
		}
		payload, err := AppendPayload(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, appendRequestFrame(nil, &scratch, &mi, &req, payload))
	}
	// Frames 0 and 2 share a method: frame 2 must be smaller (bare ID).
	if len(frames[2]) >= len(frames[0]) {
		t.Fatalf("repeat-method frame (%dB) not smaller than introducing frame (%dB)",
			len(frames[2]), len(frames[0]))
	}
	wantMethods := []string{"make_reservation", "query", "make_reservation"}
	for i, f := range frames {
		r := wire.NewReader(f)
		if n := r.Len(); n != len(r.B) {
			t.Fatalf("frame %d: length prefix %d over %d bytes", i, n, len(r.B))
		}
		meta, err := decodeRequestHeader(&r, &mt)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if meta.id != uint64(100+i) || meta.method != wantMethods[i] ||
			meta.target != target || meta.traceID != 7 || meta.spanID != 8 ||
			meta.deadline != 1234567890 {
			t.Fatalf("frame %d decoded %+v", i, meta)
		}
		if arg, err := DecodePayload(&r); err != nil || arg != nil {
			t.Fatalf("frame %d payload: %v %v", i, arg, err)
		}
	}
}
